// s3_snapshot — inspector / converter for S3 snapshot files and
// storage directories.
//
//   s3_snapshot inspect <file>
//       Header, format version, generation/lineage, population counts
//       and the per-section size + CRC table of a binary snapshot
//       (checksums are verified and mismatches flagged). Text dumps
//       are identified and summarized.
//
//   s3_snapshot convert <in> <out> [--to=text|binary] [--format=v1|v2]
//       Converts between the text codec and the binary snapshot codec
//       (default: the opposite of the input format). Text -> binary
//       finalizes the instance (fresh lineage, generation 0); binary
//       -> text drops derived state by design. --format pins the
//       binary wire version (default v2, or v1 under
//       S3_FORCE_SNAPSHOT_V1) — so `--to=binary --format=v1`
//       downgrades a v2 snapshot for an old reader, and --format=v2
//       upgrades a v1 file in place.
//
//   s3_snapshot recover <dir>
//       Dry-run of SnapshotManager::Recover on a storage directory:
//       reports the snapshot it would load, the WAL records it would
//       replay/skip, and the generation it would serve. Touches
//       nothing.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/file_io.h"
#include "core/snapshot.h"
#include "core/snapshot_binary.h"
#include "server/snapshot_manager.h"
#include "shard/shard_meta.h"

namespace {

using s3::core::SnapshotFormat;

// When the inspected file sits inside a shard storage directory
// (tools/s3_shard split output), report the shard's place in its
// partition. Pre-shard snapshots have no shard.meta sibling and print
// nothing — inspect degrades gracefully.
void PrintShardMetaIfPresent(const std::string& snapshot_path) {
  std::string dir = ".";
  const size_t slash = snapshot_path.find_last_of('/');
  if (slash != std::string::npos) dir = snapshot_path.substr(0, slash);
  std::string bytes;
  if (!s3::ReadFileToString(dir + "/" + s3::shard::kShardMetaFile, &bytes)
           .ok()) {
    return;  // not a shard directory
  }
  auto meta = s3::shard::ParseShardMeta(bytes);
  if (!meta.ok()) {
    std::printf("shard metadata: present but unreadable (%s)\n",
                meta.status().ToString().c_str());
    return;
  }
  std::printf(
      "shard metadata: shard %u of %u, %llu boundary social edges, "
      "%u owned users, %zu local docs, %zu local tags\n",
      meta->shard_index, meta->shard_count,
      static_cast<unsigned long long>(meta->boundary_social_edges),
      meta->owned_users, meta->map.doc_count(), meta->map.tag_count());
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  s3_snapshot inspect <file>\n"
               "  s3_snapshot convert <in> <out> [--to=text|binary] "
               "[--format=v1|v2]\n"
               "  s3_snapshot recover <dir>\n");
  return 2;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  return s3::ReadFileToString(path, out).ok();
}

int Inspect(const std::string& path) {
  std::string bytes;
  if (!ReadWholeFile(path, &bytes)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  auto format = s3::core::DetectSnapshotFormat(bytes);
  if (!format.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 format.status().ToString().c_str());
    return 1;
  }
  if (*format == SnapshotFormat::kText) {
    std::printf("%s: text snapshot (header 'S3 v1'), %zu bytes\n",
                path.c_str(), bytes.size());
    std::printf(
        "population-only dump; load pays Finalize(). Convert with\n"
        "  s3_snapshot convert %s <out> --to=binary\n",
        path.c_str());
    PrintShardMetaIfPresent(path);
    return 0;
  }

  auto info = s3::core::InspectBinarySnapshot(bytes);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: binary snapshot, format v%u, %zu bytes\n", path.c_str(),
              info->version, bytes.size());
  std::printf("generation %llu, lineage %llu, rdf-imported social edges "
              "%llu\n",
              static_cast<unsigned long long>(info->generation),
              static_cast<unsigned long long>(info->lineage),
              static_cast<unsigned long long>(info->rdf_social_edges));
  std::printf(
      "population: %llu users, %llu docs (%llu nodes), %llu tags, "
      "%llu keywords, %llu edges, %llu terms, %llu triples\n",
      static_cast<unsigned long long>(info->n_users),
      static_cast<unsigned long long>(info->n_docs),
      static_cast<unsigned long long>(info->n_nodes),
      static_cast<unsigned long long>(info->n_tags),
      static_cast<unsigned long long>(info->n_keywords),
      static_cast<unsigned long long>(info->n_edges),
      static_cast<unsigned long long>(info->n_terms),
      static_cast<unsigned long long>(info->n_triples));
  std::printf("%-12s %-12s %12s %12s %6s %10s  %s\n", "section",
              "encoding", "disk", "memory", "ratio", "crc32", "checksum");
  bool all_ok = true;
  uint64_t disk_total = 0, mem_total = 0;
  for (const auto& section : info->sections) {
    const double ratio =
        section.size == 0
            ? 1.0
            : static_cast<double>(section.mem_bytes) /
                  static_cast<double>(section.size);
    std::printf("%-12s %-12s %12llu %12llu %5.2fx %10x  %s\n",
                section.name, section.encoding,
                static_cast<unsigned long long>(section.size),
                static_cast<unsigned long long>(section.mem_bytes), ratio,
                section.crc, section.crc_ok ? "ok" : "MISMATCH");
    disk_total += section.size;
    mem_total += section.mem_bytes;
    all_ok = all_ok && section.crc_ok;
  }
  std::printf("%-12s %-12s %12llu %12llu %5.2fx\n", "total", "",
              static_cast<unsigned long long>(disk_total),
              static_cast<unsigned long long>(mem_total),
              disk_total == 0 ? 1.0
                              : static_cast<double>(mem_total) /
                                    static_cast<double>(disk_total));
  if (!all_ok) {
    std::printf("CORRUPT: at least one section failed its checksum\n");
    return 1;
  }
  PrintShardMetaIfPresent(path);
  return 0;
}

int Convert(const std::string& in_path, const std::string& out_path,
            int n_flags, char** flags) {
  const char* to_flag = nullptr;
  uint32_t binary_version = s3::core::DefaultBinarySnapshotVersion();
  bool version_pinned = false;
  for (int i = 0; i < n_flags; ++i) {
    if (std::strncmp(flags[i], "--to=", 5) == 0) {
      to_flag = flags[i];
    } else if (std::strcmp(flags[i], "--format=v1") == 0) {
      binary_version = s3::core::kBinarySnapshotV1;
      version_pinned = true;
    } else if (std::strcmp(flags[i], "--format=v2") == 0) {
      binary_version = s3::core::kBinarySnapshotV2;
      version_pinned = true;
    } else {
      return Usage();
    }
  }
  std::string bytes;
  if (!ReadWholeFile(in_path, &bytes)) {
    std::fprintf(stderr, "cannot read %s\n", in_path.c_str());
    return 1;
  }
  auto in_format = s3::core::DetectSnapshotFormat(bytes);
  if (!in_format.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(),
                 in_format.status().ToString().c_str());
    return 1;
  }
  SnapshotFormat out_format = *in_format == SnapshotFormat::kText
                                  ? SnapshotFormat::kBinary
                                  : SnapshotFormat::kText;
  if (to_flag != nullptr) {
    if (std::strcmp(to_flag, "--to=text") == 0) {
      out_format = SnapshotFormat::kText;
    } else if (std::strcmp(to_flag, "--to=binary") == 0) {
      out_format = SnapshotFormat::kBinary;
    } else {
      return Usage();
    }
  }
  // --format=... implies a binary target (so `--format=v2` alone
  // upgrades a binary v1 file instead of bouncing through text).
  if (version_pinned && to_flag == nullptr) {
    out_format = SnapshotFormat::kBinary;
  }
  if (version_pinned && out_format != SnapshotFormat::kBinary) {
    std::fprintf(stderr, "--format=v1|v2 only applies to binary output\n");
    return 2;
  }

  auto instance = s3::core::LoadSnapshot(bytes);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(),
                 instance.status().ToString().c_str());
    return 1;
  }
  auto out_bytes =
      out_format == SnapshotFormat::kBinary
          ? s3::core::SaveBinarySnapshot(**instance, binary_version)
          : s3::core::SaveSnapshot(**instance, out_format);
  if (!out_bytes.ok()) {
    std::fprintf(stderr, "convert: %s\n",
                 out_bytes.status().ToString().c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out.write(out_bytes->data(),
                 static_cast<std::streamsize>(out_bytes->size()))) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s (%s) -> %s (%s%s), generation %llu\n", in_path.c_str(),
              s3::core::SnapshotFormatName(*in_format), out_path.c_str(),
              s3::core::SnapshotFormatName(out_format),
              out_format == SnapshotFormat::kBinary
                  ? (binary_version == s3::core::kBinarySnapshotV1 ? " v1"
                                                                   : " v2")
                  : "",
              static_cast<unsigned long long>((*instance)->generation()));
  return 0;
}

int Recover(const std::string& dir) {
  auto state = s3::server::SnapshotManager::Recover(dir);
  if (!state.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 state.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: recoverable\n", dir.c_str());
  std::printf("  snapshot generation     %llu\n",
              static_cast<unsigned long long>(state->snapshot_generation));
  std::printf("  WAL records replayed    %zu\n", state->replayed_records);
  std::printf("  WAL records skipped     %zu\n", state->skipped_records);
  std::printf("  tail discarded          %s\n",
              state->tail_discarded ? "yes (torn or corrupt)" : "no");
  std::printf("  would serve generation  %llu (lineage %llu)\n",
              static_cast<unsigned long long>(
                  state->instance->generation()),
              static_cast<unsigned long long>(state->instance->lineage()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "inspect" && argc == 3) return Inspect(argv[2]);
  if (command == "convert" && argc >= 4 && argc <= 6) {
    return Convert(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (command == "recover" && argc == 3) return Recover(argv[2]);
  return Usage();
}
