#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Reads both google-benchmark output ({"benchmarks": [{"name",
"real_time", "time_unit", ...}]}) and the BenchJsonWriter format the
figure harnesses emit ({"benchmarks": [{"name", "ns_per_op", ...}]}).
Benchmarks present in both files are compared on ns/op; a benchmark
slower than baseline by more than --tolerance (default 25%) counts as
a regression and flips the exit code to 1. Entries present on only one
side (e.g. a new benchmark without a committed baseline yet, or a
baseline record the run skipped) are reported and skipped, never
failed; a missing baseline *file* is a graceful skip, so the check
works before its baseline lands. A missing fresh file or a fully
disjoint name set is an error unless --allow-disjoint is passed (used
for merged multi-binary files where a run may contribute a subset) —
otherwise a benchmark rename could silently turn the gate vacuous.

Wired as a *non-blocking* CI step (continue-on-error): shared-runner
perf is advisory. Locally:

    ./build/bench_micro --benchmark_out=build/BENCH_micro.json \
        --benchmark_out_format=json
    tools/check_bench_regression.py --fresh build/BENCH_micro.json

    # server + live-update throughput (one merged file; run the pair
    # in this order — the server bench starts the file fresh, the
    # update bench merges into it):
    (cd build && ./bench_server_throughput && ./bench_update_throughput)
    tools/check_bench_regression.py \
        --baseline bench/baselines/BENCH_server.json \
        --fresh build/BENCH_server.json

To refresh a baseline after an intentional perf change, run with
--update-baselines: the committed baseline file is rewritten in place
from the fresh run (fresh records win; baseline-only records are kept,
so merged multi-binary baselines survive a partial run). The old
manual flow — overwriting the file by hand — is superseded. Commit the
rewritten file.

    tools/check_bench_regression.py --fresh build/BENCH_micro.json \
        --update-baselines

Baselines are machine-relative: numbers from a different host class
shift uniformly and the ratio check absorbs part of that, but for a
trustworthy CI comparison the baseline should be refreshed from the
CI job's own uploaded bench-json artifact rather than a developer
machine. (This, plus shared-runner noise, is why the CI step is
advisory rather than blocking.)
"""

import argparse
import json
import os
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "bench", "baselines",
                                "BENCH_micro.json")


def load_ns_per_op(path):
    """Returns {benchmark name: ns/op} from either supported format."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for record in doc.get("benchmarks", []):
        name = record.get("name")
        if name is None:
            continue
        # google-benchmark emits aggregate rows (mean/median/stddev)
        # alongside iteration rows when repetitions are configured;
        # compare only the plain iteration rows.
        if record.get("run_type", "iteration") != "iteration":
            continue
        if "ns_per_op" in record:  # BenchJsonWriter format
            out[name] = float(record["ns_per_op"])
        elif "real_time" in record:  # google-benchmark format
            unit = _UNIT_TO_NS.get(record.get("time_unit", "ns"))
            if unit is None:
                continue
            out[name] = float(record["real_time"]) * unit
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.2f%s" % (ns / scale, unit)
    return "%.0fns" % ns


def load_records(path):
    """Returns the raw record list of a BENCH json ([] when absent)."""
    if not os.path.exists(path):
        return []
    with open(path) as f:
        doc = json.load(f)
    return [r for r in doc.get("benchmarks", []) if r.get("name")]


def update_baselines(baseline_path, fresh_path):
    """Rewrites `baseline_path` from `fresh_path` (fresh names win)."""
    if not os.path.exists(fresh_path):
        print("ERROR: no fresh output at %s" % fresh_path)
        return 1
    fresh = load_records(fresh_path)
    if not fresh:
        print("ERROR: %s holds no benchmark records" % fresh_path)
        return 1
    fresh_names = {r["name"] for r in fresh}
    kept = [r for r in load_records(baseline_path)
            if r["name"] not in fresh_names]
    merged = fresh + kept
    os.makedirs(os.path.dirname(os.path.abspath(baseline_path)),
                exist_ok=True)
    with open(baseline_path, "w") as f:
        json.dump({"benchmarks": merged}, f, indent=2)
        f.write("\n")
    print("rewrote %s: %d record(s) from %s, %d kept from the old "
          "baseline" % (baseline_path, len(fresh), fresh_path, len(kept)))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Benchmark regression check against a committed "
                    "baseline.")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON "
                             "(default: bench/baselines/BENCH_micro.json)")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH JSON to check")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown as a fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--allow-disjoint", action="store_true",
                        help="exit 0 when the fresh file is missing or "
                             "shares no benchmark names with the "
                             "baseline (for merged multi-binary files "
                             "like BENCH_server.json, where a run may "
                             "legitimately contribute only a subset); "
                             "without it, a vacuous comparison fails "
                             "loudly so renames can't silently disable "
                             "the gate")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite the baseline file in place from "
                             "the fresh run instead of comparing: fresh "
                             "records replace same-named baseline "
                             "records, baseline-only records are kept "
                             "(for merged multi-binary files). Exits 0 "
                             "on success")
    args = parser.parse_args()

    if args.update_baselines:
        return update_baselines(args.baseline, args.fresh)

    if not os.path.exists(args.baseline):
        print("no baseline at %s — nothing to compare (ok)" % args.baseline)
        return 0
    if not os.path.exists(args.fresh):
        if args.allow_disjoint:
            print("no fresh output at %s — bench not run here (skip, ok)"
                  % args.fresh)
            return 0
        print("ERROR: no fresh output at %s" % args.fresh)
        return 1
    baseline = load_ns_per_op(args.baseline)
    fresh = load_ns_per_op(args.fresh)

    common = sorted(set(baseline) & set(fresh))
    if not common:
        if args.allow_disjoint:
            # Disjoint record sets (e.g. only one contributing binary
            # ran): nothing comparable is not a regression.
            print("no benchmarks in common between %s and %s — skip (ok)"
                  % (args.baseline, args.fresh))
            return 0
        print("ERROR: no benchmarks in common between %s and %s"
              % (args.baseline, args.fresh))
        return 1

    regressions, improvements = [], []
    width = max(len(n) for n in common)
    print("%-*s %10s %10s %8s" % (width, "benchmark", "baseline", "fresh",
                                  "ratio"))
    for name in common:
        ratio = fresh[name] / baseline[name] if baseline[name] > 0 else 1.0
        flag = ""
        if ratio > 1.0 + args.tolerance:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        elif ratio < 1.0 - args.tolerance:
            improvements.append((name, ratio))
            flag = "  (improved)"
        print("%-*s %10s %10s %7.2fx%s"
              % (width, name, format_ns(baseline[name]),
                 format_ns(fresh[name]), ratio, flag))

    only_base = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))
    if only_base:
        print("missing from fresh run (%d): %s"
              % (len(only_base), ", ".join(only_base)))
    if only_fresh:
        print("new benchmarks (%d, no baseline yet): %s"
              % (len(only_fresh), ", ".join(only_fresh)))

    print()
    if regressions:
        print("FAIL: %d benchmark(s) regressed beyond %.0f%%:"
              % (len(regressions), args.tolerance * 100))
        for name, ratio in regressions:
            print("  %s: %.2fx" % (name, ratio))
        return 1
    print("OK: %d benchmark(s) within %.0f%% of baseline (%d improved)"
          % (len(common), args.tolerance * 100, len(improvements)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
