#!/usr/bin/env python3
"""Diff two Prometheus text exposition dumps by series catalog.

Usage:
    tools/s3_metrics_diff.py --baseline bench/baselines/BENCH_server_metrics.prom \
        --fresh build/BENCH_server_metrics.prom [--strict]

Parses both files into (family, kind, label-keys) tuples and reports:
  - families present only in the baseline (a metric DISAPPEARED —
    dashboards and alerts keyed on it silently go dark), the case this
    gate exists for;
  - families present only in the fresh dump (new coverage — fine, but
    listed so the baseline gets refreshed);
  - families whose TYPE or label-key set changed (a breaking reshape
    of an existing series).

Values are deliberately NOT compared: sample magnitudes vary run to
run; the catalog is the contract.

Exit code is 0 unless --strict is passed AND a family disappeared or
changed shape. A missing baseline file is a graceful skip (the check
works before its baseline lands); a missing fresh file is an error.
Wired as an advisory (continue-on-error) step of the CI
bench-regression job.
"""

import argparse
import os
import re
import sys

SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+\S+(?:\s+\S+)?$")
LABEL_KEY_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="')
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse(path):
    """Returns {family: {"kind": str, "label_keys": set}}."""
    families = {}
    kinds = {}
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if line.startswith("# TYPE "):
                parts = line.split(None, 3)
                if len(parts) >= 4:
                    kinds[parts[2]] = parts[3]
                continue
            if not line or line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                continue
            name, labelblock = m.group(1), m.group(2) or ""
            family = name
            for suffix in HIST_SUFFIXES:
                if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                    family = name[: -len(suffix)]
                    break
            keys = set(LABEL_KEY_RE.findall(labelblock))
            keys.discard("le")  # histogram bucket label, not identity
            entry = families.setdefault(
                family, {"kind": kinds.get(family, "untyped"),
                         "label_keys": set()})
            entry["label_keys"] |= keys
    # Families declared (HELP/TYPE) but with no samples still count:
    # the catalog is the contract, traffic is not.
    for family, kind in kinds.items():
        families.setdefault(family, {"kind": kind, "label_keys": set()})
    return families


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--fresh", required=True)
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on disappeared/reshaped families")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"metrics-diff: no baseline at {args.baseline}; skipping "
              "(commit the fresh dump to create one)")
        return 0
    if not os.path.exists(args.fresh):
        print(f"metrics-diff: fresh dump {args.fresh} missing", file=sys.stderr)
        return 2

    base = parse(args.baseline)
    fresh = parse(args.fresh)

    disappeared = sorted(set(base) - set(fresh))
    appeared = sorted(set(fresh) - set(base))
    reshaped = []
    for family in sorted(set(base) & set(fresh)):
        b, f = base[family], fresh[family]
        if b["kind"] != f["kind"]:
            reshaped.append(f"{family}: kind {b['kind']} -> {f['kind']}")
        elif b["label_keys"] != f["label_keys"]:
            reshaped.append(
                f"{family}: label keys {sorted(b['label_keys'])} -> "
                f"{sorted(f['label_keys'])}")

    print(f"metrics-diff: {len(base)} baseline families, "
          f"{len(fresh)} fresh families")
    for family in disappeared:
        print(f"  DISAPPEARED  {family} ({base[family]['kind']})")
    for line in reshaped:
        print(f"  RESHAPED     {line}")
    for family in appeared:
        print(f"  new          {family} ({fresh[family]['kind']})")
    if not disappeared and not reshaped and not appeared:
        print("  catalogs identical")

    if args.strict and (disappeared or reshaped):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
