// s3_shard — splits a population dump into N shard storage
// directories (src/server/SHARDING.md).
//
//   s3_shard plan <snapshot> --shards=N
//       Dry run: partitions the population in memory and prints the
//       per-shard placement (owned users, materialized groups,
//       documents, tags, boundary social edges). Writes nothing.
//
//   s3_shard split <snapshot> <out-root> --shards=N
//       Partitions and materializes the deployment: one
//       SnapshotManager directory per shard (binary snapshot at the
//       population's generation) plus shard.meta / partition.meta.
//       The result is served with ShardRouter::Open(out-root) and
//       inspected with s3_snapshot inspect.
//
// <snapshot> is either codec: a text population dump (finalized on
// load, fresh generation-0 lineage per shard) or a binary snapshot.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/file_io.h"
#include "core/snapshot.h"
#include "shard/partitioner.h"
#include "shard/shard_meta.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  s3_shard plan <snapshot> --shards=N\n"
               "  s3_shard split <snapshot> <out-root> --shards=N\n");
  return 2;
}

int ParseShards(const char* flag, uint32_t* out) {
  if (std::strncmp(flag, "--shards=", 9) != 0) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(flag + 9, &end, 10);
  if (end == flag + 9 || *end != '\0' || v < 1 || v > 64) return 0;
  *out = static_cast<uint32_t>(v);
  return 1;
}

s3::Result<s3::shard::PartitionResult> LoadAndPartition(
    const std::string& path, uint32_t shards) {
  std::string bytes;
  S3_RETURN_IF_ERROR(s3::ReadFileToString(path, &bytes));
  auto instance = s3::core::LoadSnapshot(bytes);
  if (!instance.ok()) return instance.status();
  s3::shard::PartitionOptions options;
  options.shard_count = shards;
  return s3::shard::Partition(**instance, options);
}

void PrintPlan(const s3::shard::PartitionResult& partition) {
  std::printf("%-6s %12s %14s %10s %8s %14s\n", "shard", "owned users",
              "groups", "docs", "tags", "boundary edges");
  for (const auto& part : partition.shards) {
    std::printf("%-6u %12u %14llu %10zu %8zu %14llu\n", part.index,
                part.owned_users,
                static_cast<unsigned long long>(part.materialized_groups),
                part.instance->docs().DocumentCount(),
                part.instance->TagCount(),
                static_cast<unsigned long long>(part.boundary_social_edges));
  }
  std::printf(
      "population-wide: %llu cross-home social edges (replicated "
      "boundary set)\n",
      static_cast<unsigned long long>(partition.boundary_social_edges));
}

int Plan(const std::string& path, uint32_t shards) {
  auto partition = LoadAndPartition(path, shards);
  if (!partition.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 partition.status().ToString().c_str());
    return 1;
  }
  std::printf("%s -> %u shards (dry run)\n", path.c_str(), shards);
  PrintPlan(*partition);
  return 0;
}

int Split(const std::string& path, const std::string& out_root,
          uint32_t shards) {
  auto partition = LoadAndPartition(path, shards);
  if (!partition.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 partition.status().ToString().c_str());
    return 1;
  }
  s3::Status written = s3::shard::WritePartition(*partition, out_root);
  if (!written.ok()) {
    std::fprintf(stderr, "%s: %s\n", out_root.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("%s -> %s (%u shards)\n", path.c_str(), out_root.c_str(),
              shards);
  PrintPlan(*partition);
  std::printf("serve with ShardRouter::Open(\"%s\"); inspect any shard "
              "snapshot with s3_snapshot inspect\n",
              out_root.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string command = argv[1];
  uint32_t shards = 0;
  if (command == "plan" && argc == 4 && ParseShards(argv[3], &shards)) {
    return Plan(argv[2], shards);
  }
  if (command == "split" && argc == 5 && ParseShards(argv[4], &shards)) {
    return Split(argv[2], argv[3], shards);
  }
  return Usage();
}
