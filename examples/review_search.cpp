// Review search: a Yelp-like instance (the paper's I3 construction)
// queried side by side with the TopkS baseline, showing the
// qualitative differences measured in the paper's Figure 8.
//
//   ./build/examples/review_search
#include <cstdio>

#include "baseline/flatten.h"
#include "baseline/topks.h"
#include "core/s3k.h"
#include "eval/metrics.h"
#include "workload/business_gen.h"
#include "workload/query_gen.h"

using namespace s3;

int main() {
  workload::BusinessParams params;
  params.seed = 88;
  params.n_users = 600;
  params.n_businesses = 120;
  params.ontology.n_classes = 40;
  params.ontology.n_entities = 250;

  std::printf("Generating synthetic business-review instance...\n");
  workload::GenResult gen = workload::GenerateBusinessReviews(params);
  std::printf("users=%zu docs=%zu components=%zu\n\n",
              gen.instance->UserCount(),
              gen.instance->docs().DocumentCount(),
              gen.instance->components().ComponentCount());

  baseline::Flattened flat = baseline::FlattenToUit(*gen.instance);
  std::printf("flattened to %zu UIT items, %zu triples\n\n",
              flat.uit.ItemCount(), flat.uit.TripleCount());

  core::S3kOptions s3k_opts;
  s3k_opts.k = 5;
  core::S3kSearcher s3k(*gen.instance, s3k_opts);
  baseline::TopkSOptions tk_opts;
  tk_opts.k = 5;
  tk_opts.alpha = 0.5;
  baseline::TopkSSearcher topks(flat.uit, tk_opts);

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 5;
  spec.n_queries = 5;
  spec.seed = 4242;
  auto qs = workload::BuildWorkload(*gen.instance, gen.semantic_anchors,
                                    spec);

  double sum_inter = 0.0, sum_l1 = 0.0;
  for (const auto& q : qs.queries) {
    std::printf("seeker %s searches '%s'\n",
                gen.instance->users()[q.seeker].uri.c_str(),
                gen.instance->vocabulary().Spelling(q.keywords[0]).c_str());

    core::SearchStats st;
    auto rs = s3k.Search(core::QueryRequest(q), &st);
    std::printf("  S3k  :");
    std::vector<uint64_t> s3k_items;
    if (rs.ok()) {
      for (const auto& r : *rs) {
        std::printf(" %s", gen.instance->docs().Uri(r.node).c_str());
        auto item = flat.ItemOfNode(*gen.instance, r.node);
        if (item != baseline::kInvalidItem) s3k_items.push_back(item);
      }
    }
    std::printf("\n");

    auto rt = topks.Search(q.seeker, q.keywords);
    std::printf("  TopkS:");
    std::vector<uint64_t> tk_items;
    if (rt.ok()) {
      for (const auto& r : *rt) {
        std::printf(" item#%u", r.item);
        tk_items.push_back(r.item);
      }
    }
    std::printf("\n");

    double inter = eval::IntersectionRatio(s3k_items, tk_items);
    double l1 = eval::SpearmanFootRuleNormalized(s3k_items, tk_items);
    sum_inter += inter;
    sum_l1 += l1;
    std::printf("  intersection=%.0f%%  L1=%.2f\n\n", inter * 100, l1);
  }
  std::printf("averages over %zu queries: intersection=%.1f%%  L1=%.2f\n",
              qs.queries.size(), 100 * sum_inter / qs.queries.size(),
              sum_l1 / qs.queries.size());
  return 0;
}
