// Microblog search: a synthetic Twitter-like instance (the paper's I1
// construction) queried with both rare and common keywords.
//
// Demonstrates the workload machinery (generators + query sets) and the
// effect of the social dimension: the same keyword query returns
// different top-k answers for different seekers.
//
//   ./build/examples/microblog_search
#include <cstdio>

#include "common/timer.h"
#include "core/s3k.h"
#include "workload/instance_stats.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"

using namespace s3;

int main() {
  workload::MicroblogParams params;
  params.seed = 2014;
  params.n_users = 800;
  params.n_tweets = 2500;
  params.vocab_size = 1500;
  params.ontology.n_classes = 60;
  params.ontology.n_entities = 500;

  std::printf("Generating synthetic microblog instance...\n");
  WallTimer gen_timer;
  workload::GenResult gen = workload::GenerateMicroblog(params);
  std::printf("done in %.2fs\n\n", gen_timer.ElapsedSeconds());

  workload::InstanceStats stats = workload::ComputeStats(*gen.instance);
  std::printf("%s\n", workload::FormatStats(gen.name, stats).c_str());

  core::S3kOptions opts;
  opts.k = 5;
  core::S3kSearcher searcher(*gen.instance, opts);

  // One rare-keyword and one common-keyword workload.
  for (auto freq : {workload::Frequency::kRare, workload::Frequency::kCommon}) {
    workload::WorkloadSpec spec;
    spec.freq = freq;
    spec.n_keywords = 1;
    spec.k = 5;
    spec.n_queries = 3;
    spec.seed = 99;
    auto qs = workload::BuildWorkload(*gen.instance, gen.semantic_anchors,
                                      spec);
    std::printf("=== workload %s ===\n", qs.label.c_str());
    for (const auto& q : qs.queries) {
      std::printf("seeker %s, keywords:",
                  gen.instance->users()[q.seeker].uri.c_str());
      for (KeywordId k : q.keywords) {
        std::printf(" '%s'", gen.instance->vocabulary().Spelling(k).c_str());
      }
      std::printf("\n");
      core::SearchStats st;
      auto result = searcher.Search(q, &st);
      if (!result.ok()) {
        std::printf("  error: %s\n", result.status().ToString().c_str());
        continue;
      }
      for (const auto& r : *result) {
        std::printf("  %-18s [%.3e, %.3e]\n",
                    gen.instance->docs().Uri(r.node).c_str(), r.lower,
                    r.upper);
      }
      std::printf("  %zu candidates, %zu iterations, %.1f ms\n",
                  st.candidates_total, st.iterations,
                  st.elapsed_seconds * 1e3);
    }
    std::printf("\n");
  }

  // Same query, two seekers: the social dimension at work.
  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_queries = 1;
  spec.seed = 7;
  auto qs = workload::BuildWorkload(*gen.instance, gen.semantic_anchors,
                                    spec);
  core::Query q = qs.queries[0];
  std::printf("=== personalization: same keyword, different seekers ===\n");
  // Per-request options ride on the QueryRequest: here a certified
  // anytime answer — stop as soon as nothing omitted can beat the
  // worst returned tweet by more than 5%.
  core::QueryOptions qopts;
  qopts.mode = core::QueryMode::kAnytime;
  qopts.epsilon_approx = 0.05;
  for (social::UserId seeker : {q.seeker, (q.seeker + 137) %
                                              (uint32_t)gen.instance->UserCount()}) {
    auto result = searcher.Search(
        core::QueryRequest(seeker, q.keywords, qopts));
    std::printf("seeker %s:",
                gen.instance->users()[seeker].uri.c_str());
    if (result.ok()) {
      for (const auto& r : *result) {
        std::printf(" %s", gen.instance->docs().Uri(r.node).c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
