// Federated networks: the paper's requirement R6 (genericity,
// extensibility, interoperability).
//
// Two social applications — a microblog ("mb:") and a Q&A forum
// ("qa:") — are integrated into ONE S3 instance over a shared user
// population. Their relationship vocabularies are declared as RDFS
// specializations of the S3 properties; the forum's relations live
// purely in RDF and join the network at Finalize() (paper §2.2
// Extensibility). The same query gets richer answers as sources are
// added — the "monotonicity" R6 asks for.
//
//   ./build/examples/federated_networks
#include <cstdio>

#include "core/s3_instance.h"
#include "core/s3k.h"

using namespace s3;

namespace {

// Builds one instance; `include_forum` controls whether the second
// network's content and RDF-declared relations are added.
std::unique_ptr<core::S3Instance> Build(bool include_forum) {
  auto inst = std::make_unique<core::S3Instance>();

  auto alice = inst->AddUser("user:alice");
  auto bob = inst->AddUser("user:bob");
  auto carol = inst->AddUser("user:carol");

  // Network 1, the microblog: explicit follow edges.
  inst->DeclareSubProperty("mb:follows", "S3:social");
  (void)inst->AddSocialEdge(alice, bob, 0.8);

  KeywordId kubernetes = inst->InternKeyword("kubernetes");
  KeywordId outage = inst->InternKeyword("outage");

  doc::Document post("tweet");
  uint32_t text = post.AddChild(0, "text");
  post.AddKeywords(text, {kubernetes, inst->InternKeyword("tips")});
  (void)inst->AddDocument(std::move(post), "mb:post1", bob).value();

  if (include_forum) {
    // Network 2, the Q&A forum. Its social relations are *RDF data*:
    // qa:answeredFor ≺sp S3:social plus one triple per user pair,
    // imported into the network at Finalize.
    inst->DeclareSubProperty("qa:answeredFor", "S3:social");
    auto& g = inst->rdf_graph();
    auto& t = inst->terms();
    g.Add(t.InternUri("user:alice"), t.InternUri("qa:answeredFor"),
          t.InternUri("user:carol"), 0.6);

    doc::Document answer("answer");
    uint32_t body = answer.AddChild(0, "body");
    answer.AddKeywords(body, {kubernetes, outage});
    (void)inst->AddDocument(std::move(answer), "qa:answer7", carol)
        .value();
  }

  if (!inst->Finalize().ok()) return nullptr;
  return inst;
}

void RunQuery(core::S3Instance& inst, const char* label) {
  core::S3kOptions opts;
  opts.k = 5;
  core::S3kSearcher searcher(inst, opts);
  core::QueryRequest q(/*seeker=*/0 /* alice */,
                       {inst.vocabulary().Find("kubernetes")});
  core::SearchStats st;
  auto result = searcher.Search(q, &st);
  std::printf("%s — alice searches 'kubernetes':\n", label);
  if (result.ok()) {
    for (const auto& r : *result) {
      std::printf("  %-12s [%.5f, %.5f]\n", inst.docs().Uri(r.node).c_str(),
                  r.lower, r.upper);
    }
  }
  std::printf("  (social edges imported from RDF: %zu)\n\n",
              inst.rdf_social_edges());
}

}  // namespace

int main() {
  auto mb_only = Build(/*include_forum=*/false);
  auto federated = Build(/*include_forum=*/true);
  if (!mb_only || !federated) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  RunQuery(*mb_only, "microblog only");
  RunQuery(*federated, "microblog + Q&A forum (federated)");
  std::printf(
      "Adding the second network surfaces qa:answer7 next to the\n"
      "original result (absolute scores shift because path\n"
      "normalization sees more edges) — the added-content-adds-value\n"
      "monotonicity of requirement R6.\n");
  return 0;
}
