// Sharded serving end-to-end: build a small two-community population,
// split it into 2 shards, route queries, scatter-gather one, and push
// a live update through the router — the whole src/shard surface in
// one page. See src/server/SHARDING.md for the correctness argument.
#include <cstdio>
#include <memory>
#include <string>

#include "core/s3_instance.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"

using namespace s3;

int main() {
  // Two disjoint communities sharing a vocabulary.
  auto built = std::make_unique<core::S3Instance>();
  for (int u = 0; u < 6; ++u) built->AddUser("u" + std::to_string(u));
  const KeywordId coffee = built->InternKeyword("coffee");
  const KeywordId espresso = built->InternKeyword("espresso");
  built->DeclareSubClass("espresso", "coffee");
  for (int g = 0; g < 2; ++g) {
    const social::UserId base = g * 3;
    for (int i = 0; i < 2; ++i) {
      doc::Document d("post");
      d.AddKeywords(0, {i == 0 ? coffee : espresso});
      (void)built->AddDocument(std::move(d),
                               "g" + std::to_string(g) + "p" +
                                   std::to_string(i),
                               base + i);
    }
    (void)built->AddSocialEdge(base, base + 1, 0.8);
    (void)built->AddSocialEdge(base + 1, base + 2, 0.5);
  }
  if (!built->Finalize().ok()) return 1;
  std::shared_ptr<const core::S3Instance> full = std::move(built);

  // Partition into 2 shards and serve.
  shard::PartitionOptions popts;
  popts.shard_count = 2;
  auto partition = shard::Partition(*full, popts);
  if (!partition.ok()) return 1;
  std::printf("partitioned: %llu boundary social edges\n",
              static_cast<unsigned long long>(
                  partition->boundary_social_edges));

  shard::ShardRouterOptions ropts;
  ropts.service.workers = 2;
  ropts.service.search.k = 3;
  auto router = shard::ShardRouter::Serve(std::move(*partition), ropts);
  if (!router.ok()) return 1;

  // Routed query: one hop to the seeker's home shard.
  core::Query q{0, {coffee}};
  auto routed = (*router)->Query(q);
  if (!routed.ok()) return 1;
  std::printf("seeker 0 (home shard %u): %zu results\n",
              (*router)->HomeShardOfUser(0), routed->entries.size());
  for (const auto& e : routed->entries) {
    std::printf("  node %u score in [%.4f, %.4f]\n", e.node, e.lower,
                e.upper);
  }

  // Scatter-gather: same answer, with per-shard pruning visible and a
  // global certificate folded from every shard's bound exports.
  auto global = (*router)->QueryGlobal(q);
  if (!global.ok()) return 1;
  std::printf("scatter-gather: %zu shards queried, %zu pruned, "
              "certified eps=%.2e\n",
              global->shards_queried, global->shards_pruned,
              global->certified_epsilon);

  // Per-request options flow through the router verbatim: a certified
  // anytime request may stop each shard's search early, and the merge
  // reports the achieved global certificate.
  core::QueryOptions anytime;
  anytime.mode = core::QueryMode::kAnytime;
  anytime.epsilon_approx = 0.1;
  auto approx =
      (*router)->QueryGlobal(core::QueryRequest(0, {coffee}, anytime));
  if (!approx.ok()) return 1;
  std::printf("anytime scatter-gather (eps<=0.1): %zu results, "
              "achieved eps=%.2e\n",
              approx->entries.size(), approx->certified_epsilon);

  // Live update: a new post by user 1 reaches only its group's shards.
  auto update = (*router)->BeginUpdate();
  doc::Document d("post");
  d.AddKeywords(0, {update.InternKeyword("espresso")});
  if (!update.AddDocument(d, "live-post", 1).ok()) return 1;
  if (!(*router)->ApplyUpdate(update).ok()) return 1;
  std::printf("after update, per-shard generations:");
  for (uint64_t g : (*router)->Generations()) {
    std::printf(" %llu", static_cast<unsigned long long>(g));
  }
  std::printf("\n");

  auto after = (*router)->Query(q);
  if (!after.ok()) return 1;
  std::printf("seeker 0 now sees %zu results\n", after->entries.size());
  return 0;
}
