// Corpus ingestion: loading XML and JSON documents and an N-Triples
// ontology into an S3 instance (paper §2.3: "content is created under
// the form of structured, tree-shaped documents, e.g., XML, JSON").
//
//   ./build/examples/corpus_ingest
#include <cstdio>

#include "s3/s3.h"

using namespace s3;

int main() {
  core::S3Instance inst;
  auto editor = inst.AddUser("user:editor");
  auto blogger = inst.AddUser("user:blogger");
  auto reader = inst.AddUser("user:reader");
  (void)inst.AddSocialEdge(reader, editor, 0.9);
  (void)inst.AddSocialEdge(reader, blogger, 0.3);

  doc::TextInterner intern = [&](std::string_view text) {
    return inst.InternText(text);
  };

  // An XML article by the editor.
  const char* kXml = R"(<?xml version="1.0"?>
<article lang="en">
  <title>Universities and graduate outcomes</title>
  <section>
    <para>A degree opens doors, studies of graduates confirm.</para>
    <para>M.S. holders report the strongest effects.</para>
  </section>
</article>)";
  auto xml_doc = doc::ParseXml(kXml, intern);
  if (!xml_doc.ok()) {
    std::fprintf(stderr, "XML parse failed: %s\n",
                 xml_doc.status().ToString().c_str());
    return 1;
  }
  // Enrich: record the canonical ontology anchor next to the stemmed
  // text (the paper's DBpedia-URI replacement).
  xml_doc->AddKeywords(0, {inst.InternKeyword("degree")});
  auto article =
      inst.AddDocument(std::move(xml_doc).value(), "doc:article", editor)
          .value();

  // A JSON blog post replying to the article.
  const char* kJson = R"({
    "title": "my two cents",
    "body": "I got my m.s. in 2012 and it changed everything",
    "tags": ["education", "career"]
  })";
  auto json_doc = doc::ParseJson(kJson, "post", intern);
  if (!json_doc.ok()) {
    std::fprintf(stderr, "JSON parse failed: %s\n",
                 json_doc.status().ToString().c_str());
    return 1;
  }
  json_doc->AddKeywords(0, {inst.InternKeyword("m.s.")});
  auto post =
      inst.AddDocument(std::move(json_doc).value(), "doc:post", blogger)
          .value();
  (void)inst.AddComment(post, inst.docs().RootNode(article));

  // The ontology arrives as N-Triples.
  const char* kOntology =
      "# tiny degree ontology\n"
      "<m.s.> <rdfs:subClassOf> <degree> .\n"
      "<b.a.> <rdfs:subClassOf> <degree> .\n"
      "<degree> <rdfs:subClassOf> <qualification> .\n";
  auto parsed =
      rdf::ParseNTriples(kOntology, inst.terms(), inst.rdf_graph());
  if (!parsed.ok()) {
    std::fprintf(stderr, "N-Triples parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu ontology triples\n", parsed->triples);

  if (!inst.Finalize().ok()) return 1;
  std::printf("instance: %zu docs, %zu fragments, %zu RDF triples "
              "(after saturation)\n\n",
              inst.docs().DocumentCount(), inst.docs().NodeCount(),
              inst.rdf_graph().size());

  core::S3kSearcher searcher(inst, core::S3kOptions{});
  // The result size rides on the request (QueryOptions::k overrides
  // the searcher-wide default).
  core::QueryOptions opts;
  opts.k = 4;
  for (const char* kw : {"degree", "qualification", "graduate"}) {
    core::QueryRequest q(reader, {inst.InternKeyword(kw)}, opts);
    auto result = searcher.Search(q);
    std::printf("reader searches '%s':\n", kw);
    if (result.ok() && !result->empty()) {
      for (const auto& r : *result) {
        std::printf("  %-22s [%.5f, %.5f]\n",
                    inst.docs().Uri(r.node).c_str(), r.lower, r.upper);
      }
    } else {
      std::printf("  (no results)\n");
    }
  }
  return 0;
}
