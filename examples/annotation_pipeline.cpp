// Annotation pipeline: higher-level tags (the paper's requirement R4).
//
// Models an annotated corpus: an NLP tool tags snippets of documents
// with recognized entities; human curators then annotate (confirm) the
// tool's annotations; other users endorse documents. Tag-on-tag
// connections propagate to the underlying fragments and contribute to
// search, with each contributor's social proximity weighting its tuple.
//
//   ./build/examples/annotation_pipeline
#include <cstdio>

#include "core/s3_instance.h"
#include "core/s3k.h"

using namespace s3;

int main() {
  core::S3Instance inst;

  auto alice = inst.AddUser("user:alice");     // seeker
  auto nlp = inst.AddUser("tool:nlp");         // the NLP tagger "user"
  auto curator = inst.AddUser("user:curator");
  auto fan = inst.AddUser("user:fan");

  // Alice trusts the curator a lot, the tool some, the fan less.
  (void)inst.AddSocialEdge(alice, curator, 0.9);
  (void)inst.AddSocialEdge(alice, nlp, 0.5);
  (void)inst.AddSocialEdge(alice, fan, 0.2);

  // NLP:recognize is a kind of tagging (S3:relatedTo specialization).
  inst.DeclareSubProperty("NLP:recognize", "S3:relatedTo");

  // Corpus: two articles with text snippets.
  KeywordId turing = inst.InternKeyword("ent:alan_turing");
  inst.DeclareType("ent:alan_turing", "class:person");
  KeywordId person_class = inst.InternKeyword("class:person");

  doc::Document a("article");
  uint32_t a_snip = a.AddChild(0, "snippet");
  a.AddKeywords(a_snip, inst.InternText("the Entscheidungsproblem paper"));
  auto art1 = inst.AddDocument(std::move(a), "doc:art1", curator).value();
  doc::NodeId art1_snip = inst.docs().GlobalId(art1, a_snip);

  doc::Document b("article");
  uint32_t b_snip = b.AddChild(0, "snippet");
  b.AddKeywords(b_snip, inst.InternText("computability and the halting problem"));
  auto art2 = inst.AddDocument(std::move(b), "doc:art2", fan).value();
  doc::NodeId art2_snip = inst.docs().GlobalId(art2, b_snip);

  // The NLP tool recognizes "Alan Turing" in both snippets.
  auto t1 = inst.AddTagOnFragment(nlp, art1_snip, turing).value();
  (void)inst.AddTagOnFragment(nlp, art2_snip, turing).value();

  // The curator confirms the first recognition: a tag ON the tag,
  // with the same keyword (provenance-style higher-level annotation).
  (void)inst.AddTagOnTag(curator, t1, turing).value();

  // The fan endorses article 2 (keyword-less tag).
  (void)inst.AddTagOnFragment(fan, inst.docs().RootNode(art2),
                              kInvalidKeyword);

  if (!inst.Finalize().ok()) return 1;

  core::S3kOptions opts;
  opts.k = 3;
  core::S3kSearcher searcher(inst, opts);

  auto show = [&](const char* label, KeywordId kw) {
    core::QueryRequest q(alice, {kw});
    core::SearchStats st;
    auto result = searcher.Search(q, &st);
    std::printf("%s:\n", label);
    if (result.ok()) {
      for (const auto& r : *result) {
        std::printf("  %-14s [%.5f, %.5f]\n",
                    inst.docs().Uri(r.node).c_str(), r.lower, r.upper);
      }
    }
    std::printf("  (%zu candidates, converged=%s)\n\n",
                st.candidates_total, st.converged ? "yes" : "no");
  };

  // Search by the entity itself: art1 should win — the curator's
  // confirmation adds a high-proximity source on top of the tool's.
  show("alice searches 'ent:alan_turing'", turing);

  // Search by the CLASS: Ext(class:person) ∋ ent:alan_turing, so the
  // same documents surface through pure semantics.
  show("alice searches 'class:person' (via Ext)", person_class);
  return 0;
}
