// Quickstart: the paper's Figure 1 scenario, end to end.
//
// Builds a tiny S3 instance — users, a structured article, a reply, a
// comment, a tag, a small RDFS ontology — then runs the motivating
// query of the paper's introduction: user u1 searches for "degree".
// Thanks to the ontology (a M.S. *is a* degree) and the social /
// structural links (u1 -friend- u0 -posted- d0 -replied-by- d1), the
// engine surfaces content that contains only the word "m.s.".
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/s3_instance.h"
#include "core/s3k.h"

using s3::core::Query;
using s3::core::QueryMode;
using s3::core::QueryOptions;
using s3::core::QueryRequest;
using s3::core::ResultEntry;
using s3::core::S3Instance;
using s3::core::S3kOptions;
using s3::core::S3kSearcher;
using s3::core::SearchStats;

int main() {
  S3Instance inst;

  // ---- Users and social links.
  auto u0 = inst.AddUser("user:u0");
  auto u1 = inst.AddUser("user:u1");
  auto u2 = inst.AddUser("user:u2");
  auto u4 = inst.AddUser("user:u4");
  (void)inst.AddSocialEdge(u1, u0, 1.0);  // u1 is a friend of u0
  (void)inst.AddSocialEdge(u0, u1, 1.0);
  (void)inst.AddSocialEdge(u1, u4, 0.4);

  // ---- Ontology: a M.S. is a degree; a degree-holder is a graduate.
  inst.DeclareSubClass("m.s.", "degree");
  inst.DeclareSubClass("degree", "graduate");

  // ---- d0: a structured article by u0 ("A degree does give more
  // opportunities...").
  s3::doc::Document d0("article");
  uint32_t sec = d0.AddChild(0, "section");
  uint32_t par = d0.AddChild(sec, "paragraph");
  d0.AddKeywords(par, inst.InternText("A degree does give more opportunities"));
  // Semantic enrichment (the paper's foaf:name replacement): the word
  // "degree" is also recorded as the canonical ontology term.
  d0.AddKeywords(par, {inst.InternKeyword("degree")});
  auto d0_id = inst.AddDocument(std::move(d0), "doc:d0", u0).value();

  // ---- d1: u2 replies "When I got my M.S. @UAlberta in 2012 ...".
  s3::doc::Document d1("tweet");
  uint32_t text = d1.AddChild(0, "text");
  d1.AddKeywords(text, inst.InternText("When I got my M.S. @UAlberta in 2012"));
  // "m.s." must round-trip through the same keyword space as the
  // ontology anchor:
  d1.AddKeywords(text, {inst.InternKeyword("m.s.")});
  auto d1_id = inst.AddDocument(std::move(d1), "doc:d1", u2).value();
  (void)inst.AddComment(d1_id, inst.docs().RootNode(d0_id));

  // ---- u4 tags d0's paragraph with "university".
  auto par_node = inst.docs().FindByUri("doc:d0.1.1").value();
  (void)inst.AddTagOnFragment(u4, par_node, inst.InternKeyword("university"));

  // ---- Freeze and query.
  if (!inst.Finalize().ok()) {
    std::fprintf(stderr, "Finalize failed\n");
    return 1;
  }

  S3kOptions opts;
  opts.k = 5;
  opts.score.gamma = 1.5;
  opts.score.eta = 0.5;
  S3kSearcher searcher(inst, opts);

  auto run = [&](const char* label, const Query& q, bool semantics) {
    S3kOptions o = opts;
    o.use_semantics = semantics;
    S3kSearcher s(inst, o);
    SearchStats stats;
    auto result = s.Search(q, &stats);
    std::printf("%s (semantics %s):\n", label, semantics ? "on" : "off");
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return;
    }
    if (result->empty()) std::printf("  (no results)\n");
    for (const ResultEntry& r : *result) {
      std::printf("  %-12s score in [%.6f, %.6f]\n",
                  inst.docs().Uri(r.node).c_str(), r.lower, r.upper);
    }
    std::printf("  candidates=%zu, iterations=%zu, converged=%s\n\n",
                stats.candidates_total, stats.iterations,
                stats.converged ? "yes" : "no");
  };

  Query q;
  q.seeker = u1;
  q.keywords = {inst.InternKeyword("degree")};
  run("u1 searches 'degree'", q, /*semantics=*/true);
  run("u1 searches 'degree'", q, /*semantics=*/false);

  Query q2;
  q2.seeker = u1;
  q2.keywords = {inst.InternKeyword("university")};
  run("u1 searches 'university' (tag match)", q2, true);

  // ---- Per-request options: the same search as a certified anytime
  // request. QueryOptions override the service defaults for this one
  // query: k, a (1+eps) certificate, an optional deadline. eps = 0.1
  // lets the engine stop as soon as it can prove no omitted document
  // beats the worst returned one by more than 10%; the achieved
  // certificate comes back in SearchStats::certified_epsilon.
  QueryOptions anytime;
  anytime.mode = QueryMode::kAnytime;
  anytime.epsilon_approx = 0.1;
  anytime.k = 3;
  SearchStats stats;
  auto approx =
      searcher.Search(QueryRequest(u1, q.keywords, anytime), &stats);
  if (approx.ok()) {
    std::printf("anytime 'degree' (eps<=0.1): %zu results, achieved "
                "eps=%.2e, %zu iterations\n",
                approx->size(), stats.certified_epsilon, stats.iterations);
  }
  return 0;
}
