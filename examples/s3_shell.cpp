// s3_shell: a small batch/interactive front end for the library.
//
// Usage:
//   s3_shell [instance-file]
//
// Loads a serialized S3 instance (core/serialization.h format) — or a
// built-in demo instance when no file is given — finalizes it, and
// answers queries read from stdin, one per line:
//
//   <seeker-uri> <keyword> [keyword...]
//
// Prints the top-5 documents with their score intervals. Lines
// starting with '#' are echoed; EOF ends the session. Example:
//
//   echo "user:u1 degree" | ./build/examples/s3_shell
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "s3/s3.h"

using namespace s3;

namespace {

std::unique_ptr<core::S3Instance> BuildDemo() {
  auto inst = std::make_unique<core::S3Instance>();
  auto u0 = inst->AddUser("user:u0");
  auto u1 = inst->AddUser("user:u1");
  auto u2 = inst->AddUser("user:u2");
  (void)inst->AddSocialEdge(u1, u0, 1.0);
  (void)inst->AddSocialEdge(u0, u1, 1.0);
  inst->DeclareSubClass("m.s.", "degree");

  doc::Document d0("article");
  uint32_t par = d0.AddChild(0, "paragraph");
  d0.AddKeywords(par, inst->InternText("a degree gives more opportunities"));
  d0.AddKeywords(par, {inst->InternKeyword("degree")});
  auto a = inst->AddDocument(std::move(d0), "doc:d0", u0).value();

  doc::Document d1("tweet");
  uint32_t text = d1.AddChild(0, "text");
  d1.AddKeywords(text, inst->InternText("got my M.S. at @UAlberta in 2012"));
  d1.AddKeywords(text, {inst->InternKeyword("m.s.")});
  auto b = inst->AddDocument(std::move(d1), "doc:d1", u2).value();
  (void)inst->AddComment(b, inst->docs().RootNode(a));
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<core::S3Instance> inst;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto loaded = core::LoadInstance(buffer.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    inst = std::move(*loaded);
    std::fprintf(stderr, "loaded %s\n", argv[1]);
  } else {
    inst = BuildDemo();
    std::fprintf(stderr, "no instance file given; using the demo\n");
  }
  if (Status s = inst->Finalize(); !s.ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "instance ready: %zu users, %zu docs, %zu tags\n"
               "query format: <seeker-uri> <keyword> [keyword...]\n"
               ":eps <value> sets a certified anytime slack for later "
               "queries (0 = exact)\n"
               ":threads <n> sets intra-query threads (0 = auto; results "
               "are identical at any count)\n"
               ":trace toggles per-query engine iteration traces\n"
               ":metrics dumps the session's metric registry "
               "(Prometheus text)\n",
               inst->UserCount(), inst->docs().DocumentCount(),
               inst->TagCount());

  // Seeker lookup by URI.
  std::unordered_map<std::string, social::UserId> user_of;
  for (const auto& u : inst->users()) user_of.emplace(u.uri, u.id);

  core::S3kOptions opts;
  opts.k = 5;
  // Re-emplaced by ":threads <n>" (the pool is built at construction).
  std::optional<core::S3kSearcher> searcher;
  searcher.emplace(*inst, opts);

  // Session-wide per-request options, adjusted with ":eps <value>".
  core::QueryOptions qopts;

  // Session observability: shell queries bypass QueryService, so the
  // shell observes its own latency series into the default registry;
  // :metrics dumps the full registry (thread-pool series included).
  obs::RegisterProcessMetrics();
  obs::Histogram* h_query = obs::MetricRegistry::Default().GetHistogram(
      "s3_shell_query_seconds", "End-to-end latency of shell queries");
  obs::Counter* c_queries = obs::MetricRegistry::Default().GetCounter(
      "s3_shell_queries_total", "Queries answered by this shell session");
  uint64_t trace_id = 0;

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::printf("%s\n", line.c_str());
      continue;
    }
    std::istringstream in(line);
    std::string seeker_uri;
    in >> seeker_uri;
    if (seeker_uri == ":threads") {
      long n = -1;
      if (!(in >> n) || n < 0) {
        std::printf("! usage: :threads <count> (0 = auto)\n");
        continue;
      }
      opts.threads = static_cast<unsigned>(n);
      searcher.reset();
      searcher.emplace(*inst, opts);
      std::printf("-- intra-query threads=%u%s\n",
                  searcher->options().threads,
                  n == 0 ? " (auto)" : "");
      continue;
    }
    if (seeker_uri == ":metrics") {
      const std::string text = obs::MetricRegistry::Default().RenderPrometheus();
      if (text.empty()) {
        std::printf("-- observability compiled out (-DS3_OBS=OFF)\n");
      } else {
        std::fputs(text.c_str(), stdout);
      }
      continue;
    }
    if (seeker_uri == ":trace") {
      qopts.trace = !qopts.trace;
      std::printf("-- trace %s\n", qopts.trace ? "on" : "off");
      continue;
    }
    if (seeker_uri == ":eps") {
      double eps = 0.0;
      if (!(in >> eps) || eps < 0.0) {
        std::printf("! usage: :eps <non-negative value>\n");
        continue;
      }
      qopts.epsilon_approx = eps;
      qopts.mode = eps > 0.0 ? core::QueryMode::kAnytime
                             : core::QueryMode::kExact;
      std::printf("-- eps=%g (%s)\n", eps,
                  eps > 0.0 ? "certified anytime" : "exact");
      continue;
    }
    auto user_it = user_of.find(seeker_uri);
    if (user_it == user_of.end()) {
      std::printf("! unknown user '%s'\n", seeker_uri.c_str());
      continue;
    }
    core::Query q;
    q.seeker = user_it->second;
    std::string kw;
    while (in >> kw) {
      KeywordId id = inst->vocabulary().Find(kw);
      if (id == kInvalidKeyword) {
        // Fall back to the stemmed form of the word.
        auto interned = ExtractKeywords(kw);
        if (!interned.empty()) id = inst->vocabulary().Find(interned[0]);
      }
      if (id == kInvalidKeyword) {
        std::printf("! keyword '%s' does not occur anywhere\n", kw.c_str());
        q.keywords.clear();
        break;
      }
      q.keywords.push_back(id);
    }
    if (q.keywords.empty()) continue;

    core::SearchStats st;
    auto result = searcher->Search(
        core::QueryRequest(q.seeker, q.keywords, qopts), &st);
    if (!result.ok()) {
      std::printf("! %s\n", result.status().ToString().c_str());
      continue;
    }
    c_queries->Inc();
    h_query->Observe(st.elapsed_seconds);
    if (qopts.trace) {
      obs::QueryTrace trace;
      trace.id = ++trace_id;
      trace.label = line;
      trace.certified_epsilon = st.certified_epsilon;
      trace.total_seconds = st.elapsed_seconds;
      trace.spans.push_back(
          obs::TraceSpan{"search", 0.0, st.elapsed_seconds, 0});
      trace.iterations = st.iteration_trace;
      std::fputs(obs::FormatTrace(trace).c_str(), stdout);
    }
    if (result->empty()) std::printf("(no results)\n");
    for (const auto& r : *result) {
      std::printf("%-24s [%.6f, %.6f]\n",
                  inst->docs().Uri(r.node).c_str(), r.lower, r.upper);
    }
    std::printf("-- %zu candidates, %zu iterations, %.2f ms, "
                "certified eps=%.2e%s\n",
                st.candidates_total, st.iterations,
                st.elapsed_seconds * 1e3, st.certified_epsilon,
                st.converged ? "" : " (truncated)");
  }
  return 0;
}
