// Certified anytime ((1-ε) top-k) semantics across every query path:
// the core engine (single and batched lanes), the QueryService, and
// the ShardRouter.
//
// The contract under test (ISSUE 7):
//   (a) ε = 0 is *bit-for-bit* the exact search — the anytime code
//       path must be unreachable, so entries, iterations, convergence
//       flags and bound exports are EXPECT_EQ'd on doubles;
//   (b) every ε > 0 answer is certified against the NaiveSearch
//       oracle: no omitted document's true (converged) score exceeds
//       the exported remaining_upper, every returned interval brackets
//       its true score, and remaining_upper <= (1+achieved)·kth_lower;
//   (c) the achieved certificate never exceeds the requested ε (modulo
//       one ulp of the exit-condition division — tolerance 1e-9).
// Plus the deprecated-alias mapping (S3kOptions::time_budget_seconds
// == QueryOptions::deadline_seconds) and the post-search bound-export
// pin for the shard plan cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "server/query_service.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"
#include "test_fixtures.h"

namespace s3 {
namespace {

using core::BatchSeeker;
using core::Query;
using core::QueryMode;
using core::QueryOptions;
using core::QueryRequest;
using core::ResultEntry;
using core::S3Instance;
using core::S3kOptions;
using core::S3kSearcher;
using core::SearchStats;

constexpr double kEpsSweep[] = {0.0, 1e-6, 1e-2, 1e-1};
// One-ulp slack on the achieved-vs-requested comparison (the exit
// condition multiplies, the certificate divides).
constexpr double kCertTol = 1e-9;
// Oracle slack: converged proximities vs the engine's truncated
// bounds (the s3k_test idiom).
constexpr double kOracleTol = 1e-7;

// Converged proximity via long matrix iteration (γ^-iters ≈ 0), the
// oracle construction shared with tests/s3k_test.cc.
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = core::CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += core::CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

S3kOptions TestOptions() {
  S3kOptions opts;
  opts.k = 4;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  return opts;
}

QueryRequest Anytime(social::UserId seeker, std::vector<KeywordId> kw,
                     double eps, double deadline = 0.0) {
  QueryOptions o;
  o.epsilon_approx = eps;
  o.deadline_seconds = deadline;
  o.mode = QueryMode::kAnytime;
  return QueryRequest(seeker, std::move(kw), o);
}

void ExpectBitIdentical(const std::vector<ResultEntry>& got,
                        const SearchStats& got_stats,
                        const std::vector<ResultEntry>& want,
                        const SearchStats& want_stats, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << what << " #" << i;
    EXPECT_EQ(got[i].lower, want[i].lower) << what << " #" << i;
    EXPECT_EQ(got[i].upper, want[i].upper) << what << " #" << i;
  }
  EXPECT_EQ(got_stats.iterations, want_stats.iterations) << what;
  EXPECT_EQ(got_stats.converged, want_stats.converged) << what;
  EXPECT_EQ(got_stats.kth_lower, want_stats.kth_lower) << what;
  EXPECT_EQ(got_stats.remaining_upper, want_stats.remaining_upper) << what;
  EXPECT_EQ(got_stats.certified_epsilon, want_stats.certified_epsilon) << what;
  EXPECT_EQ(got_stats.deadline_exceeded, want_stats.deadline_exceeded) << what;
}

// Certifies one answer against the brute-force oracle: intervals
// bracket true scores, omitted documents stay under remaining_upper,
// and the exported certificate is consistent with the bounds.
void ExpectOracleCertified(const S3Instance& inst, const Query& q,
                           const S3kOptions& opts,
                           const std::vector<ResultEntry>& entries,
                           double kth_lower, double remaining_upper,
                           double certified, const std::string& what) {
  auto prox = ConvergedProx(inst, q.seeker, opts.score.gamma);
  S3kOptions all = opts;
  all.k = 100000;  // every scored candidate, ranked
  auto oracle = core::NaiveSearchWithProx(inst, q, all, prox);

  std::set<doc::NodeId> returned;
  for (const ResultEntry& e : entries) returned.insert(e.node);
  double min_lower = std::numeric_limits<double>::infinity();
  for (const ResultEntry& e : entries) {
    min_lower = std::min(min_lower, e.lower);
  }
  if (entries.empty()) min_lower = 0.0;
  EXPECT_EQ(min_lower, kth_lower) << what << " kth_lower export";

  std::set<doc::NodeId> seen_oracle;
  for (const ResultEntry& o : oracle) {
    seen_oracle.insert(o.node);
    if (returned.count(o.node)) continue;
    // Omitted: the certificate bounds its true score.
    EXPECT_LE(o.lower, remaining_upper + kOracleTol)
        << what << " omitted node " << o.node;
  }
  for (const ResultEntry& e : entries) {
    ASSERT_TRUE(seen_oracle.count(e.node)) << what << " node " << e.node;
    for (const ResultEntry& o : oracle) {
      if (o.node != e.node) continue;
      EXPECT_LE(e.lower, o.lower + kOracleTol) << what << " node " << e.node;
      EXPECT_GE(e.upper, o.lower - kOracleTol) << what << " node " << e.node;
      break;
    }
  }
  // Certificate self-consistency: what the bounds prove.
  if (kth_lower > 0.0) {
    EXPECT_LE(remaining_upper, (1.0 + certified) * kth_lower + kCertTol)
        << what;
  }
}

// ---- QueryOptions validation + ResolveLane (satellite 1) -----------------

TEST(QueryOptionsTest, ValidateAcceptsAndRejects) {
  QueryOptions o;
  EXPECT_TRUE(o.Validate().ok());  // all-default is exact

  o.mode = QueryMode::kAnytime;
  o.epsilon_approx = 0.1;
  o.deadline_seconds = 2.5;
  o.k = 7;
  EXPECT_TRUE(o.Validate().ok());

  QueryOptions bad;
  bad.epsilon_approx = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad.epsilon_approx = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(bad.Validate().ok());
  bad.epsilon_approx = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(bad.Validate().ok());

  // epsilon on an exact-mode request is a contradiction, not a no-op.
  bad = QueryOptions{};
  bad.epsilon_approx = 0.01;
  EXPECT_FALSE(bad.Validate().ok());

  bad = QueryOptions{};
  bad.deadline_seconds = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad.deadline_seconds = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(QueryOptionsTest, ResolveLaneMapsDefaultsAndDeadlineAlias) {
  S3kOptions defaults = TestOptions();
  defaults.k = 9;
  defaults.time_budget_seconds = 0.125;  // deprecated alias

  // All-inherit exact request: service k, legacy budget as deadline,
  // no epsilon.
  BatchSeeker lane = core::ResolveLane(QueryRequest(Query{3, {}}), defaults);
  EXPECT_EQ(lane.seeker, 3u);
  EXPECT_EQ(lane.k, 9u);
  EXPECT_EQ(lane.epsilon_approx, 0.0);
  EXPECT_EQ(lane.deadline_seconds, 0.125);

  // Per-request values override every default.
  QueryOptions o;
  o.k = 2;
  o.epsilon_approx = 0.05;
  o.deadline_seconds = 0.5;
  o.mode = QueryMode::kAnytime;
  lane = core::ResolveLane(QueryRequest(4, {}, o), defaults);
  EXPECT_EQ(lane.k, 2u);
  EXPECT_EQ(lane.epsilon_approx, 0.05);
  EXPECT_EQ(lane.deadline_seconds, 0.5);

  // Exact mode never carries epsilon into the lane.
  o.mode = QueryMode::kExact;
  o.epsilon_approx = 0.0;
  lane = core::ResolveLane(QueryRequest(4, {}, o), defaults);
  EXPECT_EQ(lane.epsilon_approx, 0.0);
}

// The legacy time_budget_seconds run and the per-request
// deadline_seconds run must be the same search, instruction for
// instruction.
TEST(QueryOptionsTest, LegacyTimeBudgetIsDeadlineAlias) {
  testing::RandomInstanceParams p;
  p.seed = 31;
  p.n_users = 8;
  p.n_docs = 12;
  auto ri = testing::BuildRandomInstance(p);

  // Find a query the exact engine needs >= 2 iterations for, so a
  // microscopic budget provably truncates it.
  S3kOptions exact_opts = TestOptions();
  S3kSearcher probe(*ri.instance, exact_opts);
  Query q;
  bool found = false;
  for (social::UserId u = 0; u < 8 && !found; ++u) {
    for (size_t kw = 0; kw + 1 < ri.keywords.size() && !found; ++kw) {
      Query cand{u, {ri.keywords[kw], ri.keywords[kw + 1]}};
      SearchStats st;
      auto r = probe.Search(cand, &st);
      if (r.ok() && st.iterations >= 2 && !r->empty()) {
        q = cand;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "fixture too easy: every query converges in 1 iter";

  S3kOptions legacy = exact_opts;
  legacy.time_budget_seconds = 1e-12;
  S3kSearcher legacy_searcher(*ri.instance, legacy);
  SearchStats legacy_stats;
  auto legacy_res = legacy_searcher.Search(q, &legacy_stats);
  ASSERT_TRUE(legacy_res.ok()) << legacy_res.status().ToString();
  EXPECT_TRUE(legacy_stats.deadline_exceeded);
  EXPECT_FALSE(legacy_stats.converged);

  S3kSearcher plain(*ri.instance, exact_opts);
  QueryOptions o;
  o.deadline_seconds = 1e-12;
  SearchStats req_stats;
  auto req_res = plain.Search(QueryRequest(q.seeker, q.keywords, o), &req_stats);
  ASSERT_TRUE(req_res.ok()) << req_res.status().ToString();
  ExpectBitIdentical(*req_res, req_stats, *legacy_res, legacy_stats,
                     "deadline == legacy time budget");
}

// ---- core engine sweep (satellite 3, {batched} leg included) -------------

TEST(AnytimeSearchTest, EpsilonSweepMatchesExactAndOracle) {
  for (uint64_t seed : {7u, 19u, 42u}) {
    testing::RandomInstanceParams p;
    p.seed = seed;
    p.n_users = 7;
    p.n_docs = 10;
    auto ri = testing::BuildRandomInstance(p);
    const S3Instance& inst = *ri.instance;
    S3kOptions opts = TestOptions();
    S3kSearcher searcher(inst, opts);

    for (social::UserId u = 0; u < p.n_users; ++u) {
      Query q{u, {ri.keywords[0], ri.keywords[2]}};
      SearchStats exact_stats;
      auto exact = searcher.Search(q, &exact_stats);
      ASSERT_TRUE(exact.ok()) << exact.status().ToString();

      for (double eps : kEpsSweep) {
        const std::string what = "seed=" + std::to_string(seed) +
                                 " seeker=" + std::to_string(u) +
                                 " eps=" + std::to_string(eps);
        SearchStats stats;
        auto res = searcher.Search(Anytime(u, q.keywords, eps), &stats);
        ASSERT_TRUE(res.ok()) << res.status().ToString();

        if (eps == 0.0) {
          // (a) the anytime path must be unreachable at eps = 0.
          ExpectBitIdentical(*res, stats, *exact, exact_stats, what);
          continue;
        }
        // Anytime may only stop earlier, never later.
        EXPECT_LE(stats.iterations, exact_stats.iterations) << what;
        EXPECT_TRUE(stats.converged) << what;
        // (c) achieved <= requested.
        EXPECT_LE(stats.certified_epsilon, eps + kCertTol) << what;
        // (b) oracle-certified.
        if (!res->empty()) {
          ExpectOracleCertified(inst, q, opts, *res, stats.kth_lower,
                                stats.remaining_upper,
                                stats.certified_epsilon, what);
        }
      }
    }
  }
}

// A very loose certificate must actually trigger the early exit on a
// query the exact engine works multiple iterations for — pins that the
// anytime path is live, not vacuously certified at the exact stop.
TEST(AnytimeSearchTest, LooseEpsilonExitsBeforeExactStop) {
  testing::RandomInstanceParams p;
  p.seed = 23;
  p.n_users = 10;
  p.n_docs = 14;
  p.social_density = 0.4;
  auto ri = testing::BuildRandomInstance(p);
  S3kOptions opts = TestOptions();
  S3kSearcher searcher(*ri.instance, opts);

  bool exited_early = false;
  for (social::UserId u = 0; u < p.n_users && !exited_early; ++u) {
    for (size_t kw = 0; kw < ri.keywords.size() && !exited_early; ++kw) {
      Query q{u, {ri.keywords[kw]}};
      SearchStats exact_stats;
      auto exact = searcher.Search(q, &exact_stats);
      ASSERT_TRUE(exact.ok());
      if (exact->empty() || exact_stats.iterations < 3) continue;
      SearchStats stats;
      auto res = searcher.Search(Anytime(u, q.keywords, 8.0), &stats);
      ASSERT_TRUE(res.ok());
      EXPECT_LE(stats.certified_epsilon, 8.0 + kCertTol);
      if (stats.iterations < exact_stats.iterations) exited_early = true;
    }
  }
  EXPECT_TRUE(exited_early)
      << "eps=8 never stopped before the exact threshold condition";
}

TEST(AnytimeSearchTest, BatchedMixedEpsilonMatchesSoloLanes) {
  testing::RandomInstanceParams p;
  p.seed = 11;
  p.n_users = 8;
  p.n_docs = 12;
  auto ri = testing::BuildRandomInstance(p);
  const S3Instance& inst = *ri.instance;
  S3kOptions opts = TestOptions();
  S3kSearcher searcher(inst, opts);

  std::vector<KeywordId> kws = {ri.keywords[1], ri.keywords[3]};
  auto plan = core::BuildCandidatePlan(inst, kws, opts.use_semantics,
                                       opts.score.eta);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // One lane per sweep point, distinct seekers, one mixed batch.
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < 4; ++i) {
    requests.push_back(
        Anytime(static_cast<social::UserId>(i), kws, kEpsSweep[i]));
  }
  requests[0].options.mode = QueryMode::kExact;  // eps 0 as a plain lane

  std::vector<BatchSeeker> batch;
  for (const QueryRequest& r : requests) {
    batch.push_back(core::ResolveLane(r, opts));
  }
  auto batched = searcher.SearchBatchWithPlan(batch, *plan);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), requests.size());

  S3kSearcher solo(inst, opts);
  for (size_t i = 0; i < requests.size(); ++i) {
    SearchStats stats;
    auto want = solo.SearchWithPlan(requests[i], *plan, &stats);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ExpectBitIdentical((*batched)[i].entries, (*batched)[i].stats, *want,
                       stats, "mixed-eps lane " + std::to_string(i));
    EXPECT_LE((*batched)[i].stats.certified_epsilon,
              batch[i].epsilon_approx + kCertTol);
  }
}

TEST(AnytimeSearchTest, RejectsInvalidPerRequestOptions) {
  auto fig = testing::BuildFigure3();
  S3kSearcher searcher(*fig.instance, TestOptions());

  QueryOptions o;
  o.epsilon_approx = -1.0;
  EXPECT_FALSE(searcher.Search(QueryRequest(fig.u0, {fig.k0}, o)).ok());
  o = QueryOptions{};
  o.epsilon_approx = 0.5;  // kExact + eps: contradiction
  EXPECT_FALSE(searcher.Search(QueryRequest(fig.u0, {fig.k0}, o)).ok());
  o = QueryOptions{};
  o.deadline_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(searcher.Search(QueryRequest(fig.u0, {fig.k0}, o)).ok());
}

// ---- service sweep (satellite 3 {service} leg + satellite 6) -------------

server::QueryServiceOptions ServiceOptions() {
  server::QueryServiceOptions o;
  o.workers = 2;
  o.search = TestOptions();
  return o;
}

Result<server::QueryResponse> AskService(server::QueryService& svc,
                                         QueryRequest req) {
  auto fut = svc.SubmitBlocking(std::move(req));
  if (!fut.ok()) return fut.status();
  return fut->get();
}

TEST(AnytimeServiceTest, EpsilonSweepAndCounters) {
  testing::RandomInstanceParams p;
  p.seed = 13;
  p.n_users = 7;
  p.n_docs = 10;
  auto ri = testing::BuildRandomInstance(p);
  std::shared_ptr<const S3Instance> inst = std::move(ri.instance);
  server::QueryService svc(inst, ServiceOptions());
  S3kOptions opts = TestOptions();

  uint64_t expect_anytime = 0;
  for (social::UserId u = 0; u < p.n_users; ++u) {
    Query q{u, {ri.keywords[0], ri.keywords[2]}};
    auto exact = AskService(svc, q);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(exact->certified_epsilon, exact->stats.certified_epsilon);

    for (double eps : kEpsSweep) {
      const std::string what =
          "seeker=" + std::to_string(u) + " eps=" + std::to_string(eps);
      auto res = AskService(svc, Anytime(u, q.keywords, eps));
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      ++expect_anytime;
      // The response surfaces the achieved certificate.
      EXPECT_EQ(res->certified_epsilon, res->stats.certified_epsilon) << what;
      EXPECT_EQ(res->deadline_exceeded, res->stats.deadline_exceeded) << what;
      if (eps == 0.0) {
        ExpectBitIdentical(res->entries, res->stats, exact->entries,
                           exact->stats, what);
      } else {
        EXPECT_LE(res->certified_epsilon, eps + kCertTol) << what;
        if (!res->entries.empty()) {
          ExpectOracleCertified(*inst, q, opts, res->entries,
                                res->stats.kth_lower,
                                res->stats.remaining_upper,
                                res->certified_epsilon, what);
        }
      }
    }
  }

  auto stats = svc.Stats();
  EXPECT_EQ(stats.anytime_queries, expect_anytime);
  // Every completed query lands in exactly one certificate bucket.
  uint64_t hist_total = 0;
  for (uint64_t b : stats.certified_eps_hist) hist_total += b;
  EXPECT_EQ(hist_total, stats.completed);
  // The operator view renders the anytime block.
  std::string line = eval::FormatCounters(stats.Counters());
  EXPECT_NE(line.find("anytime="), std::string::npos) << line;
  EXPECT_NE(line.find("eps["), std::string::npos) << line;
}

TEST(AnytimeServiceTest, DeadlineExpiryDegradesNotFails) {
  testing::RandomInstanceParams p;
  p.seed = 31;
  p.n_users = 8;
  p.n_docs = 12;
  auto ri = testing::BuildRandomInstance(p);
  std::shared_ptr<const S3Instance> inst = std::move(ri.instance);
  server::QueryService svc(inst, ServiceOptions());

  // A query the engine needs >= 2 iterations for (same probe as the
  // alias test), so a microscopic deadline provably expires.
  S3kSearcher probe(*inst, TestOptions());
  Query q;
  bool found = false;
  for (social::UserId u = 0; u < 8 && !found; ++u) {
    SearchStats st;
    Query cand{u, {ri.keywords[0], ri.keywords[1]}};
    auto r = probe.Search(cand, &st);
    if (r.ok() && st.iterations >= 2 && !r->empty()) {
      q = cand;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  auto res = AskService(svc, Anytime(q.seeker, q.keywords, 0.0, 1e-12));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->deadline_exceeded);
  EXPECT_FALSE(res->stats.converged);
  EXPECT_GE(res->certified_epsilon, 0.0);  // may be inf: uncertified
  EXPECT_GE(svc.Stats().deadline_exceeded, 1u);
}

TEST(AnytimeServiceTest, SubmitValidatesOptions) {
  auto fig = testing::BuildFigure3();
  std::shared_ptr<const S3Instance> inst = std::move(fig.instance);
  server::QueryService svc(inst, ServiceOptions());

  QueryOptions o;
  o.epsilon_approx = 0.5;  // exact mode: contradiction
  auto fut = svc.Submit(QueryRequest(fig.u0, {fig.k0}, o));
  EXPECT_FALSE(fut.ok());
  EXPECT_EQ(fut.status().code(), StatusCode::kInvalidArgument);

  o = QueryOptions{};
  o.deadline_seconds = -2.0;
  EXPECT_FALSE(svc.Submit(QueryRequest(fig.u0, {fig.k0}, o)).ok());

  // A well-formed anytime request still answers.
  o = QueryOptions{};
  o.mode = QueryMode::kAnytime;
  o.epsilon_approx = 0.25;
  auto res = AskService(svc, QueryRequest(fig.u0, {fig.k0}, o));
  EXPECT_TRUE(res.ok());
}

// ---- router sweep (satellite 3 {router} leg + satellite 2) ---------------

// Disjoint social groups over a shared keyword pool (the shard_test
// fixture shape, compacted).
struct MultiGroup {
  std::unique_ptr<S3Instance> instance;
  std::vector<KeywordId> keywords;
};

MultiGroup BuildMultiGroup(uint32_t n_groups, uint32_t users_per_group,
                           uint64_t seed) {
  MultiGroup out;
  out.instance = std::make_unique<S3Instance>();
  S3Instance& inst = *out.instance;
  Rng rng(seed);

  for (uint32_t u = 0; u < n_groups * users_per_group; ++u) {
    inst.AddUser("u" + std::to_string(u));
  }
  for (uint32_t k = 0; k < 5; ++k) {
    out.keywords.push_back(inst.InternKeyword("kw" + std::to_string(k)));
  }
  inst.DeclareSubClass("kw1", "kw0");

  for (uint32_t g = 0; g < n_groups; ++g) {
    const social::UserId base = g * users_per_group;
    std::vector<doc::DocId> docs;
    const uint32_t n_docs = 2 + g % 3;
    for (uint32_t i = 0; i < n_docs; ++i) {
      doc::Document d("doc");
      uint32_t child = d.AddChild(0, "sec");
      d.AddKeywords(0, {out.keywords[rng.Uniform(out.keywords.size())]});
      d.AddKeywords(child, {out.keywords[rng.Uniform(out.keywords.size())]});
      const social::UserId poster =
          base + static_cast<social::UserId>(rng.Uniform(users_per_group));
      docs.push_back(
          inst.AddDocument(std::move(d),
                           "g" + std::to_string(g) + "d" + std::to_string(i),
                           poster)
              .value());
      if (i > 0 && rng.Chance(0.6)) {
        (void)inst.AddComment(docs[i],
                              inst.docs().RootNode(docs[rng.Uniform(i)]));
      }
    }
    for (uint32_t t = 0; t < 2; ++t) {
      const social::UserId author =
          base + static_cast<social::UserId>(rng.Uniform(users_per_group));
      (void)inst.AddTagOnFragment(
          author, inst.docs().RootNode(docs[rng.Uniform(docs.size())]),
          rng.Chance(0.7) ? out.keywords[rng.Uniform(out.keywords.size())]
                          : kInvalidKeyword);
    }
    for (uint32_t a = 0; a < users_per_group; ++a) {
      for (uint32_t b = 0; b < users_per_group; ++b) {
        if (a != b && rng.Chance(0.6)) {
          (void)inst.AddSocialEdge(base + a, base + b,
                                   0.2 + 0.8 * rng.NextDouble());
        }
      }
    }
  }
  EXPECT_TRUE(inst.Finalize().ok());
  return out;
}

std::unique_ptr<shard::ShardRouter> ServeShards(const S3Instance& inst,
                                                uint32_t n_shards,
                                                bool cache_on) {
  shard::PartitionOptions popts;
  popts.shard_count = n_shards;
  auto partition = shard::Partition(inst, popts);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  shard::ShardRouterOptions ropts;
  ropts.service = ServiceOptions();
  ropts.service.enable_cache = cache_on;
  auto router = shard::ShardRouter::Serve(std::move(*partition), ropts);
  EXPECT_TRUE(router.ok()) << router.status().ToString();
  return std::move(*router);
}

TEST(AnytimeShardTest, EpsilonSweepThroughRouter) {
  auto mg = BuildMultiGroup(3, 3, 17);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> full_shared = std::move(mg.instance);
  server::QueryService unsharded(full_shared, ServiceOptions());
  S3kOptions opts = TestOptions();

  for (uint32_t n_shards : {2u, 3u}) {
    auto router = ServeShards(full, n_shards, /*cache_on=*/true);
    for (social::UserId u = 0; u < full.UserCount(); u += 2) {
      Query q{u, {mg.keywords[0], mg.keywords[2]}};
      auto exact = AskService(unsharded, q);
      ASSERT_TRUE(exact.ok()) << exact.status().ToString();

      for (double eps : kEpsSweep) {
        const std::string what = "shards=" + std::to_string(n_shards) +
                                 " seeker=" + std::to_string(u) +
                                 " eps=" + std::to_string(eps);
        QueryRequest req = Anytime(u, q.keywords, eps);

        // Home-shard routing: single-instance semantics verbatim.
        auto homed = router->Query(req);
        ASSERT_TRUE(homed.ok()) << homed.status().ToString();
        if (eps == 0.0) {
          ExpectBitIdentical(homed->entries, homed->stats, exact->entries,
                             exact->stats, what + " [home]");
        } else {
          EXPECT_LE(homed->certified_epsilon, eps + kCertTol)
              << what << " [home]";
        }

        // Scatter-gather: merged entries + a *global* certificate
        // folded from the per-shard exports.
        auto global = router->QueryGlobal(req);
        ASSERT_TRUE(global.ok()) << global.status().ToString();
        EXPECT_FALSE(global->deadline_exceeded) << what;
        if (eps == 0.0) {
          ASSERT_EQ(global->entries.size(), exact->entries.size()) << what;
          for (size_t i = 0; i < exact->entries.size(); ++i) {
            EXPECT_EQ(global->entries[i].node, exact->entries[i].node) << what;
            EXPECT_EQ(global->entries[i].lower, exact->entries[i].lower)
                << what;
            EXPECT_EQ(global->entries[i].upper, exact->entries[i].upper)
                << what;
          }
          // Exact global answers certify (near) zero.
          EXPECT_LE(global->certified_epsilon, kCertTol) << what;
        }
        if (!global->entries.empty()) {
          ExpectOracleCertified(full, q, opts, global->entries,
                                global->kth_lower, global->remaining_upper,
                                global->certified_epsilon, what + " [global]");
        }
        // Per-shard local certificates respect the request.
        for (const shard::ShardReport& r : global->shards) {
          if (!r.queried) continue;
          EXPECT_LE(r.certified_epsilon, eps + kCertTol)
              << what << " shard " << r.shard;
        }
      }
    }
  }
}

// Satellite 2 pin: the per-shard bound exports are the *post-search*
// values — the plan cache stores seeker-independent plans, never
// stats — so a cache-hit answer exports bit-for-bit what the cold
// answer exported. (Referenced from shard_router.cc.)
TEST(AnytimeShardTest, CacheHitExportsMatchColdExports) {
  auto mg = BuildMultiGroup(3, 3, 29);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> keep = std::move(mg.instance);
  auto router = ServeShards(full, 3, /*cache_on=*/true);

  for (double eps : {0.0, 0.05}) {
    QueryRequest req = Anytime(1, {mg.keywords[1], mg.keywords[3]}, eps);
    auto cold = router->QueryGlobal(req);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto warm = router->QueryGlobal(req);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    // The repeat actually exercised the plan cache somewhere.
    bool any_hit = warm->cache_hit;
    for (const shard::ShardReport& r : warm->shards) any_hit |= r.cache_hit;
    EXPECT_TRUE(any_hit) << "eps=" << eps;

    ASSERT_EQ(warm->shards.size(), cold->shards.size());
    for (size_t s = 0; s < cold->shards.size(); ++s) {
      EXPECT_EQ(warm->shards[s].kth_lower, cold->shards[s].kth_lower)
          << "shard " << s << " eps=" << eps;
      EXPECT_EQ(warm->shards[s].remaining_upper,
                cold->shards[s].remaining_upper)
          << "shard " << s << " eps=" << eps;
      EXPECT_EQ(warm->shards[s].certified_epsilon,
                cold->shards[s].certified_epsilon)
          << "shard " << s << " eps=" << eps;
    }
    EXPECT_EQ(warm->kth_lower, cold->kth_lower) << "eps=" << eps;
    EXPECT_EQ(warm->remaining_upper, cold->remaining_upper) << "eps=" << eps;
    EXPECT_EQ(warm->certified_epsilon, cold->certified_epsilon)
        << "eps=" << eps;
    ASSERT_EQ(warm->entries.size(), cold->entries.size());
    for (size_t i = 0; i < cold->entries.size(); ++i) {
      EXPECT_EQ(warm->entries[i].node, cold->entries[i].node);
      EXPECT_EQ(warm->entries[i].lower, cold->entries[i].lower);
      EXPECT_EQ(warm->entries[i].upper, cold->entries[i].upper);
    }
  }
}

TEST(AnytimeShardTest, DeadlineDegradesCertificateNotAvailability) {
  auto mg = BuildMultiGroup(3, 3, 17);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> keep = std::move(mg.instance);

  // A query whose home-shard search needs >= 2 iterations.
  S3kSearcher probe(full, TestOptions());
  Query q;
  bool found = false;
  for (social::UserId u = 0; u < full.UserCount() && !found; ++u) {
    SearchStats st;
    Query cand{u, {mg.keywords[0], mg.keywords[2]}};
    auto r = probe.Search(cand, &st);
    if (r.ok() && st.iterations >= 2 && !r->empty()) {
      q = cand;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  auto router = ServeShards(full, 2, /*cache_on=*/false);
  auto resp = router->QueryGlobal(Anytime(q.seeker, q.keywords, 0.0, 1e-12));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();  // degraded, not failed
  EXPECT_TRUE(resp->deadline_exceeded);
  bool any_shard_flag = false;
  for (const shard::ShardReport& r : resp->shards) {
    any_shard_flag |= r.deadline_exceeded;
  }
  EXPECT_TRUE(any_shard_flag);
}

}  // namespace
}  // namespace s3
