#include <gtest/gtest.h>

#include "doc/dewey.h"
#include "doc/document.h"
#include "doc/document_store.h"
#include "doc/inverted_index.h"

namespace s3::doc {
namespace {

// ---- DeweyId ---------------------------------------------------------------

TEST(DeweyTest, RootProperties) {
  DeweyId root;
  EXPECT_EQ(root.depth(), 0u);
  EXPECT_EQ(root.ToString(), "");
}

TEST(DeweyTest, ChildPath) {
  DeweyId d = DeweyId().Child(3).Child(2);
  EXPECT_EQ(d.depth(), 2u);
  EXPECT_EQ(d.ToString(), "3.2");
}

TEST(DeweyTest, AncestorPrefixTest) {
  DeweyId root;
  DeweyId d3 = root.Child(3);
  DeweyId d32 = d3.Child(2);
  DeweyId d5 = root.Child(5);
  EXPECT_TRUE(root.IsAncestorOrSelf(d32));
  EXPECT_TRUE(d3.IsAncestorOrSelf(d32));
  EXPECT_TRUE(d32.IsAncestorOrSelf(d32));
  EXPECT_FALSE(d32.IsAncestorOrSelf(d3));
  EXPECT_FALSE(d5.IsAncestorOrSelf(d32));
}

TEST(DeweyTest, ComparableIsSymmetricVerticality) {
  DeweyId root;
  DeweyId a = root.Child(1);
  DeweyId ab = a.Child(1);
  DeweyId c = root.Child(2);
  EXPECT_TRUE(a.Comparable(ab));
  EXPECT_TRUE(ab.Comparable(a));
  // Paper Fig. 3: URI0.0.0 and URI0.1 are NOT vertical neighbors.
  EXPECT_FALSE(ab.Comparable(c));
}

TEST(DeweyTest, RelativePath) {
  DeweyId root;
  DeweyId d32 = root.Child(3).Child(2);
  auto rel = root.RelativePath(d32);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel[0], 3u);
  EXPECT_EQ(rel[1], 2u);
}

TEST(DeweyTest, DocumentOrder) {
  DeweyId root;
  EXPECT_LT(root, root.Child(1));
  EXPECT_LT(root.Child(1).Child(2), root.Child(1).Child(2).Child(1));
  EXPECT_LT(root.Child(1).Child(2), root.Child(1).Child(3));
}

// ---- Document ----------------------------------------------------------------

TEST(DocumentTest, RootOnly) {
  Document d("article");
  EXPECT_EQ(d.NodeCount(), 1u);
  EXPECT_EQ(d.node(0).name, "article");
  EXPECT_EQ(d.Parent(0), UINT32_MAX);
}

TEST(DocumentTest, ChildrenGetSequentialDeweySteps) {
  Document d("r");
  uint32_t a = d.AddChild(0, "a");
  uint32_t b = d.AddChild(0, "b");
  uint32_t aa = d.AddChild(a, "aa");
  EXPECT_EQ(d.node(a).dewey.ToString(), "1");
  EXPECT_EQ(d.node(b).dewey.ToString(), "2");
  EXPECT_EQ(d.node(aa).dewey.ToString(), "1.1");
}

TEST(DocumentTest, AncestorsNearestFirst) {
  Document d("r");
  uint32_t a = d.AddChild(0, "a");
  uint32_t aa = d.AddChild(a, "aa");
  auto anc = d.Ancestors(aa);
  ASSERT_EQ(anc.size(), 2u);
  EXPECT_EQ(anc[0], a);
  EXPECT_EQ(anc[1], 0u);
}

TEST(DocumentTest, DescendantsPreorder) {
  Document d("r");
  uint32_t a = d.AddChild(0, "a");
  uint32_t b = d.AddChild(0, "b");
  uint32_t aa = d.AddChild(a, "aa");
  auto desc = d.Descendants(0);
  ASSERT_EQ(desc.size(), 3u);
  EXPECT_EQ(desc[0], a);
  EXPECT_EQ(desc[1], aa);
  EXPECT_EQ(desc[2], b);
}

TEST(DocumentTest, PosLength) {
  Document d("r");
  uint32_t a = d.AddChild(0, "a");
  uint32_t aa = d.AddChild(a, "aa");
  EXPECT_EQ(d.PosLength(0, aa), 2u);
  EXPECT_EQ(d.PosLength(a, aa), 1u);
  EXPECT_EQ(d.PosLength(aa, aa), 0u);
}

TEST(DocumentTest, KeywordsAccumulate) {
  Document d("r");
  d.AddKeywords(0, {1, 2});
  d.AddKeywords(0, {3});
  EXPECT_EQ(d.node(0).keywords.size(), 3u);
}

// ---- DocumentStore --------------------------------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  DocumentStore store_;

  DocId AddSimpleDoc(const std::string& uri) {
    Document d("r");
    uint32_t a = d.AddChild(0, "a");
    d.AddChild(a, "aa");
    d.AddChild(0, "b");
    return store_.AddDocument(std::move(d), uri).value();
  }
};

TEST_F(StoreTest, GlobalIdsAndUris) {
  DocId d = AddSimpleDoc("d0");
  EXPECT_EQ(store_.DocumentCount(), 1u);
  EXPECT_EQ(store_.NodeCount(), 4u);
  NodeId root = store_.RootNode(d);
  EXPECT_EQ(store_.Uri(root), "d0");
  // Child URIs carry the Dewey path, like the paper's d0.3.2.
  EXPECT_EQ(store_.Uri(store_.GlobalId(d, 1)), "d0.1");
  EXPECT_EQ(store_.Uri(store_.GlobalId(d, 2)), "d0.1.1");
  EXPECT_EQ(store_.Uri(store_.GlobalId(d, 3)), "d0.2");
}

TEST_F(StoreTest, FindByUri) {
  AddSimpleDoc("d0");
  EXPECT_TRUE(store_.FindByUri("d0.1.1").ok());
  EXPECT_FALSE(store_.FindByUri("d0.9").ok());
}

TEST_F(StoreTest, DuplicateUriRejected) {
  AddSimpleDoc("d0");
  Document d("r");
  auto result = store_.AddDocument(std::move(d), "d0");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(StoreTest, VerticalNeighbors) {
  DocId d = AddSimpleDoc("d0");
  NodeId root = store_.RootNode(d);
  NodeId a = store_.GlobalId(d, 1);
  NodeId aa = store_.GlobalId(d, 2);
  NodeId b = store_.GlobalId(d, 3);
  // Root's vertical neighbors: all its fragments.
  auto vn = store_.VerticalNeighbors(root);
  EXPECT_EQ(vn.size(), 3u);
  // aa's vertical neighbors: ancestors a, root — not b.
  EXPECT_TRUE(store_.AreVerticalNeighbors(aa, a));
  EXPECT_TRUE(store_.AreVerticalNeighbors(aa, root));
  EXPECT_FALSE(store_.AreVerticalNeighbors(aa, b));
  EXPECT_FALSE(store_.AreVerticalNeighbors(aa, aa));
}

TEST_F(StoreTest, CrossDocumentNeverNeighbors) {
  DocId d0 = AddSimpleDoc("d0");
  DocId d1 = AddSimpleDoc("d1");
  EXPECT_FALSE(store_.AreVerticalNeighbors(store_.RootNode(d0),
                                           store_.RootNode(d1)));
}

TEST_F(StoreTest, PosLengthGlobal) {
  DocId d = AddSimpleDoc("d0");
  EXPECT_EQ(store_.PosLength(store_.RootNode(d), store_.GlobalId(d, 2)),
            2u);
}

TEST_F(StoreTest, NeighborhoodWithSelfIncludesSelf) {
  DocId d = AddSimpleDoc("d0");
  NodeId a = store_.GlobalId(d, 1);
  auto n = store_.NeighborhoodWithSelf(a);
  EXPECT_NE(std::find(n.begin(), n.end(), a), n.end());
}

// ---- InvertedIndex --------------------------------------------------------------

TEST(InvertedIndexTest, PostingsAndDf) {
  DocumentStore store;
  Document d("r");
  uint32_t a = d.AddChild(0, "a");
  d.AddKeywords(a, {7, 8});
  d.AddKeywords(0, {7});
  store.AddDocument(std::move(d), "d0").value();

  InvertedIndex idx;
  idx.Rebuild(store);
  EXPECT_EQ(idx.DocumentFrequency(7), 2u);
  EXPECT_EQ(idx.DocumentFrequency(8), 1u);
  EXPECT_EQ(idx.DocumentFrequency(99), 0u);
  EXPECT_EQ(idx.KeywordCount(), 2u);
}

TEST(InvertedIndexTest, DuplicateKeywordInNodeCountedOnce) {
  DocumentStore store;
  Document d("r");
  d.AddKeywords(0, {5, 5, 5});
  store.AddDocument(std::move(d), "d0").value();
  InvertedIndex idx;
  idx.Rebuild(store);
  EXPECT_EQ(idx.DocumentFrequency(5), 1u);
}

TEST(InvertedIndexTest, RebuildResets) {
  DocumentStore store;
  Document d("r");
  d.AddKeywords(0, {1});
  store.AddDocument(std::move(d), "d0").value();
  InvertedIndex idx;
  idx.Rebuild(store);
  idx.Rebuild(store);
  EXPECT_EQ(idx.DocumentFrequency(1), 1u);
}

}  // namespace
}  // namespace s3::doc
