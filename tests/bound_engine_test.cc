// Property tests for the incremental candidate-bound engine: the
// delta-maintained per-keyword sums and [lower, upper] intervals must
// equal the from-scratch CandidateLowerBound / CandidateUpperBound
// values after every exploration iteration, and the incremental
// S3kSearcher must return the same answers as the naive reference on
// generated microblog workloads.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bound_engine.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "test_fixtures.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"

namespace s3::core {
namespace {

QueryExtension ExtendQuery(const S3Instance& inst, const Query& q) {
  QueryExtension ext(q.keywords.size());
  for (size_t i = 0; i < q.keywords.size(); ++i) {
    for (KeywordId k : inst.ExtendKeyword(q.keywords[i])) ext[i].insert(k);
  }
  return ext;
}

std::vector<social::ComponentId> PassingComponents(
    const S3Instance& inst, const QueryExtension& ext) {
  const uint64_t full_mask = (1ull << ext.size()) - 1;
  std::unordered_map<social::ComponentId, uint64_t> mask;
  for (size_t i = 0; i < ext.size(); ++i) {
    for (KeywordId k : ext[i]) {
      for (social::ComponentId c : inst.ComponentsWithKeyword(k)) {
        mask[c] |= (1ull << i);
      }
    }
  }
  std::vector<social::ComponentId> passing;
  for (const auto& [c, m] : mask) {
    if (m == full_mask) passing.push_back(c);
  }
  std::sort(passing.begin(), passing.end());
  return passing;
}

// Drives the exploration loop by hand for `iters` steps and asserts,
// after every step, that the engine's incrementally maintained state
// matches the from-scratch formulas evaluated on the accumulated
// proximity vector. Returns the number of candidates checked.
size_t CheckIncrementalAgainstScratch(const S3Instance& inst,
                                      const Query& q, double gamma,
                                      double eta, size_t iters) {
  QueryExtension ext = ExtendQuery(inst, q);
  auto passing = PassingComponents(inst, ext);

  std::vector<ComponentCandidates> per_comp(passing.size());
  ConnectionBuilder builder(inst, eta);
  for (size_t i = 0; i < passing.size(); ++i) {
    per_comp[i] = builder.Build(passing[i], ext);
  }
  // Flat copy of the candidates before the engine consumes the source
  // lists — the from-scratch oracle.
  std::vector<Candidate> oracle;
  for (const auto& cc : per_comp) {
    for (const Candidate& c : cc.candidates) oracle.push_back(c);
  }

  const uint32_t total_rows = inst.layout().total();
  CandidateBoundEngine engine(inst.docs(), ext.size(), total_rows,
                              per_comp);
  EXPECT_EQ(engine.size(), oracle.size());
  // Activate everything so RefreshBounds covers every candidate.
  for (size_t slot = 0; slot < passing.size(); ++slot) {
    engine.ActivateSlot(static_cast<uint32_t>(slot));
  }

  std::vector<double> all_prox(total_rows, 0.0);
  const uint32_t seeker_row = inst.RowOfUser(q.seeker);
  const double c_gamma = CGamma(gamma);
  all_prox[seeker_row] = c_gamma;
  engine.ApplyDelta(seeker_row, c_gamma);

  social::Frontier frontier, next;
  frontier.Init(total_rows);
  next.Init(total_rows);
  frontier.Set(seeker_row, 1.0);

  for (size_t n = 1; n <= iters; ++n) {
    inst.matrix().PropagateAdaptive(frontier, next, nullptr);
    std::swap(frontier, next);
    if (frontier.nonzero.empty()) break;
    const double factor = c_gamma * std::pow(gamma, -double(n));
    for (uint32_t row : frontier.nonzero) {
      const double delta = factor * frontier.values[row];
      all_prox[row] += delta;
      engine.ApplyDelta(row, delta);
    }
    const double tail = TailBound(gamma, n);
    engine.RefreshBounds(tail);

    for (uint32_t ci = 0; ci < engine.size(); ++ci) {
      const Candidate& cand = oracle[ci];
      EXPECT_EQ(engine.node(ci), cand.node);
      // Per-keyword partial sums track Σ w · prox exactly.
      for (size_t qi = 0; qi < ext.size(); ++qi) {
        double scratch = 0.0;
        for (const auto& [src, w] : cand.sources[qi]) {
          scratch += double(w) * all_prox[src];
        }
        EXPECT_NEAR(engine.FromScratchKeywordSum(ci, qi, all_prox),
                    scratch, 1e-9 + 1e-9 * scratch)
            << "iter " << n << " cand " << ci << " kw " << qi;
      }
      const double lo = CandidateLowerBound(cand, all_prox);
      const double up = CandidateUpperBound(cand, all_prox, tail);
      EXPECT_NEAR(engine.lower(ci), lo, 1e-9 + 1e-9 * lo)
          << "iter " << n << " cand " << ci;
      EXPECT_NEAR(engine.upper(ci), up, 1e-9 + 1e-9 * up)
          << "iter " << n << " cand " << ci;
      EXPECT_LE(engine.lower(ci), engine.upper(ci) + 1e-12);
    }
  }
  return engine.size();
}

TEST(BoundEngineInvariantTest, IncrementalEqualsScratchOnRandomInstances) {
  size_t checked = 0;
  for (uint64_t seed : {11u, 23u, 47u, 91u}) {
    s3::testing::RandomInstanceParams p;
    p.seed = seed;
    p.n_users = 10;
    p.n_docs = 14;
    p.n_tags = 12;
    auto ri = s3::testing::BuildRandomInstance(p);
    Rng rng(seed * 13 + 1);
    for (int trial = 0; trial < 3; ++trial) {
      Query q;
      q.seeker =
          static_cast<social::UserId>(rng.Uniform(ri.instance->UserCount()));
      q.keywords = {ri.keywords[rng.Uniform(ri.keywords.size())]};
      if (rng.Chance(0.5)) {
        q.keywords.push_back(ri.keywords[rng.Uniform(ri.keywords.size())]);
      }
      checked += CheckIncrementalAgainstScratch(*ri.instance, q, 1.5, 0.5,
                                                /*iters=*/12);
    }
  }
  EXPECT_GT(checked, 0u);  // the workloads must actually have candidates
}

TEST(BoundEngineInvariantTest, IncrementalEqualsScratchOnMicroblog) {
  workload::MicroblogParams p;
  p.seed = 4242;
  p.n_users = 150;
  p.n_tweets = 450;
  p.vocab_size = 300;
  p.n_hashtags = 40;
  p.ontology.n_classes = 30;
  p.ontology.n_entities = 80;
  auto gen = workload::GenerateMicroblog(p);

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 5;
  spec.n_queries = 4;
  spec.seed = 99;
  auto qs = workload::BuildWorkload(*gen.instance, gen.semantic_anchors,
                                    spec);
  size_t checked = 0;
  for (const Query& q : qs.queries) {
    checked += CheckIncrementalAgainstScratch(*gen.instance, q, 1.5, 0.5,
                                              /*iters=*/10);
  }
  EXPECT_GT(checked, 0u);
}

// ---- Adaptive propagation ---------------------------------------------------

TEST(PropagateAdaptiveTest, MatchesPushPropagation) {
  workload::MicroblogParams p;
  p.seed = 7;
  p.n_users = 120;
  p.n_tweets = 300;
  p.vocab_size = 200;
  auto gen = workload::GenerateMicroblog(p);
  const auto& inst = *gen.instance;
  const auto& m = inst.matrix();

  social::Frontier fa, ga, fp, gp;
  const uint32_t total = inst.layout().total();
  fa.Init(total);
  ga.Init(total);
  fp.Init(total);
  gp.Init(total);
  fa.Set(inst.RowOfUser(1), 1.0);
  fp.Set(inst.RowOfUser(1), 1.0);

  // Sparse first steps and dense later steps must agree with the plain
  // push implementation; adaptive output is additionally sorted.
  for (size_t step = 0; step < 6; ++step) {
    m.PropagateAdaptive(fa, ga, nullptr);
    std::swap(fa, ga);
    m.Propagate(fp, gp);
    std::swap(fp, gp);
    ASSERT_EQ(fa.nonzero.size(), fp.nonzero.size()) << "step " << step;
    EXPECT_TRUE(std::is_sorted(fa.nonzero.begin(), fa.nonzero.end()));
    for (uint32_t row : fp.nonzero) {
      EXPECT_NEAR(fa.values[row], fp.values[row], 1e-12) << "row " << row;
    }
  }
}

// ---- End-to-end: incremental search equals the naive reference ---------------

// Converged proximity via long matrix iteration (γ^-iters ≈ 0).
std::vector<double> ConvergedProxFor(const S3Instance& inst,
                                     social::UserId seeker, double gamma,
                                     size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

double ExactScoreOf(const S3Instance& inst, const QueryExtension& ext,
                    double eta, doc::NodeId node,
                    const std::vector<double>& prox) {
  ConnectionBuilder b(inst, eta);
  auto cc = b.Build(inst.components().Of(social::EntityId::Fragment(node)),
                    ext);
  for (const Candidate& c : cc.candidates) {
    if (c.node == node) return CandidateScore(c, prox);
  }
  return 0.0;
}

TEST(BoundEngineSearchTest, MatchesNaiveReferenceOnMicroblogWorkloads) {
  workload::MicroblogParams p;
  p.seed = 1717;
  p.n_users = 150;
  p.n_tweets = 400;
  p.vocab_size = 250;
  p.n_hashtags = 40;
  p.ontology.n_classes = 25;
  p.ontology.n_entities = 60;
  auto gen = workload::GenerateMicroblog(p);
  const S3Instance& inst = *gen.instance;

  for (size_t n_keywords : {1u, 2u}) {
    workload::WorkloadSpec spec;
    spec.freq = workload::Frequency::kCommon;
    spec.n_keywords = n_keywords;
    spec.k = 5;
    spec.n_queries = 5;
    spec.seed = 500 + n_keywords;
    auto qs = workload::BuildWorkload(*gen.instance, gen.semantic_anchors,
                                      spec);

    S3kOptions opts;
    opts.k = spec.k;
    opts.max_iterations = 400;
    S3kSearcher searcher(inst, opts);
    for (const Query& q : qs.queries) {
      SearchStats stats;
      auto s3k = searcher.Search(q, &stats);
      ASSERT_TRUE(s3k.ok());
      EXPECT_TRUE(stats.converged);

      auto prox = ConvergedProxFor(inst, q.seeker, opts.score.gamma);
      auto oracle = NaiveSearchWithProx(inst, q, opts, prox);
      ASSERT_EQ(s3k->size(), oracle.size()) << "seeker " << q.seeker;

      // Answers are unique up to ties: compare descending score
      // multisets, and check the reported intervals bracket the truth.
      QueryExtension ext = ExtendQuery(inst, q);
      std::vector<double> got, want;
      for (size_t r = 0; r < oracle.size(); ++r) {
        double exact =
            ExactScoreOf(inst, ext, opts.score.eta, (*s3k)[r].node, prox);
        EXPECT_LE((*s3k)[r].lower, exact + 1e-7);
        EXPECT_GE((*s3k)[r].upper, exact - 1e-7);
        got.push_back(exact);
        want.push_back(oracle[r].lower);
      }
      std::sort(got.rbegin(), got.rend());
      std::sort(want.rbegin(), want.rend());
      for (size_t r = 0; r < want.size(); ++r) {
        EXPECT_NEAR(got[r], want[r], 1e-7) << "rank " << r;
      }
      for (size_t i = 0; i < s3k->size(); ++i) {
        for (size_t j = i + 1; j < s3k->size(); ++j) {
          EXPECT_FALSE(inst.docs().AreVerticalNeighbors((*s3k)[i].node,
                                                        (*s3k)[j].node));
        }
      }
    }
  }
}

// ---- Engine helper structures ------------------------------------------------

TEST(BoundEngineStructureTest, NeighborAdjacencyMatchesDocumentStore) {
  auto fig = s3::testing::BuildFigure1();
  const S3Instance& inst = *fig.instance;
  Query q{fig.u1, {fig.kw_university}};
  QueryExtension ext = ExtendQuery(inst, q);
  auto passing = PassingComponents(inst, ext);
  std::vector<ComponentCandidates> per_comp(passing.size());
  ConnectionBuilder builder(inst, 0.5);
  for (size_t i = 0; i < passing.size(); ++i) {
    per_comp[i] = builder.Build(passing[i], ext);
  }
  std::vector<doc::NodeId> nodes;
  for (const auto& cc : per_comp) {
    for (const auto& c : cc.candidates) nodes.push_back(c.node);
  }
  CandidateBoundEngine engine(inst.docs(), ext.size(),
                              inst.layout().total(), per_comp);
  ASSERT_GE(engine.size(), 2u);

  // AnyNeighborPair over every 2-subset agrees with the store.
  std::vector<uint32_t> pair(2);
  for (uint32_t a = 0; a < engine.size(); ++a) {
    for (uint32_t b = a + 1; b < engine.size(); ++b) {
      pair[0] = a;
      pair[1] = b;
      EXPECT_EQ(engine.AnyNeighborPair(pair, 2),
                inst.docs().AreVerticalNeighbors(nodes[a], nodes[b]))
          << "pair " << a << "," << b;
    }
  }

  // GreedyTopK never returns vertical neighbors.
  std::vector<uint32_t> order;
  for (uint32_t ci = 0; ci < engine.size(); ++ci) order.push_back(ci);
  auto picked = engine.GreedyTopK(order, 4);
  for (size_t i = 0; i < picked.size(); ++i) {
    for (size_t j = i + 1; j < picked.size(); ++j) {
      EXPECT_FALSE(inst.docs().AreVerticalNeighbors(nodes[picked[i]],
                                                    nodes[picked[j]]));
    }
  }
}

}  // namespace
}  // namespace s3::core
