// Tests for the extensibility features: RDF-imported social edges
// (paper §2.2), time-budget anytime termination (§4.1), and the
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/thread_pool.h"
#include "core/s3_instance.h"
#include "core/s3k.h"
#include "test_fixtures.h"

namespace s3 {
namespace {

// ---- RDF-imported social edges ----------------------------------------------

class RdfSocialTest : public ::testing::Test {
 protected:
  core::S3Instance inst_;
  social::UserId a_ = 0, b_ = 0;

  void SetUp() override {
    a_ = inst_.AddUser("user:a");
    b_ = inst_.AddUser("user:b");
  }

  size_t SocialEdgeCount() {
    return inst_.edges().CountLabel(social::EdgeLabel::kSocial);
  }
};

TEST_F(RdfSocialTest, SubPropertyAssertionBecomesEdge) {
  // workedWith ≺sp S3:social (the paper's §2.2 example).
  inst_.DeclareSubProperty("workedWith", "S3:social");
  inst_.rdf_graph().Add(inst_.terms().InternUri("user:a"),
                        inst_.terms().InternUri("workedWith"),
                        inst_.terms().InternUri("user:b"));
  ASSERT_TRUE(inst_.Finalize().ok());
  EXPECT_EQ(inst_.rdf_social_edges(), 1u);
  EXPECT_EQ(SocialEdgeCount(), 1u);
  const auto& e = inst_.edges().edges()[0];
  EXPECT_EQ(e.source, social::EntityId::User(a_));
  EXPECT_EQ(e.target, social::EntityId::User(b_));
  EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST_F(RdfSocialTest, TransitiveSubPropertyChainImports) {
  inst_.DeclareSubProperty("closeColleague", "colleague");
  inst_.DeclareSubProperty("colleague", "S3:social");
  inst_.rdf_graph().Add(inst_.terms().InternUri("user:a"),
                        inst_.terms().InternUri("closeColleague"),
                        inst_.terms().InternUri("user:b"));
  ASSERT_TRUE(inst_.Finalize().ok());
  EXPECT_EQ(inst_.rdf_social_edges(), 1u);
}

TEST_F(RdfSocialTest, WeightedAssertionKeepsWeight) {
  // Weighted triples do not saturate, but they must still import.
  inst_.DeclareSubProperty("similarTo", "S3:social");
  inst_.rdf_graph().Add(inst_.terms().InternUri("user:a"),
                        inst_.terms().InternUri("similarTo"),
                        inst_.terms().InternUri("user:b"), 0.4);
  ASSERT_TRUE(inst_.Finalize().ok());
  ASSERT_EQ(inst_.rdf_social_edges(), 1u);
  EXPECT_DOUBLE_EQ(inst_.edges().edges()[0].weight, 0.4);
}

TEST_F(RdfSocialTest, NonUserEndpointsIgnored) {
  inst_.DeclareSubProperty("workedWith", "S3:social");
  inst_.rdf_graph().Add(inst_.terms().InternUri("user:a"),
                        inst_.terms().InternUri("workedWith"),
                        inst_.terms().InternUri("company:acme"));
  ASSERT_TRUE(inst_.Finalize().ok());
  EXPECT_EQ(inst_.rdf_social_edges(), 0u);
}

TEST_F(RdfSocialTest, UnrelatedPropertiesIgnored) {
  inst_.rdf_graph().Add(inst_.terms().InternUri("user:a"),
                        inst_.terms().InternUri("knowsAbout"),
                        inst_.terms().InternUri("user:b"));
  ASSERT_TRUE(inst_.Finalize().ok());
  EXPECT_EQ(inst_.rdf_social_edges(), 0u);
}

TEST_F(RdfSocialTest, ImportedEdgeAffectsSearch) {
  // b posts a document; a is connected to b only through RDF.
  KeywordId kw = inst_.InternKeyword("topic");
  doc::Document d("doc");
  d.AddKeywords(0, {kw});
  (void)inst_.AddDocument(std::move(d), "d0", b_).value();
  inst_.DeclareSubProperty("workedWith", "S3:social");
  inst_.rdf_graph().Add(inst_.terms().InternUri("user:a"),
                        inst_.terms().InternUri("workedWith"),
                        inst_.terms().InternUri("user:b"));
  ASSERT_TRUE(inst_.Finalize().ok());

  core::S3kOptions opts;
  opts.k = 1;
  core::S3kSearcher searcher(inst_, opts);
  auto result = searcher.Search(core::Query{a_, {kw}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_GT((*result)[0].lower, 0.0);
}

// ---- Time budget ---------------------------------------------------------------

TEST(TimeBudgetTest, TinyBudgetStillReturns) {
  auto fig = testing::BuildFigure1();
  core::S3kOptions opts;
  opts.k = 3;
  opts.time_budget_seconds = 1e-9;  // expire after the first iteration
  core::S3kSearcher searcher(*fig.instance, opts);
  core::SearchStats st;
  auto result = searcher.Search(
      core::Query{fig.u1, {fig.kw_university}}, &st);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(st.iterations, 2u);
}

TEST(TimeBudgetTest, GenerousBudgetConverges) {
  auto fig = testing::BuildFigure1();
  core::S3kOptions opts;
  opts.k = 3;
  opts.time_budget_seconds = 30.0;
  core::S3kSearcher searcher(*fig.instance, opts);
  core::SearchStats st;
  auto result = searcher.Search(
      core::Query{fig.u1, {fig.kw_university}}, &st);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(st.converged);
}

// ---- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllIterations) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, SingleWorkerFloor) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.WorkerCount(), 1u);
  std::atomic<int> n{0};
  pool.ParallelFor(7, [&](size_t) { n++; });
  EXPECT_EQ(n.load(), 7);
}

TEST(ThreadPoolTest, ConcurrentSum) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  const size_t n = 10000;
  pool.ParallelFor(n, [&](size_t i) { sum += static_cast<int64_t>(i); });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(n * (n - 1) / 2));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](size_t i) {
                         if (i == 137) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDrainsAndPoolStaysUsable) {
  ThreadPool pool(4);
  // Every iteration throws: exactly one exception must surface, the
  // rest are swallowed, and the pool must be reusable afterwards.
  for (int round = 0; round < 5; ++round) {
    try {
      pool.ParallelFor(100, [&](size_t i) {
        throw std::invalid_argument("iter " + std::to_string(i));
      });
      FAIL() << "ParallelFor should have rethrown";
    } catch (const std::invalid_argument&) {
    }
    std::atomic<int> ok{0};
    pool.ParallelFor(64, [&](size_t) { ok++; });
    EXPECT_EQ(ok.load(), 64);
  }
}

TEST(ThreadPoolTest, HelperLimitCapsConcurrencyButRunsEverything) {
  ThreadPool pool(7);
  pool.SetHelperLimit(1);  // caller + at most one helper
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  std::atomic<int> done{0};
  pool.ParallelFor(500, [&](size_t) {
    int now = ++live;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    done++;
    --live;
  });
  EXPECT_EQ(done.load(), 500);
  EXPECT_LE(peak.load(), 2);
  // Lifting the limit restores full fan-out on the same pool.
  pool.SetHelperLimit(SIZE_MAX);
  done = 0;
  pool.ParallelFor(500, [&](size_t) { done++; });
  EXPECT_EQ(done.load(), 500);
}

}  // namespace
}  // namespace s3
