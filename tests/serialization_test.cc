// Round-trip tests for the instance serializer.
#include <gtest/gtest.h>

#include "core/s3k.h"
#include "core/serialization.h"
#include "test_fixtures.h"
#include "workload/instance_stats.h"

namespace s3::core {
namespace {

// Saves, reloads, finalizes, and checks the population matches.
std::unique_ptr<S3Instance> RoundTrip(const S3Instance& original) {
  std::string blob = SaveInstance(original);
  auto loaded = LoadInstance(blob);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  if (!loaded.ok()) return nullptr;
  EXPECT_TRUE((*loaded)->Finalize().ok());
  return std::move(*loaded);
}

TEST(SerializationTest, EmptyInstance) {
  S3Instance inst;
  auto loaded = RoundTrip(inst);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->UserCount(), 0u);
  EXPECT_EQ(loaded->docs().DocumentCount(), 0u);
}

TEST(SerializationTest, Figure3PopulationPreserved) {
  auto fig = s3::testing::BuildFigure3();
  auto loaded = RoundTrip(*fig.instance);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->UserCount(), fig.instance->UserCount());
  EXPECT_EQ(loaded->TagCount(), fig.instance->TagCount());
  EXPECT_EQ(loaded->docs().DocumentCount(),
            fig.instance->docs().DocumentCount());
  EXPECT_EQ(loaded->docs().NodeCount(), fig.instance->docs().NodeCount());
  EXPECT_EQ(loaded->edges().size(), fig.instance->edges().size());
  EXPECT_EQ(loaded->vocabulary().size(),
            fig.instance->vocabulary().size());
  // URIs survive.
  EXPECT_TRUE(loaded->docs().FindByUri("URI0.1.1").ok());
}

TEST(SerializationTest, Figure1QueriesIdenticalAfterReload) {
  auto fig = s3::testing::BuildFigure1();
  auto loaded = RoundTrip(*fig.instance);
  ASSERT_NE(loaded, nullptr);

  S3kOptions opts;
  opts.k = 5;
  Query q{fig.u1, {fig.kw_degree}};
  auto before = S3kSearcher(*fig.instance, opts).Search(q);
  auto after = S3kSearcher(*loaded, opts).Search(q);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].node, (*after)[i].node);
    EXPECT_NEAR((*before)[i].lower, (*after)[i].lower, 1e-12);
    EXPECT_NEAR((*before)[i].upper, (*after)[i].upper, 1e-12);
  }
}

TEST(SerializationTest, RandomInstancesRoundTrip) {
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    s3::testing::RandomInstanceParams p;
    p.seed = seed;
    auto ri = s3::testing::BuildRandomInstance(p);
    auto loaded = RoundTrip(*ri.instance);
    ASSERT_NE(loaded, nullptr) << "seed " << seed;

    workload::InstanceStats a = workload::ComputeStats(*ri.instance);
    workload::InstanceStats b = workload::ComputeStats(*loaded);
    EXPECT_EQ(a.users, b.users) << seed;
    EXPECT_EQ(a.documents, b.documents) << seed;
    EXPECT_EQ(a.tags, b.tags) << seed;
    EXPECT_EQ(a.social_edges, b.social_edges) << seed;
    EXPECT_EQ(a.network_edges, b.network_edges) << seed;
    EXPECT_EQ(a.keyword_occurrences, b.keyword_occurrences) << seed;
    EXPECT_EQ(a.components, b.components) << seed;
    EXPECT_EQ(a.rdf_triples, b.rdf_triples) << seed;

    // Query equivalence on a few probes.
    S3kOptions opts;
    opts.k = 4;
    for (KeywordId k : ri.keywords) {
      Query q{0, {k}};
      auto r1 = S3kSearcher(*ri.instance, opts).Search(q);
      auto r2 = S3kSearcher(*loaded, opts).Search(q);
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r2.ok());
      ASSERT_EQ(r1->size(), r2->size()) << seed;
      for (size_t i = 0; i < r1->size(); ++i) {
        EXPECT_EQ((*r1)[i].node, (*r2)[i].node) << seed;
      }
    }
  }
}

TEST(SerializationTest, EscapedSpellings) {
  S3Instance inst;
  auto u = inst.AddUser("user with space");
  KeywordId kw = inst.InternKeyword("two words");
  doc::Document d("name with space");
  d.AddKeywords(0, {kw});
  (void)inst.AddDocument(std::move(d), "uri with space", u).value();
  auto loaded = RoundTrip(inst);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->users()[0].uri, "user with space");
  EXPECT_EQ(loaded->vocabulary().Spelling(kw), "two words");
  EXPECT_TRUE(loaded->docs().FindByUri("uri with space").ok());
  EXPECT_EQ(loaded->docs().node(0).name, "name with space");
}

TEST(SerializationTest, WeightedRdfSurvives) {
  S3Instance inst;
  inst.AddUser("a");
  inst.AddUser("b");
  inst.DeclareSubProperty("sim", "S3:social");
  inst.rdf_graph().Add(inst.terms().InternUri("a"),
                       inst.terms().InternUri("sim"),
                       inst.terms().InternUri("b"), 0.25);
  auto loaded = RoundTrip(inst);
  ASSERT_NE(loaded, nullptr);
  // The RDF-declared social edge is imported on Finalize of the copy.
  EXPECT_EQ(loaded->rdf_social_edges(), 1u);
}

TEST(SerializationTest, MalformedInputsRejected) {
  EXPECT_FALSE(LoadInstance("not a header\n").ok());
  EXPECT_FALSE(LoadInstance("S3 v1\nBOGUS x\n").ok());
  EXPECT_FALSE(LoadInstance("S3 v1\nSOCIAL 0 1 0.5\n").ok());  // no users
  EXPECT_FALSE(
      LoadInstance("S3 v1\nUSER u\nDOC d 0 2\nN - root\n").ok());
  // node count mismatch
  EXPECT_FALSE(
      LoadInstance("S3 v1\nUSER u\nN - orphan\n").ok());
}

TEST(SerializationTest, HeaderAndSectionsPresent) {
  auto fig = s3::testing::BuildFigure3();
  std::string blob = SaveInstance(*fig.instance);
  EXPECT_EQ(blob.rfind("S3 v1\n", 0), 0u);
  EXPECT_NE(blob.find("\nUSER "), std::string::npos);
  EXPECT_NE(blob.find("\nDOC "), std::string::npos);
  EXPECT_NE(blob.find("\nTAGF "), std::string::npos);
  EXPECT_NE(blob.find("\nRDF\n"), std::string::npos);
}

}  // namespace
}  // namespace s3::core
