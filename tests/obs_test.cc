// Observability-layer tests: MetricRegistry semantics (instance
// identity, labels, callbacks) and thread-safety under concurrent
// writers (a TSan target in CI), Prometheus exposition format pinned
// against hand-written golden text, trace sampling / span nesting /
// slow-query logging, the /metrics HTTP exporter, and a regression
// suite for the QueryService::Stats() consistency contract (counters
// read under load must never violate their arithmetic invariants).
//
// Under -DS3_OBS=OFF the registry and collector are no-op stubs; the
// suites assert exactly that instead of skipping, so the OFF leg still
// compiles and runs every call site.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/trace.h"
#include "server/query_service.h"
#include "test_fixtures.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace s3::obs {
namespace {

// ---- registry semantics -----------------------------------------------

TEST(MetricRegistryTest, CounterAccumulates) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("t_counter", "help");
  c->Inc();
  c->Inc(41);
  if (kEnabled) {
    EXPECT_EQ(c->Value(), 42u);
  } else {
    EXPECT_EQ(c->Value(), 0u);
  }
}

TEST(MetricRegistryTest, SameNameAndLabelsIsSameInstance) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("t_series", "help", {{"shard", "0"}});
  Counter* b = reg.GetCounter("t_series", "help", {{"shard", "0"}});
  Counter* c = reg.GetCounter("t_series", "help", {{"shard", "1"}});
  EXPECT_EQ(a, b);
  if (kEnabled) {
    EXPECT_NE(a, c);
  }
}

TEST(MetricRegistryTest, LabelOrderIsCanonicalized) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("t_multi", "help", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("t_multi", "help", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  MetricRegistry reg;
  Gauge* g = reg.GetGauge("t_gauge", "help");
  g->Set(2.5);
  g->Add(0.5);
  if (kEnabled) {
    EXPECT_DOUBLE_EQ(g->Value(), 3.0);
  }
}

TEST(MetricRegistryTest, HistogramQuantilesAndSum) {
  MetricRegistry reg;
  Histogram* h =
      reg.GetHistogram("t_hist", "help", {}, BucketSpec::SmallCounts());
  for (int i = 0; i < 100; ++i) h->Observe(2.0);
  HistogramSnapshot snap = h->TakeSnapshot();
  if (!kEnabled) {
    EXPECT_EQ(snap.count, 0u);
    return;
  }
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 200.0);
  // All mass in the (1, 2] bucket: every quantile interpolates inside.
  EXPECT_GT(snap.p50(), 1.0);
  EXPECT_LE(snap.p99(), 2.0);
}

TEST(MetricRegistryTest, CallbackEvaluatedAtCollect) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricRegistry reg;
  std::atomic<int> source{7};
  const uint64_t id = reg.AddCallback(
      "t_cb", "help", MetricKind::kGauge, {},
      [&] { return static_cast<double>(source.load()); });
  auto find = [&]() -> double {
    for (const auto& s : reg.Collect()) {
      if (s.name == "t_cb") return s.value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(find(), 7.0);
  source = 9;
  EXPECT_DOUBLE_EQ(find(), 9.0);
  reg.Unregister(id);
  EXPECT_DOUBLE_EQ(find(), -1.0);  // series gone after unregister
}

TEST(MetricRegistryTest, CallbackSetUnregistersOnDestruction) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricRegistry reg;
  {
    CallbackSet set;
    set.Attach(&reg);
    set.Add("t_scoped", "help", MetricKind::kGauge, {},
            [] { return 1.0; });
    EXPECT_EQ(reg.Collect().size(), 1u);
  }
  EXPECT_TRUE(reg.Collect().empty());
}

// Concurrent writers across counters, gauges, histograms and lookups:
// the TSan CI leg runs this suite, so any unsynchronized access in the
// registry or the sharded counter trips the sanitizer.
TEST(MetricRegistryTest, ConcurrentWritersAndLookups) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  Counter* shared = reg.GetCounter("t_conc_counter", "help");
  Histogram* hist = reg.GetHistogram("t_conc_hist", "help");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        shared->Inc();
        hist->Observe(1e-4 * (t + 1));
        // Lookups race with writers and with each other.
        Counter* mine = reg.GetCounter("t_conc_labeled", "help",
                                       {{"t", std::to_string(t % 3)}});
        mine->Inc();
        if (i % 256 == 0) (void)reg.RenderPrometheus();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (!kEnabled) return;
  EXPECT_EQ(shared->Value(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(hist->TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kOps);
  uint64_t labeled = 0;
  for (int g = 0; g < 3; ++g) {
    labeled += reg.GetCounter("t_conc_labeled", "help",
                              {{"t", std::to_string(g)}})
                   ->Value();
  }
  EXPECT_EQ(labeled, static_cast<uint64_t>(kThreads) * kOps);
}

// ---- Prometheus exposition golden format ------------------------------

TEST(PrometheusFormatTest, GoldenCounterAndGauge) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricRegistry reg;
  reg.GetCounter("s3_demo_total", "Demo counter.")->Inc(3);
  reg.GetGauge("s3_demo_depth", "Demo gauge.", {{"service", "primary"}})
      ->Set(2);
  const std::string expected =
      "# HELP s3_demo_depth Demo gauge.\n"
      "# TYPE s3_demo_depth gauge\n"
      "s3_demo_depth{service=\"primary\"} 2\n"
      "# HELP s3_demo_total Demo counter.\n"
      "# TYPE s3_demo_total counter\n"
      "s3_demo_total 3\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(PrometheusFormatTest, HistogramBucketsAreCumulative) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricRegistry reg;
  Histogram* h =
      reg.GetHistogram("s3_demo_width", "Widths.", {},
                       BucketSpec{1.0, 2.0, 3});  // buckets 1, 2, 4, +Inf
  h->Observe(1.0);
  h->Observe(2.0);
  h->Observe(3.0);
  h->Observe(100.0);
  const std::string expected =
      "# HELP s3_demo_width Widths.\n"
      "# TYPE s3_demo_width histogram\n"
      "s3_demo_width_bucket{le=\"1\"} 1\n"
      "s3_demo_width_bucket{le=\"2\"} 2\n"
      "s3_demo_width_bucket{le=\"4\"} 3\n"
      "s3_demo_width_bucket{le=\"+Inf\"} 4\n"
      "s3_demo_width_sum 106\n"
      "s3_demo_width_count 4\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(PrometheusFormatTest, LabelValuesAreEscaped) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricRegistry reg;
  reg.GetCounter("s3_demo_esc_total", "Escapes.",
                 {{"q", "say \"hi\"\\\n"}})
      ->Inc();
  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("{q=\"say \\\"hi\\\"\\\\\\n\"} 1"), std::string::npos)
      << out;
}

TEST(PrometheusFormatTest, JsonRenderCoversFamilies) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricRegistry reg;
  reg.GetCounter("s3_demo_total", "Demo counter.")->Inc(3);
  const std::string out = reg.RenderJson();
  EXPECT_NE(out.find("\"s3_demo_total\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"counter\""), std::string::npos) << out;
}

// ---- tracing ----------------------------------------------------------

TEST(TraceTest, SamplingIsOneInN) {
  TraceOptions opts;
  opts.sample_every = 4;
  TraceCollector collector(opts);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    if (collector.ShouldSample()) ++sampled;
  }
  if (kEnabled) {
    EXPECT_EQ(sampled, 4);
    EXPECT_EQ(collector.sampled_total(), 4u);
  } else {
    EXPECT_EQ(sampled, 0);
  }
}

TEST(TraceTest, SampleEveryZeroDisablesSampling) {
  TraceOptions opts;
  opts.sample_every = 0;
  TraceCollector collector(opts);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(collector.ShouldSample());
}

TEST(TraceTest, RingKeepsMostRecent) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  TraceOptions opts;
  opts.ring_capacity = 2;
  TraceCollector collector(opts);
  for (uint64_t id = 1; id <= 5; ++id) {
    QueryTrace t;
    t.id = id;
    collector.Record(std::move(t));
  }
  auto recent = collector.RecentTraces();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].id, 4u);
  EXPECT_EQ(recent[1].id, 5u);
}

TEST(TraceTest, SlowLogThreshold) {
  TraceOptions opts;
  opts.slow_query_seconds = 0.1;
  TraceCollector collector(opts);
  bool built = false;
  collector.NoteCompletion(0.05, [&] {
    built = true;
    return SlowQueryEntry{};
  });
  EXPECT_FALSE(built);  // fast query: entry never materialized
  collector.NoteCompletion(0.2, [&] {
    built = true;
    SlowQueryEntry e;
    e.id = 7;
    e.total_seconds = 0.2;
    return e;
  });
  if (kEnabled) {
    EXPECT_TRUE(built);
    ASSERT_EQ(collector.SlowLog().size(), 1u);
    EXPECT_EQ(collector.SlowLog()[0].id, 7u);
    EXPECT_EQ(collector.slow_total(), 1u);
  } else {
    EXPECT_FALSE(built);
  }
}

TEST(TraceTest, FormatTraceNestsSpansByDepth) {
  QueryTrace t;
  t.id = 3;
  t.label = "user:u1 degree";
  t.total_seconds = 0.010;
  t.spans.push_back(TraceSpan{"queue-wait", 0.0, 0.001, 0});
  t.spans.push_back(TraceSpan{"execute", 0.001, 0.009, 0});
  t.spans.push_back(TraceSpan{"search", 0.002, 0.008, 1});
  IterationTraceRecord rec;
  rec.iteration = 1;
  rec.frontier_size = 5;
  t.iterations.push_back(rec);
  const std::string out = FormatTrace(t);
  const size_t q = out.find("queue-wait");
  const size_t e = out.find("execute");
  const size_t s = out.find("search");
  ASSERT_NE(q, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  ASSERT_NE(s, std::string::npos);
  EXPECT_LT(q, e);
  EXPECT_LT(e, s);
  // Depth-1 spans indent deeper than their depth-0 parent.
  const size_t e_bol = out.rfind('\n', e) + 1;
  const size_t s_bol = out.rfind('\n', s) + 1;
  EXPECT_LT(e - e_bol, s - s_bol);
  EXPECT_NE(out.find("frontier=5"), std::string::npos);
}

// ---- /metrics exporter ------------------------------------------------

#ifndef _WIN32
// Minimal blocking HTTP GET against 127.0.0.1:port.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

TEST(MetricsHttpTest, ServesPrometheusText) {
  MetricRegistry reg;
  reg.GetCounter("s3_http_demo_total", "Demo.")->Inc(5);
  MetricsHttpServer server(&reg);
  Status started = server.Start();
  if (!kEnabled) {
    EXPECT_FALSE(started.ok());  // stub refuses to start
    return;
  }
  if (!started.ok()) GTEST_SKIP() << "bind failed: " << started.ToString();
  ASSERT_NE(server.port(), 0);
  const std::string resp = HttpGet(server.port(), "/metrics");
  EXPECT_NE(resp.find("200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("s3_http_demo_total 5"), std::string::npos);

  const std::string json = HttpGet(server.port(), "/metrics.json");
  EXPECT_NE(json.find("application/json"), std::string::npos) << json;
  EXPECT_NE(json.find("\"s3_http_demo_total\""), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  server.Stop();
  EXPECT_FALSE(server.running());
}
#endif  // !_WIN32

}  // namespace
}  // namespace s3::obs

// ---- QueryService stats consistency + metric views --------------------

namespace s3::server {
namespace {

using core::Query;
using core::S3Instance;

std::shared_ptr<const S3Instance> ObsTestSnapshot(
    std::vector<KeywordId>* kws) {
  s3::testing::RandomInstanceParams p;
  p.seed = 31;
  p.n_users = 10;
  p.n_docs = 14;
  p.n_tags = 10;
  auto ri = s3::testing::BuildRandomInstance(p);
  *kws = ri.keywords;
  return std::shared_ptr<const S3Instance>(std::move(ri.instance));
}

std::vector<Query> ObsTestQueries(const S3Instance& inst,
                                  const std::vector<KeywordId>& kws,
                                  size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query q;
    q.seeker = static_cast<social::UserId>(rng.Uniform(inst.UserCount()));
    const size_t l = 1 + rng.Uniform(3);
    for (size_t j = 0; j < l; ++j) {
      q.keywords.push_back(kws[rng.Uniform(kws.size())]);
    }
    std::sort(q.keywords.begin(), q.keywords.end());
    out.push_back(std::move(q));
  }
  return out;
}

core::S3kOptions ObsTestSearch() {
  core::S3kOptions opts;
  opts.k = 5;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  return opts;
}

// Regression for the torn-read fix: Stats() snapshots taken while
// workers are mid-flight must always satisfy the counters' arithmetic
// invariants (admission precedes completion, a batch of width w
// accounts >= 2 members, every completion lands in the eps histogram).
TEST(QueryServiceStatsConsistencyTest, InvariantsHoldUnderLoad) {
  std::vector<KeywordId> kws;
  auto snap = ObsTestSnapshot(&kws);
  QueryServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 32;
  opts.batch_window = 4;  // exercise the batch counters too
  opts.search = ObsTestSearch();
  QueryService service(snap, opts);

  auto queries = ObsTestQueries(*snap, kws, 200, 17);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const QueryServiceStats s = service.Stats();
      EXPECT_LE(s.completed + s.failed, s.submitted);
      EXPECT_GE(s.batched_queries, 2 * s.batches_executed);
      uint64_t eps_total = 0;
      for (uint64_t b : s.certified_eps_hist) eps_total += b;
      EXPECT_GE(eps_total, s.completed);
    }
  });

  std::vector<QueryFuture> futures;
  for (const Query& q : queries) {
    auto submitted = service.SubmitBlocking(q);
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) (void)f.get();
  done.store(true, std::memory_order_release);
  reader.join();

  const QueryServiceStats s = service.Stats();
  EXPECT_EQ(s.submitted, futures.size());
  EXPECT_EQ(s.completed + s.failed, s.submitted);
}

// Every QueryServiceStats counter must be readable through the metric
// registry (the "stats structs become views" contract).
TEST(QueryServiceStatsConsistencyTest, RegistryMirrorsStats) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::MetricRegistry reg;
  std::vector<KeywordId> kws;
  auto snap = ObsTestSnapshot(&kws);
  QueryServiceOptions opts;
  opts.workers = 2;
  opts.search = ObsTestSearch();
  opts.registry = &reg;
  opts.obs_label = "test";
  QueryService service(snap, opts);

  auto queries = ObsTestQueries(*snap, kws, 40, 23);
  std::vector<QueryFuture> futures;
  for (const Query& q : queries) {
    auto submitted = service.SubmitBlocking(q);
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) (void)f.get();

  const QueryServiceStats stats = service.Stats();
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& s : reg.Collect()) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "series " << name << " not registered";
    return -1.0;
  };
  EXPECT_EQ(value_of("s3_queries_submitted_total"), stats.submitted);
  EXPECT_EQ(value_of("s3_queries_completed_total"), stats.completed);
  EXPECT_EQ(value_of("s3_queries_failed_total"), stats.failed);
  EXPECT_EQ(value_of("s3_queries_rejected_total"), stats.rejected);
  EXPECT_EQ(value_of("s3_batched_queries_total"), stats.batched_queries);
  EXPECT_EQ(value_of("s3_batches_executed_total"), stats.batches_executed);
  EXPECT_EQ(value_of("s3_anytime_queries_total"), stats.anytime_queries);
  EXPECT_EQ(value_of("s3_deadline_exceeded_total"),
            stats.deadline_exceeded);
  // Exposition carries the full catalog: the latency histograms took
  // real samples.
  const std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("s3_query_exec_seconds_count"), std::string::npos);
  EXPECT_NE(prom.find("s3_query_total_seconds_count"), std::string::npos);
  EXPECT_NE(prom.find("service=\"test\""), std::string::npos);
}

// Sampled traces carry the engine's per-iteration records; sampled-out
// queries must not (the zero-allocation fast path).
TEST(QueryServiceStatsConsistencyTest, TraceSamplingRecordsIterations) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::MetricRegistry reg;
  std::vector<KeywordId> kws;
  auto snap = ObsTestSnapshot(&kws);
  QueryServiceOptions opts;
  opts.workers = 1;
  opts.search = ObsTestSearch();
  opts.registry = &reg;
  opts.trace.sample_every = 1;  // trace everything
  QueryService service(snap, opts);

  auto queries = ObsTestQueries(*snap, kws, 8, 29);
  for (const Query& q : queries) {
    auto submitted = service.SubmitBlocking(q);
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(submitted->get().ok());
  }
  auto traces = service.traces().RecentTraces();
  ASSERT_FALSE(traces.empty());
  for (const auto& t : traces) {
    EXPECT_FALSE(t.spans.empty());
    EXPECT_FALSE(t.iterations.empty());
    EXPECT_GT(t.total_seconds, 0.0);
  }
  // Distinct, monotonically growing ids.
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_LT(traces[i - 1].id, traces[i].id);
  }
}

}  // namespace
}  // namespace s3::server
