// Concurrent-correctness tests for the query-service layer (server/):
// N client threads issuing mixed queries through one QueryService over
// one shared snapshot must produce results identical to the serial
// engine and to the brute-force NaiveSearch oracle — with and without
// the proximity cache. This suite is the TSan target in CI
// (-DS3_SANITIZE=thread): any data race in the searcher pool, the
// bounded queue, or the cache perturbs results or trips the sanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "server/proximity_cache.h"
#include "server/query_service.h"
#include "test_fixtures.h"

namespace s3::server {
namespace {

using core::BuildCandidatePlan;
using core::CandidatePlan;
using core::Query;
using core::ResultEntry;
using core::S3Instance;
using core::S3kOptions;
using core::S3kSearcher;
using core::SearchStats;

// Converged proximity via long matrix iteration (γ^-iters ≈ 0), the
// same oracle construction as tests/s3k_test.cc.
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = core::CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += core::CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

// Exact converged score of a returned node, read off the candidate
// plan (the plan's source lists are exactly con(d, k)).
double ExactScore(const S3Instance& inst, const Query& q,
                  const S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  auto plan = BuildCandidatePlan(inst, q.keywords, opts.use_semantics,
                                 opts.score.eta);
  EXPECT_TRUE(plan.ok());
  for (const auto& cc : plan->per_comp) {
    for (const core::Candidate& c : cc.candidates) {
      if (c.node == node) return core::CandidateScore(c, prox);
    }
  }
  return 0.0;
}

std::shared_ptr<const S3Instance> MakeSnapshot(uint64_t seed,
                                               std::vector<KeywordId>* kws) {
  s3::testing::RandomInstanceParams p;
  p.seed = seed;
  p.n_users = 10;
  p.n_docs = 14;
  p.n_tags = 10;
  auto ri = s3::testing::BuildRandomInstance(p);
  *kws = ri.keywords;
  return std::shared_ptr<const S3Instance>(std::move(ri.instance));
}

// Mixed workload: 1-3 keywords, random seekers, heavy keyword repeats
// (queries share keyword sets, like the paper's common-keyword mixes).
// Keywords are pre-sorted so the serial searcher sees the same slot
// order as the cache's canonical plans (bit-identical bounds).
std::vector<Query> MakeMixedQueries(const S3Instance& inst,
                                    const std::vector<KeywordId>& kws,
                                    size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query q;
    q.seeker = static_cast<social::UserId>(rng.Uniform(inst.UserCount()));
    const size_t l = 1 + rng.Uniform(3);
    for (size_t j = 0; j < l; ++j) {
      q.keywords.push_back(kws[rng.Uniform(kws.size())]);
    }
    std::sort(q.keywords.begin(), q.keywords.end());
    out.push_back(std::move(q));
  }
  return out;
}

S3kOptions TestOptions() {
  S3kOptions opts;
  opts.k = 5;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  return opts;
}

// ---- core split: SearchWithPlan == Search -----------------------------

TEST(CandidatePlanTest, SearchWithPlanMatchesSearch) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(11, &kws);
  S3kOptions opts = TestOptions();
  S3kSearcher searcher(*snap, opts);
  auto queries = MakeMixedQueries(*snap, kws, 12, 77);

  for (const Query& q : queries) {
    auto direct = searcher.Search(q);
    ASSERT_TRUE(direct.ok());
    auto plan = BuildCandidatePlan(*snap, q.keywords, opts.use_semantics,
                                   opts.score.eta);
    ASSERT_TRUE(plan.ok());
    // Reuse the same plan twice: plans are immutable, so repeated
    // searches (and searches from a second searcher) agree exactly.
    for (int round = 0; round < 2; ++round) {
      auto via_plan = searcher.SearchWithPlan(q, *plan);
      ASSERT_TRUE(via_plan.ok());
      ASSERT_EQ(via_plan->size(), direct->size());
      for (size_t i = 0; i < direct->size(); ++i) {
        EXPECT_EQ((*via_plan)[i].node, (*direct)[i].node);
        EXPECT_DOUBLE_EQ((*via_plan)[i].lower, (*direct)[i].lower);
        EXPECT_DOUBLE_EQ((*via_plan)[i].upper, (*direct)[i].upper);
      }
    }
  }
}

TEST(CandidatePlanTest, RejectsBadInput) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(12, &kws);
  EXPECT_EQ(BuildCandidatePlan(*snap, {}, true, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<KeywordId> too_many(65, kws[0]);
  EXPECT_EQ(BuildCandidatePlan(*snap, too_many, true, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  S3Instance unfinalized;
  EXPECT_EQ(
      BuildCandidatePlan(unfinalized, {kws[0]}, true, 0.5).status().code(),
      StatusCode::kFailedPrecondition);
}

// ---- proximity cache --------------------------------------------------

TEST(ProximityCacheTest, KeyCanonicalizesKeywordOrder) {
  PlanCacheKey ab = MakePlanKey({2, 1}, true, 0.5, /*generation=*/0);
  PlanCacheKey ba = MakePlanKey({1, 2}, true, 0.5, /*generation=*/0);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(PlanCacheKeyHash{}(ab), PlanCacheKeyHash{}(ba));
  // Duplicates are a different multiset; parameters split keys too.
  EXPECT_FALSE(MakePlanKey({1, 1, 2}, true, 0.5, 0) == ab);
  EXPECT_FALSE(MakePlanKey({1, 2}, false, 0.5, 0) == ab);
  EXPECT_FALSE(MakePlanKey({1, 2}, true, 0.25, 0) == ab);
  // The snapshot generation is part of the key: same keywords on a
  // swapped-in snapshot never match a stale plan.
  EXPECT_FALSE(MakePlanKey({1, 2}, true, 0.5, /*generation=*/1) == ab);
}

TEST(ProximityCacheTest, HitMissAndEvictionCounters) {
  ProximityCache cache(/*shards=*/2, /*capacity_per_shard=*/1);
  auto plan = std::make_shared<const CandidatePlan>();
  PlanCacheKey key = MakePlanKey({1, 2}, true, 0.5, /*generation=*/0);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, plan);
  EXPECT_EQ(cache.Lookup(key), plan);
  ProximityCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.5);
}

// ---- service ----------------------------------------------------------

TEST(QueryServiceTest, ValidatesAtSubmit) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(13, &kws);
  QueryServiceOptions opts;
  opts.workers = 1;
  opts.search = TestOptions();
  QueryService service(snap, opts);

  Query empty;
  empty.seeker = 0;
  EXPECT_EQ(service.Submit(empty).status().code(),
            StatusCode::kInvalidArgument);

  Query bad_seeker;
  bad_seeker.seeker = snap->UserCount() + 5;
  bad_seeker.keywords = {kws[0]};
  EXPECT_EQ(service.Submit(bad_seeker).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, SubmitAfterShutdownFails) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(14, &kws);
  QueryServiceOptions opts;
  opts.workers = 2;
  opts.search = TestOptions();
  QueryService service(snap, opts);
  service.Shutdown();
  service.Shutdown();  // idempotent

  Query q;
  q.seeker = 0;
  q.keywords = {kws[0]};
  EXPECT_EQ(service.Submit(std::move(q)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, AdmissionControlAccountsEverySubmission) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(15, &kws);
  QueryServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;  // aggressive shedding
  opts.search = TestOptions();
  QueryService service(snap, opts);

  auto queries = MakeMixedQueries(*snap, kws, 64, 99);
  std::vector<QueryFuture> futures;
  size_t rejected = 0;
  for (const Query& q : queries) {
    auto submitted = service.Submit(q);
    if (submitted.ok()) {
      futures.push_back(std::move(*submitted));
    } else {
      // The only non-blocking refusal is transient overload.
      EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  for (auto& f : futures) {
    auto response = f.get();
    ASSERT_TRUE(response.ok());
    EXPECT_LE(response->entries.size(), opts.search.k);
  }
  QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, futures.size());
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.submitted + stats.rejected, queries.size());
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.failed, 0u);

  // The queue-full refusals are visible to operators, not just as
  // Unavailable statuses on the submit path.
  eval::ServiceCounters counters = stats.Counters();
  EXPECT_EQ(counters.rejected_queue_full, rejected);
  EXPECT_NE(eval::FormatCounters(counters).find("rejected="),
            std::string::npos);
}

TEST(QueryServiceTest, StatsSurfaceCacheHitsAndMisses) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(17, &kws);
  QueryServiceOptions opts;
  opts.workers = 1;
  opts.search = TestOptions();
  QueryService service(snap, opts);

  Query q;
  q.seeker = 0;
  q.keywords = {kws[0]};
  for (int round = 0; round < 3; ++round) {
    auto fut = service.Submit(q);
    ASSERT_TRUE(fut.ok());
    ASSERT_TRUE(fut->get().ok());
  }
  QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_DOUBLE_EQ(stats.Counters().CacheHitRate(), 2.0 / 3.0);

  // Cache disabled: the counters stay zero and the rendering says so.
  opts.enable_cache = false;
  QueryService uncached(snap, opts);
  auto fut = uncached.Submit(q);
  ASSERT_TRUE(fut.ok());
  ASSERT_TRUE(fut->get().ok());
  QueryServiceStats cold = uncached.Stats();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 0u);
  EXPECT_NE(eval::FormatCounters(cold.Counters()).find("cache=off"),
            std::string::npos);
}

TEST(QueryServiceTest, KeywordPermutationsShareOnePlan) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(16, &kws);
  ASSERT_GE(kws.size(), 2u);
  QueryServiceOptions opts;
  opts.workers = 1;
  opts.search = TestOptions();
  QueryService service(snap, opts);

  Query ab;
  ab.seeker = 0;
  ab.keywords = {kws[0], kws[1]};
  Query ba;
  ba.seeker = 0;
  ba.keywords = {kws[1], kws[0]};

  auto fa = service.Submit(ab);
  ASSERT_TRUE(fa.ok());
  auto ra = fa->get();
  ASSERT_TRUE(ra.ok());
  auto fb = service.Submit(ba);
  ASSERT_TRUE(fb.ok());
  auto rb = fb->get();
  ASSERT_TRUE(rb.ok());

  // Same canonical key: the second query hits the first one's plan.
  EXPECT_FALSE(ra->cache_hit);
  EXPECT_TRUE(rb->cache_hit);
  ASSERT_EQ(ra->entries.size(), rb->entries.size());
  for (size_t i = 0; i < ra->entries.size(); ++i) {
    EXPECT_EQ(ra->entries[i].node, rb->entries[i].node);
    EXPECT_DOUBLE_EQ(ra->entries[i].lower, rb->entries[i].lower);
  }
  ASSERT_NE(service.cache(), nullptr);
  EXPECT_EQ(service.cache()->Stats().hits, 1u);
}

// The tentpole correctness pin: N client threads of mixed queries
// through the service == serial S3kSearcher == NaiveSearch oracle,
// with the cache both on and off.
class ConcurrentEquivalenceTest : public ::testing::TestWithParam<bool> {};

TEST_P(ConcurrentEquivalenceTest, MatchesSerialAndNaive) {
  const bool cache_on = GetParam();
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(21, &kws);
  const S3kOptions search_opts = TestOptions();

  constexpr size_t kClientThreads = 4;
  constexpr size_t kPerThread = 16;
  auto queries = MakeMixedQueries(*snap, kws, kClientThreads * kPerThread,
                                  1234);

  // Serial reference: one searcher, one thread of control.
  std::vector<std::vector<ResultEntry>> serial(queries.size());
  std::vector<bool> serial_converged(queries.size(), false);
  {
    S3kSearcher searcher(*snap, search_opts);
    for (size_t i = 0; i < queries.size(); ++i) {
      SearchStats stats;
      auto r = searcher.Search(queries[i], &stats);
      ASSERT_TRUE(r.ok());
      serial[i] = *r;
      serial_converged[i] = stats.converged;
    }
  }

  QueryServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 32;
  opts.search = search_opts;
  opts.enable_cache = cache_on;
  opts.cache_shards = 4;
  opts.cache_capacity_per_shard = 8;  // small: exercises eviction too
  QueryService service(snap, opts);

  std::vector<std::vector<ResultEntry>> concurrent(queries.size());
  std::vector<std::thread> clients;
  std::atomic<size_t> cache_hits_seen{0};
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t j = 0; j < kPerThread; ++j) {
        const size_t qi = t * kPerThread + j;
        auto submitted = service.SubmitBlocking(queries[qi]);
        ASSERT_TRUE(submitted.ok());
        auto response = submitted->get();
        ASSERT_TRUE(response.ok());
        if (response->cache_hit) cache_hits_seen.fetch_add(1);
        concurrent[qi] = response->entries;
      }
    });
  }
  for (auto& c : clients) c.join();
  service.Shutdown();

  // 1. Identical to the serial engine, node for node, bit for bit.
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(concurrent[i].size(), serial[i].size()) << "query " << i;
    for (size_t r = 0; r < serial[i].size(); ++r) {
      EXPECT_EQ(concurrent[i][r].node, serial[i][r].node)
          << "query " << i << " rank " << r;
      EXPECT_DOUBLE_EQ(concurrent[i][r].lower, serial[i][r].lower);
      EXPECT_DOUBLE_EQ(concurrent[i][r].upper, serial[i][r].upper);
    }
  }

  // 2. Identical (up to ties) to the brute-force NaiveSearch oracle:
  // descending exact-score multisets agree. Spot-check a stride to
  // keep the TSan run fast.
  for (size_t i = 0; i < queries.size(); i += 7) {
    if (!serial_converged[i]) continue;
    const Query& q = queries[i];
    auto prox = ConvergedProx(*snap, q.seeker, search_opts.score.gamma);
    auto oracle = core::NaiveSearchWithProx(*snap, q, search_opts, prox);
    ASSERT_EQ(concurrent[i].size(), oracle.size()) << "query " << i;
    std::vector<double> got, want;
    for (size_t r = 0; r < oracle.size(); ++r) {
      got.push_back(
          ExactScore(*snap, q, search_opts, concurrent[i][r].node, prox));
      want.push_back(oracle[r].lower);
    }
    std::sort(got.rbegin(), got.rend());
    std::sort(want.rbegin(), want.rend());
    for (size_t r = 0; r < want.size(); ++r) {
      EXPECT_NEAR(got[r], want[r], 1e-7) << "query " << i << " rank " << r;
    }
  }

  QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(service.latency().count(), queries.size());
  if (cache_on) {
    ASSERT_NE(service.cache(), nullptr);
    // The mixed workload repeats keyword sets, so the cache must get
    // real traffic.
    EXPECT_GT(cache_hits_seen.load(), 0u);
    EXPECT_EQ(service.cache()->Stats().hits, cache_hits_seen.load());
  } else {
    EXPECT_EQ(service.cache(), nullptr);
    EXPECT_EQ(cache_hits_seen.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, ConcurrentEquivalenceTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CacheOn" : "CacheOff";
                         });

}  // namespace
}  // namespace s3::server
