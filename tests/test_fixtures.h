// Shared fixtures: instances modelled on the paper's running examples
// (Figure 1 and Figure 3) plus a seeded random-instance generator used
// by the S3k-vs-brute-force property tests.
#ifndef S3_TESTS_TEST_FIXTURES_H_
#define S3_TESTS_TEST_FIXTURES_H_

#include <memory>

#include "common/rng.h"
#include "core/s3_instance.h"

namespace s3::testing {

// The Figure 3-style instance, arranged so that the normalization
// arithmetic of Example 2.3 holds:
//   * edges leaving u0: u0 -> URI0 (postedBy‾, w 1), u0 -> u3
//     (social, w 0.3) — first-edge normalization 1/1.3;
//   * edges leaving URI0's vertical neighborhood: URI0 -> u0 (postedBy),
//     URI0.0.0 -> a0 (hasSubject‾), URI0.1 -> URI1 (commentsOn‾),
//     URI0.1 -> a1 (hasSubject‾) — four weight-1 edges, normalization
//     1/4.
struct Figure3 {
  std::unique_ptr<core::S3Instance> instance;
  social::UserId u0, u1, u2, u3;
  doc::DocId doc0, doc1;
  doc::NodeId uri0, uri0_0, uri0_0_0, uri0_1, uri1;
  social::TagId a0, a1;
  KeywordId k0, k1, k2;
};

inline Figure3 BuildFigure3() {
  Figure3 f;
  f.instance = std::make_unique<core::S3Instance>();
  core::S3Instance& inst = *f.instance;

  f.u0 = inst.AddUser("u0");
  f.u1 = inst.AddUser("u1");
  f.u2 = inst.AddUser("u2");
  f.u3 = inst.AddUser("u3");

  f.k0 = inst.InternKeyword("k0");
  f.k1 = inst.InternKeyword("k1");
  f.k2 = inst.InternKeyword("k2");

  // URI0 with children URI0.0 (child URI0.0.0) and URI0.1.
  doc::Document d0("doc");
  uint32_t n00 = d0.AddChild(0, "sec");      // URI0.0  (local 1)
  uint32_t n000 = d0.AddChild(n00, "par");   // URI0.0.0 (local 2)
  uint32_t n01 = d0.AddChild(0, "sec");      // URI0.1  (local 3)
  d0.AddKeywords(n000, {f.k0});
  d0.AddKeywords(n01, {f.k1});
  f.doc0 = inst.AddDocument(std::move(d0), "URI0", f.u0).value();
  f.uri0 = inst.docs().RootNode(f.doc0);
  f.uri0_0 = inst.docs().GlobalId(f.doc0, n00);
  f.uri0_0_0 = inst.docs().GlobalId(f.doc0, n000);
  f.uri0_1 = inst.docs().GlobalId(f.doc0, n01);

  // URI1, a single-node document by u1, commenting on URI0.1.
  doc::Document d1("doc");
  d1.AddKeywords(0, {f.k1});
  f.doc1 = inst.AddDocument(std::move(d1), "URI1", f.u1).value();
  f.uri1 = inst.docs().RootNode(f.doc1);
  (void)inst.AddComment(f.doc1, f.uri0_1);

  // Tags: a0 by u2 on URI0.0.0 with keyword k2; a1 by u3 on URI0.1
  // (endorsement).
  f.a0 = inst.AddTagOnFragment(f.u2, f.uri0_0_0, f.k2).value();
  f.a1 = inst.AddTagOnFragment(f.u3, f.uri0_1, kInvalidKeyword).value();

  // Social edges (weights from the figure).
  (void)inst.AddSocialEdge(f.u0, f.u3, 0.3);
  (void)inst.AddSocialEdge(f.u1, f.u3, 0.5);
  (void)inst.AddSocialEdge(f.u3, f.u1, 0.5);
  (void)inst.AddSocialEdge(f.u2, f.u1, 0.7);

  (void)inst.Finalize();
  return f;
}

// The Figure 1 scenario: d0 (sections/paragraphs), d1 replies to d0,
// d2 comments on d0.3.2, u4 tags d0.5.1 with "university"; an RDFS
// ontology links "m.s." to "degree" and "graduate".
struct Figure1 {
  std::unique_ptr<core::S3Instance> instance;
  social::UserId u0, u1, u2, u3, u4;
  doc::DocId d0, d1, d2;
  doc::NodeId d0_root, d0_3, d0_3_2, d0_5, d0_5_1;
  doc::NodeId d1_root, d2_root, d2_7, d2_7_5;
  KeywordId kw_university, kw_ms, kw_degree, kw_graduate;
  social::TagId tag_university;
};

inline Figure1 BuildFigure1() {
  Figure1 f;
  f.instance = std::make_unique<core::S3Instance>();
  core::S3Instance& inst = *f.instance;

  f.u0 = inst.AddUser("u0");
  f.u1 = inst.AddUser("u1");
  f.u2 = inst.AddUser("u2");
  f.u3 = inst.AddUser("u3");
  f.u4 = inst.AddUser("u4");

  f.kw_university = inst.InternKeyword("university");
  f.kw_ms = inst.InternKeyword("m.s.");
  f.kw_degree = inst.InternKeyword("degree");
  f.kw_graduate = inst.InternKeyword("graduate");

  // Ontology: a M.S. is a degree; someone with a degree is a graduate.
  inst.DeclareSubClass("m.s.", "degree");
  inst.DeclareSubClass("degree", "graduate");

  // d0: article with (among others) sections 3 and 5, paragraphs 3.2
  // and 5.1.
  doc::Document d0("article");
  uint32_t s1 = d0.AddChild(0, "sec");
  uint32_t s2 = d0.AddChild(0, "sec");
  uint32_t sec3 = d0.AddChild(0, "sec");
  uint32_t p31 = d0.AddChild(sec3, "par");
  uint32_t p32 = d0.AddChild(sec3, "par");
  uint32_t s4 = d0.AddChild(0, "sec");
  uint32_t sec5 = d0.AddChild(0, "sec");
  uint32_t p51 = d0.AddChild(sec5, "par");
  (void)s1;
  (void)s2;
  (void)p31;
  (void)s4;
  d0.AddKeywords(p32, {inst.InternKeyword("opportun")});
  f.d0 = inst.AddDocument(std::move(d0), "d0", f.u0).value();
  f.d0_root = inst.docs().RootNode(f.d0);
  f.d0_3 = inst.docs().GlobalId(f.d0, sec3);
  f.d0_3_2 = inst.docs().GlobalId(f.d0, p32);
  f.d0_5 = inst.docs().GlobalId(f.d0, sec5);
  f.d0_5_1 = inst.docs().GlobalId(f.d0, p51);

  // d1 by u2: "When I got my M.S. @UAlberta in 2012" — replies to d0.
  doc::Document d1("tweet");
  uint32_t t1 = d1.AddChild(0, "text");
  d1.AddKeywords(t1, {f.kw_ms, inst.InternKeyword("@ualberta"),
                      inst.InternKeyword("2012")});
  f.d1 = inst.AddDocument(std::move(d1), "d1", f.u2).value();
  f.d1_root = inst.docs().RootNode(f.d1);
  (void)inst.AddComment(f.d1, f.d0_root);

  // d2 by u3: comments on d0.3.2; its paragraph 7.5 mentions
  // "university".
  doc::Document d2("comment");
  uint32_t sec7 = 0;
  for (int i = 0; i < 7; ++i) sec7 = d2.AddChild(0, "sec");
  uint32_t p75 = 0;
  for (int i = 0; i < 5; ++i) p75 = d2.AddChild(sec7, "par");
  d2.AddKeywords(p75, {f.kw_university});
  f.d2 = inst.AddDocument(std::move(d2), "d2", f.u3).value();
  f.d2_root = inst.docs().RootNode(f.d2);
  f.d2_7 = inst.docs().GlobalId(f.d2, sec7);
  f.d2_7_5 = inst.docs().GlobalId(f.d2, p75);
  (void)inst.AddComment(f.d2, f.d0_3_2);

  // u4 tags d0.5.1 with "university".
  f.tag_university =
      inst.AddTagOnFragment(f.u4, f.d0_5_1, f.kw_university).value();

  // Social: u1 friend of u0 (and some context edges).
  (void)inst.AddSocialEdge(f.u1, f.u0, 1.0);
  (void)inst.AddSocialEdge(f.u0, f.u1, 1.0);
  (void)inst.AddSocialEdge(f.u1, f.u4, 0.4);

  (void)inst.Finalize();
  return f;
}

// Random small instance for oracle-comparison property tests.
struct RandomInstanceParams {
  uint64_t seed = 1;
  uint32_t n_users = 6;
  uint32_t n_docs = 8;
  uint32_t max_children = 3;
  uint32_t n_keyword_pool = 6;
  uint32_t n_tags = 6;
  double comment_prob = 0.5;
  double social_density = 0.3;
};

struct RandomInstance {
  std::unique_ptr<core::S3Instance> instance;
  std::vector<KeywordId> keywords;
};

inline RandomInstance BuildRandomInstance(const RandomInstanceParams& p) {
  RandomInstance out;
  out.instance = std::make_unique<core::S3Instance>();
  core::S3Instance& inst = *out.instance;
  Rng rng(p.seed);

  for (uint32_t u = 0; u < p.n_users; ++u) {
    inst.AddUser("u" + std::to_string(u));
  }
  for (uint32_t k = 0; k < p.n_keyword_pool; ++k) {
    out.keywords.push_back(inst.InternKeyword("kw" + std::to_string(k)));
  }
  // Small ontology over part of the pool: kw1 ≺sc kw0, kw2 type kw0.
  if (p.n_keyword_pool >= 3) {
    inst.DeclareSubClass("kw1", "kw0");
    inst.DeclareType("kw2", "kw0");
  }

  std::vector<doc::DocId> docs;
  for (uint32_t i = 0; i < p.n_docs; ++i) {
    doc::Document d("doc");
    uint32_t n_children = static_cast<uint32_t>(rng.Uniform(p.max_children + 1));
    for (uint32_t c = 0; c < n_children; ++c) {
      uint32_t parent =
          static_cast<uint32_t>(rng.Uniform(d.NodeCount()));
      uint32_t child = d.AddChild(parent, "n");
      if (rng.Chance(0.7)) {
        d.AddKeywords(child,
                      {out.keywords[rng.Uniform(out.keywords.size())]});
      }
    }
    if (rng.Chance(0.7)) {
      d.AddKeywords(0, {out.keywords[rng.Uniform(out.keywords.size())]});
    }
    social::UserId poster =
        static_cast<social::UserId>(rng.Uniform(p.n_users));
    doc::DocId id =
        inst.AddDocument(std::move(d), "d" + std::to_string(i), poster)
            .value();
    docs.push_back(id);
    if (i > 0 && rng.Chance(p.comment_prob)) {
      doc::DocId target = docs[rng.Uniform(i)];
      uint32_t local = static_cast<uint32_t>(
          rng.Uniform(inst.docs().document(target).NodeCount()));
      (void)inst.AddComment(id, inst.docs().GlobalId(target, local));
    }
  }

  std::vector<social::TagId> tags;
  for (uint32_t t = 0; t < p.n_tags; ++t) {
    social::UserId author =
        static_cast<social::UserId>(rng.Uniform(p.n_users));
    KeywordId kw = rng.Chance(0.6)
                       ? out.keywords[rng.Uniform(out.keywords.size())]
                       : kInvalidKeyword;
    if (!tags.empty() && rng.Chance(0.25)) {
      auto r = inst.AddTagOnTag(author, tags[rng.Uniform(tags.size())], kw);
      if (r.ok()) tags.push_back(r.value());
    } else {
      doc::NodeId subject = static_cast<doc::NodeId>(
          rng.Uniform(inst.docs().NodeCount()));
      auto r = inst.AddTagOnFragment(author, subject, kw);
      if (r.ok()) tags.push_back(r.value());
    }
  }

  for (uint32_t a = 0; a < p.n_users; ++a) {
    for (uint32_t b = 0; b < p.n_users; ++b) {
      if (a != b && rng.Chance(p.social_density)) {
        (void)inst.AddSocialEdge(a, b, 0.2 + 0.8 * rng.NextDouble());
      }
    }
  }

  (void)inst.Finalize();
  return out;
}

}  // namespace s3::testing

#endif  // S3_TESTS_TEST_FIXTURES_H_
