// Property-style sweeps (TEST_P) over random instances: the score
// feasibility properties of §3.3 and the structural invariants of the
// engine must hold for every seed and parameterization, not just the
// hand-built fixtures.
#include <gtest/gtest.h>

#include <cmath>

#include "core/naive_reference.h"
#include "core/s3k.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

struct SweepCase {
  uint64_t seed;
  double gamma;
};

class RandomInstanceSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    s3::testing::RandomInstanceParams p;
    p.seed = GetParam().seed;
    p.n_users = 8;
    p.n_docs = 10;
    p.n_tags = 8;
    ri_ = s3::testing::BuildRandomInstance(p);
  }
  s3::testing::RandomInstance ri_;
};

TEST_P(RandomInstanceSweep, MatrixRowsSubStochastic) {
  const auto& m = ri_.instance->matrix();
  for (uint32_t row = 0; row < m.rows(); ++row) {
    double sum = m.RowSum(row);
    EXPECT_GE(sum, -1e-12);
    EXPECT_LE(sum, 1.0 + 1e-9) << "row " << row;
    if (!m.Row(row).empty()) {
      EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << row;
    }
  }
}

TEST_P(RandomInstanceSweep, ParallelPropagateMatchesSerial) {
  const auto& m = ri_.instance->matrix();
  ThreadPool pool(3);
  social::Frontier in, a, b;
  in.Init(m.rows());
  a.Init(m.rows());
  b.Init(m.rows());
  in.Set(ri_.instance->RowOfUser(0), 1.0);
  for (int step = 0; step < 5; ++step) {
    m.Propagate(in, a);
    m.PropagateParallel(in, b, pool);
    for (size_t row = 0; row < m.rows(); ++row) {
      EXPECT_NEAR(a.values[row], b.values[row], 1e-12)
          << "step " << step << " row " << row;
    }
    std::swap(in, a);
  }
}

TEST_P(RandomInstanceSweep, ProxMonotoneAndBounded) {
  const double gamma = GetParam().gamma;
  std::vector<double> prev(ri_.instance->layout().total(), 0.0);
  for (size_t len = 1; len <= 5; ++len) {
    auto prox = NaiveProx(*ri_.instance, 0, len, gamma);
    for (size_t row = 0; row < prox.size(); ++row) {
      EXPECT_GE(prox[row], prev[row] - 1e-12);
      EXPECT_LE(prox[row], 1.0 + 1e-9);
    }
    prev = std::move(prox);
  }
}

TEST_P(RandomInstanceSweep, AttenuationBoundHolds) {
  const double gamma = GetParam().gamma;
  for (size_t n = 1; n <= 4; ++n) {
    auto shorter = NaiveProx(*ri_.instance, 0, n, gamma);
    auto longer = NaiveProx(*ri_.instance, 0, n + 1, gamma);
    const double bound = TailBound(gamma, n);
    for (size_t row = 0; row < shorter.size(); ++row) {
      EXPECT_LE(longer[row] - shorter[row], bound + 1e-12)
          << "n=" << n << " row=" << row;
    }
  }
}

TEST_P(RandomInstanceSweep, MatrixEqualsPathEnumeration) {
  const double gamma = GetParam().gamma;
  const size_t max_len = 5;
  auto naive = NaiveProx(*ri_.instance, 0, max_len, gamma);

  const auto& m = ri_.instance->matrix();
  social::Frontier f, g;
  f.Init(m.rows());
  g.Init(m.rows());
  std::vector<double> prox(m.rows(), 0.0);
  uint32_t seeker_row = ri_.instance->RowOfUser(0);
  prox[seeker_row] = CGamma(gamma);
  f.Set(seeker_row, 1.0);
  for (size_t n = 1; n <= max_len; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    for (uint32_t row : f.nonzero) {
      prox[row] += CGamma(gamma) * f.values[row] /
                   std::pow(gamma, static_cast<double>(n));
    }
  }
  for (size_t row = 0; row < prox.size(); ++row) {
    EXPECT_NEAR(prox[row], naive[row], 1e-9) << "row " << row;
  }
}

TEST_P(RandomInstanceSweep, SearchBoundsBracketTruth) {
  const double gamma = GetParam().gamma;
  S3kOptions opts;
  opts.score.gamma = gamma;
  opts.k = 5;
  opts.max_iterations = 300;
  S3kSearcher searcher(*ri_.instance, opts);

  // Converged prox for ground truth.
  const auto& m = ri_.instance->matrix();
  social::Frontier f, g;
  f.Init(m.rows());
  g.Init(m.rows());
  std::vector<double> prox(m.rows(), 0.0);
  uint32_t seeker_row = ri_.instance->RowOfUser(1 % 8);
  prox[seeker_row] = CGamma(gamma);
  f.Set(seeker_row, 1.0);
  for (size_t n = 1; n <= 1500 && !f.nonzero.empty(); ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    for (uint32_t row : f.nonzero) {
      prox[row] += CGamma(gamma) * f.values[row] /
                   std::pow(gamma, static_cast<double>(n));
    }
  }

  Query q{1 % 8, {ri_.keywords[GetParam().seed % ri_.keywords.size()]}};
  SearchStats st;
  auto result = searcher.Search(q, &st);
  ASSERT_TRUE(result.ok());
  QueryExtension ext(1);
  for (KeywordId k : ri_.instance->ExtendKeyword(q.keywords[0])) {
    ext[0].insert(k);
  }
  ConnectionBuilder builder(*ri_.instance, opts.score.eta);
  for (const ResultEntry& r : *result) {
    auto cc = builder.Build(ri_.instance->components().Of(
                                social::EntityId::Fragment(r.node)),
                            ext);
    for (const Candidate& c : cc.candidates) {
      if (c.node != r.node) continue;
      double truth = CandidateScore(c, prox);
      EXPECT_LE(r.lower, truth + 1e-7);
      EXPECT_GE(r.upper, truth - 1e-7);
    }
  }
}

TEST_P(RandomInstanceSweep, CandidateUniverseRespectsComponents) {
  // Every candidate's component must contain every query keyword (or
  // a member of its extension) — the GetDocuments pruning invariant.
  S3kOptions opts;
  opts.k = 3;
  S3kSearcher searcher(*ri_.instance, opts);
  Query q{0, {ri_.keywords[0]}};
  SearchStats st;
  auto result = searcher.Search(q, &st);
  ASSERT_TRUE(result.ok());
  std::unordered_set<KeywordId> accepted;
  for (KeywordId k : ri_.instance->ExtendKeyword(q.keywords[0])) {
    accepted.insert(k);
  }
  for (doc::NodeId n : st.candidate_nodes) {
    social::ComponentId c =
        ri_.instance->components().Of(social::EntityId::Fragment(n));
    bool found = false;
    for (KeywordId k : accepted) {
      for (social::ComponentId ck :
           ri_.instance->ComponentsWithKeyword(k)) {
        if (ck == c) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    EXPECT_TRUE(found) << "candidate " << n << " in component " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomInstanceSweep,
    ::testing::Values(SweepCase{11, 1.5}, SweepCase{12, 1.5},
                      SweepCase{13, 2.0}, SweepCase{14, 1.25},
                      SweepCase{15, 3.0}, SweepCase{16, 1.1},
                      SweepCase{17, 1.5}, SweepCase{18, 2.5},
                      SweepCase{19, 1.75}, SweepCase{20, 1.5}));

// ---- Tie handling -------------------------------------------------------------

TEST(TieBreakTest, SymmetricTwinsResolveWithoutDivergence) {
  // Two identical documents posted by the same user: equal scores.
  // The search must terminate and return both (any order).
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId kw = inst.InternKeyword("x");
  for (int i = 0; i < 2; ++i) {
    doc::Document d("doc");
    d.AddKeywords(0, {kw});
    (void)inst.AddDocument(std::move(d), "d" + std::to_string(i), u)
        .value();
  }
  ASSERT_TRUE(inst.Finalize().ok());
  S3kOptions opts;
  opts.k = 2;
  S3kSearcher searcher(inst, opts);
  SearchStats st;
  auto result = searcher.Search(Query{u, {kw}}, &st);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_TRUE(st.converged);
  EXPECT_NEAR((*result)[0].lower, (*result)[1].lower, 1e-9);
}

TEST(TieBreakTest, AncestorDescendantTieExcludesOne) {
  // A single-child chain where the keyword sits in the leaf: the leaf
  // (η⁰) beats the root (η¹), and only one of the two vertical
  // neighbors may be returned.
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId kw = inst.InternKeyword("x");
  doc::Document d("doc");
  uint32_t child = d.AddChild(0, "c");
  d.AddKeywords(child, {kw});
  (void)inst.AddDocument(std::move(d), "d0", u).value();
  ASSERT_TRUE(inst.Finalize().ok());
  S3kOptions opts;
  opts.k = 2;
  S3kSearcher searcher(inst, opts);
  auto result = searcher.Search(Query{u, {kw}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
}

}  // namespace
}  // namespace s3::core
