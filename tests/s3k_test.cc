#include <gtest/gtest.h>

#include <cmath>

#include "core/naive_reference.h"
#include "core/s3k.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

// Converged proximity via long matrix iteration (γ^-iters ≈ 0).
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 80) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

// Exact score of one document for a query, given converged prox.
double ExactScore(const S3Instance& inst, const Query& q,
                  const S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  QueryExtension ext(q.keywords.size());
  for (size_t i = 0; i < q.keywords.size(); ++i) {
    if (opts.use_semantics) {
      for (KeywordId k : inst.ExtendKeyword(q.keywords[i])) {
        ext[i].insert(k);
      }
    } else {
      ext[i].insert(q.keywords[i]);
    }
  }
  ConnectionBuilder b(inst, opts.score.eta);
  auto cc = b.Build(inst.components().Of(social::EntityId::Fragment(node)),
                    ext);
  for (const Candidate& c : cc.candidates) {
    if (c.node == node) return CandidateScore(c, prox);
  }
  return 0.0;
}

// ---- Validation ------------------------------------------------------------

TEST(S3kValidationTest, RejectsBadInput) {
  auto fig = s3::testing::BuildFigure3();
  S3kSearcher searcher(*fig.instance, S3kOptions{});
  Query q;
  q.seeker = 99;
  q.keywords = {fig.k0};
  EXPECT_FALSE(searcher.Search(q).ok());
  q.seeker = fig.u0;
  q.keywords = {};
  EXPECT_FALSE(searcher.Search(q).ok());
}

TEST(S3kValidationTest, RejectsUnfinalizedInstance) {
  S3Instance inst;
  inst.AddUser("u");
  KeywordId k = inst.InternKeyword("x");
  S3kSearcher searcher(inst, S3kOptions{});
  Query q{0, {k}};
  EXPECT_FALSE(searcher.Search(q).ok());
}

// ---- Figure 3 end-to-end -----------------------------------------------------

class Figure3SearchTest : public ::testing::Test {
 protected:
  void SetUp() override { fig_ = s3::testing::BuildFigure3(); }
  s3::testing::Figure3 fig_;
};

TEST_F(Figure3SearchTest, FindsKeywordBearingFragment) {
  S3kOptions opts;
  opts.k = 3;
  S3kSearcher searcher(*fig_.instance, opts);
  SearchStats stats;
  auto result = searcher.Search(Query{fig_.u0, {fig_.k0}}, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_TRUE(stats.converged);
  // Some ancestor-or-self of URI0.0.0 must be the best answer.
  doc::NodeId best = (*result)[0].node;
  EXPECT_TRUE(best == fig_.uri0_0_0 || best == fig_.uri0_0 ||
              best == fig_.uri0);
}

TEST_F(Figure3SearchTest, ResultsHaveNoVerticalNeighbors) {
  S3kOptions opts;
  opts.k = 5;
  S3kSearcher searcher(*fig_.instance, opts);
  auto result = searcher.Search(Query{fig_.u0, {fig_.k1}});
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->size(); ++i) {
    for (size_t j = i + 1; j < result->size(); ++j) {
      EXPECT_FALSE(fig_.instance->docs().AreVerticalNeighbors(
          (*result)[i].node, (*result)[j].node));
    }
  }
}

TEST_F(Figure3SearchTest, BoundsBracketExactScore) {
  S3kOptions opts;
  opts.k = 4;
  S3kSearcher searcher(*fig_.instance, opts);
  Query q{fig_.u1, {fig_.k1}};
  auto result = searcher.Search(q);
  ASSERT_TRUE(result.ok());
  auto prox = ConvergedProx(*fig_.instance, fig_.u1, opts.score.gamma);
  for (const ResultEntry& r : *result) {
    double exact = ExactScore(*fig_.instance, q, opts, r.node, prox);
    EXPECT_LE(r.lower, exact + 1e-9) << "node " << r.node;
    EXPECT_GE(r.upper, exact - 1e-9) << "node " << r.node;
  }
}

TEST_F(Figure3SearchTest, TagKeywordReachesTaggedDocument) {
  // k2 exists only as tag a0's keyword on URI0.0.0.
  S3kOptions opts;
  opts.k = 2;
  S3kSearcher searcher(*fig_.instance, opts);
  auto result = searcher.Search(Query{fig_.u2, {fig_.k2}});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  doc::NodeId best = (*result)[0].node;
  EXPECT_TRUE(best == fig_.uri0_0_0 || best == fig_.uri0_0 ||
              best == fig_.uri0);
}

TEST_F(Figure3SearchTest, DeterministicAcrossRuns) {
  S3kOptions opts;
  opts.k = 3;
  S3kSearcher searcher(*fig_.instance, opts);
  auto r1 = searcher.Search(Query{fig_.u0, {fig_.k1}});
  auto r2 = searcher.Search(Query{fig_.u0, {fig_.k1}});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].node, (*r2)[i].node);
  }
}

TEST_F(Figure3SearchTest, ThreadedSearchMatchesSequential) {
  S3kOptions seq;
  seq.k = 3;
  S3kOptions par = seq;
  par.threads = 4;
  S3kSearcher s1(*fig_.instance, seq);
  S3kSearcher s2(*fig_.instance, par);
  auto r1 = s1.Search(Query{fig_.u1, {fig_.k1}});
  auto r2 = s2.Search(Query{fig_.u1, {fig_.k1}});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].node, (*r2)[i].node);
  }
}

// ---- Figure 1: semantics in search ------------------------------------------

TEST(Figure1SearchTest, SemanticExtensionChangesAnswers) {
  auto fig = s3::testing::BuildFigure1();
  S3kOptions with_sem;
  with_sem.k = 5;
  S3kOptions no_sem = with_sem;
  no_sem.use_semantics = false;

  // u1 searches "degree": d1 says u2 holds an M.S.; only semantics can
  // surface it (the paper's motivating scenario).
  Query q{fig.u1, {fig.kw_degree}};
  SearchStats st_sem, st_plain;
  auto sem =
      S3kSearcher(*fig.instance, with_sem).Search(q, &st_sem);
  auto plain =
      S3kSearcher(*fig.instance, no_sem).Search(q, &st_plain);
  ASSERT_TRUE(sem.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->empty());
  ASSERT_FALSE(sem->empty());
  EXPECT_GT(st_sem.candidates_total, st_plain.candidates_total);
  // The answer set involves d1 (which contains "m.s.") — either d1
  // itself / its text node, or d0, connected through d1's reply.
  bool d1_family = false;
  for (const ResultEntry& r : *sem) {
    if (fig.instance->docs().DocOf(r.node) == fig.d1 ||
        r.node == fig.d0_root) {
      d1_family = true;
    }
  }
  EXPECT_TRUE(d1_family);
}

// ---- Anytime termination ------------------------------------------------------

TEST(AnytimeTest, BudgetedSearchStillReturns) {
  auto fig = s3::testing::BuildFigure1();
  S3kOptions opts;
  opts.k = 3;
  opts.max_iterations = 1;
  S3kSearcher searcher(*fig.instance, opts);
  SearchStats stats;
  auto result =
      searcher.Search(Query{fig.u1, {fig.kw_university}}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.iterations, 1u);
}

// ---- Property test: S3k equals brute force over random instances -------------

struct OracleCase {
  uint64_t seed;
  double gamma;
  double eta;
  size_t k;
  size_t n_query_keywords;
};

class OracleComparisonTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleComparisonTest, MatchesBruteForce) {
  const OracleCase& tc = GetParam();
  s3::testing::RandomInstanceParams p;
  p.seed = tc.seed;
  auto ri = s3::testing::BuildRandomInstance(p);
  const S3Instance& inst = *ri.instance;

  S3kOptions opts;
  opts.score.gamma = tc.gamma;
  opts.score.eta = tc.eta;
  opts.k = tc.k;
  opts.max_iterations = 400;

  Rng rng(tc.seed * 31 + 7);
  for (int trial = 0; trial < 4; ++trial) {
    Query q;
    q.seeker = static_cast<social::UserId>(rng.Uniform(inst.UserCount()));
    for (size_t i = 0; i < tc.n_query_keywords; ++i) {
      q.keywords.push_back(
          ri.keywords[rng.Uniform(ri.keywords.size())]);
    }

    SearchStats stats;
    auto s3k = S3kSearcher(inst, opts).Search(q, &stats);
    ASSERT_TRUE(s3k.ok());
    EXPECT_TRUE(stats.converged) << "seed " << tc.seed;

    auto prox = ConvergedProx(inst, q.seeker, tc.gamma, 120);
    auto oracle = NaiveSearchWithProx(inst, q, opts, prox);

    ASSERT_EQ(s3k->size(), oracle.size())
        << "seed " << tc.seed << " trial " << trial;
    // Query answers are unique only up to ties (paper §3.1), so we
    // compare the descending score multisets, not node identities.
    std::vector<double> s3k_scores, oracle_scores;
    for (size_t r = 0; r < oracle.size(); ++r) {
      double s3k_exact = ExactScore(inst, q, opts, (*s3k)[r].node, prox);
      s3k_scores.push_back(s3k_exact);
      oracle_scores.push_back(oracle[r].lower);
      // Reported interval brackets the exact score.
      EXPECT_LE((*s3k)[r].lower, s3k_exact + 1e-7);
      EXPECT_GE((*s3k)[r].upper, s3k_exact - 1e-7);
    }
    std::sort(s3k_scores.rbegin(), s3k_scores.rend());
    std::sort(oracle_scores.rbegin(), oracle_scores.rend());
    for (size_t r = 0; r < oracle_scores.size(); ++r) {
      EXPECT_NEAR(s3k_scores[r], oracle_scores[r], 1e-7)
          << "rank " << r << " seed " << tc.seed << " trial " << trial;
    }
    // No two results are vertical neighbors (Def. 3.2).
    for (size_t i = 0; i < s3k->size(); ++i) {
      for (size_t j = i + 1; j < s3k->size(); ++j) {
        EXPECT_FALSE(inst.docs().AreVerticalNeighbors((*s3k)[i].node,
                                                      (*s3k)[j].node));
      }
    }
    q.keywords.clear();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, OracleComparisonTest,
    ::testing::Values(OracleCase{1, 1.5, 0.5, 3, 1},
                      OracleCase{2, 1.5, 0.5, 3, 1},
                      OracleCase{3, 2.0, 0.5, 5, 1},
                      OracleCase{4, 1.25, 0.7, 3, 2},
                      OracleCase{5, 1.5, 0.3, 4, 2},
                      OracleCase{6, 3.0, 0.5, 2, 1},
                      OracleCase{7, 1.5, 0.5, 8, 1},
                      OracleCase{8, 1.1, 0.9, 3, 1},
                      OracleCase{9, 2.0, 0.5, 3, 2},
                      OracleCase{10, 1.5, 0.5, 1, 1}));

}  // namespace
}  // namespace s3::core
