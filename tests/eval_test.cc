#include <gtest/gtest.h>

#include <thread>

#include "eval/metrics.h"
#include "eval/runtime.h"
#include "eval/service_stats.h"

namespace s3::eval {
namespace {

// ---- Spearman foot rule ----------------------------------------------------

TEST(FootRuleTest, IdenticalListsAreZero) {
  std::vector<uint64_t> l = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(SpearmanFootRule(l, l), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanFootRuleNormalized(l, l), 0.0);
}

TEST(FootRuleTest, DisjointListsAreMaximal) {
  std::vector<uint64_t> a = {1, 2, 3};
  std::vector<uint64_t> b = {4, 5, 6};
  // 2k(k+1) − Σ ranks both lists = k(k+1) = 12 for k=3.
  EXPECT_DOUBLE_EQ(SpearmanFootRule(a, b), 12.0);
  EXPECT_DOUBLE_EQ(SpearmanFootRuleNormalized(a, b), 1.0);
}

TEST(FootRuleTest, SwapCosts) {
  std::vector<uint64_t> a = {1, 2};
  std::vector<uint64_t> b = {2, 1};
  // Common items with rank displacement 1 each: L1 = 0 + 2 - 0 = 2.
  EXPECT_DOUBLE_EQ(SpearmanFootRule(a, b), 2.0);
}

TEST(FootRuleTest, Symmetric) {
  std::vector<uint64_t> a = {1, 2, 3, 7};
  std::vector<uint64_t> b = {3, 9, 1, 5};
  EXPECT_DOUBLE_EQ(SpearmanFootRule(a, b), SpearmanFootRule(b, a));
}

TEST(FootRuleTest, NormalizedInUnitInterval) {
  std::vector<uint64_t> a = {1, 2, 3, 4};
  std::vector<uint64_t> b = {2, 4, 6, 8};
  double v = SpearmanFootRuleNormalized(a, b);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(FootRuleTest, EmptyLists) {
  EXPECT_DOUBLE_EQ(SpearmanFootRule({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanFootRuleNormalized({}, {}), 0.0);
}

// ---- Intersection ratio ---------------------------------------------------

TEST(IntersectionTest, Full) {
  std::vector<uint64_t> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(IntersectionRatio(a, a), 1.0);
}

TEST(IntersectionTest, Partial) {
  EXPECT_DOUBLE_EQ(IntersectionRatio({1, 2, 3, 4}, {3, 4, 5, 6}), 0.5);
}

TEST(IntersectionTest, UnequalLengthsUseMax) {
  EXPECT_DOUBLE_EQ(IntersectionRatio({1, 2, 3, 4}, {1}), 0.25);
}

TEST(IntersectionTest, Empty) {
  EXPECT_DOUBLE_EQ(IntersectionRatio({}, {}), 0.0);
}

// ---- UnreachableFraction -----------------------------------------------------

TEST(UnreachableTest, AllReachable) {
  EXPECT_DOUBLE_EQ(UnreachableFraction({1, 2}, {1, 2, 3}), 0.0);
}

TEST(UnreachableTest, NoneReachable) {
  EXPECT_DOUBLE_EQ(UnreachableFraction({1, 2}, {}), 1.0);
}

TEST(UnreachableTest, Half) {
  EXPECT_DOUBLE_EQ(UnreachableFraction({1, 2, 3, 4}, {1, 2}), 0.5);
}

TEST(UnreachableTest, EmptyUniverse) {
  EXPECT_DOUBLE_EQ(UnreachableFraction({}, {1}), 0.0);
}

// ---- RuntimeSeries / TablePrinter ---------------------------------------------

TEST(RuntimeSeriesTest, MedianAndQuartiles) {
  RuntimeSeries s;
  for (double v : {0.5, 0.1, 0.3, 0.9, 0.7}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.MedianSeconds(), 0.5);
  auto q = s.Quartiles();
  EXPECT_DOUBLE_EQ(q.min, 0.1);
  EXPECT_DOUBLE_EQ(q.max, 0.9);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"workload", "median"});
  t.AddRow({"+,1,5", "0.123"});
  t.AddRow({"-,5,10", "0.001"});
  std::string out = t.Render();
  EXPECT_NE(out.find("workload"), std::string::npos);
  EXPECT_NE(out.find("+,1,5"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Three content lines + header + rule.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(FormattersTest, Seconds) { EXPECT_EQ(FormatSeconds(0.1234), "0.123"); }

TEST(FormattersTest, Percent) { EXPECT_EQ(FormatPercent(0.123), "12.3%"); }

// ---- Service-level latency stats -------------------------------------------

TEST(LatencyRecorderTest, EmptySnapshotIsZero) {
  LatencyRecorder rec;
  LatencySnapshot s = rec.TakeSnapshot(1.0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.qps, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
}

TEST(LatencyRecorderTest, PercentilesAndQps) {
  LatencyRecorder rec;
  // 1ms..100ms in 1ms steps over a 2-second window.
  for (int i = 1; i <= 100; ++i) rec.Add(i * 1e-3);
  LatencySnapshot s = rec.TakeSnapshot(2.0);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.qps, 50.0);
  EXPECT_NEAR(s.p50_ms, 50.5, 1e-9);   // type-7 quantile of 1..100
  EXPECT_NEAR(s.p90_ms, 90.1, 1e-9);
  EXPECT_NEAR(s.p99_ms, 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);
}

TEST(LatencyRecorderTest, ConcurrentAddsAllLand) {
  LatencyRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) rec.Add(1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.count(), size_t{kThreads * kPerThread});
  rec.Reset();
  EXPECT_EQ(rec.count(), 0u);
}

TEST(LatencyRecorderTest, WindowBoundsMemoryButQpsCountsAll) {
  LatencyRecorder rec(/*window_capacity=*/4);
  // 8 adds: the window retains the last 4 (5..8 ms), the total is 8.
  for (int i = 1; i <= 8; ++i) rec.Add(i * 1e-3);
  EXPECT_EQ(rec.count(), 8u);
  LatencySnapshot s = rec.TakeSnapshot(1.0);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.qps, 8.0);           // QPS from the total count
  EXPECT_DOUBLE_EQ(s.max_ms, 8.0);        // percentiles from the window
  EXPECT_NEAR(s.mean_ms, 6.5, 1e-9);      // mean(5,6,7,8)
}

TEST(LatencyRecorderTest, FormatSnapshotMentionsTails) {
  LatencyRecorder rec;
  rec.Add(0.002);
  std::string line = FormatSnapshot(rec.TakeSnapshot(1.0));
  EXPECT_NE(line.find("qps="), std::string::npos);
  EXPECT_NE(line.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace s3::eval
