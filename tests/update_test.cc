// Live-update pipeline tests: InstanceDelta validation, ApplyDelta
// equivalence against a from-scratch rebuild (bit for bit, three
// successive generations), structural sharing across generations, and
// QueryService::SwapSnapshot publishing new generations to a service
// under concurrent query load (the ConcurrentSwap suite runs under
// TSan in CI).
//
// The equivalence harness exploits that InstanceDelta mirrors the
// S3Instance population API: the same deterministic op script is
// applied to a delta (then ApplyDelta) and to a fresh instance (then
// one Finalize). Rebuild equivalence is exact because the op order —
// base script, then round scripts — is identical on both paths and the
// base has no RDF-imported social edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/instance_delta.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "server/query_service.h"

namespace s3::core {
namespace {

using server::QueryFuture;
using server::QueryService;
using server::QueryServiceOptions;

// ---- deterministic op scripts -----------------------------------------

struct PopCounts {
  uint32_t users = 0;
  uint32_t docs = 0;
  uint32_t nodes = 0;
  uint32_t tags = 0;
};

constexpr uint32_t kUsers = 6;

// The base population. `stable_kw` is used by exactly one base node and
// never by any update round — its postings list must stay shared across
// every generation. User 0 gains no out-edge from any round, so its
// adjacency row must stay shared too.
void PopulateBase(S3Instance& inst, std::vector<KeywordId>& pool,
                  KeywordId& stable_kw, PopCounts& c) {
  for (uint32_t u = 0; u < kUsers; ++u) {
    inst.AddUser("u" + std::to_string(u));
  }
  c.users = kUsers;
  for (int k = 0; k < 6; ++k) {
    pool.push_back(inst.InternKeyword("kw" + std::to_string(k)));
  }
  stable_kw = inst.InternKeyword("stablekw");
  // Small ontology so semantic extension is exercised (deltas share the
  // saturated graph wholesale).
  inst.DeclareSubClass("kw1", "kw0");
  inst.DeclareType("kw2", "kw0");

  Rng rng(42);
  for (int i = 0; i < 6; ++i) {
    doc::Document d("doc");
    uint32_t n_children = static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t ch = 0; ch < n_children; ++ch) {
      uint32_t parent = static_cast<uint32_t>(rng.Uniform(d.NodeCount()));
      uint32_t child = d.AddChild(parent, "n");
      d.AddKeywords(child, {pool[rng.Uniform(pool.size())]});
    }
    d.AddKeywords(0, {pool[rng.Uniform(pool.size())]});
    if (i == 0) d.AddKeywords(0, {stable_kw});
    social::UserId poster =
        static_cast<social::UserId>(rng.Uniform(kUsers));
    const uint32_t n_doc_nodes = static_cast<uint32_t>(d.NodeCount());
    auto id = inst.AddDocument(std::move(d), "d" + std::to_string(i),
                               poster);
    ASSERT_TRUE(id.ok());
    const uint32_t nodes_before = c.nodes;
    c.nodes += n_doc_nodes;
    ++c.docs;
    if (i > 0 && rng.Chance(0.5)) {
      ASSERT_TRUE(
          inst.AddComment(*id, static_cast<doc::NodeId>(
                                   rng.Uniform(nodes_before)))
              .ok());
    }
  }
  for (int t = 0; t < 4; ++t) {
    social::UserId author =
        static_cast<social::UserId>(rng.Uniform(kUsers));
    KeywordId kw = rng.Chance(0.6) ? pool[rng.Uniform(pool.size())]
                                   : kInvalidKeyword;
    ASSERT_TRUE(inst.AddTagOnFragment(
                        author,
                        static_cast<doc::NodeId>(rng.Uniform(c.nodes)),
                        kw)
                    .ok());
    ++c.tags;
  }
  ASSERT_TRUE(inst.AddSocialEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(inst.AddSocialEdge(1, 0, 0.8).ok());
  for (int e = 0; e < 6; ++e) {
    social::UserId a = static_cast<social::UserId>(rng.Uniform(kUsers));
    social::UserId b = static_cast<social::UserId>(rng.Uniform(kUsers));
    if (a == b) continue;
    ASSERT_TRUE(
        inst.AddSocialEdge(a, b, 0.2 + 0.7 * rng.NextDouble()).ok());
  }
}

// One update round: new documents (some commenting on older nodes),
// tags (some on tags, some endorsements), social edges and one new
// keyword spelling. Works identically against an InstanceDelta and a
// rebuilding S3Instance — op validity depends only on `c`, never on
// sink state. User 0 is never a source of anything.
template <typename Sink>
void ApplyUpdateRound(Sink& sink, uint64_t seed, PopCounts& c,
                      std::vector<KeywordId>& pool) {
  Rng rng(seed);
  pool.push_back(sink.InternKeyword("rk" + std::to_string(seed)));
  for (int i = 0; i < 3; ++i) {
    doc::Document d("doc");
    uint32_t n_children = static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t ch = 0; ch < n_children; ++ch) {
      uint32_t parent = static_cast<uint32_t>(rng.Uniform(d.NodeCount()));
      uint32_t child = d.AddChild(parent, "n");
      if (rng.Chance(0.8)) {
        d.AddKeywords(child, {pool[rng.Uniform(pool.size())]});
      }
    }
    d.AddKeywords(0, {pool[rng.Uniform(pool.size())]});
    social::UserId poster =
        static_cast<social::UserId>(1 + rng.Uniform(c.users - 1));
    const uint32_t n_doc_nodes = static_cast<uint32_t>(d.NodeCount());
    const uint32_t nodes_before = c.nodes;
    auto id = sink.AddDocument(std::move(d),
                               "r" + std::to_string(seed) + "_" +
                                   std::to_string(i),
                               poster);
    ASSERT_TRUE(id.ok());
    c.nodes += n_doc_nodes;
    ++c.docs;
    if (rng.Chance(0.6)) {
      ASSERT_TRUE(sink.AddComment(*id, static_cast<doc::NodeId>(
                                           rng.Uniform(nodes_before)))
                      .ok());
    }
  }
  for (int t = 0; t < 2; ++t) {
    social::UserId author =
        static_cast<social::UserId>(1 + rng.Uniform(c.users - 1));
    KeywordId kw = rng.Chance(0.7) ? pool[rng.Uniform(pool.size())]
                                   : kInvalidKeyword;
    if (c.tags > 0 && rng.Chance(0.3)) {
      ASSERT_TRUE(sink.AddTagOnTag(author,
                                   static_cast<social::TagId>(
                                       rng.Uniform(c.tags)),
                                   kw)
                      .ok());
    } else {
      ASSERT_TRUE(sink.AddTagOnFragment(author,
                                        static_cast<doc::NodeId>(
                                            rng.Uniform(c.nodes)),
                                        kw)
                      .ok());
    }
    ++c.tags;
  }
  for (int e = 0; e < 2; ++e) {
    social::UserId a =
        static_cast<social::UserId>(1 + rng.Uniform(c.users - 1));
    social::UserId b =
        static_cast<social::UserId>(1 + rng.Uniform(c.users - 1));
    if (a == b) continue;
    ASSERT_TRUE(
        sink.AddSocialEdge(a, b, 0.2 + 0.7 * rng.NextDouble()).ok());
  }
}

// Builds the rebuilt-from-scratch oracle for `rounds` applied rounds:
// one fresh instance, base script + round scripts, a single Finalize.
std::shared_ptr<const S3Instance> RebuildFromScratch(size_t rounds) {
  auto inst = std::make_shared<S3Instance>();
  std::vector<KeywordId> pool;
  KeywordId stable = kInvalidKeyword;
  PopCounts c;
  PopulateBase(*inst, pool, stable, c);
  for (size_t r = 1; r <= rounds; ++r) {
    ApplyUpdateRound(*inst, 1000 + r, c, pool);
  }
  EXPECT_TRUE(inst->Finalize().ok());
  return inst;
}

S3kOptions TestOptions() {
  S3kOptions opts;
  opts.k = 5;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  return opts;
}

// Mixed query set over the generation-0 keyword pool (always valid for
// admission, whatever the current generation). Keywords pre-sorted so
// serial Search sees the cache's canonical slot order.
std::vector<Query> MakeQueries(const std::vector<KeywordId>& pool,
                               size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (size_t i = 0; i < n; ++i) {
    Query q;
    q.seeker = static_cast<social::UserId>(rng.Uniform(kUsers));
    const size_t l = 1 + rng.Uniform(2);
    for (size_t j = 0; j < l; ++j) {
      q.keywords.push_back(pool[rng.Uniform(pool.size())]);
    }
    std::sort(q.keywords.begin(), q.keywords.end());
    out.push_back(std::move(q));
  }
  return out;
}

void ExpectSameResults(const std::vector<ResultEntry>& got,
                       const std::vector<ResultEntry>& want,
                       const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << what << " rank " << i;
    // Bit-for-bit: the incremental derived structures must be exactly
    // the rebuild's, so the float pipeline agrees to the last bit.
    EXPECT_EQ(got[i].lower, want[i].lower) << what << " rank " << i;
    EXPECT_EQ(got[i].upper, want[i].upper) << what << " rank " << i;
  }
}

// Converged proximity oracle (same construction as tests/s3k_test.cc).
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

double ExactScore(const S3Instance& inst, const Query& q,
                  const S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  auto plan = BuildCandidatePlan(inst, q.keywords, opts.use_semantics,
                                 opts.score.eta);
  EXPECT_TRUE(plan.ok());
  for (const auto& cc : plan->per_comp) {
    for (const Candidate& c : cc.candidates) {
      if (c.node == node) return CandidateScore(c, prox);
    }
  }
  return 0.0;
}

// ---- InstanceDelta validation -----------------------------------------

TEST(InstanceDeltaTest, ValidatesOperations) {
  auto base = std::make_shared<S3Instance>();
  std::vector<KeywordId> pool;
  KeywordId stable;
  PopCounts c;
  PopulateBase(*base, pool, stable, c);
  ASSERT_TRUE(base->Finalize().ok());
  std::shared_ptr<const S3Instance> snap = base;

  InstanceDelta delta(snap);
  EXPECT_EQ(delta.AddDocument(doc::Document("doc"), "d0", 0)
                .status()
                .code(),
            StatusCode::kAlreadyExists);  // base URI taken
  EXPECT_EQ(delta.AddDocument(doc::Document("doc"), "fresh", kUsers + 3)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // unknown poster
  EXPECT_EQ(delta.AddComment(c.docs + 5, 0).code(),
            StatusCode::kInvalidArgument);  // unknown doc
  EXPECT_EQ(delta.AddComment(0, snap->docs().RootNode(0)).code(),
            StatusCode::kInvalidArgument);  // self comment
  EXPECT_EQ(delta.AddTagOnFragment(0, c.nodes + 9, pool[0])
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // unknown subject
  EXPECT_EQ(delta.AddTagOnFragment(0, 0, 123456).status().code(),
            StatusCode::kInvalidArgument);  // keyword id out of range
  EXPECT_EQ(delta.AddTagOnTag(0, c.tags + 7, pool[0]).status().code(),
            StatusCode::kInvalidArgument);  // unknown subject tag
  EXPECT_EQ(delta.AddSocialEdge(0, 1, 1.5).code(),
            StatusCode::kInvalidArgument);  // bad weight
  EXPECT_EQ(delta.AddSocialEdge(kUsers + 1, 0, 0.5).code(),
            StatusCode::kInvalidArgument);  // unknown user
  EXPECT_TRUE(delta.empty());

  // Valid ops referencing both old and delta-new entities.
  doc::Document fresh("doc");
  fresh.AddKeywords(0, {delta.InternKeyword("brandnew")});
  auto id = delta.AddDocument(std::move(fresh), "fresh", 1);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, c.docs);  // continues the base id space
  EXPECT_TRUE(delta.AddComment(*id, 0).ok());
  auto tag = delta.AddTagOnFragment(1, c.nodes, pool[0]);  // new node
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, c.tags);
  EXPECT_EQ(delta.op_count(), 3u);

  // A duplicate URI within the same delta is rejected too.
  EXPECT_EQ(delta.AddDocument(doc::Document("doc"), "fresh", 1)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(InstanceDeltaTest, ApplyRejectsForeignBase) {
  std::shared_ptr<const S3Instance> a = RebuildFromScratch(0);
  std::shared_ptr<const S3Instance> b = RebuildFromScratch(0);
  InstanceDelta delta(a);
  EXPECT_TRUE(delta.AddSocialEdge(1, 2, 0.5).ok());
  auto applied = b->ApplyDelta(delta);
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(a->ApplyDelta(delta).ok());
}

TEST(InstanceDeltaTest, ApplyRejectsStaleBaseGeneration) {
  std::shared_ptr<const S3Instance> snap = RebuildFromScratch(0);
  InstanceDelta delta(snap);
  EXPECT_TRUE(delta.AddSocialEdge(1, 2, 0.5).ok());
  auto next = snap->ApplyDelta(delta);
  ASSERT_TRUE(next.ok());
  // Re-applying the same delta to the *next* generation must fail: its
  // ids are base-relative.
  EXPECT_EQ((*next)->ApplyDelta(delta).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- the acceptance pin: 3 generations vs rebuild ---------------------

TEST(LiveUpdateTest, ThreeGenerationsMatchRebuildBitForBit) {
  auto base = std::make_shared<S3Instance>();
  std::vector<KeywordId> pool;
  KeywordId stable = kInvalidKeyword;
  PopCounts c;
  PopulateBase(*base, pool, stable, c);
  ASSERT_TRUE(base->Finalize().ok());
  EXPECT_EQ(base->generation(), 0u);
  std::shared_ptr<const S3Instance> cur = base;

  const S3kOptions opts = TestOptions();

  for (size_t round = 1; round <= 3; ++round) {
    InstanceDelta delta(cur);
    ApplyUpdateRound(delta, 1000 + round, c, pool);
    ASSERT_FALSE(delta.empty());
    auto next = cur->ApplyDelta(delta);
    ASSERT_TRUE(next.ok()) << next.status().message();
    EXPECT_EQ((*next)->generation(), round);

    // The rebuilt-from-scratch oracle replays the identical op script
    // into one instance and finalizes once.
    auto rebuilt = RebuildFromScratch(round);

    // Derived-structure invariants.
    EXPECT_EQ((*next)->UserCount(), rebuilt->UserCount());
    EXPECT_EQ((*next)->docs().NodeCount(), rebuilt->docs().NodeCount());
    EXPECT_EQ((*next)->TagCount(), rebuilt->TagCount());
    EXPECT_EQ((*next)->vocabulary().size(), rebuilt->vocabulary().size());
    EXPECT_EQ((*next)->components().ComponentCount(),
              rebuilt->components().ComponentCount());
    EXPECT_EQ((*next)->matrix().nonzeros(), rebuilt->matrix().nonzeros());
    for (uint32_t row = 0; row < (*next)->layout().total(); ++row) {
      ASSERT_EQ((*next)->components().OfRow(row),
                rebuilt->components().OfRow(row))
          << "component id diverges at row " << row;
      auto got_row = (*next)->matrix().Row(row);
      auto want_row = rebuilt->matrix().Row(row);
      ASSERT_EQ(got_row, want_row)
          << "matrix row diverges at row " << row;
      ASSERT_EQ((*next)->matrix().Denominator(row),
                rebuilt->matrix().Denominator(row));
    }

    // Query equivalence, bit for bit, including brand-new keywords.
    S3kSearcher inc_searcher(**next, opts);
    S3kSearcher reb_searcher(*rebuilt, opts);
    auto queries = MakeQueries(pool, 24, 7000 + round);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      SearchStats inc_stats, reb_stats;
      auto got = inc_searcher.Search(queries[qi], &inc_stats);
      auto want = reb_searcher.Search(queries[qi], &reb_stats);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(want.ok());
      ExpectSameResults(*got, *want,
                        "round " + std::to_string(round) + " query " +
                            std::to_string(qi));
      EXPECT_EQ(inc_stats.converged, reb_stats.converged);

      // NaiveSearch oracle on the rebuilt instance (converged queries):
      // descending exact-score multisets agree.
      if (qi % 5 == 0 && reb_stats.converged) {
        auto prox = ConvergedProx(*rebuilt, queries[qi].seeker,
                                  opts.score.gamma);
        auto oracle =
            NaiveSearchWithProx(*rebuilt, queries[qi], opts, prox);
        ASSERT_EQ(got->size(), oracle.size());
        std::vector<double> got_scores, want_scores;
        for (size_t r = 0; r < oracle.size(); ++r) {
          got_scores.push_back(ExactScore(*rebuilt, queries[qi], opts,
                                          (*got)[r].node, prox));
          want_scores.push_back(oracle[r].lower);
        }
        std::sort(got_scores.rbegin(), got_scores.rend());
        std::sort(want_scores.rbegin(), want_scores.rend());
        for (size_t r = 0; r < want_scores.size(); ++r) {
          EXPECT_NEAR(got_scores[r], want_scores[r], 1e-7);
        }
      }
    }

    // Structural sharing across generations: the untouched postings
    // list and user 0's adjacency row are the same heap objects.
    EXPECT_TRUE(
        (*next)->index().SharesPostings(cur->index(), stable));
    EXPECT_TRUE((*next)->edges().SharesAdjacencyRow(
        cur->edges(), social::EntityId::User(0)));
    // And the base snapshot is untouched and still queryable.
    EXPECT_EQ(cur->generation(), round - 1);

    cur = *next;
  }
}

TEST(LiveUpdateTest, DeltaMergesExistingComponents) {
  // Base: two unlinked documents -> two components. The delta adds a
  // comment edge between the *existing* documents, merging them; the
  // incremental partition (ids included) must match the rebuild.
  auto make_base = [](S3Instance& inst, KeywordId* kw) {
    inst.AddUser("u0");
    inst.AddUser("u1");
    *kw = inst.InternKeyword("kw");
    doc::Document d0("doc");
    d0.AddKeywords(0, {*kw});
    ASSERT_TRUE(inst.AddDocument(std::move(d0), "d0", 0).ok());
    doc::Document d1("doc");
    d1.AddKeywords(0, {*kw});
    ASSERT_TRUE(inst.AddDocument(std::move(d1), "d1", 1).ok());
    ASSERT_TRUE(inst.AddSocialEdge(0, 1, 0.5).ok());
  };

  auto base = std::make_shared<S3Instance>();
  KeywordId kw = kInvalidKeyword;
  make_base(*base, &kw);
  ASSERT_TRUE(base->Finalize().ok());
  std::shared_ptr<const S3Instance> snap = base;
  ASSERT_EQ(snap->components().ComponentCount(), 2u);

  InstanceDelta delta(snap);
  ASSERT_TRUE(delta.AddComment(1, snap->docs().RootNode(0)).ok());
  auto next = snap->ApplyDelta(delta);
  ASSERT_TRUE(next.ok()) << next.status().message();

  auto rebuilt = std::make_shared<S3Instance>();
  KeywordId kw2 = kInvalidKeyword;
  make_base(*rebuilt, &kw2);
  ASSERT_TRUE(rebuilt->AddComment(1, rebuilt->docs().RootNode(0)).ok());
  ASSERT_TRUE(rebuilt->Finalize().ok());

  EXPECT_EQ((*next)->components().ComponentCount(), 1u);
  for (uint32_t row = 0; row < (*next)->layout().total(); ++row) {
    EXPECT_EQ((*next)->components().OfRow(row),
              rebuilt->components().OfRow(row));
    EXPECT_EQ((*next)->matrix().Row(row), rebuilt->matrix().Row(row));
  }
  EXPECT_EQ((*next)->ComponentsWithKeyword(kw),
            rebuilt->ComponentsWithKeyword(kw2));
  // The base still sees its pre-merge partition.
  EXPECT_EQ(snap->components().ComponentCount(), 2u);

  S3kSearcher a(**next, TestOptions());
  S3kSearcher b(*rebuilt, TestOptions());
  Query q{0, {kw}};
  auto ra = a.Search(q);
  auto rb = b.Search(q);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ExpectSameResults(*ra, *rb, "merged-component query");
}

// ---- hot swap under concurrent load (TSan target) ---------------------

TEST(ConcurrentSwapTest, SwapUnderLoadServesExactlyOneGeneration) {
  constexpr size_t kRounds = 3;

  // Generations 0..3 plus their rebuilt-from-scratch oracles and the
  // serial per-generation expected results.
  std::vector<std::shared_ptr<const S3Instance>> gens;
  std::vector<KeywordId> pool;
  KeywordId stable = kInvalidKeyword;
  PopCounts c;
  {
    auto base = std::make_shared<S3Instance>();
    PopulateBase(*base, pool, stable, c);
    ASSERT_TRUE(base->Finalize().ok());
    gens.push_back(base);
  }
  const std::vector<KeywordId> gen0_pool = pool;
  for (size_t round = 1; round <= kRounds; ++round) {
    InstanceDelta delta(gens.back());
    ApplyUpdateRound(delta, 1000 + round, c, pool);
    auto next = gens.back()->ApplyDelta(delta);
    ASSERT_TRUE(next.ok()) << next.status().message();
    gens.push_back(*next);
  }

  const S3kOptions opts = TestOptions();
  auto queries = MakeQueries(gen0_pool, 16, 99);
  // expected[g][qi]: serial results on the rebuilt-from-scratch oracle
  // of generation g — the acceptance bar for every service response.
  std::vector<std::vector<std::vector<ResultEntry>>> expected(kRounds + 1);
  for (size_t g = 0; g <= kRounds; ++g) {
    auto rebuilt = RebuildFromScratch(g);
    S3kSearcher searcher(*rebuilt, opts);
    for (const Query& q : queries) {
      auto r = searcher.Search(q);
      ASSERT_TRUE(r.ok());
      expected[g].push_back(*r);
    }
  }

  QueryServiceOptions service_opts;
  service_opts.workers = 4;
  service_opts.queue_capacity = 64;
  service_opts.search = opts;
  service_opts.enable_cache = true;
  service_opts.cache_shards = 4;
  service_opts.cache_capacity_per_shard = 16;
  QueryService service(gens[0], service_opts);

  // A response is valid iff it matches its *own* generation's oracle
  // exactly — mixing structures from two generations would diverge
  // from both.
  std::atomic<size_t> checked{0};
  auto check_response = [&](size_t qi, const server::QueryResponse& resp) {
    ASSERT_LE(resp.generation, kRounds);
    const auto& want = expected[resp.generation][qi];
    ASSERT_EQ(resp.entries.size(), want.size())
        << "generation " << resp.generation << " query " << qi;
    for (size_t r = 0; r < want.size(); ++r) {
      ASSERT_EQ(resp.entries[r].node, want[r].node)
          << "generation " << resp.generation << " query " << qi;
      ASSERT_EQ(resp.entries[r].lower, want[r].lower);
      ASSERT_EQ(resp.entries[r].upper, want[r].upper);
    }
    checked.fetch_add(1);
  };

  for (size_t round = 1; round <= kRounds; ++round) {
    // Hammer the service from 3 client threads while the swap lands.
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
      clients.emplace_back([&, t] {
        for (size_t pass = 0; pass < 4; ++pass) {
          for (size_t qi = t; qi < queries.size(); qi += 3) {
            auto submitted = service.SubmitBlocking(queries[qi]);
            ASSERT_TRUE(submitted.ok());
            auto resp = submitted->get();
            ASSERT_TRUE(resp.ok()) << resp.status().message();
            check_response(qi, *resp);
          }
        }
      });
    }
    ASSERT_TRUE(service.SwapSnapshot(gens[round]).ok());
    for (auto& t : clients) t.join();

    // Quiesced: every response now comes from the new generation.
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto submitted = service.SubmitBlocking(queries[qi]);
      ASSERT_TRUE(submitted.ok());
      auto resp = submitted->get();
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->generation, round);
      check_response(qi, *resp);
    }
  }
  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(service.Stats().failed, 0u);
  EXPECT_EQ(service.snapshot()->generation(), kRounds);
  // Swapping purged the unreachable old-generation plans.
  ASSERT_NE(service.cache(), nullptr);
  EXPECT_GT(service.cache()->Stats().purged, 0u);
}

// Stale plans must never be served against a new snapshot: the cache
// key carries the generation, so a primed plan stops matching after a
// swap and the fresh build reflects the delta's documents.
TEST(ConcurrentSwapTest, CachedPlansNeverCrossGenerations) {
  auto base = std::make_shared<S3Instance>();
  std::vector<KeywordId> pool;
  KeywordId stable = kInvalidKeyword;
  PopCounts c;
  PopulateBase(*base, pool, stable, c);
  ASSERT_TRUE(base->Finalize().ok());
  std::shared_ptr<const S3Instance> snap = base;

  // Hot query: two pool keywords, seeker 1.
  Query hot;
  hot.seeker = 1;
  hot.keywords = {pool[0], pool[3]};
  std::sort(hot.keywords.begin(), hot.keywords.end());

  // The delta plants a document posted *by the seeker* containing both
  // hot keywords — with postedBy weight 1 it dominates the seeker's
  // proximity, so the hot top-1 must change after the swap.
  InstanceDelta delta(snap);
  doc::Document planted("doc");
  planted.AddKeywords(0, {pool[0], pool[3]});
  auto planted_id = delta.AddDocument(std::move(planted), "planted", 1);
  ASSERT_TRUE(planted_id.ok());
  auto next = snap->ApplyDelta(delta);
  ASSERT_TRUE(next.ok());
  const doc::NodeId planted_node = (*next)->docs().RootNode(*planted_id);

  const S3kOptions opts = TestOptions();
  S3kSearcher old_searcher(*snap, opts);
  S3kSearcher new_searcher(**next, opts);
  auto old_expected = old_searcher.Search(hot);
  auto new_expected = new_searcher.Search(hot);
  ASSERT_TRUE(old_expected.ok());
  ASSERT_TRUE(new_expected.ok());
  ASSERT_FALSE(new_expected->empty());
  ASSERT_EQ((*new_expected)[0].node, planted_node);
  // Precondition for the staleness check: the generations disagree, so
  // a stale plan would be observable.
  ASSERT_TRUE(old_expected->empty() ||
              (*old_expected)[0].node != planted_node);

  QueryServiceOptions service_opts;
  service_opts.workers = 2;
  service_opts.search = opts;
  QueryService service(snap, service_opts);

  auto run_hot = [&]() -> server::QueryResponse {
    auto submitted = service.SubmitBlocking(hot);
    EXPECT_TRUE(submitted.ok());
    auto resp = submitted->get();
    EXPECT_TRUE(resp.ok());
    return *resp;
  };

  // Prime the old-generation plan.
  auto first = run_hot();
  EXPECT_FALSE(first.cache_hit);
  auto second = run_hot();
  EXPECT_TRUE(second.cache_hit);
  ExpectSameResults(second.entries, *old_expected, "primed old plan");

  ASSERT_TRUE(service.SwapSnapshot(*next).ok());

  // Same keyword multiset, new generation: the primed plan must not
  // match; the rebuilt plan sees the planted document.
  auto third = run_hot();
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.generation, 1u);
  ExpectSameResults(third.entries, *new_expected, "post-swap hot query");
  auto fourth = run_hot();
  EXPECT_TRUE(fourth.cache_hit);
  ExpectSameResults(fourth.entries, *new_expected, "post-swap cached");

  // Old-generation entries were purged on swap, not flushed wholesale.
  EXPECT_EQ(service.cache()->Stats().purged, 1u);
}

TEST(ConcurrentSwapTest, SwapValidatesInput) {
  std::shared_ptr<const S3Instance> snap = RebuildFromScratch(0);
  QueryServiceOptions service_opts;
  service_opts.workers = 1;
  QueryService service(snap, service_opts);
  EXPECT_EQ(service.SwapSnapshot(nullptr).code(),
            StatusCode::kInvalidArgument);
  auto unfinalized = std::make_shared<S3Instance>();
  unfinalized->AddUser("u");
  EXPECT_EQ(service.SwapSnapshot(std::move(unfinalized)).code(),
            StatusCode::kInvalidArgument);
  // Generations must grow: re-publishing the current snapshot or an
  // *unrelated* generation-0 instance (whose cached-plan keys would
  // collide with the serving snapshot's) is rejected.
  EXPECT_EQ(service.SwapSnapshot(snap).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SwapSnapshot(RebuildFromScratch(0)).code(),
            StatusCode::kInvalidArgument);
  // A *foreign-lineage* snapshot is rejected even with a larger
  // generation: its id spaces are unrelated to what queries were
  // validated against.
  auto foreign = RebuildFromScratch(0);
  InstanceDelta foreign_delta(foreign);
  ASSERT_TRUE(foreign_delta.AddSocialEdge(1, 2, 0.4).ok());
  auto foreign_next = foreign->ApplyDelta(foreign_delta);
  ASSERT_TRUE(foreign_next.ok());
  ASSERT_EQ((*foreign_next)->generation(), 1u);
  EXPECT_EQ(service.SwapSnapshot(*foreign_next).code(),
            StatusCode::kInvalidArgument);
  service.Shutdown();
  EXPECT_EQ(service.SwapSnapshot(snap).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConcurrentSwapTest, PurgeRaisesInsertFloorAgainstLateBuilds) {
  server::ProximityCache cache(/*shards=*/2, /*capacity_per_shard=*/4);
  auto plan = std::make_shared<const CandidatePlan>();
  server::PlanCacheKey old_key =
      server::MakePlanKey({1, 2}, true, 0.5, /*generation=*/0);
  cache.Insert(old_key, plan);
  EXPECT_EQ(cache.Stats().entries, 1u);

  EXPECT_EQ(cache.PurgeGenerationsBelow(1), 1u);
  // A worker that missed on generation 0 before the swap finishes its
  // build now: the late insert must be dropped, not strand an
  // unreachable entry.
  cache.Insert(old_key, plan);
  EXPECT_EQ(cache.Stats().entries, 0u);
  // Current-generation inserts are unaffected.
  cache.Insert(server::MakePlanKey({1, 2}, true, 0.5, /*generation=*/1),
               plan);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

// Satellite pin: keyword *ids* are validated at admission.
TEST(QueryServiceTest, RejectsOutOfRangeKeywordIds) {
  std::shared_ptr<const S3Instance> snap = RebuildFromScratch(0);
  QueryServiceOptions service_opts;
  service_opts.workers = 1;
  QueryService service(snap, service_opts);
  Query q;
  q.seeker = 0;
  q.keywords = {static_cast<KeywordId>(snap->vocabulary().size())};
  EXPECT_EQ(service.Submit(q).status().code(),
            StatusCode::kInvalidArgument);
  q.keywords = {0, kInvalidKeyword};
  EXPECT_EQ(service.Submit(q).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace s3::core
