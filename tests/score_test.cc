#include <gtest/gtest.h>

#include <cmath>

#include "core/naive_reference.h"
#include "core/score.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

// ---- Constants -------------------------------------------------------------

TEST(ScoreConstantsTest, CGamma) {
  EXPECT_DOUBLE_EQ(CGamma(2.0), 0.5);
  EXPECT_NEAR(CGamma(1.5), 1.0 / 3.0, 1e-12);
}

TEST(ScoreConstantsTest, TailBoundGeometric) {
  // B>n = γ^-(n+1): the exact tail of Cγ Σ_{m>n} γ^-m with unit path
  // mass per length.
  const double gamma = 1.5;
  for (size_t n = 0; n < 10; ++n) {
    double expected = 0.0;
    for (size_t m = n + 1; m < 200; ++m) {
      expected += CGamma(gamma) * std::pow(gamma, -double(m));
    }
    EXPECT_NEAR(TailBound(gamma, n), expected, 1e-9) << n;
  }
}

TEST(ScoreConstantsTest, UndiscoveredBoundDominatesTail) {
  for (size_t n = 1; n < 8; ++n) {
    EXPECT_GT(UndiscoveredBound(1.5, n), TailBound(1.5, n));
  }
}

// ---- Candidate scoring -------------------------------------------------------

Candidate MakeCandidate(
    std::vector<std::vector<std::pair<uint32_t, float>>> sources) {
  Candidate c;
  c.node = 0;
  c.sources = std::move(sources);
  for (auto& per_kw : c.sources) {
    double w = 0;
    for (auto& [s, v] : per_kw) w += v;
    c.static_weight.push_back(w);
  }
  c.cap = 1.0;
  for (double w : c.static_weight) c.cap *= w;
  return c;
}

TEST(CandidateScoreTest, ProductOfKeywordSums) {
  Candidate c = MakeCandidate({{{0, 1.0f}, {1, 0.5f}}, {{2, 2.0f}}});
  std::vector<double> prox = {0.5, 1.0, 0.25};
  // (1*0.5 + 0.5*1.0) * (2*0.25) = 1.0 * 0.5
  EXPECT_NEAR(CandidateScore(c, prox), 0.5, 1e-12);
}

TEST(CandidateScoreTest, ZeroProxKeywordZeroesScore) {
  Candidate c = MakeCandidate({{{0, 1.0f}}, {{1, 1.0f}}});
  std::vector<double> prox = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(CandidateScore(c, prox), 0.0);
}

TEST(CandidateScoreTest, BoundsSandwichScore) {
  Candidate c = MakeCandidate({{{0, 1.0f}, {1, 0.5f}}, {{1, 2.0f}}});
  std::vector<double> partial = {0.2, 0.1};
  std::vector<double> final_prox = {0.25, 0.13};
  double tail = 0.05;  // ≥ final - partial per source
  double lower = CandidateLowerBound(c, partial);
  double upper = CandidateUpperBound(c, partial, tail);
  double truth = CandidateScore(c, final_prox);
  EXPECT_LE(lower, truth + 1e-12);
  EXPECT_GE(upper, truth - 1e-12);
}

TEST(CandidateScoreTest, UpperBoundClampsProxAtOne) {
  Candidate c = MakeCandidate({{{0, 1.0f}}});
  std::vector<double> partial = {0.9};
  EXPECT_NEAR(CandidateUpperBound(c, partial, 0.5), 1.0, 1e-12);
}

// ---- Feasibility properties on a real instance -----------------------------
//
// These are the paper's §3.3 conditions, checked numerically on the
// Figure 3 fixture via the naive path enumerator.

class FeasibilityTest : public ::testing::Test {
 protected:
  void SetUp() override { fig_ = s3::testing::BuildFigure3(); }
  s3::testing::Figure3 fig_;
};

TEST_F(FeasibilityTest, ProxIsMonotoneInPathLength) {
  // prox≤n grows with n (adding paths only increases proximity).
  const double gamma = 1.5;
  std::vector<double> prev(fig_.instance->layout().total(), 0.0);
  for (size_t len = 1; len <= 6; ++len) {
    auto prox = NaiveProx(*fig_.instance, fig_.u0, len, gamma);
    for (size_t row = 0; row < prox.size(); ++row) {
      EXPECT_GE(prox[row], prev[row] - 1e-12) << "row " << row;
    }
    prev = std::move(prox);
  }
}

TEST_F(FeasibilityTest, ProxBoundedByOne) {
  auto prox = NaiveProx(*fig_.instance, fig_.u0, 8, 1.25);
  for (double p : prox) {
    EXPECT_LE(p, 1.0 + 1e-9);
    EXPECT_GE(p, 0.0);
  }
}

TEST_F(FeasibilityTest, LongPathAttenuation) {
  // prox≤(n+1) − prox≤n ≤ B>n for every node: the tail bound really
  // bounds what longer paths can add.
  const double gamma = 1.5;
  for (size_t n = 1; n <= 5; ++n) {
    auto shorter = NaiveProx(*fig_.instance, fig_.u0, n, gamma);
    auto longer = NaiveProx(*fig_.instance, fig_.u0, n + 1, gamma);
    const double bound = TailBound(gamma, n);
    for (size_t row = 0; row < shorter.size(); ++row) {
      EXPECT_LE(longer[row] - shorter[row], bound + 1e-12)
          << "n=" << n << " row=" << row;
    }
  }
}

TEST_F(FeasibilityTest, SeekerSelfProximityIncludesEmptyPath) {
  const double gamma = 2.0;
  auto prox = NaiveProx(*fig_.instance, fig_.u0, 0, gamma);
  EXPECT_NEAR(prox[fig_.instance->RowOfUser(fig_.u0)], CGamma(gamma),
              1e-12);
}

TEST_F(FeasibilityTest, MatrixMatchesNaiveEnumeration) {
  // The transition-matrix power iteration and the explicit DFS must
  // compute the same prox≤n — two independent implementations of §2.5.
  const double gamma = 1.5;
  const size_t max_len = 6;
  auto naive = NaiveProx(*fig_.instance, fig_.u0, max_len, gamma);

  const auto& m = fig_.instance->matrix();
  social::Frontier f, g;
  f.Init(fig_.instance->layout().total());
  g.Init(fig_.instance->layout().total());
  std::vector<double> prox(fig_.instance->layout().total(), 0.0);
  uint32_t seeker_row = fig_.instance->RowOfUser(fig_.u0);
  prox[seeker_row] = CGamma(gamma);
  f.Set(seeker_row, 1.0);
  for (size_t n = 1; n <= max_len; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    for (uint32_t row : f.nonzero) {
      prox[row] += CGamma(gamma) * f.values[row] / std::pow(gamma, double(n));
    }
  }
  for (size_t row = 0; row < prox.size(); ++row) {
    EXPECT_NEAR(prox[row], naive[row], 1e-9) << "row " << row;
  }
}

TEST_F(FeasibilityTest, BestPathProxNeverExceedsAllPathsProx) {
  const double gamma = 1.5;
  auto all = NaiveProx(*fig_.instance, fig_.u0, 7, gamma);
  auto best = NaiveBestPathProx(*fig_.instance, fig_.u0, 7, gamma);
  for (size_t row = 0; row < all.size(); ++row) {
    EXPECT_LE(best[row], all[row] + 1e-9) << "row " << row;
  }
}

}  // namespace
}  // namespace s3::core
