// Sharding subsystem tests: partitioner determinism (golden pinned
// hash assignments, endian/platform-stable), shard-vs-unsharded
// bit-for-bit equality across every shard count, scatter-gather merge
// pruning, delta routing with independent per-shard generations, and
// the storage round-trip (split -> Open -> query -> update -> reopen).
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/naive_reference.h"
#include "core/s3_instance.h"
#include "core/s3k.h"
#include "gtest/gtest.h"
#include "shard/partitioner.h"
#include "shard/shard_meta.h"
#include "shard/shard_router.h"

namespace s3::shard {
namespace {

using core::Query;
using core::ResultEntry;
using core::S3Instance;

// ---- fixtures -------------------------------------------------------------

struct MultiGroup {
  std::unique_ptr<S3Instance> instance;
  std::vector<KeywordId> keywords;
  uint32_t n_groups = 0;
  uint32_t users_per_group = 0;
};

// `n_groups` disjoint social groups sharing one keyword pool (so
// candidate plans span groups and the reach/threshold pruning is
// actually exercised), each with documents, comments, tags and social
// edges. Group g owns users [g*P, (g+1)*P).
MultiGroup BuildMultiGroup(uint32_t n_groups, uint32_t users_per_group,
                           uint64_t seed) {
  MultiGroup out;
  out.n_groups = n_groups;
  out.users_per_group = users_per_group;
  out.instance = std::make_unique<S3Instance>();
  S3Instance& inst = *out.instance;
  Rng rng(seed);

  for (uint32_t u = 0; u < n_groups * users_per_group; ++u) {
    inst.AddUser("u" + std::to_string(u));
  }
  for (uint32_t k = 0; k < 5; ++k) {
    out.keywords.push_back(inst.InternKeyword("kw" + std::to_string(k)));
  }
  inst.DeclareSubClass("kw1", "kw0");  // extension anchor

  for (uint32_t g = 0; g < n_groups; ++g) {
    const social::UserId base = g * users_per_group;
    std::vector<doc::DocId> docs;
    const uint32_t n_docs = 2 + g % 3;
    for (uint32_t i = 0; i < n_docs; ++i) {
      doc::Document d("doc");
      uint32_t child = d.AddChild(0, "sec");
      d.AddKeywords(0, {out.keywords[rng.Uniform(out.keywords.size())]});
      d.AddKeywords(child,
                    {out.keywords[rng.Uniform(out.keywords.size())]});
      const social::UserId poster =
          base + static_cast<social::UserId>(rng.Uniform(users_per_group));
      docs.push_back(inst.AddDocument(std::move(d),
                                      "g" + std::to_string(g) + "d" +
                                          std::to_string(i),
                                      poster)
                         .value());
      if (i > 0 && rng.Chance(0.6)) {
        (void)inst.AddComment(docs[i],
                              inst.docs().RootNode(docs[rng.Uniform(i)]));
      }
    }
    for (uint32_t t = 0; t < 2; ++t) {
      const social::UserId author =
          base + static_cast<social::UserId>(rng.Uniform(users_per_group));
      const doc::DocId d = docs[rng.Uniform(docs.size())];
      (void)inst.AddTagOnFragment(
          author, inst.docs().RootNode(d),
          rng.Chance(0.7) ? out.keywords[rng.Uniform(out.keywords.size())]
                          : kInvalidKeyword);
    }
    for (uint32_t a = 0; a < users_per_group; ++a) {
      for (uint32_t b = 0; b < users_per_group; ++b) {
        if (a != b && rng.Chance(0.6)) {
          (void)inst.AddSocialEdge(base + a, base + b,
                                   0.2 + 0.8 * rng.NextDouble());
        }
      }
    }
  }
  EXPECT_TRUE(inst.Finalize().ok());
  return out;
}

// Exact score of one returned node under converged proximities (the
// s3k_test oracle idiom: returned intervals bracket this value).
double ExactScore(const S3Instance& inst, const Query& q,
                  const core::S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  core::QueryExtension ext(q.keywords.size());
  for (size_t i = 0; i < q.keywords.size(); ++i) {
    if (opts.use_semantics) {
      for (KeywordId k : inst.ExtendKeyword(q.keywords[i])) {
        ext[i].insert(k);
      }
    } else {
      ext[i].insert(q.keywords[i]);
    }
  }
  core::ConnectionBuilder b(inst, opts.score.eta);
  auto cc = b.Build(inst.components().Of(social::EntityId::Fragment(node)),
                    ext);
  for (const core::Candidate& c : cc.candidates) {
    if (c.node == node) return core::CandidateScore(c, prox);
  }
  return 0.0;
}

// Converged proximity by explicit matrix iteration (oracle side).
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 80) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  const uint32_t row = inst.RowOfUser(seeker);
  prox[row] = core::CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += core::CGamma(gamma) * f.values[r] /
                 std::pow(gamma, static_cast<double>(n));
    }
  }
  return prox;
}

server::QueryServiceOptions ServiceOptions(bool cache_on) {
  server::QueryServiceOptions opts;
  opts.workers = 2;
  opts.enable_cache = cache_on;
  opts.search.k = 4;
  return opts;
}

std::vector<ResultEntry> Ask(server::QueryService& service, const Query& q) {
  auto fut = service.SubmitBlocking(q);
  EXPECT_TRUE(fut.ok()) << fut.status().ToString();
  auto resp = fut->get();
  EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  return resp->entries;
}

void ExpectSameEntries(const std::vector<ResultEntry>& sharded,
                       const std::vector<ResultEntry>& unsharded,
                       const std::string& what) {
  ASSERT_EQ(sharded.size(), unsharded.size()) << what;
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].node, unsharded[i].node) << what << " rank " << i;
    // Bit-for-bit: the shard ran the same float operations in the same
    // order as the unsharded engine.
    EXPECT_EQ(sharded[i].lower, unsharded[i].lower) << what << " rank " << i;
    EXPECT_EQ(sharded[i].upper, unsharded[i].upper) << what << " rank " << i;
  }
}

// ---- partitioner ----------------------------------------------------------

TEST(PartitionerTest, StableHashGoldenValues) {
  // Pinned FNV-1a 64 over little-endian id bytes: these values must
  // never change on any platform or endianness — shard assignment is
  // part of the on-disk contract.
  EXPECT_EQ(StableUserHash(0), 5558979605539197941ull);
  EXPECT_EQ(StableUserHash(1), 12478008331234465636ull);
  EXPECT_EQ(StableUserHash(7), 7869321708915449410ull);
  EXPECT_EQ(StableUserHash(42), 10203658981158674303ull);
  EXPECT_EQ(StableUserHash(123456789), 8379007418144316681ull);

  EXPECT_EQ(ShardOfUser(0, 2), 1u);
  EXPECT_EQ(ShardOfUser(1, 2), 0u);
  EXPECT_EQ(ShardOfUser(42, 4), 3u);
  EXPECT_EQ(ShardOfUser(1000, 5), 4u);
  EXPECT_EQ(ShardOfUser(123456789, 64), 9u);
}

TEST(PartitionerTest, RejectsBadInput) {
  auto mg = BuildMultiGroup(2, 2, 7);
  PartitionOptions opts;
  opts.shard_count = 0;
  EXPECT_FALSE(Partition(*mg.instance, opts).ok());
  opts.shard_count = 65;
  EXPECT_FALSE(Partition(*mg.instance, opts).ok());

  S3Instance unfinalized;
  opts.shard_count = 2;
  EXPECT_FALSE(Partition(unfinalized, opts).ok());
}

TEST(PartitionerTest, DeterministicAndGroupComplete) {
  auto mg = BuildMultiGroup(4, 3, 11);
  PartitionOptions opts;
  opts.shard_count = 3;
  auto p1 = Partition(*mg.instance, opts);
  auto p2 = Partition(*mg.instance, opts);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());

  // Determinism: identical maps, counts and boundary stats run-to-run.
  ASSERT_EQ(p1->shards.size(), p2->shards.size());
  EXPECT_EQ(p1->boundary_social_edges, p2->boundary_social_edges);
  for (size_t s = 0; s < p1->shards.size(); ++s) {
    EXPECT_EQ(p1->shards[s].map.doc_global(), p2->shards[s].map.doc_global());
    EXPECT_EQ(p1->shards[s].map.tag_global(), p2->shards[s].map.tag_global());
    EXPECT_EQ(p1->shards[s].boundary_social_edges,
              p2->shards[s].boundary_social_edges);
    EXPECT_EQ(p1->shards[s].instance->docs().DocumentCount(),
              p2->shards[s].instance->docs().DocumentCount());
  }

  // Group completeness: every document lives on every home shard of
  // its group's members, and ids replicate exactly.
  const S3Instance& full = *mg.instance;
  for (doc::DocId d = 0; d < full.docs().DocumentCount(); ++d) {
    const uint32_t root = p1->user_root[full.PosterOfDoc(d)];
    for (uint32_t s = 0; s < opts.shard_count; ++s) {
      bool home_shard = false;
      for (social::UserId u = 0; u < full.UserCount(); ++u) {
        if (p1->user_root[u] == root && ShardOfUser(u, opts.shard_count) == s) {
          home_shard = true;
          break;
        }
      }
      const bool materialized = p1->shards[s].map.LocalDoc(d).ok();
      EXPECT_EQ(materialized, home_shard)
          << "doc " << d << " shard " << s;
    }
  }

  // Users and keywords are shard-invariant.
  for (const ShardPart& part : p1->shards) {
    EXPECT_EQ(part.instance->UserCount(), full.UserCount());
    EXPECT_EQ(part.instance->vocabulary().size(), full.vocabulary().size());
  }
}

TEST(ShardMetaTest, RoundTripAndErrors) {
  ShardMetaData meta;
  meta.shard_index = 1;
  meta.shard_count = 4;
  meta.boundary_social_edges = 17;
  meta.owned_users = 9;
  meta.map.AddDoc(3, 10, 4);
  meta.map.AddDoc(7, 30, 2);
  meta.map.AddTag(5);

  auto parsed = ParseShardMeta(EncodeShardMeta(meta));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->shard_index, 1u);
  EXPECT_EQ(parsed->shard_count, 4u);
  EXPECT_EQ(parsed->boundary_social_edges, 17u);
  EXPECT_EQ(parsed->owned_users, 9u);
  ASSERT_EQ(parsed->map.doc_count(), 2u);
  EXPECT_EQ(parsed->map.GlobalDoc(1), 7u);
  EXPECT_EQ(parsed->map.GlobalNodeBase(1), 30u);
  EXPECT_EQ(parsed->map.LocalNode(31).value(), 5u);  // 4 nodes of doc 3 first
  EXPECT_EQ(parsed->map.GlobalNode(5).value(), 31u);
  EXPECT_FALSE(parsed->map.LocalNode(14).ok());  // gap between docs
  EXPECT_FALSE(parsed->map.GlobalNode(6).ok());  // beyond the mapped range

  EXPECT_FALSE(ParseShardMeta("garbage").ok());
  EXPECT_FALSE(ParseShardMeta("S3SHARD v1\nshard 4 4\n").ok());
  // Overflow is a parse error, never a silent wrap.
  EXPECT_FALSE(
      ParseShardMeta(
          "S3SHARD v1\nshard 0 2\nboundary 18446744073709551616\n")
          .ok());
  EXPECT_FALSE(
      ParseShardMeta("S3SHARD v1\nshard 0 2\nD 5 0 2\nD 3 4 1\n").ok());

  PartitionMetaData pmeta;
  pmeta.shard_count = 8;
  pmeta.boundary_social_edges = 3;
  auto pparsed = ParsePartitionMeta(EncodePartitionMeta(pmeta));
  ASSERT_TRUE(pparsed.ok());
  EXPECT_EQ(pparsed->shard_count, 8u);
  EXPECT_EQ(pparsed->boundary_social_edges, 3u);
  EXPECT_FALSE(ParsePartitionMeta("S3PART v1\nshards 0\n").ok());
}

// ---- sharded == unsharded == oracle ---------------------------------------

class ShardEquivalenceTest : public ::testing::TestWithParam<bool> {};

TEST_P(ShardEquivalenceTest, EveryShardCountMatchesUnshardedAndOracle) {
  const bool cache_on = GetParam();
  auto mg = BuildMultiGroup(4, 3, 23);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> full_shared = std::move(mg.instance);

  core::S3kOptions search;
  search.k = 4;
  server::QueryService unsharded(full_shared, ServiceOptions(cache_on));

  std::vector<Query> queries;
  for (social::UserId u = 0; u < full.UserCount(); ++u) {
    queries.push_back(Query{u, {mg.keywords[0]}});
    queries.push_back(Query{u, {mg.keywords[1], mg.keywords[2]}});
  }

  for (uint32_t n_shards : {1u, 2u, 3u, 4u, 5u}) {
    PartitionOptions popts;
    popts.shard_count = n_shards;
    auto partition = Partition(full, popts);
    ASSERT_TRUE(partition.ok()) << partition.status().ToString();

    ShardRouterOptions ropts;
    ropts.service = ServiceOptions(cache_on);
    auto router = ShardRouter::Serve(std::move(*partition), ropts);
    ASSERT_TRUE(router.ok()) << router.status().ToString();

    for (const Query& q : queries) {
      auto sharded = (*router)->Query(q);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      auto reference = Ask(unsharded, q);
      ExpectSameEntries(sharded->entries, reference,
                        "shards=" + std::to_string(n_shards) + " seeker=" +
                            std::to_string(q.seeker));

      // Repeat to hit the plan cache (the cached path must stay
      // bit-for-bit too).
      auto again = (*router)->Query(q);
      ASSERT_TRUE(again.ok());
      ExpectSameEntries(again->entries, reference, "cached repeat");
    }

    // Oracle: exact scores from converged proximities.
    for (social::UserId u = 0; u < full.UserCount(); u += 3) {
      Query q{u, {mg.keywords[0]}};
      auto sharded = (*router)->Query(q);
      ASSERT_TRUE(sharded.ok());
      auto prox = ConvergedProx(full, u, search.score.gamma);
      auto oracle = core::NaiveSearchWithProx(full, q, search, prox);
      ASSERT_EQ(sharded->entries.size(), oracle.size()) << "seeker " << u;
      // Answers are unique up to ties: compare the descending exact
      // score multisets, and check each reported interval brackets
      // the exact score (the s3k_test oracle idiom, over the router).
      std::vector<double> got, want;
      for (size_t i = 0; i < oracle.size(); ++i) {
        const double exact =
            ExactScore(full, q, search, sharded->entries[i].node, prox);
        EXPECT_LE(sharded->entries[i].lower, exact + 1e-7);
        EXPECT_GE(sharded->entries[i].upper, exact - 1e-7);
        got.push_back(exact);
        want.push_back(oracle[i].lower);
      }
      std::sort(got.rbegin(), got.rend());
      std::sort(want.rbegin(), want.rend());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], 1e-7) << "seeker " << u << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, ShardEquivalenceTest,
                         ::testing::Bool());

// ---- scatter-gather -------------------------------------------------------

TEST(ShardRouterTest, ScatterGatherMatchesRoutedAndPrunesForeignShards) {
  auto mg = BuildMultiGroup(5, 2, 31);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> full_shared = std::move(mg.instance);

  PartitionOptions popts;
  popts.shard_count = 4;
  auto partition = Partition(full, popts);
  ASSERT_TRUE(partition.ok());
  const std::vector<uint32_t> user_root = partition->user_root;

  ShardRouterOptions ropts;
  ropts.service = ServiceOptions(true);
  auto router = ShardRouter::Serve(std::move(*partition), ropts);
  ASSERT_TRUE(router.ok());

  for (social::UserId u = 0; u < full.UserCount(); ++u) {
    Query q{u, {mg.keywords[0], mg.keywords[3]}};
    auto routed = (*router)->Query(q);
    auto global = (*router)->QueryGlobal(q);
    ASSERT_TRUE(routed.ok());
    ASSERT_TRUE(global.ok());
    ExpectSameEntries(global->entries, routed->entries,
                      "seeker " + std::to_string(u));

    // Shards that materialize the seeker's group were queried; every
    // other shard was pruned statically (its best bound is exactly 0:
    // no social path from the seeker exists there).
    uint64_t mask = 0;
    for (social::UserId v = 0; v < full.UserCount(); ++v) {
      if (user_root[v] == user_root[u]) {
        mask |= uint64_t{1} << ShardOfUser(v, popts.shard_count);
      }
    }
    for (const ShardReport& report : global->shards) {
      const bool in_mask = ((mask >> report.shard) & 1) != 0;
      EXPECT_EQ(report.queried || report.pruned_bound, in_mask)
          << "seeker " << u << " shard " << report.shard;
      EXPECT_EQ(report.pruned_unreachable, !in_mask);
    }
    EXPECT_EQ(global->shards_queried + global->shards_pruned,
              (*router)->shard_count());
  }
}

// ---- delta routing --------------------------------------------------------

TEST(ShardRouterTest, DeltaRoutingAdvancesTouchedShardsOnly) {
  auto mg = BuildMultiGroup(4, 3, 41);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> full_shared = std::move(mg.instance);

  PartitionOptions popts;
  popts.shard_count = 3;
  auto partition = Partition(full, popts);
  ASSERT_TRUE(partition.ok());
  const std::vector<uint32_t> user_root = partition->user_root;

  ShardRouterOptions ropts;
  ropts.service = ServiceOptions(true);
  auto router = ShardRouter::Serve(std::move(*partition), ropts);
  ASSERT_TRUE(router.ok());

  // Unsharded reference evolves by the same ops.
  server::QueryService unsharded(full_shared, ServiceOptions(true));

  // Touch exactly one group: a new document + tag + social edge inside
  // group 0 (users 0..2).
  const social::UserId poster = 1;
  auto update = (*router)->BeginUpdate();
  const KeywordId fresh = update.InternKeyword("fresh-keyword");
  doc::Document d("doc");
  d.AddKeywords(0, {mg.keywords[0], fresh});
  auto gdoc = update.AddDocument(d, "delta-doc-0", poster);
  ASSERT_TRUE(gdoc.ok()) << gdoc.status().ToString();
  auto gtag = update.AddTagOnFragment(
      2, static_cast<doc::NodeId>(full.docs().NodeCount()), mg.keywords[1]);
  ASSERT_TRUE(gtag.ok());
  ASSERT_TRUE(update.AddSocialEdge(0, 2, 0.9).ok());

  const std::vector<uint64_t> before = (*router)->Generations();
  ASSERT_TRUE((*router)->ApplyUpdate(update).ok());
  const std::vector<uint64_t> after = (*router)->Generations();

  uint64_t mask = 0;
  for (social::UserId v = 0; v < full.UserCount(); ++v) {
    if (user_root[v] == user_root[poster]) {
      mask |= uint64_t{1} << ShardOfUser(v, popts.shard_count);
    }
  }
  for (uint32_t s = 0; s < (*router)->shard_count(); ++s) {
    if ((mask >> s) & 1) {
      EXPECT_EQ(after[s], before[s] + 1) << "shard " << s;
    } else {
      // Untouched groups advance only when new spellings must be
      // replicated for keyword-id alignment — which this update has.
      EXPECT_EQ(after[s], before[s] + 1) << "shard " << s;
    }
  }

  // Mirror the ops onto the unsharded instance and compare.
  {
    core::InstanceDelta delta(full_shared);
    EXPECT_EQ(delta.InternKeyword("fresh-keyword"), fresh);
    ASSERT_TRUE(delta.AddDocument(d, "delta-doc-0", poster).ok());
    ASSERT_TRUE(delta
                    .AddTagOnFragment(
                        2,
                        static_cast<doc::NodeId>(full.docs().NodeCount()),
                        mg.keywords[1])
                    .ok());
    ASSERT_TRUE(delta.AddSocialEdge(0, 2, 0.9).ok());
    auto next = full_shared->ApplyDelta(delta);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(unsharded.SwapSnapshot(*next).ok());
  }

  for (social::UserId u = 0; u < full.UserCount(); ++u) {
    for (const std::vector<KeywordId>& kws :
         {std::vector<KeywordId>{mg.keywords[0]},
          std::vector<KeywordId>{fresh},
          std::vector<KeywordId>{mg.keywords[1], mg.keywords[0]}}) {
      Query q{u, kws};
      auto sharded = (*router)->Query(q);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ExpectSameEntries(sharded->entries, Ask(unsharded, q),
                        "post-delta seeker " + std::to_string(u));
    }
  }

  // A second update touching a different group advances only that
  // group's shards (no new spellings this time).
  const social::UserId poster2 = 3 * 3 - 1;  // last user of group 2
  auto update2 = (*router)->BeginUpdate();
  doc::Document d2("doc");
  d2.AddKeywords(0, {mg.keywords[2]});
  ASSERT_TRUE(update2.AddDocument(d2, "delta-doc-1", poster2).ok());
  const std::vector<uint64_t> before2 = (*router)->Generations();
  ASSERT_TRUE((*router)->ApplyUpdate(update2).ok());
  const std::vector<uint64_t> after2 = (*router)->Generations();
  uint64_t mask2 = 0;
  for (social::UserId v = 0; v < full.UserCount(); ++v) {
    if (user_root[v] == user_root[poster2]) {
      mask2 |= uint64_t{1} << ShardOfUser(v, popts.shard_count);
    }
  }
  bool some_untouched = false;
  for (uint32_t s = 0; s < (*router)->shard_count(); ++s) {
    if ((mask2 >> s) & 1) {
      EXPECT_EQ(after2[s], before2[s] + 1) << "shard " << s;
    } else {
      EXPECT_EQ(after2[s], before2[s]) << "shard " << s;
      some_untouched = true;
    }
  }
  EXPECT_TRUE(some_untouched || (*router)->shard_count() == 1)
      << "fixture should leave at least one shard untouched";
}

TEST(ShardRouterTest, CrossShardGroupMergeIsRefused) {
  // Single-user groups: each group's shard set is exactly its user's
  // home shard, so the fixture is guaranteed to contain both
  // equal-mask and different-mask group pairs under 2 shards.
  auto mg = BuildMultiGroup(6, 1, 53);
  const S3Instance& full = *mg.instance;

  PartitionOptions popts;
  popts.shard_count = 2;
  auto partition = Partition(full, popts);
  ASSERT_TRUE(partition.ok());
  const std::vector<uint32_t> user_root = partition->user_root;

  // Group masks under 2 shards.
  auto mask_of = [&](social::UserId u) {
    uint64_t mask = 0;
    for (social::UserId v = 0; v < full.UserCount(); ++v) {
      if (user_root[v] == user_root[u]) {
        mask |= uint64_t{1} << ShardOfUser(v, popts.shard_count);
      }
    }
    return mask;
  };

  social::UserId a = UINT32_MAX, b = UINT32_MAX;  // different masks
  social::UserId c = UINT32_MAX, e = UINT32_MAX;  // equal masks, diff groups
  for (social::UserId u = 0; u < full.UserCount(); ++u) {
    for (social::UserId v = 0; v < full.UserCount(); ++v) {
      if (user_root[u] == user_root[v]) continue;
      if (mask_of(u) != mask_of(v)) {
        if (a == UINT32_MAX) { a = u; b = v; }
      } else if (c == UINT32_MAX) {
        c = u;
        e = v;
      }
    }
  }
  ASSERT_NE(a, UINT32_MAX) << "fixture must contain cross-shard groups";

  ShardRouterOptions ropts;
  ropts.service = ServiceOptions(true);
  auto router = ShardRouter::Serve(std::move(*partition), ropts);
  ASSERT_TRUE(router.ok());

  const std::vector<uint64_t> before = (*router)->Generations();
  auto update = (*router)->BeginUpdate();
  ASSERT_TRUE(update.AddSocialEdge(a, b, 0.5).ok());
  Status applied = (*router)->ApplyUpdate(update);
  EXPECT_EQ(applied.code(), StatusCode::kFailedPrecondition)
      << applied.ToString();
  EXPECT_EQ((*router)->Generations(), before) << "refusal must be clean";

  // Same-mask merges are fine (both groups already live on the same
  // shard set, so no population needs to move).
  if (c != UINT32_MAX) {
    auto ok_update = (*router)->BeginUpdate();
    ASSERT_TRUE(ok_update.AddSocialEdge(c, e, 0.5).ok());
    EXPECT_TRUE((*router)->ApplyUpdate(ok_update).ok());
  }
}

// ---- storage round-trip ---------------------------------------------------

TEST(ShardRouterStorageTest, SplitOpenQueryUpdateReopen) {
  const std::string root = std::string(::testing::TempDir()) +
                           "s3-shard-storage-" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);

  auto mg = BuildMultiGroup(3, 3, 67);
  const S3Instance& full = *mg.instance;
  std::shared_ptr<const S3Instance> full_shared = std::move(mg.instance);
  server::QueryService unsharded(full_shared, ServiceOptions(true));

  PartitionOptions popts;
  popts.shard_count = 2;
  auto partition = Partition(full, popts);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(WritePartition(*partition, root).ok());

  // A second split into the same root must refuse.
  EXPECT_FALSE(WritePartition(*partition, root).ok());

  ShardRouterOptions ropts;
  ropts.service = ServiceOptions(true);
  {
    auto router = ShardRouter::Open(root, ropts);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    for (social::UserId u = 0; u < full.UserCount(); ++u) {
      Query q{u, {mg.keywords[0]}};
      auto sharded = (*router)->Query(q);
      ASSERT_TRUE(sharded.ok());
      ExpectSameEntries(sharded->entries, Ask(unsharded, q),
                        "storage seeker " + std::to_string(u));
    }

    // Durable update through the WAL.
    auto update = (*router)->BeginUpdate();
    doc::Document d("doc");
    d.AddKeywords(0, {mg.keywords[0]});
    ASSERT_TRUE(update.AddDocument(d, "stored-delta-doc", 0).ok());
    ASSERT_TRUE((*router)->ApplyUpdate(update).ok());

    core::InstanceDelta delta(full_shared);
    ASSERT_TRUE(delta.AddDocument(d, "stored-delta-doc", 0).ok());
    auto next = full_shared->ApplyDelta(delta);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(unsharded.SwapSnapshot(*next).ok());

    Query q{0, {mg.keywords[0]}};
    auto sharded = (*router)->Query(q);
    ASSERT_TRUE(sharded.ok());
    ExpectSameEntries(sharded->entries, Ask(unsharded, q), "post-update");
  }

  // Reopen: WAL replay + shard.meta must reproduce the updated state.
  {
    auto router = ShardRouter::Open(root, ropts);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    EXPECT_EQ((*router)->doc_count(), full.docs().DocumentCount() + 1);
    for (social::UserId u = 0; u < full.UserCount(); ++u) {
      Query q{u, {mg.keywords[0]}};
      auto sharded = (*router)->Query(q);
      ASSERT_TRUE(sharded.ok());
      ExpectSameEntries(sharded->entries, Ask(unsharded, q),
                        "reopened seeker " + std::to_string(u));
    }
  }

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace s3::shard
