#include <gtest/gtest.h>

#include "social/components.h"
#include "social/edge_store.h"
#include "social/entity.h"
#include "social/transition_matrix.h"
#include "test_fixtures.h"

namespace s3::social {
namespace {

// ---- EntityId / EntityLayout ---------------------------------------------

TEST(EntityTest, PackingRoundTrip) {
  EntityId u = EntityId::User(42);
  EXPECT_EQ(u.kind(), EntityKind::kUser);
  EXPECT_EQ(u.index(), 42u);
  EntityId f = EntityId::Fragment(7);
  EXPECT_EQ(f.kind(), EntityKind::kFragment);
  EntityId t = EntityId::Tag(3);
  EXPECT_EQ(t.kind(), EntityKind::kTag);
  EXPECT_NE(u, f);
  EXPECT_EQ(u, EntityId::User(42));
}

TEST(EntityTest, InvalidByDefault) {
  EntityId e;
  EXPECT_FALSE(e.valid());
}

TEST(EntityLayoutTest, RowsArePartitioned) {
  EntityLayout layout(10, 20, 5);
  EXPECT_EQ(layout.total(), 35u);
  EXPECT_EQ(layout.Row(EntityId::User(3)), 3u);
  EXPECT_EQ(layout.Row(EntityId::Fragment(0)), 10u);
  EXPECT_EQ(layout.Row(EntityId::Tag(4)), 34u);
}

TEST(EntityLayoutTest, RowRoundTrip) {
  EntityLayout layout(3, 4, 2);
  for (uint32_t row = 0; row < layout.total(); ++row) {
    EXPECT_EQ(layout.Row(layout.Entity(row)), row);
  }
}

// ---- EdgeStore -------------------------------------------------------------

TEST(EdgeStoreTest, AddAndOutEdges) {
  EdgeStore es;
  es.Add(EntityId::User(0), EntityId::User(1), EdgeLabel::kSocial, 0.5);
  ASSERT_EQ(es.OutEdges(EntityId::User(0)).size(), 1u);
  EXPECT_TRUE(es.OutEdges(EntityId::User(1)).empty());
  EXPECT_DOUBLE_EQ(es.OutWeight(EntityId::User(0)), 0.5);
}

TEST(EdgeStoreTest, AddWithInverseCreatesTwin) {
  EdgeStore es;
  es.AddWithInverse(EntityId::Tag(0), EntityId::User(1),
                    EdgeLabel::kHasAuthor);
  EXPECT_EQ(es.size(), 2u);
  const NetEdge& inv = es.edges()[1];
  EXPECT_EQ(inv.label, EdgeLabel::kHasAuthorInv);
  EXPECT_EQ(inv.source, EntityId::User(1));
  EXPECT_EQ(inv.target, EntityId::Tag(0));
}

TEST(EdgeStoreTest, InverseLabelIsInvolution) {
  for (EdgeLabel l : {EdgeLabel::kPostedBy, EdgeLabel::kCommentsOn,
                      EdgeLabel::kHasSubject, EdgeLabel::kHasAuthor}) {
    EXPECT_EQ(InverseLabel(InverseLabel(l)), l);
    EXPECT_NE(InverseLabel(l), l);
  }
  EXPECT_EQ(InverseLabel(EdgeLabel::kSocial), EdgeLabel::kSocial);
}

TEST(EdgeStoreTest, CountLabel) {
  EdgeStore es;
  es.Add(EntityId::User(0), EntityId::User(1), EdgeLabel::kSocial, 1.0);
  es.Add(EntityId::User(1), EntityId::User(0), EdgeLabel::kSocial, 1.0);
  es.AddWithInverse(EntityId::Fragment(0), EntityId::User(0),
                    EdgeLabel::kPostedBy);
  EXPECT_EQ(es.CountLabel(EdgeLabel::kSocial), 2u);
  EXPECT_EQ(es.CountLabel(EdgeLabel::kPostedBy), 1u);
  EXPECT_EQ(es.CountLabel(EdgeLabel::kPostedByInv), 1u);
}

// ---- TransitionMatrix on the Figure 3 fixture -----------------------------

class Figure3MatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { fig_ = s3::testing::BuildFigure3(); }
  s3::testing::Figure3 fig_;

  uint32_t Row(EntityId e) { return fig_.instance->layout().Row(e); }
};

TEST_F(Figure3MatrixTest, Example23FirstEdgeNormalization) {
  // Edges leaving u0: -> URI0 (1.0), -> u3 (0.3). Normalized weight of
  // the posted edge: 1 / 1.3 ≈ 0.77 (paper Example 2.3).
  const auto& m = fig_.instance->matrix();
  uint32_t u0_row = Row(EntityId::User(fig_.u0));
  EXPECT_NEAR(m.Denominator(u0_row), 1.3, 1e-12);
  double w_to_uri0 = 0.0;
  for (const auto& [col, v] : m.Row(u0_row)) {
    if (col == Row(EntityId::Fragment(fig_.uri0))) w_to_uri0 = v;
  }
  EXPECT_NEAR(w_to_uri0, 1.0 / 1.3, 1e-12);
}

TEST_F(Figure3MatrixTest, Example23SecondEdgeNormalization) {
  // A path entering URI0 may exit via any fragment of URI0; the four
  // outgoing weight-1 edges give each a normalized weight of 1/4.
  const auto& m = fig_.instance->matrix();
  uint32_t uri0_row = Row(EntityId::Fragment(fig_.uri0));
  EXPECT_NEAR(m.Denominator(uri0_row), 4.0, 1e-12);
  double w_to_a0 = 0.0;
  for (const auto& [col, v] : m.Row(uri0_row)) {
    if (col == Row(EntityId::Tag(fig_.a0))) w_to_a0 = v;
  }
  EXPECT_NEAR(w_to_a0, 0.25, 1e-12);
}

TEST_F(Figure3MatrixTest, RowsAreSubStochastic) {
  const auto& m = fig_.instance->matrix();
  for (uint32_t row = 0; row < m.rows(); ++row) {
    double sum = m.RowSum(row);
    EXPECT_LE(sum, 1.0 + 1e-9) << "row " << row;
    EXPECT_GE(sum, 0.0);
  }
}

TEST_F(Figure3MatrixTest, NonEmptyRowsSumToOne) {
  const auto& m = fig_.instance->matrix();
  for (uint32_t row = 0; row < m.rows(); ++row) {
    if (!m.Row(row).empty()) {
      EXPECT_NEAR(m.RowSum(row), 1.0, 1e-9) << "row " << row;
    }
  }
}

TEST_F(Figure3MatrixTest, FrontierMassNeverExceedsOne) {
  const auto& m = fig_.instance->matrix();
  Frontier f, g;
  f.Init(m.rows());
  g.Init(m.rows());
  f.Set(Row(EntityId::User(fig_.u0)), 1.0);
  for (int step = 0; step < 12; ++step) {
    m.Propagate(f, g);
    std::swap(f, g);
    EXPECT_LE(f.Sum(), 1.0 + 1e-9) << "step " << step;
  }
}

TEST_F(Figure3MatrixTest, VerticalNeighborhoodBlocksSiblingHops) {
  // No social path may pass from URI0.1 to URI0.0.0 "sideways": the
  // matrix row of URI0.1 must not lead to a0 (reachable only via
  // URI0.0.0's hasSubject‾ edge)... it can, because URI0.1's vertical
  // neighborhood includes URI0 and hence NOT URI0.0.0.
  const auto& m = fig_.instance->matrix();
  uint32_t row = Row(EntityId::Fragment(fig_.uri0_1));
  for (const auto& [col, v] : m.Row(row)) {
    EXPECT_NE(col, Row(EntityId::Tag(fig_.a0)))
        << "sibling subtree leaked into the neighborhood";
    (void)v;
  }
}

TEST_F(Figure3MatrixTest, RootNeighborhoodSeesAllFragmentEdges) {
  // Entering at the root URI0, the path may exit through URI0.0.0's
  // tag edge (a0 is a column of URI0's row).
  const auto& m = fig_.instance->matrix();
  uint32_t row = Row(EntityId::Fragment(fig_.uri0));
  bool found = false;
  for (const auto& [col, v] : m.Row(row)) {
    if (col == Row(EntityId::Tag(fig_.a0)) && v > 0) found = true;
  }
  EXPECT_TRUE(found);
}

// ---- Frontier ----------------------------------------------------------------

TEST(FrontierTest, SetTracksNonzeros) {
  Frontier f;
  f.Init(10);
  f.Set(3, 0.5);
  f.Set(7, 0.25);
  EXPECT_EQ(f.nonzero.size(), 2u);
  EXPECT_DOUBLE_EQ(f.Sum(), 0.75);
  f.Clear();
  EXPECT_TRUE(f.nonzero.empty());
  EXPECT_DOUBLE_EQ(f.values[3], 0.0);
}

// ---- ComponentIndex ------------------------------------------------------------

class Figure3ComponentTest : public Figure3MatrixTest {};

TEST_F(Figure3ComponentTest, DocCommentTagFormOneComponent) {
  const auto& comps = fig_.instance->components();
  ComponentId c_uri0 = comps.Of(EntityId::Fragment(fig_.uri0));
  // All fragments of URI0, URI1 (a comment on URI0.1), and both tags
  // are one component.
  EXPECT_EQ(comps.Of(EntityId::Fragment(fig_.uri0_0_0)), c_uri0);
  EXPECT_EQ(comps.Of(EntityId::Fragment(fig_.uri1)), c_uri0);
  EXPECT_EQ(comps.Of(EntityId::Tag(fig_.a0)), c_uri0);
  EXPECT_EQ(comps.Of(EntityId::Tag(fig_.a1)), c_uri0);
}

TEST_F(Figure3ComponentTest, UsersHaveNoComponent) {
  const auto& comps = fig_.instance->components();
  EXPECT_EQ(comps.OfRow(Row(EntityId::User(fig_.u0))),
            kInvalidComponent);
}

TEST(ComponentTest, SeparateDocsSeparateComponents) {
  s3::testing::RandomInstanceParams p;
  p.seed = 99;
  p.n_docs = 5;
  p.comment_prob = 0.0;  // no comments -> one component per doc
  p.n_tags = 0;
  auto ri = s3::testing::BuildRandomInstance(p);
  EXPECT_EQ(ri.instance->components().ComponentCount(), 5u);
}

TEST(ComponentTest, MembersArePartition) {
  auto ri = s3::testing::BuildRandomInstance({});
  const auto& comps = ri.instance->components();
  const auto& layout = ri.instance->layout();
  size_t total_members = 0;
  for (ComponentId c = 0; c < comps.ComponentCount(); ++c) {
    total_members += comps.Members(c).size();
    for (uint32_t row : comps.Members(c)) {
      EXPECT_EQ(comps.OfRow(row), c);
    }
  }
  EXPECT_EQ(total_members, layout.n_fragments() + layout.n_tags());
}

}  // namespace
}  // namespace s3::social
