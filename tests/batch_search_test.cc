// Batched multi-seeker search (S3kSearcher::SearchBatchWithPlan) must
// be *bit-for-bit* what per-query SearchWithPlan produces for every
// member — same entries, same bounds, same stats — at every batch
// width, for mixed per-member k, and across mid-batch seeker dropout
// (one member converging iterations before another). The sweep also
// pins the batched path to the NaiveSearch oracle so the equivalence
// is not just internal consistency.
//
// EXPECT_EQ on doubles is deliberate: the batched engine streams all
// seeker lanes through one CSR walk, and the whole design contract is
// that each lane runs the exact single-seeker operation sequence —
// tolerance here would hide a broken contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

// Converged proximity via long matrix iteration (γ^-iters ≈ 0), the
// same oracle construction as tests/s3k_test.cc.
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

// Exact converged score of one document for a query (the s3k_test.cc
// oracle-side helper): scores are compared as converged values because
// the engine's reported lower bound is truncated at the stop
// iteration.
double ExactScore(const S3Instance& inst, const Query& q,
                  const S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  QueryExtension ext(q.keywords.size());
  for (size_t i = 0; i < q.keywords.size(); ++i) {
    if (opts.use_semantics) {
      for (KeywordId k : inst.ExtendKeyword(q.keywords[i])) {
        ext[i].insert(k);
      }
    } else {
      ext[i].insert(q.keywords[i]);
    }
  }
  ConnectionBuilder b(inst, opts.score.eta);
  auto cc = b.Build(inst.components().Of(social::EntityId::Fragment(node)),
                    ext);
  for (const Candidate& c : cc.candidates) {
    if (c.node == node) return CandidateScore(c, prox);
  }
  return 0.0;
}

S3kOptions TestOptions() {
  S3kOptions opts;
  opts.k = 4;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  return opts;
}

// Asserts one batched member result is bitwise what SearchWithPlan
// returned for the same seeker/k.
void ExpectBitIdentical(const BatchQueryResult& batched,
                        const std::vector<ResultEntry>& entries,
                        const SearchStats& stats, const char* what) {
  ASSERT_EQ(batched.entries.size(), entries.size()) << what;
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(batched.entries[i].node, entries[i].node) << what << " #" << i;
    EXPECT_EQ(batched.entries[i].lower, entries[i].lower) << what << " #" << i;
    EXPECT_EQ(batched.entries[i].upper, entries[i].upper) << what << " #" << i;
  }
  EXPECT_EQ(batched.stats.iterations, stats.iterations) << what;
  EXPECT_EQ(batched.stats.converged, stats.converged) << what;
  EXPECT_EQ(batched.stats.components_discovered, stats.components_discovered)
      << what;
  EXPECT_EQ(batched.stats.candidates_cleaned, stats.candidates_cleaned)
      << what;
  EXPECT_EQ(batched.stats.kth_lower, stats.kth_lower) << what;
  EXPECT_EQ(batched.stats.remaining_upper, stats.remaining_upper) << what;
}

TEST(BatchSearchTest, RejectsBadBatches) {
  auto fig = s3::testing::BuildFigure3();
  S3kSearcher searcher(*fig.instance, TestOptions());
  auto plan = BuildCandidatePlan(*fig.instance, {fig.k0}, true, 0.5);
  ASSERT_TRUE(plan.ok());

  EXPECT_FALSE(searcher.SearchBatchWithPlan({}, *plan).ok());
  EXPECT_FALSE(
      searcher.SearchBatchWithPlan({BatchSeeker{99, 0}}, *plan).ok());
  std::vector<BatchSeeker> too_many(S3kSearcher::kMaxBatch + 1,
                                    BatchSeeker{fig.u0, 0});
  EXPECT_FALSE(searcher.SearchBatchWithPlan(too_many, *plan).ok());
}

// Widths 1, 2 and 8 over several random instances: every member of
// every batch is bitwise the per-query answer. Width 8 exceeds the
// 6-user default instance, so repeated seekers ride along too.
TEST(BatchSearchTest, WidthSweepBitForBitMatchesPerQuery) {
  for (uint64_t seed : {1u, 2u, 5u}) {
    s3::testing::RandomInstanceParams p;
    p.seed = seed;
    auto ri = s3::testing::BuildRandomInstance(p);
    const S3Instance& inst = *ri.instance;
    S3kOptions opts = TestOptions();

    std::vector<KeywordId> kws = {ri.keywords[0], ri.keywords[2]};
    std::sort(kws.begin(), kws.end());
    auto plan =
        BuildCandidatePlan(inst, kws, opts.use_semantics, opts.score.eta);
    ASSERT_TRUE(plan.ok());

    S3kSearcher searcher(inst, opts);
    for (size_t width : {1u, 2u, 8u}) {
      std::vector<BatchSeeker> batch(width);
      for (size_t s = 0; s < width; ++s) {
        batch[s].seeker =
            static_cast<social::UserId>(s % inst.UserCount());
      }
      auto batched = searcher.SearchBatchWithPlan(batch, *plan);
      ASSERT_TRUE(batched.ok()) << "seed " << seed << " width " << width;
      ASSERT_EQ(batched->size(), width);

      for (size_t s = 0; s < width; ++s) {
        SearchStats stats;
        auto single = searcher.SearchWithPlan(
            Query{batch[s].seeker, kws}, *plan, &stats);
        ASSERT_TRUE(single.ok());
        ExpectBitIdentical((*batched)[s], *single, stats, "member");
      }
    }
  }
}

// Batched results match the brute-force oracle: same result count and
// the same descending exact-score multiset (answers are unique only up
// to ties, paper §3.1) — so batching agrees with the ground truth, not
// merely with the incremental engine.
TEST(BatchSearchTest, MatchesNaiveOracle) {
  s3::testing::RandomInstanceParams p;
  p.seed = 3;
  auto ri = s3::testing::BuildRandomInstance(p);
  const S3Instance& inst = *ri.instance;
  S3kOptions opts = TestOptions();

  std::vector<KeywordId> kws = {ri.keywords[1]};
  auto plan =
      BuildCandidatePlan(inst, kws, opts.use_semantics, opts.score.eta);
  ASSERT_TRUE(plan.ok());

  const size_t width = 6;
  std::vector<BatchSeeker> batch(width);
  for (size_t s = 0; s < width; ++s) {
    batch[s].seeker = static_cast<social::UserId>(s % inst.UserCount());
  }
  S3kSearcher searcher(inst, opts);
  auto batched = searcher.SearchBatchWithPlan(batch, *plan);
  ASSERT_TRUE(batched.ok());

  for (size_t s = 0; s < width; ++s) {
    EXPECT_TRUE((*batched)[s].stats.converged) << "member " << s;
    auto prox = ConvergedProx(inst, batch[s].seeker, opts.score.gamma);
    auto oracle =
        NaiveSearchWithProx(inst, Query{batch[s].seeker, kws}, opts, prox);
    ASSERT_EQ((*batched)[s].entries.size(), oracle.size()) << "member " << s;
    std::vector<double> got, want;
    for (size_t r = 0; r < oracle.size(); ++r) {
      const ResultEntry& e = (*batched)[s].entries[r];
      const double exact =
          ExactScore(inst, Query{batch[s].seeker, kws}, opts, e.node, prox);
      // The reported interval brackets the exact score…
      EXPECT_LE(e.lower, exact + 1e-7) << "member " << s << " rank " << r;
      EXPECT_GE(e.upper, exact - 1e-7) << "member " << s << " rank " << r;
      got.push_back(exact);
      want.push_back(oracle[r].lower);
    }
    std::sort(got.rbegin(), got.rend());
    std::sort(want.rbegin(), want.rend());
    for (size_t r = 0; r < want.size(); ++r) {
      EXPECT_NEAR(got[r], want[r], 1e-7) << "member " << s << " rank " << r;
    }
  }
}

// Mixed per-member k in one batch: each member is bitwise the answer
// of a searcher configured with that k.
TEST(BatchSearchTest, MixedKBatchMatchesPerK) {
  s3::testing::RandomInstanceParams p;
  p.seed = 4;
  auto ri = s3::testing::BuildRandomInstance(p);
  const S3Instance& inst = *ri.instance;
  S3kOptions opts = TestOptions();

  std::vector<KeywordId> kws = {ri.keywords[0]};
  auto plan =
      BuildCandidatePlan(inst, kws, opts.use_semantics, opts.score.eta);
  ASSERT_TRUE(plan.ok());

  const size_t mixed_k[] = {1, 3, 8, 2};
  std::vector<BatchSeeker> batch;
  for (size_t s = 0; s < 4; ++s) {
    batch.push_back(BatchSeeker{
        static_cast<social::UserId>(s % inst.UserCount()), mixed_k[s]});
  }
  S3kSearcher batcher(inst, opts);
  auto batched = batcher.SearchBatchWithPlan(batch, *plan);
  ASSERT_TRUE(batched.ok());

  for (size_t s = 0; s < batch.size(); ++s) {
    S3kOptions per_k = opts;
    per_k.k = mixed_k[s];
    S3kSearcher single(inst, per_k);
    SearchStats stats;
    auto result =
        single.SearchWithPlan(Query{batch[s].seeker, kws}, *plan, &stats);
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical((*batched)[s], *result, stats, "mixed-k member");
  }
}

// Seeker dropout: members of one batch converge at different
// iterations (asserted, not assumed), and the early finisher leaving
// the batch must not perturb the survivors — everyone still matches
// the per-query run bitwise. k=1 members converge fast; k=8 members
// keep iterating after the k=1 lanes dropped out.
TEST(BatchSearchTest, SeekerDropoutMidBatchIsInert) {
  s3::testing::RandomInstanceParams p;
  p.seed = 7;
  p.n_users = 10;
  p.n_docs = 12;
  auto ri = s3::testing::BuildRandomInstance(p);
  const S3Instance& inst = *ri.instance;
  S3kOptions opts = TestOptions();

  std::vector<KeywordId> kws = {ri.keywords[0], ri.keywords[3]};
  std::sort(kws.begin(), kws.end());
  auto plan =
      BuildCandidatePlan(inst, kws, opts.use_semantics, opts.score.eta);
  ASSERT_TRUE(plan.ok());

  std::vector<BatchSeeker> batch;
  for (size_t s = 0; s < 8; ++s) {
    batch.push_back(BatchSeeker{
        static_cast<social::UserId>(s % inst.UserCount()),
        s % 2 == 0 ? size_t{1} : size_t{8}});
  }
  S3kSearcher searcher(inst, opts);
  auto batched = searcher.SearchBatchWithPlan(batch, *plan);
  ASSERT_TRUE(batched.ok());

  std::set<size_t> distinct_iters;
  for (size_t s = 0; s < batch.size(); ++s) {
    distinct_iters.insert((*batched)[s].stats.iterations);
    S3kOptions per_k = opts;
    per_k.k = batch[s].k;
    S3kSearcher single(inst, per_k);
    SearchStats stats;
    auto result =
        single.SearchWithPlan(Query{batch[s].seeker, kws}, *plan, &stats);
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical((*batched)[s], *result, stats, "dropout member");
  }
  // The premise of the test: somebody actually dropped out mid-batch.
  EXPECT_GT(distinct_iters.size(), 1u)
      << "all members converged together; dropout path not exercised";
}

// The anytime path batches too: a hard iteration cap cuts every member
// off mid-exploration, and the partial (non-converged) answers are
// still bitwise the per-query partial answers.
TEST(BatchSearchTest, AnytimeCutoffBitForBit) {
  s3::testing::RandomInstanceParams p;
  p.seed = 6;
  auto ri = s3::testing::BuildRandomInstance(p);
  const S3Instance& inst = *ri.instance;
  S3kOptions opts = TestOptions();
  opts.max_iterations = 2;

  std::vector<KeywordId> kws = {ri.keywords[2]};
  auto plan =
      BuildCandidatePlan(inst, kws, opts.use_semantics, opts.score.eta);
  ASSERT_TRUE(plan.ok());

  std::vector<BatchSeeker> batch(4);
  for (size_t s = 0; s < batch.size(); ++s) {
    batch[s].seeker = static_cast<social::UserId>(s % inst.UserCount());
  }
  S3kSearcher searcher(inst, opts);
  auto batched = searcher.SearchBatchWithPlan(batch, *plan);
  ASSERT_TRUE(batched.ok());
  for (size_t s = 0; s < batch.size(); ++s) {
    SearchStats stats;
    auto single =
        searcher.SearchWithPlan(Query{batch[s].seeker, kws}, *plan, &stats);
    ASSERT_TRUE(single.ok());
    ExpectBitIdentical((*batched)[s], *single, stats, "anytime member");
  }
}

}  // namespace
}  // namespace s3::core
