// Tests for the ingestion layer: XML and JSON document parsing,
// N-Triples parsing/serialization, and triple-pattern matching.
#include <gtest/gtest.h>

#include "doc/json_parser.h"
#include "doc/xml_parser.h"
#include "rdf/ntriples.h"
#include "text/vocabulary.h"

namespace s3 {
namespace {

// A passthrough interner: one keyword per whitespace token, verbatim.
class InternFixture : public ::testing::Test {
 protected:
  Vocabulary vocab_;
  doc::TextInterner intern_ = [this](std::string_view text) {
    std::vector<KeywordId> out;
    std::string token;
    for (char c : text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!token.empty()) out.push_back(vocab_.Intern(token));
        token.clear();
      } else {
        token.push_back(c);
      }
    }
    if (!token.empty()) out.push_back(vocab_.Intern(token));
    return out;
  };

  std::vector<std::string> Spellings(const std::vector<KeywordId>& kws) {
    std::vector<std::string> out;
    for (KeywordId k : kws) out.push_back(vocab_.Spelling(k));
    return out;
  }
};

// ---- XML ---------------------------------------------------------------

class XmlTest : public InternFixture {};

TEST_F(XmlTest, SimpleElementTree) {
  auto doc = doc::ParseXml(
      "<article><sec>hello world</sec><sec>more</sec></article>", intern_);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(0).name, "article");
  ASSERT_EQ(doc->NodeCount(), 3u);
  EXPECT_EQ(doc->node(1).name, "sec");
  EXPECT_EQ(Spellings(doc->node(1).keywords),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(doc->node(1).dewey.ToString(), "1");
  EXPECT_EQ(doc->node(2).dewey.ToString(), "2");
}

TEST_F(XmlTest, NestedElements) {
  auto doc = doc::ParseXml("<a><b><c>deep</c></b></a>", intern_);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->NodeCount(), 3u);
  EXPECT_EQ(doc->node(2).name, "c");
  EXPECT_EQ(doc->node(2).dewey.ToString(), "1.1");
}

TEST_F(XmlTest, AttributesBecomeChildNodes) {
  auto doc = doc::ParseXml(R"(<tweet lang="en" geo="paris">hi</tweet>)",
                           intern_);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->NodeCount(), 3u);
  EXPECT_EQ(doc->node(1).name, "@lang");
  EXPECT_EQ(Spellings(doc->node(1).keywords),
            std::vector<std::string>{"en"});
  EXPECT_EQ(doc->node(2).name, "@geo");
}

TEST_F(XmlTest, SelfClosingTag) {
  auto doc = doc::ParseXml("<a><br/><b>x</b></a>", intern_);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->NodeCount(), 3u);
  EXPECT_EQ(doc->node(1).name, "br");
  EXPECT_TRUE(doc->node(1).keywords.empty());
}

TEST_F(XmlTest, EntitiesDecoded) {
  auto doc = doc::ParseXml("<t>a&amp;b &lt;tag&gt; &#65;</t>", intern_);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Spellings(doc->node(0).keywords),
            (std::vector<std::string>{"a&b", "<tag>", "A"}));
}

TEST_F(XmlTest, CommentsAndCdata) {
  auto doc = doc::ParseXml(
      "<t><!-- ignore me -->keep <![CDATA[<raw & data>]]></t>", intern_);
  ASSERT_TRUE(doc.ok());
  auto sp = Spellings(doc->node(0).keywords);
  EXPECT_EQ(sp[0], "keep");
  EXPECT_EQ(sp[1], "<raw");
}

TEST_F(XmlTest, PrologAndTrailingComment) {
  auto doc = doc::ParseXml(
      "<?xml version=\"1.0\"?>\n<!-- pre --><t>x</t><!-- post -->",
      intern_);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(0).name, "t");
}

TEST_F(XmlTest, MismatchedTagsRejected) {
  EXPECT_FALSE(doc::ParseXml("<a><b>x</a></b>", intern_).ok());
}

TEST_F(XmlTest, UnterminatedElementRejected) {
  EXPECT_FALSE(doc::ParseXml("<a><b>x", intern_).ok());
}

TEST_F(XmlTest, TrailingContentRejected) {
  EXPECT_FALSE(doc::ParseXml("<a/>garbage", intern_).ok());
}

TEST_F(XmlTest, UnknownEntityRejected) {
  EXPECT_FALSE(doc::ParseXml("<a>&nope;</a>", intern_).ok());
}

TEST_F(XmlTest, TweetShapedDocument) {
  // The I1 construction: tweet with text, date and geo children.
  auto doc = doc::ParseXml(
      "<tweet><text>When I got my M.S.</text>"
      "<date>2014-05-02</date><geo>Edmonton</geo></tweet>",
      intern_);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->NodeCount(), 4u);
  EXPECT_EQ(doc->node(1).name, "text");
  EXPECT_EQ(doc->node(2).name, "date");
  EXPECT_EQ(doc->node(3).name, "geo");
}

// ---- JSON -------------------------------------------------------------

class JsonTest : public InternFixture {};

TEST_F(JsonTest, FlatObject) {
  auto doc =
      doc::ParseJson(R"({"title": "hello world", "year": 2014})", "post",
                     intern_);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(0).name, "post");
  ASSERT_EQ(doc->NodeCount(), 3u);
  EXPECT_EQ(doc->node(1).name, "title");
  EXPECT_EQ(Spellings(doc->node(1).keywords),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(doc->node(2).name, "year");
  EXPECT_EQ(Spellings(doc->node(2).keywords),
            std::vector<std::string>{"2014"});
}

TEST_F(JsonTest, NestedObjectsAndArrays) {
  auto doc = doc::ParseJson(
      R"({"meta": {"tags": ["a", "b"]}, "body": "text"})", "d", intern_);
  ASSERT_TRUE(doc.ok());
  // d -> meta -> tags -> item, item ; d -> body
  ASSERT_EQ(doc->NodeCount(), 6u);
  EXPECT_EQ(doc->node(1).name, "meta");
  EXPECT_EQ(doc->node(2).name, "tags");
  EXPECT_EQ(doc->node(3).name, "item");
  EXPECT_EQ(doc->node(3).dewey.ToString(), "1.1.1");
}

TEST_F(JsonTest, EscapesAndUnicode) {
  auto doc = doc::ParseJson(R"({"t": "a\nb A"})", "d", intern_);
  ASSERT_TRUE(doc.ok());
  auto sp = Spellings(doc->node(1).keywords);
  ASSERT_EQ(sp.size(), 3u);
  EXPECT_EQ(sp[2], "A");
}

TEST_F(JsonTest, BooleansAndNull) {
  auto doc = doc::ParseJson(R"({"a": true, "b": null})", "d", intern_);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Spellings(doc->node(1).keywords),
            std::vector<std::string>{"true"});
  EXPECT_TRUE(doc->node(2).keywords.empty());  // null adds nothing
}

TEST_F(JsonTest, TopLevelArray) {
  auto doc = doc::ParseJson(R"(["x", "y"])", "list", intern_);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->NodeCount(), 3u);
  EXPECT_EQ(doc->node(1).name, "item");
}

TEST_F(JsonTest, MalformedRejected) {
  EXPECT_FALSE(doc::ParseJson(R"({"a": })", "d", intern_).ok());
  EXPECT_FALSE(doc::ParseJson(R"({"a": 1,})", "d", intern_).ok());
  EXPECT_FALSE(doc::ParseJson(R"("unterminated)", "d", intern_).ok());
  EXPECT_FALSE(doc::ParseJson(R"({"a": 1} trailing)", "d", intern_).ok());
}

// ---- N-Triples ------------------------------------------------------------

class NTriplesTest : public ::testing::Test {
 protected:
  rdf::TermDictionary dict_;
  rdf::TripleStore store_;
};

TEST_F(NTriplesTest, BasicTriples) {
  auto stats = rdf::ParseNTriples(
      "<a> <p> <b> .\n<a> <name> \"Alice\" .\n", dict_, store_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 2u);
  EXPECT_TRUE(store_.Contains(dict_.InternUri("a"), dict_.InternUri("p"),
                              dict_.InternUri("b")));
  EXPECT_TRUE(store_.Contains(dict_.InternUri("a"),
                              dict_.InternUri("name"),
                              dict_.InternLiteral("Alice")));
}

TEST_F(NTriplesTest, CommentsAndBlankLines) {
  auto stats = rdf::ParseNTriples(
      "# header\n\n<a> <p> <b> .\n   # trailing comment\n", dict_,
      store_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 1u);
}

TEST_F(NTriplesTest, WeightedTriple) {
  auto stats =
      rdf::ParseNTriples("<a> <sim> <b> 0.35 .\n", dict_, store_);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(store_.Weight(dict_.InternUri("a"),
                                 dict_.InternUri("sim"),
                                 dict_.InternUri("b")),
                   0.35);
}

TEST_F(NTriplesTest, EscapedLiteral) {
  auto stats = rdf::ParseNTriples(
      "<a> <p> \"line\\nbreak \\\"quoted\\\"\" .\n", dict_, store_);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(dict_.Find("line\nbreak \"quoted\"", rdf::TermKind::kLiteral),
            rdf::kInvalidTerm);
}

TEST_F(NTriplesTest, MalformedLinesReportLineNumber) {
  auto r1 = rdf::ParseNTriples("<a> <p> <b>\n", dict_, store_);  // no dot
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);
  auto r2 = rdf::ParseNTriples("<a> <p> .\n", dict_, store_);
  EXPECT_FALSE(r2.ok());
  auto r3 = rdf::ParseNTriples("<a> <p> <b> 1.5 .\n", dict_, store_);
  EXPECT_FALSE(r3.ok());  // weight out of range
  auto r4 = rdf::ParseNTriples("\"lit\" <p> <b> .\n", dict_, store_);
  EXPECT_FALSE(r4.ok());  // literal subject
}

TEST_F(NTriplesTest, RoundTrip) {
  store_.Add(dict_.InternUri("a"), dict_.InternUri("p"),
             dict_.InternUri("b"));
  store_.Add(dict_.InternUri("a"), dict_.InternUri("name"),
             dict_.InternLiteral("Ann \"A\"\nx"));
  store_.Add(dict_.InternUri("a"), dict_.InternUri("sim"),
             dict_.InternUri("c"), 0.5);
  std::string text = rdf::SerializeNTriples(dict_, store_);

  rdf::TermDictionary dict2;
  rdf::TripleStore store2;
  auto stats = rdf::ParseNTriples(text, dict2, store2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(store2.size(), 3u);
  EXPECT_DOUBLE_EQ(store2.Weight(dict2.InternUri("a"),
                                 dict2.InternUri("sim"),
                                 dict2.InternUri("c")),
                   0.5);
  EXPECT_NE(dict2.Find("Ann \"A\"\nx", rdf::TermKind::kLiteral),
            rdf::kInvalidTerm);
}

// ---- Triple pattern matching ----------------------------------------------

class MatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = dict_.InternUri("a");
    b_ = dict_.InternUri("b");
    c_ = dict_.InternUri("c");
    p_ = dict_.InternUri("p");
    q_ = dict_.InternUri("q");
    store_.Add(a_, p_, b_);
    store_.Add(a_, p_, c_);
    store_.Add(b_, p_, c_);
    store_.Add(a_, q_, b_);
  }
  rdf::TermDictionary dict_;
  rdf::TripleStore store_;
  rdf::TermId a_, b_, c_, p_, q_;
  static constexpr rdf::TermId kAny = rdf::TripleStore::kAnyTerm;
};

TEST_F(MatchTest, FullyBound) {
  EXPECT_EQ(store_.Match(a_, p_, b_).size(), 1u);
  EXPECT_EQ(store_.Match(a_, p_, a_).size(), 0u);
}

TEST_F(MatchTest, SubjectPropertyBound) {
  EXPECT_EQ(store_.Match(a_, p_, kAny).size(), 2u);
}

TEST_F(MatchTest, PropertyObjectBound) {
  EXPECT_EQ(store_.Match(kAny, p_, c_).size(), 2u);
}

TEST_F(MatchTest, PropertyOnly) {
  EXPECT_EQ(store_.Match(kAny, p_, kAny).size(), 3u);
  EXPECT_EQ(store_.Match(kAny, q_, kAny).size(), 1u);
}

TEST_F(MatchTest, FullScanPatterns) {
  EXPECT_EQ(store_.Match(kAny, kAny, kAny).size(), 4u);
  EXPECT_EQ(store_.Match(a_, kAny, kAny).size(), 3u);
  EXPECT_EQ(store_.Match(kAny, kAny, b_).size(), 2u);
}

}  // namespace
}  // namespace s3
