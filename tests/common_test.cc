#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/str_util.h"

namespace s3 {
namespace {

// ---- Status / Result --------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),   Status::OutOfRange("x").code(),
      Status::FailedPrecondition("x").code(), Status::Internal("x").code(),
  };
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailsThrough() {
  S3_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

// ---- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Uniform(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

// ---- ZipfSampler --------------------------------------------------------

TEST(ZipfTest, RankZeroIsMostFrequent) {
  Rng rng(5);
  ZipfSampler z(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[z.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(5);
  ZipfSampler z(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

TEST(ZipfTest, SamplesCoverSupport) {
  Rng rng(6);
  ZipfSampler z(5, 0.5);
  std::set<size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(z.Sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

// ---- Stats ---------------------------------------------------------------

TEST(StatsTest, QuantileOfSingleton) {
  EXPECT_DOUBLE_EQ(Quantile({3.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({3.0}, 0.0), 3.0);
}

TEST(StatsTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(StatsTest, MedianOfEvenSampleInterpolates) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(StatsTest, SummaryOrdering) {
  QuartileSummary s = Summarize({9.0, 1.0, 5.0, 3.0, 7.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_EQ(s.count, 5u);
}

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

// ---- str_util --------------------------------------------------------------

TEST(StrUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo W0rld"), "hello w0rld");
}

TEST(StrUtilTest, SplitDropsEmptyPieces) {
  std::vector<std::string> parts = Split("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("S3:social", "S3:"));
  EXPECT_FALSE(StartsWith("S3", "S3:"));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({}, "."), "");
}

// ---- LruCache ---------------------------------------------------------

TEST(LruCacheTest, GetTouchesRecency) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_NE(cache.Get(1), nullptr);  // 1 becomes most recent
  cache.Put(3, "three");             // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutOverwritesInPlace) {
  LruCache<int, int> cache(2);
  cache.Put(7, 1);
  cache.Put(7, 2);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.Get(7), nullptr);
  EXPECT_EQ(*cache.Get(7), 2);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, EvictsInLruOrder) {
  LruCache<int, int> cache(3);
  for (int i = 0; i < 6; ++i) cache.Put(i, i);
  // 0..2 evicted, 3..5 retained.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(cache.Contains(i));
  for (int i = 3; i < 6; ++i) EXPECT_TRUE(cache.Contains(i));
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(LruCacheTest, MissReturnsNull) {
  LruCache<int, int> cache(1);
  EXPECT_EQ(cache.Get(42), nullptr);
  EXPECT_EQ(cache.Peek(42), nullptr);
}

// ---- BoundedQueue -----------------------------------------------------

TEST(BoundedQueueTest, FifoAndTryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // admission control: full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  q.Close();
  EXPECT_FALSE(q.TryPush(2));  // closed refuses new work
  EXPECT_EQ(q.Pop().value(), 1);  // admitted work still drains
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.Pop(), std::nullopt); });
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);  // small capacity to force blocking on both sides
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---- edge cases (live-update hardening) -------------------------------

TEST(StatsTest, EmptyInputIsSafeNotUb) {
  // These take caller-measured samples; empty must be a defined case
  // even under NDEBUG (previously assert-only -> sorted[0] UB).
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
  QuartileSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(StatsTest, QuantileClampsQ) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_EQ(Quantile(v, 1.5), 3.0);
}

TEST(LruCacheTest, GetPointerStaysValidAcrossUnrelatedPut) {
  // The value lives in a list node: inserting (even evicting another
  // key) must not move it. In-flight readers in the proximity cache
  // rely on the shared_ptr they copied, but the raw pointer contract
  // is pinned here: it dies only with its own entry.
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  std::string* one = cache.Get(1);  // 1 most recent
  ASSERT_NE(one, nullptr);
  cache.Put(3, "three");  // evicts 2, not 1
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(*one, "one");
  EXPECT_EQ(cache.Get(1), one);
}

TEST(LruCacheTest, OverwriteAtCapacityDoesNotEvict) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);  // at capacity
  cache.Put(2, 21);  // overwrite: in-place, no eviction
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.Contains(1));
  ASSERT_NE(cache.Get(2), nullptr);
  EXPECT_EQ(*cache.Get(2), 21);
  // The overwrite refreshed 2's recency: the next insert evicts 1.
  cache.Put(3, 30);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(LruCacheTest, EraseIfRemovesMatchesOnly) {
  LruCache<int, int> cache(8);
  for (int i = 0; i < 6; ++i) cache.Put(i, i * 10);
  size_t erased = cache.EraseIf(
      [](const int& k, const int&) { return k % 2 == 0; });
  EXPECT_EQ(erased, 3u);
  EXPECT_EQ(cache.size(), 3u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(cache.Contains(i), i % 2 == 1) << i;
  }
  // Targeted invalidation is not a capacity eviction.
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(BoundedQueueTest, PushBlockedOnFullQueueWokenByCloseReturnsFalse) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));  // full
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(q.Push(2)); });
  // The producer is (about to be) blocked on not_full_; Close must
  // wake it and the refused item must not be admitted.
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
  EXPECT_EQ(q.Pop().value(), 1);       // admitted work drains
  EXPECT_EQ(q.Pop(), std::nullopt);    // 2 was never admitted
}

TEST(BoundedQueueTest, DrainAfterClosePreservesFifo) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.TryPush(i));
  q.Close();
  for (int i = 0; i < 4; ++i) {
    auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.Pop(), std::nullopt);
}

}  // namespace
}  // namespace s3
