// Tests for the §3.4 alternative proximity (SimRank) and the
// incremental saturation API.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdf/saturation.h"
#include "rdf/vocab.h"
#include "social/simrank.h"

namespace s3 {
namespace {

// ---- SimRank ------------------------------------------------------------

using social::EdgeLabel;
using social::EdgeStore;
using social::EntityId;
using social::SimRank;
using social::SimRankOptions;

TEST(SimRankTest, SelfSimilarityIsOne) {
  EdgeStore edges;
  edges.Add(EntityId::User(0), EntityId::User(1), EdgeLabel::kSocial, 1.0);
  SimRank sr;
  sr.Compute(edges, 3);
  for (uint32_t u = 0; u < 3; ++u) {
    EXPECT_DOUBLE_EQ(sr.Similarity(u, u), 1.0);
  }
}

TEST(SimRankTest, NoSharedContextMeansZero) {
  // 0 -> 1, 2 -> 3: users 1 and 3 have unrelated in-neighbors with
  // zero similarity; no mass ever flows.
  EdgeStore edges;
  edges.Add(EntityId::User(0), EntityId::User(1), EdgeLabel::kSocial, 1.0);
  edges.Add(EntityId::User(2), EntityId::User(3), EdgeLabel::kSocial, 1.0);
  SimRank sr;
  sr.Compute(edges, 4);
  EXPECT_DOUBLE_EQ(sr.Similarity(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(sr.Similarity(0, 2), 0.0);
}

TEST(SimRankTest, CommonInNeighborGivesDecay) {
  // 0 -> 1 and 0 -> 2: s(1,2) = C·s(0,0) = C.
  EdgeStore edges;
  edges.Add(EntityId::User(0), EntityId::User(1), EdgeLabel::kSocial, 1.0);
  edges.Add(EntityId::User(0), EntityId::User(2), EdgeLabel::kSocial, 1.0);
  SimRank sr;
  SimRankOptions opts;
  opts.decay = 0.8;
  sr.Compute(edges, 3, opts);
  EXPECT_NEAR(sr.Similarity(1, 2), 0.8, 1e-12);
}

TEST(SimRankTest, Symmetric) {
  EdgeStore edges;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(8));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(8));
    if (a != b) {
      edges.Add(EntityId::User(a), EntityId::User(b), EdgeLabel::kSocial,
                1.0);
    }
  }
  SimRank sr;
  sr.Compute(edges, 8);
  for (uint32_t a = 0; a < 8; ++a) {
    for (uint32_t b = 0; b < 8; ++b) {
      EXPECT_DOUBLE_EQ(sr.Similarity(a, b), sr.Similarity(b, a));
    }
  }
}

TEST(SimRankTest, ScoresBounded) {
  EdgeStore edges;
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(10));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(10));
    if (a != b) {
      edges.Add(EntityId::User(a), EntityId::User(b), EdgeLabel::kSocial,
                0.5);
    }
  }
  SimRank sr;
  sr.Compute(edges, 10);
  for (uint32_t a = 0; a < 10; ++a) {
    for (uint32_t b = 0; b < 10; ++b) {
      EXPECT_GE(sr.Similarity(a, b), 0.0);
      EXPECT_LE(sr.Similarity(a, b), 1.0 + 1e-12);
    }
  }
}

TEST(SimRankTest, MoreIterationsRefineMonotonically) {
  EdgeStore edges;
  edges.Add(EntityId::User(0), EntityId::User(1), EdgeLabel::kSocial, 1.0);
  edges.Add(EntityId::User(0), EntityId::User(2), EdgeLabel::kSocial, 1.0);
  edges.Add(EntityId::User(1), EntityId::User(2), EdgeLabel::kSocial, 1.0);
  edges.Add(EntityId::User(2), EntityId::User(1), EdgeLabel::kSocial, 1.0);
  double last = 0.0;
  for (size_t iters : {1u, 2u, 4u, 8u}) {
    SimRank sr;
    SimRankOptions opts;
    opts.iterations = iters;
    sr.Compute(edges, 3, opts);
    EXPECT_GE(sr.Similarity(1, 2), last - 1e-12);
    last = sr.Similarity(1, 2);
  }
}

// ---- Incremental saturation -------------------------------------------------

class IncrementalSaturationTest : public ::testing::Test {
 protected:
  rdf::TermDictionary dict_;
  rdf::TripleStore store_;

  rdf::TermId U(const char* s) { return dict_.InternUri(s); }
  rdf::TermId type() { return dict_.InternUri(rdf::vocab::kType); }
  rdf::TermId sc() { return dict_.InternUri(rdf::vocab::kSubClassOf); }

  // Re-saturating from scratch must agree with the incremental path.
  void ExpectEqualsFromScratch(const rdf::TripleStore& incremental) {
    rdf::TermDictionary dict2;
    rdf::TripleStore scratch;
    // Rebuild with the same term ids by replaying the triples.
    for (const auto& t : incremental.triples()) {
      // Terms are shared (same dictionary), so copy directly.
      scratch.Add(t.subject, t.property, t.object, t.weight);
    }
    rdf::Saturate(dict_, scratch);
    EXPECT_EQ(scratch.size(), incremental.size());
    for (const auto& t : scratch.triples()) {
      EXPECT_TRUE(incremental.Contains(t.subject, t.property, t.object));
    }
  }
};

TEST_F(IncrementalSaturationTest, NewInstanceJoinsExistingSchema) {
  store_.Add(U("ms"), sc(), U("degree"));
  rdf::Saturate(dict_, store_);
  auto stats = rdf::SaturateIncremental(
      dict_, store_, {rdf::Triple{U("mine"), type(), U("ms"), 1.0}});
  EXPECT_TRUE(store_.Contains(U("mine"), type(), U("degree")));
  EXPECT_GE(stats.derived_triples, 1u);
  ExpectEqualsFromScratch(store_);
}

TEST_F(IncrementalSaturationTest, NewSchemaRetypesOldInstances) {
  store_.Add(U("mine"), type(), U("ms"));
  rdf::Saturate(dict_, store_);
  // The subclass arrives later: existing instances must lift.
  rdf::SaturateIncremental(
      dict_, store_, {rdf::Triple{U("ms"), sc(), U("degree"), 1.0}});
  EXPECT_TRUE(store_.Contains(U("mine"), type(), U("degree")));
  ExpectEqualsFromScratch(store_);
}

TEST_F(IncrementalSaturationTest, ChainedDeltas) {
  rdf::Saturate(dict_, store_);
  rdf::SaturateIncremental(dict_, store_,
                           {rdf::Triple{U("a"), sc(), U("b"), 1.0}});
  rdf::SaturateIncremental(dict_, store_,
                           {rdf::Triple{U("b"), sc(), U("c"), 1.0}});
  rdf::SaturateIncremental(dict_, store_,
                           {rdf::Triple{U("x"), type(), U("a"), 1.0}});
  EXPECT_TRUE(store_.Contains(U("a"), sc(), U("c")));
  EXPECT_TRUE(store_.Contains(U("x"), type(), U("c")));
  ExpectEqualsFromScratch(store_);
}

TEST_F(IncrementalSaturationTest, DuplicateDeltaIsNoop) {
  store_.Add(U("a"), sc(), U("b"));
  rdf::Saturate(dict_, store_);
  size_t before = store_.size();
  auto stats = rdf::SaturateIncremental(
      dict_, store_, {rdf::Triple{U("a"), sc(), U("b"), 1.0}});
  EXPECT_EQ(store_.size(), before);
  EXPECT_EQ(stats.derived_triples, 0u);
}

TEST_F(IncrementalSaturationTest, WeightedDeltaDoesNotFireRules) {
  store_.Add(U("ms"), sc(), U("degree"));
  rdf::Saturate(dict_, store_);
  rdf::SaturateIncremental(
      dict_, store_, {rdf::Triple{U("x"), type(), U("ms"), 0.5}});
  EXPECT_FALSE(store_.Contains(U("x"), type(), U("degree")));
}

}  // namespace
}  // namespace s3
