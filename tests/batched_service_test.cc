// Serving-layer batching tests: QueryService with batch_window > 0
// must answer every query bit-for-bit as the serial single-query
// engine — batch composition is a throughput optimization, never
// observable in a response — while the batching counters advance.
// The Concurrent suite (TSan target in CI) hammers a batching service
// from several client threads across SwapSnapshot generation swaps:
// the worker binds one snapshot per batch, so no batch may ever span
// a swap, which the per-generation exact-match oracle would expose.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/instance_delta.h"
#include "core/s3k.h"
#include "server/query_service.h"
#include "test_fixtures.h"

namespace s3::server {
namespace {

using core::InstanceDelta;
using core::Query;
using core::ResultEntry;
using core::S3Instance;
using core::S3kOptions;
using core::S3kSearcher;

S3kOptions TestOptions() {
  S3kOptions opts;
  opts.k = 4;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  return opts;
}

std::shared_ptr<const S3Instance> MakeSnapshot(
    uint64_t seed, std::vector<KeywordId>* kws) {
  s3::testing::RandomInstanceParams p;
  p.seed = seed;
  p.n_users = 10;
  p.n_docs = 14;
  p.n_tags = 10;
  auto ri = s3::testing::BuildRandomInstance(p);
  *kws = ri.keywords;
  return std::shared_ptr<const S3Instance>(std::move(ri.instance));
}

void ExpectExactEntries(const std::vector<ResultEntry>& got,
                        const std::vector<ResultEntry>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(got[r].node, want[r].node) << what << " rank " << r;
    ASSERT_EQ(got[r].lower, want[r].lower) << what << " rank " << r;
    ASSERT_EQ(got[r].upper, want[r].upper) << what << " rank " << r;
  }
}

// One worker, a same-keyword flood: batches must actually form (the
// worker drains the backlog through SearchBatchWithPlan), the counters
// must advance, and every response must equal the serial single-query
// answer exactly.
TEST(BatchedServiceTest, BatchedResponsesBitForBitAndCountersAdvance) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(11, &kws);
  const S3kOptions opts = TestOptions();

  std::vector<KeywordId> hot = {kws[0], kws[2]};
  std::sort(hot.begin(), hot.end());

  // Serial per-seeker expected results.
  S3kSearcher serial(*snap, opts);
  std::vector<std::vector<ResultEntry>> expected(snap->UserCount());
  for (social::UserId u = 0; u < snap->UserCount(); ++u) {
    auto r = serial.Search(Query{u, hot});
    ASSERT_TRUE(r.ok());
    expected[u] = *r;
  }

  QueryServiceOptions service_opts;
  service_opts.workers = 1;  // forces a backlog => batches form
  service_opts.queue_capacity = 512;
  service_opts.search = opts;
  service_opts.batch_window = 8;
  QueryService service(snap, service_opts);

  // Submission is a mutex push; a search is orders of magnitude
  // slower, so flooding 64 queries leaves a drainable backlog almost
  // immediately. Retry rounds keep the test robust on a loaded
  // machine rather than relying on one race going our way.
  bool batched_seen = false;
  for (int round = 0; round < 20 && !batched_seen; ++round) {
    std::vector<std::pair<social::UserId, QueryFuture>> inflight;
    for (int i = 0; i < 64; ++i) {
      const auto u =
          static_cast<social::UserId>(i % snap->UserCount());
      auto submitted = service.SubmitBlocking(Query{u, hot});
      ASSERT_TRUE(submitted.ok());
      inflight.emplace_back(u, std::move(*submitted));
    }
    for (auto& [u, future] : inflight) {
      auto resp = future.get();
      ASSERT_TRUE(resp.ok()) << resp.status().message();
      ExpectExactEntries(resp->entries, expected[u],
                         "seeker " + std::to_string(u));
      EXPECT_EQ(resp->generation, snap->generation());
    }
    batched_seen = service.Stats().batches_executed > 0;
  }

  const QueryServiceStats stats = service.Stats();
  EXPECT_TRUE(batched_seen) << "no batch formed in 20 flood rounds";
  // Every counted batch had width >= 2 and respected the window.
  EXPECT_GE(stats.batched_queries, 2 * stats.batches_executed);
  EXPECT_LE(stats.batched_queries,
            service_opts.batch_window * stats.batches_executed);
  EXPECT_EQ(stats.failed, 0u);
  const eval::ServiceCounters counters = stats.Counters();
  EXPECT_EQ(counters.batched_queries, stats.batched_queries);
  EXPECT_GE(counters.MeanBatchWidth(), 2.0);
  // The rendered counter line carries the batching numbers.
  EXPECT_NE(eval::FormatCounters(counters).find("batched="),
            std::string::npos);
}

// batch_window <= 1 disables draining entirely.
TEST(BatchedServiceTest, WindowOfOneNeverBatches) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(12, &kws);

  QueryServiceOptions service_opts;
  service_opts.workers = 1;
  service_opts.search = TestOptions();
  service_opts.batch_window = 1;
  QueryService service(snap, service_opts);

  std::vector<QueryFuture> inflight;
  for (int i = 0; i < 32; ++i) {
    auto submitted = service.SubmitBlocking(
        Query{static_cast<social::UserId>(i % snap->UserCount()),
              {kws[0]}});
    ASSERT_TRUE(submitted.ok());
    inflight.push_back(std::move(*submitted));
  }
  for (auto& f : inflight) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(service.Stats().batches_executed, 0u);
  EXPECT_EQ(service.Stats().batched_queries, 0u);
}

// Queries over *different* keyword multisets never share a batch (the
// drain predicate matches the plan key): interleave two keyword sets
// and verify exact per-query results either way.
TEST(BatchedServiceTest, MixedKeywordsOnlyBatchWithinPlan) {
  std::vector<KeywordId> kws;
  auto snap = MakeSnapshot(13, &kws);
  const S3kOptions opts = TestOptions();

  std::vector<std::vector<KeywordId>> sets = {{kws[0]}, {kws[1], kws[3]}};
  for (auto& s : sets) std::sort(s.begin(), s.end());

  S3kSearcher serial(*snap, opts);
  // expected[set][seeker]
  std::vector<std::vector<std::vector<ResultEntry>>> expected(sets.size());
  for (size_t si = 0; si < sets.size(); ++si) {
    for (social::UserId u = 0; u < snap->UserCount(); ++u) {
      auto r = serial.Search(Query{u, sets[si]});
      ASSERT_TRUE(r.ok());
      expected[si].push_back(*r);
    }
  }

  QueryServiceOptions service_opts;
  service_opts.workers = 1;
  service_opts.queue_capacity = 512;
  service_opts.search = opts;
  service_opts.batch_window = 4;
  QueryService service(snap, service_opts);

  std::vector<std::tuple<size_t, social::UserId, QueryFuture>> inflight;
  for (int i = 0; i < 48; ++i) {
    const size_t si = i % sets.size();
    const auto u = static_cast<social::UserId>(i % snap->UserCount());
    auto submitted = service.SubmitBlocking(Query{u, sets[si]});
    ASSERT_TRUE(submitted.ok());
    inflight.emplace_back(si, u, std::move(*submitted));
  }
  for (auto& [si, u, future] : inflight) {
    auto resp = future.get();
    ASSERT_TRUE(resp.ok());
    ExpectExactEntries(resp->entries, expected[si][u],
                       "set " + std::to_string(si) + " seeker " +
                           std::to_string(u));
  }
  EXPECT_EQ(service.Stats().failed, 0u);
}

// The TSan target: concurrent clients flooding a batching service
// while the main thread swaps snapshot generations. Each response must
// exactly match the serial answer of the generation it reports — a
// batch mixing generations, or a data race anywhere in the drain path,
// perturbs some response away from every per-generation oracle.
TEST(BatchedServiceConcurrentTest, BatchingUnderSubmitAndSwap) {
  constexpr size_t kRounds = 2;

  std::vector<KeywordId> kws;
  std::vector<std::shared_ptr<const S3Instance>> gens;
  gens.push_back(MakeSnapshot(14, &kws));
  // Each round rewires the social graph a little; exactness against
  // the wrong generation's oracle then fails.
  for (size_t round = 1; round <= kRounds; ++round) {
    InstanceDelta delta(gens.back());
    ASSERT_TRUE(delta
                    .AddSocialEdge(static_cast<social::UserId>(round),
                                   static_cast<social::UserId>(round + 4),
                                   0.6)
                    .ok());
    auto next = gens.back()->ApplyDelta(delta);
    ASSERT_TRUE(next.ok()) << next.status().message();
    gens.push_back(*next);
  }

  const S3kOptions opts = TestOptions();
  std::vector<KeywordId> hot = {kws[1], kws[2]};
  std::sort(hot.begin(), hot.end());
  std::vector<Query> queries;
  for (social::UserId u = 0; u < gens[0]->UserCount(); ++u) {
    queries.push_back(Query{u, hot});
  }

  // expected[g][qi]: serial per-generation results.
  std::vector<std::vector<std::vector<ResultEntry>>> expected(kRounds + 1);
  for (size_t g = 0; g <= kRounds; ++g) {
    S3kSearcher searcher(*gens[g], opts);
    for (const Query& q : queries) {
      auto r = searcher.Search(q);
      ASSERT_TRUE(r.ok());
      expected[g].push_back(*r);
    }
  }

  QueryServiceOptions service_opts;
  service_opts.workers = 2;
  service_opts.queue_capacity = 256;
  service_opts.search = opts;
  service_opts.batch_window = 4;
  QueryService service(gens[0], service_opts);

  std::atomic<size_t> checked{0};
  auto check_response = [&](size_t qi, const QueryResponse& resp) {
    ASSERT_LE(resp.generation, kRounds);
    ExpectExactEntries(resp.entries, expected[resp.generation][qi],
                       "generation " + std::to_string(resp.generation) +
                           " query " + std::to_string(qi));
    checked.fetch_add(1);
  };

  for (size_t round = 1; round <= kRounds; ++round) {
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
      clients.emplace_back([&, t] {
        for (size_t pass = 0; pass < 6; ++pass) {
          std::vector<std::pair<size_t, QueryFuture>> inflight;
          for (size_t qi = t; qi < queries.size(); qi += 3) {
            auto submitted = service.SubmitBlocking(queries[qi]);
            ASSERT_TRUE(submitted.ok());
            inflight.emplace_back(qi, std::move(*submitted));
          }
          for (auto& [qi, future] : inflight) {
            auto resp = future.get();
            ASSERT_TRUE(resp.ok()) << resp.status().message();
            check_response(qi, *resp);
          }
        }
      });
    }
    ASSERT_TRUE(service.SwapSnapshot(gens[round]).ok());
    for (auto& t : clients) t.join();

    // Quiesced: everything now answers on the new generation.
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto submitted = service.SubmitBlocking(queries[qi]);
      ASSERT_TRUE(submitted.ok());
      auto resp = submitted->get();
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->generation, round);
      check_response(qi, *resp);
    }
  }

  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(service.Stats().failed, 0u);
  EXPECT_EQ(service.snapshot()->generation(), kRounds);
}

}  // namespace
}  // namespace s3::server
