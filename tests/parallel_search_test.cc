// Intra-query component fan-out must be *bit-for-bit* the serial
// search at every thread count: same entries, same bounds, same stats
// — across component counts, across the exact / anytime / batched
// paths, and against the NaiveSearch oracle. EXPECT_EQ on doubles is
// deliberate (the same contract batch_search_test.cc pins for lanes):
// the fan-out reorders *scheduling* only, never a floating-point
// operation, and tolerance would hide a broken reduction.
//
// ParallelSearchConcurrentTest is the TSan target: distinct searchers
// over one shared instance running fan-out queries concurrently (the
// serving layer's actual shape — N workers, one snapshot).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

// The S3_TEST_THREADS override would silently parallelize the
// threads=1 serial *reference* runs below, turning the parity sweep
// into parallel-vs-parallel. Clear it before any searcher exists.
[[maybe_unused]] const int kEnvCleared = [] {
  unsetenv("S3_TEST_THREADS");
  return 0;
}();

// A controlled instance with exactly `n_clusters` passing components:
// each cluster is a comment-linked group of documents (one connected
// component under partOf ∪ commentsOn± ∪ hasSubject±), every cluster
// contains the query keyword, and the seeker has social edges to every
// poster so all clusters are reachable. Cluster sizes are jittered so
// slots carry unequal (but not degenerate) work.
struct ClusteredInstance {
  std::unique_ptr<S3Instance> instance;
  social::UserId seeker = 0;
  KeywordId kw = kInvalidKeyword;
  size_t n_clusters = 0;
};

ClusteredInstance BuildClustered(size_t n_clusters, size_t docs_per_cluster,
                                 uint64_t seed = 11) {
  ClusteredInstance out;
  out.n_clusters = n_clusters;
  out.instance = std::make_unique<S3Instance>();
  S3Instance& inst = *out.instance;
  Rng rng(seed);

  out.seeker = inst.AddUser("seeker");
  out.kw = inst.InternKeyword("topic");
  KeywordId filler = inst.InternKeyword("filler");

  for (size_t c = 0; c < n_clusters; ++c) {
    social::UserId poster =
        inst.AddUser("poster" + std::to_string(c));
    (void)inst.AddSocialEdge(out.seeker, poster,
                             0.2 + 0.7 * rng.NextDouble());
    (void)inst.AddSocialEdge(poster, out.seeker,
                             0.2 + 0.7 * rng.NextDouble());

    const size_t n_docs = docs_per_cluster + rng.Uniform(3);
    doc::NodeId first_root = doc::kInvalidNode;
    for (size_t i = 0; i < n_docs; ++i) {
      doc::Document d("doc");
      uint32_t par = d.AddChild(0, "par");
      d.AddKeywords(par, {out.kw});
      if (rng.Chance(0.5)) {
        uint32_t extra = d.AddChild(0, "par");
        d.AddKeywords(extra, {filler});
      }
      doc::DocId id =
          inst.AddDocument(std::move(d),
                           "d" + std::to_string(c) + "_" + std::to_string(i),
                           poster)
              .value();
      if (i == 0) {
        first_root = inst.docs().RootNode(id);
      } else {
        // Comment-link every later doc onto the cluster head: one
        // component per cluster, never a bridge between clusters.
        (void)inst.AddComment(id, first_root);
      }
    }
  }
  (void)inst.Finalize();
  return out;
}

S3kOptions BaseOptions(unsigned threads) {
  S3kOptions opts;
  opts.k = 5;
  opts.score.gamma = 1.5;
  opts.max_iterations = 400;
  opts.threads = threads;
  return opts;
}

void ExpectBitIdentical(const std::vector<ResultEntry>& got,
                        const SearchStats& got_stats,
                        const std::vector<ResultEntry>& want,
                        const SearchStats& want_stats, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << what << " #" << i;
    EXPECT_EQ(got[i].lower, want[i].lower) << what << " #" << i;
    EXPECT_EQ(got[i].upper, want[i].upper) << what << " #" << i;
  }
  EXPECT_EQ(got_stats.iterations, want_stats.iterations) << what;
  EXPECT_EQ(got_stats.converged, want_stats.converged) << what;
  EXPECT_EQ(got_stats.components_discovered,
            want_stats.components_discovered)
      << what;
  EXPECT_EQ(got_stats.candidates_cleaned, want_stats.candidates_cleaned)
      << what;
  EXPECT_EQ(got_stats.kth_lower, want_stats.kth_lower) << what;
  EXPECT_EQ(got_stats.remaining_upper, want_stats.remaining_upper) << what;
  EXPECT_EQ(got_stats.certified_epsilon, want_stats.certified_epsilon)
      << what;
  // used_component_fanout is deliberately NOT compared: it reports the
  // schedule, which is exactly what may differ.
}

// The full parity sweep: threads {2,4,8} × clusters {1,2,16} ×
// {exact, anytime, batched} — every cell bit-for-bit the threads=1
// run.
TEST(ParallelSearchTest, BitForBitParitySweep) {
  for (size_t n_clusters : {size_t{1}, size_t{2}, size_t{16}}) {
    ClusteredInstance ci = BuildClustered(n_clusters, 30, 11 + n_clusters);
    const S3Instance& inst = *ci.instance;

    S3kSearcher serial(inst, BaseOptions(1));

    // Serial references.
    QueryRequest exact_q(ci.seeker, {ci.kw});
    QueryOptions any_opts;
    any_opts.mode = QueryMode::kAnytime;
    any_opts.epsilon_approx = 0.05;
    QueryRequest anytime_q(ci.seeker, {ci.kw}, any_opts);

    SearchStats exact_st, any_st;
    auto exact_ref = serial.Search(exact_q, &exact_st);
    ASSERT_TRUE(exact_ref.ok());
    EXPECT_EQ(exact_st.components_passing, n_clusters);
    EXPECT_FALSE(exact_st.used_component_fanout);
    auto any_ref = serial.Search(anytime_q, &any_st);
    ASSERT_TRUE(any_ref.ok());

    auto plan = BuildCandidatePlan(inst, {ci.kw}, true, 0.5);
    ASSERT_TRUE(plan.ok());
    std::vector<BatchSeeker> batch;
    for (size_t s = 0; s < 4; ++s) {
      batch.push_back(BatchSeeker{ci.seeker, s % 2 == 0 ? size_t{2}
                                                        : size_t{7}});
    }
    auto batch_ref = serial.SearchBatchWithPlan(batch, *plan);
    ASSERT_TRUE(batch_ref.ok());

    for (unsigned threads : {2u, 4u, 8u}) {
      const std::string tag = "clusters=" + std::to_string(n_clusters) +
                              " threads=" + std::to_string(threads);
      S3kSearcher par(inst, BaseOptions(threads));

      SearchStats st;
      auto got = par.Search(exact_q, &st);
      ASSERT_TRUE(got.ok()) << tag;
      ExpectBitIdentical(*got, st, *exact_ref, exact_st, tag + " exact");

      got = par.Search(anytime_q, &st);
      ASSERT_TRUE(got.ok()) << tag;
      ExpectBitIdentical(*got, st, *any_ref, any_st, tag + " anytime");

      auto got_batch = par.SearchBatchWithPlan(batch, *plan);
      ASSERT_TRUE(got_batch.ok()) << tag;
      ASSERT_EQ(got_batch->size(), batch_ref->size()) << tag;
      for (size_t s = 0; s < batch.size(); ++s) {
        ExpectBitIdentical((*got_batch)[s].entries, (*got_batch)[s].stats,
                           (*batch_ref)[s].entries, (*batch_ref)[s].stats,
                           tag + " batched member " + std::to_string(s));
      }
    }
  }
}

// The sweep above is vacuous if the cost model never picks the fan-out
// path. Pin that the 16-cluster instance actually crosses the
// work threshold with threads >= 2 (and that the verdict, not the
// result, is what the thread count changes).
TEST(ParallelSearchTest, FatQueryActuallyUsesFanout) {
  ClusteredInstance ci = BuildClustered(16, 30, 27);
  S3kSearcher par(*ci.instance, BaseOptions(4));
  SearchStats st;
  auto got = par.Search(QueryRequest(ci.seeker, {ci.kw}), &st);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(st.used_component_fanout)
      << "cost model skipped the component fan-out on a 16-component "
         "instance; the parity sweep is not exercising the parallel path";
  EXPECT_TRUE(st.converged);
  EXPECT_FALSE(got->empty());
}

// threads=0 resolves to hardware_concurrency (>= 1) and stays
// bit-for-bit with serial.
TEST(ParallelSearchTest, AutoThreadsMatchesSerial) {
  ClusteredInstance ci = BuildClustered(4, 6, 5);
  S3kSearcher serial(*ci.instance, BaseOptions(1));
  S3kSearcher auto_par(*ci.instance, BaseOptions(0));
  SearchStats serial_st, auto_st;
  QueryRequest q(ci.seeker, {ci.kw});
  auto want = serial.Search(q, &serial_st);
  auto got = auto_par.Search(q, &auto_st);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*got, auto_st, *want, serial_st, "auto threads");
}

// A mid-search thread-limit (the serving layer's per-query budget
// share) changes schedules only: limits 1, 2 and "uncapped" all match
// the serial answer bitwise on the same searcher.
TEST(ParallelSearchTest, ThreadLimitIsResultInvisible) {
  ClusteredInstance ci = BuildClustered(16, 30, 9);
  S3kSearcher serial(*ci.instance, BaseOptions(1));
  S3kSearcher par(*ci.instance, BaseOptions(8));
  QueryRequest q(ci.seeker, {ci.kw});
  SearchStats want_st;
  auto want = serial.Search(q, &want_st);
  ASSERT_TRUE(want.ok());
  for (unsigned limit : {1u, 2u, 0u}) {
    par.set_thread_limit(limit);
    SearchStats st;
    auto got = par.Search(q, &st);
    ASSERT_TRUE(got.ok());
    ExpectBitIdentical(*got, st, *want, want_st,
                       "thread_limit=" + std::to_string(limit));
  }
}

// Converged proximity via long matrix iteration (γ^-iters ≈ 0) — the
// oracle construction shared with tests/batch_search_test.cc.
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] += CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

// Exact converged score of one document for the query.
double ExactScore(const S3Instance& inst, const Query& q,
                  const S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  QueryExtension ext(q.keywords.size());
  for (size_t i = 0; i < q.keywords.size(); ++i) {
    for (KeywordId k : inst.ExtendKeyword(q.keywords[i])) ext[i].insert(k);
  }
  ConnectionBuilder b(inst, opts.score.eta);
  auto cc =
      b.Build(inst.components().Of(social::EntityId::Fragment(node)), ext);
  for (const Candidate& c : cc.candidates) {
    if (c.node == node) return CandidateScore(c, prox);
  }
  return 0.0;
}

// Ground truth, not just internal consistency: the fan-out answer on
// the clustered instance agrees with the brute-force oracle (same
// result count, same descending exact-score multiset, and the
// certified intervals bracket the converged scores).
TEST(ParallelSearchTest, FanoutMatchesNaiveOracle) {
  ClusteredInstance ci = BuildClustered(16, 30, 27);
  const S3Instance& inst = *ci.instance;
  S3kOptions opts = BaseOptions(4);
  S3kSearcher par(inst, opts);
  SearchStats st;
  Query q{ci.seeker, {ci.kw}};
  auto got = par.Search(QueryRequest(q.seeker, q.keywords), &st);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(st.converged);
  ASSERT_TRUE(st.used_component_fanout);

  auto prox = ConvergedProx(inst, ci.seeker, opts.score.gamma);
  auto oracle = NaiveSearchWithProx(inst, q, opts, prox);
  ASSERT_EQ(got->size(), oracle.size());
  std::vector<double> got_scores, want_scores;
  for (size_t r = 0; r < oracle.size(); ++r) {
    const double exact = ExactScore(inst, q, opts, (*got)[r].node, prox);
    EXPECT_LE((*got)[r].lower, exact + 1e-7) << "rank " << r;
    EXPECT_GE((*got)[r].upper, exact - 1e-7) << "rank " << r;
    got_scores.push_back(exact);
    want_scores.push_back(oracle[r].lower);
  }
  std::sort(got_scores.rbegin(), got_scores.rend());
  std::sort(want_scores.rbegin(), want_scores.rend());
  for (size_t r = 0; r < want_scores.size(); ++r) {
    EXPECT_NEAR(got_scores[r], want_scores[r], 1e-7) << "rank " << r;
  }
}

// Random instances (the property-test generator) across thread
// counts: no hand-built structure, still bitwise.
TEST(ParallelSearchTest, RandomInstancesStayBitForBit) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    s3::testing::RandomInstanceParams p;
    p.seed = seed;
    p.n_users = 8;
    p.n_docs = 14;
    auto ri = s3::testing::BuildRandomInstance(p);
    const S3Instance& inst = *ri.instance;

    S3kSearcher serial(inst, BaseOptions(1));
    S3kSearcher par(inst, BaseOptions(4));
    for (uint32_t u = 0; u < 4; ++u) {
      QueryRequest q(static_cast<social::UserId>(u),
                     {ri.keywords[seed % ri.keywords.size()]});
      SearchStats want_st, got_st;
      auto want = serial.Search(q, &want_st);
      auto got = par.Search(q, &got_st);
      ASSERT_EQ(want.ok(), got.ok()) << "seed " << seed << " u " << u;
      if (!want.ok()) continue;
      ExpectBitIdentical(*got, got_st, *want, want_st,
                         "seed " + std::to_string(seed) + " seeker " +
                             std::to_string(u));
    }
  }
}

// ---- TSan target -------------------------------------------------------------
//
// The serving shape: distinct searchers (each with its own intra-query
// pool) over ONE shared instance, running fan-out queries truly
// concurrently. Any write to shared state from the per-slot tasks is a
// race TSan will see; the assertions additionally pin that concurrency
// never changes an answer.
TEST(ParallelSearchConcurrentTest, ConcurrentFanoutQueriesOverSharedInstance) {
  ClusteredInstance ci = BuildClustered(16, 30, 33);
  const S3Instance& inst = *ci.instance;

  SearchStats ref_st;
  S3kSearcher serial(inst, BaseOptions(1));
  QueryRequest q(ci.seeker, {ci.kw});
  auto ref = serial.Search(q, &ref_st);
  ASSERT_TRUE(ref.ok());

  constexpr size_t kClients = 4;
  constexpr size_t kQueriesEach = 6;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      S3kSearcher searcher(inst, BaseOptions(2));
      for (size_t i = 0; i < kQueriesEach; ++i) {
        SearchStats st;
        auto got = searcher.Search(q, &st);
        if (!got.ok() || got->size() != ref->size()) {
          mismatches[c]++;
          continue;
        }
        for (size_t r = 0; r < ref->size(); ++r) {
          if ((*got)[r].node != (*ref)[r].node ||
              (*got)[r].lower != (*ref)[r].lower ||
              (*got)[r].upper != (*ref)[r].upper) {
            mismatches[c]++;
          }
        }
        if (st.kth_lower != ref_st.kth_lower ||
            st.iterations != ref_st.iterations) {
          mismatches[c]++;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
}

// Batched fan-out under concurrency: each client runs width-4 batches
// through its own searcher against the shared instance.
TEST(ParallelSearchConcurrentTest, ConcurrentBatchedFanout) {
  ClusteredInstance ci = BuildClustered(16, 30, 41);
  const S3Instance& inst = *ci.instance;
  auto plan = BuildCandidatePlan(inst, {ci.kw}, true, 0.5);
  ASSERT_TRUE(plan.ok());

  std::vector<BatchSeeker> batch(4);
  for (size_t s = 0; s < batch.size(); ++s) {
    batch[s].seeker = ci.seeker;
    batch[s].k = 3 + s;
  }
  S3kSearcher serial(inst, BaseOptions(1));
  auto ref = serial.SearchBatchWithPlan(batch, *plan);
  ASSERT_TRUE(ref.ok());

  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      S3kSearcher searcher(inst, BaseOptions(2));
      for (int round = 0; round < 4; ++round) {
        auto got = searcher.SearchBatchWithPlan(batch, *plan);
        if (!got.ok() || got->size() != ref->size()) {
          mismatches[c]++;
          continue;
        }
        for (size_t s = 0; s < ref->size(); ++s) {
          if ((*got)[s].entries.size() != (*ref)[s].entries.size() ||
              (*got)[s].stats.kth_lower != (*ref)[s].stats.kth_lower) {
            mismatches[c]++;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
}

}  // namespace
}  // namespace s3::core
