#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/flatten.h"
#include "baseline/topks.h"
#include "baseline/uit.h"
#include "test_fixtures.h"

namespace s3::baseline {
namespace {

// ---- UitInstance -----------------------------------------------------------

class UitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uit_.SetUserCount(4);
    i0_ = uit_.AddItem();
    i1_ = uit_.AddItem();
  }
  UitInstance uit_;
  ItemId i0_ = 0, i1_ = 0;
};

TEST_F(UitTest, TriplesDedupPerUser) {
  uit_.AddTriple(0, i0_, 5);
  uit_.AddTriple(0, i0_, 5);
  uit_.AddTriple(1, i0_, 5);
  EXPECT_EQ(uit_.TripleCount(), 2u);
  EXPECT_EQ(uit_.Taggers(i0_, 5).size(), 2u);
  EXPECT_EQ(uit_.MaxTaggers(5), 2u);
}

TEST_F(UitTest, ItemsWithTag) {
  uit_.AddTriple(0, i0_, 5);
  uit_.AddTriple(1, i1_, 5);
  uit_.AddTriple(2, i1_, 6);
  EXPECT_EQ(uit_.ItemsWithTag(5).size(), 2u);
  EXPECT_EQ(uit_.ItemsWithTag(6).size(), 1u);
  EXPECT_TRUE(uit_.ItemsWithTag(7).empty());
}

TEST_F(UitTest, TfAccumulatesAndMaxTracks) {
  uit_.AddItemTerm(i0_, 9, 2);
  uit_.AddItemTerm(i0_, 9, 1);
  uit_.AddItemTerm(i1_, 9, 1);
  EXPECT_EQ(uit_.Tf(i0_, 9), 3u);
  EXPECT_EQ(uit_.Tf(i1_, 9), 1u);
  EXPECT_EQ(uit_.MaxTf(9), 3u);
  EXPECT_EQ(uit_.ItemsWithTerm(9).size(), 2u);
}

TEST_F(UitTest, UserLinksStored) {
  uit_.AddUserLink(0, 1, 0.5);
  uit_.AddUserLink(0, 2, 0.25);
  EXPECT_EQ(uit_.LinksOf(0).size(), 2u);
  EXPECT_TRUE(uit_.LinksOf(3).empty());
}

// ---- Flattening -------------------------------------------------------------

TEST(FlattenTest, Figure3ComponentsBecomeItems) {
  auto fig = s3::testing::BuildFigure3();
  Flattened flat = FlattenToUit(*fig.instance);
  // Figure 3 has a single component (URI0 + URI1 + tags) -> one item.
  EXPECT_EQ(flat.uit.ItemCount(), 1u);
  EXPECT_EQ(flat.ItemOfNode(*fig.instance, fig.uri0),
            flat.ItemOfNode(*fig.instance, fig.uri1));
}

TEST(FlattenTest, SocialLinksPreserveWeights) {
  auto fig = s3::testing::BuildFigure3();
  Flattened flat = FlattenToUit(*fig.instance);
  bool found = false;
  for (const UserLink& l : flat.uit.LinksOf(fig.u0)) {
    if (l.to == fig.u3) {
      EXPECT_NEAR(l.weight, 0.3, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlattenTest, ContentBecomesTriplesByPoster) {
  auto fig = s3::testing::BuildFigure3();
  Flattened flat = FlattenToUit(*fig.instance);
  ItemId item = flat.ItemOfNode(*fig.instance, fig.uri0);
  // k0 appears in URI0.0.0, posted by u0 => triple (u0, item, k0).
  auto taggers = flat.uit.Taggers(item, fig.k0);
  EXPECT_NE(std::find(taggers.begin(), taggers.end(), fig.u0),
            taggers.end());
}

TEST(FlattenTest, TagBecomesTripleByAuthor) {
  auto fig = s3::testing::BuildFigure3();
  Flattened flat = FlattenToUit(*fig.instance);
  ItemId item = flat.ItemOfNode(*fig.instance, fig.uri0);
  auto taggers = flat.uit.Taggers(item, fig.k2);
  EXPECT_NE(std::find(taggers.begin(), taggers.end(), fig.u2),
            taggers.end());
}

TEST(FlattenTest, EndorsementsDropped) {
  auto fig = s3::testing::BuildFigure3();
  Flattened flat = FlattenToUit(*fig.instance);
  // a1 is keyword-less: it must produce no triple.
  // All triples involve k0/k1/k2 only; count them.
  EXPECT_GT(flat.uit.TripleCount(), 0u);
  // No way to query "triples of endorsement": assert item term state
  // instead — the endorsement's author u3 posted nothing in Figure 3.
  EXPECT_TRUE(flat.uit.TriplesOf(fig.u3).empty());
}

// ---- TopkS -------------------------------------------------------------------

class TopkSTest : public ::testing::Test {
 protected:
  // Social line u0 -> u1 (0.5) -> u2 (0.5); items tagged by u1 and u2.
  void SetUp() override {
    uit_.SetUserCount(3);
    near_ = uit_.AddItem();
    far_ = uit_.AddItem();
    uit_.AddUserLink(0, 1, 0.5);
    uit_.AddUserLink(1, 2, 0.5);
    uit_.AddTriple(1, near_, kTag);
    uit_.AddTriple(2, far_, kTag);
  }
  static constexpr KeywordId kTag = 7;
  UitInstance uit_;
  ItemId near_ = 0, far_ = 0;
};

TEST_F(TopkSTest, SociallyCloserItemWins) {
  TopkSOptions opts;
  opts.alpha = 1.0;  // social only
  opts.k = 2;
  TopkSSearcher searcher(uit_, opts);
  TopkSStats stats;
  auto result = searcher.Search(0, {kTag}, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].item, near_);
  EXPECT_NEAR((*result)[0].score, 0.5, 1e-9);   // σ(u0,u1) = 0.5
  EXPECT_NEAR((*result)[1].score, 0.25, 1e-9);  // σ(u0,u2) = 0.25
  EXPECT_TRUE(stats.converged);
}

TEST_F(TopkSTest, TextualScoreBlendsWithAlpha) {
  uit_.AddItemTerm(far_, kTag, 3);
  TopkSOptions opts;
  opts.alpha = 0.0;  // text only
  opts.k = 2;
  TopkSSearcher searcher(uit_, opts);
  auto result = searcher.Search(0, {kTag}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);  // `near_` has no text at all
  EXPECT_EQ((*result)[0].item, far_);
  EXPECT_NEAR((*result)[0].score, 1.0, 1e-9);  // tf/maxtf = 1
}

TEST_F(TopkSTest, UnknownSeekerRejected) {
  TopkSSearcher searcher(uit_, TopkSOptions{});
  EXPECT_FALSE(searcher.Search(99, {kTag}).ok());
  EXPECT_FALSE(searcher.Search(0, {}).ok());
}

TEST_F(TopkSTest, UnreachableTaggersScoreZero) {
  // u2 tags an item, but the seeker is u2's descendant with no outgoing
  // links: only textual items can be reached.
  TopkSOptions opts;
  opts.alpha = 1.0;
  TopkSSearcher searcher(uit_, opts);
  auto result = searcher.Search(2, {kTag}, nullptr);
  ASSERT_TRUE(result.ok());
  // u2 can reach only itself: item far_ (tagged by u2, σ=1).
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].item, far_);
}

TEST_F(TopkSTest, ExaminedItemsTracked) {
  TopkSOptions opts;
  opts.alpha = 0.5;
  TopkSSearcher searcher(uit_, opts);
  TopkSStats stats;
  auto result = searcher.Search(0, {kTag}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.items_examined, 2u);
  EXPECT_EQ(stats.examined_items.size(), 2u);
}

TEST_F(TopkSTest, EarlyTerminationMatchesExhaustive) {
  // A larger chain: early-stop result must equal the full scan.
  UitInstance uit;
  const int n = 40;
  uit.SetUserCount(n);
  std::vector<ItemId> items;
  for (int i = 0; i + 1 < n; ++i) {
    uit.AddUserLink(i, i + 1, 0.9);
  }
  for (int i = 1; i < n; ++i) {
    ItemId it = uit.AddItem();
    uit.AddTriple(i, it, 3);
    items.push_back(it);
  }
  TopkSOptions opts;
  opts.alpha = 1.0;
  opts.k = 5;
  TopkSSearcher searcher(uit, opts);
  auto result = searcher.Search(0, {3}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  // Best items are those tagged by the nearest users: σ = 0.9^i.
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ((*result)[r].item, items[r]);
    EXPECT_NEAR((*result)[r].score, std::pow(0.9, r + 1), 1e-6);
  }
}

}  // namespace
}  // namespace s3::baseline
