#include <gtest/gtest.h>

#include <algorithm>

#include "workload/business_gen.h"
#include "workload/instance_stats.h"
#include "workload/microblog_gen.h"
#include "workload/ontology_gen.h"
#include "workload/query_gen.h"
#include "workload/review_gen.h"

namespace s3::workload {
namespace {

MicroblogParams SmallMicroblog(uint64_t seed = 42) {
  MicroblogParams p;
  p.seed = seed;
  p.n_users = 100;
  p.n_tweets = 300;
  p.vocab_size = 300;
  p.n_hashtags = 20;
  p.ontology.n_classes = 20;
  p.ontology.n_entities = 100;
  return p;
}

// ---- Ontology -----------------------------------------------------------

TEST(OntologyGenTest, ProducesAnchorsWithExtensions) {
  core::S3Instance inst;
  OntologyParams p;
  p.n_classes = 30;
  p.n_entities = 200;
  OntologyInfo info = GenerateOntology(inst, p);
  ASSERT_TRUE(inst.Finalize().ok());
  EXPECT_EQ(info.class_keywords.size(), 30u);
  EXPECT_EQ(info.entity_keywords.size(), 200u);
  // At least one class keyword must extend to > 1 keyword.
  size_t extended = 0;
  for (KeywordId k : info.class_keywords) {
    if (inst.ExtendKeyword(k).size() > 1) ++extended;
  }
  EXPECT_GT(extended, 0u);
}

TEST(OntologyGenTest, DeterministicForSeed) {
  core::S3Instance a, b;
  OntologyParams p;
  GenerateOntology(a, p);
  GenerateOntology(b, p);
  EXPECT_EQ(a.rdf_graph().size(), b.rdf_graph().size());
}

// ---- Generators -----------------------------------------------------------

TEST(MicroblogGenTest, ShapeMatchesConstruction) {
  GenResult g = GenerateMicroblog(SmallMicroblog());
  const auto& inst = *g.instance;
  EXPECT_TRUE(inst.finalized());
  EXPECT_EQ(inst.UserCount(), 100u);
  // Base tweets = ~8.1% of 300, replies ~6.9% => docs ~45.
  EXPECT_GT(inst.docs().DocumentCount(), 20u);
  EXPECT_LT(inst.docs().DocumentCount(), 80u);
  // Retweets became tags: ~255.
  EXPECT_GT(inst.TagCount(), 150u);
  // Every document has >= 2 children (text + date).
  for (doc::DocId d = 0; d < inst.docs().DocumentCount(); ++d) {
    EXPECT_GE(inst.docs().document(d).NodeCount(), 3u);
  }
  EXPECT_FALSE(g.semantic_anchors.empty());
}

TEST(MicroblogGenTest, DeterministicForSeed) {
  GenResult a = GenerateMicroblog(SmallMicroblog(7));
  GenResult b = GenerateMicroblog(SmallMicroblog(7));
  EXPECT_EQ(a.instance->docs().NodeCount(), b.instance->docs().NodeCount());
  EXPECT_EQ(a.instance->edges().size(), b.instance->edges().size());
  EXPECT_EQ(a.instance->TagCount(), b.instance->TagCount());
}

TEST(MicroblogGenTest, DifferentSeedsDiffer) {
  GenResult a = GenerateMicroblog(SmallMicroblog(7));
  GenResult b = GenerateMicroblog(SmallMicroblog(8));
  EXPECT_NE(a.instance->edges().size(), b.instance->edges().size());
}

TEST(ReviewGenTest, ThreadedCommentsShareComponents) {
  ReviewParams p;
  p.seed = 5;
  p.n_users = 60;
  p.n_movies = 30;
  GenResult g = GenerateReviewSite(p);
  const auto& inst = *g.instance;
  // One component per movie (first comment + replies).
  EXPECT_EQ(inst.components().ComponentCount(), 30u);
  EXPECT_TRUE(g.semantic_anchors.empty());  // I2: no ontology
  EXPECT_EQ(inst.TagCount(), 0u);           // I2: no tags
}

TEST(BusinessGenTest, Shape) {
  BusinessParams p;
  p.seed = 6;
  p.n_users = 80;
  p.n_businesses = 25;
  p.ontology.n_classes = 15;
  p.ontology.n_entities = 60;
  GenResult g = GenerateBusinessReviews(p);
  const auto& inst = *g.instance;
  EXPECT_EQ(inst.components().ComponentCount(), 25u);
  EXPECT_FALSE(g.semantic_anchors.empty());
  EXPECT_EQ(inst.TagCount(), 0u);  // I3: no tags
  // Social edges have weight 1 (friend lists).
  for (const auto& e : inst.edges().edges()) {
    if (e.label == social::EdgeLabel::kSocial) {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
  }
}

// ---- Query generation ----------------------------------------------------

class QueryGenTest : public ::testing::Test {
 protected:
  void SetUp() override { gen_ = GenerateMicroblog(SmallMicroblog()); }
  GenResult gen_;
};

TEST_F(QueryGenTest, WorkloadShape) {
  WorkloadSpec spec;
  spec.freq = Frequency::kCommon;
  spec.n_keywords = 5;
  spec.k = 10;
  spec.n_queries = 50;
  QuerySet qs = BuildWorkload(*gen_.instance, gen_.semantic_anchors, spec);
  EXPECT_EQ(qs.label, "+,5,10");
  EXPECT_EQ(qs.k, 10u);
  ASSERT_EQ(qs.queries.size(), 50u);
  for (const auto& q : qs.queries) {
    EXPECT_EQ(q.keywords.size(), 5u);
    EXPECT_LT(q.seeker, gen_.instance->UserCount());
    // Keywords are distinct within a query.
    auto sorted = q.keywords;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
  }
}

TEST_F(QueryGenTest, RareKeywordsAreRarer) {
  WorkloadSpec rare;
  rare.freq = Frequency::kRare;
  rare.anchor_prob = 0.0;
  rare.n_queries = 40;
  WorkloadSpec common = rare;
  common.freq = Frequency::kCommon;
  auto qs_rare = BuildWorkload(*gen_.instance, {}, rare);
  auto qs_common = BuildWorkload(*gen_.instance, {}, common);
  auto avg_df = [&](const QuerySet& qs) {
    double total = 0;
    size_t n = 0;
    for (const auto& q : qs.queries) {
      for (KeywordId k : q.keywords) {
        total += gen_.instance->index().DocumentFrequency(k);
        ++n;
      }
    }
    return total / n;
  };
  EXPECT_LT(avg_df(qs_rare), avg_df(qs_common));
}

TEST_F(QueryGenTest, DeterministicForSeed) {
  WorkloadSpec spec;
  spec.seed = 77;
  auto a = BuildWorkload(*gen_.instance, gen_.semantic_anchors, spec);
  auto b = BuildWorkload(*gen_.instance, gen_.semantic_anchors, spec);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].seeker, b.queries[i].seeker);
    EXPECT_EQ(a.queries[i].keywords, b.queries[i].keywords);
  }
}

TEST_F(QueryGenTest, LabelFormat) {
  WorkloadSpec spec;
  spec.freq = Frequency::kRare;
  spec.n_keywords = 1;
  spec.k = 5;
  EXPECT_EQ(WorkloadLabel(spec), "-,1,5");
}

// ---- Instance stats ----------------------------------------------------------

TEST_F(QueryGenTest, StatsAreConsistent) {
  InstanceStats s = ComputeStats(*gen_.instance);
  EXPECT_EQ(s.users, gen_.instance->UserCount());
  EXPECT_EQ(s.documents, gen_.instance->docs().DocumentCount());
  EXPECT_EQ(s.tags, gen_.instance->TagCount());
  EXPECT_GT(s.keyword_occurrences, 0u);
  EXPECT_GT(s.social_edges, 0u);
  EXPECT_GE(s.network_edges, s.social_edges);
  EXPECT_GT(s.rdf_triples, 0u);
  std::string rendered = FormatStats("I1", s);
  EXPECT_NE(rendered.find("I1"), std::string::npos);
  EXPECT_NE(rendered.find("Documents"), std::string::npos);
}

}  // namespace
}  // namespace s3::workload
