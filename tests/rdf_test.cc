#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/extension.h"
#include "rdf/saturation.h"
#include "rdf/term_dictionary.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"

namespace s3::rdf {
namespace {

// ---- TermDictionary -----------------------------------------------------

TEST(TermDictionaryTest, UriAndLiteralAreDistinct) {
  TermDictionary d;
  TermId u = d.InternUri("degree");
  TermId l = d.InternLiteral("degree");
  EXPECT_NE(u, l);
  EXPECT_EQ(d.Kind(u), TermKind::kUri);
  EXPECT_EQ(d.Kind(l), TermKind::kLiteral);
}

TEST(TermDictionaryTest, InternIsStable) {
  TermDictionary d;
  TermId a = d.InternUri("x");
  d.InternUri("y");
  EXPECT_EQ(d.InternUri("x"), a);
  EXPECT_EQ(d.Text(a), "x");
}

TEST(TermDictionaryTest, FindMissing) {
  TermDictionary d;
  EXPECT_EQ(d.Find("nope", TermKind::kUri), kInvalidTerm);
}

// ---- TripleStore ----------------------------------------------------------

class TripleStoreTest : public ::testing::Test {
 protected:
  TermDictionary dict_;
  TripleStore store_;

  TermId U(const char* s) { return dict_.InternUri(s); }
};

TEST_F(TripleStoreTest, AddAndContains) {
  EXPECT_TRUE(store_.Add(U("a"), U("p"), U("b")));
  EXPECT_TRUE(store_.Contains(U("a"), U("p"), U("b")));
  EXPECT_FALSE(store_.Contains(U("a"), U("p"), U("c")));
}

TEST_F(TripleStoreTest, ReAddUpdatesWeightNotSize) {
  store_.Add(U("a"), U("p"), U("b"), 1.0);
  EXPECT_FALSE(store_.Add(U("a"), U("p"), U("b"), 0.5));
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_DOUBLE_EQ(store_.Weight(U("a"), U("p"), U("b")), 0.5);
}

TEST_F(TripleStoreTest, DefaultWeightIsOne) {
  store_.Add(U("a"), U("p"), U("b"));
  EXPECT_DOUBLE_EQ(store_.Weight(U("a"), U("p"), U("b")), 1.0);
}

TEST_F(TripleStoreTest, ObjectsAndSubjects) {
  store_.Add(U("a"), U("p"), U("b"));
  store_.Add(U("a"), U("p"), U("c"));
  store_.Add(U("d"), U("p"), U("b"));
  auto objs = store_.Objects(U("a"), U("p"));
  EXPECT_EQ(objs.size(), 2u);
  auto subs = store_.Subjects(U("p"), U("b"));
  EXPECT_EQ(subs.size(), 2u);
}

TEST_F(TripleStoreTest, WithPropertyIndex) {
  store_.Add(U("a"), U("p"), U("b"));
  store_.Add(U("c"), U("q"), U("d"));
  EXPECT_EQ(store_.WithProperty(U("p")).size(), 1u);
  EXPECT_EQ(store_.WithProperty(U("q")).size(), 1u);
  EXPECT_TRUE(store_.WithProperty(U("zz")).empty());
}

// ---- Saturation -------------------------------------------------------------

class SaturationTest : public ::testing::Test {
 protected:
  TermDictionary dict_;
  TripleStore store_;

  TermId U(const char* s) { return dict_.InternUri(s); }
  TermId type() { return dict_.InternUri(vocab::kType); }
  TermId sc() { return dict_.InternUri(vocab::kSubClassOf); }
  TermId sp() { return dict_.InternUri(vocab::kSubPropertyOf); }
  TermId dom() { return dict_.InternUri(vocab::kDomain); }
  TermId rng() { return dict_.InternUri(vocab::kRange); }
};

TEST_F(SaturationTest, SubClassTransitivity) {
  // M.S.Degree ≺sc Degree ≺sc Qualification
  store_.Add(U("MS"), sc(), U("Degree"));
  store_.Add(U("Degree"), sc(), U("Qualification"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("MS"), sc(), U("Qualification")));
}

TEST_F(SaturationTest, TypeLiftThroughSubclass) {
  store_.Add(U("MS"), sc(), U("Degree"));
  store_.Add(U("myms"), type(), U("MS"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("myms"), type(), U("Degree")));
}

TEST_F(SaturationTest, TypeLiftOrderIndependent) {
  // Schema arrives after the assertion: rule must still fire.
  store_.Add(U("myms"), type(), U("MS"));
  store_.Add(U("MS"), sc(), U("Degree"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("myms"), type(), U("Degree")));
}

TEST_F(SaturationTest, SubPropertyPropagation) {
  // workingWith ≺sp acquaintedWith (paper's example)
  store_.Add(U("workingWith"), sp(), U("acquaintedWith"));
  store_.Add(U("u1"), U("workingWith"), U("u0"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("u1"), U("acquaintedWith"), U("u0")));
}

TEST_F(SaturationTest, SubPropertyTransitivity) {
  store_.Add(U("p1"), sp(), U("p2"));
  store_.Add(U("p2"), sp(), U("p3"));
  store_.Add(U("a"), U("p1"), U("b"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("p1"), sp(), U("p3")));
  EXPECT_TRUE(store_.Contains(U("a"), U("p3"), U("b")));
}

TEST_F(SaturationTest, DomainTyping) {
  // hasDegreeFrom ←d Graduate (paper's example)
  store_.Add(U("hasDegreeFrom"), dom(), U("Graduate"));
  store_.Add(U("u2"), U("hasDegreeFrom"), U("UAlberta"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("u2"), type(), U("Graduate")));
}

TEST_F(SaturationTest, RangeTyping) {
  // hasFriend ↪r Person entails u0 type Person (paper §2.1 example).
  store_.Add(U("hasFriend"), rng(), U("Person"));
  store_.Add(U("u1"), U("hasFriend"), U("u0"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("u0"), type(), U("Person")));
}

TEST_F(SaturationTest, DomainRangeAfterSubProperty) {
  // An assertion of a sub-property is also an assertion of the super
  // property, which then fires the super property's domain typing.
  store_.Add(U("follows"), sp(), U("social"));
  store_.Add(U("social"), dom(), U("Agent"));
  store_.Add(U("a"), U("follows"), U("b"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("a"), U("social"), U("b")));
  EXPECT_TRUE(store_.Contains(U("a"), type(), U("Agent")));
}

TEST_F(SaturationTest, WeightedTriplesDoNotFireRules) {
  // Only weight-1 triples participate in entailment (paper §2.1).
  store_.Add(U("MS"), sc(), U("Degree"));
  store_.Add(U("x"), type(), U("MS"), 0.5);
  Saturate(dict_, store_);
  EXPECT_FALSE(store_.Contains(U("x"), type(), U("Degree")));
}

TEST_F(SaturationTest, FixpointIsStable) {
  store_.Add(U("a"), sc(), U("b"));
  store_.Add(U("b"), sc(), U("c"));
  store_.Add(U("x"), type(), U("a"));
  Saturate(dict_, store_);
  size_t size_after_first = store_.size();
  SaturationStats again = Saturate(dict_, store_);
  EXPECT_EQ(store_.size(), size_after_first);
  EXPECT_EQ(again.derived_triples, 0u);
}

TEST_F(SaturationTest, CyclicSubclassTerminates) {
  store_.Add(U("a"), sc(), U("b"));
  store_.Add(U("b"), sc(), U("a"));
  store_.Add(U("x"), type(), U("a"));
  SaturationStats stats = Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("x"), type(), U("b")));
  EXPECT_GT(stats.rounds, 0u);
}

TEST_F(SaturationTest, DeepChainFullyClosed) {
  const int n = 30;
  for (int i = 0; i + 1 < n; ++i) {
    store_.Add(U(("c" + std::to_string(i)).c_str()), sc(),
               U(("c" + std::to_string(i + 1)).c_str()));
  }
  store_.Add(U("inst"), type(), U("c0"));
  Saturate(dict_, store_);
  EXPECT_TRUE(store_.Contains(U("inst"), type(), U("c29")));
  // c0 subclass of every other class.
  for (int i = 1; i < n; ++i) {
    EXPECT_TRUE(store_.Contains(U("c0"), sc(),
                                U(("c" + std::to_string(i)).c_str())));
  }
}

// ---- Extension --------------------------------------------------------------

class ExtensionTest : public SaturationTest {};

TEST_F(ExtensionTest, ContainsSelf) {
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("anything"));
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], U("anything"));
}

TEST_F(ExtensionTest, PaperDegreeExample) {
  // M.S. ≺sc degree  =>  M.S. ∈ Ext(degree)
  store_.Add(U("M.S."), sc(), U("degree"));
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("degree"));
  EXPECT_NE(std::find(ext.begin(), ext.end(), U("M.S.")), ext.end());
}

TEST_F(ExtensionTest, InstancesJoinExtension) {
  store_.Add(U("ualberta"), type(), U("university"));
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("university"));
  EXPECT_NE(std::find(ext.begin(), ext.end(), U("ualberta")), ext.end());
}

TEST_F(ExtensionTest, TransitiveSpecializationsIncluded) {
  store_.Add(U("msdegree"), sc(), U("degree"));
  store_.Add(U("cs_msdegree"), sc(), U("msdegree"));
  store_.Add(U("mine"), type(), U("cs_msdegree"));
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("degree"));
  // Saturation closes ≺sc and lifts types, so all three join Ext.
  EXPECT_NE(std::find(ext.begin(), ext.end(), U("msdegree")), ext.end());
  EXPECT_NE(std::find(ext.begin(), ext.end(), U("cs_msdegree")), ext.end());
  EXPECT_NE(std::find(ext.begin(), ext.end(), U("mine")), ext.end());
}

TEST_F(ExtensionTest, NoGeneralization) {
  // Ext must never include superclasses (no loss of precision, §2.1).
  store_.Add(U("msdegree"), sc(), U("degree"));
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("msdegree"));
  EXPECT_EQ(std::find(ext.begin(), ext.end(), U("degree")), ext.end());
}

TEST_F(ExtensionTest, SubPropertiesIncluded) {
  store_.Add(U("vdk:follow"), sp(), U("S3:social"));
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("S3:social"));
  EXPECT_NE(std::find(ext.begin(), ext.end(), U("vdk:follow")), ext.end());
}

TEST_F(ExtensionTest, NoDuplicates) {
  store_.Add(U("a"), sc(), U("k"));
  store_.Add(U("a"), type(), U("k"));  // both rules hit the same term
  Saturate(dict_, store_);
  auto ext = Extension(dict_, store_, U("k"));
  std::sort(ext.begin(), ext.end());
  EXPECT_EQ(std::adjacent_find(ext.begin(), ext.end()), ext.end());
}

}  // namespace
}  // namespace s3::rdf
