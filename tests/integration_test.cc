// End-to-end tests: generated instances -> workloads -> S3k + TopkS ->
// quality metrics. This is the Fig. 5/8 pipeline at test scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/flatten.h"
#include "baseline/topks.h"
#include "core/s3k.h"
#include "eval/metrics.h"
#include "workload/business_gen.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"
#include "workload/review_gen.h"

namespace s3 {
namespace {

workload::GenResult SmallInstance() {
  workload::MicroblogParams p;
  p.seed = 21;
  p.n_users = 150;
  p.n_tweets = 400;
  p.vocab_size = 400;
  p.n_hashtags = 30;
  p.ontology.n_classes = 25;
  p.ontology.n_entities = 150;
  return workload::GenerateMicroblog(p);
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { gen_ = SmallInstance(); }
  workload::GenResult gen_;
};

TEST_F(PipelineTest, S3kAnswersAllWorkloads) {
  for (auto freq : {workload::Frequency::kRare, workload::Frequency::kCommon}) {
    for (size_t l : {1u, 3u}) {
      workload::WorkloadSpec spec;
      spec.freq = freq;
      spec.n_keywords = l;
      spec.k = 5;
      spec.n_queries = 10;
      auto qs = workload::BuildWorkload(*gen_.instance,
                                        gen_.semantic_anchors, spec);
      core::S3kOptions opts;
      opts.k = spec.k;
      opts.max_iterations = 128;
      core::S3kSearcher searcher(*gen_.instance, opts);
      size_t converged = 0;
      for (const auto& q : qs.queries) {
        core::SearchStats stats;
        auto result = searcher.Search(q, &stats);
        ASSERT_TRUE(result.ok()) << qs.label;
        if (stats.converged) ++converged;
        EXPECT_LE(result->size(), spec.k);
        // No vertical neighbors in any answer.
        for (size_t i = 0; i < result->size(); ++i) {
          for (size_t j = i + 1; j < result->size(); ++j) {
            EXPECT_FALSE(gen_.instance->docs().AreVerticalNeighbors(
                (*result)[i].node, (*result)[j].node));
          }
        }
        // Upper bounds are sorted (results ranked by best possible
        // score).
        for (size_t i = 0; i + 1 < result->size(); ++i) {
          EXPECT_GE((*result)[i].upper, (*result)[i + 1].upper - 1e-9);
        }
      }
      // The threshold-based stop should fire for most queries (it
      // always did in the paper's experiments).
      EXPECT_GT(converged, qs.queries.size() / 2) << qs.label;
    }
  }
}

TEST_F(PipelineTest, SemanticsWidenCandidates) {
  workload::WorkloadSpec spec;
  spec.n_keywords = 1;
  spec.k = 5;
  spec.n_queries = 20;
  spec.anchor_prob = 1.0;  // force semantic anchors
  auto qs = workload::BuildWorkload(*gen_.instance, gen_.semantic_anchors,
                                    spec);
  core::S3kOptions sem;
  core::S3kOptions plain;
  plain.use_semantics = false;
  size_t wider = 0;
  for (const auto& q : qs.queries) {
    core::SearchStats st_sem, st_plain;
    (void)core::S3kSearcher(*gen_.instance, sem).Search(q, &st_sem);
    (void)core::S3kSearcher(*gen_.instance, plain).Search(q, &st_plain);
    EXPECT_GE(st_sem.candidates_total, st_plain.candidates_total);
    if (st_sem.candidates_total > st_plain.candidates_total) ++wider;
  }
  EXPECT_GT(wider, 0u);
}

TEST_F(PipelineTest, TopkSComparisonAndMetrics) {
  baseline::Flattened flat = baseline::FlattenToUit(*gen_.instance);
  ASSERT_GT(flat.uit.ItemCount(), 0u);

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 5;
  spec.n_queries = 15;
  auto qs = workload::BuildWorkload(*gen_.instance, gen_.semantic_anchors,
                                    spec);

  core::S3kOptions s3k_opts;
  s3k_opts.k = spec.k;
  core::S3kSearcher s3k(*gen_.instance, s3k_opts);
  baseline::TopkSOptions tk_opts;
  tk_opts.k = spec.k;
  baseline::TopkSSearcher topks(flat.uit, tk_opts);

  for (const auto& q : qs.queries) {
    core::SearchStats st;
    auto rs = s3k.Search(q, &st);
    ASSERT_TRUE(rs.ok());
    baseline::TopkSStats tst;
    auto rt = topks.Search(q.seeker, q.keywords, &tst);
    ASSERT_TRUE(rt.ok());

    // Map S3k results into item space and compute Fig. 8 metrics.
    std::vector<uint64_t> s3k_items, topks_items;
    for (const auto& r : *rs) {
      baseline::ItemId item = flat.ItemOfNode(*gen_.instance, r.node);
      ASSERT_NE(item, baseline::kInvalidItem);
      if (std::find(s3k_items.begin(), s3k_items.end(), item) ==
          s3k_items.end()) {
        s3k_items.push_back(item);
      }
    }
    for (const auto& r : *rt) topks_items.push_back(r.item);

    double l1 = eval::SpearmanFootRuleNormalized(s3k_items, topks_items);
    double inter = eval::IntersectionRatio(s3k_items, topks_items);
    EXPECT_GE(l1, 0.0);
    EXPECT_LE(l1, 1.0);
    EXPECT_GE(inter, 0.0);
    EXPECT_LE(inter, 1.0);

    // Graph reachability ingredients.
    std::vector<uint64_t> candidate_items, examined;
    for (doc::NodeId n : st.candidate_nodes) {
      baseline::ItemId item = flat.ItemOfNode(*gen_.instance, n);
      if (item != baseline::kInvalidItem) candidate_items.push_back(item);
    }
    for (auto i : tst.examined_items) examined.push_back(i);
    double unreachable =
        eval::UnreachableFraction(candidate_items, examined);
    EXPECT_GE(unreachable, 0.0);
    EXPECT_LE(unreachable, 1.0);
  }
}

TEST_F(PipelineTest, ThreadedEqualsSequentialOnWorkload) {
  workload::WorkloadSpec spec;
  spec.n_keywords = 1;
  spec.k = 5;
  spec.n_queries = 10;
  auto qs = workload::BuildWorkload(*gen_.instance, gen_.semantic_anchors,
                                    spec);
  core::S3kOptions seq;
  seq.k = 5;
  core::S3kOptions par = seq;
  par.threads = 4;
  for (const auto& q : qs.queries) {
    auto a = core::S3kSearcher(*gen_.instance, seq).Search(q);
    auto b = core::S3kSearcher(*gen_.instance, par).Search(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].node, (*b)[i].node);
    }
  }
}

TEST(ReviewPipelineTest, I2StyleInstanceAnswersQueries) {
  workload::ReviewParams p;
  p.seed = 31;
  p.n_users = 80;
  p.n_movies = 40;
  auto gen = workload::GenerateReviewSite(p);
  workload::WorkloadSpec spec;
  spec.n_queries = 10;
  spec.k = 5;
  auto qs = workload::BuildWorkload(*gen.instance, {}, spec);
  core::S3kOptions opts;
  opts.k = 5;
  core::S3kSearcher searcher(*gen.instance, opts);
  size_t nonempty = 0;
  for (const auto& q : qs.queries) {
    auto r = searcher.Search(q);
    ASSERT_TRUE(r.ok());
    if (!r->empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 0u);
}

TEST(BusinessPipelineTest, I3StyleInstanceAnswersQueries) {
  workload::BusinessParams p;
  p.seed = 32;
  p.n_users = 90;
  p.n_businesses = 30;
  p.ontology.n_classes = 12;
  p.ontology.n_entities = 50;
  auto gen = workload::GenerateBusinessReviews(p);
  workload::WorkloadSpec spec;
  spec.n_queries = 10;
  spec.k = 5;
  auto qs =
      workload::BuildWorkload(*gen.instance, gen.semantic_anchors, spec);
  core::S3kOptions opts;
  opts.k = 5;
  core::S3kSearcher searcher(*gen.instance, opts);
  for (const auto& q : qs.queries) {
    ASSERT_TRUE(searcher.Search(q).ok());
  }
}

}  // namespace
}  // namespace s3
