#include <gtest/gtest.h>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace s3 {
namespace {

// ---- Porter stemmer: classic vectors from Porter's paper ----------------

struct StemCase {
  const char* in;
  const char* out;
};

class PorterParamTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterParamTest, StemsToExpected) {
  EXPECT_EQ(PorterStem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

INSTANTIATE_TEST_SUITE_P(
    PorterVectors, PorterParamTest,
    ::testing::Values(
        // Step 1a
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"caress", "caress"}, StemCase{"cats", "cat"},
        // Step 1b
        StemCase{"feed", "feed"}, StemCase{"agreed", "agre"},
        StemCase{"plastered", "plaster"}, StemCase{"bled", "bled"},
        StemCase{"motoring", "motor"}, StemCase{"sing", "sing"},
        StemCase{"conflated", "conflat"}, StemCase{"troubled", "troubl"},
        StemCase{"sized", "size"}, StemCase{"hopping", "hop"},
        StemCase{"tanned", "tan"}, StemCase{"falling", "fall"},
        StemCase{"hissing", "hiss"}, StemCase{"fizzed", "fizz"},
        StemCase{"failing", "fail"}, StemCase{"filing", "file"},
        // Step 1c
        StemCase{"happy", "happi"}, StemCase{"sky", "sky"},
        // Step 2
        StemCase{"relational", "relat"}, StemCase{"conditional", "condit"},
        StemCase{"rational", "ration"}, StemCase{"valenci", "valenc"},
        StemCase{"hesitanci", "hesit"}, StemCase{"digitizer", "digit"},
        StemCase{"conformabli", "conform"}, StemCase{"radicalli", "radic"},
        StemCase{"differentli", "differ"}, StemCase{"vileli", "vile"},
        StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"},
        // Step 3
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"},
        // Step 4
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        // Step 5
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("be"), "be");
}

TEST(PorterTest, PaperExampleGraduation) {
  // The paper's stemming example: "graduation" -> "graduate"-family stem.
  EXPECT_EQ(PorterStem("graduation"), PorterStem("graduate"));
}

TEST(PorterTest, InflectionsSharedStem) {
  EXPECT_EQ(PorterStem("universities"), PorterStem("university"));
  EXPECT_EQ(PorterStem("searching"), PorterStem("searched"));
  EXPECT_EQ(PorterStem("connections"), PorterStem("connection"));
}

TEST(PorterTest, Deterministic) {
  // Porter stemming is not idempotent in general, but it must be a
  // pure function of its input.
  for (const char* w :
       {"relational", "graduation", "universities", "running", "hopping"}) {
    EXPECT_EQ(PorterStem(w), PorterStem(w)) << w;
  }
}

// ---- Stop words ------------------------------------------------------------

TEST(StopwordTest, CommonWordsAreStops) {
  for (const char* w : {"the", "a", "and", "of", "is", "with"}) {
    EXPECT_TRUE(IsStopWord(w)) << w;
  }
}

TEST(StopwordTest, ContentWordsAreNotStops) {
  for (const char* w : {"university", "degree", "social", "search"}) {
    EXPECT_FALSE(IsStopWord(w)) << w;
  }
}

TEST(StopwordTest, ListIsNonTrivial) { EXPECT_GT(StopWordCount(), 100u); }

// ---- Tokenizer --------------------------------------------------------------

TEST(TokenizerTest, SplitsOnPunctuation) {
  auto t = TokenizeWords("Hello, world! How's it going?");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], "Hello");
  EXPECT_EQ(t[2], "Hows");  // apostrophe stripped
}

TEST(TokenizerTest, KeepsHashtagsAndMentions) {
  auto t = TokenizeWords("ping @alice re #University2014");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "@alice");
  EXPECT_EQ(t[3], "#University2014");
}

TEST(TokenizerTest, LonePunctuationIgnored) {
  auto t = TokenizeWords("# @ !!");
  EXPECT_TRUE(t.empty());
}

TEST(TokenizerTest, PipelineStopsAndStems) {
  // Paper §2.3: "When I got my M.S. @UAlberta in 2012 ..."
  auto kws = ExtractKeywords("When I got my M.S. @UAlberta in 2012");
  // "when"/"i"/"my"/"in" are stop words or short; M.S. -> m + s dropped
  // by length? No: min_token_length=1 keeps them.
  EXPECT_NE(std::find(kws.begin(), kws.end(), "@ualberta"), kws.end());
  EXPECT_NE(std::find(kws.begin(), kws.end(), "2012"), kws.end());
  EXPECT_EQ(std::find(kws.begin(), kws.end(), "when"), kws.end());
}

TEST(TokenizerTest, StemmingUnifiesForms) {
  auto a = ExtractKeywords("university graduates");
  auto b = ExtractKeywords("universities graduate");
  EXPECT_EQ(a, b);
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  auto kws = ExtractKeywords("go to big cities", opts);
  EXPECT_EQ(std::find(kws.begin(), kws.end(), "go"), kws.end());
  EXPECT_NE(std::find(kws.begin(), kws.end(), "big"), kws.end());
}

TEST(TokenizerTest, NoStemOption) {
  TokenizerOptions opts;
  opts.stem = false;
  auto kws = ExtractKeywords("universities", opts);
  ASSERT_EQ(kws.size(), 1u);
  EXPECT_EQ(kws[0], "universities");
}

// ---- Vocabulary ---------------------------------------------------------------

TEST(VocabularyTest, InterningIsIdempotent) {
  Vocabulary v;
  KeywordId a = v.Intern("degree");
  KeywordId b = v.Intern("degree");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, IdsAreDense) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("a"), 0u);
  EXPECT_EQ(v.Intern("b"), 1u);
  EXPECT_EQ(v.Intern("c"), 2u);
}

TEST(VocabularyTest, FindMissingReturnsInvalid) {
  Vocabulary v;
  v.Intern("present");
  EXPECT_EQ(v.Find("absent"), kInvalidKeyword);
  EXPECT_NE(v.Find("present"), kInvalidKeyword);
}

TEST(VocabularyTest, SpellingRoundTrip) {
  Vocabulary v;
  KeywordId id = v.Intern("S3:social");
  EXPECT_EQ(v.Spelling(id), "S3:social");
}

}  // namespace
}  // namespace s3
