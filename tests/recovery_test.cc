// SnapshotManager tests: durable WAL + checkpoint lifecycle, and the
// headline guarantee of the storage layer — kill the process at any
// point, Recover(dir), and serve the exact pre-crash generation with
// bit-for-bit identical query results, transition-matrix rows and
// component ids (pinned against the never-restarted instance and the
// NaiveSearch oracle, across several checkpoint/delta interleavings).
//
// ConcurrentCheckpointTest runs background checkpoints against live
// LogAndApply + SwapSnapshot + query traffic; it is part of the TSan
// CI suite (*Concurrent* filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/instance_delta.h"
#include "core/naive_reference.h"
#include "core/s3k.h"
#include "server/snapshot_manager.h"

namespace s3::server {
namespace {

namespace fs = std::filesystem;
using core::InstanceDelta;
using core::Query;
using core::ResultEntry;
using core::S3Instance;
using core::S3kOptions;
using core::S3kSearcher;

// ---- deterministic population scripts ----------------------------------
// Mirrors the update_test idiom: the same op script drives an
// InstanceDelta (durable path) and a rebuilding S3Instance (oracle).

constexpr uint32_t kUsers = 5;

struct Counts {
  uint32_t docs = 0;
  uint32_t nodes = 0;
  uint32_t tags = 0;
};

void PopulateBase(S3Instance& inst, std::vector<KeywordId>& pool,
                  Counts& c) {
  for (uint32_t u = 0; u < kUsers; ++u) {
    inst.AddUser("u" + std::to_string(u));
  }
  for (int k = 0; k < 5; ++k) {
    pool.push_back(inst.InternKeyword("kw" + std::to_string(k)));
  }
  inst.DeclareSubClass("kw1", "kw0");
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    doc::Document d("doc");
    for (uint32_t ch = rng.Uniform(3); ch > 0; --ch) {
      uint32_t child = d.AddChild(
          static_cast<uint32_t>(rng.Uniform(d.NodeCount())), "n");
      d.AddKeywords(child, {pool[rng.Uniform(pool.size())]});
    }
    d.AddKeywords(0, {pool[rng.Uniform(pool.size())]});
    const uint32_t n_doc_nodes = static_cast<uint32_t>(d.NodeCount());
    ASSERT_TRUE(inst.AddDocument(std::move(d), "base" + std::to_string(i),
                                 static_cast<social::UserId>(
                                     rng.Uniform(kUsers)))
                    .ok());
    c.nodes += n_doc_nodes;
    ++c.docs;
  }
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(inst.AddTagOnFragment(
                        static_cast<social::UserId>(rng.Uniform(kUsers)),
                        static_cast<doc::NodeId>(rng.Uniform(c.nodes)),
                        pool[rng.Uniform(pool.size())])
                    .ok());
    ++c.tags;
  }
  ASSERT_TRUE(inst.AddSocialEdge(0, 1, 0.9).ok());
  ASSERT_TRUE(inst.AddSocialEdge(1, 2, 0.6).ok());
  ASSERT_TRUE(inst.AddSocialEdge(2, 0, 0.4).ok());
}

// One update round, valid against any sink that mirrors the
// S3Instance population API.
template <typename Sink>
void Round(Sink& sink, uint64_t seed, Counts& c,
           std::vector<KeywordId>& pool) {
  Rng rng(seed);
  pool.push_back(sink.InternKeyword("round" + std::to_string(seed)));
  for (int i = 0; i < 2; ++i) {
    doc::Document d("doc");
    for (uint32_t ch = rng.Uniform(2); ch > 0; --ch) {
      uint32_t child = d.AddChild(
          static_cast<uint32_t>(rng.Uniform(d.NodeCount())), "n");
      d.AddKeywords(child, {pool[rng.Uniform(pool.size())]});
    }
    d.AddKeywords(0, {pool[rng.Uniform(pool.size())]});
    const uint32_t n_doc_nodes = static_cast<uint32_t>(d.NodeCount());
    const uint32_t nodes_before = c.nodes;
    auto id = sink.AddDocument(std::move(d),
                               "r" + std::to_string(seed) + "_" +
                                   std::to_string(i),
                               static_cast<social::UserId>(
                                   rng.Uniform(kUsers)));
    ASSERT_TRUE(id.ok());
    c.nodes += n_doc_nodes;
    ++c.docs;
    if (rng.Chance(0.6)) {
      ASSERT_TRUE(sink.AddComment(*id, static_cast<doc::NodeId>(
                                           rng.Uniform(nodes_before)))
                      .ok());
    }
  }
  ASSERT_TRUE(sink.AddTagOnFragment(
                      static_cast<social::UserId>(rng.Uniform(kUsers)),
                      static_cast<doc::NodeId>(rng.Uniform(c.nodes)),
                      rng.Chance(0.5) ? pool[rng.Uniform(pool.size())]
                                      : kInvalidKeyword)
                  .ok());
  ++c.tags;
  social::UserId a = static_cast<social::UserId>(rng.Uniform(kUsers));
  social::UserId b = static_cast<social::UserId>(rng.Uniform(kUsers));
  if (a != b) {
    ASSERT_TRUE(sink.AddSocialEdge(a, b, 0.2 + 0.7 * rng.NextDouble()).ok());
  }
}

std::shared_ptr<const S3Instance> BuildBase(std::vector<KeywordId>& pool,
                                            Counts& c) {
  auto inst = std::make_shared<S3Instance>();
  PopulateBase(*inst, pool, c);
  EXPECT_TRUE(inst->Finalize().ok());
  return inst;
}

// Never-restarted oracle: base + `rounds` rounds, one Finalize.
std::shared_ptr<const S3Instance> RebuildFromScratch(size_t rounds) {
  auto inst = std::make_shared<S3Instance>();
  std::vector<KeywordId> pool;
  Counts c;
  PopulateBase(*inst, pool, c);
  for (size_t r = 1; r <= rounds; ++r) Round(*inst, 100 + r, c, pool);
  EXPECT_TRUE(inst->Finalize().ok());
  return inst;
}

S3kOptions TestOptions() {
  S3kOptions opts;
  opts.k = 5;
  opts.score.gamma = 1.5;
  opts.max_iterations = 300;
  return opts;
}

std::vector<Query> MakeQueries(const std::vector<KeywordId>& pool) {
  std::vector<Query> out;
  for (uint32_t u = 0; u < kUsers; ++u) {
    for (size_t k = 0; k < pool.size(); k += 2) {
      out.push_back(Query{u, {pool[k]}});
    }
  }
  out.push_back(Query{0, {pool[0], pool[1]}});
  return out;
}

void ExpectBitIdentical(const S3Instance& got, const S3Instance& want,
                        const std::vector<Query>& queries,
                        const std::string& what) {
  EXPECT_EQ(got.generation(), want.generation()) << what;
  EXPECT_EQ(got.lineage(), want.lineage()) << what;

  ASSERT_EQ(got.matrix().rows(), want.matrix().rows()) << what;
  for (uint32_t row = 0; row < want.matrix().rows(); ++row) {
    auto a = got.matrix().Row(row);
    auto b = want.matrix().Row(row);
    ASSERT_EQ(a.size(), b.size()) << what << " matrix row " << row;
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first) << what << " row " << row;
      EXPECT_EQ(a[i].second, b[i].second) << what << " row " << row;
    }
    EXPECT_EQ(got.components().OfRow(row), want.components().OfRow(row))
        << what << " component of row " << row;
  }

  S3kOptions opts = TestOptions();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto a = S3kSearcher(got, opts).Search(queries[qi]);
    auto b = S3kSearcher(want, opts).Search(queries[qi]);
    ASSERT_TRUE(a.ok()) << what;
    ASSERT_TRUE(b.ok()) << what;
    ASSERT_EQ(a->size(), b->size()) << what << " query " << qi;
    for (size_t i = 0; i < b->size(); ++i) {
      EXPECT_EQ((*a)[i].node, (*b)[i].node) << what << " query " << qi;
      EXPECT_EQ((*a)[i].lower, (*b)[i].lower) << what << " query " << qi;
      EXPECT_EQ((*a)[i].upper, (*b)[i].upper) << what << " query " << qi;
    }
  }
}

// Converged proximity oracle (same construction as s3k_test /
// update_test).
std::vector<double> ConvergedProx(const S3Instance& inst,
                                  social::UserId seeker, double gamma,
                                  size_t iters = 120) {
  const auto& m = inst.matrix();
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  std::vector<double> prox(inst.layout().total(), 0.0);
  uint32_t row = inst.RowOfUser(seeker);
  prox[row] = core::CGamma(gamma);
  f.Set(row, 1.0);
  for (size_t n = 1; n <= iters; ++n) {
    m.Propagate(f, g);
    std::swap(f, g);
    if (f.nonzero.empty()) break;
    for (uint32_t r : f.nonzero) {
      prox[r] +=
          core::CGamma(gamma) * f.values[r] / std::pow(gamma, double(n));
    }
  }
  return prox;
}

// Exact converged score of one returned node (same construction as
// update_test: the candidate's score under the converged proximities).
double ExactScore(const S3Instance& inst, const Query& q,
                  const S3kOptions& opts, doc::NodeId node,
                  const std::vector<double>& prox) {
  auto plan = core::BuildCandidatePlan(inst, q.keywords,
                                       opts.use_semantics,
                                       opts.score.eta);
  EXPECT_TRUE(plan.ok());
  for (const auto& cc : plan->per_comp) {
    for (const core::Candidate& c : cc.candidates) {
      if (c.node == node) return core::CandidateScore(c, prox);
    }
  }
  return 0.0;
}

// Recovered results agree with the brute-force oracle's top-k score
// multiset (converged queries only, as in update_test).
void ExpectMatchesNaiveOracle(const S3Instance& inst, const Query& q) {
  S3kOptions opts = TestOptions();
  core::SearchStats stats;
  auto got = S3kSearcher(inst, opts).Search(q, &stats);
  ASSERT_TRUE(got.ok());
  if (!stats.converged) return;
  auto prox = ConvergedProx(inst, q.seeker, opts.score.gamma);
  auto oracle = core::NaiveSearchWithProx(inst, q, opts, prox);
  ASSERT_EQ(got->size(), oracle.size());
  std::vector<double> got_scores, want_scores;
  for (size_t i = 0; i < oracle.size(); ++i) {
    got_scores.push_back(ExactScore(inst, q, opts, (*got)[i].node, prox));
    want_scores.push_back(oracle[i].lower);
  }
  std::sort(got_scores.rbegin(), got_scores.rend());
  std::sort(want_scores.rbegin(), want_scores.rend());
  for (size_t i = 0; i < want_scores.size(); ++i) {
    EXPECT_NEAR(got_scores[i], want_scores[i], 1e-7);
  }
}

// ---- fixtures ----------------------------------------------------------

class SnapshotManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "s3-recovery-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  SnapshotManagerOptions Options(uint64_t checkpoint_every = 0,
                                 bool background = false) {
    SnapshotManagerOptions o;
    o.dir = dir_;
    o.checkpoint_every = checkpoint_every;
    o.background_checkpoints = background;
    return o;
  }

  std::string dir_;
};

// ---- lifecycle ---------------------------------------------------------

TEST_F(SnapshotManagerTest, OpenEmptyThenInitialize) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);

  {
    auto mgr = SnapshotManager::Open(Options());
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_FALSE((*mgr)->has_state());
    // LogAndApply before Initialize is refused.
    InstanceDelta delta(base);
    ASSERT_TRUE(delta.AddSocialEdge(0, 2, 0.5).ok());
    EXPECT_EQ((*mgr)->LogAndApply(delta).status().code(),
              StatusCode::kFailedPrecondition);
    ASSERT_TRUE((*mgr)->Initialize(base).ok());
    EXPECT_TRUE((*mgr)->has_state());
    // Second Initialize is refused.
    EXPECT_EQ((*mgr)->Initialize(base).code(),
              StatusCode::kFailedPrecondition);
  }

  // Reopen: the directory alone reproduces the instance.
  auto reopened = SnapshotManager::Open(Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->has_state());
  ExpectBitIdentical(*(*reopened)->current(), *base, MakeQueries(pool),
                     "reopen");
}

TEST_F(SnapshotManagerTest, LogAndApplyValidatesBase) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);
  auto mgr = SnapshotManager::Open(Options());
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->Initialize(base).ok());

  InstanceDelta delta(base);
  ASSERT_TRUE(delta.AddSocialEdge(0, 2, 0.5).ok());
  auto next = (*mgr)->LogAndApply(delta);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((*next)->generation(), 1u);

  // The same delta again is now against a stale base.
  EXPECT_EQ((*mgr)->LogAndApply(delta).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- kill-and-recover fidelity, three interleavings --------------------

struct Interleaving {
  const char* name;
  uint64_t checkpoint_every;     // 0 = never
  size_t manual_checkpoint_at;   // round index (0 = none)
};

class RecoveryFidelityTest
    : public SnapshotManagerTest,
      public ::testing::WithParamInterface<Interleaving> {};

TEST_P(RecoveryFidelityTest, KillAndRecoverIsBitIdentical) {
  const Interleaving param = GetParam();
  constexpr size_t kRounds = 4;

  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);

  // Live chain, with every delta logged durably.
  std::shared_ptr<const S3Instance> live = base;
  {
    SnapshotManagerOptions options =
        Options(param.checkpoint_every, /*background=*/false);
    auto mgr = SnapshotManager::Open(options);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Initialize(base).ok());
    Counts live_counts = c;
    for (size_t r = 1; r <= kRounds; ++r) {
      InstanceDelta delta(live);
      Round(delta, 100 + r, live_counts, pool);
      if (::testing::Test::HasFatalFailure()) return;
      auto next = (*mgr)->LogAndApply(delta);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      live = *next;
      if (param.manual_checkpoint_at == r) {
        ASSERT_TRUE((*mgr)->Checkpoint().ok());
      }
    }
    // `mgr` is destroyed here without any final checkpoint — the
    // "kill": only what LogAndApply already made durable survives.
  }
  ASSERT_EQ(live->generation(), kRounds);

  // Recovery = newest valid snapshot + WAL tail.
  auto recovered = SnapshotManager::Recover(dir_);
  ASSERT_TRUE(recovered.ok()) << param.name << ": "
                              << recovered.status().ToString();
  const std::vector<Query> queries = MakeQueries(pool);
  ExpectBitIdentical(*recovered->instance, *live, queries, param.name);

  // And against the never-serialized from-scratch rebuild (node sets;
  // scores bit-identical to `live` already pinned above).
  auto rebuilt = RebuildFromScratch(kRounds);
  S3kOptions opts = TestOptions();
  for (const Query& q : queries) {
    auto a = S3kSearcher(*recovered->instance, opts).Search(q);
    auto b = S3kSearcher(*rebuilt, opts).Search(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size()) << param.name;
    for (size_t i = 0; i < b->size(); ++i) {
      EXPECT_EQ((*a)[i].node, (*b)[i].node) << param.name;
      EXPECT_EQ((*a)[i].lower, (*b)[i].lower) << param.name;
    }
  }
  ExpectMatchesNaiveOracle(*recovered->instance, queries.front());

  // Reopening as a manager serves the same generation and accepts the
  // next delta.
  auto reopened = SnapshotManager::Open(Options());
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->has_state());
  EXPECT_EQ((*reopened)->current()->generation(), kRounds);
  Counts more = c;
  // Recompute the counts the rounds produced (oracle-side bookkeeping).
  {
    auto cur = (*reopened)->current();
    more.docs = static_cast<uint32_t>(cur->docs().DocumentCount());
    more.nodes = static_cast<uint32_t>(cur->docs().NodeCount());
    more.tags = static_cast<uint32_t>(cur->TagCount());
  }
  InstanceDelta delta((*reopened)->current());
  Round(delta, 999, more, pool);
  if (::testing::Test::HasFatalFailure()) return;
  auto next = (*reopened)->LogAndApply(delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ((*next)->generation(), kRounds + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Interleavings, RecoveryFidelityTest,
    ::testing::Values(
        // Snapshot-0 + full WAL replay.
        Interleaving{"wal_only", 0, 0},
        // Auto checkpoint mid-stream: snapshot-2 + WAL tail.
        Interleaving{"checkpoint_mid", 2, 0},
        // Manual checkpoint at the last round, then nothing in the WAL.
        Interleaving{"checkpoint_at_head", 0, 4}),
    [](const ::testing::TestParamInfo<Interleaving>& info) {
      return info.param.name;
    });

// ---- torn tails and corruption -----------------------------------------

TEST_F(SnapshotManagerTest, TornWalTailRecoversThePrefix) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);
  std::shared_ptr<const S3Instance> live = base;
  {
    auto mgr = SnapshotManager::Open(Options());
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Initialize(base).ok());
    Counts live_counts = c;
    for (size_t r = 1; r <= 3; ++r) {
      InstanceDelta delta(live);
      Round(delta, 100 + r, live_counts, pool);
      if (::testing::Test::HasFatalFailure()) return;
      auto next = (*mgr)->LogAndApply(delta);
      ASSERT_TRUE(next.ok());
      live = *next;
    }
  }

  // Tear the last record: crash mid-append.
  const std::string wal_path = dir_ + "/wal.log";
  const auto size = fs::file_size(wal_path);
  fs::resize_file(wal_path, size - 5);

  auto recovered = SnapshotManager::Recover(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->instance->generation(), 2u);
  EXPECT_TRUE(recovered->tail_discarded);
  EXPECT_EQ(recovered->replayed_records, 2u);

  // Open compacts the torn tail away; the next recovery is clean.
  {
    auto mgr = SnapshotManager::Open(Options());
    ASSERT_TRUE(mgr.ok());
    EXPECT_EQ((*mgr)->current()->generation(), 2u);
  }
  auto again = SnapshotManager::Recover(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->tail_discarded);
  EXPECT_EQ(again->instance->generation(), 2u);
}

TEST_F(SnapshotManagerTest, CorruptSnapshotIsRefusedNotServedEmpty) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);
  {
    auto mgr = SnapshotManager::Open(Options());
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Initialize(base).ok());
  }
  // Flip a byte in the middle of the only snapshot file.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".s3snap") {
      std::fstream f(entry.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
      f.put('\x55');
    }
  }
  EXPECT_EQ(SnapshotManager::Recover(dir_).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SnapshotManager::Open(Options()).status().code(),
            StatusCode::kInvalidArgument);
}

// A wal.log left behind in a snapshot-less directory (earlier
// deployment, manual copy) must not leak into a fresh deployment:
// Initialize wipes it, so later recoveries never hit a foreign record
// that would strand the records behind it.
TEST_F(SnapshotManagerTest, InitializeWipesStrayWal) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);

  // Plant a stray WAL: a valid record from an unrelated lineage plus
  // trailing junk.
  fs::create_directories(dir_);
  {
    std::vector<KeywordId> stray_pool;
    Counts stray_counts;
    auto stray_base =
        BuildBase(stray_pool, stray_counts);  // different lineage token
    InstanceDelta stray(stray_base);
    ASSERT_TRUE(stray.AddSocialEdge(0, 2, 0.5).ok());
    std::string wal;
    stray.EncodeWalRecord(&wal);
    wal += "torn tail garbage";
    std::ofstream out(dir_ + "/wal.log", std::ios::binary);
    out << wal;
  }

  std::shared_ptr<const S3Instance> live = base;
  {
    auto mgr = SnapshotManager::Open(Options());
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_FALSE((*mgr)->has_state());
    ASSERT_TRUE((*mgr)->Initialize(base).ok());
    Counts live_counts = c;
    InstanceDelta delta(live);
    Round(delta, 300, live_counts, pool);
    if (::testing::Test::HasFatalFailure()) return;
    auto next = (*mgr)->LogAndApply(delta);
    ASSERT_TRUE(next.ok());
    live = *next;
  }

  auto recovered = SnapshotManager::Recover(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->tail_discarded);
  EXPECT_EQ(recovered->replayed_records, 1u);
  EXPECT_EQ(recovered->skipped_records, 0u);
  ExpectBitIdentical(*recovered->instance, *live, MakeQueries(pool),
                     "after stray-wal wipe");
}

TEST_F(SnapshotManagerTest, RecoverOnMissingDirIsNotFound) {
  EXPECT_EQ(SnapshotManager::Recover(dir_ + "-nope").status().code(),
            StatusCode::kNotFound);
}

// ---- serving wiring ----------------------------------------------------

TEST_F(SnapshotManagerTest, RecoverAndServeResumesPreCrashGeneration) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);
  std::shared_ptr<const S3Instance> live = base;
  {
    auto mgr = SnapshotManager::Open(Options(/*checkpoint_every=*/2));
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Initialize(base).ok());
    Counts live_counts = c;
    for (size_t r = 1; r <= 3; ++r) {
      InstanceDelta delta(live);
      Round(delta, 100 + r, live_counts, pool);
      if (::testing::Test::HasFatalFailure()) return;
      auto next = (*mgr)->LogAndApply(delta);
      ASSERT_TRUE(next.ok());
      live = *next;
    }
  }  // kill

  QueryServiceOptions serving;
  serving.workers = 2;
  serving.search = TestOptions();
  auto boot = RecoverAndServe(Options(), serving);
  ASSERT_TRUE(boot.ok()) << boot.status().ToString();
  EXPECT_EQ(boot->service->snapshot()->generation(), 3u);
  EXPECT_EQ(boot->service->snapshot()->lineage(), live->lineage());

  S3kOptions opts = TestOptions();
  for (const Query& q : MakeQueries(pool)) {
    auto submitted = boot->service->SubmitBlocking(q);
    ASSERT_TRUE(submitted.ok());
    auto response = submitted->get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->generation, 3u);
    auto want = S3kSearcher(*live, opts).Search(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(response->entries.size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ(response->entries[i].node, (*want)[i].node);
      EXPECT_EQ(response->entries[i].lower, (*want)[i].lower);
    }
  }
  boot->service->Shutdown();

  // An empty directory refuses to serve.
  SnapshotManagerOptions empty;
  empty.dir = dir_ + "-fresh";
  auto refused = RecoverAndServe(empty, serving);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  fs::remove_all(empty.dir);
}

// ---- background checkpoints under live swap + query load (TSan) --------

TEST_F(SnapshotManagerTest, ConcurrentCheckpointUnderSwapLoad) {
  std::vector<KeywordId> pool;
  Counts c;
  auto base = BuildBase(pool, c);

  SnapshotManagerOptions options =
      Options(/*checkpoint_every=*/1, /*background=*/true);
  auto mgr = SnapshotManager::Open(options);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->Initialize(base).ok());

  QueryServiceOptions serving;
  serving.workers = 2;
  QueryService service((*mgr)->current(), serving);

  constexpr size_t kRounds = 6;
  const std::vector<Query> queries = MakeQueries(pool);

  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&service, &queries, &done, t] {
      size_t qi = static_cast<size_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        auto submitted = service.SubmitBlocking(
            queries[qi++ % queries.size()]);
        if (!submitted.ok()) break;
        auto response = submitted->get();
        EXPECT_TRUE(response.ok());
      }
    });
  }

  // Writer: log, apply, publish — while the manager checkpoints every
  // generation on its background thread.
  Counts live_counts = c;
  std::shared_ptr<const S3Instance> live = base;
  for (size_t r = 1; r <= kRounds; ++r) {
    InstanceDelta delta(live);
    Round(delta, 500 + r, live_counts, pool);
    if (::testing::Test::HasFatalFailure()) break;
    auto next = (*mgr)->LogAndApply(delta);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    live = *next;
    ASSERT_TRUE(service.SwapSnapshot(live).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& thread : clients) thread.join();
  service.Shutdown();

  EXPECT_TRUE((*mgr)->WaitForCheckpoints().ok());
  mgr->reset();  // close WAL handle before recovering the directory

  auto recovered = SnapshotManager::Recover(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectBitIdentical(*recovered->instance, *live, queries,
                     "after concurrent checkpoints");
}

}  // namespace
}  // namespace s3::server
