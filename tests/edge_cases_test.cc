// Edge-case coverage across the engine: degenerate queries, isolated
// seekers, deep/wide documents, saturation diamonds, TopkS budgets.
#include <gtest/gtest.h>

#include "baseline/topks.h"
#include "baseline/uit.h"
#include "core/s3k.h"
#include "rdf/saturation.h"
#include "rdf/vocab.h"
#include "test_fixtures.h"

namespace s3 {
namespace {

using core::Query;
using core::S3Instance;
using core::S3kOptions;
using core::S3kSearcher;
using core::SearchStats;

// ---- degenerate queries -----------------------------------------------------

class DegenerateQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = inst_.AddUser("u");
    v_ = inst_.AddUser("v");
    kw_ = inst_.InternKeyword("alpha");
    other_ = inst_.InternKeyword("never-used");
    doc::Document d("doc");
    d.AddKeywords(0, {kw_});
    (void)inst_.AddDocument(std::move(d), "d0", v_).value();
    (void)inst_.AddSocialEdge(u_, v_, 0.5);
    ASSERT_TRUE(inst_.Finalize().ok());
  }
  S3Instance inst_;
  social::UserId u_ = 0, v_ = 0;
  KeywordId kw_ = 0, other_ = 0;
};

TEST_F(DegenerateQueryTest, AbsentKeywordGivesNoResults) {
  S3kSearcher searcher(inst_, S3kOptions{});
  SearchStats st;
  auto r = searcher.Search(Query{u_, {other_}}, &st);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.components_passing, 0u);
}

TEST_F(DegenerateQueryTest, DuplicateKeywordSquaresScore) {
  // {k, k} requires the same keyword twice: score becomes the square
  // of the single-keyword score (the model multiplies per keyword).
  S3kOptions opts;
  opts.k = 1;
  S3kSearcher searcher(inst_, opts);
  auto one = searcher.Search(Query{u_, {kw_}});
  auto two = searcher.Search(Query{u_, {kw_, kw_}});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(one->size(), 1u);
  ASSERT_EQ(two->size(), 1u);
  EXPECT_NEAR((*two)[0].lower, (*one)[0].lower * (*one)[0].lower, 1e-9);
}

TEST_F(DegenerateQueryTest, KLargerThanMatchesReturnsAll) {
  S3kOptions opts;
  opts.k = 50;
  S3kSearcher searcher(inst_, opts);
  SearchStats st;
  auto r = searcher.Search(Query{u_, {kw_}}, &st);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);  // only one document exists
  EXPECT_TRUE(st.converged);
}

TEST_F(DegenerateQueryTest, SeekerIsPosterScoresOwnContent) {
  S3kSearcher searcher(inst_, S3kOptions{});
  auto r = searcher.Search(Query{v_, {kw_}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_GT((*r)[0].lower, 0.0);
}

TEST(IsolatedSeekerTest, NoEdgesMeansOnlySelfPaths) {
  // The seeker has no outgoing edges: no document is reachable, every
  // prox is 0, and the search terminates with zero-score results
  // filtered out.
  S3Instance inst;
  auto loner = inst.AddUser("loner");
  auto author = inst.AddUser("author");
  KeywordId kw = inst.InternKeyword("alpha");
  doc::Document d("doc");
  d.AddKeywords(0, {kw});
  (void)inst.AddDocument(std::move(d), "d0", author).value();
  ASSERT_TRUE(inst.Finalize().ok());

  S3kSearcher searcher(inst, S3kOptions{});
  SearchStats st;
  auto r = searcher.Search(Query{loner, {kw}}, &st);
  ASSERT_TRUE(r.ok());
  // The candidate exists but its only source is unreachable: either
  // dropped or returned with a zero interval.
  for (const auto& e : *r) {
    EXPECT_LE(e.upper, 1e-9);
  }
  EXPECT_TRUE(st.converged);
}

// ---- deep and wide documents ---------------------------------------------

TEST(DeepDocumentTest, ChainOfFiftyLevels) {
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId kw = inst.InternKeyword("needle");
  doc::Document d("root");
  uint32_t cur = 0;
  for (int i = 0; i < 50; ++i) cur = d.AddChild(cur, "level");
  d.AddKeywords(cur, {kw});
  auto id = inst.AddDocument(std::move(d), "deep", u).value();
  ASSERT_TRUE(inst.Finalize().ok());

  // pos length from root to leaf is 50.
  doc::NodeId leaf = inst.docs().GlobalId(id, 50);
  EXPECT_EQ(inst.docs().PosLength(inst.docs().RootNode(id), leaf), 50u);

  // The leaf dominates the root: η^0 vs η^50.
  S3kOptions opts;
  opts.k = 1;
  S3kSearcher searcher(inst, opts);
  auto r = searcher.Search(Query{u, {kw}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].node, leaf);
}

TEST(WideDocumentTest, ManySiblingsDeweyOrder) {
  S3Instance inst;
  auto u = inst.AddUser("u");
  doc::Document d("root");
  for (int i = 0; i < 200; ++i) d.AddChild(0, "c");
  auto id = inst.AddDocument(std::move(d), "wide", u).value();
  ASSERT_TRUE(inst.Finalize().ok());
  const doc::Document& doc = inst.docs().document(id);
  EXPECT_EQ(doc.node(1).dewey.ToString(), "1");
  EXPECT_EQ(doc.node(200).dewey.ToString(), "200");
  // Siblings are never vertical neighbors.
  EXPECT_FALSE(inst.docs().AreVerticalNeighbors(
      inst.docs().GlobalId(id, 1), inst.docs().GlobalId(id, 200)));
}

// ---- saturation diamonds / mixed schemas ------------------------------------

TEST(SaturationDiamondTest, DiamondClosesOnce) {
  rdf::TermDictionary dict;
  rdf::TripleStore store;
  rdf::TermId sc = dict.InternUri(rdf::vocab::kSubClassOf);
  rdf::TermId type = dict.InternUri(rdf::vocab::kType);
  // b ≺ a, c ≺ a, d ≺ b, d ≺ c (diamond)
  store.Add(dict.InternUri("b"), sc, dict.InternUri("a"));
  store.Add(dict.InternUri("c"), sc, dict.InternUri("a"));
  store.Add(dict.InternUri("d"), sc, dict.InternUri("b"));
  store.Add(dict.InternUri("d"), sc, dict.InternUri("c"));
  store.Add(dict.InternUri("x"), type, dict.InternUri("d"));
  rdf::Saturate(dict, store);
  EXPECT_TRUE(store.Contains(dict.InternUri("d"), sc, dict.InternUri("a")));
  EXPECT_TRUE(
      store.Contains(dict.InternUri("x"), type, dict.InternUri("a")));
  // d ≺ a must exist exactly once (set semantics).
  size_t count = 0;
  for (const auto& t : store.triples()) {
    if (t.subject == dict.InternUri("d") && t.property == sc &&
        t.object == dict.InternUri("a")) {
      ++count;
    }
  }
  EXPECT_EQ(count, 1u);
}

TEST(SaturationMixedTest, DomainRangeOnSameProperty) {
  rdf::TermDictionary dict;
  rdf::TripleStore store;
  rdf::TermId dom = dict.InternUri(rdf::vocab::kDomain);
  rdf::TermId rng = dict.InternUri(rdf::vocab::kRange);
  rdf::TermId type = dict.InternUri(rdf::vocab::kType);
  store.Add(dict.InternUri("teaches"), dom, dict.InternUri("Teacher"));
  store.Add(dict.InternUri("teaches"), rng, dict.InternUri("Student"));
  store.Add(dict.InternUri("ann"), dict.InternUri("teaches"),
            dict.InternUri("bob"));
  rdf::Saturate(dict, store);
  EXPECT_TRUE(
      store.Contains(dict.InternUri("ann"), type, dict.InternUri("Teacher")));
  EXPECT_TRUE(
      store.Contains(dict.InternUri("bob"), type, dict.InternUri("Student")));
}

// ---- TopkS budgets and blending ---------------------------------------------

TEST(TopkSBudgetTest, SettledUserBudgetRespected) {
  baseline::UitInstance uit;
  uit.SetUserCount(20);
  for (int i = 0; i + 1 < 20; ++i) uit.AddUserLink(i, i + 1, 0.9);
  std::vector<baseline::ItemId> items;
  for (int i = 1; i < 20; ++i) {
    auto it = uit.AddItem();
    uit.AddTriple(i, it, 1);
    items.push_back(it);
  }
  baseline::TopkSOptions opts;
  opts.alpha = 1.0;
  opts.k = 5;
  opts.max_settled_users = 3;
  baseline::TopkSSearcher searcher(uit, opts);
  baseline::TopkSStats st;
  auto r = searcher.Search(0, {1}, &st);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(st.settled_users, 3u);
}

TEST(TopkSBlendTest, AlphaInterpolatesExactly) {
  baseline::UitInstance uit;
  uit.SetUserCount(2);
  auto item = uit.AddItem();
  uit.AddUserLink(0, 1, 0.5);
  uit.AddTriple(1, item, 7);     // social side: σ = 0.5
  uit.AddItemTerm(item, 7, 4);   // text side: tf/maxtf = 1
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    baseline::TopkSOptions opts;
    opts.alpha = alpha;
    opts.k = 1;
    baseline::TopkSSearcher searcher(uit, opts);
    auto r = searcher.Search(0, {7});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 1u);
    EXPECT_NEAR((*r)[0].score, alpha * 0.5 + (1 - alpha) * 1.0, 1e-9)
        << "alpha " << alpha;
  }
}

TEST(TopkSTextTest, TfNormalizationPerKeyword) {
  baseline::UitInstance uit;
  uit.SetUserCount(1);
  auto i1 = uit.AddItem();
  auto i2 = uit.AddItem();
  uit.AddItemTerm(i1, 3, 10);  // maxtf
  uit.AddItemTerm(i2, 3, 5);
  baseline::TopkSOptions opts;
  opts.alpha = 0.0;
  opts.k = 2;
  baseline::TopkSSearcher searcher(uit, opts);
  auto r = searcher.Search(0, {3});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].item, i1);
  EXPECT_NEAR((*r)[0].score, 1.0, 1e-9);
  EXPECT_NEAR((*r)[1].score, 0.5, 1e-9);
}

// ---- comments on mid-tree fragments -----------------------------------------

TEST(MidFragmentCommentTest, CommentOnInnerNodePropagatesUpOnly) {
  // d0: root -> a -> b ; comment c targets a.
  // Connections reach a and the root, but never the sibling-free
  // subtree below unrelated branches.
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId kw = inst.InternKeyword("alpha");
  doc::Document d("root");
  uint32_t a = d.AddChild(0, "a");
  uint32_t b = d.AddChild(a, "b");
  (void)b;
  uint32_t other = d.AddChild(0, "other");
  (void)other;
  auto d0 = inst.AddDocument(std::move(d), "d0", u).value();
  doc::NodeId a_node = inst.docs().GlobalId(d0, a);
  doc::NodeId other_node = inst.docs().GlobalId(d0, other);

  doc::Document cd("comment");
  cd.AddKeywords(0, {kw});
  auto c = inst.AddDocument(std::move(cd), "c", u).value();
  ASSERT_TRUE(inst.AddComment(c, a_node).ok());
  ASSERT_TRUE(inst.Finalize().ok());

  S3kOptions opts;
  opts.k = 10;
  S3kSearcher searcher(inst, opts);
  SearchStats st;
  auto r = searcher.Search(Query{u, {kw}}, &st);
  ASSERT_TRUE(r.ok());
  // Candidates: comment root, a, d0 root — but not `other` or `b`.
  for (doc::NodeId n : st.candidate_nodes) {
    EXPECT_NE(n, other_node);
    EXPECT_NE(n, inst.docs().GlobalId(d0, b));
  }
  bool has_a = false;
  for (doc::NodeId n : st.candidate_nodes) {
    if (n == a_node) has_a = true;
  }
  EXPECT_TRUE(has_a);
}

// ---- multi-keyword static weights --------------------------------------------

TEST(MultiKeywordScoreTest, ProductOverKeywords) {
  // One doc containing both keywords at different depths; verify the
  // candidate cap = (η^p1 ...)(η^p2 ...) structure via search bounds.
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId k1 = inst.InternKeyword("one");
  KeywordId k2 = inst.InternKeyword("two");
  doc::Document d("root");
  uint32_t c1 = d.AddChild(0, "c");      // depth 1
  uint32_t c2 = d.AddChild(c1, "cc");    // depth 2
  d.AddKeywords(c1, {k1});
  d.AddKeywords(c2, {k2});
  (void)inst.AddDocument(std::move(d), "d0", u).value();
  ASSERT_TRUE(inst.Finalize().ok());

  S3kOptions opts;
  opts.k = 1;
  opts.score.eta = 0.5;
  S3kSearcher searcher(inst, opts);
  auto both = searcher.Search(Query{u, {k1, k2}});
  ASSERT_TRUE(both.ok());
  ASSERT_EQ(both->size(), 1u);
  // Root candidate: W(root,k1)=η¹, W(root,k2)=η² — the only node whose
  // subtree covers both... c1 also covers both (k1 at depth 0 under
  // c1? no: k1 IS c1): c1 covers k1 (η⁰) and k2 (η¹) and wins.
  auto r1 = searcher.Search(Query{u, {k1}});
  auto r2 = searcher.Search(Query{u, {k2}});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // The two-keyword score is bounded by the product of bests.
  EXPECT_LE((*both)[0].upper,
            (*r1)[0].upper * (*r2)[0].upper + 1e-9);
}

}  // namespace
}  // namespace s3
