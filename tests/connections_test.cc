#include <gtest/gtest.h>

#include <algorithm>

#include "core/connections.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

using social::EntityId;

// Helpers to query the builder on a fixture.
QueryExtension SingleKeyword(KeywordId k) {
  QueryExtension ext(1);
  ext[0].insert(k);
  return ext;
}

const Candidate* FindCandidate(const ComponentCandidates& cc,
                               doc::NodeId node) {
  for (const Candidate& c : cc.candidates) {
    if (c.node == node) return &c;
  }
  return nullptr;
}

class Figure1ConnectionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = s3::testing::BuildFigure1();
    inst_ = fig_.instance.get();
  }

  social::ComponentId CompOf(doc::NodeId n) {
    return inst_->components().Of(EntityId::Fragment(n));
  }

  s3::testing::Figure1 fig_;
  const S3Instance* inst_ = nullptr;
};

TEST_F(Figure1ConnectionsTest, ContainsConnectionWithSelfSource) {
  // con(d2, "university") includes (contains, d2.7.5, d2): the source of
  // a contains connection is the candidate document itself.
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(CompOf(fig_.d2_root),
                    SingleKeyword(fig_.kw_university));
  const Candidate* d2 = FindCandidate(cc, fig_.d2_root);
  ASSERT_NE(d2, nullptr);
  bool self_source = false;
  for (const auto& [src, w] : d2->sources[0]) {
    if (src == inst_->RowOfFragment(fig_.d2_root)) self_source = true;
  }
  EXPECT_TRUE(self_source);
}

TEST_F(Figure1ConnectionsTest, ContainsWeightUsesPosLength) {
  // d2.7.5 is at depth 2 below d2's root: weight η².
  const double eta = 0.5;
  ConnectionBuilder b(*inst_, eta);
  auto cc = b.Build(CompOf(fig_.d2_root),
                    SingleKeyword(fig_.kw_university));
  const Candidate* d2 = FindCandidate(cc, fig_.d2_root);
  ASSERT_NE(d2, nullptr);
  ASSERT_EQ(d2->sources[0].size(), 1u);
  EXPECT_NEAR(d2->sources[0][0].second, eta * eta, 1e-6);

  // The fragment d2.7.5 itself scores with η⁰ = 1.
  const Candidate* leaf = FindCandidate(cc, fig_.d2_7_5);
  ASSERT_NE(leaf, nullptr);
  EXPECT_NEAR(leaf->static_weight[0], 1.0, 1e-6);
}

TEST_F(Figure1ConnectionsTest, TagCreatesRelatedToConnection) {
  // u4's tag on d0.5.1 connects d0 to "university" with source u4
  // (paper's example in §3.2).
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(CompOf(fig_.d0_root),
                    SingleKeyword(fig_.kw_university));
  const Candidate* d0 = FindCandidate(cc, fig_.d0_root);
  ASSERT_NE(d0, nullptr);
  bool u4_source = false;
  for (const auto& [src, w] : d0->sources[0]) {
    if (src == inst_->RowOfUser(fig_.u4)) u4_source = true;
  }
  EXPECT_TRUE(u4_source);
}

TEST_F(Figure1ConnectionsTest, CommentCarriesSourceToAncestors) {
  // d2 comments on d0.3.2 and contains "university" => d0 is connected
  // to "university" through (commentsOn, d0.3.2, d2).
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(CompOf(fig_.d0_root),
                    SingleKeyword(fig_.kw_university));
  const Candidate* d0 = FindCandidate(cc, fig_.d0_root);
  ASSERT_NE(d0, nullptr);
  bool d2_source = false;
  for (const auto& [src, w] : d0->sources[0]) {
    if (src == inst_->RowOfFragment(fig_.d2_root)) d2_source = true;
  }
  EXPECT_TRUE(d2_source);
}

TEST_F(Figure1ConnectionsTest, SemanticExtensionFindsMsViaDegree) {
  // Ext(degree) ∋ m.s.; d1 contains "m.s." so querying "degree" reaches
  // d1 (the paper's flagship example).
  QueryExtension ext(1);
  for (KeywordId k : inst_->ExtendKeyword(fig_.kw_degree)) {
    ext[0].insert(k);
  }
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(CompOf(fig_.d1_root), ext);
  EXPECT_NE(FindCandidate(cc, fig_.d1_root), nullptr);

  // Without the extension, d1 does not match "degree".
  ConnectionBuilder b2(*inst_, 0.5);
  auto cc2 =
      b2.Build(CompOf(fig_.d1_root), SingleKeyword(fig_.kw_degree));
  EXPECT_EQ(FindCandidate(cc2, fig_.d1_root), nullptr);
}

TEST_F(Figure1ConnectionsTest, DisjointFragmentsDontMatchTogether) {
  // A query for {university, opportun}: "opportun" is only in d0.3.2.
  // d0.5.1 (tagged "university") does not cover "opportun", so it is
  // not a candidate; d0.3.2 covers both ("university" arrives through
  // the comment d2 on it); the root covers both.
  QueryExtension ext(2);
  ext[0].insert(fig_.kw_university);
  ext[1].insert(inst_->vocabulary().Find("opportun"));
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(CompOf(fig_.d0_root), ext);
  EXPECT_NE(FindCandidate(cc, fig_.d0_root), nullptr);
  EXPECT_NE(FindCandidate(cc, fig_.d0_3_2), nullptr);
  EXPECT_EQ(FindCandidate(cc, fig_.d0_5_1), nullptr);
  EXPECT_EQ(FindCandidate(cc, fig_.d0_5), nullptr);
}

TEST_F(Figure1ConnectionsTest, CapIsProductOfStaticWeights) {
  QueryExtension ext(2);
  ext[0].insert(fig_.kw_university);
  ext[1].insert(inst_->vocabulary().Find("opportun"));
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(CompOf(fig_.d0_root), ext);
  for (const Candidate& c : cc.candidates) {
    EXPECT_NEAR(c.cap, c.static_weight[0] * c.static_weight[1], 1e-9);
    EXPECT_LE(c.cap, cc.max_cap + 1e-12);
  }
}

// ---- Endorsements and higher-level tags -----------------------------------

class EndorsementTest : public ::testing::Test {
 protected:
  // d0 contains "alpha" in its child; u1 endorses the child fragment.
  void Build(bool keyword_in_doc) {
    inst_ = std::make_unique<S3Instance>();
    u0_ = inst_->AddUser("u0");
    u1_ = inst_->AddUser("u1");
    kw_ = inst_->InternKeyword("alpha");
    doc::Document d("doc");
    uint32_t child = d.AddChild(0, "par");
    if (keyword_in_doc) d.AddKeywords(child, {kw_});
    d0_ = inst_->AddDocument(std::move(d), "d0", u0_).value();
    child_node_ = inst_->docs().GlobalId(d0_, 1);
    endorsement_ =
        inst_->AddTagOnFragment(u1_, child_node_, kInvalidKeyword)
            .value();
    ASSERT_TRUE(inst_->Finalize().ok());
  }

  std::unique_ptr<S3Instance> inst_;
  social::UserId u0_ = 0, u1_ = 0;
  KeywordId kw_ = 0;
  doc::DocId d0_ = 0;
  doc::NodeId child_node_ = 0;
  social::TagId endorsement_ = 0;
};

TEST_F(EndorsementTest, EndorserBecomesSourceWhenGrounded) {
  Build(/*keyword_in_doc=*/true);
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(inst_->components().Of(EntityId::Fragment(child_node_)),
                    SingleKeyword(kw_));
  const Candidate* root =
      FindCandidate(cc, inst_->docs().RootNode(d0_));
  ASSERT_NE(root, nullptr);
  bool endorser_source = false;
  for (const auto& [src, w] : root->sources[0]) {
    if (src == inst_->RowOfUser(u1_)) endorser_source = true;
  }
  EXPECT_TRUE(endorser_source);
}

TEST_F(EndorsementTest, UngroundedEndorsementContributesNothing) {
  Build(/*keyword_in_doc=*/false);
  ConnectionBuilder b(*inst_, 0.5);
  auto cc = b.Build(inst_->components().Of(EntityId::Fragment(child_node_)),
                    SingleKeyword(kw_));
  EXPECT_TRUE(cc.candidates.empty());
}

TEST(HigherLevelTagTest, TagOnTagPropagatesToFragment) {
  // u1 tags d0's root with "alpha"; u2 tags that tag with "alpha" too.
  // Both authors become sources on the fragment (requirement R4).
  S3Instance inst;
  auto u0 = inst.AddUser("u0");
  auto u1 = inst.AddUser("u1");
  auto u2 = inst.AddUser("u2");
  KeywordId kw = inst.InternKeyword("alpha");
  doc::Document d("doc");
  doc::DocId d0 = inst.AddDocument(std::move(d), "d0", u0).value();
  doc::NodeId root = inst.docs().RootNode(d0);
  social::TagId t1 = inst.AddTagOnFragment(u1, root, kw).value();
  (void)inst.AddTagOnTag(u2, t1, kw).value();
  ASSERT_TRUE(inst.Finalize().ok());

  ConnectionBuilder b(inst, 0.5);
  auto cc = b.Build(inst.components().Of(EntityId::Fragment(root)),
                    SingleKeyword(kw));
  const Candidate* c = FindCandidate(cc, root);
  ASSERT_NE(c, nullptr);
  std::vector<uint32_t> sources;
  for (const auto& [src, w] : c->sources[0]) sources.push_back(src);
  EXPECT_NE(std::find(sources.begin(), sources.end(), inst.RowOfUser(u1)),
            sources.end());
  EXPECT_NE(std::find(sources.begin(), sources.end(), inst.RowOfUser(u2)),
            sources.end());
}

TEST(CommentChainTest, SourcesPropagateThroughCommentChains) {
  // c2 comments on c1, c1 comments on d0; c2 contains the keyword.
  // d0 must be connected with c2's root as source.
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId kw = inst.InternKeyword("alpha");
  doc::Document d("doc");
  doc::DocId d0 = inst.AddDocument(std::move(d), "d0", u).value();
  doc::Document c1doc("comment");
  doc::DocId c1 = inst.AddDocument(std::move(c1doc), "c1", u).value();
  doc::Document c2doc("comment");
  c2doc.AddKeywords(0, {kw});
  doc::DocId c2 = inst.AddDocument(std::move(c2doc), "c2", u).value();
  ASSERT_TRUE(inst.AddComment(c1, inst.docs().RootNode(d0)).ok());
  ASSERT_TRUE(inst.AddComment(c2, inst.docs().RootNode(c1)).ok());
  ASSERT_TRUE(inst.Finalize().ok());

  ConnectionBuilder b(inst, 0.5);
  auto cc = b.Build(
      inst.components().Of(EntityId::Fragment(inst.docs().RootNode(d0))),
      SingleKeyword(kw));
  const Candidate* cand = FindCandidate(cc, inst.docs().RootNode(d0));
  ASSERT_NE(cand, nullptr);
  bool c2_source = false;
  for (const auto& [src, w] : cand->sources[0]) {
    if (src == inst.RowOfFragment(inst.docs().RootNode(c2))) {
      c2_source = true;
    }
  }
  EXPECT_TRUE(c2_source);
}

TEST(TagChainTest, DeepTagOnTagChainTerminates) {
  // A long tag-on-tag chain exercises the recursive TagSources /
  // TagGrounded derivation with the cycle guards in place: every
  // author along the chain must surface as a source, with no blow-up.
  S3Instance inst;
  std::vector<social::UserId> users;
  const int kDepth = 512;
  for (int i = 0; i < kDepth + 1; ++i) {
    users.push_back(inst.AddUser("u" + std::to_string(i)));
  }
  KeywordId kw = inst.InternKeyword("chained");
  doc::Document d("doc");
  doc::DocId d0 = inst.AddDocument(std::move(d), "d0", users[0]).value();
  doc::NodeId root = inst.docs().RootNode(d0);
  // A tower of keyword tags, each on the previous one, topped by one
  // endorsement (grounded through the keyword tag right below it).
  social::TagId t = inst.AddTagOnFragment(users[1], root, kw).value();
  for (int i = 2; i < kDepth; ++i) {
    t = inst.AddTagOnTag(users[i], t, kw).value();
  }
  t = inst.AddTagOnTag(users[kDepth], t, kInvalidKeyword).value();
  ASSERT_TRUE(inst.Finalize().ok());

  ConnectionBuilder b(inst, 0.5);
  auto cc = b.Build(inst.components().Of(EntityId::Fragment(root)),
                    SingleKeyword(kw));
  const Candidate* cand = FindCandidate(cc, root);
  ASSERT_NE(cand, nullptr);
  // contains-like source is absent (document text has no keyword); the
  // keyword tag author and every endorser of the chain contribute.
  std::unordered_set<uint32_t> sources;
  for (const auto& [src, w] : cand->sources[0]) sources.insert(src);
  for (int i = 1; i <= kDepth; ++i) {
    EXPECT_TRUE(sources.contains(inst.RowOfUser(users[i]))) << "user " << i;
  }
}

TEST(CommentCycleTest, MutualCommentsReachFixpointSources) {
  // d0 and c1 comment on each other and both contain the keyword. The
  // least fixpoint gives BOTH documents both source rows; a memo entry
  // cached while the cycle guard was suppressing one direction would
  // under-approximate whichever document is visited second.
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId kw = inst.InternKeyword("loop");
  doc::Document a("doc");
  a.AddKeywords(0, {kw});
  doc::DocId d0 = inst.AddDocument(std::move(a), "d0", u).value();
  doc::Document b("doc");
  b.AddKeywords(0, {kw});
  doc::DocId c1 = inst.AddDocument(std::move(b), "c1", u).value();
  ASSERT_TRUE(inst.AddComment(c1, inst.docs().RootNode(d0)).ok());
  ASSERT_TRUE(inst.AddComment(d0, inst.docs().RootNode(c1)).ok());
  ASSERT_TRUE(inst.Finalize().ok());

  doc::NodeId d0_root = inst.docs().RootNode(d0);
  doc::NodeId c1_root = inst.docs().RootNode(c1);
  ConnectionBuilder builder(inst, 0.5);
  auto cc = builder.Build(inst.components().Of(EntityId::Fragment(d0_root)),
                          SingleKeyword(kw));
  for (doc::NodeId node : {d0_root, c1_root}) {
    const Candidate* cand = FindCandidate(cc, node);
    ASSERT_NE(cand, nullptr) << "node " << node;
    std::unordered_set<uint32_t> sources;
    for (const auto& [src, w] : cand->sources[0]) sources.insert(src);
    EXPECT_TRUE(sources.contains(inst.RowOfFragment(d0_root)))
        << "node " << node;
    EXPECT_TRUE(sources.contains(inst.RowOfFragment(c1_root)))
        << "node " << node;
    // One contains tuple plus one commentsOn tuple per source row.
    EXPECT_NEAR(cand->static_weight[0], 3.0, 1e-9) << "node " << node;
  }
}

TEST(ConnectionDedupTest, TwoExtensionMatchesOneContainsTuple) {
  // A fragment containing two members of Ext(k) yields ONE contains
  // tuple (con is a set keyed on (type, f, src)).
  S3Instance inst;
  auto u = inst.AddUser("u");
  KeywordId k_deg = inst.InternKeyword("degree");
  KeywordId k_ms = inst.InternKeyword("m.s.");
  KeywordId k_ba = inst.InternKeyword("b.a.");
  inst.DeclareSubClass("m.s.", "degree");
  inst.DeclareSubClass("b.a.", "degree");
  doc::Document d("doc");
  d.AddKeywords(0, {k_ms, k_ba});
  doc::DocId d0 = inst.AddDocument(std::move(d), "d0", u).value();
  ASSERT_TRUE(inst.Finalize().ok());

  QueryExtension ext(1);
  for (KeywordId k : inst.ExtendKeyword(k_deg)) ext[0].insert(k);
  ConnectionBuilder b(inst, 0.5);
  auto cc = b.Build(
      inst.components().Of(EntityId::Fragment(inst.docs().RootNode(d0))),
      ext);
  const Candidate* cand = FindCandidate(cc, inst.docs().RootNode(d0));
  ASSERT_NE(cand, nullptr);
  EXPECT_NEAR(cand->static_weight[0], 1.0, 1e-9);  // one tuple, η⁰
}

}  // namespace
}  // namespace s3::core
