#!/usr/bin/env bash
# Tier-1 verify sequence (ROADMAP.md) plus a short benchmark sanity run.
#
# Usage:
#   tests/run_tier1.sh            configure + build + ctest + bench smoke
#   tests/run_tier1.sh --ctest    bench smoke only (invoked from ctest,
#                                 cwd = build dir; skips the recursive build)
#
# Portability: works on runners without `nproc` (falls back to getconf,
# then 2) and tolerates builds configured with -DS3_BUILD_BENCH=OFF
# (the bench smoke is skipped with a notice instead of failing).
# ctest failures propagate through `set -e` — the script's exit code is
# the gate CI consumes.
#
# Benchmark regression tracking (non-blocking in CI): after a full run,
# compare the fresh bench output against the committed baseline with
#   tools/check_bench_regression.py --fresh build/BENCH_micro.json
# (baseline: bench/baselines/BENCH_micro.json, tolerance 25%). Refresh
# the baseline by overwriting that file after an intentional change.
set -euo pipefail

# Parallelism: nproc is not guaranteed on minimal CI images.
n_jobs() {
  nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 2
}

if [[ "${1:-}" == "--ctest" ]]; then
  build_dir="$(pwd)"
  if [[ ! -x "${build_dir}/bench_micro" ]]; then
    # The tier1_smoke ctest entry is only registered when
    # S3_BUILD_BENCH=ON, so a missing binary here is a real failure
    # (broken build, wrong cwd) — failing keeps the gate honest. The
    # full-run path below is the one that tolerates bench-less builds.
    echo "tier1_smoke: bench_micro not found in ${build_dir}" >&2
    exit 1
  fi
  "${build_dir}/bench_micro" --benchmark_min_time=0.01 \
    --benchmark_filter='BM_(MatrixPropagate|PorterStem)' \
    --benchmark_out="${build_dir}/BENCH_smoke.json" \
    --benchmark_out_format=json
  exit 0
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j"$(n_jobs)"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(n_jobs)" \
  -E tier1_smoke

if [[ -x "${build_dir}/bench_micro" ]]; then
  "${build_dir}/bench_micro" --benchmark_min_time=0.01 \
    --benchmark_out="${build_dir}/BENCH_smoke.json" \
    --benchmark_out_format=json
else
  echo "bench_micro not built (S3_BUILD_BENCH=OFF?); skipping bench smoke"
fi
echo "tier-1 verify + bench smoke OK"
