#!/usr/bin/env bash
# Tier-1 verify sequence (ROADMAP.md) plus a short benchmark sanity run.
#
# Usage:
#   tests/run_tier1.sh            configure + build + ctest + bench smoke
#   tests/run_tier1.sh --ctest    bench smoke only (invoked from ctest,
#                                 cwd = build dir; skips the recursive build)
set -euo pipefail

if [[ "${1:-}" == "--ctest" ]]; then
  build_dir="$(pwd)"
  if [[ ! -x "${build_dir}/bench_micro" ]]; then
    echo "tier1_smoke: bench_micro not found in ${build_dir}" >&2
    exit 1
  fi
  "${build_dir}/bench_micro" --benchmark_min_time=0.01 \
    --benchmark_filter='BM_(MatrixPropagate|PorterStem)' \
    --benchmark_out="${build_dir}/BENCH_smoke.json" \
    --benchmark_out_format=json
  exit 0
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)" -E tier1_smoke

"${build_dir}/bench_micro" --benchmark_min_time=0.01 \
  --benchmark_out="${build_dir}/BENCH_smoke.json" \
  --benchmark_out_format=json
echo "tier-1 verify + bench smoke OK"
