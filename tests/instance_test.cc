#include <gtest/gtest.h>

#include <algorithm>

#include "core/s3_instance.h"
#include "test_fixtures.h"

namespace s3::core {
namespace {

using social::EntityId;

TEST(S3InstanceTest, AddUserAssignsSequentialIds) {
  S3Instance inst;
  EXPECT_EQ(inst.AddUser("a"), 0u);
  EXPECT_EQ(inst.AddUser("b"), 1u);
  EXPECT_EQ(inst.UserCount(), 2u);
  EXPECT_EQ(inst.users()[1].uri, "b");
}

TEST(S3InstanceTest, SocialEdgeValidation) {
  S3Instance inst;
  inst.AddUser("a");
  inst.AddUser("b");
  EXPECT_TRUE(inst.AddSocialEdge(0, 1, 0.5).ok());
  EXPECT_FALSE(inst.AddSocialEdge(0, 9, 0.5).ok());
  EXPECT_FALSE(inst.AddSocialEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(inst.AddSocialEdge(0, 1, 1.5).ok());
}

TEST(S3InstanceTest, AddDocumentCreatesPostedByEdges) {
  S3Instance inst;
  inst.AddUser("a");
  doc::Document d("doc");
  doc::DocId id = inst.AddDocument(std::move(d), "d0", 0).value();
  EXPECT_EQ(id, 0u);
  // postedBy + inverse
  EXPECT_EQ(inst.edges().CountLabel(social::EdgeLabel::kPostedBy), 1u);
  EXPECT_EQ(inst.edges().CountLabel(social::EdgeLabel::kPostedByInv), 1u);
}

TEST(S3InstanceTest, AddDocumentUnknownPosterFails) {
  S3Instance inst;
  doc::Document d("doc");
  EXPECT_FALSE(inst.AddDocument(std::move(d), "d0", 3).ok());
}

TEST(S3InstanceTest, CommentSelfRejected) {
  S3Instance inst;
  inst.AddUser("a");
  doc::Document d("doc");
  doc::DocId id = inst.AddDocument(std::move(d), "d0", 0).value();
  EXPECT_FALSE(inst.AddComment(id, inst.docs().RootNode(id)).ok());
}

TEST(S3InstanceTest, CommentWiring) {
  S3Instance inst;
  inst.AddUser("a");
  doc::Document d0("doc");
  doc::DocId i0 = inst.AddDocument(std::move(d0), "d0", 0).value();
  doc::Document d1("doc");
  doc::DocId i1 = inst.AddDocument(std::move(d1), "d1", 0).value();
  doc::NodeId target = inst.docs().RootNode(i0);
  ASSERT_TRUE(inst.AddComment(i1, target).ok());
  EXPECT_EQ(inst.CommentTarget(i1), target);
  EXPECT_EQ(inst.CommentTarget(i0), doc::kInvalidNode);
  ASSERT_EQ(inst.CommentsOnFragment(target).size(), 1u);
  EXPECT_EQ(inst.CommentsOnFragment(target)[0], inst.docs().RootNode(i1));
}

TEST(S3InstanceTest, TagWiring) {
  S3Instance inst;
  inst.AddUser("a");
  doc::Document d("doc");
  doc::DocId id = inst.AddDocument(std::move(d), "d0", 0).value();
  doc::NodeId root = inst.docs().RootNode(id);
  KeywordId kw = inst.InternKeyword("x");
  social::TagId t = inst.AddTagOnFragment(0, root, kw).value();
  EXPECT_EQ(inst.TagCount(), 1u);
  EXPECT_FALSE(inst.tags()[t].IsEndorsement());
  ASSERT_EQ(inst.TagsOn(EntityId::Fragment(root)).size(), 1u);
  // Higher-level tag on the tag (requirement R4).
  social::TagId t2 =
      inst.AddTagOnTag(0, t, kInvalidKeyword).value();
  EXPECT_TRUE(inst.tags()[t2].IsEndorsement());
  ASSERT_EQ(inst.TagsOn(EntityId::Tag(t)).size(), 1u);
}

TEST(S3InstanceTest, MutationAfterFinalizeRejected) {
  S3Instance inst;
  inst.AddUser("a");
  inst.AddUser("b");
  ASSERT_TRUE(inst.Finalize().ok());
  EXPECT_FALSE(inst.AddSocialEdge(0, 1, 0.5).ok());
  doc::Document d("doc");
  EXPECT_FALSE(inst.AddDocument(std::move(d), "d0", 0).ok());
  EXPECT_FALSE(inst.Finalize().ok());  // double finalize
}

TEST(S3InstanceTest, InternTextPipeline) {
  S3Instance inst;
  auto kws = inst.InternText("Universities and the degrees");
  // "and"/"the" are stop words; the rest are stemmed and interned.
  ASSERT_EQ(kws.size(), 2u);
  EXPECT_EQ(inst.vocabulary().Spelling(kws[0]), "univers");
  EXPECT_EQ(inst.vocabulary().Spelling(kws[1]), "degre");
}

TEST(S3InstanceTest, UserTypeTriplesAdded) {
  S3Instance inst;
  inst.AddUser("u:alice");
  ASSERT_TRUE(inst.Finalize().ok());
  const auto& t = inst.terms();
  rdf::TermId alice = t.Find("u:alice", rdf::TermKind::kUri);
  rdf::TermId type = t.Find("rdf:type", rdf::TermKind::kUri);
  rdf::TermId user_class = t.Find("S3:user", rdf::TermKind::kUri);
  ASSERT_NE(alice, rdf::kInvalidTerm);
  EXPECT_TRUE(inst.rdf_graph().Contains(alice, type, user_class));
}

// ---- ExtendKeyword ---------------------------------------------------------

TEST(S3InstanceTest, ExtendKeywordThroughOntology) {
  S3Instance inst;
  KeywordId degree = inst.InternKeyword("degree");
  KeywordId ms = inst.InternKeyword("m.s.");
  inst.DeclareSubClass("m.s.", "degree");
  ASSERT_TRUE(inst.Finalize().ok());
  auto ext = inst.ExtendKeyword(degree);
  EXPECT_EQ(ext[0], degree);
  EXPECT_NE(std::find(ext.begin(), ext.end(), ms), ext.end());
}

TEST(S3InstanceTest, ExtendKeywordNoOntologyIsSingleton) {
  S3Instance inst;
  KeywordId k = inst.InternKeyword("plainword");
  ASSERT_TRUE(inst.Finalize().ok());
  auto ext = inst.ExtendKeyword(k);
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], k);
}

TEST(S3InstanceTest, ExtendKeywordTransitive) {
  S3Instance inst;
  KeywordId grad = inst.InternKeyword("graduate");
  KeywordId ms = inst.InternKeyword("m.s.");
  inst.DeclareSubClass("m.s.", "degree");
  inst.DeclareSubClass("degree", "graduate");
  ASSERT_TRUE(inst.Finalize().ok());
  auto ext = inst.ExtendKeyword(grad);
  // Saturation closes ≺sc, so m.s. is in Ext(graduate).
  EXPECT_NE(std::find(ext.begin(), ext.end(), ms), ext.end());
}

// ---- Figure 3 end-to-end wiring ------------------------------------------

TEST(Figure3InstanceTest, Populations) {
  auto fig = s3::testing::BuildFigure3();
  EXPECT_EQ(fig.instance->UserCount(), 4u);
  EXPECT_EQ(fig.instance->docs().DocumentCount(), 2u);
  EXPECT_EQ(fig.instance->docs().NodeCount(), 5u);
  EXPECT_EQ(fig.instance->TagCount(), 2u);
}

TEST(Figure3InstanceTest, ComponentsWithKeywordDirectory) {
  auto fig = s3::testing::BuildFigure3();
  const auto& inst = *fig.instance;
  social::ComponentId c =
      inst.components().Of(EntityId::Fragment(fig.uri0));
  // k0 is in URI0.0.0, k1 in URI0.1 and URI1, k2 is a tag keyword.
  for (KeywordId k : {fig.k0, fig.k1, fig.k2}) {
    const auto& comps = inst.ComponentsWithKeyword(k);
    ASSERT_EQ(comps.size(), 1u) << "keyword " << k;
    EXPECT_EQ(comps[0], c);
  }
}

TEST(Figure3InstanceTest, RowMappingsConsistent) {
  auto fig = s3::testing::BuildFigure3();
  const auto& inst = *fig.instance;
  const auto& layout = inst.layout();
  EXPECT_EQ(layout.Entity(inst.RowOfUser(fig.u2)),
            EntityId::User(fig.u2));
  EXPECT_EQ(layout.Entity(inst.RowOfFragment(fig.uri0_1)),
            EntityId::Fragment(fig.uri0_1));
  EXPECT_EQ(layout.Entity(inst.RowOfTag(fig.a0)), EntityId::Tag(fig.a0));
}

}  // namespace
}  // namespace s3::core
