// Concurrency surface of the sharding layer (runs under TSan in CI):
// queries fan through the router from many threads while one shard's
// group receives live updates — every response must be internally
// consistent with exactly one generation of its home shard, and
// responses on the final generation must equal the unsharded answer
// bit-for-bit.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/instance_delta.h"
#include "core/s3_instance.h"
#include "gtest/gtest.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"

namespace s3::shard {
namespace {

using core::Query;
using core::S3Instance;

// Two-group population: group A (users 0..2) receives updates, group B
// (users 3..5) stays read-only.
struct TwoGroups {
  std::shared_ptr<const S3Instance> instance;
  KeywordId hot;
};

TwoGroups Build() {
  TwoGroups out;
  auto inst = std::make_unique<S3Instance>();
  for (uint32_t u = 0; u < 6; ++u) inst->AddUser("u" + std::to_string(u));
  out.hot = inst->InternKeyword("hot");
  const KeywordId other = inst->InternKeyword("other");

  for (uint32_t g = 0; g < 2; ++g) {
    const social::UserId base = g * 3;
    for (uint32_t i = 0; i < 3; ++i) {
      doc::Document d("doc");
      d.AddKeywords(0, {out.hot});
      d.AddKeywords(d.AddChild(0, "sec"), {other});
      (void)inst->AddDocument(std::move(d),
                              "g" + std::to_string(g) + "d" +
                                  std::to_string(i),
                              base + i);
    }
    (void)inst->AddSocialEdge(base, base + 1, 0.8);
    (void)inst->AddSocialEdge(base + 1, base + 2, 0.6);
    (void)inst->AddSocialEdge(base + 2, base, 0.4);
  }
  EXPECT_TRUE(inst->Finalize().ok());
  out.instance = std::move(inst);
  return out;
}

class ShardRouterConcurrentTest : public ::testing::TestWithParam<bool> {};

TEST_P(ShardRouterConcurrentTest, UpdatesOnOneShardUnderQueryLoad) {
  const bool cache_on = GetParam();
  TwoGroups fixture = Build();

  PartitionOptions popts;
  popts.shard_count = 2;
  auto partition = Partition(*fixture.instance, popts);
  ASSERT_TRUE(partition.ok());

  ShardRouterOptions ropts;
  ropts.service.workers = 2;
  ropts.service.enable_cache = cache_on;
  ropts.service.search.k = 8;
  auto made = ShardRouter::Serve(std::move(*partition), ropts);
  ASSERT_TRUE(made.ok());
  ShardRouter& router = **made;

  constexpr int kUpdates = 6;
  constexpr int kClientThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<size_t> answered{0};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const social::UserId seeker =
            static_cast<social::UserId>(rng.Uniform(6));
        auto resp = rng.Chance(0.5)
                        ? router.Query(Query{seeker, {fixture.hot}})
                        : router.QueryGlobal(Query{seeker, {fixture.hot}});
        if (!resp.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Internal consistency: entries are globally valid node ids,
        // sorted by (upper desc, node asc); the generation vector has
        // one entry per shard.
        EXPECT_EQ(resp->generations.size(), router.shard_count());
        for (size_t i = 1; i < resp->entries.size(); ++i) {
          const auto& a = resp->entries[i - 1];
          const auto& b = resp->entries[i];
          EXPECT_TRUE(a.upper > b.upper ||
                      (a.upper == b.upper && a.node < b.node));
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: grow group A one document per update, through the router,
  // pacing the swaps so queries land on several generations.
  for (int i = 0; i < kUpdates; ++i) {
    auto update = router.BeginUpdate();
    doc::Document d("doc");
    d.AddKeywords(0, {fixture.hot});
    auto added = update.AddDocument(
        d, "live-" + std::to_string(i),
        static_cast<social::UserId>(i % 3));  // group A posters
    ASSERT_TRUE(added.ok());
    ASSERT_TRUE(router.ApplyUpdate(update).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Let the clients observe the final generation before stopping.
  for (int spin = 0; spin < 2000 && answered.load() < 64; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(answered.load(), 0u);

  // Final state equals an unsharded instance that applied the same
  // deltas (one combined reference rebuilt by chained ApplyDelta).
  std::shared_ptr<const S3Instance> reference = fixture.instance;
  for (int i = 0; i < kUpdates; ++i) {
    core::InstanceDelta delta(reference);
    doc::Document d("doc");
    d.AddKeywords(0, {fixture.hot});
    ASSERT_TRUE(delta
                    .AddDocument(d, "live-" + std::to_string(i),
                                 static_cast<social::UserId>(i % 3))
                    .ok());
    auto next = reference->ApplyDelta(delta);
    ASSERT_TRUE(next.ok());
    reference = *next;
  }
  core::S3kSearcher searcher(*reference, ropts.service.search);
  for (social::UserId seeker = 0; seeker < 6; ++seeker) {
    Query q{seeker, {fixture.hot}};
    auto sharded = router.Query(q);
    ASSERT_TRUE(sharded.ok());
    auto expect = searcher.Search(q);
    ASSERT_TRUE(expect.ok());
    ASSERT_EQ(sharded->entries.size(), expect->size()) << "seeker " << seeker;
    for (size_t i = 0; i < expect->size(); ++i) {
      EXPECT_EQ(sharded->entries[i].node, (*expect)[i].node);
      EXPECT_EQ(sharded->entries[i].lower, (*expect)[i].lower);
      EXPECT_EQ(sharded->entries[i].upper, (*expect)[i].upper);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, ShardRouterConcurrentTest,
                         ::testing::Bool());

}  // namespace
}  // namespace s3::shard
