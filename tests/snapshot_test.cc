// Binary snapshot codec tests: round-trip fidelity (bit-for-bit
// derived state, generation/lineage, query equivalence), the
// format-dispatch seam, the inspector surface, and robustness — a
// truncated, bit-flipped or garbage snapshot (text or binary) must
// come back InvalidArgument, never crash (the sweep runs under
// ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "common/mmap_file.h"
#include "core/instance_delta.h"
#include "core/s3k.h"
#include "core/serialization.h"
#include "core/snapshot.h"
#include "core/snapshot_binary.h"
#include "test_fixtures.h"
#include "workload/instance_stats.h"

namespace s3::core {
namespace {

// ---- fidelity helpers --------------------------------------------------

// `check_identity` also pins generation/lineage — golden-fixture
// comparisons drop it (lineage tokens are per-process).
void ExpectSameDerivedState(const S3Instance& got, const S3Instance& want,
                            bool check_identity = true) {
  ASSERT_EQ(got.layout().total(), want.layout().total());

  // Transition matrix: rows and denominators bit for bit.
  ASSERT_EQ(got.matrix().rows(), want.matrix().rows());
  ASSERT_EQ(got.matrix().nonzeros(), want.matrix().nonzeros());
  for (uint32_t row = 0; row < want.matrix().rows(); ++row) {
    EXPECT_EQ(got.matrix().Denominator(row), want.matrix().Denominator(row))
        << "denominator row " << row;
    auto a = got.matrix().Row(row);
    auto b = want.matrix().Row(row);
    ASSERT_EQ(a.size(), b.size()) << "row " << row;
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first) << "row " << row;
      EXPECT_EQ(a[i].second, b[i].second) << "row " << row;
    }
  }

  // Component partition: identical ids per row.
  ASSERT_EQ(got.components().ComponentCount(),
            want.components().ComponentCount());
  for (uint32_t row = 0; row < want.layout().total(); ++row) {
    EXPECT_EQ(got.components().OfRow(row), want.components().OfRow(row))
        << "component of row " << row;
  }

  // Postings and the keyword -> component directory.
  for (KeywordId k = 0; k < want.vocabulary().size(); ++k) {
    EXPECT_EQ(got.index().Postings(k), want.index().Postings(k))
        << "postings of keyword " << k;
    EXPECT_EQ(got.ComponentsWithKeyword(k), want.ComponentsWithKeyword(k))
        << "components of keyword " << k;
  }

  if (check_identity) {
    EXPECT_EQ(got.generation(), want.generation());
    EXPECT_EQ(got.lineage(), want.lineage());
  }
  EXPECT_EQ(got.rdf_social_edges(), want.rdf_social_edges());
  EXPECT_EQ(got.saturation_stats().derived_triples,
            want.saturation_stats().derived_triples);
  EXPECT_EQ(got.terms().size(), want.terms().size());
  EXPECT_EQ(got.rdf_graph().size(), want.rdf_graph().size());
}

void ExpectSameQueryResults(const S3Instance& got, const S3Instance& want,
                            const Query& q) {
  S3kOptions opts;
  opts.k = 5;
  auto a = S3kSearcher(got, opts).Search(q);
  auto b = S3kSearcher(want, opts).Search(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < b->size(); ++i) {
    EXPECT_EQ((*a)[i].node, (*b)[i].node) << "rank " << i;
    // Bit-for-bit: the reloaded derived structures are the saved ones.
    EXPECT_EQ((*a)[i].lower, (*b)[i].lower) << "rank " << i;
    EXPECT_EQ((*a)[i].upper, (*b)[i].upper) << "rank " << i;
  }
}

// ---- round trips -------------------------------------------------------

TEST(BinarySnapshotTest, RequiresFinalizedInstance) {
  S3Instance inst;
  inst.AddUser("u");
  auto saved = SaveBinarySnapshot(inst);
  EXPECT_EQ(saved.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BinarySnapshotTest, Figure1RoundTripBitForBit) {
  auto fig = s3::testing::BuildFigure1();
  auto blob = SaveBinarySnapshot(*fig.instance);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_TRUE(LooksLikeBinarySnapshot(*blob));

  auto loaded = LoadBinarySnapshot(*blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDerivedState(**loaded, *fig.instance);
  ExpectSameQueryResults(**loaded, *fig.instance,
                         Query{fig.u1, {fig.kw_degree}});
  ExpectSameQueryResults(**loaded, *fig.instance,
                         Query{fig.u0, {fig.kw_university, fig.kw_ms}});

  // The population survives too (text re-export still works).
  EXPECT_EQ(SaveInstance(**loaded), SaveInstance(*fig.instance));
}

TEST(BinarySnapshotTest, RandomInstancesRoundTrip) {
  for (uint64_t seed : {71ull, 72ull, 73ull}) {
    s3::testing::RandomInstanceParams p;
    p.seed = seed;
    auto ri = s3::testing::BuildRandomInstance(p);
    auto blob = SaveBinarySnapshot(*ri.instance);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    auto loaded = LoadBinarySnapshot(*blob);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                             << loaded.status().ToString();

    workload::InstanceStats a = workload::ComputeStats(*ri.instance);
    workload::InstanceStats b = workload::ComputeStats(**loaded);
    EXPECT_EQ(a.users, b.users) << seed;
    EXPECT_EQ(a.documents, b.documents) << seed;
    EXPECT_EQ(a.tags, b.tags) << seed;
    EXPECT_EQ(a.network_edges, b.network_edges) << seed;
    EXPECT_EQ(a.components, b.components) << seed;
    EXPECT_EQ(a.rdf_triples, b.rdf_triples) << seed;
    ExpectSameDerivedState(**loaded, *ri.instance);
    for (KeywordId k : ri.keywords) {
      ExpectSameQueryResults(**loaded, *ri.instance, Query{0, {k}});
    }
  }
}

TEST(BinarySnapshotTest, SavedBytesAreDeterministic) {
  auto fig = s3::testing::BuildFigure3();
  auto a = SaveBinarySnapshot(*fig.instance);
  auto b = SaveBinarySnapshot(*fig.instance);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

// An applied-delta generation round-trips with its generation and
// lineage, and continues to accept deltas after reload exactly like
// the never-serialized instance.
TEST(BinarySnapshotTest, AppliedGenerationRoundTripsAndStaysLive) {
  auto fig = s3::testing::BuildFigure1();
  std::shared_ptr<const S3Instance> base = std::move(fig.instance);

  InstanceDelta delta(base);
  doc::Document d("doc");
  d.AddKeywords(0, {delta.InternKeyword("fresh")});
  ASSERT_TRUE(delta.AddDocument(std::move(d), "gen1-doc", fig.u2).ok());
  ASSERT_TRUE(delta.AddSocialEdge(fig.u0, fig.u2, 0.4).ok());
  auto gen1 = base->ApplyDelta(delta);
  ASSERT_TRUE(gen1.ok());
  ASSERT_EQ((*gen1)->generation(), 1u);

  auto blob = SaveBinarySnapshot(**gen1);
  ASSERT_TRUE(blob.ok());
  auto loaded = LoadBinarySnapshot(*blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->generation(), 1u);
  EXPECT_EQ((*loaded)->lineage(), (*gen1)->lineage());
  ExpectSameDerivedState(**loaded, **gen1);

  // Same further delta against both: successors must agree bit for bit.
  auto extend = [&](std::shared_ptr<const S3Instance> snap) {
    InstanceDelta next(snap);
    doc::Document nd("doc");
    nd.AddKeywords(0, {next.InternKeyword("fresh")});
    EXPECT_TRUE(next.AddDocument(std::move(nd), "gen2-doc", fig.u1).ok());
    auto applied = snap->ApplyDelta(next);
    EXPECT_TRUE(applied.ok());
    return *applied;
  };
  auto live2 = extend(*gen1);
  auto reloaded2 = extend(*loaded);
  EXPECT_EQ(reloaded2->generation(), 2u);
  ExpectSameQueryResults(*reloaded2, *live2,
                         Query{fig.u0, {fig.kw_university}});
}

// A fresh Finalize after restoring a snapshot must not collide with
// the restored lineage token.
TEST(BinarySnapshotTest, RestoredLineageIsReserved) {
  auto fig = s3::testing::BuildFigure3();
  auto blob = SaveBinarySnapshot(*fig.instance);
  ASSERT_TRUE(blob.ok());
  auto loaded = LoadBinarySnapshot(*blob);
  ASSERT_TRUE(loaded.ok());

  auto other = s3::testing::BuildFigure3();  // runs Finalize
  EXPECT_NE(other.instance->lineage(), (*loaded)->lineage());
}

// ---- the format seam ---------------------------------------------------

TEST(SnapshotSeamTest, DetectsAndLoadsBothFormats) {
  auto fig = s3::testing::BuildFigure1();
  auto text = SaveSnapshot(*fig.instance, SnapshotFormat::kText);
  auto binary = SaveSnapshot(*fig.instance, SnapshotFormat::kBinary);
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(binary.ok());

  ASSERT_TRUE(DetectSnapshotFormat(*text).ok());
  EXPECT_EQ(*DetectSnapshotFormat(*text), SnapshotFormat::kText);
  ASSERT_TRUE(DetectSnapshotFormat(*binary).ok());
  EXPECT_EQ(*DetectSnapshotFormat(*binary), SnapshotFormat::kBinary);
  EXPECT_FALSE(DetectSnapshotFormat("what even is this").ok());

  auto from_text = LoadSnapshot(*text);
  ASSERT_TRUE(from_text.ok());
  EXPECT_TRUE((*from_text)->finalized());
  // Text load rebuilds: fresh lineage, same answers.
  EXPECT_NE((*from_text)->lineage(), fig.instance->lineage());
  S3kOptions opts;
  opts.k = 5;
  auto a = S3kSearcher(**from_text, opts).Search(
      Query{fig.u1, {fig.kw_degree}});
  auto b = S3kSearcher(*fig.instance, opts).Search(
      Query{fig.u1, {fig.kw_degree}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < b->size(); ++i) {
    EXPECT_EQ((*a)[i].node, (*b)[i].node);
  }

  auto from_binary = LoadSnapshot(*binary);
  ASSERT_TRUE(from_binary.ok());
  ExpectSameDerivedState(**from_binary, *fig.instance);
}

// ---- inspection --------------------------------------------------------

TEST(SnapshotInspectTest, ReportsSectionsAndMeta) {
  auto fig = s3::testing::BuildFigure1();
  auto blob = SaveBinarySnapshot(*fig.instance, kBinarySnapshotV2);
  ASSERT_TRUE(blob.ok());
  auto info = InspectBinarySnapshot(*blob);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kBinarySnapshotV2);
  EXPECT_EQ(info->generation, 0u);
  EXPECT_EQ(info->lineage, fig.instance->lineage());
  EXPECT_EQ(info->n_users, fig.instance->UserCount());
  EXPECT_EQ(info->n_nodes, fig.instance->docs().NodeCount());
  EXPECT_EQ(info->n_tags, fig.instance->TagCount());
  ASSERT_EQ(info->sections.size(), 17u);
  for (const auto& section : info->sections) {
    EXPECT_TRUE(section.crc_ok) << section.name;
    // Compact sections report the decoded footprint they expand to; raw
    // and aligned sections are stored as-is.
    if (std::string_view(section.encoding) == "varint-delta") {
      EXPECT_GE(section.mem_bytes, section.size) << section.name;
    } else {
      EXPECT_EQ(section.mem_bytes, section.size) << section.name;
    }
  }
  // The aligned (zero-copy) sections sit at 64-byte file offsets.
  std::vector<std::string_view> aligned;
  for (const auto& section : info->sections) {
    if (std::string_view(section.encoding) == "aligned") {
      aligned.push_back(section.name);
    }
  }
  EXPECT_EQ(aligned, (std::vector<std::string_view>{
                         "MATRIXROWPTR", "MATRIXVALS", "MATRIXDENOM",
                         "FOREST"}));
}

TEST(SnapshotInspectTest, ReportsV1Sections) {
  auto fig = s3::testing::BuildFigure1();
  auto blob = SaveBinarySnapshot(*fig.instance, kBinarySnapshotV1);
  ASSERT_TRUE(blob.ok());
  auto info = InspectBinarySnapshot(*blob);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kBinarySnapshotV1);
  ASSERT_EQ(info->sections.size(), 14u);
  for (const auto& section : info->sections) {
    EXPECT_TRUE(section.crc_ok) << section.name;
    EXPECT_EQ(std::string_view(section.encoding), "raw") << section.name;
    EXPECT_EQ(section.mem_bytes, section.size) << section.name;
  }
}

TEST(SnapshotInspectTest, FlagsCorruptSection) {
  auto fig = s3::testing::BuildFigure1();
  auto blob = SaveBinarySnapshot(*fig.instance);
  ASSERT_TRUE(blob.ok());
  // Flip a byte near the end (inside the last section's payload).
  std::string corrupt = *blob;
  corrupt[corrupt.size() - 3] ^= 0x40;
  auto info = InspectBinarySnapshot(corrupt);
  ASSERT_TRUE(info.ok());
  bool any_bad = false;
  for (const auto& section : info->sections) any_bad |= !section.crc_ok;
  EXPECT_TRUE(any_bad);
  // And the loader refuses it.
  EXPECT_EQ(LoadBinarySnapshot(corrupt).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- robustness: corrupt binary input ----------------------------------

// Parameterized over the wire format: both v1 and v2 must reject every
// truncation, bit flip and garbage input.
class BinarySnapshotRobustnessTest
    : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    auto fig = s3::testing::BuildFigure1();
    auto blob = SaveBinarySnapshot(*fig.instance, GetParam());
    ASSERT_TRUE(blob.ok());
    blob_ = std::move(*blob);
  }

  // Load must fail cleanly — InvalidArgument, no crash, no UB.
  void ExpectRejected(std::string_view bytes, const std::string& what) {
    auto loaded = LoadBinarySnapshot(bytes);
    ASSERT_FALSE(loaded.ok()) << what;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << what << ": " << loaded.status().ToString();
  }

  std::string blob_;
};

INSTANTIATE_TEST_SUITE_P(Formats, BinarySnapshotRobustnessTest,
                         ::testing::Values(kBinarySnapshotV1,
                                           kBinarySnapshotV2),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

TEST_P(BinarySnapshotRobustnessTest, TruncationsNeverCrash) {
  // Dense sweep over the header + first sections, coarse sweep beyond.
  for (size_t len = 0; len < std::min<size_t>(blob_.size(), 300); ++len) {
    ExpectRejected(std::string_view(blob_).substr(0, len),
                   "truncated to " + std::to_string(len));
  }
  for (size_t len = 300; len < blob_.size(); len += 97) {
    ExpectRejected(std::string_view(blob_).substr(0, len),
                   "truncated to " + std::to_string(len));
  }
}

TEST_P(BinarySnapshotRobustnessTest, BitFlipsNeverCrash) {
  for (size_t at = 0; at < blob_.size(); at += 13) {
    for (int bit : {0, 3, 7}) {
      std::string corrupt = blob_;
      corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << bit));
      // Every byte is either a validated header field or covered by a
      // section checksum, so any flip must be detected.
      ExpectRejected(corrupt, "bit " + std::to_string(bit) + " at byte " +
                                  std::to_string(at));
    }
  }
}

TEST_P(BinarySnapshotRobustnessTest, GarbageNeverCrashes) {
  ExpectRejected("", "empty");
  ExpectRejected("S3 v1\nUSER u\n", "text dump fed to binary loader");
  std::string junk(4096, '\0');
  for (size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<char>((i * 131 + 17) & 0xff);
  }
  ExpectRejected(junk, "pseudo-random junk");
  // Valid magic followed by junk.
  std::string magic_junk = blob_.substr(0, 8) + junk;
  ExpectRejected(magic_junk, "magic + junk");
  // Trailing garbage after a valid snapshot.
  ExpectRejected(blob_ + "tail", "trailing bytes");
}

// A *checksum-valid* but semantically hostile snapshot must still be
// rejected: rewrite a section payload and refresh its stored CRC, so
// only structural validation stands between the bytes and the engine.
TEST(BinarySnapshotConfusionTest, CrcValidKindConfusionIsRejected) {
  // Frame-walking is v1-specific: pin the version.
  std::string blob_;
  {
    auto fig = s3::testing::BuildFigure1();
    auto v1 = SaveBinarySnapshot(*fig.instance, kBinarySnapshotV1);
    ASSERT_TRUE(v1.ok());
    blob_ = std::move(*v1);
  }
  // Walk the frame table (8-byte magic, u32 version, u32 count, then
  // per section: u32 id, u64 size, u32 crc, payload) to the EDGES
  // section (id 10).
  auto rd32 = [&](const std::string& b, size_t at) {
    return ByteReader(std::string_view(b).substr(at, 4)).U32();
  };
  auto rd64 = [&](const std::string& b, size_t at) {
    return ByteReader(std::string_view(b).substr(at, 8)).U64();
  };
  size_t pos = 8 + 4 + 4;
  size_t edges_payload = 0, edges_size = 0, edges_crc_at = 0;
  while (pos + 16 <= blob_.size()) {
    const uint32_t id = rd32(blob_, pos);
    const uint64_t size = rd64(blob_, pos + 4);
    if (id == 10) {
      edges_crc_at = pos + 12;
      edges_payload = pos + 16;
      edges_size = static_cast<size_t>(size);
      break;
    }
    pos += 16 + static_cast<size_t>(size);
  }
  ASSERT_NE(edges_payload, 0u) << "EDGES section not found";

  // Find a kCommentsOn edge (label 3) and rewrite its source to user 0
  // (packed kind bits 00): in range for USERS, hostile for the
  // comments_on_ rebuild, invisible to the checksum once refreshed.
  std::string corrupt = blob_;
  bool rewrote = false;
  size_t at = edges_payload + 8;  // skip the u64 edge count
  while (at + 17 <= edges_payload + edges_size) {
    if (static_cast<uint8_t>(corrupt[at]) ==
        static_cast<uint8_t>(social::EdgeLabel::kCommentsOn)) {
      corrupt[at + 1] = corrupt[at + 2] = corrupt[at + 3] =
          corrupt[at + 4] = '\0';  // source packed = 0 -> User(0)
      rewrote = true;
      break;
    }
    at += 17;
  }
  ASSERT_TRUE(rewrote) << "no kCommentsOn edge in the fixture";
  std::string fresh_crc;
  ByteWriter(&fresh_crc)
      .U32(Crc32(std::string_view(corrupt).substr(edges_payload,
                                                  edges_size)));
  corrupt.replace(edges_crc_at, 4, fresh_crc);

  // Sanity: the refreshed checksum passes frame inspection...
  auto info = InspectBinarySnapshot(corrupt);
  ASSERT_TRUE(info.ok());
  for (const auto& section : info->sections) {
    EXPECT_TRUE(section.crc_ok) << section.name;
  }
  // ...and the loader still rejects the kind confusion.
  auto loaded = LoadBinarySnapshot(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("kinds do not match"),
            std::string::npos)
      << loaded.status().ToString();
}

// ---- v2 zero-copy attach -----------------------------------------------

// File offset and size of a v2 section's payload, straight from the
// section table (magic 8 + version/count/crc 12, then 36-byte entries:
// id u32, encoding u8, elem u8, reserved u16, offset u64, size u64,
// mem u64, crc u32).
std::pair<size_t, size_t> V2SectionExtent(const std::string& blob,
                                          uint32_t id) {
  const size_t entry = 8 + 12 + (id - 1) * 36;
  ByteReader r(std::string_view(blob).substr(entry, 36));
  r.Skip(8);
  const uint64_t offset = r.U64();
  const uint64_t size = r.U64();
  return {static_cast<size_t>(offset), static_cast<size_t>(size)};
}

class SnapshotAttachTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = s3::testing::BuildFigure1();
    auto blob = SaveBinarySnapshot(*fig_.instance, kBinarySnapshotV2);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    blob_ = std::move(*blob);
  }

  s3::testing::Figure1 fig_;
  std::string blob_;
};

TEST_F(SnapshotAttachTest, MmapAttachMatchesHeapLoadBitForBit) {
  auto region = MappedRegion::FromBuffer(blob_);
  auto attached = AttachBinarySnapshot(region);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  auto heap = LoadBinarySnapshot(blob_);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();

  // The aligned sections really are views into the region (heap
  // buffers from FromBuffer are 16-byte aligned and every aligned
  // payload sits at a 64-byte file offset).
  EXPECT_TRUE((*attached)->matrix().values().is_view());
  EXPECT_TRUE((*attached)->matrix().row_ptr().is_view());
  EXPECT_TRUE((*attached)->matrix().denominators().is_view());
  EXPECT_TRUE((*attached)->components().forest().is_view());
  EXPECT_FALSE((*heap)->matrix().values().is_view());

  ExpectSameDerivedState(**attached, *fig_.instance);
  ExpectSameDerivedState(**attached, **heap);
  ExpectSameQueryResults(**attached, **heap,
                         Query{fig_.u1, {fig_.kw_degree}});
  ExpectSameQueryResults(**attached, *fig_.instance,
                         Query{fig_.u0, {fig_.kw_university, fig_.kw_ms}});
}

TEST_F(SnapshotAttachTest, DeltaChainsOnMmapBaseMatchHeapBase) {
  auto region = MappedRegion::FromBuffer(blob_);
  auto attached = AttachBinarySnapshot(region);
  ASSERT_TRUE(attached.ok());
  auto heap = LoadBinarySnapshot(blob_);
  ASSERT_TRUE(heap.ok());

  // The same two-delta chain applied to a view-backed and a heap base
  // must produce bit-identical successors: IncrementalUpdate and
  // BuildIncremental read the base (possibly through views) and write
  // only owned scratch.
  auto extend = [&](std::shared_ptr<const S3Instance> snap) {
    InstanceDelta d1(snap);
    doc::Document nd("doc");
    nd.AddKeywords(0, {d1.InternKeyword("mmap")});
    EXPECT_TRUE(d1.AddDocument(std::move(nd), "mmap-doc", fig_.u2).ok());
    EXPECT_TRUE(d1.AddSocialEdge(fig_.u0, fig_.u2, 0.25).ok());
    auto gen1 = snap->ApplyDelta(d1);
    EXPECT_TRUE(gen1.ok());
    InstanceDelta d2(*gen1);
    EXPECT_TRUE(
        d2.AddTagOnFragment(fig_.u1, fig_.d0_root, d2.InternKeyword("mmap"))
            .ok());
    auto gen2 = (*gen1)->ApplyDelta(d2);
    EXPECT_TRUE(gen2.ok());
    return *gen2;
  };
  auto from_view = extend(*attached);
  auto from_heap = extend(*heap);
  ASSERT_EQ(from_view->generation(), 2u);
  ExpectSameDerivedState(*from_view, *from_heap);
  ExpectSameQueryResults(*from_view, *from_heap,
                         Query{fig_.u1, {fig_.kw_degree}});
}

TEST_F(SnapshotAttachTest, ViewsOutliveTheRegionHandle) {
  auto region = MappedRegion::FromBuffer(blob_);
  auto attached = AttachBinarySnapshot(region);
  ASSERT_TRUE(attached.ok());
  // Dropping the caller's handle must not invalidate the views — the
  // spans pin the region.
  region.reset();
  ExpectSameQueryResults(**attached, *fig_.instance,
                         Query{fig_.u1, {fig_.kw_degree}});
}

TEST_F(SnapshotAttachTest, MisalignedRegionsFallBackToCopies) {
  for (size_t misalign : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    auto region = MappedRegion::FromBuffer(blob_, misalign);
    auto attached = AttachBinarySnapshot(region);
    ASSERT_TRUE(attached.ok())
        << "misalign " << misalign << ": " << attached.status().ToString();
    if (misalign % alignof(double) != 0) {
      EXPECT_FALSE((*attached)->matrix().values().is_view())
          << "misalign " << misalign;
    }
    if (misalign % alignof(uint32_t) != 0) {
      EXPECT_FALSE((*attached)->components().forest().is_view())
          << "misalign " << misalign;
    }
    ExpectSameDerivedState(**attached, *fig_.instance);
  }
}

TEST_F(SnapshotAttachTest, LazyCrcSkipsAlignedEagerCatchesIt) {
  // Corrupt one byte inside MATRIXVALS (aligned, lazily verified).
  auto [offset, size] = V2SectionExtent(blob_, 14);
  ASSERT_GT(size, 0u);
  std::string corrupt = blob_;
  corrupt[offset + size / 2] ^= 0x10;

  // Lazy attach admits it (the structural shape is intact — that is
  // the documented trade of skipping the float-array CRC pass)...
  auto lazy = AttachBinarySnapshot(MappedRegion::FromBuffer(corrupt));
  EXPECT_TRUE(lazy.ok()) << lazy.status().ToString();
  // ...eager attach and the heap loader both reject it.
  SnapshotAttachOptions eager;
  eager.eager_crc = true;
  auto checked =
      AttachBinarySnapshot(MappedRegion::FromBuffer(corrupt), eager);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadBinarySnapshot(corrupt).status().code(),
            StatusCode::kInvalidArgument);

  // Corruption in a *compact* section is caught even by the lazy
  // attach — those decode (and checksum) at attach time.
  auto [c_offset, c_size] = V2SectionExtent(blob_, 13);  // MATRIXCOLS
  ASSERT_GT(c_size, 0u);
  std::string compact_corrupt = blob_;
  compact_corrupt[c_offset] ^= 0x01;
  auto rejected =
      AttachBinarySnapshot(MappedRegion::FromBuffer(compact_corrupt));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotAttachTest, EagerAttachRejectsEveryTruncationAndFlip) {
  SnapshotAttachOptions eager;
  eager.eager_crc = true;
  for (size_t len = 0; len < blob_.size(); len += 61) {
    auto region = MappedRegion::FromBuffer(
        std::string_view(blob_).substr(0, len));
    auto attached = AttachBinarySnapshot(region, eager);
    ASSERT_FALSE(attached.ok()) << "truncated to " << len;
    EXPECT_EQ(attached.status().code(), StatusCode::kInvalidArgument);
  }
  for (size_t at = 0; at < blob_.size(); at += 17) {
    std::string corrupt = blob_;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    auto attached =
        AttachBinarySnapshot(MappedRegion::FromBuffer(corrupt), eager);
    ASSERT_FALSE(attached.ok()) << "flip at byte " << at;
    EXPECT_EQ(attached.status().code(), StatusCode::kInvalidArgument);
  }
}

// Many threads attach from one shared region and query concurrently —
// the mmap-attach leg of the TSan CI job (*Concurrent* filter).
TEST_F(SnapshotAttachTest, ConcurrentAttachAndQueryFromOneRegion) {
  auto region = MappedRegion::FromBuffer(blob_);
  // One shared pre-attached instance, queried from every thread...
  auto shared = AttachBinarySnapshot(region);
  ASSERT_TRUE(shared.ok());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // ...plus a private attach per thread against the same region.
      auto mine = AttachBinarySnapshot(region);
      if (!mine.ok()) {
        ++failures;
        return;
      }
      S3kOptions opts;
      opts.k = 3;
      for (int i = 0; i < 25; ++i) {
        const auto& inst = (i % 2 == 0) ? **shared : **mine;
        auto r = S3kSearcher(inst, opts).Search(
            Query{static_cast<social::UserId>(t % 3), {fig_.kw_degree}});
        if (!r.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SnapshotVersionTest, ForceV1EnvVarPinsTheDefault) {
  auto fig = s3::testing::BuildFigure1();
  ASSERT_EQ(::setenv("S3_FORCE_SNAPSHOT_V1", "ON", 1), 0);
  auto v1 = SaveBinarySnapshot(*fig.instance);
  ::unsetenv("S3_FORCE_SNAPSHOT_V1");
  auto v2 = SaveBinarySnapshot(*fig.instance);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(InspectBinarySnapshot(*v1).ok());
  EXPECT_EQ(InspectBinarySnapshot(*v1)->version, kBinarySnapshotV1);
  EXPECT_EQ(InspectBinarySnapshot(*v2)->version, kBinarySnapshotV2);
  // Both load back to the same instance.
  auto a = LoadBinarySnapshot(*v1);
  auto b = LoadBinarySnapshot(*v2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameDerivedState(**a, **b);
}

TEST(SnapshotVersionTest, UnknownVersionIsRejected) {
  auto fig = s3::testing::BuildFigure1();
  auto saved = SaveBinarySnapshot(*fig.instance, 7);
  EXPECT_EQ(saved.status().code(), StatusCode::kInvalidArgument);
}

// ---- golden fixtures ---------------------------------------------------
// Committed bytes of a Figure 1 snapshot in each format. A codec change
// that can no longer read them is a compatibility break, not a test to
// update: v1 and v2 are both read-forever formats.

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(S3_TEST_DATA_DIR "/") + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class GoldenSnapshotTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Formats, GoldenSnapshotTest,
                         ::testing::Values("figure1_v1.snap",
                                           "figure1_v2.snap"),
                         [](const auto& info) {
                           return std::string(info.param, 8, 2);
                         });

TEST_P(GoldenSnapshotTest, LoadsAndMatchesFreshBuild) {
  const std::string blob = ReadGolden(GetParam());
  ASSERT_FALSE(blob.empty());
  auto fig = s3::testing::BuildFigure1();

  auto loaded = LoadBinarySnapshot(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDerivedState(**loaded, *fig.instance,
                         /*check_identity=*/false);
  ExpectSameQueryResults(**loaded, *fig.instance,
                         Query{fig.u1, {fig.kw_degree}});

  auto attached = AttachBinarySnapshot(MappedRegion::FromBuffer(blob));
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ExpectSameDerivedState(**attached, *fig.instance,
                         /*check_identity=*/false);
}

// ---- robustness: corrupt text input ------------------------------------

TEST(TextLoaderRobustnessTest, MalformedNumbersAreErrorsNotCrashes) {
  const char* cases[] = {
      "S3 v1\nUSER u\nUSER v\nSOCIAL a b c\n",           // garbage ints
      "S3 v1\nUSER u\nUSER v\nSOCIAL 0 1 nope\n",        // garbage weight
      "S3 v1\nUSER u\nSOCIAL 99999999999999999999 0 0.5\n",  // overflow
      "S3 v1\nUSER u\nDOC d 0 notanumber\n",             // bad node count
      "S3 v1\nUSER u\nDOC d 0 2\nN - r\nN 7 child\n",    // parent OOR
      "S3 v1\nUSER u\nDOC d 0 2\nN - r\nN x child\n",    // bad parent
      "S3 v1\nUSER u\nDOC d 0 1\nN - r 12x\n",           // bad keyword id
      "S3 v1\nUSER u\nCOMMENT zero one\n",               // bad comment ids
      "S3 v1\nUSER u\nTAGF u 0 5\n",                     // garbage author
      "S3 v1\nKW a%2\n",                                 // truncated escape
      "S3 v1\nKW a%ZZ\n",                                // bad escape hex
      "S3 v1\nUSER u\nDOC d -1 1\nN - r\n",              // negative number
  };
  for (const char* dump : cases) {
    auto loaded = LoadInstance(dump);
    ASSERT_FALSE(loaded.ok()) << dump;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << dump;
  }
}

TEST(TextLoaderRobustnessTest, BitFlippedDumpNeverCrashes) {
  auto fig = s3::testing::BuildFigure3();
  std::string dump = SaveInstance(*fig.instance);
  for (size_t at = 0; at < dump.size(); at += 7) {
    std::string corrupt = dump;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x15);
    auto loaded = LoadInstance(corrupt);  // may succeed or fail...
    if (loaded.ok()) {
      // ...but success must yield a finalizable instance.
      EXPECT_TRUE((*loaded)->Finalize().ok());
    }
  }
}

// ---- WAL record framing ------------------------------------------------

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  auto fig = s3::testing::BuildFigure1();
  std::shared_ptr<const S3Instance> base = std::move(fig.instance);

  InstanceDelta delta(base);
  doc::Document d("doc");
  uint32_t child = d.AddChild(0, "para");
  d.AddKeywords(child, {delta.InternKeyword("walword")});
  auto new_doc = delta.AddDocument(std::move(d), "wal-doc", fig.u3);
  ASSERT_TRUE(new_doc.ok());
  ASSERT_TRUE(delta.AddComment(*new_doc, fig.d0_3_2).ok());
  ASSERT_TRUE(delta.AddTagOnFragment(fig.u0, fig.d0_5_1,
                                     delta.InternKeyword("walword"))
                  .ok());
  ASSERT_TRUE(delta.AddSocialEdge(fig.u0, fig.u1, 0.25).ok());

  std::string wal;
  delta.EncodeWalRecord(&wal);
  auto info = InstanceDelta::PeekWalRecord(wal);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->base_generation, 0u);
  EXPECT_EQ(info->base_lineage, base->lineage());
  EXPECT_EQ(info->record_bytes, wal.size());

  size_t consumed = 0;
  auto decoded = InstanceDelta::DecodeWalRecord(wal, &consumed, base);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, wal.size());
  EXPECT_EQ(decoded->op_count(), delta.op_count());

  // Applying original and decoded deltas yields identical successors.
  auto a = base->ApplyDelta(delta);
  auto b = base->ApplyDelta(*decoded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameDerivedState(**b, **a);
}

TEST(WalRecordTest, CorruptRecordsAreRejected) {
  auto fig = s3::testing::BuildFigure3();
  std::shared_ptr<const S3Instance> base = std::move(fig.instance);
  InstanceDelta delta(base);
  ASSERT_TRUE(delta.AddSocialEdge(fig.u0, fig.u2, 0.5).ok());
  std::string wal;
  delta.EncodeWalRecord(&wal);

  size_t consumed = 0;
  for (size_t len = 0; len < wal.size(); ++len) {
    EXPECT_FALSE(InstanceDelta::PeekWalRecord(
                     std::string_view(wal).substr(0, len))
                     .ok())
        << "truncated to " << len;
  }
  for (size_t at = 0; at < wal.size(); ++at) {
    std::string corrupt = wal;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x08);
    EXPECT_FALSE(
        InstanceDelta::DecodeWalRecord(corrupt, &consumed, base).ok())
        << "flip at " << at;
  }

  // A record decoded against the wrong generation is refused.
  auto next = base->ApplyDelta(delta);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(InstanceDelta::DecodeWalRecord(wal, &consumed, *next).ok());
}

// Two records back to back are self-delimiting.
TEST(WalRecordTest, RecordsAreSelfDelimiting) {
  auto fig = s3::testing::BuildFigure3();
  std::shared_ptr<const S3Instance> base = std::move(fig.instance);

  InstanceDelta first(base);
  ASSERT_TRUE(first.AddSocialEdge(fig.u0, fig.u2, 0.5).ok());
  std::string wal;
  first.EncodeWalRecord(&wal);
  const size_t first_bytes = wal.size();

  auto gen1 = base->ApplyDelta(first);
  ASSERT_TRUE(gen1.ok());
  InstanceDelta second(*gen1);
  ASSERT_TRUE(second.AddSocialEdge(fig.u2, fig.u0, 0.7).ok());
  second.EncodeWalRecord(&wal);

  size_t consumed = 0;
  auto d1 = InstanceDelta::DecodeWalRecord(wal, &consumed, base);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(consumed, first_bytes);
  auto applied1 = base->ApplyDelta(*d1);
  ASSERT_TRUE(applied1.ok());

  auto d2 = InstanceDelta::DecodeWalRecord(
      std::string_view(wal).substr(consumed), &consumed, *applied1);
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();
  auto applied2 = (*applied1)->ApplyDelta(*d2);
  ASSERT_TRUE(applied2.ok());
  EXPECT_EQ((*applied2)->generation(), 2u);
}

}  // namespace
}  // namespace s3::core
