// §5.2 claim: the parallelized search reduced query answering time by
// about 2x with 8 concurrent threads. This harness sweeps the worker
// count on the I1 common-keyword workload and merges BM_ParallelSpeedup
// records (ns/op + speedup vs the single-thread run) into
// BENCH_micro.json, so the CI baseline compare covers intra-query
// scaling alongside the microbenchmarks.
//
// Besides the aggregate per-thread-count record, queries are bucketed
// by their number of passing components — the component fan-out only
// engages on multi-component plans, so the per-bucket speedups show
// where the parallelism actually comes from (1-component queries are
// the serial floor; 8+-component queries are the fan-out target).
#include <algorithm>
#include <vector>

#include "bench_util.h"

using namespace s3;

namespace {

struct TimedRun {
  std::vector<double> seconds;  // per query, workload order
  std::vector<size_t> comps;    // components_passing per query
};

TimedRun RunTimed(const core::S3Instance& inst,
                  const workload::QuerySet& qs, unsigned threads) {
  core::S3kOptions opts;
  opts.threads = threads;
  opts.k = qs.k;
  core::S3kSearcher searcher(inst, opts);
  TimedRun run;
  for (const auto& q : qs.queries) {
    core::SearchStats st;
    WallTimer t;
    auto result = searcher.Search(q, &st);
    if (!result.ok()) continue;
    run.seconds.push_back(t.ElapsedSeconds());
    run.comps.push_back(st.components_passing);
  }
  return run;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Component-count buckets: 1 / 2-3 / 4-7 / 8+.
constexpr size_t kBuckets = 4;
size_t BucketOf(size_t comps) {
  if (comps <= 1) return 0;
  if (comps <= 3) return 1;
  if (comps <= 7) return 2;
  return 3;
}
const char* kBucketLabel[kBuckets] = {"1", "2-3", "4-7", "8+"};

}  // namespace

int main() {
  std::printf("=== §5.2: parallel speed-up on I1 ===\n");
  workload::GenResult gen = bench::MakeI1();

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 10;
  spec.n_queries = bench::QueriesPerWorkload();
  spec.seed = 8100;
  auto qs =
      workload::BuildWorkload(*gen.instance, gen.semantic_anchors, spec);

  // Warmup pass (untimed): faults in the instance's pages, warms the
  // CSR and candidate structures, and gets the CPU off its idle clocks
  // — without it the threads=1 leg (always measured first) eats all
  // the cold-start cost and the speedup column flatters the others.
  (void)RunTimed(*gen.instance, qs, 1);

  bench::BenchJsonWriter writer("BENCH_micro.json", /*merge=*/true);
  eval::TablePrinter table({"threads", "median (ms)", "speed-up"});
  double base_median = 0.0;
  double base_bucket_median[kBuckets] = {};
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    TimedRun run = RunTimed(*gen.instance, qs, threads);
    if (run.seconds.empty()) continue;
    const double median = Median(run.seconds);
    if (threads == 1) base_median = median;
    const double speedup_x = median > 0 ? base_median / median : 0.0;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", speedup_x);
    table.AddRow({std::to_string(threads), eval::FormatMillis(median),
                  speedup});
    char extra[96];
    std::snprintf(extra, sizeof(extra),
                  "\"threads\": %u, \"speedup\": %.3f", threads, speedup_x);
    writer.Add("BM_ParallelSpeedup/threads=" + std::to_string(threads),
               median * 1e9, extra);

    // Per-component-count buckets of the same run.
    std::vector<double> bucket_times[kBuckets];
    for (size_t i = 0; i < run.seconds.size(); ++i) {
      bucket_times[BucketOf(run.comps[i])].push_back(run.seconds[i]);
    }
    for (size_t b = 0; b < kBuckets; ++b) {
      if (bucket_times[b].empty()) continue;
      const double bm = Median(bucket_times[b]);
      if (threads == 1) base_bucket_median[b] = bm;
      const double bx = bm > 0 ? base_bucket_median[b] / bm : 0.0;
      char bextra[128];
      std::snprintf(bextra, sizeof(bextra),
                    "\"threads\": %u, \"comps\": \"%s\", \"queries\": %zu, "
                    "\"speedup\": %.3f",
                    threads, kBucketLabel[b], bucket_times[b].size(), bx);
      writer.Add("BM_ParallelSpeedup/threads=" + std::to_string(threads) +
                     "/comps=" + kBucketLabel[b],
                 bm * 1e9, bextra);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper: ~2x with 8 threads (on a 4-core machine).\n");
  return 0;
}
