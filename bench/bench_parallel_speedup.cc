// §5.2 claim: the parallelized search reduced query answering time by
// about 2x with 8 concurrent threads. This harness sweeps the worker
// count on the I1 common-keyword workload and merges one
// BM_ParallelSpeedup record per thread count (ns/op + speedup vs the
// single-thread run) into BENCH_micro.json, so the CI baseline compare
// covers intra-query scaling alongside the microbenchmarks.
#include "bench_util.h"

using namespace s3;

int main() {
  std::printf("=== §5.2: parallel speed-up on I1 ===\n");
  workload::GenResult gen = bench::MakeI1();

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 10;
  spec.n_queries = bench::QueriesPerWorkload();
  spec.seed = 8100;
  auto qs =
      workload::BuildWorkload(*gen.instance, gen.semantic_anchors, spec);

  bench::BenchJsonWriter writer("BENCH_micro.json", /*merge=*/true);
  eval::TablePrinter table({"threads", "median (ms)", "speed-up"});
  double base_median = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    core::S3kOptions opts;
    opts.threads = threads;
    auto series = bench::RunS3k(*gen.instance, qs, opts);
    if (series.empty()) continue;
    double median = series.MedianSeconds();
    if (threads == 1) base_median = median;
    const double speedup_x = median > 0 ? base_median / median : 0.0;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", speedup_x);
    table.AddRow({std::to_string(threads), eval::FormatMillis(median),
                  speedup});
    char extra[96];
    std::snprintf(extra, sizeof(extra),
                  "\"threads\": %u, \"speedup\": %.3f", threads, speedup_x);
    writer.Add("BM_ParallelSpeedup/threads=" + std::to_string(threads),
               median * 1e9, extra);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper: ~2x with 8 threads (on a 4-core machine).\n");
  return 0;
}
