// §5.2 claim: the parallelized search reduced query answering time by
// about 2x with 8 concurrent threads. This harness sweeps the worker
// count on the I1 common-keyword workload.
#include "bench_util.h"

using namespace s3;

int main() {
  std::printf("=== §5.2: parallel speed-up on I1 ===\n");
  workload::GenResult gen = bench::MakeI1();

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 10;
  spec.n_queries = bench::QueriesPerWorkload();
  spec.seed = 8100;
  auto qs =
      workload::BuildWorkload(*gen.instance, gen.semantic_anchors, spec);

  eval::TablePrinter table({"threads", "median (ms)", "speed-up"});
  double base_median = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    core::S3kOptions opts;
    opts.threads = threads;
    auto series = bench::RunS3k(*gen.instance, qs, opts);
    if (series.empty()) continue;
    double median = series.MedianSeconds();
    if (threads == 1) base_median = median;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  median > 0 ? base_median / median : 0.0);
    table.AddRow({std::to_string(threads), eval::FormatMillis(median),
                  speedup});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper: ~2x with 8 threads (on a 4-core machine).\n");
  return 0;
}
