// Cold-start benchmark: how fast does a serving process get from a
// snapshot file to a queryable instance?
//
// Compares the two load paths of the storage layer on the I1
// (microblog) instance:
//
//   text    LoadInstance() + Finalize()   — population replay, then
//           saturation + matrix + components rebuilt from scratch;
//   binary  LoadBinarySnapshot()          — checksummed parse +
//           AttachDerived(), no recomputation.
//
// Results are merged into BENCH_micro.json (BenchJsonWriter merge
// mode) next to the google-benchmark records, so the bench-regression
// gate tracks both numbers; run bench_micro first, then this binary.
// The printed ratio is the acceptance-criterion measurement of the
// durable-storage PR: binary attach must beat text+Finalize.
//
//   S3_BENCH_COLD_ITERS   timed iterations per codec (default 5)
//   S3_BENCH_SCALE        instance scale multiplier (bench_util.h)
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/serialization.h"
#include "core/snapshot_binary.h"

namespace {

size_t Iterations() {
  const char* env = std::getenv("S3_BENCH_COLD_ITERS");
  size_t n = env ? std::strtoul(env, nullptr, 10) : 5;
  return n == 0 ? 1 : n;
}

}  // namespace

int main() {
  using s3::WallTimer;

  s3::workload::GenResult gen = s3::bench::MakeI1();
  std::printf("bench_cold_start — instance %s: users=%zu docs=%zu "
              "tags=%zu triples=%zu\n",
              gen.name.c_str(), gen.instance->UserCount(),
              gen.instance->docs().DocumentCount(),
              gen.instance->TagCount(), gen.instance->rdf_graph().size());

  const std::string text = s3::core::SaveInstance(*gen.instance);
  auto binary = s3::core::SaveBinarySnapshot(*gen.instance);
  if (!binary.ok()) {
    std::fprintf(stderr, "SaveBinarySnapshot: %s\n",
                 binary.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot bytes: text=%zu binary=%zu\n", text.size(),
              binary->size());

  const size_t iters = Iterations();

  // Warm-up + correctness guard: both paths must yield the population.
  {
    auto loaded = s3::core::LoadInstance(text);
    if (!loaded.ok() || !(*loaded)->Finalize().ok()) {
      std::fprintf(stderr, "text load failed\n");
      return 1;
    }
    auto attached = s3::core::LoadBinarySnapshot(*binary);
    if (!attached.ok()) {
      std::fprintf(stderr, "binary load failed: %s\n",
                   attached.status().ToString().c_str());
      return 1;
    }
    if ((*attached)->docs().NodeCount() != (*loaded)->docs().NodeCount()) {
      std::fprintf(stderr, "load paths disagree on the population\n");
      return 1;
    }
  }

  double text_seconds = 0.0;
  for (size_t i = 0; i < iters; ++i) {
    WallTimer t;
    auto loaded = s3::core::LoadInstance(text);
    if (!loaded.ok() || !(*loaded)->Finalize().ok()) return 1;
    text_seconds += t.ElapsedSeconds();
  }

  double binary_seconds = 0.0;
  for (size_t i = 0; i < iters; ++i) {
    WallTimer t;
    auto attached = s3::core::LoadBinarySnapshot(*binary);
    if (!attached.ok()) return 1;
    binary_seconds += t.ElapsedSeconds();
  }

  const double text_ns = text_seconds / iters * 1e9;
  const double binary_ns = binary_seconds / iters * 1e9;
  const double speedup = binary_ns > 0 ? text_ns / binary_ns : 0.0;
  std::printf("text load+Finalize : %8.2f ms/op\n", text_ns / 1e6);
  std::printf("binary AttachDerived: %8.2f ms/op\n", binary_ns / 1e6);
  std::printf("binary is %.2fx faster than text+Finalize\n", speedup);

  s3::bench::BenchJsonWriter writer("BENCH_micro.json", /*merge=*/true);
  writer.Add("BM_ColdStart_I1_TextLoadFinalize", text_ns);
  char extra[64];
  std::snprintf(extra, sizeof(extra), "\"speedup_vs_text\": %.2f",
                speedup);
  writer.Add("BM_ColdStart_I1_BinaryAttach", binary_ns, extra);
  return 0;
}
