// Cold-start benchmark: how fast does a serving process get from a
// snapshot file to a queryable instance?
//
// Compares the load paths of the storage layer on the I1 (microblog)
// instance:
//
//   text     LoadInstance() + Finalize()   — population replay, then
//            saturation + matrix + components rebuilt from scratch;
//   v1 copy  LoadBinarySnapshot(v1 bytes)  — checksummed fixed-width
//            parse + AttachDerived(), everything copied to the heap;
//   v2 copy  LoadBinarySnapshot(v2 bytes)  — compact-section decode,
//            eager CRC over every section, heap copies;
//   v2 mmap  AttachBinarySnapshot(region)  — compact-section decode
//            plus zero-copy views over the mapped aligned sections
//            (matrix CSR floats, forest), lazy CRC.
//
// Also records bytes_on_disk for the text dump and both binary
// formats — the v2 compaction acceptance criterion (v2 <= 1.5x text)
// is measured here.
//
// Results are merged into BENCH_micro.json (BenchJsonWriter merge
// mode) next to the google-benchmark records, so the bench-regression
// gate tracks the numbers; run bench_micro first, then this binary.
//
//   S3_BENCH_COLD_ITERS   timed iterations per codec (default 5)
//   S3_BENCH_SCALE        instance scale multiplier (bench_util.h)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/mmap_file.h"
#include "core/serialization.h"
#include "core/snapshot_binary.h"

namespace {

size_t Iterations() {
  const char* env = std::getenv("S3_BENCH_COLD_ITERS");
  size_t n = env ? std::strtoul(env, nullptr, 10) : 5;
  return n == 0 ? 1 : n;
}

}  // namespace

int main() {
  using s3::WallTimer;

  s3::workload::GenResult gen = s3::bench::MakeI1();
  std::printf("bench_cold_start — instance %s: users=%zu docs=%zu "
              "tags=%zu triples=%zu\n",
              gen.name.c_str(), gen.instance->UserCount(),
              gen.instance->docs().DocumentCount(),
              gen.instance->TagCount(), gen.instance->rdf_graph().size());

  const std::string text = s3::core::SaveInstance(*gen.instance);
  auto v1 = s3::core::SaveBinarySnapshot(*gen.instance,
                                         s3::core::kBinarySnapshotV1);
  auto v2 = s3::core::SaveBinarySnapshot(*gen.instance,
                                         s3::core::kBinarySnapshotV2);
  if (!v1.ok() || !v2.ok()) {
    std::fprintf(stderr, "SaveBinarySnapshot failed\n");
    return 1;
  }
  const double v1_vs_text =
      static_cast<double>(v1->size()) / static_cast<double>(text.size());
  const double v2_vs_text =
      static_cast<double>(v2->size()) / static_cast<double>(text.size());
  std::printf("snapshot bytes: text=%zu v1=%zu (%.2fx text) v2=%zu "
              "(%.2fx text)\n",
              text.size(), v1->size(), v1_vs_text, v2->size(), v2_vs_text);

  // The mmap leg attaches from a real file, like SnapshotManager
  // recovery does.
  const std::string v2_path = "bench_cold_start_v2.snap.tmp";
  {
    std::FILE* f = std::fopen(v2_path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(v2->data(), 1, v2->size(), f) != v2->size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "cannot write %s\n", v2_path.c_str());
      return 1;
    }
  }

  const size_t iters = Iterations();

  // Warm-up + correctness guard: every path must yield the population.
  {
    auto loaded = s3::core::LoadInstance(text);
    if (!loaded.ok() || !(*loaded)->Finalize().ok()) {
      std::fprintf(stderr, "text load failed\n");
      return 1;
    }
    for (const auto* blob : {&*v1, &*v2}) {
      auto attached = s3::core::LoadBinarySnapshot(*blob);
      if (!attached.ok()) {
        std::fprintf(stderr, "binary load failed: %s\n",
                     attached.status().ToString().c_str());
        return 1;
      }
      if ((*attached)->docs().NodeCount() !=
          (*loaded)->docs().NodeCount()) {
        std::fprintf(stderr, "load paths disagree on the population\n");
        return 1;
      }
    }
  }

  double text_seconds = 0.0;
  for (size_t i = 0; i < iters; ++i) {
    WallTimer t;
    auto loaded = s3::core::LoadInstance(text);
    if (!loaded.ok() || !(*loaded)->Finalize().ok()) return 1;
    text_seconds += t.ElapsedSeconds();
  }

  auto time_copy_load = [&](const std::string& blob, double* out) {
    for (size_t i = 0; i < iters; ++i) {
      WallTimer t;
      auto attached = s3::core::LoadBinarySnapshot(blob);
      if (!attached.ok()) return false;
      *out += t.ElapsedSeconds();
    }
    return true;
  };
  double v1_seconds = 0.0, v2_seconds = 0.0;
  if (!time_copy_load(*v1, &v1_seconds)) return 1;
  if (!time_copy_load(*v2, &v2_seconds)) return 1;

  // mmap attach: open + map + attach per iteration — the full cold
  // path a recovering server pays.
  double mmap_seconds = 0.0;
  for (size_t i = 0; i < iters; ++i) {
    WallTimer t;
    std::shared_ptr<const s3::MappedRegion> region;
    if (!s3::MappedRegion::Open(v2_path, &region).ok()) return 1;
    auto attached = s3::core::AttachBinarySnapshot(region);
    if (!attached.ok()) return 1;
    mmap_seconds += t.ElapsedSeconds();
  }
  std::remove(v2_path.c_str());

  const double text_ns = text_seconds / iters * 1e9;
  const double v1_ns = v1_seconds / iters * 1e9;
  const double v2_ns = v2_seconds / iters * 1e9;
  const double mmap_ns = mmap_seconds / iters * 1e9;
  std::printf("text load+Finalize : %8.2f ms/op\n", text_ns / 1e6);
  std::printf("v1 copy attach     : %8.2f ms/op\n", v1_ns / 1e6);
  std::printf("v2 copy attach     : %8.2f ms/op\n", v2_ns / 1e6);
  std::printf("v2 mmap attach     : %8.2f ms/op\n", mmap_ns / 1e6);
  std::printf("v2 mmap is %.2fx faster than v1 copy, %.2fx faster than "
              "text+Finalize\n",
              mmap_ns > 0 ? v1_ns / mmap_ns : 0.0,
              mmap_ns > 0 ? text_ns / mmap_ns : 0.0);

  s3::bench::BenchJsonWriter writer("BENCH_micro.json", /*merge=*/true);
  writer.Add("BM_ColdStart_I1_TextLoadFinalize", text_ns);
  char extra[96];
  std::snprintf(extra, sizeof(extra),
                "\"bytes_on_disk\": %zu, \"bytes_vs_text\": %.2f",
                v1->size(), v1_vs_text);
  writer.Add("BM_ColdStart_I1_BinaryAttach", v1_ns, extra);
  std::snprintf(extra, sizeof(extra),
                "\"bytes_on_disk\": %zu, \"bytes_vs_text\": %.2f",
                v2->size(), v2_vs_text);
  writer.Add("BM_ColdStart_I1_V2CopyAttach", v2_ns, extra);
  std::snprintf(extra, sizeof(extra), "\"speedup_vs_v1_copy\": %.2f",
                mmap_ns > 0 ? v1_ns / mmap_ns : 0.0);
  writer.Add("BM_ColdStart_I1_V2MmapAttach", mmap_ns, extra);
  return 0;
}
