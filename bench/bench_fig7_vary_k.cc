// Figure 7: run-time distribution (min, Q1, median, Q3, max) on I1
// while varying k ∈ {1, 5, 10, 50}, for f ∈ {+, −}, l = 1, and
// γ ∈ {1.5, 4}.
//
// Besides the table, per-workload medians are recorded to
// BENCH_fig7.json (override the path with S3_BENCH_OUT) so the perf
// trajectory of the full-query path is machine-diffable across PRs.
#include "bench_util.h"

using namespace s3;

int main() {
  std::printf("=== Figure 7: run times on I1 varying k ===\n");
  workload::GenResult gen = bench::MakeI1();
  std::printf("instance: users=%zu docs=%zu; %zu queries per workload\n\n",
              gen.instance->UserCount(),
              gen.instance->docs().DocumentCount(),
              bench::QueriesPerWorkload());

  const char* out_env = std::getenv("S3_BENCH_OUT");
  bench::BenchJsonWriter json(out_env ? out_env : "BENCH_fig7.json");

  eval::TablePrinter table({"workload", "gamma", "min(ms)", "Q1", "median",
                            "Q3", "max"});
  uint64_t seed = 7000;
  for (auto freq :
       {workload::Frequency::kCommon, workload::Frequency::kRare}) {
    for (size_t k : {1u, 5u, 10u, 50u}) {
      workload::WorkloadSpec spec;
      spec.freq = freq;
      spec.n_keywords = 1;
      spec.k = k;
      spec.n_queries = bench::QueriesPerWorkload();
      spec.seed = seed++;
      auto qs = workload::BuildWorkload(*gen.instance,
                                        gen.semantic_anchors, spec);
      for (double gamma : {1.5, 4.0}) {
        core::S3kOptions opts;
        opts.score.gamma = gamma;
        auto series = bench::RunS3k(*gen.instance, qs, opts);
        if (series.empty()) continue;
        auto q5 = series.Quartiles();
        table.AddRow({qs.label, gamma == 1.5 ? "1.5" : "4",
                      eval::FormatMillis(q5.min),
                      eval::FormatMillis(q5.q1),
                      eval::FormatMillis(q5.median),
                      eval::FormatMillis(q5.q3),
                      eval::FormatMillis(q5.max)});
        char extra[128];
        std::snprintf(extra, sizeof(extra),
                      "\"k\": %zu, \"gamma\": %.2f, \"queries\": %zu", k,
                      gamma, qs.queries.size());
        json.Add("Fig7/" + qs.label + (gamma == 1.5 ? "/g1.5" : "/g4"),
                 q5.median * 1e9, extra);
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected shape (paper Fig. 7): rare (-) workloads are faster;\n"
      "growing k mostly stretches the slow quartile of the common (+)\n"
      "workloads, which must explore further before the top-k "
      "stabilizes.\n");
  return 0;
}
