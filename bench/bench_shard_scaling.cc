// Sharded serving benchmark: the common-keyword hot trace of
// bench_server_throughput, driven through a ShardRouter at shard
// counts {1, 2, 4}. Reports QPS and latency percentiles per shard
// count and writes BENCH_shard.json for the (non-blocking) CI
// bench-regression step.
//
// Expected shape:
//  - QPS grows with shard count while cores are available: seekers
//    hash across shards, so routed queries spread over N independent
//    worker pools and N plan caches;
//  - shards=1 approximates the unsharded service (one extra id-map
//    hop), so large regressions of shards=1 vs BENCH_server.json's
//    equivalent worker count indicate router overhead, not engine
//    drift.
//
// Environment overrides:
//   S3_BENCH_QUERIES   queries-per-workload base; the trace is 8x this
//   S3_BENCH_SCALE     instance scale multiplier (default 1.0)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "eval/runtime.h"
#include "obs/metrics.h"
#include "eval/service_stats.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"

namespace {

using namespace s3;

std::vector<core::Query> MakeHotTrace(const core::S3Instance& inst,
                                      const std::vector<KeywordId>& anchors,
                                      size_t distinct, size_t length) {
  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 2;
  spec.k = 10;
  spec.n_queries = distinct;
  spec.seed = 4242;
  workload::QuerySet qs = workload::BuildWorkload(inst, anchors, spec);

  Rng rng(777);
  std::vector<core::Query> trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(qs.queries[rng.Uniform(qs.queries.size())]);
  }
  return trace;
}

struct RunResult {
  double seconds = 0.0;
  eval::LatencySnapshot latency;
  eval::ServiceCounters counters;  // summed over shards
};

RunResult RunTrace(shard::ShardRouter& router,
                   const std::vector<core::Query>& trace,
                   unsigned client_threads) {
  eval::LatencyRecorder latency;
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  WallTimer timer;
  for (unsigned t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = t; i < trace.size(); i += client_threads) {
        WallTimer per_query;
        auto resp = router.Query(trace[i]);
        if (resp.ok()) latency.Add(per_query.ElapsedSeconds());
      }
    });
  }
  for (auto& c : clients) c.join();

  RunResult out;
  out.seconds = timer.ElapsedSeconds();
  out.latency = latency.TakeSnapshot(out.seconds);
  for (uint32_t s = 0; s < router.shard_count(); ++s) {
    const eval::ServiceCounters c = router.service(s).Stats().Counters();
    out.counters.rejected_queue_full += c.rejected_queue_full;
    out.counters.cache_hits += c.cache_hits;
    out.counters.cache_misses += c.cache_misses;
  }
  return out;
}

}  // namespace

int main() {
  bench::BenchJsonWriter json("BENCH_shard.json");

  std::printf("== sharded serving: shard-count sweep on the hot trace ==\n");
  workload::MicroblogParams p;
  p.seed = 777;
  p.n_users = bench::Scaled(2000);
  p.n_tweets = bench::Scaled(8000);
  p.vocab_size = bench::Scaled(4000);
  p.n_hashtags = bench::Scaled(200);
  workload::GenResult gen = workload::GenerateMicroblog(p);
  std::shared_ptr<const core::S3Instance> full = std::move(gen.instance);

  const size_t trace_len =
      std::max<size_t>(8 * bench::QueriesPerWorkload(), 64);
  const size_t distinct = std::max<size_t>(trace_len / 8, 8);
  auto trace =
      MakeHotTrace(*full, gen.semantic_anchors, distinct, trace_len);
  const unsigned client_threads = 8;
  std::printf(
      "instance: %s — users=%zu docs=%zu; trace: %zu queries over %zu "
      "distinct keyword sets, %u client threads\n\n",
      gen.name.c_str(), full->UserCount(), full->docs().DocumentCount(),
      trace.size(), distinct, client_threads);

  eval::TablePrinter table({"shards", "QPS", "speedup-vs-1", "p50 ms",
                            "p99 ms", "hit rate", "boundary"});
  double qps_1 = 0.0;
  for (uint32_t n_shards : {1u, 2u, 4u}) {
    shard::PartitionOptions popts;
    popts.shard_count = n_shards;
    auto partition = shard::Partition(*full, popts);
    if (!partition.ok()) {
      std::fprintf(stderr, "partition failed: %s\n",
                   partition.status().ToString().c_str());
      return 1;
    }
    const uint64_t boundary = partition->boundary_social_edges;

    shard::ShardRouterOptions ropts;
    ropts.service.workers = 2;  // per shard
    ropts.service.queue_capacity = 256;
    ropts.service.search.k = 10;
    auto router = shard::ShardRouter::Serve(std::move(*partition), ropts);
    if (!router.ok()) {
      std::fprintf(stderr, "router failed: %s\n",
                   router.status().ToString().c_str());
      return 1;
    }

    RunResult r = RunTrace(**router, trace, client_threads);
    const double qps = r.latency.qps;
    if (n_shards == 1) qps_1 = qps;

    char qps_s[32], spd[32], p50[32], p99[32], hit[32], bnd[32];
    std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
    std::snprintf(spd, sizeof(spd), "%.2fx", qps_1 > 0 ? qps / qps_1 : 0.0);
    std::snprintf(p50, sizeof(p50), "%.2f", r.latency.p50_ms);
    std::snprintf(p99, sizeof(p99), "%.2f", r.latency.p99_ms);
    std::snprintf(hit, sizeof(hit), "%.1f%%",
                  r.counters.CacheHitRate() * 100.0);
    std::snprintf(bnd, sizeof(bnd), "%llu",
                  static_cast<unsigned long long>(boundary));
    table.AddRow({std::to_string(n_shards), qps_s, spd, p50, p99, hit, bnd});
    std::printf("shards=%u: %s | %s\n", n_shards,
                eval::FormatSnapshot(r.latency).c_str(),
                eval::FormatCounters(r.counters).c_str());

    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  "\"shards\": %u, \"qps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"hit_rate\": %.3f, "
                  "\"boundary_edges\": %llu",
                  n_shards, qps, r.latency.p50_ms, r.latency.p99_ms,
                  r.counters.CacheHitRate(),
                  static_cast<unsigned long long>(boundary));
    json.Add("shard_scaling/shards:" + std::to_string(n_shards),
             r.seconds * 1e9 / trace.size(), extra);

    // Scatter profile: a slice of the trace through QueryGlobal, with
    // the per-shard load signals (ShardReport::scatter_seconds /
    // queue_depth) the router now exports — the raw input a future
    // load-aware scatter policy would steer by (ROADMAP item 3).
    const size_t scatter_n = std::min<size_t>(trace.size(), 128);
    std::vector<double> shard_lat(n_shards, 0.0);
    std::vector<size_t> shard_hits(n_shards, 0);
    std::vector<size_t> shard_qd_max(n_shards, 0);
    size_t pruned = 0;
    for (size_t i = 0; i < scatter_n; ++i) {
      auto resp = (*router)->QueryGlobal(trace[i]);
      if (!resp.ok()) continue;
      for (const shard::ShardReport& rep : resp->shards) {
        if (!rep.queried) {
          pruned += (rep.pruned_unreachable || rep.pruned_bound) ? 1 : 0;
          continue;
        }
        shard_lat[rep.shard] += rep.scatter_seconds;
        shard_hits[rep.shard] += 1;
        shard_qd_max[rep.shard] =
            std::max(shard_qd_max[rep.shard], rep.queue_depth);
      }
    }
    std::printf("scatter profile (%zu global queries, %zu shard-prunes):\n",
                scatter_n, pruned);
    for (uint32_t sh = 0; sh < n_shards; ++sh) {
      const double mean_ms = shard_hits[sh] > 0
                                 ? shard_lat[sh] / shard_hits[sh] * 1e3
                                 : 0.0;
      std::printf("  shard%u: queried=%zu mean=%.3fms queue_depth_max=%zu\n",
                  sh, shard_hits[sh], mean_ms, shard_qd_max[sh]);
    }
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "expected shape: QPS grows with shards while cores last (per-shard "
      "pools and caches\nare independent); shards=1 tracks the unsharded "
      "service modulo one id-map hop.\n");

  // Router + per-shard-service metric catalog (s3_scatter_shard_seconds,
  // s3_shards_pruned_total, per-shard {service="shardN"} series) for
  // the CI metrics diff.
  const std::string prom = obs::MetricRegistry::Default().RenderPrometheus();
  if (!prom.empty()) {
    if (std::FILE* f = std::fopen("BENCH_shard_metrics.prom", "w")) {
      std::fputs(prom.c_str(), f);
      std::fclose(f);
      std::printf("wrote BENCH_shard_metrics.prom (%zu bytes)\n",
                  prom.size());
    }
  }
  return 0;
}
