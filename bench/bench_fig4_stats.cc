// Figure 4: statistics of the three instances (I1 Twitter-like,
// I2 Vodkaster-like, I3 Yelp-like), plus the §5.1 claim that keyword
// extension grows workloads by ~50%.
#include <cstdio>

#include "bench_util.h"
#include "workload/instance_stats.h"

using namespace s3;

namespace {

// Measures the average workload growth caused by Ext(k) (the paper
// reports ≈ +50% on I1).
double ExtensionGrowth(const workload::GenResult& gen) {
  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.n_queries = 400;
  auto qs =
      workload::BuildWorkload(*gen.instance, gen.semantic_anchors, spec);
  size_t base = 0, extended = 0;
  for (const auto& q : qs.queries) {
    for (KeywordId k : q.keywords) {
      ++base;
      extended += gen.instance->ExtendKeyword(k).size();
    }
  }
  return base == 0 ? 0.0
                   : (static_cast<double>(extended) / base - 1.0) * 100.0;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: instance statistics ===\n");
  std::printf("(synthetic stand-ins at 1/100 scale; see DESIGN.md)\n\n");
  for (auto* make : {&bench::MakeI1, &bench::MakeI2, &bench::MakeI3}) {
    workload::GenResult gen = make();
    workload::InstanceStats s = workload::ComputeStats(*gen.instance);
    std::printf("%s", workload::FormatStats(gen.name, s).c_str());
    std::printf("Workload growth via Ext(k)     +%.0f%% (paper I1: +50%%)\n\n",
                ExtensionGrowth(gen));
  }
  return 0;
}
