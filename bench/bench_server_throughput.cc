// Service-level throughput benchmark: one shared snapshot, a
// QueryService worker pool, and a repeated common-keyword query trace
// (the paper's I1-style hot-keyword traffic). Sweeps worker count ×
// proximity-cache on/off and reports QPS + latency percentiles per
// configuration, writing BENCH_server.json.
//
// Expected shape:
//  - QPS grows with workers (bounded by the machine's core count —
//    on a 1-core runner the sweep mostly measures scheduling overhead);
//  - cache:on beats cache:off at every worker count on this trace,
//    because repeated keyword sets skip candidate construction.
//
// Environment overrides:
//   S3_BENCH_QUERIES   queries-per-workload base; the trace is 8x this
//   S3_BENCH_SCALE     instance scale multiplier (default 1.0)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "eval/runtime.h"
#include "obs/metrics.h"
#include "eval/service_stats.h"
#include "server/query_service.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"

namespace {

using namespace s3;

// A hot-query trace: `distinct` common-keyword queries, repeated and
// shuffled to `length` — the dominant-case traffic the proximity cache
// targets (paper I1/I2 common-keyword mixes).
std::vector<core::Query> MakeHotTrace(const core::S3Instance& inst,
                                      const std::vector<KeywordId>& anchors,
                                      size_t distinct, size_t length) {
  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 2;
  spec.k = 10;
  spec.n_queries = distinct;
  spec.seed = 4242;
  workload::QuerySet qs = workload::BuildWorkload(inst, anchors, spec);

  Rng rng(777);
  std::vector<core::Query> trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(qs.queries[rng.Uniform(qs.queries.size())]);
  }
  return trace;
}

struct RunResult {
  double seconds = 0.0;
  eval::LatencySnapshot latency;
  double hit_rate = 0.0;
  eval::ServiceCounters counters;
};

RunResult RunTrace(std::shared_ptr<const core::S3Instance> snapshot,
                   const std::vector<core::Query>& trace, unsigned workers,
                   bool cache_on, size_t k, size_t batch_window = 0,
                   double epsilon = 0.0) {
  server::QueryServiceOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 64;
  opts.enable_cache = cache_on;
  opts.search.k = k;
  opts.batch_window = batch_window;
  server::QueryService service(snapshot, opts);

  core::QueryOptions qopts;
  if (epsilon > 0.0) {
    qopts.mode = core::QueryMode::kAnytime;
    qopts.epsilon_approx = epsilon;
  }

  WallTimer timer;
  std::vector<server::QueryFuture> futures;
  futures.reserve(trace.size());
  for (const core::Query& q : trace) {
    auto submitted = service.SubmitBlocking(
        core::QueryRequest(q.seeker, q.keywords, qopts));
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  size_t failed = 0;
  for (auto& f : futures) {
    if (!f.get().ok()) ++failed;
  }
  RunResult out;
  out.seconds = timer.ElapsedSeconds();
  out.latency = service.latency().TakeSnapshot(out.seconds);
  if (cache_on) out.hit_rate = service.cache()->Stats().HitRate();
  out.counters = service.Stats().Counters();
  if (failed > 0) {
    std::fprintf(stderr, "WARNING: %zu queries failed\n", failed);
  }
  return out;
}

}  // namespace

int main() {
  // Starts BENCH_server.json fresh; bench_update_throughput, run
  // *after* this binary, merges its records in. Running the pair in
  // that order therefore never carries over records from earlier runs
  // (renamed configs, different S3_BENCH_SCALE) into a file someone
  // might promote to the committed baseline.
  bench::BenchJsonWriter json("BENCH_server.json");

  std::printf("== server throughput: worker sweep x proximity cache ==\n");
  workload::MicroblogParams p;
  p.seed = 777;
  p.n_users = bench::Scaled(2000);
  p.n_tweets = bench::Scaled(8000);
  p.vocab_size = bench::Scaled(4000);
  p.n_hashtags = bench::Scaled(200);
  workload::GenResult gen = workload::GenerateMicroblog(p);
  std::shared_ptr<const core::S3Instance> snapshot = std::move(gen.instance);

  const size_t trace_len =
      std::max<size_t>(8 * bench::QueriesPerWorkload(), 64);
  const size_t distinct = std::max<size_t>(trace_len / 8, 8);
  auto trace = MakeHotTrace(*snapshot, gen.semantic_anchors, distinct,
                            trace_len);
  std::printf(
      "instance: %s — users=%zu docs=%zu; trace: %zu queries over %zu "
      "distinct keyword sets\n\n",
      gen.name.c_str(), snapshot->UserCount(),
      snapshot->docs().DocumentCount(), trace.size(), distinct);

  eval::TablePrinter table({"workers", "cache", "QPS", "speedup-vs-1w",
                            "p50 ms", "p99 ms", "hit rate"});
  double qps_1w_on = 0.0, qps_1w_off = 0.0;
  for (bool cache_on : {false, true}) {
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      RunResult r = RunTrace(snapshot, trace, workers, cache_on, 10);
      const double qps = r.latency.qps;
      double& qps_1w = cache_on ? qps_1w_on : qps_1w_off;
      if (workers == 1) qps_1w = qps;
      char qps_s[32], spd[32], p50[32], p99[32], hit[32];
      std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
      std::snprintf(spd, sizeof(spd), "%.2fx",
                    qps_1w > 0 ? qps / qps_1w : 0.0);
      std::snprintf(p50, sizeof(p50), "%.2f", r.latency.p50_ms);
      std::snprintf(p99, sizeof(p99), "%.2f", r.latency.p99_ms);
      std::snprintf(hit, sizeof(hit), "%.1f%%", r.hit_rate * 100.0);
      table.AddRow({std::to_string(workers), cache_on ? "on" : "off",
                    qps_s, spd, p50, p99, cache_on ? hit : "-"});
      std::printf("workers=%u cache=%s: %s\n", workers,
                  cache_on ? "on" : "off",
                  eval::FormatCounters(r.counters).c_str());

      char extra[256];
      std::snprintf(
          extra, sizeof(extra),
          "\"workers\": %u, \"cache\": %s, \"qps\": %.1f, "
          "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"hit_rate\": %.3f",
          workers, cache_on ? "true" : "false", qps, r.latency.p50_ms,
          r.latency.p99_ms, r.hit_rate);
      std::string name = "server_throughput/workers:" +
                         std::to_string(workers) +
                         (cache_on ? "/cache:on" : "/cache:off");
      json.Add(name, r.seconds * 1e9 / trace.size(), extra);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected shape: QPS scales with workers up to the core count; "
      "cache:on wins\non the repeated common-keyword trace (hit rate "
      "-> (1 - distinct/trace) at steady state).\n");

  // Batched execution: same hot trace through a batching service
  // (workers deliberately few, so the queue backs up and same-plan
  // runs form). The counter line now carries batched=N/M (width avg);
  // the BENCH record tracks the amortization across PRs.
  std::printf("\n== batched execution (batch_window sweep, cache on) ==\n");
  for (size_t window : {4u, 8u}) {
    RunResult r = RunTrace(snapshot, trace, /*workers=*/2,
                           /*cache_on=*/true, 10, window);
    std::printf("batch_window=%zu: qps=%.1f %s\n", window, r.latency.qps,
                eval::FormatCounters(r.counters).c_str());
    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  "\"batch_window\": %zu, \"qps\": %.1f, "
                  "\"batched_queries\": %llu, \"batches\": %llu, "
                  "\"mean_width\": %.2f",
                  window, r.latency.qps,
                  static_cast<unsigned long long>(r.counters.batched_queries),
                  static_cast<unsigned long long>(
                      r.counters.batches_executed),
                  r.counters.MeanBatchWidth());
    json.Add("server_throughput/batch_window:" + std::to_string(window),
             r.seconds * 1e9 / trace.size(), extra);
  }

  // Anytime serving: the same hot trace submitted as kAnytime
  // QueryRequests across an epsilon sweep (eps=0 is the exact path —
  // the latency baseline). The counter line carries the certified-
  // epsilon histogram, so the printed output doubles as a check that
  // achieved certificates stay under the requested slack; the BENCH
  // records track the p99-vs-epsilon trade across PRs.
  std::printf("\n== anytime serving (epsilon sweep, cache on) ==\n");
  for (double eps : {0.0, 0.01, 0.1}) {
    RunResult r = RunTrace(snapshot, trace, /*workers=*/2,
                           /*cache_on=*/true, 10, /*batch_window=*/0, eps);
    std::printf("eps=%.2f: qps=%.1f p50=%.2fms p99=%.2fms %s\n", eps,
                r.latency.qps, r.latency.p50_ms, r.latency.p99_ms,
                eval::FormatCounters(r.counters).c_str());
    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  "\"epsilon\": %.3f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f",
                  eps, r.latency.qps, r.latency.p50_ms, r.latency.p99_ms);
    json.Add("server_throughput/anytime_eps:" + std::to_string(
                 static_cast<int>(eps * 1000)),
             r.seconds * 1e9 / trace.size(), extra);
  }

  // Every QueryService above registered into the default registry, so
  // it now holds the full serving-metric catalog with real samples.
  // Dump it as Prometheus text: CI diffs the series catalog against
  // the committed baseline (tools/s3_metrics_diff.py, advisory).
  const std::string prom = obs::MetricRegistry::Default().RenderPrometheus();
  if (!prom.empty()) {
    if (std::FILE* f = std::fopen("BENCH_server_metrics.prom", "w")) {
      std::fputs(prom.c_str(), f);
      std::fclose(f);
      std::printf("\nwrote BENCH_server_metrics.prom (%zu bytes)\n",
                  prom.size());
    }
  }
  return 0;
}
