// Figure 8: qualitative comparison of S3k and TopkS answers on
// I1/I2/I3 — graph reachability, semantic reachability, L1 (Spearman's
// foot rule), and intersection size, averaged over the 8 standard
// workloads.
#include <algorithm>

#include "bench_util.h"
#include "eval/metrics.h"

using namespace s3;

namespace {

// Users reachable from `seeker` in the UIT user graph. "Reachable by
// the TopkS search" (paper §5.4) means: TopkS can only surface content
// through a contributor (poster or tagger) the seeker is socially
// connected to.
std::vector<bool> ReachableUsers(const baseline::Flattened& flat,
                                 uint32_t seeker) {
  const auto& uit = flat.uit;
  std::vector<bool> user_seen(uit.UserCount(), false);
  std::vector<uint32_t> stack{seeker};
  user_seen[seeker] = true;
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (const auto& link : uit.LinksOf(u)) {
      if (!user_seen[link.to]) {
        user_seen[link.to] = true;
        stack.push_back(link.to);
      }
    }
  }
  return user_seen;
}

// Poster of each document root (postedBy edges).
std::vector<uint32_t> PosterOfNode(const core::S3Instance& inst) {
  std::vector<uint32_t> poster(inst.docs().NodeCount(), UINT32_MAX);
  for (const auto& e : inst.edges().edges()) {
    if (e.label == social::EdgeLabel::kPostedBy &&
        e.source.kind() == social::EntityKind::kFragment) {
      poster[e.source.index()] = e.target.index();
    }
  }
  return poster;
}

// A candidate document is TopkS-reachable iff its poster — or a tag
// author on any of its fragments — is socially reachable.
bool CandidateReachable(const core::S3Instance& inst,
                        const std::vector<uint32_t>& poster_of,
                        const std::vector<bool>& reachable_user,
                        doc::NodeId node) {
  doc::DocId d = inst.docs().DocOf(node);
  doc::NodeId root = inst.docs().RootNode(d);
  uint32_t poster = poster_of[root];
  if (poster != UINT32_MAX && reachable_user[poster]) return true;
  const doc::Document& document = inst.docs().document(d);
  for (uint32_t local = 0; local < document.NodeCount(); ++local) {
    doc::NodeId n = inst.docs().GlobalId(d, local);
    for (social::TagId t :
         inst.TagsOn(social::EntityId::Fragment(n))) {
      if (reachable_user[inst.tags()[t].author]) return true;
    }
  }
  return false;
}

struct QualityRow {
  double graph_reachability = 0.0;     // S3k candidates TopkS misses
  double semantic_reachability = 0.0;  // candidates w/o Ext / with Ext
  double l1 = 0.0;
  double intersection = 0.0;
};

QualityRow Measure(const workload::GenResult& gen) {
  const core::S3Instance& inst = *gen.instance;
  baseline::Flattened flat = baseline::FlattenToUit(inst);
  std::vector<uint32_t> poster_of = PosterOfNode(inst);

  core::S3kOptions s3k_opts;
  core::S3kOptions plain_opts;
  plain_opts.use_semantics = false;
  baseline::TopkSOptions tk_opts;
  tk_opts.alpha = 0.5;

  QualityRow row;
  size_t n_queries = 0;
  double sum_graph = 0, sum_sem_plain = 0, sum_sem_ext = 0, sum_l1 = 0,
         sum_inter = 0;

  for (const auto& spec : bench::StandardWorkloads(9000)) {
    auto qs = workload::BuildWorkload(inst, gen.semantic_anchors, spec);
    core::S3kOptions opts = s3k_opts;
    opts.k = spec.k;
    core::S3kOptions popts = plain_opts;
    popts.k = spec.k;
    baseline::TopkSOptions topts = tk_opts;
    topts.k = spec.k;
    core::S3kSearcher s3k(inst, opts);
    core::S3kSearcher s3k_plain(inst, popts);
    baseline::TopkSSearcher topks(flat.uit, topts);

    for (const auto& q : qs.queries) {
      core::SearchStats st, st_plain;
      auto rs = s3k.Search(q, &st);
      (void)s3k_plain.Search(q, &st_plain);
      baseline::TopkSStats tst;
      auto rt = topks.Search(q.seeker, q.keywords, &tst);
      if (!rs.ok() || !rt.ok()) continue;
      ++n_queries;

      // Graph reachability: S3k candidate documents that the TopkS
      // search cannot reach through the social graph (doc granularity:
      // the candidates of S3k are documents, not merged items).
      std::vector<bool> reachable_user = ReachableUsers(flat, q.seeker);
      size_t missed = 0;
      for (doc::NodeId n : st.candidate_nodes) {
        if (!CandidateReachable(inst, poster_of, reachable_user, n)) {
          ++missed;
        }
      }
      if (!st.candidate_nodes.empty()) {
        sum_graph +=
            static_cast<double>(missed) / st.candidate_nodes.size();
      }

      // Semantic reachability: candidates without / with extension.
      sum_sem_plain += static_cast<double>(st_plain.candidates_total);
      sum_sem_ext += static_cast<double>(st.candidates_total);

      // Result-list comparison.
      std::vector<uint64_t> s3k_items, tk_items;
      for (const auto& r : *rs) {
        auto item = flat.ItemOfNode(inst, r.node);
        if (item != baseline::kInvalidItem &&
            std::find(s3k_items.begin(), s3k_items.end(), item) ==
                s3k_items.end()) {
          s3k_items.push_back(item);
        }
      }
      for (const auto& r : *rt) tk_items.push_back(r.item);
      sum_l1 += eval::SpearmanFootRuleNormalized(s3k_items, tk_items);
      sum_inter += eval::IntersectionRatio(s3k_items, tk_items);
    }
  }

  if (n_queries == 0) return row;
  row.graph_reachability = sum_graph / n_queries;
  row.semantic_reachability =
      sum_sem_ext == 0 ? 1.0 : sum_sem_plain / sum_sem_ext;
  row.l1 = sum_l1 / n_queries;
  row.intersection = sum_inter / n_queries;
  return row;
}

}  // namespace

int main() {
  std::printf("=== Figure 8: S3k vs TopkS answer quality ===\n");
  std::printf("(%zu queries per workload, 8 workloads per instance)\n\n",
              bench::QueriesPerWorkload());

  eval::TablePrinter table(
      {"measure", "I1", "I2", "I3", "paper (I1/I2/I3)"});
  QualityRow r1 = Measure(bench::MakeI1());
  QualityRow r2 = Measure(bench::MakeI2());
  QualityRow r3 = Measure(bench::MakeI3());

  table.AddRow({"graph reachability (S3k-only candidates)",
                eval::FormatPercent(r1.graph_reachability),
                eval::FormatPercent(r2.graph_reachability),
                eval::FormatPercent(r3.graph_reachability),
                "12% / 23% / 41%"});
  table.AddRow({"semantic reachability (no-Ext / Ext)",
                eval::FormatPercent(r1.semantic_reachability),
                eval::FormatPercent(r2.semantic_reachability),
                eval::FormatPercent(r3.semantic_reachability),
                "83% / 100% / 78%"});
  table.AddRow({"L1 distance (normalized; high = different)",
                eval::FormatPercent(r1.l1), eval::FormatPercent(r2.l1),
                eval::FormatPercent(r3.l1),
                "8% / 10% / 4% (see EXPERIMENTS.md)"});
  table.AddRow({"intersection size", eval::FormatPercent(r1.intersection),
                eval::FormatPercent(r2.intersection),
                eval::FormatPercent(r3.intersection),
                "13.7% / 18.4% / 5.6%"});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected shape (paper Fig. 8): low intersection and low L1 —\n"
      "the two engines return substantially different answers; many\n"
      "S3k candidates are unreachable for TopkS; on I2 (no ontology)\n"
      "semantic reachability is 100%%.\n");
  return 0;
}
