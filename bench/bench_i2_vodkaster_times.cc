// I2 (Vodkaster-like) query times. The paper reports these results in
// its technical report, noting they are "similar" to Fig. 5/6 (§5.3).
#include "bench_util.h"

int main() {
  s3::bench::RunTimesFigure(
      "=== Tech-report figure: query answering times on I2 "
      "(Vodkaster-like) ===",
      s3::bench::MakeI2());
  return 0;
}
