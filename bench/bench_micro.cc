// Micro-benchmarks (google-benchmark) for the substrate components:
// Porter stemming, RDFS saturation, transition-matrix propagation,
// component candidate construction, and a full S3k query.
//
// Always writes a machine-readable run record: unless --benchmark_out
// is given, results are mirrored to BENCH_micro.json (ns/op per
// benchmark) so successive PRs can track the perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/connections.h"
#include "core/s3k.h"
#include "rdf/saturation.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"

namespace {

using namespace s3;

void BM_PorterStem(benchmark::State& state) {
  const char* words[] = {"relational",   "universities", "graduation",
                         "connections",  "hopefulness",  "troubled",
                         "vietnamization", "effective"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PorterStem(words[i++ % 8]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_ExtractKeywords(benchmark::State& state) {
  const std::string text =
      "When I got my M.S. @UAlberta in 2012, a degree gave many more "
      "opportunities to graduates searching for universities";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractKeywords(text));
  }
}
BENCHMARK(BM_ExtractKeywords);

void BM_Saturation(benchmark::State& state) {
  const int n_classes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    rdf::TermDictionary dict;
    rdf::TripleStore store;
    rdf::TermId sc = dict.InternUri("rdfs:subClassOf");
    rdf::TermId type = dict.InternUri("rdf:type");
    for (int i = 1; i < n_classes; ++i) {
      store.Add(dict.InternUri("c" + std::to_string(i)), sc,
                dict.InternUri("c" + std::to_string(i / 2)));
    }
    for (int i = 0; i < n_classes; ++i) {
      store.Add(dict.InternUri("e" + std::to_string(i)), type,
                dict.InternUri("c" + std::to_string(i)));
    }
    state.ResumeTiming();
    rdf::SaturationStats stats = rdf::Saturate(dict, store);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_Saturation)->Arg(64)->Arg(512)->Arg(4096);

struct BenchInstance {
  workload::GenResult gen;
  workload::QuerySet qs;
};

BenchInstance& SharedInstance() {
  static BenchInstance* bi = [] {
    auto* out = new BenchInstance();
    workload::MicroblogParams p;
    p.seed = 777;
    p.n_users = 1500;
    p.n_tweets = 5000;
    p.vocab_size = 2500;
    p.ontology.n_classes = 80;
    p.ontology.n_entities = 600;
    out->gen = workload::GenerateMicroblog(p);
    workload::WorkloadSpec spec;
    spec.freq = workload::Frequency::kCommon;
    spec.n_keywords = 1;
    spec.k = 10;
    spec.n_queries = 64;
    out->qs = workload::BuildWorkload(*out->gen.instance,
                                      out->gen.semantic_anchors, spec);
    return out;
  }();
  return *bi;
}

void BM_MatrixPropagate(benchmark::State& state) {
  auto& bi = SharedInstance();
  const auto& inst = *bi.gen.instance;
  social::Frontier f, g;
  f.Init(inst.layout().total());
  g.Init(inst.layout().total());
  f.Set(inst.RowOfUser(0), 1.0);
  // Warm two steps so the frontier is wide.
  inst.matrix().Propagate(f, g);
  inst.matrix().Propagate(g, f);
  for (auto _ : state) {
    inst.matrix().Propagate(f, g);
    benchmark::DoNotOptimize(g.values.data());
  }
}
BENCHMARK(BM_MatrixPropagate);

void BM_ComponentCandidates(benchmark::State& state) {
  auto& bi = SharedInstance();
  const auto& inst = *bi.gen.instance;
  const auto& q = bi.qs.queries[0];
  core::QueryExtension ext(1);
  for (KeywordId k : inst.ExtendKeyword(q.keywords[0])) ext[0].insert(k);
  const auto& comps = inst.ComponentsWithKeyword(q.keywords[0]);
  size_t i = 0;
  for (auto _ : state) {
    core::ConnectionBuilder builder(inst, 0.5);
    benchmark::DoNotOptimize(
        builder.Build(comps[i++ % comps.size()], ext));
  }
}
BENCHMARK(BM_ComponentCandidates);

void BM_S3kQuery(benchmark::State& state) {
  auto& bi = SharedInstance();
  core::S3kOptions opts;
  opts.k = static_cast<size_t>(state.range(0));
  core::S3kSearcher searcher(*bi.gen.instance, opts);
  size_t i = 0;
  for (auto _ : state) {
    auto r = searcher.Search(bi.qs.queries[i++ % bi.qs.queries.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_S3kQuery)->Arg(5)->Arg(10)->Arg(20);

// Certified anytime search against the exact baseline: eps is the
// requested certificate in thousandths (0 = exact mode — must match
// BM_S3kQuery/20 since the eps=0 path is bit-for-bit the exact
// search; 10 = 1%, 100 = 10%). The anytime exit stops the iteration
// loop as soon as the remaining mass fits under (1+eps) times the
// k-th lower bound, so larger eps trades certified slack for latency.
void BM_S3kQueryAnytime(benchmark::State& state) {
  auto& bi = SharedInstance();
  core::S3kOptions opts;
  opts.k = static_cast<size_t>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 1000.0;
  core::S3kSearcher searcher(*bi.gen.instance, opts);
  core::QueryOptions qopts;
  if (eps > 0.0) {
    qopts.mode = core::QueryMode::kAnytime;
    qopts.epsilon_approx = eps;
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = bi.qs.queries[i++ % bi.qs.queries.size()];
    auto r = searcher.Search(
        core::QueryRequest(q.seeker, q.keywords, qopts));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_S3kQueryAnytime)
    ->ArgNames({"k", "eps"})
    ->Args({20, 0})
    ->Args({20, 10})
    ->Args({20, 100});

// The batched hot path: 8 same-plan queries per iteration (the lcm of
// the swept widths, so ns/op is directly comparable across batch
// sizes), answered in ceil(8/batch) SearchBatchWithPlan passes. batch=1
// is the single-seeker engine run through the batch API — the
// amortization baseline; batch>=4 is where the shared candidate build
// and the one-CSR-walk-per-iteration lane streaming pay off.
void BM_S3kQueryBatched(benchmark::State& state) {
  auto& bi = SharedInstance();
  core::S3kOptions opts;
  opts.k = static_cast<size_t>(state.range(0));
  const size_t width = static_cast<size_t>(state.range(1));
  core::S3kSearcher searcher(*bi.gen.instance, opts);
  // One shared plan, exactly like the server's batch drain: a batch is
  // always same-keyword-multiset queries differing only in seeker.
  const auto& q0 = bi.qs.queries[0];
  auto plan = core::BuildCandidatePlan(*bi.gen.instance, q0.keywords,
                                       opts.use_semantics, opts.score.eta);
  if (!plan.ok()) {
    state.SkipWithError("plan build failed");
    return;
  }
  constexpr size_t kQueriesPerIter = 8;
  const size_t n = bi.qs.queries.size();
  std::vector<core::BatchSeeker> batch(width);
  size_t i = 0;
  for (auto _ : state) {
    for (size_t done = 0; done < kQueriesPerIter; done += width) {
      for (size_t s = 0; s < width; ++s) {
        batch[s].seeker = bi.qs.queries[i++ % n].seeker;
      }
      auto r = searcher.SearchBatchWithPlan(batch, *plan);
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kQueriesPerIter));
}
BENCHMARK(BM_S3kQueryBatched)
    ->ArgNames({"k", "batch"})
    ->Args({20, 1})
    ->Args({20, 4})
    ->Args({20, 8});

// The solo fat query: a controlled component-count sweep for the
// intra-query fan-out. BM_S3kQuery averages over the whole workload —
// mostly thin plans, and the microblog trace's fattest query is
// dominated by the giant reply component, so the cost model correctly
// declines to shard it. This instance is built to be the fan-out's
// target shape instead: C disjoint comment-linked document clusters
// (one passing component each, balanced work), every cluster holding
// the query keyword, the seeker socially adjacent to every poster.
// Counters report the passing-component count and whether the cost
// model actually picked the fan-out (comps >= 8 legs should report
// fanout=1 at threads >= 2).
core::S3Instance& FatInstance(size_t n_clusters) {
  static std::map<size_t, std::unique_ptr<core::S3Instance>>* cache =
      new std::map<size_t, std::unique_ptr<core::S3Instance>>();
  auto it = cache->find(n_clusters);
  if (it != cache->end()) return *it->second;

  auto inst = std::make_unique<core::S3Instance>();
  Rng rng(4200 + n_clusters);
  social::UserId seeker = inst->AddUser("seeker");
  KeywordId kw = inst->InternKeyword("fatkw");
  KeywordId filler = inst->InternKeyword("filler");
  for (size_t c = 0; c < n_clusters; ++c) {
    social::UserId poster = inst->AddUser("poster" + std::to_string(c));
    (void)inst->AddSocialEdge(seeker, poster, 0.2 + 0.7 * rng.NextDouble());
    (void)inst->AddSocialEdge(poster, seeker, 0.2 + 0.7 * rng.NextDouble());
    const size_t n_docs = 30 + rng.Uniform(5);
    doc::NodeId head = doc::kInvalidNode;
    for (size_t i = 0; i < n_docs; ++i) {
      doc::Document d("doc");
      uint32_t par = d.AddChild(0, "par");
      d.AddKeywords(par, {kw});
      if (rng.Chance(0.5)) {
        uint32_t extra = d.AddChild(0, "par");
        d.AddKeywords(extra, {filler});
      }
      doc::DocId id =
          inst->AddDocument(std::move(d),
                            "f" + std::to_string(c) + "_" + std::to_string(i),
                            poster)
              .value();
      if (i == 0) {
        head = inst->docs().RootNode(id);
      } else {
        (void)inst->AddComment(id, head);
      }
    }
  }
  (void)inst->Finalize();
  auto [pos, inserted] = cache->emplace(n_clusters, std::move(inst));
  return *pos->second;
}

void BM_S3kQueryFat(benchmark::State& state) {
  const size_t n_comps = static_cast<size_t>(state.range(0));
  core::S3Instance& inst = FatInstance(n_comps);
  core::S3kOptions opts;
  opts.k = 20;
  opts.threads = static_cast<unsigned>(state.range(1));
  core::S3kSearcher searcher(inst, opts);
  core::Query q{/*seeker=*/0, {inst.vocabulary().Find("fatkw")}};
  core::SearchStats st;
  for (auto _ : state) {
    auto r = searcher.Search(q, &st);
    benchmark::DoNotOptimize(r);
  }
  state.counters["comps"] = static_cast<double>(st.components_passing);
  state.counters["fanout"] = st.used_component_fanout ? 1.0 : 0.0;
}
BENCHMARK(BM_S3kQueryFat)
    ->ArgNames({"comps", "threads"})
    ->Args({4, 1})
    ->Args({4, 8})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({64, 1})
    ->Args({64, 8});

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
