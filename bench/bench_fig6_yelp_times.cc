// Figure 6: query answering times on I3 (Yelp-like instance), same
// grid as Figure 5.
#include "bench_util.h"

int main() {
  s3::bench::RunTimesFigure(
      "=== Figure 6: query answering times on I3 (Yelp-like) ===",
      s3::bench::MakeI3());
  return 0;
}
