// Ablations of the design choices the paper credits for its
// qualitative gains (§5.4, §6):
//   1. all-paths social proximity vs single-best-path proximity
//      (the TopkS-style shortcut);
//   2. semantics on/off (keyword extension);
//   3. structure on/off (fragment scoring: η sweep — η→0 scores only
//      exact fragments, η→1 ignores structural distance).
#include <algorithm>

#include "bench_util.h"
#include "core/naive_reference.h"
#include "eval/metrics.h"

using namespace s3;

namespace {

std::vector<uint64_t> Nodes(const std::vector<core::ResultEntry>& rs) {
  std::vector<uint64_t> out;
  for (const auto& r : rs) out.push_back(r.node);
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablations on I1 ===\n");
  workload::GenResult gen = bench::MakeI1();
  const core::S3Instance& inst = *gen.instance;

  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 1;
  spec.k = 3;
  spec.n_queries = std::min<size_t>(bench::QueriesPerWorkload(), 30);
  spec.seed = 8200;
  auto qs = workload::BuildWorkload(inst, gen.semantic_anchors, spec);

  // ---- 1. All-paths vs best-path proximity --------------------------------
  {
    core::S3kOptions opts;
    opts.k = spec.k;
    double sum_inter = 0, sum_l1 = 0;
    size_t n = 0;
    for (const auto& q : qs.queries) {
      auto all_paths = core::S3kSearcher(inst, opts).Search(q);
      auto best_prox = core::NaiveBestPathProx(inst, q.seeker, 24,
                                               opts.score.gamma);
      auto best_path =
          core::NaiveSearchWithProx(inst, q, opts, best_prox);
      if (!all_paths.ok()) continue;
      ++n;
      sum_inter +=
          eval::IntersectionRatio(Nodes(*all_paths), Nodes(best_path));
      sum_l1 += eval::SpearmanFootRuleNormalized(Nodes(*all_paths),
                                                 Nodes(best_path));
    }
    std::printf(
        "1. proximity model: all-paths vs single-best-path\n"
        "   top-%zu intersection %.1f%%, L1 %.2f  (over %zu queries)\n"
        "   => aggregating over all paths reranks results, as §5.4 "
        "argues.\n\n",
        spec.k, 100 * sum_inter / n, sum_l1 / n, n);
  }

  // ---- 2. Semantics on/off -------------------------------------------------
  {
    core::S3kOptions with_sem, no_sem;
    with_sem.k = no_sem.k = spec.k;
    no_sem.use_semantics = false;
    size_t n = 0;
    double cand_ratio = 0;
    size_t gained = 0;
    for (const auto& q : qs.queries) {
      core::SearchStats st_sem, st_plain;
      (void)core::S3kSearcher(inst, with_sem).Search(q, &st_sem);
      (void)core::S3kSearcher(inst, no_sem).Search(q, &st_plain);
      if (st_sem.candidates_total == 0) continue;
      ++n;
      cand_ratio += static_cast<double>(st_plain.candidates_total) /
                    st_sem.candidates_total;
      if (st_sem.candidates_total > st_plain.candidates_total) ++gained;
    }
    std::printf(
        "2. semantics: candidates without Ext are %.1f%% of those with "
        "Ext;\n   %zu/%zu queries gained candidates from Ext "
        "(cf. Fig. 8 semantic reachability).\n\n",
        100 * cand_ratio / std::max<size_t>(n, 1), gained, n);
  }

  // ---- 3. Structure: η sweep -----------------------------------------------
  // Run on the review-thread instance (I2): its documents are deeper
  // (sentence fragments), so the structural damping factor decides
  // whether a whole comment or a single sentence is returned.
  {
    std::printf("3. structure: damping factor eta sweep (vs eta=0.5)\n");
    workload::GenResult gen2 = bench::MakeI2();
    const core::S3Instance& inst2 = *gen2.instance;
    workload::WorkloadSpec spec2 = spec;
    spec2.seed = 8300;
    auto qs2 = workload::BuildWorkload(inst2, {}, spec2);
    core::S3kOptions ref_opts;
    ref_opts.k = spec.k;
    for (double eta : {0.05, 0.9}) {
      core::S3kOptions opts = ref_opts;
      opts.score.eta = eta;
      double sum_inter = 0, sum_l1 = 0;
      size_t n = 0;
      for (const auto& q : qs2.queries) {
        auto ref = core::S3kSearcher(inst2, ref_opts).Search(q);
        auto alt = core::S3kSearcher(inst2, opts).Search(q);
        if (!ref.ok() || !alt.ok() || ref->empty()) continue;
        ++n;
        sum_inter += eval::IntersectionRatio(Nodes(*ref), Nodes(*alt));
        sum_l1 += eval::SpearmanFootRuleNormalized(Nodes(*ref),
                                                   Nodes(*alt));
      }
      std::printf(
          "   eta=%.2f vs eta=0.5: top-%zu intersection %.1f%%, L1 %.2f\n",
          eta, spec.k, 100 * sum_inter / std::max<size_t>(n, 1),
          sum_l1 / std::max<size_t>(n, 1));
    }
    std::printf(
        "   => structural damping changes which fragment of a document "
        "is returned.\n");
  }
  return 0;
}
