// Figure 5: query answering times on I1 (Twitter-like instance),
// 8 standard workloads × S3k γ ∈ {1.25, 1.5, 2} × TopkS α ∈ {0.75,
// 0.5, 0.25}.
#include "bench_util.h"

int main() {
  s3::bench::RunTimesFigure(
      "=== Figure 5: query answering times on I1 (Twitter-like) ===",
      s3::bench::MakeI1());
  return 0;
}
