// Mixed update/query workload benchmark for the live-update pipeline:
// one QueryService serving a hot common-keyword trace while an updater
// thread builds InstanceDeltas (new tweets, tags, social edges),
// applies them copy-on-write (ApplyDelta) and hot-swaps the resulting
// generations into the service (SwapSnapshot). Sweeps the pacing of
// the update stream and reports query QPS, applied updates/sec and
// apply+swap latency per configuration, merging records into
// BENCH_server.json alongside bench_server_throughput.
//
// Expected shape:
//  - queries keep flowing at every update rate (reads never block on
//    writes — the whole point of the snapshot pipeline);
//  - query QPS dips only modestly as the update rate grows: ApplyDelta
//    *recomputes* only the delta's touched rows (everything else is
//    spliced or shared), leaving a linear-but-memcpy-speed copy of the
//    index spines per apply, and one core is spent building snapshots;
//  - apply latency stays flat across generations (structural sharing:
//    each delta re-derives only its own touches, not history — the
//    per-apply copy grows only as fast as the instance itself does).
//
// Environment overrides:
//   S3_BENCH_QUERIES   queries-per-workload base; the trace is 8x this
//   S3_BENCH_SCALE     instance scale multiplier (default 1.0)
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/instance_delta.h"
#include "eval/runtime.h"
#include "obs/metrics.h"
#include "eval/service_stats.h"
#include "server/query_service.h"
#include "server/snapshot_manager.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"

namespace {

using namespace s3;

// A hot-query trace (same construction as bench_server_throughput).
std::vector<core::Query> MakeHotTrace(const core::S3Instance& inst,
                                      const std::vector<KeywordId>& anchors,
                                      size_t distinct, size_t length) {
  workload::WorkloadSpec spec;
  spec.freq = workload::Frequency::kCommon;
  spec.n_keywords = 2;
  spec.k = 10;
  spec.n_queries = distinct;
  spec.seed = 4242;
  workload::QuerySet qs = workload::BuildWorkload(inst, anchors, spec);

  Rng rng(777);
  std::vector<core::Query> trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(qs.queries[rng.Uniform(qs.queries.size())]);
  }
  return trace;
}

// One delta: a burst of tweets (1-2 nodes, keywords sampled from the
// live vocabulary), a few tags and social edges — the paper's
// continuously-arriving microblog traffic.
core::InstanceDelta MakeDelta(std::shared_ptr<const core::S3Instance> snap,
                              Rng& rng, uint64_t serial) {
  core::InstanceDelta delta(std::move(snap));
  const core::S3Instance& base = *delta.base();
  const uint32_t n_users = static_cast<uint32_t>(base.UserCount());
  const uint32_t n_keywords =
      static_cast<uint32_t>(base.vocabulary().size());
  const uint32_t n_nodes = static_cast<uint32_t>(base.docs().NodeCount());

  for (int i = 0; i < 8; ++i) {
    doc::Document d("tweet");
    d.AddKeywords(0, {static_cast<KeywordId>(rng.Uniform(n_keywords)),
                      static_cast<KeywordId>(rng.Uniform(n_keywords))});
    if (rng.Chance(0.4)) {
      uint32_t child = d.AddChild(0, "text");
      d.AddKeywords(child, {delta.InternKeyword(
                               "live" + std::to_string(serial * 100 + i))});
    }
    auto id = delta.AddDocument(
        std::move(d), "live" + std::to_string(serial) + "_" +
                          std::to_string(i),
        static_cast<social::UserId>(rng.Uniform(n_users)));
    if (id.ok() && rng.Chance(0.5)) {
      (void)delta.AddComment(*id, static_cast<doc::NodeId>(
                                      rng.Uniform(n_nodes)));
    }
  }
  for (int t = 0; t < 4; ++t) {
    (void)delta.AddTagOnFragment(
        static_cast<social::UserId>(rng.Uniform(n_users)),
        static_cast<doc::NodeId>(rng.Uniform(n_nodes)),
        static_cast<KeywordId>(rng.Uniform(n_keywords)));
  }
  for (int e = 0; e < 4; ++e) {
    (void)delta.AddSocialEdge(
        static_cast<social::UserId>(rng.Uniform(n_users)),
        static_cast<social::UserId>(rng.Uniform(n_users)),
        0.2 + 0.7 * rng.NextDouble());
  }
  return delta;
}

struct MixedRunResult {
  double seconds = 0.0;
  eval::LatencySnapshot query_latency;
  size_t updates_applied = 0;
  double update_mean_ms = 0.0;
  double update_p99_ms = 0.0;
  double hit_rate = 0.0;
  uint64_t final_generation = 0;
  // Generation-freshness lag (SnapshotManager::FreshnessLagSeconds),
  // sampled just before each publish — the lag's per-cycle maximum.
  double freshness_mean_ms = 0.0;
  double freshness_p99_ms = 0.0;
};

// Runs the full trace through the service while the updater applies
// deltas paced at `update_interval_ms` (0 = no updates; < 0 = apply
// back-to-back).
MixedRunResult RunMixed(std::shared_ptr<const core::S3Instance> snapshot,
                        const std::vector<core::Query>& trace,
                        unsigned workers, double update_interval_ms,
                        const char* label) {
  server::QueryServiceOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 64;
  opts.enable_cache = true;
  opts.search.k = 10;
  server::QueryService service(snapshot, opts);

  // Updates go through the durable path — WAL append + ApplyDelta +
  // publish inside SnapshotManager::LogAndApply — so the bench
  // exercises (and its freshness numbers come from) the same pipeline
  // a server runs, not a bare in-memory ApplyDelta.
  std::unique_ptr<server::SnapshotManager> manager;
  const std::string wal_dir =
      std::string("bench_update_wal_") + label;
  if (update_interval_ms != 0.0) {
    std::error_code ec;
    std::filesystem::remove_all(wal_dir, ec);
    server::SnapshotManagerOptions sopts;
    sopts.dir = wal_dir;
    auto opened = server::SnapshotManager::Open(sopts);
    if (!opened.ok() || !(*opened)->Initialize(snapshot).ok()) {
      std::fprintf(stderr, "SnapshotManager setup failed in %s\n",
                   wal_dir.c_str());
      return {};
    }
    manager = std::move(*opened);
  }

  std::atomic<bool> stop{false};
  std::vector<double> update_seconds;
  std::vector<double> lag_seconds;
  std::thread updater;
  if (update_interval_ms != 0.0) {
    updater = std::thread([&] {
      Rng rng(4321);
      uint64_t serial = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto cur = manager->current();
        WallTimer t;
        core::InstanceDelta delta = MakeDelta(cur, rng, serial++);
        lag_seconds.push_back(manager->FreshnessLagSeconds());
        auto next = manager->LogAndApply(delta);
        if (!next.ok()) {
          std::fprintf(stderr, "LogAndApply failed: %s\n",
                       next.status().message().c_str());
          return;
        }
        if (!service.SwapSnapshot(*next).ok()) return;
        update_seconds.push_back(t.ElapsedSeconds());
        if (update_interval_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<long>(update_interval_ms * 1000)));
        }
      }
    });
  }

  WallTimer timer;
  std::vector<server::QueryFuture> futures;
  futures.reserve(trace.size());
  for (const core::Query& q : trace) {
    auto submitted = service.SubmitBlocking(q);
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  size_t failed = 0;
  for (auto& f : futures) {
    if (!f.get().ok()) ++failed;
  }
  MixedRunResult out;
  out.seconds = timer.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  if (updater.joinable()) updater.join();

  out.query_latency = service.latency().TakeSnapshot(out.seconds);
  out.updates_applied = update_seconds.size();
  out.update_mean_ms = Mean(update_seconds) * 1e3;
  out.update_p99_ms = Quantile(update_seconds, 0.99) * 1e3;
  out.hit_rate = service.cache()->Stats().HitRate();
  out.final_generation = service.snapshot()->generation();
  out.freshness_mean_ms = Mean(lag_seconds) * 1e3;
  out.freshness_p99_ms = Quantile(lag_seconds, 0.99) * 1e3;
  if (failed > 0) {
    std::fprintf(stderr, "WARNING: %zu queries failed\n", failed);
  }
  manager.reset();
  std::error_code ec;
  std::filesystem::remove_all(wal_dir, ec);
  return out;
}

}  // namespace

int main() {
  // merge: bench_server_throughput contributes to the same file.
  bench::BenchJsonWriter json("BENCH_server.json", /*merge=*/true);

  std::printf("== update throughput: live deltas x hot query trace ==\n");
  workload::MicroblogParams p;
  p.seed = 777;
  p.n_users = bench::Scaled(2000);
  p.n_tweets = bench::Scaled(8000);
  p.vocab_size = bench::Scaled(4000);
  p.n_hashtags = bench::Scaled(200);
  workload::GenResult gen = workload::GenerateMicroblog(p);
  std::shared_ptr<const core::S3Instance> snapshot = std::move(gen.instance);

  const size_t trace_len =
      std::max<size_t>(8 * bench::QueriesPerWorkload(), 64);
  const size_t distinct = std::max<size_t>(trace_len / 8, 8);
  auto trace = MakeHotTrace(*snapshot, gen.semantic_anchors, distinct,
                            trace_len);
  std::printf(
      "instance: %s — users=%zu docs=%zu; trace: %zu queries over %zu "
      "distinct keyword sets; 8 docs + 4 tags + 4 edges per delta\n\n",
      gen.name.c_str(), snapshot->UserCount(),
      snapshot->docs().DocumentCount(), trace.size(), distinct);

  struct Config {
    const char* label;
    double interval_ms;
  };
  const Config configs[] = {
      {"none", 0.0},        // read-only baseline
      {"paced20ms", 20.0},  // steady update stream
      {"burst", -1.0},      // back-to-back: update-side saturation
  };

  eval::TablePrinter table({"updates", "QPS", "p50 ms", "p99 ms",
                            "upd/s", "apply ms", "lag ms", "gen",
                            "hit rate"});
  for (const Config& cfg : configs) {
    MixedRunResult r = RunMixed(snapshot, trace, /*workers=*/4,
                                cfg.interval_ms, cfg.label);
    const double qps = r.query_latency.qps;
    const double upd_per_sec =
        r.seconds > 0 ? r.updates_applied / r.seconds : 0.0;
    char qps_s[32], p50[32], p99[32], ups[32], apply[32], lag[32], hit[32];
    std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
    std::snprintf(p50, sizeof(p50), "%.2f", r.query_latency.p50_ms);
    std::snprintf(p99, sizeof(p99), "%.2f", r.query_latency.p99_ms);
    std::snprintf(ups, sizeof(ups), "%.1f", upd_per_sec);
    std::snprintf(apply, sizeof(apply), "%.2f", r.update_mean_ms);
    std::snprintf(lag, sizeof(lag), "%.2f", r.freshness_mean_ms);
    std::snprintf(hit, sizeof(hit), "%.1f%%", r.hit_rate * 100.0);
    table.AddRow({cfg.label, qps_s, p50, p99, ups, apply,
                  cfg.interval_ms != 0.0 ? lag : "-",
                  std::to_string(r.final_generation), hit});

    char extra[320];
    std::snprintf(
        extra, sizeof(extra),
        "\"qps\": %.1f, \"p99_ms\": %.3f, \"updates_per_sec\": %.1f, "
        "\"apply_mean_ms\": %.3f, \"generations\": %llu, "
        "\"hit_rate\": %.3f, \"freshness_lag_ms\": %.3f, "
        "\"freshness_lag_p99_ms\": %.3f",
        qps, r.query_latency.p99_ms, upd_per_sec, r.update_mean_ms,
        static_cast<unsigned long long>(r.final_generation), r.hit_rate,
        r.freshness_mean_ms, r.freshness_p99_ms);
    json.Add(std::string("update_throughput/upd:") + cfg.label,
             r.seconds * 1e9 / trace.size(), extra);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected shape: QPS at upd:none matches bench_server_throughput's "
      "4-worker\nrow; paced/burst updates trade a bounded slice of QPS "
      "for a continuously\nfresh snapshot (reads never block on "
      "writes), and apply latency stays flat\nacross generations "
      "(copy-on-write pays per delta, not per history).\n");

  // Rewrite the metrics dump bench_server_throughput started: this
  // process registered the same serving families PLUS the
  // SnapshotManager ones (WAL append, apply latency, checkpoints,
  // freshness lag), so running the pair in order leaves the union
  // catalog for the CI metrics diff.
  const std::string prom = obs::MetricRegistry::Default().RenderPrometheus();
  if (!prom.empty()) {
    if (std::FILE* f = std::fopen("BENCH_server_metrics.prom", "w")) {
      std::fputs(prom.c_str(), f);
      std::fclose(f);
      std::printf("rewrote BENCH_server_metrics.prom (%zu bytes)\n",
                  prom.size());
    }
  }
  return 0;
}
