// Shared helpers for the figure-reproduction benchmark binaries.
//
// Scale: the paper ran on full Twitter/Vodkaster/Yelp dumps (Fig. 4).
// These harnesses default to a laptop-scale reduction that preserves
// the constructions (retweet/reply fractions, threading, enrichment)
// and therefore the *shapes* of Figures 5-8. Environment overrides:
//   S3_BENCH_QUERIES  queries per workload (default 30, paper: 100)
//   S3_BENCH_SCALE    instance scale multiplier (default 1.0)
#ifndef S3_BENCH_BENCH_UTIL_H_
#define S3_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <unordered_set>
#include <vector>

#include "baseline/flatten.h"
#include "baseline/topks.h"
#include "common/timer.h"
#include "core/s3k.h"
#include "eval/runtime.h"
#include "workload/business_gen.h"
#include "workload/microblog_gen.h"
#include "workload/query_gen.h"
#include "workload/review_gen.h"

namespace s3::bench {

inline size_t QueriesPerWorkload() {
  const char* env = std::getenv("S3_BENCH_QUERIES");
  return env ? std::strtoul(env, nullptr, 10) : 30;
}

inline double Scale() {
  const char* env = std::getenv("S3_BENCH_SCALE");
  return env ? std::strtod(env, nullptr) : 1.0;
}

inline uint32_t Scaled(uint32_t base) {
  return static_cast<uint32_t>(base * Scale());
}

// Machine-readable run record, mirroring google-benchmark's JSON shape
// ({"benchmarks": [{"name", "ns_per_op", ...}]}), so BENCH_*.json files
// from the figure harnesses and from bench_micro can be diffed with the
// same tooling. Records are flushed on destruction.
//
// With merge = true the writer keeps the records already present in
// `path` whose names this run does not re-emit, so several bench
// binaries (e.g. bench_server_throughput and bench_update_throughput)
// can contribute to one file regardless of run order.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string path, bool merge = false)
      : path_(std::move(path)), merge_(merge) {}

  // One record; `extra` is a pre-rendered list of additional JSON
  // fields, e.g. "\"k\": 5, \"gamma\": 1.5".
  void Add(const std::string& name, double ns_per_op,
           const std::string& extra = "") {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ns_per_op\": %.1f%s%s}",
                  name.c_str(), ns_per_op, extra.empty() ? "" : ", ",
                  extra.c_str());
    records_.push_back(buf);
  }

  ~BenchJsonWriter() {
    if (merge_) MergeExisting();
    std::ofstream out(path_);
    if (!out) return;
    out << "{\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "wrote %s (%zu records)\n", path_.c_str(),
                 records_.size());
  }

 private:
  // Value of the "name" field anywhere in `record` ("" when absent).
  // Tolerant of both this writer's compact one-line records and
  // google-benchmark's pretty-printed objects.
  static std::string RecordName(const std::string& record) {
    const std::string marker = "\"name\"";
    size_t at = record.find(marker);
    if (at == std::string::npos) return "";
    at += marker.size();
    while (at < record.size() &&
           (record[at] == ' ' || record[at] == ':')) {
      ++at;
    }
    if (at >= record.size() || record[at] != '"') return "";
    ++at;
    size_t end = record.find('"', at);
    return end == std::string::npos ? "" : record.substr(at, end - at);
  }

  // One-line form of a JSON object: whitespace outside strings is
  // collapsed so a reloaded record stays a single line next merge.
  static std::string CompactObject(const std::string& obj) {
    std::string out = "    ";
    bool in_string = false;
    bool pending_space = false;
    for (size_t i = 0; i < obj.size(); ++i) {
      const char c = obj[i];
      if (in_string) {
        out.push_back(c);
        if (c == '\\' && i + 1 < obj.size()) {
          out.push_back(obj[++i]);
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == ' ' || c == '\n' || c == '\r' || c == '\t') {
        pending_space = !out.empty() && out.back() != '{';
        continue;
      }
      if (pending_space && c != '}' && c != ',' && c != ':') {
        out.push_back(' ');
      }
      pending_space = false;
      out.push_back(c);
      if (c == '"') in_string = true;
    }
    return out;
  }

  // Prepends the previous run's records that this run does not
  // replace, so several bench binaries can contribute to one file.
  // Understands both this writer's own output and google-benchmark's
  // --benchmark_out JSON ({"context": ..., "benchmarks": [...]}):
  // objects of the "benchmarks" array are split by brace depth and
  // compacted to one line each (the array entries of both producers
  // are flat objects).
  void MergeExisting() {
    std::ifstream in(path_);
    if (!in) return;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    size_t at = content.find("\"benchmarks\"");
    if (at == std::string::npos) return;
    at = content.find('[', at);
    if (at == std::string::npos) return;

    std::unordered_set<std::string> fresh;
    for (const std::string& r : records_) fresh.insert(RecordName(r));

    std::vector<std::string> kept;
    int depth = 0;
    bool in_string = false;
    size_t obj_start = std::string::npos;
    for (size_t i = at + 1; i < content.size(); ++i) {
      const char c = content[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        if (depth++ == 0) obj_start = i;
      } else if (c == '}') {
        if (--depth == 0 && obj_start != std::string::npos) {
          std::string obj =
              content.substr(obj_start, i - obj_start + 1);
          std::string name = RecordName(obj);
          if (!name.empty() && !fresh.count(name)) {
            kept.push_back(CompactObject(obj));
          }
          obj_start = std::string::npos;
        }
      } else if (c == ']' && depth == 0) {
        break;
      }
    }
    records_.insert(records_.begin(), kept.begin(), kept.end());
  }

  std::string path_;
  bool merge_;
  std::vector<std::string> records_;
};

// The three bench instances, mirroring the paper's I1/I2/I3.
inline workload::GenResult MakeI1() {
  workload::MicroblogParams p;
  p.seed = 101;
  p.n_users = Scaled(4000);
  p.isolated_user_fraction = 0.12;
  p.n_tweets = Scaled(16000);
  p.vocab_size = Scaled(6000);
  p.n_hashtags = Scaled(300);
  // Shallow, sparse ontology so that Ext(k) grows workloads by roughly
  // the paper's +50% (Fig. 4 / §5.1).
  p.ontology.n_classes = Scaled(600);
  p.ontology.n_entities = Scaled(1500);
  p.ontology.parent_probability = 0.25;
  p.entity_prob = 0.1;
  return workload::GenerateMicroblog(p);
}

inline workload::GenResult MakeI2() {
  workload::ReviewParams p;
  p.seed = 102;
  p.n_users = Scaled(1500);
  p.isolated_user_fraction = 0.25;
  p.n_movies = Scaled(1200);
  p.avg_comments_per_movie = 6.0;
  return workload::GenerateReviewSite(p);
}

inline workload::GenResult MakeI3() {
  workload::BusinessParams p;
  p.seed = 103;
  p.n_users = Scaled(3000);
  p.isolated_user_fraction = 0.45;
  p.n_businesses = Scaled(900);
  p.avg_reviews_per_business = 8.0;
  p.ontology.n_classes = Scaled(500);
  p.ontology.n_entities = Scaled(1200);
  p.ontology.parent_probability = 0.25;
  p.entity_prob = 0.08;
  return workload::GenerateBusinessReviews(p);
}

// The paper's 8 standard workloads: f ∈ {+,−} × l ∈ {1,5} × k ∈ {5,10}.
inline std::vector<workload::WorkloadSpec> StandardWorkloads(
    uint64_t seed_base = 5000) {
  std::vector<workload::WorkloadSpec> specs;
  for (auto freq :
       {workload::Frequency::kCommon, workload::Frequency::kRare}) {
    for (size_t l : {1u, 5u}) {
      for (size_t k : {5u, 10u}) {
        workload::WorkloadSpec spec;
        spec.freq = freq;
        spec.n_keywords = l;
        spec.k = k;
        spec.n_queries = QueriesPerWorkload();
        spec.seed = seed_base++;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

// Runs one workload through S3k; returns per-query times.
inline eval::RuntimeSeries RunS3k(const core::S3Instance& inst,
                                  const workload::QuerySet& qs,
                                  core::S3kOptions opts) {
  opts.k = qs.k;
  core::S3kSearcher searcher(inst, opts);
  eval::RuntimeSeries series;
  for (const auto& q : qs.queries) {
    WallTimer t;
    auto result = searcher.Search(q);
    if (result.ok()) series.Add(t.ElapsedSeconds());
  }
  return series;
}

// Runs one workload through TopkS on the flattened instance.
inline eval::RuntimeSeries RunTopkS(const baseline::Flattened& flat,
                                    const workload::QuerySet& qs,
                                    baseline::TopkSOptions opts) {
  opts.k = qs.k;
  baseline::TopkSSearcher searcher(flat.uit, opts);
  eval::RuntimeSeries series;
  for (const auto& q : qs.queries) {
    WallTimer t;
    auto result = searcher.Search(q.seeker, q.keywords);
    if (result.ok()) series.Add(t.ElapsedSeconds());
  }
  return series;
}

// Shared "Fig. 5 / Fig. 6"-style harness: median per-workload times for
// S3k (γ sweep) vs TopkS (α sweep).
inline void RunTimesFigure(const char* title, workload::GenResult gen) {
  std::printf("%s\n", title);
  std::printf("instance: %s — users=%zu docs=%zu tags=%zu\n",
              gen.name.c_str(), gen.instance->UserCount(),
              gen.instance->docs().DocumentCount(),
              gen.instance->TagCount());
  std::printf("queries per workload: %zu (paper: 100)\n\n",
              QueriesPerWorkload());

  baseline::Flattened flat = baseline::FlattenToUit(*gen.instance);

  eval::TablePrinter table(
      {"workload", "S3k g=1.25", "S3k g=1.5", "S3k g=2",
       "TopkS a=0.75", "TopkS a=0.5", "TopkS a=0.25"});
  // Times are reported in milliseconds: the instances are ~1/100 of
  // the paper's, which ran in the 0.1-0.9 s range.
  for (const auto& spec : StandardWorkloads()) {
    auto qs = workload::BuildWorkload(*gen.instance, gen.semantic_anchors,
                                      spec);
    std::vector<std::string> row{qs.label};
    for (double gamma : {1.25, 1.5, 2.0}) {
      core::S3kOptions opts;
      opts.score.gamma = gamma;
      auto series = RunS3k(*gen.instance, qs, opts);
      row.push_back(series.empty()
                        ? "-"
                        : eval::FormatMillis(series.MedianSeconds()));
    }
    for (double alpha : {0.75, 0.5, 0.25}) {
      baseline::TopkSOptions opts;
      opts.alpha = alpha;
      auto series = RunTopkS(flat, qs, opts);
      row.push_back(series.empty()
                        ? "-"
                        : eval::FormatMillis(series.MedianSeconds()));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "median query answering time in MILLISECONDS; expected shape "
      "(paper Fig. 5/6):\n"
      " - TopkS runs consistently faster (one shortest path vs all "
      "paths);\n"
      " - larger gamma => faster S3k (tail bound gamma^-(n+1) decays "
      "faster;\n"
      "   see EXPERIMENTS.md on the paper's inverted wording);\n"
      " - larger alpha => slower TopkS;\n"
      " - rare-keyword workloads (-) faster than common (+) for S3k.\n");
}

}  // namespace s3::bench

#endif  // S3_BENCH_BENCH_UTIL_H_
