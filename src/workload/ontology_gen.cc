#include "workload/ontology_gen.h"

#include <string>

#include "common/rng.h"
#include "rdf/vocab.h"

namespace s3::workload {

OntologyInfo GenerateOntology(core::S3Instance& instance,
                              const OntologyParams& params) {
  Rng rng(params.seed);
  OntologyInfo info;

  // Class forest: class i picks a parent among earlier classes.
  std::vector<std::string> class_uri(params.n_classes);
  for (uint32_t i = 0; i < params.n_classes; ++i) {
    class_uri[i] = "onto:c" + std::to_string(i);
    info.class_keywords.push_back(instance.InternKeyword(class_uri[i]));
    if (i > 0 && rng.Chance(params.parent_probability)) {
      uint32_t parent = static_cast<uint32_t>(rng.Uniform(i));
      instance.DeclareSubClass(class_uri[i], class_uri[parent]);
      ++info.n_schema_triples;
    }
  }

  // Entities: typed instances whose URIs appear in document text.
  for (uint32_t j = 0; j < params.n_entities; ++j) {
    std::string uri = "onto:e" + std::to_string(j);
    uint32_t klass = static_cast<uint32_t>(rng.Uniform(params.n_classes));
    instance.DeclareType(uri, class_uri[klass]);
    ++info.n_schema_triples;
    info.entity_keywords.push_back(instance.InternKeyword(uri));
  }

  // Property hierarchy with domain/range typing, exercising the other
  // RDFS rules (these enrich the graph; ≺sp members also join Ext).
  for (uint32_t p = 0; p < params.n_properties; ++p) {
    std::string uri = "onto:p" + std::to_string(p);
    if (p > 0 && rng.Chance(0.5)) {
      instance.DeclareSubProperty(
          uri, "onto:p" + std::to_string(rng.Uniform(p)));
      ++info.n_schema_triples;
    }
    uint32_t dom = static_cast<uint32_t>(rng.Uniform(params.n_classes));
    uint32_t rng_class = static_cast<uint32_t>(rng.Uniform(params.n_classes));
    auto& g = instance.rdf_graph();
    auto& t = instance.terms();
    g.Add(t.InternUri(uri), t.InternUri(rdf::vocab::kDomain),
          t.InternUri(class_uri[dom]));
    g.Add(t.InternUri(uri), t.InternUri(rdf::vocab::kRange),
          t.InternUri(class_uri[rng_class]));
    info.n_schema_triples += 2;
  }

  return info;
}

}  // namespace s3::workload
