#include "workload/business_gen.h"

#include <cassert>

namespace s3::workload {

GenResult GenerateBusinessReviews(const BusinessParams& params) {
  GenResult out;
  out.instance = std::make_unique<core::S3Instance>();
  out.name = "I3-business";
  core::S3Instance& inst = *out.instance;
  Rng rng(params.seed);

  OntologyInfo onto = GenerateOntology(inst, params.ontology);
  out.semantic_anchors = onto.class_keywords;

  AddUsers(inst, params.n_users, "yelp:");
  inst.DeclareSubProperty("yelp:friend", "S3:social");
  // Friendship is mutual: AddSocialGraph adds one direction; add the
  // reverse pass with a different seed offset for realism.
  AddSocialGraph(inst, rng, params.n_users, params.avg_social_degree / 2,
                 /*uniform_weights=*/true, params.isolated_user_fraction);
  AddSocialGraph(inst, rng, params.n_users, params.avg_social_degree / 2,
                 /*uniform_weights=*/true, params.isolated_user_fraction);

  ZipfSampler vocab(params.vocab_size, params.zipf_vocab);
  ZipfSampler activity(params.n_users, 1.1);

  auto make_review_doc = [&](social::UserId poster,
                             const std::string& uri) -> doc::DocId {
    doc::Document d("review");
    uint32_t n_paragraphs =
        params.paragraphs_min +
        static_cast<uint32_t>(rng.Uniform(
            params.paragraphs_max - params.paragraphs_min + 1));
    for (uint32_t p = 0; p < n_paragraphs; ++p) {
      uint32_t para = d.AddChild(0, "paragraph");
      d.AddKeywords(para,
                    SampleText(inst, rng, vocab, params.words_per_paragraph,
                               onto.entity_keywords, params.entity_prob));
    }
    Result<doc::DocId> added = inst.AddDocument(std::move(d), uri, poster);
    assert(added.ok());
    return added.value();
  };

  for (uint32_t b = 0; b < params.n_businesses; ++b) {
    uint32_t n_reviews =
        1 + static_cast<uint32_t>(rng.Uniform(static_cast<uint64_t>(
                std::max(1.0, 2.0 * params.avg_reviews_per_business - 1.0))));
    doc::DocId first = make_review_doc(
        static_cast<social::UserId>(activity.Sample(rng)),
        "yelp:b" + std::to_string(b) + ".r0");
    doc::NodeId first_root = inst.docs().RootNode(first);
    for (uint32_t r = 1; r < n_reviews; ++r) {
      doc::DocId extra = make_review_doc(
          static_cast<social::UserId>(activity.Sample(rng)),
          "yelp:b" + std::to_string(b) + ".r" + std::to_string(r));
      Status s = inst.AddComment(extra, first_root);
      assert(s.ok());
      (void)s;
    }
  }

  Status s = inst.Finalize();
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace s3::workload
