#include "workload/query_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace s3::workload {

std::string WorkloadLabel(const WorkloadSpec& spec) {
  std::string out = spec.freq == Frequency::kCommon ? "+" : "-";
  out += "," + std::to_string(spec.n_keywords);
  out += "," + std::to_string(spec.k);
  return out;
}

QuerySet BuildWorkload(const core::S3Instance& instance,
                       const std::vector<KeywordId>& anchors,
                       const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  QuerySet out;
  out.label = WorkloadLabel(spec);
  out.k = spec.k;

  // Rank indexed keywords by document frequency.
  std::vector<std::pair<size_t, KeywordId>> by_df;
  for (KeywordId k : instance.index().Keywords()) {
    by_df.emplace_back(instance.index().DocumentFrequency(k), k);
  }
  std::sort(by_df.begin(), by_df.end());
  if (by_df.empty()) return out;

  // Frequency buckets: bottom / top quartile.
  size_t quarter = std::max<size_t>(1, by_df.size() / 4);
  size_t lo_begin = 0, lo_end = quarter;
  size_t hi_begin = by_df.size() - quarter, hi_end = by_df.size();
  size_t begin = spec.freq == Frequency::kRare ? lo_begin : hi_begin;
  size_t end = spec.freq == Frequency::kRare ? lo_end : hi_end;

  // For multi-keyword queries the extra keywords are drawn from the
  // component of the first keyword's first match, so that conjunctive
  // queries have answers — the realistic "topical phrase" shape.
  auto component_keywords = [&](KeywordId seed_kw) {
    std::vector<KeywordId> pool;
    const auto& postings = instance.index().Postings(seed_kw);
    if (postings.empty()) return pool;
    doc::NodeId node = postings[rng.Uniform(postings.size())];
    social::ComponentId comp =
        instance.components().Of(social::EntityId::Fragment(node));
    for (uint32_t row : instance.components().Members(comp)) {
      social::EntityId e = instance.layout().Entity(row);
      if (e.kind() != social::EntityKind::kFragment) continue;
      const auto& kws = instance.docs().node(e.index()).keywords;
      pool.insert(pool.end(), kws.begin(), kws.end());
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    return pool;
  };

  for (size_t q = 0; q < spec.n_queries; ++q) {
    core::Query query;
    query.seeker =
        static_cast<social::UserId>(rng.Uniform(instance.UserCount()));
    // First keyword: frequency bucket or semantic anchor.
    KeywordId first;
    if (!anchors.empty() && rng.Chance(spec.anchor_prob)) {
      first = anchors[rng.Uniform(anchors.size())];
    } else {
      first = by_df[begin + rng.Uniform(end - begin)].second;
    }
    query.keywords.push_back(first);

    if (spec.n_keywords > 1) {
      // Anchors have no postings; use a member of their extension to
      // locate a component.
      KeywordId seed = first;
      if (instance.index().Postings(seed).empty()) {
        for (KeywordId k : instance.ExtendKeyword(first)) {
          if (!instance.index().Postings(k).empty()) {
            seed = k;
            break;
          }
        }
      }
      std::vector<KeywordId> pool = component_keywords(seed);
      // Prefer pool members that fall in the frequency bucket: common
      // co-occurring words keep multi-keyword queries selective but
      // not degenerate (they still match several components).
      std::vector<KeywordId> preferred;
      {
        std::unordered_set<KeywordId> bucket;
        for (size_t i = begin; i < end; ++i) bucket.insert(by_df[i].second);
        for (KeywordId k : pool) {
          if (bucket.contains(k)) preferred.push_back(k);
        }
      }
      if (preferred.size() >= spec.n_keywords - 1) pool = preferred;
      size_t attempts = 0;
      while (query.keywords.size() < spec.n_keywords &&
             attempts++ < 200) {
        KeywordId k = pool.empty()
                          ? by_df[begin + rng.Uniform(end - begin)].second
                          : pool[rng.Uniform(pool.size())];
        if (std::find(query.keywords.begin(), query.keywords.end(), k) ==
            query.keywords.end()) {
          query.keywords.push_back(k);
        }
      }
      // Degenerate pools: pad from the bucket.
      while (query.keywords.size() < spec.n_keywords) {
        KeywordId k = by_df[begin + rng.Uniform(end - begin)].second;
        if (std::find(query.keywords.begin(), query.keywords.end(), k) ==
            query.keywords.end()) {
          query.keywords.push_back(k);
        }
      }
    }
    out.queries.push_back(std::move(query));
  }
  return out;
}

}  // namespace s3::workload
