// Synthetic microblog instance — the I1 (Twitter + DBpedia) stand-in.
//
// Construction mirrors paper §5.1: every non-retweet tweet becomes a
// three-node document (text / date / geo); a retweet becomes a tag on
// the original (keyworded by a hashtag, or a pure endorsement);
// a reply becomes a S3:commentsOn document; tweet text is semantically
// enriched by replacing words with ontology-entity URIs; users are
// linked by weighted similarity edges.
#ifndef S3_WORKLOAD_MICROBLOG_GEN_H_
#define S3_WORKLOAD_MICROBLOG_GEN_H_

#include "workload/gen_util.h"
#include "workload/ontology_gen.h"

namespace s3::workload {

struct MicroblogParams {
  uint64_t seed = 42;
  uint32_t n_users = 2000;
  uint32_t n_tweets = 6000;  // total tweet actions
  double retweet_fraction = 0.85;
  double reply_fraction = 0.069;
  // Fraction of users with no social edges (see AddSocialGraph).
  double isolated_user_fraction = 0.0;
  double avg_social_degree = 16.0;
  size_t words_per_tweet = 8;
  uint32_t vocab_size = 4000;
  double zipf_vocab = 1.05;
  double entity_prob = 0.2;
  uint32_t n_hashtags = 150;
  double retweet_hashtag_prob = 0.4;
  double geo_prob = 0.3;
  OntologyParams ontology;
};

// Generates and finalizes the instance.
GenResult GenerateMicroblog(const MicroblogParams& params);

}  // namespace s3::workload

#endif  // S3_WORKLOAD_MICROBLOG_GEN_H_
