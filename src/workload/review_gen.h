// Synthetic review-thread instance — the I2 (Vodkaster) stand-in.
//
// Paper §5.1: follower relations (weight-1 vdk:follow edges, a
// S3:social sub-property), one document per movie (its first comment),
// each later comment a S3:commentsOn document; comment sentences
// become fragments. No ontology matching and no tags, exactly like the
// paper's I2.
#ifndef S3_WORKLOAD_REVIEW_GEN_H_
#define S3_WORKLOAD_REVIEW_GEN_H_

#include "workload/gen_util.h"

namespace s3::workload {

struct ReviewParams {
  uint64_t seed = 43;
  uint32_t n_users = 1000;
  uint32_t n_movies = 400;
  double avg_comments_per_movie = 6.0;
  // Fraction of users with no social edges (see AddSocialGraph).
  double isolated_user_fraction = 0.0;
  double avg_social_degree = 12.0;
  uint32_t sentences_min = 1;
  uint32_t sentences_max = 4;
  uint32_t words_per_sentence = 6;
  uint32_t vocab_size = 3000;
  double zipf_vocab = 1.05;
};

GenResult GenerateReviewSite(const ReviewParams& params);

}  // namespace s3::workload

#endif  // S3_WORKLOAD_REVIEW_GEN_H_
