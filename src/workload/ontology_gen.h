// Synthetic ontology generator (DBpedia stand-in; see DESIGN.md §2).
//
// Builds a class forest with ≺sc edges, typed entity instances, and a
// property hierarchy with ≺sp / domain / range declarations. Entity
// and class URIs double as text keywords: the document generators
// "semantically enrich" text by sampling entity URIs, mirroring the
// paper's replacement of words by DBpedia URIs via foaf:name. Queries
// anchored at class URIs then gain matches through Ext(k).
#ifndef S3_WORKLOAD_ONTOLOGY_GEN_H_
#define S3_WORKLOAD_ONTOLOGY_GEN_H_

#include <cstdint>
#include <vector>

#include "core/s3_instance.h"

namespace s3::workload {

struct OntologyParams {
  uint64_t seed = 7;
  uint32_t n_classes = 120;
  uint32_t n_entities = 1200;
  uint32_t n_properties = 30;
  // Probability that a class has a parent (controls forest depth).
  double parent_probability = 0.8;
};

struct OntologyInfo {
  // Keyword ids of class URIs (semantic query anchors).
  std::vector<KeywordId> class_keywords;
  // Keyword ids of entity URIs (sampled into document text).
  std::vector<KeywordId> entity_keywords;
  size_t n_schema_triples = 0;
};

// Adds the ontology to `instance` (must not be finalized).
OntologyInfo GenerateOntology(core::S3Instance& instance,
                              const OntologyParams& params);

}  // namespace s3::workload

#endif  // S3_WORKLOAD_ONTOLOGY_GEN_H_
