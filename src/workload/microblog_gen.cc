#include "workload/microblog_gen.h"

#include <cassert>

namespace s3::workload {

GenResult GenerateMicroblog(const MicroblogParams& params) {
  GenResult out;
  out.instance = std::make_unique<core::S3Instance>();
  out.name = "I1-microblog";
  core::S3Instance& inst = *out.instance;
  Rng rng(params.seed);

  OntologyInfo onto = GenerateOntology(inst, params.ontology);
  out.semantic_anchors = onto.class_keywords;

  AddUsers(inst, params.n_users, "tw:");
  AddSocialGraph(inst, rng, params.n_users, params.avg_social_degree,
                 /*uniform_weights=*/false, params.isolated_user_fraction);

  ZipfSampler vocab(params.vocab_size, params.zipf_vocab);
  ZipfSampler activity(params.n_users, 1.1);

  std::vector<KeywordId> hashtags;
  hashtags.reserve(params.n_hashtags);
  for (uint32_t h = 0; h < params.n_hashtags; ++h) {
    hashtags.push_back(inst.InternKeyword("#tag" + std::to_string(h)));
  }

  // Base tweets first, then retweets/replies referencing them.
  std::vector<doc::DocId> base_docs;
  std::vector<social::UserId> base_poster;
  uint32_t n_base = static_cast<uint32_t>(
      params.n_tweets *
      (1.0 - params.retweet_fraction - params.reply_fraction));
  if (n_base == 0) n_base = 1;

  auto make_tweet_doc = [&](social::UserId poster,
                            const std::string& uri) -> doc::DocId {
    doc::Document d("tweet");
    uint32_t text = d.AddChild(0, "text");
    d.AddKeywords(text,
                  SampleText(inst, rng, vocab, params.words_per_tweet,
                             onto.entity_keywords, params.entity_prob));
    uint32_t date = d.AddChild(0, "date");
    d.AddKeywords(date, {inst.InternKeyword(
                            "d2014_" + std::to_string(rng.Uniform(30)))});
    if (rng.Chance(params.geo_prob)) {
      uint32_t geo = d.AddChild(0, "geo");
      d.AddKeywords(geo, {inst.InternKeyword(
                             "city" + std::to_string(rng.Uniform(50)))});
    }
    Result<doc::DocId> added = inst.AddDocument(std::move(d), uri, poster);
    assert(added.ok());
    return added.value();
  };

  for (uint32_t t = 0; t < n_base; ++t) {
    social::UserId poster =
        static_cast<social::UserId>(activity.Sample(rng));
    doc::DocId d = make_tweet_doc(poster, "tw:d" + std::to_string(t));
    base_docs.push_back(d);
    base_poster.push_back(poster);
  }

  // Popularity of base tweets for retweet/reply targeting.
  ZipfSampler tweet_pop(base_docs.size(), 0.9);

  uint32_t n_retweets =
      static_cast<uint32_t>(params.n_tweets * params.retweet_fraction);
  for (uint32_t r = 0; r < n_retweets; ++r) {
    social::UserId u = static_cast<social::UserId>(activity.Sample(rng));
    doc::DocId target = base_docs[tweet_pop.Sample(rng)];
    doc::NodeId subject = inst.docs().RootNode(target);
    // Retweet with a fresh hashtag -> keyworded tag; otherwise a pure
    // endorsement tag.
    KeywordId kw = rng.Chance(params.retweet_hashtag_prob)
                       ? hashtags[rng.Uniform(hashtags.size())]
                       : kInvalidKeyword;
    Result<social::TagId> tag = inst.AddTagOnFragment(u, subject, kw);
    assert(tag.ok());
    (void)tag;
  }

  uint32_t n_replies =
      static_cast<uint32_t>(params.n_tweets * params.reply_fraction);
  for (uint32_t r = 0; r < n_replies; ++r) {
    social::UserId u = static_cast<social::UserId>(activity.Sample(rng));
    doc::DocId reply =
        make_tweet_doc(u, "tw:reply" + std::to_string(r));
    doc::DocId target = base_docs[tweet_pop.Sample(rng)];
    Status s = inst.AddComment(reply, inst.docs().RootNode(target));
    assert(s.ok());
    (void)s;
  }

  Status s = inst.Finalize();
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace s3::workload
