// Synthetic business-review instance — the I3 (Yelp) stand-in.
//
// Paper §5.1: friend lists (weight-1 yelp:friend edges, mutual), one
// document per business (its first review), later reviews comment on
// the first; review text semantically enriched with the ontology.
// No tags, like the paper's I3.
#ifndef S3_WORKLOAD_BUSINESS_GEN_H_
#define S3_WORKLOAD_BUSINESS_GEN_H_

#include "workload/gen_util.h"
#include "workload/ontology_gen.h"

namespace s3::workload {

struct BusinessParams {
  uint64_t seed = 44;
  uint32_t n_users = 1500;
  uint32_t n_businesses = 300;
  double avg_reviews_per_business = 8.0;
  // Fraction of users with no social edges (see AddSocialGraph).
  double isolated_user_fraction = 0.0;
  double avg_social_degree = 10.0;
  uint32_t paragraphs_min = 1;
  uint32_t paragraphs_max = 3;
  uint32_t words_per_paragraph = 10;
  uint32_t vocab_size = 3500;
  double zipf_vocab = 1.05;
  double entity_prob = 0.15;
  OntologyParams ontology;
};

GenResult GenerateBusinessReviews(const BusinessParams& params);

}  // namespace s3::workload

#endif  // S3_WORKLOAD_BUSINESS_GEN_H_
