// Instance statistics, matching the rows of the paper's Figure 4.
#ifndef S3_WORKLOAD_INSTANCE_STATS_H_
#define S3_WORKLOAD_INSTANCE_STATS_H_

#include <cstddef>
#include <string>

#include "core/s3_instance.h"

namespace s3::workload {

struct InstanceStats {
  size_t users = 0;
  size_t social_edges = 0;
  size_t documents = 0;
  size_t fragments_non_root = 0;
  size_t tags = 0;
  size_t keyword_occurrences = 0;
  size_t distinct_keywords = 0;
  size_t nodes_without_keywords = 0;  // users + fragments + tags
  size_t network_edges = 0;
  size_t components = 0;
  size_t rdf_triples = 0;
  size_t rdf_derived = 0;
  double avg_social_degree = 0.0;
};

InstanceStats ComputeStats(const core::S3Instance& instance);

// Renders the Figure 4-style block for one instance.
std::string FormatStats(const std::string& name, const InstanceStats& s);

}  // namespace s3::workload

#endif  // S3_WORKLOAD_INSTANCE_STATS_H_
