// Query workload builder (paper §5.1 "Queries").
//
// Workloads are parameterized by keyword frequency f (rare = bottom
// quartile of document frequency, common = top quartile), query length
// l, and result size k: qset_{f,l,k}, 100 queries each. Semantic
// anchors (class URIs) may join the candidate pool so that keyword
// extension has something to expand.
#ifndef S3_WORKLOAD_QUERY_GEN_H_
#define S3_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <vector>

#include "core/s3k.h"
#include "workload/gen_util.h"

namespace s3::workload {

enum class Frequency { kRare, kCommon };

struct WorkloadSpec {
  Frequency freq = Frequency::kCommon;
  size_t n_keywords = 1;  // l
  size_t k = 5;
  size_t n_queries = 100;
  uint64_t seed = 1234;
  // Fraction of query keywords drawn from the semantic anchor pool
  // (class URIs) instead of the frequency bucket, when anchors exist.
  double anchor_prob = 0.2;
};

struct QuerySet {
  std::string label;  // e.g. "+,1,5"
  size_t k = 5;
  std::vector<core::Query> queries;
};

// Builds a workload over a finalized instance. `anchors` may be empty.
QuerySet BuildWorkload(const core::S3Instance& instance,
                       const std::vector<KeywordId>& anchors,
                       const WorkloadSpec& spec);

// Human-readable label "f,l,k" matching the paper's figures.
std::string WorkloadLabel(const WorkloadSpec& spec);

}  // namespace s3::workload

#endif  // S3_WORKLOAD_QUERY_GEN_H_
