#include "workload/review_gen.h"

#include <cassert>

namespace s3::workload {

GenResult GenerateReviewSite(const ReviewParams& params) {
  GenResult out;
  out.instance = std::make_unique<core::S3Instance>();
  out.name = "I2-reviews";
  core::S3Instance& inst = *out.instance;
  Rng rng(params.seed);

  AddUsers(inst, params.n_users, "vdk:");
  // Follower edges have weight 1 (vdk:follow ≺sp S3:social).
  inst.DeclareSubProperty("vdk:follow", "S3:social");
  AddSocialGraph(inst, rng, params.n_users, params.avg_social_degree,
                 /*uniform_weights=*/true, params.isolated_user_fraction);

  ZipfSampler vocab(params.vocab_size, params.zipf_vocab);
  ZipfSampler activity(params.n_users, 1.1);

  auto make_comment_doc = [&](social::UserId poster,
                              const std::string& uri) -> doc::DocId {
    doc::Document d("comment");
    uint32_t n_sentences =
        params.sentences_min +
        static_cast<uint32_t>(rng.Uniform(
            params.sentences_max - params.sentences_min + 1));
    for (uint32_t s = 0; s < n_sentences; ++s) {
      uint32_t sent = d.AddChild(0, "sentence");
      d.AddKeywords(sent, SampleText(inst, rng, vocab,
                                     params.words_per_sentence, {}, 0.0));
    }
    Result<doc::DocId> added = inst.AddDocument(std::move(d), uri, poster);
    assert(added.ok());
    return added.value();
  };

  uint32_t comment_seq = 0;
  for (uint32_t m = 0; m < params.n_movies; ++m) {
    uint32_t n_comments =
        1 + static_cast<uint32_t>(rng.Uniform(static_cast<uint64_t>(
                std::max(1.0, 2.0 * params.avg_comments_per_movie - 1.0))));
    doc::DocId first = make_comment_doc(
        static_cast<social::UserId>(activity.Sample(rng)),
        "vdk:m" + std::to_string(m) + ".c0");
    doc::NodeId first_root = inst.docs().RootNode(first);
    for (uint32_t c = 1; c < n_comments; ++c) {
      doc::DocId extra = make_comment_doc(
          static_cast<social::UserId>(activity.Sample(rng)),
          "vdk:m" + std::to_string(m) + ".c" + std::to_string(c));
      Status s = inst.AddComment(extra, first_root);
      assert(s.ok());
      (void)s;
    }
    comment_seq += n_comments;
  }
  (void)comment_seq;

  Status s = inst.Finalize();
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace s3::workload
