// Shared helpers for the synthetic instance generators.
#ifndef S3_WORKLOAD_GEN_UTIL_H_
#define S3_WORKLOAD_GEN_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/s3_instance.h"

namespace s3::workload {

// A generated instance plus the metadata benchmarks need.
struct GenResult {
  std::unique_ptr<core::S3Instance> instance;
  std::string name;
  // Class-URI keywords usable as semantic query anchors (empty when the
  // instance was not matched against an ontology, like I2).
  std::vector<KeywordId> semantic_anchors;
};

// Registers `n_users` users named "<prefix>u<i>".
inline void AddUsers(core::S3Instance& inst, uint32_t n_users,
                     const std::string& prefix) {
  for (uint32_t i = 0; i < n_users; ++i) {
    inst.AddUser(prefix + "u" + std::to_string(i));
  }
}

// Adds a heavy-tailed directed social graph: out-degrees are sampled
// around `avg_degree`, targets by Zipf popularity (preferential-
// attachment shape). `uniform_weights` gives every edge weight 1 (the
// follower/friend datasets I2/I3); otherwise weights are similarity-
// like values in (0, 1] (the I1 construction).
//
// `isolated_fraction` of the users get no social edges at all — like
// the friendless reviewers of the real datasets (paper Fig. 4 counts
// "social edges per user HAVING ANY"). Isolated users still post and
// tag, so their content is reachable through document links (S3k) but
// not through the social graph (TopkS) — the source of the paper's
// graph-reachability gap (Fig. 8).
inline size_t AddSocialGraph(core::S3Instance& inst, Rng& rng,
                             uint32_t n_users, double avg_degree,
                             bool uniform_weights,
                             double isolated_fraction = 0.0) {
  if (n_users < 2) return 0;
  ZipfSampler popularity(n_users, 1.0);
  std::vector<bool> isolated(n_users, false);
  for (uint32_t u = 0; u < n_users; ++u) {
    isolated[u] = rng.Chance(isolated_fraction);
  }
  size_t added = 0;
  for (uint32_t u = 0; u < n_users; ++u) {
    if (isolated[u]) continue;
    // Degree: geometric-ish around the average.
    size_t degree = 1 + rng.Uniform(static_cast<uint64_t>(
                            std::max(1.0, 2.0 * avg_degree - 1.0)));
    for (size_t d = 0; d < degree; ++d) {
      uint32_t v = static_cast<uint32_t>(popularity.Sample(rng));
      if (v == u || isolated[v]) continue;
      double w = uniform_weights ? 1.0 : 0.1 + 0.9 * rng.NextDouble();
      if (inst.AddSocialEdge(u, v, w).ok()) ++added;
    }
  }
  return added;
}

// Samples `n` content keywords: Zipf-distributed plain words
// "w<rank>", each independently replaced by an ontology entity URI
// with probability `entity_prob` (semantic enrichment).
inline std::vector<KeywordId> SampleText(
    core::S3Instance& inst, Rng& rng, const ZipfSampler& vocab, size_t n,
    const std::vector<KeywordId>& entities, double entity_prob) {
  std::vector<KeywordId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!entities.empty() && rng.Chance(entity_prob)) {
      out.push_back(entities[rng.Uniform(entities.size())]);
    } else {
      out.push_back(
          inst.InternKeyword("w" + std::to_string(vocab.Sample(rng))));
    }
  }
  return out;
}

}  // namespace s3::workload

#endif  // S3_WORKLOAD_GEN_UTIL_H_
