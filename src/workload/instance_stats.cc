#include "workload/instance_stats.h"

#include <sstream>
#include <unordered_set>

namespace s3::workload {

InstanceStats ComputeStats(const core::S3Instance& inst) {
  InstanceStats s;
  s.users = inst.UserCount();
  s.tags = inst.TagCount();
  s.documents = inst.docs().DocumentCount();
  s.fragments_non_root = inst.docs().NodeCount() - s.documents;
  s.network_edges = inst.edges().size();
  s.social_edges = inst.edges().CountLabel(social::EdgeLabel::kSocial);
  s.components = inst.components().ComponentCount();
  s.rdf_triples = inst.rdf_graph().size();
  s.rdf_derived = inst.saturation_stats().derived_triples;
  s.nodes_without_keywords =
      inst.UserCount() + inst.docs().NodeCount() + inst.TagCount();

  std::unordered_set<KeywordId> distinct;
  for (doc::NodeId n = 0; n < inst.docs().NodeCount(); ++n) {
    const auto& kws = inst.docs().node(n).keywords;
    s.keyword_occurrences += kws.size();
    distinct.insert(kws.begin(), kws.end());
  }
  s.distinct_keywords = distinct.size();
  s.avg_social_degree =
      s.users == 0 ? 0.0
                   : static_cast<double>(s.social_edges) /
                         static_cast<double>(s.users);
  return s;
}

std::string FormatStats(const std::string& name, const InstanceStats& s) {
  std::ostringstream os;
  os << "=== " << name << " ===\n";
  os << "Users                         " << s.users << "\n";
  os << "S3:social edges               " << s.social_edges << "\n";
  os << "Documents                     " << s.documents << "\n";
  os << "Fragments (non-root)          " << s.fragments_non_root << "\n";
  os << "Tags                          " << s.tags << "\n";
  os << "Keyword occurrences           " << s.keyword_occurrences << "\n";
  os << "Distinct keywords             " << s.distinct_keywords << "\n";
  os << "Nodes (without keywords)      " << s.nodes_without_keywords
     << "\n";
  os << "Network edges                 " << s.network_edges << "\n";
  os << "Components                    " << s.components << "\n";
  os << "RDF triples (saturated)       " << s.rdf_triples << "\n";
  os << "RDF triples derived           " << s.rdf_derived << "\n";
  os << "S3:social edges per user (avg) " << s.avg_social_degree << "\n";
  return os.str();
}

}  // namespace s3::workload
