// Bounded multi-producer / multi-consumer blocking queue — the
// admission-control primitive of the query service (server/).
//
// The capacity bound is what turns overload into back-pressure instead
// of unbounded memory growth: producers either block in Push or get an
// immediate refusal from TryPush (load shedding), and consumers drain
// in FIFO order. Close() wakes everyone; a closed queue refuses new
// items but lets consumers drain what was already accepted, so an
// orderly shutdown loses no admitted work.
//
// Plain mutex + two condition variables. The service's unit of work is
// an entire top-k query (milliseconds), so queue overhead is noise and
// a lock-free ring would buy nothing but TSan risk.
#ifndef S3_COMMON_BOUNDED_QUEUE_H_
#define S3_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace s3 {

template <typename T>
class BoundedQueue {
 public:
  // Capacity must be at least 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking admission: false when the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking admission: waits for space; false when the queue was (or
  // gets) closed before the item could be accepted.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] {
        return closed_ || items_.size() < capacity_;
      });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and
  // drained (then nullopt).
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // closed and drained
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  // Non-blocking consume: nullopt when empty.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  // Non-blocking conditional consume: pops the front item only when
  // `pred(front)` holds (evaluated under the queue lock — keep it
  // cheap). nullopt when the queue is empty or the predicate refuses.
  // Consumers use this to drain runs of adjacent compatible work
  // (query batching) without reordering: only the head is ever
  // examined, so FIFO order is preserved for everything left behind.
  template <typename Pred>
  std::optional<T> TryPopIf(Pred&& pred) {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      const T& front = items_.front();
      if (!pred(front)) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  // Refuse new items; wake all blocked producers and consumers.
  // Already-admitted items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace s3

#endif  // S3_COMMON_BOUNDED_QUEUE_H_
