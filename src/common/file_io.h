// Whole-file helpers for the storage layer (SnapshotManager, the
// s3_snapshot tool): slurp a file into a string, and write one
// crash-atomically.
#ifndef S3_COMMON_FILE_IO_H_
#define S3_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace s3 {

// Reads the entire file at `path`. NotFound when it cannot be opened,
// Internal on a read error.
Status ReadFileToString(const std::string& path, std::string* out);

// Writes `bytes` to `path` via tmp + fsync + rename + parent-directory
// fsync: after power loss the file either keeps its old content or
// holds the new bytes in full — and the rename itself is durable, not
// just the data (renames live in the directory, which has to be
// synced separately on POSIX).
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace s3

#endif  // S3_COMMON_FILE_IO_H_
