// Status and Result<T>: lightweight error propagation without exceptions,
// in the style of RocksDB/Arrow. Functions on hot paths return Status (or
// Result<T>) instead of throwing; callers must inspect the code.
#ifndef S3_COMMON_STATUS_H_
#define S3_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace s3 {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  // Transient overload: retry later (the query service's bounded-queue
  // admission control sheds load with this code).
  kUnavailable,
};

// Human-readable name of a StatusCode, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A Status is either OK (no payload) or an error code plus a message.
class Status {
 public:
  // Default construction yields OK.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call
  // sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be built from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

// Propagates a non-OK status to the caller.
#define S3_RETURN_IF_ERROR(expr)           \
  do {                                     \
    ::s3::Status _s3_status = (expr);      \
    if (!_s3_status.ok()) return _s3_status; \
  } while (false)

}  // namespace s3

#endif  // S3_COMMON_STATUS_H_
