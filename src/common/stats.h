// Small descriptive-statistics helpers used by the benchmark harnesses
// (median run times for Fig. 5/6, quartile whiskers for Fig. 7).
#ifndef S3_COMMON_STATS_H_
#define S3_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace s3 {

// Five-number summary of a sample.
struct QuartileSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  size_t count = 0;
};

// Linear-interpolation quantile (type-7, the numpy default) of an
// unsorted sample. q is clamped to [0, 1] (NaN counts as 0). Returns
// 0.0 on an empty sample: these helpers take caller-supplied (often
// measured) data, so empty input must be a defined case, not UB behind
// an assert that Release builds compile out.
double Quantile(std::vector<double> values, double q);

// Computes min/Q1/median/Q3/max of a sample. Returns an all-zero
// summary (count == 0) on an empty sample.
QuartileSummary Summarize(const std::vector<double>& values);

// Arithmetic mean; 0.0 on an empty sample.
double Mean(const std::vector<double>& values);

}  // namespace s3

#endif  // S3_COMMON_STATS_H_
