// Read-only memory-mapped file regions for zero-copy snapshot attach.
//
// A MappedRegion owns one contiguous read-only byte range for its whole
// lifetime — either a whole file mapped with mmap(2) or a heap buffer
// (the fallback when mmap is unavailable and the substrate for
// misalignment tests). Consumers hold it through
// std::shared_ptr<const MappedRegion>: StorageSpan views into the
// region pin the shared_ptr, so the mapping cannot be torn down while
// any derived structure still reads through it. Unlinking the backing
// file while mapped is safe on POSIX (the pages stay valid until the
// last munmap), so checkpoint retention can delete old snapshot files
// without coordinating with attached instances.
#ifndef S3_COMMON_MMAP_FILE_H_
#define S3_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace s3 {

class MappedRegion {
 public:
  // Maps `path` read-only. Fails with NotFound / InvalidArgument on
  // open/map errors. An empty file yields a valid region of size 0.
  static Status Open(const std::string& path,
                     std::shared_ptr<const MappedRegion>* out);

  // Copies `bytes` into a heap-backed region. `misalign` shifts the
  // payload start by that many bytes from the allocation's (maximally
  // aligned) base — robustness tests use it to prove the attach path
  // degrades to copying, never to unaligned loads.
  static std::shared_ptr<const MappedRegion> FromBuffer(
      std::string_view bytes, size_t misalign = 0);

  ~MappedRegion();

  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  // True when the region is an actual mmap (as opposed to a heap copy).
  bool is_mapped() const { return mapped_base_ != nullptr; }

 private:
  MappedRegion() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  // mmap bookkeeping (null for heap-backed regions).
  void* mapped_base_ = nullptr;
  size_t mapped_len_ = 0;
  // Heap backing for FromBuffer (sized size_ + misalign).
  std::unique_ptr<uint8_t[]> heap_;
};

}  // namespace s3

#endif  // S3_COMMON_MMAP_FILE_H_
