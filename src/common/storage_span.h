// View-or-owned backing for derived read-path arrays.
//
// Every large structure S3Instance::AttachDerived adopts — CSR columns
// and values, denominators, the component union-find forest — is read
// element-wise on the query hot path but only ever *replaced
// wholesale* when state changes (Build, IncrementalUpdate and
// AdoptForest all construct fresh arrays and swap them in; no code
// mutates an adopted array in place). StorageSpan<T> exploits that
// contract: it exposes a vector-shaped read API over either
//
//   owned  — a std::vector<T> it holds (heap attach, and every array a
//            Build/IncrementalUpdate produces), or
//   view   — a borrowed pointer+length into an mmap'd snapshot
//            section, pinned by a shared_ptr<const MappedRegion> so
//            the mapping outlives every reader.
//
// Reads are branch-free: data_/size_ are kept pointing at whichever
// backing is active, so operator[] costs the same as on a raw vector.
// Copying an owned span deep-copies the vector (the pre-existing COW
// generation semantics of S3Instance's copy constructor); copying a
// view is O(1) and shares the pin — a delta generation forked off a
// mapped base keeps reading the mapping until an IncrementalUpdate
// replaces the span with owned output. Nothing ever writes through a
// view.
#ifndef S3_COMMON_STORAGE_SPAN_H_
#define S3_COMMON_STORAGE_SPAN_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/mmap_file.h"

namespace s3 {

template <typename T>
class StorageSpan {
 public:
  StorageSpan() = default;

  // Owned backing (implicit: every Build-path `span = std::move(vec)`).
  StorageSpan(std::vector<T> v) : owned_(std::move(v)) { SyncOwned(); }

  // View backing over `size` elements at `data`, which must lie inside
  // `pin`'s byte range and stay valid for the pin's lifetime.
  static StorageSpan View(const T* data, size_t size,
                          std::shared_ptr<const MappedRegion> pin) {
    StorageSpan s;
    s.pin_ = std::move(pin);
    s.data_ = data;
    s.size_ = size;
    return s;
  }

  StorageSpan(const StorageSpan& other)
      : owned_(other.owned_), pin_(other.pin_) {
    if (pin_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      SyncOwned();
    }
  }
  StorageSpan(StorageSpan&& other) noexcept { *this = std::move(other); }
  StorageSpan& operator=(const StorageSpan& other) {
    if (this != &other) *this = StorageSpan(other);
    return *this;
  }
  StorageSpan& operator=(StorageSpan&& other) noexcept {
    owned_ = std::move(other.owned_);
    pin_ = std::move(other.pin_);
    if (pin_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      SyncOwned();
    }
    other.pin_.reset();
    other.owned_.clear();
    other.SyncOwned();
    return *this;
  }
  StorageSpan& operator=(std::vector<T> v) {
    pin_.reset();
    owned_ = std::move(v);
    SyncOwned();
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }

  bool is_view() const { return pin_ != nullptr; }

  // Materialized owned copy (view contents included) — for code that
  // needs a mutable continuation of the current contents.
  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  void clear() {
    pin_.reset();
    owned_.clear();
    owned_.shrink_to_fit();
    SyncOwned();
  }

 private:
  void SyncOwned() {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  const T* data_ = nullptr;
  size_t size_ = 0;
  std::vector<T> owned_;
  std::shared_ptr<const MappedRegion> pin_;
};

}  // namespace s3

#endif  // S3_COMMON_STORAGE_SPAN_H_
