// Little-endian binary encoding primitives shared by the storage
// layer: the versioned binary snapshot codec (core/snapshot_binary),
// the delta WAL records (core/instance_delta) and the s3_snapshot
// inspector tool.
//
// ByteWriter appends fixed-width integers, IEEE doubles and
// length-prefixed strings to a caller-owned std::string. ByteReader is
// the bounds-checked inverse: every read is validated against the
// remaining input and failures latch (subsequent reads return zero
// values), so parsing code stays linear and checks `ok()` once per
// section instead of per field. Corrupt lengths can therefore never
// read out of bounds — and callers must still gate large
// count-driven allocations with FitsCount() so a flipped length byte
// cannot request gigabytes before the latch is consulted.
#ifndef S3_COMMON_BINARY_IO_H_
#define S3_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace s3 {

// CRC-32 (ISO-HDLC, reflected polynomial 0xEDB88320) — the framing
// checksum of snapshot sections and WAL records.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

// Append-only little-endian sink over a caller-owned string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(bits);
  }
  // u32 byte length followed by the raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  // Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  // Small values (the common case for ids, counts and deltas) take one
  // byte — the compact-section workhorse of snapshot format v2.
  void Var(uint64_t v) {
    while (v >= 0x80) {
      U8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    U8(static_cast<uint8_t>(v));
  }
  // Varint byte length followed by the raw bytes (v2 string framing).
  void VarStr(std::string_view s) {
    Var(s.size());
    out_->append(s.data(), s.size());
  }

  size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_->append(buf, sizeof(T));
  }

  std::string* out_;
};

// Bounds-checked little-endian reader with a failure latch: reading
// past the end (or a string whose length exceeds the remaining input)
// sets failed() and yields zero values from then on. Callers parse a
// whole section linearly and convert `!ok()` into one InvalidArgument
// via status().
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() { return ReadLe<uint8_t>(); }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  double F64() {
    uint64_t bits = ReadLe<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Inverse of ByteWriter::Var. Rejects non-canonical encodings longer
  // than 10 bytes and 64-bit overflow (both latch the failure), so a
  // flipped continuation bit can never spin past the section end.
  uint64_t Var() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b = U8();
      if (failed_) return 0;
      if (shift == 63 && (b & 0xfe) != 0) {  // would overflow 64 bits
        failed_ = true;
        return 0;
      }
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    failed_ = true;
    return 0;
  }

  // Inverse of ByteWriter::VarStr.
  std::string VarStr() {
    uint64_t len = Var();
    if (failed_ || len > remaining()) {
      failed_ = true;
      return std::string();
    }
    std::string out(data_.substr(pos_, len));
    pos_ += static_cast<size_t>(len);
    return out;
  }

  // Inverse of ByteWriter::Str.
  std::string Str() {
    uint32_t len = U32();
    if (failed_ || len > remaining()) {
      failed_ = true;
      return std::string();
    }
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  // Raw byte view without copying (used for nested frames).
  std::string_view Bytes(size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      return std::string_view();
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  void Skip(size_t n) { (void)Bytes(n); }

  // True iff `count` elements of at least `min_elem_bytes` each can
  // still be present in the remaining input. Gate every
  // count-driven reserve/resize with this so corrupt counts fail fast
  // instead of allocating.
  bool FitsCount(uint64_t count, size_t min_elem_bytes) const {
    if (failed_) return false;
    if (min_elem_bytes == 0) min_elem_bytes = 1;
    return count <= remaining() / min_elem_bytes;
  }

  bool ok() const { return !failed_; }
  bool failed() const { return failed_; }
  // Marks the input malformed (semantic validation failures share the
  // latch with framing failures).
  void Fail() { failed_ = true; }

  size_t offset() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }

  // InvalidArgument naming the failure offset, or OK while !failed().
  Status status(std::string_view context) const {
    if (!failed_) return Status::OK();
    return Status::InvalidArgument(std::string(context) +
                                   ": truncated or malformed at byte " +
                                   std::to_string(pos_));
  }

 private:
  template <typename T>
  T ReadLe() {
    if (failed_ || sizeof(T) > remaining()) {
      failed_ = true;
      return T{0};
    }
    T v{0};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace s3

#endif  // S3_COMMON_BINARY_IO_H_
