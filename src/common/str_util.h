// String helpers shared across the library.
#ifndef S3_COMMON_STR_UTIL_H_
#define S3_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace s3 {

// ASCII lowercasing (the library's text pipeline is ASCII-oriented;
// non-ASCII bytes pass through unchanged).
std::string ToLowerAscii(std::string_view in);

// Splits on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view in, std::string_view delims);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Strict non-throwing numeric parsing for untrusted text input (the
// serialization loaders): the whole token must be consumed; garbage,
// signs, overflow and empty input return false instead of throwing
// (std::stoul/stod throw, which turns a corrupt dump into a crash).
bool ParseU32(std::string_view s, uint32_t* out);
bool ParseU64(std::string_view s, uint64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace s3

#endif  // S3_COMMON_STR_UTIL_H_
