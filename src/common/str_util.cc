#include "common/str_util.h"

#include <cctype>

namespace s3 {

std::string ToLowerAscii(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> Split(std::string_view in, std::string_view delims) {
  std::vector<std::string> out;
  std::string current;
  for (char c : in) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace s3
