#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace s3 {

std::string ToLowerAscii(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> Split(std::string_view in, std::string_view delims) {
  std::vector<std::string> out;
  std::string current;
  for (char c : in) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

namespace {

template <typename T>
bool ParseUnsigned(std::string_view s, T* out) {
  if (s.empty()) return false;
  // from_chars would accept nothing here anyway for '+'/'-', but be
  // explicit: ids are plain decimal digits only.
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

bool ParseU32(std::string_view s, uint32_t* out) {
  return ParseUnsigned(s, out);
}

bool ParseU64(std::string_view s, uint64_t* out) {
  return ParseUnsigned(s, out);
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // strtod needs NUL termination; tokens are short, the copy is cheap.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace s3
