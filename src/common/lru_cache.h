// Capacity-bounded LRU map: the building block under the sharded
// proximity cache (server/proximity_cache.h).
//
// Intrusive recency list (std::list, front = most recent) plus an
// unordered_map from key to list iterator, so Get / Put / eviction are
// all O(1) expected. Not thread-safe by design — the cache shards wrap
// one LruCache each behind their own mutex, which keeps this class
// trivially testable and the locking visible at the call site.
#ifndef S3_COMMON_LRU_CACHE_H_
#define S3_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace s3 {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  // Capacity must be at least 1 (a zero-capacity cache would make
  // every Put an immediate self-eviction).
  explicit LruCache(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  // Looks up `key`, marking it most-recently used. Returns nullptr on
  // miss. The pointer is invalidated by the next Put.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  // Peek without touching recency (for tests and stats).
  const V* Peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  // Inserts or overwrites `key`, marking it most-recently used and
  // evicting the least-recently-used entry when over capacity.
  void Put(K key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return;
    }
    items_.emplace_front(std::move(key), std::move(value));
    index_.emplace(items_.front().first, items_.begin());
    if (items_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
      ++evictions_;
    }
  }

  bool Contains(const K& key) const { return index_.count(key) != 0; }

  // Erases every entry satisfying pred(key, value); returns how many.
  // Targeted invalidation (e.g. stale-generation purges) — not counted
  // as capacity evictions.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (pred(it->first, it->second)) {
        index_.erase(it->first);
        it = items_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  size_t evictions() const { return evictions_; }

  void Clear() {
    items_.clear();
    index_.clear();
  }

 private:
  const size_t capacity_;
  std::list<std::pair<K, V>> items_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator,
                     Hash>
      index_;
  size_t evictions_ = 0;
};

}  // namespace s3

#endif  // S3_COMMON_LRU_CACHE_H_
