// Deterministic pseudo-random generation for workload synthesis.
//
// All generators in the library take an explicit seed so that every
// synthetic instance, query workload, and benchmark is exactly
// reproducible run-to-run (a requirement for comparing S3k and TopkS on
// identical inputs).
#ifndef S3_COMMON_RNG_H_
#define S3_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace s3 {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
// Seeded through SplitMix64 so that small consecutive seeds give
// uncorrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Samples from a Zipf(s) distribution over {0, ..., n-1} using a
// precomputed cumulative table (exact inverse-CDF sampling). Rank 0 is
// the most probable outcome. Used to give synthetic social graphs and
// keyword distributions the heavy-tailed shape of the real datasets.
class ZipfSampler {
 public:
  // Precondition: n >= 1, exponent > 0.
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    assert(n >= 1);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
    cdf_.back() = 1.0;  // guard against rounding
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace s3

#endif  // S3_COMMON_RNG_H_
