#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace s3 {

Status MappedRegion::Open(const std::string& path,
                          std::shared_ptr<const MappedRegion>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("mmap open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::InvalidArgument("mmap fstat '" + path +
                                   "': " + std::strerror(err));
  }
  auto region = std::shared_ptr<MappedRegion>(new MappedRegion());
  region->size_ = static_cast<size_t>(st.st_size);
  if (region->size_ > 0) {
    void* base =
        ::mmap(nullptr, region->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::InvalidArgument("mmap '" + path +
                                     "': " + std::strerror(err));
    }
    region->mapped_base_ = base;
    region->mapped_len_ = region->size_;
    region->data_ = static_cast<const uint8_t*>(base);
  }
  // The mapping holds its own file reference; the descriptor is not
  // needed past this point.
  ::close(fd);
  *out = std::move(region);
  return Status::OK();
}

std::shared_ptr<const MappedRegion> MappedRegion::FromBuffer(
    std::string_view bytes, size_t misalign) {
  auto region = std::shared_ptr<MappedRegion>(new MappedRegion());
  region->size_ = bytes.size();
  region->heap_ = std::make_unique<uint8_t[]>(bytes.size() + misalign + 1);
  uint8_t* payload = region->heap_.get() + misalign;
  std::memcpy(payload, bytes.data(), bytes.size());
  region->data_ = payload;
  return region;
}

MappedRegion::~MappedRegion() {
  if (mapped_base_ != nullptr) {
    ::munmap(mapped_base_, mapped_len_);
  }
}

}  // namespace s3
