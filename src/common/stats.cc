#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace s3 {

namespace {

double SortedQuantile(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, q);
}

QuartileSummary Summarize(const std::vector<double>& values) {
  assert(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  QuartileSummary s;
  s.min = sorted.front();
  s.q1 = SortedQuantile(sorted, 0.25);
  s.median = SortedQuantile(sorted, 0.5);
  s.q3 = SortedQuantile(sorted, 0.75);
  s.max = sorted.back();
  s.count = sorted.size();
  return s;
}

double Mean(const std::vector<double>& values) {
  assert(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace s3
