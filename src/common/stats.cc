#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace s3 {

namespace {

// Precondition (internal): sorted is non-empty, q in [0, 1] — both
// established by the public wrappers below.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double ClampQ(double q) {
  // NaN slips through std::clamp (all comparisons false) and would
  // turn into a garbage index downstream; pin it like any other
  // out-of-range caller input.
  if (std::isnan(q)) return 0.0;
  return std::clamp(q, 0.0, 1.0);
}

}  // namespace

double Quantile(std::vector<double> values, double q) {
  // Empty input is caller data, not a programming error: an assert
  // would vanish under NDEBUG and leave sorted[0] reading off the end.
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, ClampQ(q));
}

QuartileSummary Summarize(const std::vector<double>& values) {
  QuartileSummary s;
  if (values.empty()) return s;  // all zeros, count == 0
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.q1 = SortedQuantile(sorted, 0.25);
  s.median = SortedQuantile(sorted, 0.5);
  s.q3 = SortedQuantile(sorted, 0.75);
  s.max = sorted.back();
  s.count = sorted.size();
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace s3
