#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace s3 {

namespace {

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir +
                            " for fsync");
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return Status::Internal("directory fsync failed for " + dir);
  return Status::OK();
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot create " + tmp);
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  const bool flushed = std::fflush(f) == 0;
  const bool synced = ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!wrote || !flushed || !synced) {
    std::remove(tmp.c_str());
    return Status::Internal("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed for " + path);
  }
  return SyncParentDir(path);
}

}  // namespace s3
