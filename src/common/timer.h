// Wall-clock timer for the benchmark harnesses.
#ifndef S3_COMMON_TIMER_H_
#define S3_COMMON_TIMER_H_

#include <chrono>

namespace s3 {

// Measures elapsed wall-clock time since construction or Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since the last Reset() (or construction).
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace s3

#endif  // S3_COMMON_TIMER_H_
