// Minimal persistent thread pool for intra-query parallelism (paper
// §5.2 uses 8 concurrent threads with a custom scheduler).
//
// Spawning std::thread per parallel region costs tens of microseconds
// per worker — more than an S3k iteration's work at bench scale — so
// the searcher keeps one pool for its lifetime.
#ifndef S3_COMMON_THREAD_POOL_H_
#define S3_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace s3 {

class ThreadPool {
 public:
  // Spawns `workers` threads (at least 1).
  explicit ThreadPool(unsigned workers) {
    if (workers < 1) workers = 1;
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
    obs::NotePoolCreated(static_cast<unsigned>(threads_.size()));
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
    obs::NotePoolDestroyed(static_cast<unsigned>(threads_.size()));
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t WorkerCount() const { return threads_.size(); }

  // Caps how many pool workers join the next ParallelFor calls (the
  // calling thread always participates, so the effective concurrency
  // is limit + 1). The serving layer uses this to divide one machine's
  // thread budget among busy service workers without resizing pools:
  // an idle service hands a solo query every worker, a loaded one
  // clamps each query down. Must not be called while a ParallelFor on
  // this pool is in flight (one searcher runs one query at a time).
  void SetHelperLimit(size_t limit) {
    helper_limit_.store(limit, std::memory_order_relaxed);
  }
  size_t HelperLimit() const {
    return helper_limit_.load(std::memory_order_relaxed);
  }

  // Runs fn(i) for every i in [0, n), striped across the workers and
  // the calling thread; returns when all iterations finished.
  //
  // Exception safety: if any iteration throws, the first exception is
  // captured, the remaining iterations are drained without running
  // (every worker still reports done, so the pool stays usable), and
  // the exception is rethrown on the calling thread once the region
  // has quiesced. Iterations already running on other workers finish
  // normally; which later iterations were skipped is unspecified.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    obs::NotePoolRegion(n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &fn;
      task_size_ = n;
      next_.store(0, std::memory_order_relaxed);
      helpers_claimed_.store(0, std::memory_order_relaxed);
      abort_.store(false, std::memory_order_relaxed);
      first_error_ = nullptr;
      pending_workers_ = threads_.size();
      ++generation_;
    }
    cv_.notify_all();
    RunChunk(fn, n);  // the caller participates
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    task_ = nullptr;
    if (first_error_ != nullptr) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void RunChunk(const std::function<void(size_t)>& fn, size_t n) {
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      if (abort_.load(std::memory_order_relaxed)) continue;  // drain
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    while (true) {
      const std::function<void(size_t)>* task = nullptr;
      size_t n = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        task = task_;
        n = task_size_;
      }
      // Respect the helper cap: workers beyond it report done without
      // claiming iterations (the work is finished by the others and
      // the caller).
      if (task != nullptr &&
          helpers_claimed_.fetch_add(1, std::memory_order_relaxed) <
              helper_limit_.load(std::memory_order_relaxed)) {
        RunChunk(*task, n);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* task_ = nullptr;
  size_t task_size_ = 0;
  std::atomic<size_t> next_{0};
  std::atomic<size_t> helpers_claimed_{0};
  std::atomic<size_t> helper_limit_{SIZE_MAX};
  std::atomic<bool> abort_{false};
  std::exception_ptr first_error_ = nullptr;
  size_t pending_workers_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace s3

#endif  // S3_COMMON_THREAD_POOL_H_
