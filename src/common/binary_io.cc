#include "common/binary_io.h"

#include <array>

namespace s3 {

namespace {

// Table-driven CRC-32 (ISO-HDLC), table built once at first use.
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace s3
