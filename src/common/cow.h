// Clone-before-mutate helper for shared_ptr-held copy-on-write state.
//
// The live-update pipeline copies whole stores between snapshot
// generations by copying shared_ptr spines; any mutation must first
// clone a payload that another generation still references. The base
// snapshot always retains its own reference, so use_count() == 1
// proves the calling owner has exclusive access (mutation only ever
// happens single-threaded, at population/apply time).
#ifndef S3_COMMON_COW_H_
#define S3_COMMON_COW_H_

#include <memory>

namespace s3 {

// Returns a mutable reference to *slot, first cloning the payload when
// it is shared (or default-constructing it when absent).
template <typename T>
T& MutableCow(std::shared_ptr<T>& slot) {
  if (slot == nullptr) {
    slot = std::make_shared<T>();
  } else if (slot.use_count() > 1) {
    slot = std::make_shared<T>(*slot);
  }
  return *slot;
}

}  // namespace s3

#endif  // S3_COMMON_COW_H_
