#include "baseline/uit.h"

#include <algorithm>

namespace s3::baseline {

namespace {
const std::vector<uint32_t> kNoUsers;
const std::vector<ItemId> kNoItems;
const std::vector<std::pair<ItemId, KeywordId>> kNoTriples;
}  // namespace

ItemId UitInstance::AddItem() {
  return static_cast<ItemId>(n_items_++);
}

void UitInstance::AddUserLink(uint32_t from, uint32_t to, double weight) {
  // Caller input: must stay guarded in Release builds too (an assert
  // alone would leave links_[from] indexing out of bounds under
  // NDEBUG). Out-of-range endpoints are dropped.
  if (from >= links_.size() || to >= links_.size()) return;
  links_[from].push_back(UserLink{to, static_cast<float>(weight)});
}

void UitInstance::AddTriple(uint32_t user, ItemId item, KeywordId tag) {
  if (user >= links_.size() || item >= n_items_) return;
  auto& tg = taggers_[Key(item, tag)];
  if (std::find(tg.begin(), tg.end(), user) != tg.end()) return;
  tg.push_back(user);
  ++n_triples_;
  auto& items = items_with_tag_[tag];
  if (items.empty() || items.back() != item) {
    if (std::find(items.begin(), items.end(), item) == items.end()) {
      items.push_back(item);
    }
  }
  max_taggers_[tag] =
      std::max<uint32_t>(max_taggers_[tag], static_cast<uint32_t>(tg.size()));
  if (user_triples_.size() < links_.size()) {
    user_triples_.resize(links_.size());
  }
  user_triples_[user].emplace_back(item, tag);
}

void UitInstance::AddItemTerm(ItemId item, KeywordId term, uint32_t count) {
  uint32_t& tf = tf_[Key(item, term)];
  if (tf == 0) items_with_term_[term].push_back(item);
  tf += count;
  max_tf_[term] = std::max(max_tf_[term], tf);
}

const std::vector<uint32_t>& UitInstance::Taggers(ItemId item,
                                                  KeywordId tag) const {
  auto it = taggers_.find(Key(item, tag));
  return it == taggers_.end() ? kNoUsers : it->second;
}

const std::vector<ItemId>& UitInstance::ItemsWithTag(KeywordId tag) const {
  auto it = items_with_tag_.find(tag);
  return it == items_with_tag_.end() ? kNoItems : it->second;
}

uint32_t UitInstance::Tf(ItemId item, KeywordId term) const {
  auto it = tf_.find(Key(item, term));
  return it == tf_.end() ? 0 : it->second;
}

const std::vector<ItemId>& UitInstance::ItemsWithTerm(
    KeywordId term) const {
  auto it = items_with_term_.find(term);
  return it == items_with_term_.end() ? kNoItems : it->second;
}

uint32_t UitInstance::MaxTf(KeywordId term) const {
  auto it = max_tf_.find(term);
  return it == max_tf_.end() ? 0 : it->second;
}

uint32_t UitInstance::MaxTaggers(KeywordId tag) const {
  auto it = max_taggers_.find(tag);
  return it == max_taggers_.end() ? 0 : it->second;
}

const std::vector<std::pair<ItemId, KeywordId>>& UitInstance::TriplesOf(
    uint32_t user) const {
  if (user >= user_triples_.size()) return kNoTriples;
  return user_triples_[user];
}

}  // namespace s3::baseline
