// UIT (user-item-tag) model: the data model of the TopkS baseline
// [Maniu & Cautis, CIKM'13], as described in paper §5.1.
//
// Items are atomic (no structure, no semantics); (user, item, tag)
// triples record endorsements/annotations; weighted user-user links
// form the social network.
#ifndef S3_BASELINE_UIT_H_
#define S3_BASELINE_UIT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace s3::baseline {

using ItemId = uint32_t;
inline constexpr ItemId kInvalidItem = UINT32_MAX;

struct UserLink {
  uint32_t to = 0;
  float weight = 0.0f;
};

// In-memory UIT instance.
class UitInstance {
 public:
  // Population.
  void SetUserCount(uint32_t n) { links_.resize(n); }
  ItemId AddItem();
  void AddUserLink(uint32_t from, uint32_t to, double weight);
  void AddTriple(uint32_t user, ItemId item, KeywordId tag);
  void AddItemTerm(ItemId item, KeywordId term, uint32_t count = 1);

  // Access.
  uint32_t UserCount() const { return static_cast<uint32_t>(links_.size()); }
  size_t ItemCount() const { return n_items_; }
  size_t TripleCount() const { return n_triples_; }
  const std::vector<UserLink>& LinksOf(uint32_t user) const {
    return links_[user];
  }

  // Users who tagged `item` with `tag`.
  const std::vector<uint32_t>& Taggers(ItemId item, KeywordId tag) const;

  // Items tagged with `tag` by anyone.
  const std::vector<ItemId>& ItemsWithTag(KeywordId tag) const;

  // Term frequency of `term` in `item`'s content.
  uint32_t Tf(ItemId item, KeywordId term) const;

  // Items whose content contains `term`.
  const std::vector<ItemId>& ItemsWithTerm(KeywordId term) const;

  // Max tf of `term` over all items (for tf normalization); 0 if absent.
  uint32_t MaxTf(KeywordId term) const;

  // Max number of taggers any item has for `tag` (for score bounds).
  uint32_t MaxTaggers(KeywordId tag) const;

  // Triples of a given user: (item, tag) pairs.
  const std::vector<std::pair<ItemId, KeywordId>>& TriplesOf(
      uint32_t user) const;

 private:
  static uint64_t Key(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  size_t n_items_ = 0;
  size_t n_triples_ = 0;
  std::vector<std::vector<UserLink>> links_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> taggers_;  // (item,tag)
  std::unordered_map<KeywordId, std::vector<ItemId>> items_with_tag_;
  std::unordered_map<uint64_t, uint32_t> tf_;  // (item,term)
  std::unordered_map<KeywordId, std::vector<ItemId>> items_with_term_;
  std::unordered_map<KeywordId, uint32_t> max_tf_;
  std::unordered_map<KeywordId, uint32_t> max_taggers_;
  std::vector<std::vector<std::pair<ItemId, KeywordId>>> user_triples_;
};

}  // namespace s3::baseline

#endif  // S3_BASELINE_UIT_H_
