#include "baseline/topks.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <unordered_map>

#include "common/timer.h"

namespace s3::baseline {

namespace {

struct ItemState {
  double social = 0.0;  // α-side: Σ_k Σ_{settled taggers} σ(u,v)
  double text = 0.0;    // (1-α)-side: Σ_k tf/maxtf, as lists are popped
  // Settled taggers per query-keyword position.
  std::vector<uint32_t> seen_taggers;
  // Whether the item was already popped from keyword qi's tf list.
  std::vector<bool> seen_text;
};

// One per-query-keyword posting list, sorted by decreasing tf, consumed
// by sorted access (the TA/NRA discipline of [Fagin et al.] that TopkS
// instantiates).
struct TextList {
  std::vector<std::pair<double, ItemId>> entries;  // (tf_norm desc, item)
  size_t cursor = 0;

  double Frontier() const {
    return cursor < entries.size() ? entries[cursor].first : 0.0;
  }
};

}  // namespace

TopkSSearcher::TopkSSearcher(const UitInstance& uit, TopkSOptions options)
    : uit_(uit), options_(options) {}

Result<std::vector<TopkSResult>> TopkSSearcher::Search(
    uint32_t seeker, const std::vector<KeywordId>& query,
    TopkSStats* stats) const {
  if (seeker >= uit_.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  if (query.empty()) {
    return Status::InvalidArgument("empty query");
  }
  WallTimer timer;
  TopkSStats local;
  TopkSStats& st = stats ? *stats : local;
  st = TopkSStats{};

  const double alpha = options_.alpha;
  const size_t nq = query.size();

  auto taggers_count = [&](ItemId i, size_t qi) -> uint32_t {
    return static_cast<uint32_t>(uit_.Taggers(i, query[qi]).size());
  };

  std::unordered_map<ItemId, ItemState> items;
  auto touch = [&](ItemId i) -> ItemState& {
    auto [it, inserted] = items.try_emplace(i);
    if (inserted) {
      it->second.seen_taggers.assign(nq, 0);
      it->second.seen_text.assign(nq, false);
      ++st.items_examined;
    }
    return it->second;
  };

  // Sorted tf lists, one per query keyword.
  std::vector<TextList> text_lists(nq);
  for (size_t qi = 0; qi < nq; ++qi) {
    const uint32_t max_tf = uit_.MaxTf(query[qi]);
    if (max_tf == 0) continue;
    for (ItemId i : uit_.ItemsWithTerm(query[qi])) {
      text_lists[qi].entries.emplace_back(
          static_cast<double>(uit_.Tf(i, query[qi])) / max_tf, i);
    }
    std::sort(text_lists[qi].entries.begin(), text_lists[qi].entries.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }

  // Max-product Dijkstra over the user graph (social sorted access).
  std::vector<double> sigma(uit_.UserCount(), 0.0);
  std::vector<bool> settled(uit_.UserCount(), false);
  using QItem = std::pair<double, uint32_t>;
  std::priority_queue<QItem> pq;
  sigma[seeker] = 1.0;
  pq.push({1.0, seeker});

  double sum_max_taggers = 0.0;
  for (size_t qi = 0; qi < nq; ++qi) {
    sum_max_taggers += uit_.MaxTaggers(query[qi]);
  }

  auto lower_of = [&](const ItemState& s) {
    return alpha * s.social + (1.0 - alpha) * s.text;
  };
  // Upper bound: unseen taggers at the social frontier, unseen text at
  // each list's cursor value.
  auto upper_of = [&](ItemId i, const ItemState& s, double social_frontier) {
    double unseen_taggers = 0.0;
    double unseen_text = 0.0;
    for (size_t qi = 0; qi < nq; ++qi) {
      unseen_taggers +=
          static_cast<double>(taggers_count(i, qi) - s.seen_taggers[qi]);
      if (!s.seen_text[qi]) unseen_text += text_lists[qi].Frontier();
    }
    return lower_of(s) + alpha * social_frontier * unseen_taggers +
           (1.0 - alpha) * unseen_text;
  };

  auto social_frontier = [&]() {
    return pq.empty() ? 0.0 : pq.top().first;
  };

  // Bound on items never touched: all taggers unseen, all text at the
  // cursors.
  auto unseen_item_bound = [&]() {
    double text = 0.0;
    for (size_t qi = 0; qi < nq; ++qi) text += text_lists[qi].Frontier();
    return alpha * social_frontier() * sum_max_taggers +
           (1.0 - alpha) * text;
  };

  auto try_stop = [&]() -> std::optional<std::vector<TopkSResult>> {
    std::vector<std::pair<double, ItemId>> by_lower;
    by_lower.reserve(items.size());
    for (const auto& [i, s] : items) by_lower.emplace_back(lower_of(s), i);
    std::sort(by_lower.begin(), by_lower.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t kk = std::min(options_.k, by_lower.size());
    double min_topk = kk > 0 ? by_lower[kk - 1].first : 0.0;
    double best_other = unseen_item_bound();
    const double frontier = social_frontier();
    const bool exhausted =
        frontier == 0.0 && best_other <= options_.epsilon;
    if (!exhausted) {
      // The k-th lower bound must dominate every non-top-k upper bound
      // (set-level stop; internal order is best-effort, as in TopkS).
      for (size_t r = kk; r < by_lower.size(); ++r) {
        const ItemState& s = items.at(by_lower[r].second);
        best_other = std::max(
            best_other, upper_of(by_lower[r].second, s, frontier));
      }
      if (kk < options_.k && best_other > options_.epsilon) {
        return std::nullopt;
      }
      if (best_other > min_topk + options_.epsilon) return std::nullopt;
    }
    std::vector<TopkSResult> out;
    for (size_t r = 0; r < kk; ++r) {
      if (by_lower[r].first <= options_.epsilon) break;
      out.push_back(TopkSResult{by_lower[r].second, by_lower[r].first});
    }
    return out;
  };

  // Main loop: alternate one social pop with one sorted-access pop per
  // text list, NRA style.
  size_t rounds_since_check = 0;
  while (true) {
    bool progressed = false;

    // Social step.
    while (!pq.empty()) {
      auto [sv, v] = pq.top();
      pq.pop();
      if (settled[v] || sv < sigma[v]) continue;
      settled[v] = true;
      ++st.settled_users;
      progressed = true;
      for (const auto& [item, tag] : uit_.TriplesOf(v)) {
        for (size_t qi = 0; qi < nq; ++qi) {
          if (tag == query[qi]) {
            ItemState& s = touch(item);
            s.social += sv;
            s.seen_taggers[qi] += 1;
          }
        }
      }
      for (const UserLink& link : uit_.LinksOf(v)) {
        double np = sv * link.weight;
        if (np > sigma[link.to] && !settled[link.to]) {
          sigma[link.to] = np;
          pq.push({np, link.to});
        }
      }
      break;  // one settled user per round
    }

    // Textual step: advance each list by one entry.
    for (size_t qi = 0; qi < nq; ++qi) {
      TextList& list = text_lists[qi];
      if (list.cursor < list.entries.size()) {
        auto [tf_norm, item] = list.entries[list.cursor++];
        ItemState& s = touch(item);
        if (!s.seen_text[qi]) {
          s.seen_text[qi] = true;
          s.text += tf_norm;
        }
        progressed = true;
      }
    }

    if (++rounds_since_check >= 16 || !progressed ||
        st.settled_users >= options_.max_settled_users) {
      rounds_since_check = 0;
      if (auto result = try_stop()) {
        st.converged = true;
        st.elapsed_seconds = timer.ElapsedSeconds();
        st.examined_items.reserve(items.size());
        for (const auto& [i, _] : items) st.examined_items.push_back(i);
        return *result;
      }
      if (!progressed || st.settled_users >= options_.max_settled_users) {
        break;
      }
    }
  }

  // Budget exhausted: return the best known.
  std::vector<std::pair<double, ItemId>> by_lower;
  for (const auto& [i, s] : items) by_lower.emplace_back(lower_of(s), i);
  std::sort(by_lower.begin(), by_lower.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<TopkSResult> out;
  for (size_t r = 0; r < std::min(options_.k, by_lower.size()); ++r) {
    if (by_lower[r].first <= options_.epsilon) break;
    out.push_back(TopkSResult{by_lower[r].second, by_lower[r].first});
  }
  st.converged = false;
  st.elapsed_seconds = timer.ElapsedSeconds();
  st.examined_items.reserve(items.size());
  for (const auto& [i, _] : items) st.examined_items.push_back(i);
  return out;
}

}  // namespace s3::baseline
