#include "baseline/flatten.h"

namespace s3::baseline {

using social::EdgeLabel;
using social::EntityId;
using social::EntityKind;

ItemId Flattened::ItemOfNode(const core::S3Instance& s3,
                             doc::NodeId n) const {
  social::ComponentId c = s3.components().Of(EntityId::Fragment(n));
  if (c == social::kInvalidComponent) return kInvalidItem;
  return item_of_component[c];
}

Flattened FlattenToUit(const core::S3Instance& s3) {
  Flattened out;
  out.uit.SetUserCount(static_cast<uint32_t>(s3.UserCount()));

  // User links keep their weights.
  for (const social::NetEdge& e : s3.edges().edges()) {
    if (e.label == EdgeLabel::kSocial) {
      out.uit.AddUserLink(e.source.index(), e.target.index(), e.weight);
    }
  }

  // One item per component that contains at least one fragment.
  const auto& comps = s3.components();
  out.item_of_component.assign(comps.ComponentCount(), kInvalidItem);
  for (social::ComponentId c = 0; c < comps.ComponentCount(); ++c) {
    for (uint32_t row : comps.Members(c)) {
      if (s3.layout().Entity(row).kind() == EntityKind::kFragment) {
        out.item_of_component[c] = out.uit.AddItem();
        break;
      }
    }
  }

  // Posters: root fragment -> user via S3:postedBy edges.
  std::vector<uint32_t> poster_of_node(s3.docs().NodeCount(), UINT32_MAX);
  for (const social::NetEdge& e : s3.edges().edges()) {
    if (e.label == EdgeLabel::kPostedBy &&
        e.source.kind() == EntityKind::kFragment) {
      poster_of_node[e.source.index()] = e.target.index();
    }
  }

  // Content keywords -> item terms and (poster, item, keyword) triples.
  const auto& docs = s3.docs();
  for (doc::DocId d = 0; d < docs.DocumentCount(); ++d) {
    doc::NodeId root = docs.RootNode(d);
    ItemId item = out.ItemOfNode(s3, root);
    if (item == kInvalidItem) continue;
    uint32_t poster = poster_of_node[root];
    const doc::Document& document = docs.document(d);
    for (uint32_t local = 0; local < document.NodeCount(); ++local) {
      for (KeywordId k : document.node(local).keywords) {
        out.uit.AddItemTerm(item, k);
        if (poster != UINT32_MAX) out.uit.AddTriple(poster, item, k);
      }
    }
  }

  // Tags -> triples on the subject's item (keyword-less endorsements
  // have no UIT counterpart and are dropped, as in the paper).
  for (const core::Tag& tag : s3.tags()) {
    if (tag.keyword == kInvalidKeyword) continue;
    social::ComponentId c = comps.Of(tag.subject);
    if (c == social::kInvalidComponent) continue;
    ItemId item = out.item_of_component[c];
    if (item == kInvalidItem) continue;
    out.uit.AddTriple(tag.author, item, tag.keyword);
  }

  return out;
}

}  // namespace s3::baseline
