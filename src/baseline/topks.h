// TopkS: top-k social keyword search over the UIT model, after
// Maniu & Cautis [CIKM'13] — the baseline system the paper compares
// against (§5.1).
//
// Item score:  score(i) = Σ_{k∈q} ( α · social(i,k) + (1−α) · text(i,k) )
//   social(i,k) = Σ_{v ∈ Taggers(i,k)} σ(u,v)
//   text(i,k)   = tf(i,k) / maxtf(k)
// with σ(u,v) the proximity of the single best path from the seeker to
// v in the user graph (product of edge weights), explored in decreasing
// σ order (max-product Dijkstra). The search terminates early, NRA
// style: unseen taggers contribute at most the current frontier σ.
#ifndef S3_BASELINE_TOPKS_H_
#define S3_BASELINE_TOPKS_H_

#include <vector>

#include "baseline/uit.h"
#include "common/status.h"

namespace s3::baseline {

struct TopkSOptions {
  // Blend between social and textual score; higher α forces deeper
  // graph exploration (paper §5.3).
  double alpha = 0.5;
  size_t k = 10;
  double epsilon = 1e-12;
  size_t max_settled_users = SIZE_MAX;  // exploration budget
};

struct TopkSResult {
  ItemId item = kInvalidItem;
  double score = 0.0;
};

struct TopkSStats {
  size_t settled_users = 0;    // users popped from the Dijkstra queue
  size_t items_examined = 0;   // distinct items touched
  bool converged = false;
  double elapsed_seconds = 0.0;
  // Every item the search examined (candidate universe for the Fig. 8
  // reachability metrics).
  std::vector<ItemId> examined_items;
};

class TopkSSearcher {
 public:
  TopkSSearcher(const UitInstance& uit, TopkSOptions options);

  Result<std::vector<TopkSResult>> Search(uint32_t seeker,
                                          const std::vector<KeywordId>& query,
                                          TopkSStats* stats = nullptr) const;

 private:
  const UitInstance& uit_;
  TopkSOptions options_;
};

}  // namespace s3::baseline

#endif  // S3_BASELINE_TOPKS_H_
