// Adaptation of an S3 instance into the simpler UIT model (paper §5.1:
// I'1, I'2, I'3): user links keep their weights; every document merged
// with its retweets/replies/reviews — i.e. its component — becomes one
// atomic item; content keywords become (poster, item, keyword) triples;
// tags become (author, item, keyword) triples.
#ifndef S3_BASELINE_FLATTEN_H_
#define S3_BASELINE_FLATTEN_H_

#include <vector>

#include "baseline/uit.h"
#include "core/s3_instance.h"

namespace s3::baseline {

// The flattened instance plus the mapping back from S3 entities.
struct Flattened {
  UitInstance uit;
  // component id -> item (kInvalidItem for components without docs).
  std::vector<ItemId> item_of_component;

  // Item of an S3 document node (via its component).
  ItemId ItemOfNode(const core::S3Instance& s3, doc::NodeId n) const;
};

// Builds the UIT view of a finalized S3 instance.
Flattened FlattenToUit(const core::S3Instance& s3);

}  // namespace s3::baseline

#endif  // S3_BASELINE_FLATTEN_H_
