#include "obs/metrics_http.h"

#ifndef S3_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace s3::obs {

MetricsHttpServer::MetricsHttpServer(MetricRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricRegistry::Default()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(const MetricsHttpOptions& options) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("metrics exporter already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind/listen on " + options.bind_address +
                               ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the poll/accept in Serve(); close happens there.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check running_
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Read the request line; 4 KiB is plenty for "GET /metrics ...".
    char buf[4096];
    const ssize_t n = ::recv(conn, buf, sizeof(buf) - 1, 0);
    std::string body;
    std::string status_line = "HTTP/1.1 200 OK";
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (n <= 0) {
      ::close(conn);
      continue;
    }
    buf[n] = '\0';
    const std::string request(buf);
    // Longest prefix first: /metrics.json shares the /metrics prefix.
    if (request.rfind("GET /metrics.json", 0) == 0) {
      body = registry_->RenderJson();
      content_type = "application/json";
    } else if (request.rfind("GET /metrics", 0) == 0) {
      body = registry_->RenderPrometheus();
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      body = "try GET /metrics\n";
    }
    std::string response = status_line + "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t w =
          ::send(conn, response.data() + sent, response.size() - sent, 0);
      if (w <= 0) break;
      sent += static_cast<size_t>(w);
    }
    ::close(conn);
  }
}

}  // namespace s3::obs

#endif  // S3_OBS_DISABLED
