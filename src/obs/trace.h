// Per-query tracing: span timelines (queue-wait → plan → search →
// merge → reply) with the engine's per-iteration bound-refinement
// records attached, a sampling policy (1-in-N detailed traces, plus
// every completion checked against a slow-query threshold), a ring
// buffer of recent sampled traces, and a slow-query log.
//
// Cost model: the scalar span timings already exist on the serving
// path (QueryResponse carries queue/total seconds), so the always-on
// part of tracing is a handful of comparisons. A QueryTrace object —
// the only thing that allocates — is built ONLY when ShouldSample()
// said yes before the query ran; sampled-out queries allocate nothing.
// Slow-log entries are built at completion from the scalars, so
// "always log if slow" needs no upfront allocation either.
//
// The plain-data records (IterationTraceRecord, QueryTrace,
// SlowQueryEntry) are defined unconditionally — core::SearchStats
// embeds the iteration vector — while the collector machinery is
// stubbed out under -DS3_OBS=OFF.
#ifndef S3_OBS_TRACE_H_
#define S3_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#ifndef S3_OBS_DISABLED
#include <atomic>
#include <deque>
#include <mutex>
#endif

namespace s3::obs {

// One engine iteration of one lane, recorded by
// S3kSearcher::SearchBatchWithPlan when the lane's trace flag is set.
// Mirrors the quantities the paper's bound-refinement loop actually
// steers by: how wide the propagation frontier is, how far apart the
// k-th lower bound and the residual upper bound still are, and which
// execution strategy the adaptive kernels chose.
struct IterationTraceRecord {
  uint32_t iteration = 0;        // 1-based engine iteration
  uint32_t frontier_size = 0;    // union support of the batch frontier
  uint32_t alive_candidates = 0; // this lane's undecided candidates
  double kth_lower = 0.0;        // k-th best certified lower bound
  double remaining_upper = 0.0;  // best upper bound among undecided
  bool used_pull = false;        // propagation ran in pull (dense) mode
  bool fanout = false;           // component fan-out active this pass
};

// One timed phase of a query. Spans form a tree by depth: depth-0
// spans partition the query's wall time, deeper spans nest inside the
// preceding shallower one (enough structure for a text renderer
// without parent pointers).
struct TraceSpan {
  std::string name;
  double start_seconds = 0.0;     // offset from query admission
  double duration_seconds = 0.0;
  int depth = 0;
};

// A sampled query's full story.
struct QueryTrace {
  uint64_t id = 0;            // service-assigned, monotonic
  std::string label;          // seeker/keyword summary for humans
  uint64_t generation = 0;    // snapshot generation served
  bool cache_hit = false;
  bool batched = false;
  uint32_t batch_width = 1;
  bool deadline_exceeded = false;
  double certified_epsilon = 0.0;
  double total_seconds = 0.0;
  std::vector<TraceSpan> spans;
  std::vector<IterationTraceRecord> iterations;
};

struct SlowQueryEntry {
  uint64_t id = 0;
  std::string label;
  uint64_t generation = 0;
  bool cache_hit = false;
  bool batched = false;
  bool deadline_exceeded = false;
  double certified_epsilon = 0.0;
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  double total_seconds = 0.0;
};

struct TraceOptions {
  // Detailed (allocation-bearing) traces are taken for 1 query in
  // `sample_every`; 0 disables sampling entirely, 1 traces everything.
  uint32_t sample_every = 64;
  // Completions at or above this land in the slow-query log
  // regardless of sampling; <= 0 disables the slow log.
  double slow_query_seconds = 0.250;
  size_t ring_capacity = 64;      // recent sampled traces retained
  size_t slow_log_capacity = 128; // recent slow queries retained
};

// Human-oriented renderers (shared by s3_shell :trace and tests).
std::string FormatTrace(const QueryTrace& trace);
std::string FormatSlowEntry(const SlowQueryEntry& entry);

#ifndef S3_OBS_DISABLED

// Owns the sampling decision, the ring of recent traces, and the
// slow-query log. One collector per QueryService; thread-safe.
class TraceCollector {
 public:
  explicit TraceCollector(TraceOptions options = {});

  const TraceOptions& options() const { return options_; }

  // Pre-execution sampling decision. Cheap (one relaxed fetch_add);
  // callers build a QueryTrace only on true.
  bool ShouldSample();

  // Stores a completed sampled trace in the ring.
  void Record(QueryTrace&& trace);

  // Always-on completion hook: checks the slow threshold and, if
  // crossed, materializes `entry()` into the slow log. The entry is
  // built lazily by the caller-supplied scalars so the fast path pays
  // only the comparison.
  template <typename EntryFn>
  void NoteCompletion(double total_seconds, EntryFn&& entry) {
    if (options_.slow_query_seconds <= 0.0 ||
        total_seconds < options_.slow_query_seconds) {
      return;
    }
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    AppendSlow(entry());
  }

  std::vector<QueryTrace> RecentTraces() const;
  std::vector<SlowQueryEntry> SlowLog() const;
  uint64_t sampled_total() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  uint64_t slow_total() const {
    return slow_queries_.load(std::memory_order_relaxed);
  }

 private:
  void AppendSlow(SlowQueryEntry entry);

  const TraceOptions options_;
  std::atomic<uint64_t> ticket_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> slow_queries_{0};
  mutable std::mutex mu_;
  std::deque<QueryTrace> ring_;
  std::deque<SlowQueryEntry> slow_log_;
};

#else  // S3_OBS_DISABLED

class TraceCollector {
 public:
  explicit TraceCollector(TraceOptions options = {}) : options_(options) {}
  const TraceOptions& options() const { return options_; }
  bool ShouldSample() { return false; }
  void Record(QueryTrace&&) {}
  template <typename EntryFn>
  void NoteCompletion(double, EntryFn&&) {}
  std::vector<QueryTrace> RecentTraces() const { return {}; }
  std::vector<SlowQueryEntry> SlowLog() const { return {}; }
  uint64_t sampled_total() const { return 0; }
  uint64_t slow_total() const { return 0; }

 private:
  const TraceOptions options_;
};

#endif  // S3_OBS_DISABLED

}  // namespace s3::obs

#endif  // S3_OBS_TRACE_H_
