#include "obs/trace.h"

#include <cstdio>

namespace s3::obs {

namespace {

std::string Seconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  }
  return buf;
}

}  // namespace

std::string FormatTrace(const QueryTrace& trace) {
  std::string out;
  char head[256];
  std::snprintf(head, sizeof(head),
                "trace #%llu [%s] gen=%llu total=%s%s%s%s",
                static_cast<unsigned long long>(trace.id),
                trace.label.c_str(),
                static_cast<unsigned long long>(trace.generation),
                Seconds(trace.total_seconds).c_str(),
                trace.cache_hit ? " cache-hit" : "",
                trace.batched ? " batched" : "",
                trace.deadline_exceeded ? " DEADLINE" : "");
  out += head;
  if (trace.batched) {
    out += " width=" + std::to_string(trace.batch_width);
  }
  if (trace.certified_epsilon > 0.0) {
    char eps[48];
    std::snprintf(eps, sizeof(eps), " eps=%.2e", trace.certified_epsilon);
    out += eps;
  }
  out += "\n";
  for (const TraceSpan& span : trace.spans) {
    out.append(2 + static_cast<size_t>(span.depth) * 2, ' ');
    out += span.name + " +" + Seconds(span.start_seconds) + " (" +
           Seconds(span.duration_seconds) + ")\n";
  }
  for (const IterationTraceRecord& it : trace.iterations) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "    iter %2u: frontier=%u alive=%u kth_lower=%.6g "
                  "remaining_upper=%.6g mode=%s%s\n",
                  it.iteration, it.frontier_size, it.alive_candidates,
                  it.kth_lower, it.remaining_upper,
                  it.used_pull ? "pull" : "push",
                  it.fanout ? " fanout" : "");
    out += line;
  }
  return out;
}

std::string FormatSlowEntry(const SlowQueryEntry& entry) {
  char line[320];
  std::snprintf(line, sizeof(line),
                "slow #%llu [%s] gen=%llu queue=%s exec=%s total=%s%s%s%s",
                static_cast<unsigned long long>(entry.id),
                entry.label.c_str(),
                static_cast<unsigned long long>(entry.generation),
                Seconds(entry.queue_seconds).c_str(),
                Seconds(entry.exec_seconds).c_str(),
                Seconds(entry.total_seconds).c_str(),
                entry.cache_hit ? " cache-hit" : "",
                entry.batched ? " batched" : "",
                entry.deadline_exceeded ? " DEADLINE" : "");
  std::string out = line;
  if (entry.certified_epsilon > 0.0) {
    char eps[48];
    std::snprintf(eps, sizeof(eps), " eps=%.2e", entry.certified_epsilon);
    out += eps;
  }
  return out;
}

#ifndef S3_OBS_DISABLED

TraceCollector::TraceCollector(TraceOptions options) : options_(options) {}

bool TraceCollector::ShouldSample() {
  if (options_.sample_every == 0) return false;
  const uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);
  if (ticket % options_.sample_every != 0) return false;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TraceCollector::Record(QueryTrace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

void TraceCollector::AppendSlow(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > options_.slow_log_capacity) slow_log_.pop_front();
}

std::vector<QueryTrace> TraceCollector::RecentTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<SlowQueryEntry> TraceCollector::SlowLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

#endif  // S3_OBS_DISABLED

}  // namespace s3::obs
