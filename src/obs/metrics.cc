#include "obs/metrics.h"

#ifndef S3_OBS_DISABLED

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace s3::obs {

namespace {

// Canonical label order: sort by key so {a=1,b=2} and {b=2,a=1} are
// the same instance.
Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

// Renders doubles the way Prometheus clients do: integers without a
// trailing ".0", everything else with enough digits to round-trip.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  out += "}";
  return out;
}

// Labels plus one extra pair (for histogram le="...") — the extra pair
// goes last, matching common client-library output.
std::string RenderLabelsWith(const Labels& labels, const std::string& key,
                             const std::string& value) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\",";
  }
  out += key;
  out += "=\"";
  out += EscapeLabelValue(value);
  out += "\"}";
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// ---- HistogramSnapshot ---------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lower = (i == 0) ? 0.0 : uppers[i - 1];
      // The overflow bucket has no finite upper bound; report its
      // lower edge (the best honest estimate without a max tracker).
      const double upper = (i < uppers.size()) ? uppers[i] : lower;
      if (upper <= lower) return lower;
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + frac * (upper - lower);
    }
    seen += in_bucket;
  }
  return uppers.empty() ? 0.0 : uppers.back();
}

// ---- Histogram -----------------------------------------------------------

Histogram::Histogram(BucketSpec spec) : spec_(spec) {
  uppers_.reserve(spec_.count);
  double bound = spec_.base;
  for (uint32_t i = 0; i < spec_.count; ++i) {
    uppers_.push_back(bound);
    bound *= spec_.growth;
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(spec_.count + 1);
}

void Histogram::Observe(double v) {
  // Bucket pick: log-spaced bounds make a binary search over ~28
  // entries. lower_bound keeps the bounds upper-INCLUSIVE — an
  // observation equal to a bound belongs to that bound's bucket, which
  // is what Prometheus `le` cumulative semantics require.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(uppers_.begin(), uppers_.end(), v) - uppers_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.uppers = uppers_;
  snap.counts.resize(spec_.count + 1);
  for (uint32_t i = 0; i <= spec_.count; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

// ---- MetricRegistry ------------------------------------------------------

MetricRegistry& MetricRegistry::Default() {
  // Leaked singleton: callbacks registered against the default
  // registry by static-lifetime components must not outlive it.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Family* MetricRegistry::GetFamilyLocked(
    const std::string& name, const std::string& help, MetricKind kind) {
  auto it = std::lower_bound(
      families_.begin(), families_.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  if (it != families_.end() && it->first == name) {
    // First non-empty help wins; kind must agree (a name can't be both
    // a counter and a histogram — keep the original, ignore the rest).
    if (it->second->help.empty()) it->second->help = help;
    return it->second.get();
  }
  auto family = std::make_unique<Family>();
  family->help = help;
  family->kind = kind;
  Family* out = family.get();
  families_.insert(it, {name, std::move(family)});
  return out;
}

MetricRegistry::Instance* MetricRegistry::FindInstanceLocked(
    Family& family, const Labels& labels) {
  for (auto& inst : family.instances) {
    if (inst->labels == labels && inst->callback == nullptr) {
      return inst.get();
    }
  }
  return nullptr;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help, Labels labels) {
  labels = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, MetricKind::kCounter);
  if (Instance* found = FindInstanceLocked(*family, labels)) {
    if (found->counter == nullptr) found->counter = std::make_unique<Counter>();
    return found->counter.get();
  }
  auto inst = std::make_unique<Instance>();
  inst->labels = labels;
  inst->counter = std::make_unique<Counter>();
  Counter* out = inst->counter.get();
  family->instances.push_back(std::move(inst));
  return out;
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help, Labels labels) {
  labels = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, MetricKind::kGauge);
  if (Instance* found = FindInstanceLocked(*family, labels)) {
    if (found->gauge == nullptr) found->gauge = std::make_unique<Gauge>();
    return found->gauge.get();
  }
  auto inst = std::make_unique<Instance>();
  inst->labels = labels;
  inst->gauge = std::make_unique<Gauge>();
  Gauge* out = inst->gauge.get();
  family->instances.push_back(std::move(inst));
  return out;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help, Labels labels,
                                        BucketSpec spec) {
  labels = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, MetricKind::kHistogram);
  if (Instance* found = FindInstanceLocked(*family, labels)) {
    if (found->histogram == nullptr) {
      found->histogram = std::make_unique<Histogram>(spec);
    }
    return found->histogram.get();
  }
  auto inst = std::make_unique<Instance>();
  inst->labels = labels;
  inst->histogram = std::make_unique<Histogram>(spec);
  Histogram* out = inst->histogram.get();
  family->instances.push_back(std::move(inst));
  return out;
}

void MetricRegistry::DeclareFamily(const std::string& name,
                                   const std::string& help, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  GetFamilyLocked(name, help, kind);
}

uint64_t MetricRegistry::AddCallback(const std::string& name,
                                     const std::string& help, MetricKind kind,
                                     Labels labels,
                                     std::function<double()> fn) {
  labels = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, kind);
  auto inst = std::make_unique<Instance>();
  inst->labels = std::move(labels);
  inst->callback = std::move(fn);
  inst->callback_id = next_callback_id_++;
  const uint64_t id = inst->callback_id;
  family->instances.push_back(std::move(inst));
  return id;
}

void MetricRegistry::Unregister(uint64_t callback_id) {
  if (callback_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    auto& insts = family->instances;
    insts.erase(std::remove_if(insts.begin(), insts.end(),
                               [callback_id](const auto& inst) {
                                 return inst->callback_id == callback_id;
                               }),
                insts.end());
  }
}

std::vector<MetricRegistry::Sample> MetricRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& [name, family] : families_) {
    for (const auto& inst : family->instances) {
      Sample sample;
      sample.name = name;
      sample.labels = inst->labels;
      sample.kind = family->kind;
      if (inst->callback) {
        sample.value = inst->callback();
      } else if (inst->counter) {
        sample.value = static_cast<double>(inst->counter->Value());
      } else if (inst->gauge) {
        sample.value = inst->gauge->Value();
      } else if (inst->histogram) {
        sample.histogram = inst->histogram->TakeSnapshot();
      }
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family->help + "\n";
    out += "# TYPE " + name + " " + std::string(KindName(family->kind)) + "\n";
    for (const auto& inst : family->instances) {
      if (family->kind == MetricKind::kHistogram && inst->histogram) {
        const HistogramSnapshot snap = inst->histogram->TakeSnapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          const std::string le = (i < snap.uppers.size())
                                     ? FormatValue(snap.uppers[i])
                                     : std::string("+Inf");
          out += name + "_bucket" + RenderLabelsWith(inst->labels, "le", le) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_sum" + RenderLabels(inst->labels) + " " +
               FormatValue(snap.sum) + "\n";
        out += name + "_count" + RenderLabels(inst->labels) + " " +
               std::to_string(snap.count) + "\n";
        continue;
      }
      double value = 0.0;
      if (inst->callback) {
        value = inst->callback();
      } else if (inst->counter) {
        value = static_cast<double>(inst->counter->Value());
      } else if (inst->gauge) {
        value = inst->gauge->Value();
      }
      out += name + RenderLabels(inst->labels) + " " + FormatValue(value) +
             "\n";
    }
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ",\n";
    first_family = false;
    out += "  \"" + EscapeJson(name) + "\": {\"type\": \"" +
           KindName(family->kind) + "\", \"help\": \"" +
           EscapeJson(family->help) + "\", \"series\": [";
    bool first_inst = true;
    for (const auto& inst : family->instances) {
      if (!first_inst) out += ", ";
      first_inst = false;
      out += "{\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : inst->labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += "\"" + EscapeJson(k) + "\": \"" + EscapeJson(v) + "\"";
      }
      out += "}";
      if (family->kind == MetricKind::kHistogram && inst->histogram) {
        const HistogramSnapshot snap = inst->histogram->TakeSnapshot();
        out += ", \"count\": " + std::to_string(snap.count) +
               ", \"sum\": " + FormatValue(snap.sum) +
               ", \"p50\": " + FormatValue(snap.p50()) +
               ", \"p90\": " + FormatValue(snap.p90()) +
               ", \"p99\": " + FormatValue(snap.p99());
      } else {
        double value = 0.0;
        if (inst->callback) {
          value = inst->callback();
        } else if (inst->counter) {
          value = static_cast<double>(inst->counter->Value());
        } else if (inst->gauge) {
          value = inst->gauge->Value();
        }
        out += ", \"value\": " + FormatValue(value);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n}\n";
  return out;
}

// ---- process-wide thread-pool accounting ---------------------------------

namespace {
std::atomic<int64_t> g_pools{0};
std::atomic<int64_t> g_pool_threads{0};
std::atomic<uint64_t> g_pool_regions{0};
}  // namespace

void NotePoolCreated(unsigned threads) {
  g_pools.fetch_add(1, std::memory_order_relaxed);
  g_pool_threads.fetch_add(threads, std::memory_order_relaxed);
}

void NotePoolDestroyed(unsigned threads) {
  g_pools.fetch_sub(1, std::memory_order_relaxed);
  g_pool_threads.fetch_sub(threads, std::memory_order_relaxed);
}

void NotePoolRegion(size_t) {
  g_pool_regions.fetch_add(1, std::memory_order_relaxed);
}

void RegisterProcessMetrics(MetricRegistry* registry) {
  if (registry == nullptr) registry = &MetricRegistry::Default();
  // Callbacks over process-wide statics never dangle, so no
  // CallbackSet; guard against double registration on the default
  // registry (multiple services may each call this).
  static std::mutex mu;
  static std::vector<MetricRegistry*> done;
  std::lock_guard<std::mutex> lock(mu);
  if (std::find(done.begin(), done.end(), registry) != done.end()) return;
  done.push_back(registry);
  registry->AddCallback(
      "s3_threadpool_pools", "Thread pools currently alive in the process.",
      MetricKind::kGauge, {}, [] {
        return static_cast<double>(g_pools.load(std::memory_order_relaxed));
      });
  registry->AddCallback(
      "s3_threadpool_threads",
      "Worker threads owned by live thread pools (helpers included).",
      MetricKind::kGauge, {}, [] {
        return static_cast<double>(
            g_pool_threads.load(std::memory_order_relaxed));
      });
  registry->AddCallback(
      "s3_threadpool_regions_total",
      "ParallelFor regions executed across all pools since process start.",
      MetricKind::kCounter, {}, [] {
        return static_cast<double>(
            g_pool_regions.load(std::memory_order_relaxed));
      });
}

}  // namespace s3::obs

#endif  // S3_OBS_DISABLED
