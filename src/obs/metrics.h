// Process-wide metric registry: named, labeled Counter / Gauge /
// Histogram families with two renderers (Prometheus text exposition
// and JSON) — the one source of operational truth the serving layers
// (QueryService, SnapshotManager, ShardRouter, ProximityCache,
// ThreadPool) publish into.
//
// Design constraints, in order:
//   * Hot-path writes must be effectively free. Counter is sharded
//     across cache lines (one relaxed fetch_add on a thread-striped
//     slot — no line ping-pong between service workers); Histogram is
//     a fixed array of log-spaced atomic buckets (one relaxed
//     increment per observation, no locks, no allocation).
//   * Readers never stop writers. Value()/TakeSnapshot()/Render* sum
//     relaxed atomics while the hot path keeps mutating them; totals
//     are monotonic and each read is a valid recent value, which is
//     all a scrape needs.
//   * Components with pre-existing counters (QueryService's admission
//     atomics, ProximityCacheStats, SnapshotManager bookkeeping) stay
//     the single source of truth: they register *callback* metrics the
//     registry evaluates at collection time, so nothing is counted
//     twice and nothing new runs on the hot path. CallbackSet is the
//     RAII holder that unregisters them when the component dies.
//
// -DS3_OBS=OFF compiles the whole subsystem out: this header then
// provides the same API as inline no-ops (renderers return ""), so
// instrumented call sites build unchanged and cost nothing.
#ifndef S3_OBS_METRICS_H_
#define S3_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#ifndef S3_OBS_DISABLED
#include <atomic>
#include <memory>
#include <mutex>
#endif

namespace s3::obs {

// Label set of one metric instance: (key, value) pairs. Keys should be
// fixed per family; values select the instance (e.g. {"service",
// "shard0"}). Order-insensitive — the registry canonicalizes.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

// Log-spaced histogram bucket layout: bucket i spans
// (base * growth^(i-1), base * growth^i]; an underflow observation
// lands in bucket 0, anything above the last bound in the overflow
// bucket. The default layout covers 1µs .. ~134s at ×2 resolution —
// query/WAL/checkpoint latencies all fit.
struct BucketSpec {
  double base = 1e-6;
  double growth = 2.0;
  uint32_t count = 28;  // bounded buckets; +1 overflow is implicit

  static BucketSpec Latency() { return BucketSpec{}; }
  // Small-integer quantities (batch widths, fan-out counts): 1, 2, 4,
  // ... 128.
  static BucketSpec SmallCounts() { return BucketSpec{1.0, 2.0, 8}; }
};

#ifndef S3_OBS_DISABLED

inline constexpr bool kEnabled = true;

// Monotonic counter, sharded across cache lines. Inc() is one relaxed
// fetch_add on the calling thread's stripe; Value() sums the stripes.
class Counter {
 public:
  static constexpr size_t kStripes = 8;

  void Inc(uint64_t n = 1) {
    stripes_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  static size_t StripeIndex() {
    // Round-robin stripe assignment per thread: stable for the
    // thread's lifetime, spreads workers evenly regardless of how the
    // runtime hashes thread ids.
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return slot;
  }
  Stripe stripes_[kStripes];
};

// Instantaneous value. Set/Add are single relaxed atomic ops
// (atomic<double> — lock-free on the targets this builds for).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::vector<uint64_t> counts;  // per bucket, overflow last
  std::vector<double> uppers;    // inclusive upper bound per bucket
  uint64_t count = 0;
  double sum = 0.0;

  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // containing bucket. Zero-sample snapshots return 0.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }
};

// Fixed log-bucketed histogram. Observe() is one relaxed bucket
// increment plus one relaxed sum add; no locks, no allocation.
class Histogram {
 public:
  explicit Histogram(BucketSpec spec = BucketSpec::Latency());

  void Observe(double v);
  HistogramSnapshot TakeSnapshot() const;
  const BucketSpec& spec() const { return spec_; }

 private:
  BucketSpec spec_;
  std::vector<double> uppers_;  // spec_.count bounds (ascending)
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // count + overflow
  std::atomic<double> sum_{0.0};
};

// One process-wide (or per-test) registry of metric families.
// GetCounter/GetGauge/GetHistogram return a stable pointer owned by
// the registry — callers cache it and write lock-free forever after.
// Looking the same (name, labels) up twice returns the same instance,
// so restarted components keep accumulating into their series.
//
// AddCallback registers a collection-time metric: the function is
// evaluated by Collect()/Render* under the registry mutex. Callbacks
// read component-owned state, so they MUST be unregistered before that
// state dies — hold them in a CallbackSet.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide default registry (what `registry == nullptr`
  // means throughout the serving options structs).
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {},
                          BucketSpec spec = BucketSpec::Latency());

  // Declares a family (HELP/TYPE) without creating an instance, so a
  // dump covers the catalog even before traffic creates the series.
  void DeclareFamily(const std::string& name, const std::string& help,
                     MetricKind kind);

  // Collection-time metric backed by component state; `kind` must be
  // kCounter or kGauge. Returns an id for Unregister.
  uint64_t AddCallback(const std::string& name, const std::string& help,
                       MetricKind kind, Labels labels,
                       std::function<double()> fn);
  void Unregister(uint64_t callback_id);

  // One collected sample (callbacks evaluated; histograms summarized).
  struct Sample {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;                 // counter/gauge
    HistogramSnapshot histogram;        // kHistogram only
  };
  std::vector<Sample> Collect() const;

  // Prometheus text exposition format (text/plain; version=0.0.4):
  // families sorted by name, one # HELP / # TYPE per family,
  // histograms as cumulative _bucket{le=...} + _sum + _count.
  std::string RenderPrometheus() const;
  // The same collection as a JSON object keyed by family name —
  // hand-written rendering, no JSON dependency.
  std::string RenderJson() const;

 private:
  struct Instance {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
    uint64_t callback_id = 0;
  };
  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<std::unique_ptr<Instance>> instances;
  };

  Family* GetFamilyLocked(const std::string& name, const std::string& help,
                          MetricKind kind);
  Instance* FindInstanceLocked(Family& family, const Labels& labels);

  mutable std::mutex mu_;
  // Sorted map semantics via vector-of-pairs would do; std::map keeps
  // Render output deterministic with no extra sort.
  std::vector<std::pair<std::string, std::unique_ptr<Family>>> families_;
  uint64_t next_callback_id_ = 1;
};

// RAII holder for callback registrations: a component registers its
// collection-time metrics through one CallbackSet member and they are
// unregistered (before the state they read dies) by its destructor.
class CallbackSet {
 public:
  CallbackSet() = default;
  ~CallbackSet() { Clear(); }
  CallbackSet(const CallbackSet&) = delete;
  CallbackSet& operator=(const CallbackSet&) = delete;

  void Attach(MetricRegistry* registry) { registry_ = registry; }
  void Add(const std::string& name, const std::string& help,
           MetricKind kind, Labels labels, std::function<double()> fn) {
    if (registry_ == nullptr) return;
    ids_.push_back(registry_->AddCallback(name, help, kind,
                                          std::move(labels), std::move(fn)));
  }
  void Clear() {
    if (registry_ != nullptr) {
      for (uint64_t id : ids_) registry_->Unregister(id);
    }
    ids_.clear();
  }
  MetricRegistry* registry() const { return registry_; }

 private:
  MetricRegistry* registry_ = nullptr;
  std::vector<uint64_t> ids_;
};

// ---- process-wide thread-pool accounting ---------------------------------
// common/thread_pool.h calls these (header-only, so the hooks must be
// free functions); RegisterProcessMetrics exposes the totals.
void NotePoolCreated(unsigned threads);
void NotePoolDestroyed(unsigned threads);
void NotePoolRegion(size_t items);

// Registers the process-level families (thread-pool totals) on
// `registry` (nullptr → Default()). Idempotent per registry for the
// Default case; callers with private registries call it once.
void RegisterProcessMetrics(MetricRegistry* registry = nullptr);

#else  // S3_OBS_DISABLED -----------------------------------------------------

inline constexpr bool kEnabled = false;

class Counter {
 public:
  void Inc(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double Value() const { return 0.0; }
};

struct HistogramSnapshot {
  std::vector<uint64_t> counts;
  std::vector<double> uppers;
  uint64_t count = 0;
  double sum = 0.0;
  double Quantile(double) const { return 0.0; }
  double p50() const { return 0.0; }
  double p90() const { return 0.0; }
  double p99() const { return 0.0; }
};

class Histogram {
 public:
  explicit Histogram(BucketSpec spec = BucketSpec::Latency()) : spec_(spec) {}
  void Observe(double) {}
  HistogramSnapshot TakeSnapshot() const { return {}; }
  const BucketSpec& spec() const { return spec_; }

 private:
  BucketSpec spec_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Default() {
    static MetricRegistry registry;
    return registry;
  }

  Counter* GetCounter(const std::string&, const std::string&, Labels = {}) {
    return &counter_;
  }
  Gauge* GetGauge(const std::string&, const std::string&, Labels = {}) {
    return &gauge_;
  }
  Histogram* GetHistogram(const std::string&, const std::string&,
                          Labels = {}, BucketSpec = BucketSpec::Latency()) {
    return &histogram_;
  }
  void DeclareFamily(const std::string&, const std::string&, MetricKind) {}
  uint64_t AddCallback(const std::string&, const std::string&, MetricKind,
                       Labels, std::function<double()>) {
    return 0;
  }
  void Unregister(uint64_t) {}

  struct Sample {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;
    HistogramSnapshot histogram;
  };
  std::vector<Sample> Collect() const { return {}; }
  std::string RenderPrometheus() const { return std::string(); }
  std::string RenderJson() const { return std::string(); }

 private:
  // Shared no-op sinks: writes are discarded, reads are zero.
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class CallbackSet {
 public:
  void Attach(MetricRegistry* registry) { registry_ = registry; }
  void Add(const std::string&, const std::string&, MetricKind, Labels,
           std::function<double()>) {}
  void Clear() {}
  MetricRegistry* registry() const { return registry_; }

 private:
  MetricRegistry* registry_ = nullptr;
};

inline void NotePoolCreated(unsigned) {}
inline void NotePoolDestroyed(unsigned) {}
inline void NotePoolRegion(size_t) {}
inline void RegisterProcessMetrics(MetricRegistry* = nullptr) {}

#endif  // S3_OBS_DISABLED

}  // namespace s3::obs

#endif  // S3_OBS_METRICS_H_
