// Minimal single-threaded HTTP exporter for `GET /metrics`: one
// background thread, one connection at a time, Prometheus text
// exposition from a MetricRegistry. Deliberately tiny — it exists so
// an operator (or a scraper) can read the registry without linking a
// web stack; it is NOT a general HTTP server and is off by default
// everywhere (nothing starts one unless explicitly asked).
//
// Under -DS3_OBS=OFF, Start() reports FailedPrecondition and the rest
// are no-ops.
#ifndef S3_OBS_METRICS_HTTP_H_
#define S3_OBS_METRICS_HTTP_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

#ifndef S3_OBS_DISABLED
#include <atomic>
#include <thread>
#endif

namespace s3::obs {

struct MetricsHttpOptions {
  // Loopback by default: this is an operator port, not a public one.
  std::string bind_address = "127.0.0.1";
  // 0 asks the kernel for an ephemeral port; read it back via port().
  uint16_t port = 0;
};

#ifndef S3_OBS_DISABLED

class MetricsHttpServer {
 public:
  // Serves `registry` (nullptr → MetricRegistry::Default()).
  explicit MetricsHttpServer(MetricRegistry* registry = nullptr);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds, listens, and starts the accept thread. Returns
  // UnavailableError if the socket can't be bound (sandboxes without
  // network namespaces) — callers degrade gracefully.
  Status Start(const MetricsHttpOptions& options = {});
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

 private:
  void Serve();

  MetricRegistry* registry_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

#else  // S3_OBS_DISABLED

class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(MetricRegistry* = nullptr) {}
  Status Start(const MetricsHttpOptions& = {}) {
    return Status::FailedPrecondition(
        "metrics HTTP exporter compiled out (S3_OBS=OFF)");
  }
  void Stop() {}
  bool running() const { return false; }
  uint16_t port() const { return 0; }
};

#endif  // S3_OBS_DISABLED

}  // namespace s3::obs

#endif  // S3_OBS_METRICS_HTTP_H_
