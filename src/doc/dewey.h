// Dewey-style node identifiers (ORDPATH-like, paper §2.3 "Fragment
// position").
//
// pos(d, f) is the list of child indices leading from document (or
// fragment) d's root down to fragment f; its length is the structural
// distance used by the concrete score (η^|pos(d,f)|, Definition 3.5).
#ifndef S3_DOC_DEWEY_H_
#define S3_DOC_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace s3::doc {

// Path of 1-based child positions from the document root; the root
// itself has an empty path.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> steps) : steps_(std::move(steps)) {}

  // Child of this node at 1-based position `pos`.
  DeweyId Child(uint32_t pos) const;

  // True if this id is an ancestor-or-self of `other` (prefix test).
  bool IsAncestorOrSelf(const DeweyId& other) const;

  // True if the two ids are comparable (one is an ancestor-or-self of
  // the other), i.e. the nodes are vertical neighbors or equal.
  bool Comparable(const DeweyId& other) const;

  // pos(this, other): the suffix of `other` below this id.
  // Precondition: IsAncestorOrSelf(other).
  std::vector<uint32_t> RelativePath(const DeweyId& other) const;

  size_t depth() const { return steps_.size(); }
  const std::vector<uint32_t>& steps() const { return steps_; }

  // Document-order comparison ("1.2" < "1.2.1" < "1.3").
  bool operator<(const DeweyId& other) const { return steps_ < other.steps_; }
  bool operator==(const DeweyId& other) const {
    return steps_ == other.steps_;
  }

  // "" for the root, else dot-separated, e.g. "3.2".
  std::string ToString() const;

 private:
  std::vector<uint32_t> steps_;
};

}  // namespace s3::doc

#endif  // S3_DOC_DEWEY_H_
