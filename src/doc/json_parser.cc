#include "doc/json_parser.h"

#include <cctype>
#include <string>

namespace s3::doc {

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view in, const TextInterner& intern)
      : in_(in), intern_(intern) {}

  Result<Document> Parse(std::string root_name) {
    Document doc(std::move(root_name));
    Status s = ParseValue(doc, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != in_.size()) {
      return Status::InvalidArgument("trailing JSON content");
    }
    return doc;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Document& doc, uint32_t local) {
    SkipWhitespace();
    if (pos_ >= in_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    char c = in_[pos_];
    if (c == '{') return ParseObject(doc, local);
    if (c == '[') return ParseArray(doc, local);
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      doc.AddKeywords(local, intern_(*s));
      return Status::OK();
    }
    // Number / true / false / null: take the literal token.
    std::string token;
    while (pos_ < in_.size()) {
      char t = in_[pos_];
      if (std::isalnum(static_cast<unsigned char>(t)) || t == '-' ||
          t == '+' || t == '.' || t == 'e' || t == 'E') {
        token.push_back(t);
        ++pos_;
      } else {
        break;
      }
    }
    if (token.empty()) {
      return Status::InvalidArgument("unexpected character in JSON: " +
                                     std::string(1, c));
    }
    if (token != "null") {
      // Numbers and booleans intern through the text pipeline like any
      // other content token.
      doc.AddKeywords(local, intern_(token));
    }
    return Status::OK();
  }

  Status ParseObject(Document& doc, uint32_t local) {
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' after object key");
      }
      uint32_t child = doc.AddChild(local, *key);
      S3_RETURN_IF_ERROR(ParseValue(doc, child));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Document& doc, uint32_t local) {
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      uint32_t child = doc.AddChild(local, "item");
      S3_RETURN_IF_ERROR(ParseValue(doc, child));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Status::InvalidArgument("expected '\"'");
    }
    std::string out;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= in_.size()) break;
        char esc = in_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > in_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = in_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code |= h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code |= h - 'A' + 10;
              } else {
                return Status::InvalidArgument("bad \\u escape");
              }
            }
            if (code > 0 && code < 128) {
              out.push_back(static_cast<char>(code));
            }
            break;
          }
          default:
            return Status::InvalidArgument("unknown escape \\" +
                                           std::string(1, esc));
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  std::string_view in_;
  const TextInterner& intern_;
  size_t pos_ = 0;
};

}  // namespace

Result<Document> ParseJson(std::string_view json, std::string root_name,
                           const TextInterner& intern) {
  return JsonParser(json, intern).Parse(std::move(root_name));
}

}  // namespace s3::doc
