#include "doc/xml_parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace s3::doc {

namespace {

// Cursor over the input with error reporting.
class XmlCursor {
 public:
  explicit XmlCursor(std::string_view in) : in_(in) {}

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char Get() { return in_[pos_++]; }

  bool Consume(std::string_view token) {
    if (in_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  // Reads an XML name (tag or attribute).
  Result<std::string> ReadName() {
    std::string name;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':' || c == '.') {
        name.push_back(Get());
      } else {
        break;
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument("expected XML name at offset " +
                                     std::to_string(pos_));
    }
    return name;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

// Decodes the predefined entities in a text run.
Status DecodeEntities(std::string_view raw, std::string& out) {
  out.clear();
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out.push_back(raw[i++]);
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::InvalidArgument("unterminated entity");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (!entity.empty() && entity[0] == '#') {
      // Numeric references: keep ASCII, drop the rest.
      int code = 0;
      try {
        code = entity[1] == 'x' || entity[1] == 'X'
                   ? std::stoi(std::string(entity.substr(2)), nullptr, 16)
                   : std::stoi(std::string(entity.substr(1)));
      } catch (...) {
        return Status::InvalidArgument("bad numeric entity");
      }
      if (code > 0 && code < 128) out.push_back(static_cast<char>(code));
    } else {
      return Status::InvalidArgument("unknown entity: &" +
                                     std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return Status::OK();
}

class XmlParser {
 public:
  XmlParser(std::string_view xml, const TextInterner& intern)
      : cursor_(xml), intern_(intern) {}

  Result<Document> Parse() {
    SkipProlog();
    cursor_.SkipWhitespace();
    if (cursor_.AtEnd() || cursor_.Peek() != '<') {
      return Status::InvalidArgument("expected root element");
    }
    std::optional<Document> doc;
    Status s = ParseElement(&doc, UINT32_MAX);
    if (!s.ok()) return s;
    cursor_.SkipWhitespace();
    SkipMisc();
    cursor_.SkipWhitespace();
    if (!cursor_.AtEnd()) {
      return Status::InvalidArgument("trailing content after root element");
    }
    return std::move(*doc);
  }

 private:
  void SkipProlog() {
    cursor_.SkipWhitespace();
    if (cursor_.Consume("<?xml")) {
      while (!cursor_.AtEnd() && !cursor_.Consume("?>")) cursor_.Get();
    }
    SkipMisc();
  }

  void SkipMisc() {
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.Consume("<!--")) {
        while (!cursor_.AtEnd() && !cursor_.Consume("-->")) cursor_.Get();
      } else {
        return;
      }
    }
  }

  // Parses one element. If parent_local == UINT32_MAX this is the root:
  // `doc` is created with the element's tag. Otherwise appends to *doc.
  Status ParseElement(std::optional<Document>* doc, uint32_t parent_local) {
    if (!cursor_.Consume("<")) {
      return Status::InvalidArgument("expected '<'");
    }
    Result<std::string> name = cursor_.ReadName();
    if (!name.ok()) return name.status();

    uint32_t local;
    if (parent_local == UINT32_MAX) {
      doc->emplace(*name);
      local = 0;
    } else {
      local = (*doc)->AddChild(parent_local, *name);
    }

    // Attributes.
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) {
        return Status::InvalidArgument("unexpected end inside tag");
      }
      if (cursor_.Consume("/>")) return Status::OK();
      if (cursor_.Consume(">")) break;
      Result<std::string> attr = cursor_.ReadName();
      if (!attr.ok()) return attr.status();
      cursor_.SkipWhitespace();
      if (!cursor_.Consume("=")) {
        return Status::InvalidArgument("expected '=' after attribute " +
                                       *attr);
      }
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd() ||
          (cursor_.Peek() != '"' && cursor_.Peek() != '\'')) {
        return Status::InvalidArgument("expected quoted attribute value");
      }
      char quote = cursor_.Get();
      std::string raw;
      while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
        raw.push_back(cursor_.Get());
      }
      if (cursor_.AtEnd()) {
        return Status::InvalidArgument("unterminated attribute value");
      }
      cursor_.Get();  // closing quote
      std::string decoded;
      S3_RETURN_IF_ERROR(DecodeEntities(raw, decoded));
      uint32_t attr_node = (*doc)->AddChild(local, "@" + *attr);
      (*doc)->AddKeywords(attr_node, intern_(decoded));
    }

    // Content: text, children, CDATA, comments — until </name>.
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      std::string decoded;
      S3_RETURN_IF_ERROR(DecodeEntities(pending_text, decoded));
      (*doc)->AddKeywords(local, intern_(decoded));
      pending_text.clear();
      return Status::OK();
    };

    while (true) {
      if (cursor_.AtEnd()) {
        return Status::InvalidArgument("unterminated element <" + *name +
                                       ">");
      }
      if (cursor_.Consume("<!--")) {
        while (!cursor_.AtEnd() && !cursor_.Consume("-->")) cursor_.Get();
        continue;
      }
      if (cursor_.Consume("<![CDATA[")) {
        // CDATA is literal: re-escape the markup characters so the
        // later entity decode restores them verbatim.
        while (!cursor_.AtEnd() && !cursor_.Consume("]]>")) {
          char raw = cursor_.Get();
          if (raw == '&') {
            pending_text += "&amp;";
          } else if (raw == '<') {
            pending_text += "&lt;";
          } else if (raw == '>') {
            pending_text += "&gt;";
          } else {
            pending_text.push_back(raw);
          }
        }
        continue;
      }
      if (cursor_.Consume("</")) {
        Result<std::string> close = cursor_.ReadName();
        if (!close.ok()) return close.status();
        if (*close != *name) {
          return Status::InvalidArgument("mismatched close tag: <" + *name +
                                         "> vs </" + *close + ">");
        }
        cursor_.SkipWhitespace();
        if (!cursor_.Consume(">")) {
          return Status::InvalidArgument("expected '>' in close tag");
        }
        return flush_text();
      }
      if (cursor_.Peek() == '<') {
        S3_RETURN_IF_ERROR(flush_text());
        S3_RETURN_IF_ERROR(ParseElement(doc, local));
        continue;
      }
      pending_text.push_back(cursor_.Get());
    }
  }

  XmlCursor cursor_;
  const TextInterner& intern_;
};

}  // namespace

Result<Document> ParseXml(std::string_view xml, const TextInterner& intern) {
  return XmlParser(xml, intern).Parse();
}

}  // namespace s3::doc
