// Wire codec for one document tree, shared by the two storage-layer
// producers — the binary snapshot DOCS section (core/snapshot_binary)
// and the delta WAL document op (core/instance_delta) — so layout and
// validation can never diverge between them.
//
// Layout (little-endian, common/binary_io.h):
//   u32 node count (>= 1), then per node in local order:
//     u32 parent local index (UINT32_MAX for the root, node 0)
//     str name
//     u32 keyword count, then that many u32 keyword ids
#ifndef S3_DOC_DOCUMENT_WIRE_H_
#define S3_DOC_DOCUMENT_WIRE_H_

#include <cstdint>

#include "common/binary_io.h"
#include "common/status.h"
#include "doc/document.h"

namespace s3::doc {

void WriteDocumentTree(const Document& document, ByteWriter& w);

// Bounds-checked inverse: rejects a parentless/extra root, forward
// parent references, keyword ids >= `keyword_bound`, and truncation.
// Error messages carry no site context — callers wrap them with their
// section / record position.
Result<Document> ReadDocumentTree(ByteReader& r, uint64_t keyword_bound);

}  // namespace s3::doc

#endif  // S3_DOC_DOCUMENT_WIRE_H_
