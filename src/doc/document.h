// Tree-shaped documents (paper §2.3): unranked ordered trees whose
// nodes have a name, a URI, and a bag of (stemmed) content keywords.
// Every subtree rooted at a node is a *fragment*, identified by the
// URI/id of its root node.
#ifndef S3_DOC_DOCUMENT_H_
#define S3_DOC_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doc/dewey.h"
#include "text/vocabulary.h"

namespace s3::doc {

// Global fragment/node identifier, assigned by the DocumentStore.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

// Document identifier (index of the document in its store).
using DocId = uint32_t;
inline constexpr DocId kInvalidDoc = UINT32_MAX;

// One node of a document tree.
struct Node {
  NodeId id = kInvalidNode;          // global id
  uint32_t parent = UINT32_MAX;      // local index of parent, none for root
  std::string name;                  // element name (S3:nodeName)
  std::vector<KeywordId> keywords;   // content keywords (S3:contains)
  std::vector<uint32_t> children;    // local indices, in document order
  DeweyId dewey;
};

// An ordered tree under construction or completed. Node 0 is the root.
class Document {
 public:
  // Creates a document with a root node named `root_name`.
  explicit Document(std::string root_name);

  // Appends a child under local node `parent_local`; returns the new
  // node's local index. Precondition: parent_local < NodeCount().
  uint32_t AddChild(uint32_t parent_local, std::string name);

  // Appends content keywords to a node.
  void AddKeywords(uint32_t local, const std::vector<KeywordId>& kws);

  const Node& node(uint32_t local) const { return nodes_[local]; }
  Node& node(uint32_t local) { return nodes_[local]; }
  size_t NodeCount() const { return nodes_.size(); }

  // Local index of the nearest ancestor of `local` (its parent), or
  // UINT32_MAX for the root.
  uint32_t Parent(uint32_t local) const { return nodes_[local].parent; }

  // All strict ancestors of `local`, nearest first.
  std::vector<uint32_t> Ancestors(uint32_t local) const;

  // All descendants of `local` (strict), preorder.
  std::vector<uint32_t> Descendants(uint32_t local) const;

  // |pos(d_node, f_node)| where d_node is an ancestor-or-self of f_node:
  // the structural distance used in the score.
  size_t PosLength(uint32_t ancestor_local, uint32_t descendant_local) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace s3::doc

#endif  // S3_DOC_DOCUMENT_H_
