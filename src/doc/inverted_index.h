// Inverted index: keyword -> postings of fragments that directly
// contain it. This is the access path behind the `S3:contains`
// connections of con(d, k) (paper §3.2) and behind workload
// construction (keyword document frequencies).
//
// Postings lists are held behind shared_ptr so that a copied index
// (the live-update pipeline's snapshot-to-snapshot copy) shares every
// untouched list with its parent; AddNode copies a list only when it
// is about to mutate one that another generation still references
// (copy-on-write at keyword granularity).
#ifndef S3_DOC_INVERTED_INDEX_H_
#define S3_DOC_INVERTED_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "doc/document_store.h"
#include "text/vocabulary.h"

namespace s3::doc {

class InvertedIndex {
 public:
  // Indexes every node of every document in `store`. May be called once
  // after ingestion; Rebuild discards previous state.
  void Rebuild(const DocumentStore& store);

  // Adds a single node's keywords (incremental ingestion). Nodes must
  // be added in increasing id order. Copy-on-write: a postings list
  // shared with another index generation is cloned before the append.
  void AddNode(NodeId node, const std::vector<KeywordId>& keywords);

  // Appends every node of `store` with id >= first_new_node, in id
  // order — the delta-application path.
  void AppendNodes(const DocumentStore& store, NodeId first_new_node);

  // Fragments whose content directly contains `k` (no extension, no
  // ancestor propagation), sorted, deduplicated.
  const std::vector<NodeId>& Postings(KeywordId k) const;

  // Number of fragments directly containing k.
  size_t DocumentFrequency(KeywordId k) const { return Postings(k).size(); }

  // Number of distinct indexed keywords.
  size_t KeywordCount() const { return postings_.size(); }

  // All indexed keyword ids (unsorted).
  std::vector<KeywordId> Keywords() const;

  // True if this index shares keyword k's postings list with `other`
  // (structural-sharing introspection for tests).
  bool SharesPostings(const InvertedIndex& other, KeywordId k) const;

  // Binary-load path: installs one deserialized postings list,
  // validating the sorted-unique invariant AddNode maintains and the
  // node-id bound. Discards any previous list for `k`.
  Status AdoptPostings(KeywordId k, std::vector<NodeId> nodes,
                       size_t node_count);

 private:
  std::unordered_map<KeywordId, std::shared_ptr<std::vector<NodeId>>>
      postings_;
};

}  // namespace s3::doc

#endif  // S3_DOC_INVERTED_INDEX_H_
