// Inverted index: keyword -> postings of fragments that directly
// contain it. This is the access path behind the `S3:contains`
// connections of con(d, k) (paper §3.2) and behind workload
// construction (keyword document frequencies).
#ifndef S3_DOC_INVERTED_INDEX_H_
#define S3_DOC_INVERTED_INDEX_H_

#include <unordered_map>
#include <vector>

#include "doc/document_store.h"
#include "text/vocabulary.h"

namespace s3::doc {

class InvertedIndex {
 public:
  // Indexes every node of every document in `store`. May be called once
  // after ingestion; Rebuild discards previous state.
  void Rebuild(const DocumentStore& store);

  // Adds a single node's keywords (for incremental ingestion).
  void AddNode(NodeId node, const std::vector<KeywordId>& keywords);

  // Fragments whose content directly contains `k` (no extension, no
  // ancestor propagation), sorted, deduplicated.
  const std::vector<NodeId>& Postings(KeywordId k) const;

  // Number of fragments directly containing k.
  size_t DocumentFrequency(KeywordId k) const { return Postings(k).size(); }

  // Number of distinct indexed keywords.
  size_t KeywordCount() const { return postings_.size(); }

  // All indexed keyword ids (unsorted).
  std::vector<KeywordId> Keywords() const;

 private:
  std::unordered_map<KeywordId, std::vector<NodeId>> postings_;
};

}  // namespace s3::doc

#endif  // S3_DOC_INVERTED_INDEX_H_
