#include "doc/document_store.h"

#include <cassert>

namespace s3::doc {

Result<DocId> DocumentStore::AddDocument(Document doc,
                                         const std::string& root_uri) {
  if (uri_index_.contains(root_uri)) {
    return Status::AlreadyExists("document URI already registered: " +
                                 root_uri);
  }
  DocId d = static_cast<DocId>(documents_.size());
  std::vector<NodeId> globals(doc.NodeCount());
  for (uint32_t local = 0; local < doc.NodeCount(); ++local) {
    NodeId global = static_cast<NodeId>(node_refs_.size());
    globals[local] = global;
    doc.node(local).id = global;
    node_refs_.push_back(NodeRef{d, local});
    std::string uri = root_uri;
    if (local != 0) {
      uri.push_back('.');
      uri += doc.node(local).dewey.ToString();
    }
    uri_index_.emplace(uri, global);
    uris_.push_back(std::move(uri));
  }
  roots_.push_back(globals[0]);
  doc_nodes_.push_back(std::move(globals));
  documents_.push_back(std::make_shared<const Document>(std::move(doc)));
  return d;
}

Result<NodeId> DocumentStore::FindByUri(const std::string& uri) const {
  auto it = uri_index_.find(uri);
  if (it == uri_index_.end()) {
    return Status::NotFound("no node with URI: " + uri);
  }
  return it->second;
}

std::vector<NodeId> DocumentStore::VerticalNeighbors(NodeId n) const {
  const NodeRef ref = node_refs_[n];
  const Document& d = *documents_[ref.doc];
  std::vector<NodeId> out;
  for (uint32_t a : d.Ancestors(ref.local)) {
    out.push_back(doc_nodes_[ref.doc][a]);
  }
  for (uint32_t desc : d.Descendants(ref.local)) {
    out.push_back(doc_nodes_[ref.doc][desc]);
  }
  return out;
}

std::vector<NodeId> DocumentStore::NeighborhoodWithSelf(NodeId n) const {
  std::vector<NodeId> out = VerticalNeighbors(n);
  out.push_back(n);
  return out;
}

bool DocumentStore::AreVerticalNeighbors(NodeId a, NodeId b) const {
  if (a == b) return false;
  const NodeRef ra = node_refs_[a];
  const NodeRef rb = node_refs_[b];
  if (ra.doc != rb.doc) return false;
  const Document& d = *documents_[ra.doc];
  return d.node(ra.local).dewey.Comparable(d.node(rb.local).dewey);
}

size_t DocumentStore::PosLength(NodeId ancestor, NodeId descendant) const {
  const NodeRef ra = node_refs_[ancestor];
  const NodeRef rb = node_refs_[descendant];
  assert(ra.doc == rb.doc);
  return documents_[ra.doc]->PosLength(ra.local, rb.local);
}

std::vector<NodeId> DocumentStore::Ancestors(NodeId n) const {
  const NodeRef ref = node_refs_[n];
  const Document& d = *documents_[ref.doc];
  std::vector<NodeId> out;
  for (uint32_t a : d.Ancestors(ref.local)) {
    out.push_back(doc_nodes_[ref.doc][a]);
  }
  return out;
}

}  // namespace s3::doc
