// Minimal XML ingestion: parses a well-formed XML snippet into a
// Document tree (paper §2.3: "content is created under the form of
// structured, tree-shaped documents, e.g., XML, JSON").
//
// Supported: nested elements, attributes (stored as child nodes named
// "@attr"), text content, self-closing tags, comments, CDATA, and the
// five predefined entities. Not supported (rejected): processing
// instructions beyond the xml declaration, DTDs, namespaces semantics
// (prefixes are kept verbatim in names).
#ifndef S3_DOC_XML_PARSER_H_
#define S3_DOC_XML_PARSER_H_

#include <functional>
#include <string_view>

#include "common/status.h"
#include "doc/document.h"

namespace s3::doc {

// Converts raw text into content keywords; typically
// S3Instance::InternText wrapped in a lambda.
using TextInterner =
    std::function<std::vector<KeywordId>(std::string_view)>;

// Parses `xml` into a Document whose root is the outermost element.
// Each element becomes a node named after its tag; attribute values
// and text content run through `intern`.
Result<Document> ParseXml(std::string_view xml, const TextInterner& intern);

}  // namespace s3::doc

#endif  // S3_DOC_XML_PARSER_H_
