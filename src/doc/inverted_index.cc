#include "doc/inverted_index.h"

#include <algorithm>

namespace s3::doc {

namespace {
const std::vector<NodeId> kEmptyPostings;
}  // namespace

void InvertedIndex::Rebuild(const DocumentStore& store) {
  postings_.clear();
  for (NodeId n = 0; n < store.NodeCount(); ++n) {
    AddNode(n, store.node(n).keywords);
  }
}

void InvertedIndex::AddNode(NodeId node,
                            const std::vector<KeywordId>& keywords) {
  for (KeywordId k : keywords) {
    auto& list = postings_[k];
    // Nodes are added in increasing id order; avoid duplicates from
    // repeated keywords within one node.
    if (list.empty() || list.back() != node) list.push_back(node);
  }
}

const std::vector<NodeId>& InvertedIndex::Postings(KeywordId k) const {
  auto it = postings_.find(k);
  return it == postings_.end() ? kEmptyPostings : it->second;
}

std::vector<KeywordId> InvertedIndex::Keywords() const {
  std::vector<KeywordId> out;
  out.reserve(postings_.size());
  for (const auto& [k, _] : postings_) out.push_back(k);
  return out;
}

}  // namespace s3::doc
