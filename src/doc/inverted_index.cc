#include "doc/inverted_index.h"

#include <algorithm>

#include "common/cow.h"

namespace s3::doc {

namespace {
const std::vector<NodeId> kEmptyPostings;
}  // namespace

void InvertedIndex::Rebuild(const DocumentStore& store) {
  postings_.clear();
  AppendNodes(store, 0);
}

void InvertedIndex::AddNode(NodeId node,
                            const std::vector<KeywordId>& keywords) {
  for (KeywordId k : keywords) {
    // Clone-on-shared: another generation may still reference the list.
    auto& list = MutableCow(postings_[k]);
    // Nodes are added in increasing id order; avoid duplicates from
    // repeated keywords within one node.
    if (list.empty() || list.back() != node) list.push_back(node);
  }
}

void InvertedIndex::AppendNodes(const DocumentStore& store,
                                NodeId first_new_node) {
  for (NodeId n = first_new_node; n < store.NodeCount(); ++n) {
    AddNode(n, store.node(n).keywords);
  }
}

const std::vector<NodeId>& InvertedIndex::Postings(KeywordId k) const {
  auto it = postings_.find(k);
  return it == postings_.end() ? kEmptyPostings : *it->second;
}

std::vector<KeywordId> InvertedIndex::Keywords() const {
  std::vector<KeywordId> out;
  out.reserve(postings_.size());
  for (const auto& [k, _] : postings_) out.push_back(k);
  return out;
}

Status InvertedIndex::AdoptPostings(KeywordId k, std::vector<NodeId> nodes,
                                    size_t node_count) {
  if (nodes.empty()) {
    return Status::InvalidArgument("postings: empty list for keyword " +
                                   std::to_string(k));
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= node_count) {
      return Status::InvalidArgument("postings: node id out of range");
    }
    if (i > 0 && nodes[i] <= nodes[i - 1]) {
      return Status::InvalidArgument(
          "postings: list not strictly ascending");
    }
  }
  postings_[k] = std::make_shared<std::vector<NodeId>>(std::move(nodes));
  return Status::OK();
}

bool InvertedIndex::SharesPostings(const InvertedIndex& other,
                                   KeywordId k) const {
  auto it = postings_.find(k);
  auto jt = other.postings_.find(k);
  if (it == postings_.end() || jt == other.postings_.end()) return false;
  return it->second == jt->second;
}

}  // namespace s3::doc
