#include "doc/document_wire.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace s3::doc {

void WriteDocumentTree(const Document& document, ByteWriter& w) {
  w.U32(static_cast<uint32_t>(document.NodeCount()));
  for (uint32_t local = 0; local < document.NodeCount(); ++local) {
    const Node& node = document.node(local);
    w.U32(node.parent);  // UINT32_MAX for the root
    w.Str(node.name);
    w.U32(static_cast<uint32_t>(node.keywords.size()));
    for (KeywordId k : node.keywords) w.U32(k);
  }
}

Result<Document> ReadDocumentTree(ByteReader& r, uint64_t keyword_bound) {
  auto bad = [](const std::string& why) {
    return Status::InvalidArgument("document tree: " + why);
  };
  const uint32_t n_nodes = r.U32();
  if (r.failed() || n_nodes == 0 || !r.FitsCount(n_nodes, 12)) {
    return bad("bad node count");
  }
  std::optional<Document> document;
  for (uint32_t local = 0; local < n_nodes; ++local) {
    const uint32_t parent = r.U32();
    std::string name = r.Str();
    const uint32_t n_kw = r.U32();
    if (r.failed() || !r.FitsCount(n_kw, 4)) return bad("truncated node");
    if (local == 0) {
      if (parent != UINT32_MAX) return bad("root node has a parent");
      document.emplace(std::move(name));
    } else {
      if (parent >= local) return bad("node parent out of range");
      document->AddChild(parent, std::move(name));
    }
    std::vector<KeywordId> kws;
    kws.reserve(n_kw);
    for (uint32_t j = 0; j < n_kw; ++j) kws.push_back(r.U32());
    if (r.failed()) return bad("truncated node keywords");
    for (KeywordId k : kws) {
      if (k >= keyword_bound) return bad("keyword id out of range");
    }
    document->AddKeywords(local, kws);
  }
  return std::move(*document);
}

}  // namespace s3::doc
