// Owns all documents of an instance and assigns global NodeIds.
//
// The store also answers the structural queries the engine needs:
// vertical neighborhoods (paper Definition 2.2), root lookup, URI
// resolution, and pos-length between comparable fragments.
#ifndef S3_DOC_DOCUMENT_STORE_H_
#define S3_DOC_DOCUMENT_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "doc/document.h"

namespace s3::doc {

class DocumentStore {
 public:
  // Registers a finished document. Node URIs are derived from
  // `root_uri`: the root gets `root_uri`, descendants get
  // `root_uri + "." + dewey`. Returns the DocId.
  // Fails with AlreadyExists if `root_uri` is taken.
  Result<DocId> AddDocument(Document doc, const std::string& root_uri);

  size_t DocumentCount() const { return documents_.size(); }
  size_t NodeCount() const { return node_refs_.size(); }

  // Documents are immutable once registered and held behind
  // shared_ptr, so a copied store (live-update snapshot) shares every
  // document payload with its parent.
  const Document& document(DocId d) const { return *documents_[d]; }

  // Mapping between global node ids and (document, local index).
  DocId DocOf(NodeId n) const { return node_refs_[n].doc; }
  uint32_t LocalOf(NodeId n) const { return node_refs_[n].local; }
  const Node& node(NodeId n) const {
    return documents_[node_refs_[n].doc]->node(node_refs_[n].local);
  }

  // Global id of document d's root node.
  NodeId RootNode(DocId d) const { return roots_[d]; }

  // Global node id for a local index within document d.
  NodeId GlobalId(DocId d, uint32_t local) const {
    return doc_nodes_[d][local];
  }

  // URI of a node / node lookup by URI.
  const std::string& Uri(NodeId n) const { return uris_[n]; }
  Result<NodeId> FindByUri(const std::string& uri) const;

  // Vertical neighbors of `n` (paper Def. 2.2): strict ancestors and
  // strict descendants; `n` itself is NOT included.
  std::vector<NodeId> VerticalNeighbors(NodeId n) const;

  // Vertical neighbors plus `n` itself (the "neigh(n)" closure used for
  // path normalization, which includes edges leaving n).
  std::vector<NodeId> NeighborhoodWithSelf(NodeId n) const;

  // True if a and b are vertical neighbors (one a fragment of the
  // other, a != b).
  bool AreVerticalNeighbors(NodeId a, NodeId b) const;

  // |pos(ancestor, descendant)|. Precondition: same document and
  // ancestor-or-self relation holds.
  size_t PosLength(NodeId ancestor, NodeId descendant) const;

  // Strict ancestors of n, nearest first (global ids).
  std::vector<NodeId> Ancestors(NodeId n) const;

 private:
  struct NodeRef {
    DocId doc;
    uint32_t local;
  };

  std::vector<std::shared_ptr<const Document>> documents_;
  std::vector<NodeId> roots_;                   // per document
  std::vector<std::vector<NodeId>> doc_nodes_;  // per document: local->global
  std::vector<NodeRef> node_refs_;              // global->(doc, local)
  std::vector<std::string> uris_;               // global->URI
  std::unordered_map<std::string, NodeId> uri_index_;
};

}  // namespace s3::doc

#endif  // S3_DOC_DOCUMENT_STORE_H_
