// Minimal JSON ingestion: parses a JSON value into a Document tree
// (paper §2.3 allows JSON content next to XML).
//
// Mapping:
//   * the top-level value becomes the root (named `root_name`);
//   * object members become child nodes named after the key;
//   * array elements become child nodes named "item";
//   * strings run through the text interner; numbers / true / false /
//     null are interned as their literal spelling.
#ifndef S3_DOC_JSON_PARSER_H_
#define S3_DOC_JSON_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "doc/document.h"
#include "doc/xml_parser.h"  // TextInterner

namespace s3::doc {

Result<Document> ParseJson(std::string_view json, std::string root_name,
                           const TextInterner& intern);

}  // namespace s3::doc

#endif  // S3_DOC_JSON_PARSER_H_
