#include "doc/document.h"

#include <cassert>

namespace s3::doc {

Document::Document(std::string root_name) {
  Node root;
  root.parent = UINT32_MAX;
  root.name = std::move(root_name);
  nodes_.push_back(std::move(root));
}

uint32_t Document::AddChild(uint32_t parent_local, std::string name) {
  assert(parent_local < nodes_.size());
  uint32_t local = static_cast<uint32_t>(nodes_.size());
  Node child;
  child.parent = parent_local;
  child.name = std::move(name);
  child.dewey = nodes_[parent_local].dewey.Child(
      static_cast<uint32_t>(nodes_[parent_local].children.size() + 1));
  nodes_.push_back(std::move(child));
  nodes_[parent_local].children.push_back(local);
  return local;
}

void Document::AddKeywords(uint32_t local,
                           const std::vector<KeywordId>& kws) {
  assert(local < nodes_.size());
  auto& dst = nodes_[local].keywords;
  dst.insert(dst.end(), kws.begin(), kws.end());
}

std::vector<uint32_t> Document::Ancestors(uint32_t local) const {
  std::vector<uint32_t> out;
  uint32_t cur = nodes_[local].parent;
  while (cur != UINT32_MAX) {
    out.push_back(cur);
    cur = nodes_[cur].parent;
  }
  return out;
}

std::vector<uint32_t> Document::Descendants(uint32_t local) const {
  std::vector<uint32_t> out;
  std::vector<uint32_t> stack(nodes_[local].children.rbegin(),
                              nodes_[local].children.rend());
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = nodes_[cur].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

size_t Document::PosLength(uint32_t ancestor_local,
                           uint32_t descendant_local) const {
  const DeweyId& a = nodes_[ancestor_local].dewey;
  const DeweyId& d = nodes_[descendant_local].dewey;
  assert(a.IsAncestorOrSelf(d));
  return d.depth() - a.depth();
}

}  // namespace s3::doc
