#include "doc/dewey.h"

#include <cassert>

namespace s3::doc {

DeweyId DeweyId::Child(uint32_t pos) const {
  std::vector<uint32_t> steps = steps_;
  steps.push_back(pos);
  return DeweyId(std::move(steps));
}

bool DeweyId::IsAncestorOrSelf(const DeweyId& other) const {
  if (steps_.size() > other.steps_.size()) return false;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i] != other.steps_[i]) return false;
  }
  return true;
}

bool DeweyId::Comparable(const DeweyId& other) const {
  return IsAncestorOrSelf(other) || other.IsAncestorOrSelf(*this);
}

std::vector<uint32_t> DeweyId::RelativePath(const DeweyId& other) const {
  assert(IsAncestorOrSelf(other));
  return std::vector<uint32_t>(other.steps_.begin() + steps_.size(),
                               other.steps_.end());
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(steps_[i]);
  }
  return out;
}

}  // namespace s3::doc
