// Incrementally maintained candidate scoring state for one S3k query
// batch (the candidate list of paper Algorithm 2, flattened, times L
// seeker lanes).
//
// Layout. Candidate sources live in one CSR-style struct-of-arrays:
// for candidate ci and keyword slot qi, the entries
//   [src_begin_[ci*K+qi], src_begin_[ci*K+qi+1])
// of src_rows_ / src_w_ are the (source entity row, static weight)
// pairs that `Candidate::sources` used to hold per candidate. A
// reverse index (rev_ptr_ over entity rows; rev_sum_/rev_w_) maps a
// source row back to every per-keyword partial sum it feeds, so an
// exploration step that adds Δprox to the rows the frontier touched
// updates only the affected sums — O(affected entries) per step
// instead of rescanning every source of every active candidate.
//
// Multi-seeker batching: the engine carries `lanes` independent
// per-seeker columns through one shared candidate structure. All
// static state (nodes, source CSR, reverse index, vertical-neighbor
// adjacency) is built once per batch; the per-seeker state — partial
// sums, bounds, active/alive flags — is struct-of-arrays with the lane
// index innermost (kw_sum_[(ci*K+qi)*L + lane]), so the per-iteration
// maintenance passes stream all lanes per CSR entry (the SpMM layout
// of social/propagate_kernels.h). Lanes are arithmetically
// independent: every per-lane operation sequence is exactly what a
// lanes==1 engine would run for that seeker alone, so batched bounds
// are bit-for-bit the single-query bounds. The default lanes==1
// preserves the original single-seeker API unchanged (lane parameters
// default to 0).
//
// Maintained invariants (pinned by tests/bound_engine_test.cc), per
// lane:
//   kw_sum_[(ci*K+qi)*L+s] == Σ_src w(ci,qi,src) · all_prox_s[src]
//   lower(ci,s) == Π_qi kw_sum_[(ci*K+qi)*L+s]
//   upper(ci,s) == Π_qi min(W, kw_sum_ + W·tail_s),  W = kw_w_[ci*K+qi]
// i.e. exactly the from-scratch CandidateLowerBound /
// CandidateUpperBound values for the same accumulated proximities.
// Lower bounds only ever grow (frontier deltas are non-negative) and
// upper bounds shrink with the shared tail term, so domination kills
// stay sound forever.
//
// The engine also precomputes, once at construction, the structures
// the per-iteration maintenance passes need:
//   * doc groups — candidates of the same document, the only ones that
//     can be vertical neighbors (CleanCandidatesList);
//   * the vertical-neighbor adjacency between same-document candidates
//     (CSR nbr_*), replacing per-iteration AreVerticalNeighbors calls
//     in both the clean pass and the stop-condition top-k check.
//
// Component sharding (intra-query fan-out). Candidates are laid out
// slot-contiguously (the constructor flattens per_comp in slot order),
// so every per-candidate array partitions into per-component ranges,
// and the construction additionally shards the *reverse index* by
// slot: a row's rev entries are sorted by partial-sum index, sums are
// slot-contiguous, so the slot-t entries of a row form a contiguous
// subrange — slot_fold_* stores, per slot, its feeding rows (ascending)
// with their rev subranges. The per-slot maintenance passes
// (FoldFrontierSlot / RefreshBoundsSlot / CleanDominatedSlot) then
// touch disjoint state across slots — disjoint kw_sum_ ranges, disjoint
// bound ranges, disjoint neighbor pairs (vertical neighbors share a
// document, a document lives in one component) — which is what lets
// core/s3k.cc run them as independent per-component tasks. Per partial
// sum, the per-slot fold applies contributions in the same ascending-
// row order as the global fold, so sharded execution is bit-for-bit
// the serial execution regardless of task schedule.
#ifndef S3_CORE_BOUND_ENGINE_H_
#define S3_CORE_BOUND_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "core/connections.h"
#include "doc/document_store.h"

namespace s3::core {

class CandidateBoundEngine {
 public:
  // Flattens the candidates of all passing components. `per_comp[i]`
  // becomes component slot i; the source lists are copied into the CSR
  // (never mutated), so one shared/cached CandidatePlan can seed any
  // number of concurrent engines. `total_rows` is the entity-row count
  // (sizes the reverse index). `lanes` is the seeker-lane count (≥ 1,
  // ≤ social::kMaxFrontierLanes; pad with social::PadLanes for the
  // fixed-width kernels).
  CandidateBoundEngine(const doc::DocumentStore& docs, size_t n_keywords,
                       uint32_t total_rows,
                       const std::vector<ComponentCandidates>& per_comp,
                       size_t lanes = 1);

  size_t size() const { return node_.size(); }
  size_t keywords() const { return n_keywords_; }
  size_t lanes() const { return lanes_; }

  doc::NodeId node(uint32_t ci) const { return node_[ci]; }
  uint32_t comp_slot(uint32_t ci) const { return comp_slot_[ci]; }
  bool alive(uint32_t ci, size_t lane = 0) const {
    return alive_[ci * lanes_ + lane] != 0;
  }
  double lower(uint32_t ci, size_t lane = 0) const {
    return lower_[ci * lanes_ + lane];
  }
  double upper(uint32_t ci, size_t lane = 0) const {
    return upper_[ci * lanes_ + lane];
  }

  // Marks component slot `slot` discovered in `lane`: its candidates
  // join that lane's active set that RefreshBounds / CleanDominated
  // operate on. Partial sums are maintained for every candidate from
  // the start (sources can be reached before their component is
  // discovered), but bound refresh and domination cleaning are paid
  // only for active ones.
  void ActivateSlot(uint32_t slot, size_t lane = 0);
  const std::vector<uint32_t>& ActiveCandidates(size_t lane = 0) const {
    return active_lists_[lane];
  }

  // Candidates of component slot `slot`, in construction order.
  const std::vector<uint32_t>& SlotCandidates(uint32_t slot) const {
    return slot_cands_[slot];
  }

  // ---- component-sharded views (the intra-query fan-out surface) ----

  size_t SlotCount() const { return slot_cands_.size(); }

  // Candidate ids of slot t are exactly [SlotBegin(t), SlotEnd(t)).
  uint32_t SlotBegin(uint32_t slot) const { return slot_cand_begin_[slot]; }
  uint32_t SlotEnd(uint32_t slot) const {
    return slot_cand_begin_[slot + 1];
  }

  // Reverse-index entries feeding slot `slot` (fold cost estimate).
  uint64_t SlotRevEntries(uint32_t slot) const {
    return slot_rev_entries_[slot];
  }

  // Per-slot half of the exploration fold: for every row feeding this
  // slot, reads the row's lane values from the dense frontier buffer
  // (`frontier_values[row * lanes() + l]`), scales by `factor`, and
  // folds into this slot's partial sums only. Rows whose lanes are all
  // zero are skipped. Equivalent to running ApplyDeltaBatch over all
  // rows restricted to this slot's sums; per sum, contributions arrive
  // in the same ascending-row order as the global fold, so
  //   for each slot: FoldFrontierSlot(slot, v, f)
  // in any slot order (or concurrently) is bit-for-bit the global
  //   for each row: ApplyDeltaBatch(row, f·v[row])
  // pass. Writes only this slot's kw_sum_ range.
  void FoldFrontierSlot(uint32_t slot, const double* frontier_values,
                        double factor);

  // RefreshBoundsBatch restricted to slot `slot`'s candidates: the same
  // pure per-candidate recomputation over the slot's contiguous range.
  // Writes only this slot's lower_/upper_ ranges.
  void RefreshBoundsSlot(uint32_t slot, const double* tails);

  // CleanDominated restricted to slot `slot`'s neighbor pairs (vertical
  // neighbors never span components, so the global pair scan is the
  // concatenation of the per-slot scans in slot order — and pair order
  // within a slot is preserved, which matters because a kill earlier in
  // the pass gates later domination tests). Writes only this slot's
  // alive_ range.
  size_t CleanDominatedSlot(uint32_t slot, double epsilon, size_t lane);

  // Sorted unique entity rows that feed at least one candidate — the
  // only rows whose proximity deltas can change any bound. Once the
  // frontier grows wider than this set, the exploration step folds
  // deltas by scanning it instead of the frontier.
  const std::vector<uint32_t>& SourceRows() const { return source_rows_; }

  // Folds one exploration delta (all_prox[row] += delta) into the
  // partial sums of every (candidate, keyword-slot) fed by `row`.
  // Lane 0 — the single-seeker path.
  void ApplyDelta(uint32_t row, double delta) {
    ApplyDeltaLane(row, 0, delta);
  }

  // Same fold for one specific lane (seeker seeding in a batch).
  void ApplyDeltaLane(uint32_t row, size_t lane, double delta) {
    for (uint64_t i = rev_ptr_[row]; i < rev_ptr_[row + 1]; ++i) {
      kw_sum_[rev_sum_[i] * lanes_ + lane] +=
          static_cast<double>(rev_w_[i]) * delta;
    }
  }

  // All-lane fold: deltas[l] is lane l's Δprox on `row` (0.0 for a
  // lane the frontier doesn't touch — bitwise a no-op for that lane).
  // One reverse-index walk streams every lane.
  void ApplyDeltaBatch(uint32_t row, const double* deltas);

  // Recomputes lower/upper for every active candidate (union over
  // lanes) from the partial sums and the per-lane tail term:
  // O(active · keywords · lanes), with no per-source work. `pool`
  // parallelizes large candidate sets. `tails` has lanes() entries.
  void RefreshBoundsBatch(const double* tails, ThreadPool* pool = nullptr);

  // Single-tail convenience (the lanes==1 path and tests).
  void RefreshBounds(double tail, ThreadPool* pool = nullptr);

  // CleanCandidatesList for one lane: kills active candidates
  // dominated by an active vertical neighbor (same rule as paper §4.2
  // / the previous from-scratch implementation). Returns how many were
  // killed in that lane.
  size_t CleanDominated(double epsilon, size_t lane = 0);

  // True if any two of the first `count` candidates in `order` are
  // vertical neighbors (stop-condition top-k check; lane-independent).
  bool AnyNeighborPair(const std::vector<uint32_t>& order, size_t count);

  // First k alive-in-`lane` candidates of `order` with no two vertical
  // neighbors (Definition 3.2's answer constraint).
  std::vector<uint32_t> GreedyTopK(const std::vector<uint32_t>& order,
                                   size_t k, size_t lane = 0);

  // From-scratch per-keyword sum Σ w · prox[src] over the stored CSR
  // entries (test hook: validates the incremental kw_sum_ invariant
  // for `lane`).
  double FromScratchKeywordSum(uint32_t ci, size_t qi,
                               const std::vector<double>& prox,
                               size_t lane = 0) const;

 private:
  // The shared per-candidate bound recomputation (RefreshBoundsBatch /
  // RefreshBoundsSlot bodies).
  void RefreshOne(uint32_t ci, const double* tails);

  // The shared pair-scan body over nbr_pairs_[begin, end).
  size_t CleanPairRange(size_t begin, size_t end, double epsilon,
                        size_t lane);

  size_t n_keywords_;
  size_t lanes_;

  // Struct-of-arrays candidate state. Per-lane arrays index
  // [ci * lanes_ + lane]; kw_sum_ indexes [(ci*K + qi) * lanes_ + lane].
  std::vector<doc::NodeId> node_;
  std::vector<uint32_t> comp_slot_;
  std::vector<uint8_t> alive_;
  std::vector<uint8_t> active_;
  std::vector<std::vector<uint32_t>> active_lists_;  // per lane
  std::vector<uint8_t> union_active_;   // active in some lane
  std::vector<uint32_t> union_list_;    // the refresh domain
  std::vector<double> kw_sum_;   // size() * K * lanes incremental sums
  std::vector<double> kw_w_;     // size() * K static weights W (shared)
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::vector<uint32_t>> slot_cands_;

  // Component-sharded views (see the header comment). Candidate ids
  // are slot-contiguous: slot s owns [slot_cand_begin_[s],
  // slot_cand_begin_[s+1]). The fold CSR (slot_fold_ptr_ over slots)
  // lists, per slot, its feeding rows in ascending order, each with
  // its contiguous rev-index subrange for that slot; slot_pair_begin_
  // partitions the sorted nbr_pairs_ by slot; slot_rev_entries_
  // caches the per-slot fold cost for the scheduler's cost model.
  std::vector<uint32_t> slot_cand_begin_;
  std::vector<uint64_t> slot_fold_ptr_;
  std::vector<uint32_t> slot_fold_row_;
  std::vector<uint64_t> slot_fold_begin_;
  std::vector<uint64_t> slot_fold_end_;
  std::vector<size_t> slot_pair_begin_;
  std::vector<uint64_t> slot_rev_entries_;

  // Forward CSR of sources per (candidate, keyword-slot).
  std::vector<uint64_t> src_begin_;
  std::vector<uint32_t> src_rows_;
  std::vector<float> src_w_;

  // Reverse index: entity row -> (partial-sum index, weight).
  std::vector<uint64_t> rev_ptr_;
  std::vector<uint32_t> rev_sum_;
  std::vector<float> rev_w_;
  std::vector<uint32_t> source_rows_;  // rows with a nonempty rev range

  // Vertical-neighbor adjacency between same-document candidates
  // (CSR over candidate ids), plus the unique (a < b) pair list the
  // clean pass scans.
  std::vector<uint32_t> nbr_begin_;
  std::vector<uint32_t> nbr_list_;
  std::vector<std::pair<uint32_t, uint32_t>> nbr_pairs_;

  // Epoch-marking scratch for the neighbor-set membership tests.
  std::vector<uint32_t> mark_;
  uint32_t mark_epoch_ = 0;
};

}  // namespace s3::core

#endif  // S3_CORE_BOUND_ENGINE_H_
