// Incrementally maintained candidate scoring state for one S3k query
// (the candidate list of paper Algorithm 2, flattened).
//
// Layout. Candidate sources live in one CSR-style struct-of-arrays:
// for candidate ci and keyword slot qi, the entries
//   [src_begin_[ci*K+qi], src_begin_[ci*K+qi+1])
// of src_rows_ / src_w_ are the (source entity row, static weight)
// pairs that `Candidate::sources` used to hold per candidate. A
// reverse index (rev_ptr_ over entity rows; rev_sum_/rev_w_) maps a
// source row back to every per-keyword partial sum it feeds, so an
// exploration step that adds Δprox to the rows the frontier touched
// updates only the affected sums — O(affected entries) per step
// instead of rescanning every source of every active candidate.
//
// Maintained invariants (pinned by tests/bound_engine_test.cc):
//   kw_sum_[ci*K+qi] == Σ_src w(ci,qi,src) · all_prox[src]
//   lower(ci) == Π_qi kw_sum_[ci*K+qi]
//   upper(ci) == Π_qi min(W, kw_sum_ + W·tail),  W = kw_w_[ci*K+qi]
// i.e. exactly the from-scratch CandidateLowerBound /
// CandidateUpperBound values for the same accumulated proximities.
// Lower bounds only ever grow (frontier deltas are non-negative) and
// upper bounds shrink with the shared tail term, so domination kills
// stay sound forever.
//
// The engine also precomputes, once at construction, the structures
// the per-iteration maintenance passes need:
//   * doc groups — candidates of the same document, the only ones that
//     can be vertical neighbors (CleanCandidatesList);
//   * the vertical-neighbor adjacency between same-document candidates
//     (CSR nbr_*), replacing per-iteration AreVerticalNeighbors calls
//     in both the clean pass and the stop-condition top-k check.
#ifndef S3_CORE_BOUND_ENGINE_H_
#define S3_CORE_BOUND_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "core/connections.h"
#include "doc/document_store.h"

namespace s3::core {

class CandidateBoundEngine {
 public:
  // Flattens the candidates of all passing components. `per_comp[i]`
  // becomes component slot i; the source lists are copied into the CSR
  // (never mutated), so one shared/cached CandidatePlan can seed any
  // number of concurrent engines. `total_rows` is the entity-row count
  // (sizes the reverse index).
  CandidateBoundEngine(const doc::DocumentStore& docs, size_t n_keywords,
                       uint32_t total_rows,
                       const std::vector<ComponentCandidates>& per_comp);

  size_t size() const { return node_.size(); }
  size_t keywords() const { return n_keywords_; }

  doc::NodeId node(uint32_t ci) const { return node_[ci]; }
  uint32_t comp_slot(uint32_t ci) const { return comp_slot_[ci]; }
  bool alive(uint32_t ci) const { return alive_[ci] != 0; }
  double lower(uint32_t ci) const { return lower_[ci]; }
  double upper(uint32_t ci) const { return upper_[ci]; }

  // Marks component slot `slot` discovered: its candidates join the
  // active set that RefreshBounds / CleanDominated operate on. Partial
  // sums are maintained for every candidate from the start (sources
  // can be reached before their component is discovered), but bound
  // refresh and domination cleaning are paid only for active ones.
  void ActivateSlot(uint32_t slot);
  const std::vector<uint32_t>& ActiveCandidates() const {
    return active_list_;
  }

  // Candidates of component slot `slot`, in construction order.
  const std::vector<uint32_t>& SlotCandidates(uint32_t slot) const {
    return slot_cands_[slot];
  }

  // Sorted unique entity rows that feed at least one candidate — the
  // only rows whose proximity deltas can change any bound. Once the
  // frontier grows wider than this set, the exploration step folds
  // deltas by scanning it instead of the frontier.
  const std::vector<uint32_t>& SourceRows() const { return source_rows_; }

  // Folds one exploration delta (all_prox[row] += delta) into the
  // partial sums of every (candidate, keyword-slot) fed by `row`.
  void ApplyDelta(uint32_t row, double delta) {
    for (uint64_t i = rev_ptr_[row]; i < rev_ptr_[row + 1]; ++i) {
      kw_sum_[rev_sum_[i]] += static_cast<double>(rev_w_[i]) * delta;
    }
  }

  // Recomputes lower/upper for every alive active candidate from the
  // partial sums and the shared tail term: O(active · keywords), with
  // no per-source work. `pool` parallelizes large candidate sets.
  void RefreshBounds(double tail, ThreadPool* pool = nullptr);

  // CleanCandidatesList: kills active candidates dominated by an
  // active vertical neighbor (same rule as paper §4.2 / the previous
  // from-scratch implementation). Returns how many were killed.
  size_t CleanDominated(double epsilon);

  // True if any two of the first `count` candidates in `order` are
  // vertical neighbors (stop-condition top-k check).
  bool AnyNeighborPair(const std::vector<uint32_t>& order, size_t count);

  // First k alive candidates of `order` with no two vertical neighbors
  // (Definition 3.2's answer constraint).
  std::vector<uint32_t> GreedyTopK(const std::vector<uint32_t>& order,
                                   size_t k);

  // From-scratch per-keyword sum Σ w · prox[src] over the stored CSR
  // entries (test hook: validates the incremental kw_sum_ invariant).
  double FromScratchKeywordSum(uint32_t ci, size_t qi,
                               const std::vector<double>& prox) const;

 private:
  size_t n_keywords_;

  // Struct-of-arrays candidate state.
  std::vector<doc::NodeId> node_;
  std::vector<uint32_t> comp_slot_;
  std::vector<uint8_t> alive_;
  std::vector<uint8_t> active_;
  std::vector<uint32_t> active_list_;
  std::vector<double> kw_sum_;   // size() * K incremental partial sums
  std::vector<double> kw_w_;     // size() * K static weights W
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::vector<uint32_t>> slot_cands_;

  // Forward CSR of sources per (candidate, keyword-slot).
  std::vector<uint64_t> src_begin_;
  std::vector<uint32_t> src_rows_;
  std::vector<float> src_w_;

  // Reverse index: entity row -> (partial-sum index, weight).
  std::vector<uint64_t> rev_ptr_;
  std::vector<uint32_t> rev_sum_;
  std::vector<float> rev_w_;
  std::vector<uint32_t> source_rows_;  // rows with a nonempty rev range

  // Vertical-neighbor adjacency between same-document candidates
  // (CSR over candidate ids), plus the unique (a < b) pair list the
  // clean pass scans.
  std::vector<uint32_t> nbr_begin_;
  std::vector<uint32_t> nbr_list_;
  std::vector<std::pair<uint32_t, uint32_t>> nbr_pairs_;

  // Epoch-marking scratch for the neighbor-set membership tests.
  std::vector<uint32_t> mark_;
  uint32_t mark_epoch_ = 0;
};

}  // namespace s3::core

#endif  // S3_CORE_BOUND_ENGINE_H_
