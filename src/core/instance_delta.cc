#include "core/instance_delta.h"

#include <algorithm>
#include <cassert>

#include "common/binary_io.h"
#include "doc/document_wire.h"
#include "text/tokenizer.h"

namespace s3::core {

namespace {
// 'S3WD' little-endian: heads every WAL record frame.
constexpr uint32_t kWalMagic = 0x4457'3353u;
constexpr size_t kWalFrameHeader = 4 + 8 + 4;  // magic, size, crc
}  // namespace

InstanceDelta::InstanceDelta(std::shared_ptr<const S3Instance> base)
    : base_(std::move(base)) {
  assert(base_ != nullptr && base_->finalized() &&
         "InstanceDelta requires a finalized base snapshot");
}

Status InstanceDelta::CheckBase() const {
  // Caller input must stay guarded in Release builds too (the ctor
  // assert vanishes under NDEBUG): a null or unfinalized base turns
  // every operation into an error instead of a null deref / garbage
  // combined-id math.
  if (base_ == nullptr || !base_->finalized()) {
    return Status::FailedPrecondition(
        "InstanceDelta requires a finalized base snapshot");
  }
  return Status::OK();
}

size_t InstanceDelta::CombinedDocCount() const {
  return base_->docs().DocumentCount() + docs_.size();
}

size_t InstanceDelta::CombinedNodeCount() const {
  return base_->docs().NodeCount() + new_nodes_;
}

size_t InstanceDelta::CombinedTagCount() const {
  return base_->TagCount() + tags_.size();
}

size_t InstanceDelta::CombinedKeywordCount() const {
  return base_->vocabulary().size() + spellings_.size();
}

doc::DocId InstanceDelta::CombinedDocOf(doc::NodeId node) const {
  const size_t base_nodes = base_->docs().NodeCount();
  if (node < base_nodes) return base_->docs().DocOf(node);
  if (node >= CombinedNodeCount()) return doc::kInvalidDoc;
  // Delta nodes are assigned densely per document; doc_first_node_ is
  // ascending, so the owner is the last doc whose first node is <= node.
  auto it = std::upper_bound(doc_first_node_.begin(),
                             doc_first_node_.end(), node);
  const size_t idx = static_cast<size_t>(it - doc_first_node_.begin());
  return static_cast<doc::DocId>(base_->docs().DocumentCount() + idx - 1);
}

Status InstanceDelta::ValidateKeyword(KeywordId keyword) const {
  if (keyword == kInvalidKeyword) return Status::OK();
  if (keyword >= CombinedKeywordCount()) {
    return Status::InvalidArgument("keyword id out of range for delta");
  }
  return Status::OK();
}

KeywordId InstanceDelta::InternKeyword(std::string_view keyword) {
  if (!CheckBase().ok()) return kInvalidKeyword;
  KeywordId known = base_->vocabulary().Find(keyword);
  if (known != kInvalidKeyword) return known;
  auto it = overlay_index_.find(std::string(keyword));
  if (it != overlay_index_.end()) return it->second;
  KeywordId id = static_cast<KeywordId>(base_->vocabulary().size() +
                                        spellings_.size());
  spellings_.emplace_back(keyword);
  overlay_index_.emplace(spellings_.back(), id);
  return id;
}

std::vector<KeywordId> InstanceDelta::InternText(std::string_view text) {
  std::vector<KeywordId> out;
  for (const std::string& word : ExtractKeywords(text)) {
    out.push_back(InternKeyword(word));
  }
  return out;
}

Result<doc::DocId> InstanceDelta::AddDocument(doc::Document document,
                                              std::string uri,
                                              social::UserId poster) {
  S3_RETURN_IF_ERROR(CheckBase());
  if (poster >= base_->UserCount()) {
    return Status::InvalidArgument("unknown poster user id");
  }
  if (base_->docs().FindByUri(uri).ok() || new_uris_.contains(uri)) {
    return Status::AlreadyExists("document URI already registered: " + uri);
  }
  for (uint32_t local = 0; local < document.NodeCount(); ++local) {
    for (KeywordId k : document.node(local).keywords) {
      S3_RETURN_IF_ERROR(ValidateKeyword(k));
    }
  }
  doc::DocId id = static_cast<doc::DocId>(CombinedDocCount());
  doc_first_node_.push_back(
      static_cast<doc::NodeId>(CombinedNodeCount()));
  new_nodes_ += document.NodeCount();
  new_uris_.insert(uri);
  order_.push_back(OpKind::kDocument);
  docs_.push_back(DocOp{std::move(document), std::move(uri), poster});
  return id;
}

Status InstanceDelta::AddComment(doc::DocId comment, doc::NodeId target) {
  S3_RETURN_IF_ERROR(CheckBase());
  if (comment >= CombinedDocCount() || target >= CombinedNodeCount()) {
    return Status::InvalidArgument("unknown document or node in AddComment");
  }
  if (CombinedDocOf(target) == comment) {
    return Status::InvalidArgument("a document cannot comment on itself");
  }
  order_.push_back(OpKind::kComment);
  comments_.push_back(CommentOp{comment, target});
  return Status::OK();
}

Result<social::TagId> InstanceDelta::AddTagOnFragment(social::UserId author,
                                                      doc::NodeId subject,
                                                      KeywordId keyword) {
  S3_RETURN_IF_ERROR(CheckBase());
  if (author >= base_->UserCount()) {
    return Status::InvalidArgument("unknown tag author");
  }
  if (subject >= CombinedNodeCount()) {
    return Status::InvalidArgument("unknown tag subject node");
  }
  S3_RETURN_IF_ERROR(ValidateKeyword(keyword));
  social::TagId id = static_cast<social::TagId>(CombinedTagCount());
  order_.push_back(OpKind::kTag);
  tags_.push_back(TagOp{author, subject, keyword, /*on_tag=*/false});
  return id;
}

Result<social::TagId> InstanceDelta::AddTagOnTag(social::UserId author,
                                                 social::TagId subject,
                                                 KeywordId keyword) {
  S3_RETURN_IF_ERROR(CheckBase());
  if (author >= base_->UserCount()) {
    return Status::InvalidArgument("unknown tag author");
  }
  if (subject >= CombinedTagCount()) {
    return Status::InvalidArgument("unknown subject tag");
  }
  S3_RETURN_IF_ERROR(ValidateKeyword(keyword));
  social::TagId id = static_cast<social::TagId>(CombinedTagCount());
  order_.push_back(OpKind::kTag);
  tags_.push_back(TagOp{author, subject, keyword, /*on_tag=*/true});
  return id;
}

Status InstanceDelta::AddSocialEdge(social::UserId from, social::UserId to,
                                    double weight) {
  S3_RETURN_IF_ERROR(CheckBase());
  if (from >= base_->UserCount() || to >= base_->UserCount()) {
    return Status::InvalidArgument("unknown user id in social edge");
  }
  if (!(weight > 0.0 && weight <= 1.0)) {
    return Status::InvalidArgument("social edge weight must be in (0,1]");
  }
  order_.push_back(OpKind::kSocial);
  socials_.push_back(SocialOp{from, to, weight});
  return Status::OK();
}

void InstanceDelta::EncodeWalRecord(std::string* out) const {
  std::string payload;
  ByteWriter w(&payload);
  w.U64(base_generation());
  w.U64(base_ == nullptr ? 0 : base_->lineage());
  w.U32(static_cast<uint32_t>(spellings_.size()));
  for (const std::string& s : spellings_) w.Str(s);
  w.U32(static_cast<uint32_t>(order_.size()));
  size_t di = 0, ci = 0, ti = 0, si = 0;
  for (OpKind kind : order_) {
    w.U8(static_cast<uint8_t>(kind));
    switch (kind) {
      case OpKind::kDocument: {
        const DocOp& op = docs_[di++];
        w.Str(op.uri);
        w.U32(op.poster);
        doc::WriteDocumentTree(op.document, w);
        break;
      }
      case OpKind::kComment: {
        const CommentOp& op = comments_[ci++];
        w.U32(op.comment);
        w.U32(op.target);
        break;
      }
      case OpKind::kTag: {
        const TagOp& op = tags_[ti++];
        w.U8(op.on_tag ? 1 : 0);
        w.U32(op.author);
        w.U32(op.subject);
        w.U32(op.keyword);
        break;
      }
      case OpKind::kSocial: {
        const SocialOp& op = socials_[si++];
        w.U32(op.from);
        w.U32(op.to);
        w.F64(op.weight);
        break;
      }
    }
  }
  ByteWriter frame(out);
  frame.U32(kWalMagic);
  frame.U64(payload.size());
  frame.U32(Crc32(payload));
  out->append(payload);
}

Result<InstanceDelta::WalRecordInfo> InstanceDelta::PeekWalRecord(
    std::string_view bytes) {
  ByteReader r(bytes);
  const uint32_t magic = r.U32();
  if (r.failed() || magic != kWalMagic) {
    return Status::InvalidArgument("WAL record: bad magic");
  }
  const uint64_t size = r.U64();
  const uint32_t crc = r.U32();
  std::string_view payload = r.Bytes(static_cast<size_t>(size));
  if (r.failed()) {
    return Status::InvalidArgument("WAL record: truncated payload");
  }
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument("WAL record: checksum mismatch");
  }
  ByteReader p(payload);
  WalRecordInfo info;
  info.base_generation = p.U64();
  info.base_lineage = p.U64();
  if (p.failed()) {
    return Status::InvalidArgument("WAL record: payload too short");
  }
  info.record_bytes = kWalFrameHeader + static_cast<size_t>(size);
  return info;
}

Result<InstanceDelta> InstanceDelta::DecodeWalRecord(
    std::string_view bytes, size_t* consumed,
    std::shared_ptr<const S3Instance> base) {
  Result<WalRecordInfo> info = PeekWalRecord(bytes);
  if (!info.ok()) return info.status();
  if (base == nullptr || !base->finalized()) {
    return Status::FailedPrecondition(
        "WAL decode requires a finalized base snapshot");
  }
  if (info->base_generation != base->generation() ||
      info->base_lineage != base->lineage()) {
    return Status::InvalidArgument(
        "WAL record was built against generation " +
        std::to_string(info->base_generation) + ", base is generation " +
        std::to_string(base->generation()));
  }

  ByteReader p(bytes.substr(kWalFrameHeader,
                            info->record_bytes - kWalFrameHeader));
  p.Skip(16);  // generation + lineage, validated above
  auto bad = [&p](const std::string& why) {
    return Status::InvalidArgument("WAL record at byte " +
                                   std::to_string(p.offset()) + ": " + why);
  };

  InstanceDelta delta(std::move(base));
  const uint32_t n_spellings = p.U32();
  if (!p.FitsCount(n_spellings, 4)) return bad("spelling count truncated");
  for (uint32_t i = 0; i < n_spellings; ++i) {
    std::string spelling = p.Str();
    if (p.failed()) return bad("truncated spelling");
    const KeywordId expected = static_cast<KeywordId>(
        delta.base()->vocabulary().size() + i);
    if (delta.InternKeyword(spelling) != expected) {
      return bad("overlay spelling already interned: " + spelling);
    }
  }

  const uint32_t n_ops = p.U32();
  if (!p.FitsCount(n_ops, 1)) return bad("op count truncated");
  for (uint32_t i = 0; i < n_ops; ++i) {
    const uint8_t kind = p.U8();
    if (p.failed()) return bad("truncated op");
    switch (static_cast<OpKind>(kind)) {
      case OpKind::kDocument: {
        std::string uri = p.Str();
        const uint32_t poster = p.U32();
        if (p.failed()) return bad("malformed document op");
        Result<doc::Document> document = doc::ReadDocumentTree(
            p, delta.base()->vocabulary().size() + n_spellings);
        if (!document.ok()) {
          return bad(document.status().message());
        }
        Result<doc::DocId> added =
            delta.AddDocument(std::move(*document), std::move(uri), poster);
        if (!added.ok()) return added.status();
        break;
      }
      case OpKind::kComment: {
        const uint32_t comment = p.U32();
        const uint32_t target = p.U32();
        if (p.failed()) return bad("truncated comment op");
        S3_RETURN_IF_ERROR(delta.AddComment(comment, target));
        break;
      }
      case OpKind::kTag: {
        const uint8_t on_tag = p.U8();
        const uint32_t author = p.U32();
        const uint32_t subject = p.U32();
        const uint32_t keyword = p.U32();
        if (p.failed() || on_tag > 1) return bad("malformed tag op");
        Result<social::TagId> added =
            on_tag ? delta.AddTagOnTag(author, subject, keyword)
                   : delta.AddTagOnFragment(author, subject, keyword);
        if (!added.ok()) return added.status();
        break;
      }
      case OpKind::kSocial: {
        const uint32_t from = p.U32();
        const uint32_t to = p.U32();
        const double weight = p.F64();
        if (p.failed()) return bad("truncated social op");
        S3_RETURN_IF_ERROR(delta.AddSocialEdge(from, to, weight));
        break;
      }
      default:
        return bad("unknown op kind " + std::to_string(kind));
    }
  }
  if (!p.AtEnd()) return bad("trailing bytes after the op log");
  *consumed = info->record_bytes;
  return delta;
}

Status InstanceDelta::Replay(S3Instance& target) const {
  size_t di = 0, ci = 0, ti = 0, si = 0;
  for (OpKind kind : order_) {
    switch (kind) {
      case OpKind::kDocument: {
        const DocOp& op = docs_[di++];
        Result<doc::DocId> added =
            target.AddDocument(op.document, op.uri, op.poster);
        if (!added.ok()) return added.status();
        break;
      }
      case OpKind::kComment: {
        const CommentOp& op = comments_[ci++];
        S3_RETURN_IF_ERROR(target.AddComment(op.comment, op.target));
        break;
      }
      case OpKind::kTag: {
        const TagOp& op = tags_[ti++];
        Result<social::TagId> added =
            op.on_tag
                ? target.AddTagOnTag(op.author, op.subject, op.keyword)
                : target.AddTagOnFragment(op.author, op.subject,
                                          op.keyword);
        if (!added.ok()) return added.status();
        break;
      }
      case OpKind::kSocial: {
        const SocialOp& op = socials_[si++];
        S3_RETURN_IF_ERROR(
            target.AddSocialEdge(op.from, op.to, op.weight));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace s3::core
