#include "core/snapshot.h"

#include "common/str_util.h"
#include "core/serialization.h"
#include "core/snapshot_binary.h"

namespace s3::core {

const char* SnapshotFormatName(SnapshotFormat format) {
  switch (format) {
    case SnapshotFormat::kText:
      return "text";
    case SnapshotFormat::kBinary:
      return "binary";
  }
  return "?";
}

Result<SnapshotFormat> DetectSnapshotFormat(std::string_view bytes) {
  if (LooksLikeBinarySnapshot(bytes)) return SnapshotFormat::kBinary;
  if (StartsWith(bytes, "S3 v1")) return SnapshotFormat::kText;
  return Status::InvalidArgument(
      "unrecognized snapshot: neither the text header 'S3 v1' nor the "
      "binary snapshot magic");
}

Result<std::string> SaveSnapshot(const S3Instance& instance,
                                 SnapshotFormat format) {
  switch (format) {
    case SnapshotFormat::kText:
      return SaveInstance(instance);
    case SnapshotFormat::kBinary:
      return SaveBinarySnapshot(instance);
  }
  return Status::InvalidArgument("unknown snapshot format");
}

Result<std::shared_ptr<const S3Instance>> LoadSnapshot(
    std::string_view bytes) {
  Result<SnapshotFormat> format = DetectSnapshotFormat(bytes);
  if (!format.ok()) return format.status();
  if (*format == SnapshotFormat::kBinary) {
    return LoadBinarySnapshot(bytes);
  }
  Result<std::unique_ptr<S3Instance>> loaded = LoadInstance(bytes);
  if (!loaded.ok()) return loaded.status();
  S3_RETURN_IF_ERROR((*loaded)->Finalize());
  return std::shared_ptr<const S3Instance>(std::move(*loaded));
}

}  // namespace s3::core
