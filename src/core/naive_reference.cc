#include "core/naive_reference.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace s3::core {

using social::EntityId;
using social::EntityKind;

namespace {

// DFS over explicit paths. `entered` is the node the path entered; the
// next edge may leave any vertical neighbor, normalized by D(entered).
void EnumeratePaths(const S3Instance& inst, uint32_t entered_row,
                    double product, size_t remaining, double gamma,
                    double c_gamma, size_t depth,
                    std::vector<double>& acc) {
  if (remaining == 0) return;
  const auto& edges = inst.edges();
  const auto& layout = inst.layout();
  EntityId entered = layout.Entity(entered_row);

  // Collect the outgoing edges of neigh(entered) ∪ {entered} and the
  // normalization denominator.
  std::vector<uint32_t> out_edges(edges.OutEdges(entered));
  double denom = edges.OutWeight(entered);
  if (entered.kind() == EntityKind::kFragment) {
    for (doc::NodeId v : inst.docs().VerticalNeighbors(entered.index())) {
      EntityId ve = EntityId::Fragment(v);
      denom += edges.OutWeight(ve);
      const auto& oe = edges.OutEdges(ve);
      out_edges.insert(out_edges.end(), oe.begin(), oe.end());
    }
  }
  if (denom <= 0.0) return;

  for (uint32_t eidx : out_edges) {
    const social::NetEdge& e = edges.edges()[eidx];
    const double nw = e.weight / denom;
    const uint32_t target_row = layout.Row(e.target);
    const double p = product * nw;
    acc[target_row] +=
        c_gamma * p / std::pow(gamma, static_cast<double>(depth + 1));
    EnumeratePaths(inst, target_row, p, remaining - 1, gamma, c_gamma,
                   depth + 1, acc);
  }
}

}  // namespace

std::vector<double> NaiveProx(const S3Instance& instance,
                              social::UserId seeker, size_t max_len,
                              double gamma) {
  const double c_gamma = CGamma(gamma);
  std::vector<double> acc(instance.layout().total(), 0.0);
  const uint32_t seeker_row = instance.RowOfUser(seeker);
  acc[seeker_row] += c_gamma;  // the empty path
  EnumeratePaths(instance, seeker_row, 1.0, max_len, gamma, c_gamma, 0,
                 acc);
  return acc;
}

std::vector<double> NaiveBestPathProx(const S3Instance& instance,
                                      social::UserId seeker, size_t max_len,
                                      double gamma) {
  const double c_gamma = CGamma(gamma);
  const auto& matrix = instance.matrix();
  const uint32_t total = instance.layout().total();
  // Max-product Dijkstra over T entries, each step damped by 1/γ.
  std::vector<double> best(total, 0.0);
  std::vector<size_t> hops(total, 0);
  using Item = std::pair<double, uint32_t>;
  std::priority_queue<Item> pq;
  const uint32_t seeker_row = instance.RowOfUser(seeker);
  best[seeker_row] = 1.0;
  pq.push({1.0, seeker_row});
  while (!pq.empty()) {
    auto [p, row] = pq.top();
    pq.pop();
    if (p < best[row]) continue;
    if (hops[row] >= max_len) continue;
    for (const auto& [col, w] : matrix.Row(row)) {
      double np = p * w / gamma;
      if (np > best[col]) {
        best[col] = np;
        hops[col] = hops[row] + 1;
        pq.push({np, col});
      }
    }
  }
  std::vector<double> prox(total, 0.0);
  for (uint32_t row = 0; row < total; ++row) {
    if (row == seeker_row) {
      prox[row] = c_gamma;  // the empty path is the best path
    } else if (best[row] > 0.0) {
      prox[row] = c_gamma * best[row];
    }
  }
  return prox;
}

std::vector<ResultEntry> NaiveSearchWithProx(
    const S3Instance& instance, const Query& query,
    const S3kOptions& options, const std::vector<double>& prox) {
  // Semantic extension.
  QueryExtension ext(query.keywords.size());
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    if (options.use_semantics) {
      for (KeywordId k : instance.ExtendKeyword(query.keywords[i])) {
        ext[i].insert(k);
      }
    } else {
      ext[i].insert(query.keywords[i]);
    }
  }

  // Score every candidate of every component.
  ConnectionBuilder builder(instance, options.score.eta);
  struct Scored {
    doc::NodeId node;
    double score;
  };
  std::vector<Scored> scored;
  for (social::ComponentId c = 0;
       c < instance.components().ComponentCount(); ++c) {
    ComponentCandidates cc = builder.Build(c, ext);
    for (const Candidate& cand : cc.candidates) {
      double s = CandidateScore(cand, prox);
      if (s > 0.0) scored.push_back(Scored{cand.node, s});
    }
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a,
                                             const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });

  // Greedy top-k with the vertical-neighbor exclusion (Def. 3.2).
  std::vector<ResultEntry> out;
  for (const Scored& s : scored) {
    bool conflict = false;
    for (const ResultEntry& r : out) {
      if (instance.docs().AreVerticalNeighbors(s.node, r.node)) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    out.push_back(ResultEntry{s.node, s.score, s.score});
    if (out.size() == options.k) break;
  }
  return out;
}

std::vector<ResultEntry> NaiveSearch(const S3Instance& instance,
                                     const Query& query,
                                     const S3kOptions& options,
                                     size_t max_len) {
  std::vector<double> prox =
      NaiveProx(instance, query.seeker, max_len, options.score.gamma);
  return NaiveSearchWithProx(instance, query, options, prox);
}

}  // namespace s3::core
