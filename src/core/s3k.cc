#include "core/s3k.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>
#include <unordered_map>

#include "common/timer.h"
#include "social/transition_matrix.h"

namespace s3::core {

namespace {

using social::ComponentId;
using social::Frontier;

}  // namespace

S3kSearcher::S3kSearcher(const S3Instance& instance, S3kOptions options)
    : instance_(instance), options_(options) {}

Result<std::vector<ResultEntry>> S3kSearcher::Search(const Query& query,
                                                     SearchStats* stats) {
  if (!instance_.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (query.seeker >= instance_.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  if (query.keywords.empty()) {
    return Status::InvalidArgument("empty keyword set");
  }
  if (query.keywords.size() > 64) {
    return Status::InvalidArgument("queries are limited to 64 keywords");
  }

  if (options_.threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
  auto parallel_for = [&](size_t n, const std::function<void(size_t)>& fn,
                          size_t min_parallel) {
    if (pool_ == nullptr || n < min_parallel) {
      for (size_t i = 0; i < n; ++i) fn(i);
    } else {
      pool_->ParallelFor(n, fn);
    }
  };

  WallTimer timer;
  SearchStats local_stats;
  SearchStats& st = stats ? *stats : local_stats;
  st = SearchStats{};

  const double gamma = options_.score.gamma;
  const double c_gamma = CGamma(gamma);
  const size_t n_keywords = query.keywords.size();

  // ---- 1. Semantic extension of the query keywords.
  QueryExtension ext(n_keywords);
  for (size_t i = 0; i < n_keywords; ++i) {
    if (options_.use_semantics) {
      for (KeywordId k : instance_.ExtendKeyword(query.keywords[i])) {
        ext[i].insert(k);
      }
    } else {
      ext[i].insert(query.keywords[i]);
    }
    st.extension_keywords += ext[i].size();
  }

  // ---- 2. Passing components: every query keyword (or an extension
  // member) occurs in the component.
  const uint64_t full_mask =
      n_keywords == 64 ? ~0ull : ((1ull << n_keywords) - 1);
  std::unordered_map<ComponentId, uint64_t> comp_mask;
  for (size_t i = 0; i < n_keywords; ++i) {
    for (KeywordId k : ext[i]) {
      for (ComponentId c : instance_.ComponentsWithKeyword(k)) {
        comp_mask[c] |= (1ull << i);
      }
    }
  }
  std::vector<ComponentId> passing;
  for (const auto& [c, mask] : comp_mask) {
    if (mask == full_mask) passing.push_back(c);
  }
  std::sort(passing.begin(), passing.end());
  st.components_passing = passing.size();

  // ---- 3. Candidate construction per passing component (the paper's
  // GetDocuments, run eagerly; exploration refines only prox).
  std::vector<ComponentCandidates> per_comp(passing.size());
  parallel_for(
      passing.size(),
      [&](size_t i) {
        ConnectionBuilder builder(instance_, options_.score.eta);
        per_comp[i] = builder.Build(passing[i], ext);
      },
      /*min_parallel=*/8);

  struct Cand {
    Candidate data;
    uint32_t comp_slot;  // index into `passing`
    double lower = 0.0;
    double upper = 0.0;
    bool alive = true;
  };
  std::vector<Cand> cands;
  std::unordered_map<ComponentId, uint32_t> comp_slot_of;
  std::vector<std::vector<uint32_t>> comp_cands(passing.size());
  std::vector<double> comp_cap(passing.size(), 0.0);
  for (size_t i = 0; i < passing.size(); ++i) {
    comp_slot_of[passing[i]] = static_cast<uint32_t>(i);
    comp_cap[i] = per_comp[i].max_cap;
    for (Candidate& c : per_comp[i].candidates) {
      comp_cands[i].push_back(static_cast<uint32_t>(cands.size()));
      st.candidate_nodes.push_back(c.node);
      cands.push_back(
          Cand{std::move(c), static_cast<uint32_t>(i), 0.0, 0.0, true});
    }
  }
  st.candidates_total = cands.size();

  // Component slots ordered by cap (for the unexplored-docs threshold).
  std::vector<uint32_t> slots_by_cap(passing.size());
  for (size_t i = 0; i < passing.size(); ++i) slots_by_cap[i] = i;
  std::sort(slots_by_cap.begin(), slots_by_cap.end(),
            [&](uint32_t a, uint32_t b) { return comp_cap[a] > comp_cap[b]; });

  // ---- 4. Exploration state.
  const social::TransitionMatrix& matrix = instance_.matrix();
  const uint32_t total_rows = instance_.layout().total();
  std::vector<double> all_prox(total_rows, 0.0);
  const uint32_t seeker_row = instance_.RowOfUser(query.seeker);
  all_prox[seeker_row] = c_gamma;  // the empty path

  Frontier frontier, next;
  frontier.Init(total_rows);
  next.Init(total_rows);
  frontier.Set(seeker_row, 1.0);

  std::vector<bool> discovered(passing.size(), false);
  std::vector<uint32_t> active;  // candidate indices in discovered comps
  size_t n_discovered = 0;
  bool frontier_exhausted = false;

  auto discover_row = [&](uint32_t row) {
    ComponentId c = instance_.components().OfRow(row);
    if (c == social::kInvalidComponent) return;
    auto it = comp_slot_of.find(c);
    if (it == comp_slot_of.end()) return;
    uint32_t slot = it->second;
    if (discovered[slot]) return;
    discovered[slot] = true;
    ++n_discovered;
    for (uint32_t ci : comp_cands[slot]) active.push_back(ci);
  };

  auto greedy_topk =
      [&](const std::vector<uint32_t>& order) -> std::vector<uint32_t> {
    // First k alive candidates in `order` with no two vertical
    // neighbors (Definition 3.2's answer constraint).
    std::vector<uint32_t> picked;
    for (uint32_t ci : order) {
      if (!cands[ci].alive) continue;
      bool conflict = false;
      for (uint32_t pi : picked) {
        if (instance_.docs().AreVerticalNeighbors(cands[ci].data.node,
                                                  cands[pi].data.node)) {
          conflict = true;
          break;
        }
      }
      if (!conflict) {
        picked.push_back(ci);
        if (picked.size() == options_.k) break;
      }
    }
    return picked;
  };

  auto make_result = [&](const std::vector<uint32_t>& picked) {
    std::vector<ResultEntry> out;
    out.reserve(picked.size());
    for (uint32_t ci : picked) {
      out.push_back(
          ResultEntry{cands[ci].data.node, cands[ci].lower, cands[ci].upper});
    }
    st.components_discovered = n_discovered;
    st.elapsed_seconds = timer.ElapsedSeconds();
    return out;
  };

  // ---- 5. Main loop.
  std::vector<uint32_t> order;  // active candidates sorted by upper desc
  for (size_t n = 1; n <= options_.max_iterations; ++n) {
    st.iterations = n;

    // ExploreStep: border := border · T ; allProx += Cγ · border / γⁿ.
    if (!frontier_exhausted) {
      if (pool_ != nullptr && frontier.nonzero.size() > total_rows / 8) {
        matrix.PropagateParallel(frontier, next, *pool_);
      } else {
        matrix.Propagate(frontier, next);
      }
      std::swap(frontier, next);
      if (frontier.nonzero.empty()) frontier_exhausted = true;
      const double factor = c_gamma * std::pow(gamma, -static_cast<double>(n));
      for (uint32_t row : frontier.nonzero) {
        all_prox[row] += factor * frontier.values[row];
        discover_row(row);
      }
    }

    // Bounds. Once the frontier is exhausted there are no longer paths
    // at all: allProx is exact and the tail is 0.
    const double tail =
        frontier_exhausted ? 0.0 : TailBound(gamma, n);
    parallel_for(
        active.size(),
        [&](size_t i) {
          Cand& c = cands[active[i]];
          if (!c.alive) return;
          c.lower = CandidateLowerBound(c.data, all_prox);
          c.upper = CandidateUpperBound(c.data, all_prox, tail);
        },
        /*min_parallel=*/512);

    // Threshold: best possible score of any undiscovered document.
    double threshold = 0.0;
    if (!frontier_exhausted) {
      const double b = UndiscoveredBound(gamma, n);
      for (uint32_t slot : slots_by_cap) {
        if (!discovered[slot]) {
          threshold = comp_cap[slot] *
                      std::pow(std::min(1.0, b),
                               static_cast<double>(n_keywords));
          break;
        }
      }
    }

    // CleanCandidatesList: drop candidates dominated by a vertical
    // neighbor (sound forever: lower bounds only grow, uppers only
    // shrink). Only same-document candidates can be neighbors.
    std::unordered_map<doc::DocId, std::vector<uint32_t>> by_doc;
    for (uint32_t ci : active) {
      if (cands[ci].alive) {
        by_doc[instance_.docs().DocOf(cands[ci].data.node)].push_back(ci);
      }
    }
    for (auto& [d, list] : by_doc) {
      if (list.size() < 2) continue;
      for (uint32_t a : list) {
        for (uint32_t b : list) {
          if (a == b || !cands[a].alive || !cands[b].alive) continue;
          if (!instance_.docs().AreVerticalNeighbors(cands[a].data.node,
                                                     cands[b].data.node)) {
            continue;
          }
          // b dominates a?
          bool dominates =
              cands[b].lower > cands[a].upper + options_.epsilon ||
              (std::abs(cands[b].lower - cands[a].upper) <=
                   options_.epsilon &&
               cands[b].lower >= cands[b].upper - options_.epsilon &&
               cands[b].data.node < cands[a].data.node);
          if (dominates) {
            cands[a].alive = false;
            ++st.candidates_cleaned;
          }
        }
      }
    }

    // StopCondition (paper Algorithm 2).
    order.clear();
    for (uint32_t ci : active) {
      if (cands[ci].alive) order.push_back(ci);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (cands[a].upper != cands[b].upper) {
        return cands[a].upper > cands[b].upper;
      }
      return cands[a].data.node < cands[b].data.node;
    });

    if (order.size() >= options_.k || frontier_exhausted ||
        threshold <= options_.epsilon) {
      // Check the first k alive candidates: pairwise non-neighbors?
      size_t kk = std::min(options_.k, order.size());
      bool neighbor_clash = false;
      for (size_t i = 0; i < kk && !neighbor_clash; ++i) {
        for (size_t j = i + 1; j < kk; ++j) {
          if (instance_.docs().AreVerticalNeighbors(
                  cands[order[i]].data.node, cands[order[j]].data.node)) {
            neighbor_clash = true;
            break;
          }
        }
      }
      if (!neighbor_clash) {
        double min_topk_lower = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < kk; ++i) {
          min_topk_lower = std::min(min_topk_lower, cands[order[i]].lower);
        }
        double max_non_topk_upper =
            order.size() > kk ? cands[order[kk]].upper : 0.0;
        if (std::max(max_non_topk_upper, threshold) <=
            min_topk_lower + options_.epsilon) {
          // With fewer than k results we are only done once nothing
          // undiscovered could still qualify (threshold ~ 0).
          if (kk == options_.k || threshold <= options_.epsilon) {
            st.converged = true;
            return make_result(
                std::vector<uint32_t>(order.begin(), order.begin() + kk));
          }
        }
      }
    }

    if (frontier_exhausted && n_discovered == passing.size()) {
      // Everything reachable is explored exactly; ties included.
      st.converged = true;
      return make_result(greedy_topk(order));
    }
    if (frontier_exhausted && threshold <= options_.epsilon) {
      // Unreached components can only hold zero-score documents.
      st.converged = true;
      return make_result(greedy_topk(order));
    }
    if (options_.time_budget_seconds > 0.0 &&
        timer.ElapsedSeconds() >= options_.time_budget_seconds) {
      break;  // anytime termination on budget exhaustion
    }
  }

  // Anytime termination (paper §4.1): return the best k known now.
  return make_result(greedy_topk(order));
}

}  // namespace s3::core
