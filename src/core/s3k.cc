#include "core/s3k.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <thread>
#include <unordered_map>

#include "common/timer.h"
#include "core/bound_engine.h"
#include "social/transition_matrix.h"

namespace s3::core {

namespace {

using social::ComponentId;
using social::Frontier;

// Runs fn(i) for i in [0, n): striped over `pool` when it exists and
// the trip count is worth the dispatch, serial otherwise.
void MaybeParallelFor(ThreadPool* pool, size_t n,
                      const std::function<void(size_t)>& fn,
                      size_t min_parallel) {
  if (pool == nullptr || n < min_parallel) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->ParallelFor(n, fn);
  }
}

// Resets a scratch frontier for a new query (or batch), reusing the
// dense buffer when the instance size and lane count are unchanged
// (O(nonzero · lanes) instead of O(rows · lanes)).
void ResetFrontier(social::BatchFrontier& f, size_t total_rows,
                   size_t lanes) {
  if (f.lanes == lanes && f.values.size() == total_rows * lanes) {
    f.Clear();
  } else {
    f.Init(total_rows, lanes);
  }
}

// Minimum static per-iteration work (reverse-index entries + bound
// arithmetic terms) before the component fan-out pays for its task
// dispatch; below it the iteration runs serially or lane-striped.
constexpr uint64_t kMinFanoutWork = 2048;

}  // namespace

Status QueryOptions::Validate() const {
  if (!std::isfinite(epsilon_approx) || epsilon_approx < 0.0) {
    return Status::InvalidArgument(
        "epsilon_approx must be finite and non-negative");
  }
  if (epsilon_approx > 0.0 && mode != QueryMode::kAnytime) {
    return Status::InvalidArgument(
        "epsilon_approx > 0 requires mode = kAnytime");
  }
  if (!std::isfinite(deadline_seconds) || deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "deadline_seconds must be finite and non-negative");
  }
  return Status::OK();
}

BatchSeeker ResolveLane(const QueryRequest& request,
                        const S3kOptions& defaults) {
  BatchSeeker lane;
  lane.seeker = request.seeker;
  lane.k = request.options.k > 0 ? request.options.k : defaults.k;
  lane.epsilon_approx = request.options.mode == QueryMode::kAnytime
                            ? request.options.epsilon_approx
                            : 0.0;
  // Deprecated-alias mapping: a request without its own deadline
  // inherits S3kOptions::time_budget_seconds, so legacy budget-based
  // deployments behave identically through the new surface.
  lane.deadline_seconds = request.options.deadline_seconds > 0.0
                              ? request.options.deadline_seconds
                              : defaults.time_budget_seconds;
  lane.trace = request.options.trace;
  return lane;
}

Result<CandidatePlan> BuildCandidatePlan(
    const S3Instance& instance, const std::vector<KeywordId>& keywords,
    bool use_semantics, double eta, ThreadPool* pool) {
  if (!instance.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("empty keyword set");
  }
  if (keywords.size() > 64) {
    return Status::InvalidArgument("queries are limited to 64 keywords");
  }

  CandidatePlan plan;
  plan.keywords = keywords;
  const size_t n_keywords = keywords.size();

  // ---- 1. Semantic extension of the query keywords.
  plan.ext.resize(n_keywords);
  for (size_t i = 0; i < n_keywords; ++i) {
    if (use_semantics) {
      for (KeywordId k : instance.ExtendKeyword(keywords[i])) {
        plan.ext[i].insert(k);
      }
    } else {
      plan.ext[i].insert(keywords[i]);
    }
    plan.extension_keywords += plan.ext[i].size();
  }

  // ---- 2. Passing components: every query keyword (or an extension
  // member) occurs in the component.
  const uint64_t full_mask =
      n_keywords == 64 ? ~0ull : ((1ull << n_keywords) - 1);
  std::unordered_map<ComponentId, uint64_t> comp_mask;
  for (size_t i = 0; i < n_keywords; ++i) {
    for (KeywordId k : plan.ext[i]) {
      for (ComponentId c : instance.ComponentsWithKeyword(k)) {
        comp_mask[c] |= (1ull << i);
      }
    }
  }
  for (const auto& [c, mask] : comp_mask) {
    if (mask == full_mask) plan.passing.push_back(c);
  }
  std::sort(plan.passing.begin(), plan.passing.end());
  plan.comp_reach_root.reserve(plan.passing.size());
  for (ComponentId c : plan.passing) {
    plan.comp_reach_root.push_back(instance.ReachRootOfComponent(c));
  }

  // ---- 3. Candidate construction per passing component (the paper's
  // GetDocuments, run eagerly; exploration refines only prox).
  plan.per_comp.resize(plan.passing.size());
  MaybeParallelFor(
      pool, plan.passing.size(),
      [&](size_t i) {
        ConnectionBuilder builder(instance, eta);
        plan.per_comp[i] = builder.Build(plan.passing[i], plan.ext);
      },
      /*min_parallel=*/8);

  return plan;
}

S3kSearcher::S3kSearcher(const S3Instance& instance, S3kOptions options)
    : instance_(instance), options_(options) {
  // Thread-count resolution. The S3_TEST_THREADS override applies only
  // when the caller left the default (1): it lets CI run the whole
  // suite through the parallel path — safe because results are
  // bit-for-bit identical at every thread count — without touching
  // call sites that picked a width deliberately.
  if (options_.threads == 1) {
    if (const char* env = std::getenv("S3_TEST_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 0) options_.threads = static_cast<unsigned>(v);
    }
  }
  if (options_.threads == 0) {  // auto
    options_.threads = std::thread::hardware_concurrency();
    if (options_.threads == 0) options_.threads = 1;
  }
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

const std::vector<uint32_t>& S3kSearcher::RowsOfReachRoot(uint32_t root) {
  if (!rows_by_root_built_) {
    const social::EntityLayout& layout = instance_.layout();
    const uint32_t total = layout.total();
    for (uint32_t row = 0; row < total; ++row) {
      const social::UserId owner =
          instance_.OwnerOfEntity(layout.Entity(row));
      rows_by_root_[instance_.ReachRootOfUser(owner)].push_back(row);
    }
    rows_by_root_built_ = true;  // ascending pass → each list is sorted
  }
  return rows_by_root_[root];
}

Result<std::vector<ResultEntry>> S3kSearcher::Search(
    const QueryRequest& query, SearchStats* stats) {
  WallTimer timer;
  // Reject an unknown seeker before paying for candidate construction.
  if (instance_.finalized() && query.seeker >= instance_.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  auto plan = BuildCandidatePlan(instance_, query.keywords,
                                 options_.use_semantics, options_.score.eta,
                                 pool_.get());
  if (!plan.ok()) return plan.status();
  auto result = SearchWithPlan(query, *plan, stats);
  if (stats != nullptr && result.ok()) {
    // SearchWithPlan timed only the exploration; report the full query.
    stats->elapsed_seconds = timer.ElapsedSeconds();
  }
  return result;
}

Result<std::vector<ResultEntry>> S3kSearcher::SearchWithPlan(
    const QueryRequest& query, const CandidatePlan& plan,
    SearchStats* stats) {
  S3_RETURN_IF_ERROR(query.options.Validate());
  // The single-seeker search *is* the batched search at width 1: one
  // loop, one set of invariants, and the per-query tests exercise the
  // exact code the batched server path runs.
  auto batched = SearchBatchWithPlan({ResolveLane(query, options_)}, plan);
  if (!batched.ok()) return batched.status();
  if (stats != nullptr) *stats = std::move((*batched)[0].stats);
  return std::move((*batched)[0].entries);
}

Result<std::vector<BatchQueryResult>> S3kSearcher::SearchBatchWithPlan(
    const std::vector<BatchSeeker>& batch, const CandidatePlan& plan) {
  if (!instance_.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (batch.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  if (batch.size() > kMaxBatch) {
    return Status::InvalidArgument("batch exceeds kMaxBatch seekers");
  }
  for (const BatchSeeker& bs : batch) {
    if (bs.seeker >= instance_.UserCount()) {
      return Status::InvalidArgument("unknown seeker");
    }
    if (!std::isfinite(bs.epsilon_approx) || bs.epsilon_approx < 0.0) {
      return Status::InvalidArgument(
          "epsilon_approx must be finite and non-negative");
    }
    if (!std::isfinite(bs.deadline_seconds) || bs.deadline_seconds < 0.0) {
      return Status::InvalidArgument(
          "deadline_seconds must be finite and non-negative");
    }
  }
  if (plan.n_keywords() == 0) {
    return Status::InvalidArgument("empty candidate plan");
  }

  WallTimer timer;
  const size_t B = batch.size();
  // Lane count padded to a kernel-friendly width; lanes in [B, L) hold
  // no mass, activate nothing, and compute on zeros only.
  const size_t L = social::PadLanes(B);

  const double gamma = options_.score.gamma;
  const double c_gamma = CGamma(gamma);
  const size_t n_keywords = plan.n_keywords();
  const size_t n_slots = plan.passing.size();
  const uint32_t total_rows = instance_.layout().total();

  std::vector<double> comp_cap(n_slots, 0.0);
  for (size_t i = 0; i < n_slots; ++i) {
    comp_cap[i] = plan.per_comp[i].max_cap;
  }

  // Flat incremental scoring state over all candidates, one lane per
  // batch member (reads the per-component source lists; the plan
  // itself stays untouched, so a cached plan serves any number of
  // concurrent engines). The static structure — candidate CSR, reverse
  // index, neighbor adjacency — is built once and shared by every
  // lane: this construction amortization plus the one-walk-per-
  // iteration lane streaming is the whole point of batching.
  CandidateBoundEngine engine(instance_.docs(), n_keywords, total_rows,
                              plan.per_comp, L);

  // ---- intra-query scheduling. Effective concurrency = the calling
  // thread + pool helpers, capped by the serving layer's per-query
  // thread limit (the helper cap divides one machine among busy
  // service workers without resizing pools).
  size_t eff_threads = 1 + (pool_ != nullptr ? pool_->WorkerCount() : 0);
  if (thread_limit_ > 0) {
    eff_threads = std::min(eff_threads, static_cast<size_t>(thread_limit_));
  }
  if (pool_ != nullptr) pool_->SetHelperLimit(eff_threads - 1);
  // Component fan-out verdict: shard the per-iteration body across
  // component slots only when the plan is genuinely multi-component,
  // the per-iteration work is worth a dispatch, and no single slot
  // dominates (a plan with one 90% slot serializes on its fattest task
  // anyway — lane/candidate striping serves it better). Slot work is
  // static — rev entries folded plus candidate-bound arithmetic — so
  // the verdict is taken once per query. The fan-out changes schedules
  // only, never results (see bound_engine.h's sharding argument).
  bool use_fanout = false;
  if (pool_ != nullptr && eff_threads > 1 && n_slots >= 2) {
    uint64_t work = 0, max_work = 0;
    for (size_t t = 0; t < n_slots; ++t) {
      const uint64_t w =
          engine.SlotRevEntries(static_cast<uint32_t>(t)) +
          static_cast<uint64_t>(engine.SlotEnd(static_cast<uint32_t>(t)) -
                                engine.SlotBegin(static_cast<uint32_t>(t))) *
              n_keywords * L;
      work += w;
      max_work = std::max(max_work, w);
    }
    use_fanout = work >= kMinFanoutWork && max_work * 4 <= work * 3;
  }

  std::vector<BatchQueryResult> out(B);
  std::vector<size_t> ks(B);
  // Per-lane anytime parameters. A zero deadline inherits the
  // deprecated options_.time_budget_seconds (the alias mapping), so
  // the legacy global budget and a per-request deadline are one
  // mechanism; eps == 0 lanes never touch the anytime exit at all.
  std::vector<double> lane_eps(B), lane_deadline(B);
  // Per-lane iteration tracing (observability only): untraced lanes
  // skip the record entirely, so the common case allocates nothing.
  std::vector<uint8_t> lane_trace(B, 0);
  bool any_deadline = false;
  for (size_t s = 0; s < B; ++s) {
    lane_eps[s] = batch[s].epsilon_approx;
    lane_deadline[s] = batch[s].deadline_seconds > 0.0
                           ? batch[s].deadline_seconds
                           : options_.time_budget_seconds;
    any_deadline = any_deadline || lane_deadline[s] > 0.0;
    lane_trace[s] = batch[s].trace ? 1 : 0;
  }
  for (size_t s = 0; s < B; ++s) {
    ks[s] = batch[s].k > 0 ? batch[s].k : options_.k;
    SearchStats& st = out[s].stats;
    st.used_component_fanout = use_fanout;
    st.extension_keywords = plan.extension_keywords;
    st.components_passing = n_slots;
    st.candidates_total = engine.size();
    st.candidate_nodes.reserve(engine.size());
    for (uint32_t ci = 0; ci < engine.size(); ++ci) {
      st.candidate_nodes.push_back(engine.node(ci));
    }
  }

  // Component slots ordered by cap (for the unexplored-docs threshold).
  std::vector<uint32_t> slots_by_cap(n_slots);
  for (size_t i = 0; i < n_slots; ++i) slots_by_cap[i] = i;
  std::sort(slots_by_cap.begin(), slots_by_cap.end(),
            [&](uint32_t a, uint32_t b) { return comp_cap[a] > comp_cap[b]; });

  // Discovery watch lists, one per component slot: the member rows of
  // the passing component. A component is discovered in a lane the
  // first time that lane's frontier holds mass on one of its rows; a
  // row is compacted away once every unfinished lane has discovered
  // its slot, so each list only shrinks. Slot-local lists let the
  // fan-out scan them inside the per-slot tasks; iterating slots in
  // order reproduces the old slot-major interleaved sweep exactly.
  std::vector<std::vector<uint32_t>> slot_watch(n_slots);
  for (size_t i = 0; i < n_slots; ++i) {
    const std::vector<uint32_t>& members =
        instance_.components().Members(plan.passing[i]);
    slot_watch[i].assign(members.begin(), members.end());
  }

  // ---- 4. Exploration state.
  const social::TransitionMatrix& matrix = instance_.matrix();

  // Reachability pruning: a passing component whose owners' reach root
  // differs from the seeker's can never be discovered (its sources can
  // never gain proximity), so its cap must not hold the termination
  // threshold up. Plans built by BuildCandidatePlan always carry the
  // roots; a hand-built plan without them degrades to the conservative
  // everything-reachable behavior.
  const bool have_reach = plan.comp_reach_root.size() == n_slots;
  std::vector<uint32_t> seeker_root(B);
  for (size_t s = 0; s < B; ++s) {
    seeker_root[s] = instance_.ReachRootOfUser(batch[s].seeker);
  }
  auto slot_reachable = [&](uint32_t slot, size_t s) {
    return !have_reach || plan.comp_reach_root[slot] == seeker_root[s];
  };

  // Pull-restricted propagation: frontier mass seeded at a seeker can
  // only ever reach rows whose owner shares the seeker's reach root
  // (T's entries never cross reach components), so when every lane
  // agrees on the root, the dense (pull) propagation step can gather
  // just those rows — every skipped row gathers exactly 0.0, keeping
  // the step bit-for-bit. Only worth the indirection when the
  // restriction actually cuts the sweep down.
  const std::vector<uint32_t>* pull_rows = nullptr;
  bool same_root = true;
  for (size_t s = 1; s < B; ++s) {
    same_root = same_root && seeker_root[s] == seeker_root[0];
  }
  if (same_root) {
    const std::vector<uint32_t>& rr = RowsOfReachRoot(seeker_root[0]);
    if (rr.size() * 2 <= total_rows) pull_rows = &rr;
  }

  social::BatchFrontier& frontier = frontier_;
  social::BatchFrontier& next = next_;
  ResetFrontier(frontier, total_rows, L);
  ResetFrontier(next, total_rows, L);
  for (size_t s = 0; s < B; ++s) {
    const uint32_t seeker_row = instance_.RowOfUser(batch[s].seeker);
    frontier.Set(seeker_row, s, 1.0);
    engine.ApplyDeltaLane(seeker_row, s, c_gamma);  // the empty path
  }

  // Per-lane loop state. `finished` marks members whose result is
  // recorded (converged or never started); their frontier lane is
  // zeroed, so they cost nothing but padded-lane arithmetic.
  std::vector<uint8_t> discovered(n_slots * L, 0);  // [slot*L + lane]
  std::vector<size_t> n_discovered(B, 0);
  std::vector<uint8_t> exhausted(B, 0);
  std::vector<uint8_t> finished(B, 0);
  std::vector<double> last_threshold(B, 0.0);
  size_t live = B;

  if (orders_.size() < B) orders_.resize(B);

  auto finish_lane = [&](size_t s, const std::vector<uint32_t>& picked) {
    SearchStats& st = out[s].stats;
    std::vector<ResultEntry>& entries = out[s].entries;
    entries.reserve(picked.size());
    st.kth_lower = 0.0;
    for (uint32_t ci : picked) {
      entries.push_back(ResultEntry{engine.node(ci), engine.lower(ci, s),
                                    engine.upper(ci, s)});
      st.kth_lower = entries.size() == 1
                         ? engine.lower(ci, s)
                         : std::min(st.kth_lower, engine.lower(ci, s));
    }
    // Bound on everything not returned: the remaining alive candidates
    // plus whatever an undiscovered reachable component could still
    // hold (the threshold at termination).
    st.remaining_upper = last_threshold[s];
    for (uint32_t ci : engine.ActiveCandidates(s)) {
      if (!engine.alive(ci, s)) continue;
      bool taken = false;  // picked is tiny (<= k): linear scan
      for (uint32_t p : picked) {
        if (p == ci) { taken = true; break; }
      }
      if (!taken) {
        st.remaining_upper =
            std::max(st.remaining_upper, engine.upper(ci, s));
      }
    }
    // The achieved certificate: the smallest eps for which the bounds
    // prove no omitted document beats the worst returned one by more
    // than (1+eps). The exact stop's *absolute* slack criterion
    // (remaining <= kth + epsilon tie-break) certifies 0 outright —
    // without it a converged answer whose kth lower bound is 0 would
    // report infinity off a ~1e-12 remainder. Otherwise an anytime
    // exit lands at <= the requested epsilon and a truncated search
    // reports whatever its bounds support (infinity when kth_lower is
    // 0 with mass still unaccounted for).
    if (st.remaining_upper <= st.kth_lower + options_.epsilon) {
      st.certified_epsilon = 0.0;
    } else if (st.kth_lower > 0.0) {
      st.certified_epsilon =
          std::max(0.0, st.remaining_upper / st.kth_lower - 1.0);
    } else {
      st.certified_epsilon = std::numeric_limits<double>::infinity();
    }
    st.components_discovered = n_discovered[s];
    st.elapsed_seconds = timer.ElapsedSeconds();
    finished[s] = 1;
    --live;
    // Drop out of the batch: no more frontier mass, no more deltas —
    // lanes are independent, so the survivors are unaffected.
    frontier.ZeroLane(s);
  };

  // Fan-out scratch. discovered_now is written slot-locally inside the
  // B1 tasks and applied at the serial barrier in canonical slot-major
  // / lane-minor order; slot_any_active tracks "some lane activated
  // this slot" (= union-list membership, per whole slots);
  // cleaned_now[t * B + s] carries the per-slot kill counts to the
  // barrier (an integer sum, so task order is immaterial).
  std::vector<uint8_t> discovered_now(n_slots * L, 0);
  std::vector<uint8_t> slot_any_active(n_slots, 0);
  std::vector<size_t> cleaned_now;
  if (use_fanout) {
    cleaned_now.assign(n_slots * B, 0);
    if (slot_orders_.size() < n_slots * B) slot_orders_.resize(n_slots * B);
  }

  // Runs one per-slot task per component slot: striped on the pool in
  // fan-out mode, in ascending slot order serially otherwise. Both
  // schedules produce identical state — the tasks write disjoint
  // per-slot ranges and every cross-slot effect goes through a
  // canonical-order barrier — so the mode is invisible in results.
  auto run_slots = [&](const std::function<void(size_t)>& fn) {
    if (use_fanout) {
      pool_->ParallelFor(n_slots, fn);
    } else {
      for (size_t t = 0; t < n_slots; ++t) fn(t);
    }
  };

  // Deterministic reduction for the fan-out's stop check: k-way merge
  // of the per-slot sorted orders under the same total-order
  // comparator the serial path sorts with ((upper desc, node asc);
  // nodes are unique), so the merged sequence is exactly what sorting
  // the concatenated lists would produce.
  struct SlotCursor {
    uint32_t slot;
    uint32_t idx;
  };
  std::vector<SlotCursor> merge_heap;
  auto merge_slot_orders = [&](size_t s, std::vector<uint32_t>& order) {
    auto before = [&](uint32_t a, uint32_t b) {
      if (engine.upper(a, s) != engine.upper(b, s)) {
        return engine.upper(a, s) > engine.upper(b, s);
      }
      return engine.node(a) < engine.node(b);
    };
    auto heap_cmp = [&](const SlotCursor& x, const SlotCursor& y) {
      return before(slot_orders_[y.slot * B + s][y.idx],
                    slot_orders_[x.slot * B + s][x.idx]);
    };
    merge_heap.clear();
    size_t total = 0;
    for (size_t t = 0; t < n_slots; ++t) {
      if (!discovered[t * L + s]) continue;
      const std::vector<uint32_t>& so = slot_orders_[t * B + s];
      if (!so.empty()) {
        merge_heap.push_back({static_cast<uint32_t>(t), 0});
        total += so.size();
      }
    }
    order.reserve(total);
    std::make_heap(merge_heap.begin(), merge_heap.end(), heap_cmp);
    while (!merge_heap.empty()) {
      std::pop_heap(merge_heap.begin(), merge_heap.end(), heap_cmp);
      SlotCursor& c = merge_heap.back();
      const std::vector<uint32_t>& so = slot_orders_[c.slot * B + s];
      order.push_back(so[c.idx]);
      if (++c.idx < so.size()) {
        std::push_heap(merge_heap.begin(), merge_heap.end(), heap_cmp);
      } else {
        merge_heap.pop_back();
      }
    }
  };

  // ---- 5. Main loop: one shared CSR walk per iteration, per-lane
  // bookkeeping per seeker. Per lane this runs exactly the
  // single-seeker sequence (a zero delta / zero mass is bitwise inert:
  // every folded quantity is non-negative, so x + 0.0 never flips a
  // bit), which is what makes batched results bit-for-bit equal to
  // per-query SearchWithPlan.
  double d[social::kMaxFrontierLanes];
  std::vector<double> tails(L, 0.0);
  // Which side of the push/pull crossover this iteration's propagation
  // ran (observability; false when no propagation happened).
  bool iter_used_pull = false;
  for (size_t n = 1; n <= options_.max_iterations && live > 0; ++n) {
    iter_used_pull = false;
    for (size_t s = 0; s < B; ++s) {
      if (!finished[s]) out[s].stats.iterations = n;
    }

    // ExploreStep: border := border · T ; allProx += Cγ · border / γⁿ.
    bool any_frontier = false;
    for (size_t s = 0; s < B; ++s) {
      if (!finished[s] && !exhausted[s]) any_frontier = true;
    }
    if (any_frontier) {
      matrix.PropagateBatchAdaptive(frontier, next, pool_.get(), pull_rows,
                                    &iter_used_pull);
      std::swap(frontier, next);
      for (size_t s = 0; s < B; ++s) {
        if (!finished[s] && !exhausted[s] && !frontier.LaneHasMass(s)) {
          exhausted[s] = 1;
        }
      }
      const double factor =
          c_gamma * std::pow(gamma, -static_cast<double>(n));
      // Fold deltas over the smaller domain: the sparse union frontier
      // (serial — a narrow frontier isn't worth a task dispatch), or
      // the rows that actually feed candidates, sharded by component
      // slot. Per partial sum the per-slot fold applies contributions
      // in the same ascending-row order as a global source-row sweep,
      // so both domains — under any slot schedule — produce
      // bit-identical sums.
      const std::vector<uint32_t>& src_rows = engine.SourceRows();
      const bool sparse_fold = frontier.nonzero.size() <= src_rows.size();
      if (sparse_fold) {
        for (uint32_t row : frontier.nonzero) {
          const double* v = &frontier.values[static_cast<size_t>(row) * L];
          bool any = false;
          for (size_t l = 0; l < L; ++l) {
            d[l] = factor * v[l];
            any = any || v[l] != 0.0;
          }
          if (any) engine.ApplyDeltaBatch(row, d);
        }
      }
      // B1: per-slot fold (dense domain) + discovery scan. Tasks write
      // disjoint state — slot-local partial sums, slot-local
      // discovered_now flags and watch lists — and the barrier below
      // applies activations in canonical order, so the schedule never
      // shows through.
      run_slots([&](size_t t) {
        if (!sparse_fold) {
          engine.FoldFrontierSlot(static_cast<uint32_t>(t),
                                  frontier.values.data(), factor);
        }
        std::vector<uint32_t>& watch = slot_watch[t];
        if (watch.empty()) return;
        size_t w = 0;
        for (uint32_t row : watch) {
          const double* v = &frontier.values[static_cast<size_t>(row) * L];
          bool keep = false;
          for (size_t s = 0; s < B; ++s) {
            if (finished[s] || discovered[t * L + s] ||
                discovered_now[t * L + s]) {
              continue;
            }
            if (v[s] != 0.0) {
              discovered_now[t * L + s] = 1;
            } else {
              keep = true;
            }
          }
          if (keep) watch[w++] = row;
        }
        watch.resize(w);
      });
      // Activation barrier, canonical slot-major / lane-minor order.
      // ActivateSlot appends to shared per-lane active lists and the
      // union list; per lane the append order is ascending slot — the
      // order the serial slot-major sweep produces — and the union
      // list's internal order is never observable (bound refresh is a
      // pure per-candidate map).
      for (size_t t = 0; t < n_slots; ++t) {
        for (size_t s = 0; s < B; ++s) {
          if (!discovered_now[t * L + s]) continue;
          discovered_now[t * L + s] = 0;
          discovered[t * L + s] = 1;
          ++n_discovered[s];
          engine.ActivateSlot(static_cast<uint32_t>(t), s);
          slot_any_active[t] = 1;
        }
      }
    }

    // Bounds. Once a lane's frontier is exhausted there are no longer
    // paths at all for that seeker: its partial sums are exact and its
    // tail is 0.
    for (size_t s = 0; s < B; ++s) {
      tails[s] = exhausted[s] ? 0.0 : TailBound(gamma, n);
    }
    for (size_t s = B; s < L; ++s) tails[s] = 0.0;
    if (use_fanout) {
      // B2: per-slot bound refresh, dominated-candidate clean, and
      // local order build — disjoint writes per slot (bounds, alive
      // flags, order buffers). Gating refresh on slot_any_active makes
      // the refreshed set exactly RefreshBoundsBatch's union list (a
      // pure per-candidate map, so membership equality is bitwise
      // equality); the clean keeps each slot's global in-pass pair
      // order (kills gate later dominance tests).
      run_slots([&](size_t t) {
        if (!slot_any_active[t]) return;
        engine.RefreshBoundsSlot(static_cast<uint32_t>(t), tails.data());
        for (size_t s = 0; s < B; ++s) {
          std::vector<uint32_t>& so = slot_orders_[t * B + s];
          so.clear();
          if (finished[s]) continue;
          if (!discovered[t * L + s]) {
            cleaned_now[t * B + s] = 0;
            continue;
          }
          cleaned_now[t * B + s] = engine.CleanDominatedSlot(
              static_cast<uint32_t>(t), options_.epsilon, s);
          for (uint32_t ci = engine.SlotBegin(static_cast<uint32_t>(t));
               ci < engine.SlotEnd(static_cast<uint32_t>(t)); ++ci) {
            if (engine.alive(ci, s)) so.push_back(ci);
          }
          std::sort(so.begin(), so.end(), [&](uint32_t a, uint32_t b) {
            if (engine.upper(a, s) != engine.upper(b, s)) {
              return engine.upper(a, s) > engine.upper(b, s);
            }
            return engine.node(a) < engine.node(b);
          });
        }
      });
      for (size_t s = 0; s < B; ++s) {
        if (finished[s]) continue;
        for (size_t t = 0; t < n_slots; ++t) {
          out[s].stats.candidates_cleaned += cleaned_now[t * B + s];
        }
      }
    } else {
      engine.RefreshBoundsBatch(tails.data(), pool_.get());
    }

    // Threshold per lane: best possible score of any undiscovered
    // document — over the *reachable* undiscovered components only.
    for (size_t s = 0; s < B; ++s) {
      if (finished[s]) continue;
      double threshold = 0.0;
      if (!exhausted[s]) {
        const double b = UndiscoveredBound(gamma, n);
        for (uint32_t slot : slots_by_cap) {
          if (!discovered[slot * L + s] && slot_reachable(slot, s)) {
            threshold = comp_cap[slot] *
                        std::pow(std::min(1.0, b),
                                 static_cast<double>(n_keywords));
            break;
          }
        }
      }
      last_threshold[s] = threshold;
    }

    // CleanCandidatesList per lane: drop candidates dominated by a
    // vertical neighbor (sound forever: lower bounds only grow, uppers
    // only shrink). The engine scans its precomputed neighbor-pair
    // list. In fan-out mode the per-slot clean already ran inside B2.
    if (!use_fanout) {
      for (size_t s = 0; s < B; ++s) {
        if (finished[s]) continue;
        out[s].stats.candidates_cleaned +=
            engine.CleanDominated(options_.epsilon, s);
      }
    }

    // StopCondition (paper Algorithm 2), per lane. A converged lane
    // records its result and drops out; the others keep iterating.
    for (size_t s = 0; s < B; ++s) {
      if (finished[s]) continue;
      std::vector<uint32_t>& order = orders_[s];
      order.clear();
      if (use_fanout) {
        merge_slot_orders(s, order);
      } else {
        for (uint32_t ci : engine.ActiveCandidates(s)) {
          if (engine.alive(ci, s)) order.push_back(ci);
        }
        std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
          if (engine.upper(a, s) != engine.upper(b, s)) {
            return engine.upper(a, s) > engine.upper(b, s);
          }
          return engine.node(a) < engine.node(b);
        });
      }
      const size_t k_s = ks[s];
      const double threshold = last_threshold[s];

      if (lane_trace[s]) {
        // Snapshot this iteration's bound-refinement state for the
        // trace. O(k) reads of already-computed bounds — runs only for
        // the (sampled) traced lane, and never writes engine state, so
        // the search itself is untouched.
        obs::IterationTraceRecord rec;
        rec.iteration = static_cast<uint32_t>(n);
        rec.frontier_size = static_cast<uint32_t>(frontier.nonzero.size());
        rec.alive_candidates = static_cast<uint32_t>(order.size());
        const size_t tk = std::min(k_s, order.size());
        double min_lower = 0.0;
        if (tk > 0) {
          min_lower = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < tk; ++i) {
            min_lower = std::min(min_lower, engine.lower(order[i], s));
          }
        }
        rec.kth_lower = min_lower;
        rec.remaining_upper = std::max(
            threshold, order.size() > tk ? engine.upper(order[tk], s) : 0.0);
        rec.used_pull = iter_used_pull;
        rec.fanout = use_fanout;
        out[s].stats.iteration_trace.push_back(rec);
      }

      if (order.size() >= k_s || exhausted[s] ||
          threshold <= options_.epsilon) {
        // Check the first k alive candidates: pairwise non-neighbors?
        size_t kk = std::min(k_s, order.size());
        if (!engine.AnyNeighborPair(order, kk)) {
          double min_topk_lower = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < kk; ++i) {
            min_topk_lower =
                std::min(min_topk_lower, engine.lower(order[i], s));
          }
          double max_non_topk_upper =
              order.size() > kk ? engine.upper(order[kk], s) : 0.0;
          if (std::max(max_non_topk_upper, threshold) <=
              min_topk_lower + options_.epsilon) {
            // With fewer than k results we are only done once nothing
            // undiscovered could still qualify (threshold ~ 0).
            if (kk == k_s || threshold <= options_.epsilon) {
              out[s].stats.converged = true;
              finish_lane(s, std::vector<uint32_t>(order.begin(),
                                                   order.begin() + kk));
              continue;
            }
          }
        }
      }

      if (exhausted[s] && n_discovered[s] == n_slots) {
        // Everything reachable is explored exactly; ties included.
        out[s].stats.converged = true;
        finish_lane(s, engine.GreedyTopK(order, k_s, s));
        continue;
      }
      if (exhausted[s] && threshold <= options_.epsilon) {
        // Unreached components can only hold zero-score documents.
        out[s].stats.converged = true;
        finish_lane(s, engine.GreedyTopK(order, k_s, s));
        continue;
      }

      // Certified (1-eps) anytime exit (QueryMode::kAnytime): once the
      // best (up to) k candidates are held and everything else — alive
      // non-picked uppers and the undiscovered-component threshold —
      // fits under (1+eps) times the worst picked lower bound, the
      // current answer is a certified (1-eps)-approximation: no
      // omitted (or still undiscovered — the threshold covers those)
      // document beats the worst returned one by more than (1+eps).
      // Strictly after the exact checks and gated on eps > 0, so an
      // exact request runs the unmodified code path bit-for-bit. No
      // epsilon slack here: the comparison is what finish_lane's
      // achieved certificate re-derives, keeping certified_epsilon
      // <= eps.
      if (lane_eps[s] > 0.0 && !order.empty()) {
        const size_t want = std::min(k_s, order.size());
        std::vector<uint32_t> picked = engine.GreedyTopK(order, want, s);
        if (picked.size() == want) {
          double min_lower = std::numeric_limits<double>::infinity();
          for (uint32_t ci : picked) {
            min_lower = std::min(min_lower, engine.lower(ci, s));
          }
          double rem = threshold;
          for (uint32_t ci : order) {
            bool taken = false;  // picked is tiny (== k): linear scan
            for (uint32_t p : picked) {
              if (p == ci) { taken = true; break; }
            }
            if (!taken) rem = std::max(rem, engine.upper(ci, s));
          }
          if (rem <= (1.0 + lane_eps[s]) * min_lower) {
            out[s].stats.converged = true;
            finish_lane(s, picked);
            continue;
          }
        }
      }
    }

    // Per-lane deadline probe (anytime termination, paper §4.1): an
    // expired lane finishes with the best k known now — converged
    // stays false, deadline_exceeded marks the truncation — and drops
    // out of the batch; lanes with slack keep iterating. Probed once
    // per iteration: deadlines bound iterations, not instructions.
    // With every lane on the legacy time_budget_seconds this finishes
    // exactly the lanes the old global break abandoned, at the same
    // point, with the same GreedyTopK pick.
    if (any_deadline && live > 0) {
      const double elapsed = timer.ElapsedSeconds();
      for (size_t s = 0; s < B; ++s) {
        if (finished[s] || lane_deadline[s] <= 0.0 ||
            elapsed < lane_deadline[s]) {
          continue;
        }
        out[s].stats.deadline_exceeded = true;
        finish_lane(s, engine.GreedyTopK(orders_[s], ks[s], s));
      }
    }
  }

  // Anytime termination (paper §4.1): unfinished members return the
  // best k known now (converged stays false in their stats).
  for (size_t s = 0; s < B; ++s) {
    if (!finished[s]) finish_lane(s, engine.GreedyTopK(orders_[s], ks[s], s));
  }
  return out;
}

}  // namespace s3::core
