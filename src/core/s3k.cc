#include "core/s3k.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "common/timer.h"
#include "core/bound_engine.h"
#include "social/transition_matrix.h"

namespace s3::core {

namespace {

using social::ComponentId;
using social::Frontier;

// Runs fn(i) for i in [0, n): striped over `pool` when it exists and
// the trip count is worth the dispatch, serial otherwise.
void MaybeParallelFor(ThreadPool* pool, size_t n,
                      const std::function<void(size_t)>& fn,
                      size_t min_parallel) {
  if (pool == nullptr || n < min_parallel) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->ParallelFor(n, fn);
  }
}

// Resets a scratch frontier for a new query (or batch), reusing the
// dense buffer when the instance size and lane count are unchanged
// (O(nonzero · lanes) instead of O(rows · lanes)).
void ResetFrontier(social::BatchFrontier& f, size_t total_rows,
                   size_t lanes) {
  if (f.lanes == lanes && f.values.size() == total_rows * lanes) {
    f.Clear();
  } else {
    f.Init(total_rows, lanes);
  }
}

}  // namespace

Status QueryOptions::Validate() const {
  if (!std::isfinite(epsilon_approx) || epsilon_approx < 0.0) {
    return Status::InvalidArgument(
        "epsilon_approx must be finite and non-negative");
  }
  if (epsilon_approx > 0.0 && mode != QueryMode::kAnytime) {
    return Status::InvalidArgument(
        "epsilon_approx > 0 requires mode = kAnytime");
  }
  if (!std::isfinite(deadline_seconds) || deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "deadline_seconds must be finite and non-negative");
  }
  return Status::OK();
}

BatchSeeker ResolveLane(const QueryRequest& request,
                        const S3kOptions& defaults) {
  BatchSeeker lane;
  lane.seeker = request.seeker;
  lane.k = request.options.k > 0 ? request.options.k : defaults.k;
  lane.epsilon_approx = request.options.mode == QueryMode::kAnytime
                            ? request.options.epsilon_approx
                            : 0.0;
  // Deprecated-alias mapping: a request without its own deadline
  // inherits S3kOptions::time_budget_seconds, so legacy budget-based
  // deployments behave identically through the new surface.
  lane.deadline_seconds = request.options.deadline_seconds > 0.0
                              ? request.options.deadline_seconds
                              : defaults.time_budget_seconds;
  return lane;
}

Result<CandidatePlan> BuildCandidatePlan(
    const S3Instance& instance, const std::vector<KeywordId>& keywords,
    bool use_semantics, double eta, ThreadPool* pool) {
  if (!instance.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("empty keyword set");
  }
  if (keywords.size() > 64) {
    return Status::InvalidArgument("queries are limited to 64 keywords");
  }

  CandidatePlan plan;
  plan.keywords = keywords;
  const size_t n_keywords = keywords.size();

  // ---- 1. Semantic extension of the query keywords.
  plan.ext.resize(n_keywords);
  for (size_t i = 0; i < n_keywords; ++i) {
    if (use_semantics) {
      for (KeywordId k : instance.ExtendKeyword(keywords[i])) {
        plan.ext[i].insert(k);
      }
    } else {
      plan.ext[i].insert(keywords[i]);
    }
    plan.extension_keywords += plan.ext[i].size();
  }

  // ---- 2. Passing components: every query keyword (or an extension
  // member) occurs in the component.
  const uint64_t full_mask =
      n_keywords == 64 ? ~0ull : ((1ull << n_keywords) - 1);
  std::unordered_map<ComponentId, uint64_t> comp_mask;
  for (size_t i = 0; i < n_keywords; ++i) {
    for (KeywordId k : plan.ext[i]) {
      for (ComponentId c : instance.ComponentsWithKeyword(k)) {
        comp_mask[c] |= (1ull << i);
      }
    }
  }
  for (const auto& [c, mask] : comp_mask) {
    if (mask == full_mask) plan.passing.push_back(c);
  }
  std::sort(plan.passing.begin(), plan.passing.end());
  plan.comp_reach_root.reserve(plan.passing.size());
  for (ComponentId c : plan.passing) {
    plan.comp_reach_root.push_back(instance.ReachRootOfComponent(c));
  }

  // ---- 3. Candidate construction per passing component (the paper's
  // GetDocuments, run eagerly; exploration refines only prox).
  plan.per_comp.resize(plan.passing.size());
  MaybeParallelFor(
      pool, plan.passing.size(),
      [&](size_t i) {
        ConnectionBuilder builder(instance, eta);
        plan.per_comp[i] = builder.Build(plan.passing[i], plan.ext);
      },
      /*min_parallel=*/8);

  return plan;
}

S3kSearcher::S3kSearcher(const S3Instance& instance, S3kOptions options)
    : instance_(instance), options_(options) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

Result<std::vector<ResultEntry>> S3kSearcher::Search(
    const QueryRequest& query, SearchStats* stats) {
  WallTimer timer;
  // Reject an unknown seeker before paying for candidate construction.
  if (instance_.finalized() && query.seeker >= instance_.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  auto plan = BuildCandidatePlan(instance_, query.keywords,
                                 options_.use_semantics, options_.score.eta,
                                 pool_.get());
  if (!plan.ok()) return plan.status();
  auto result = SearchWithPlan(query, *plan, stats);
  if (stats != nullptr && result.ok()) {
    // SearchWithPlan timed only the exploration; report the full query.
    stats->elapsed_seconds = timer.ElapsedSeconds();
  }
  return result;
}

Result<std::vector<ResultEntry>> S3kSearcher::SearchWithPlan(
    const QueryRequest& query, const CandidatePlan& plan,
    SearchStats* stats) {
  S3_RETURN_IF_ERROR(query.options.Validate());
  // The single-seeker search *is* the batched search at width 1: one
  // loop, one set of invariants, and the per-query tests exercise the
  // exact code the batched server path runs.
  auto batched = SearchBatchWithPlan({ResolveLane(query, options_)}, plan);
  if (!batched.ok()) return batched.status();
  if (stats != nullptr) *stats = std::move((*batched)[0].stats);
  return std::move((*batched)[0].entries);
}

Result<std::vector<BatchQueryResult>> S3kSearcher::SearchBatchWithPlan(
    const std::vector<BatchSeeker>& batch, const CandidatePlan& plan) {
  if (!instance_.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (batch.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  if (batch.size() > kMaxBatch) {
    return Status::InvalidArgument("batch exceeds kMaxBatch seekers");
  }
  for (const BatchSeeker& bs : batch) {
    if (bs.seeker >= instance_.UserCount()) {
      return Status::InvalidArgument("unknown seeker");
    }
    if (!std::isfinite(bs.epsilon_approx) || bs.epsilon_approx < 0.0) {
      return Status::InvalidArgument(
          "epsilon_approx must be finite and non-negative");
    }
    if (!std::isfinite(bs.deadline_seconds) || bs.deadline_seconds < 0.0) {
      return Status::InvalidArgument(
          "deadline_seconds must be finite and non-negative");
    }
  }
  if (plan.n_keywords() == 0) {
    return Status::InvalidArgument("empty candidate plan");
  }

  WallTimer timer;
  const size_t B = batch.size();
  // Lane count padded to a kernel-friendly width; lanes in [B, L) hold
  // no mass, activate nothing, and compute on zeros only.
  const size_t L = social::PadLanes(B);

  const double gamma = options_.score.gamma;
  const double c_gamma = CGamma(gamma);
  const size_t n_keywords = plan.n_keywords();
  const size_t n_slots = plan.passing.size();
  const uint32_t total_rows = instance_.layout().total();

  std::vector<double> comp_cap(n_slots, 0.0);
  for (size_t i = 0; i < n_slots; ++i) {
    comp_cap[i] = plan.per_comp[i].max_cap;
  }

  // Flat incremental scoring state over all candidates, one lane per
  // batch member (reads the per-component source lists; the plan
  // itself stays untouched, so a cached plan serves any number of
  // concurrent engines). The static structure — candidate CSR, reverse
  // index, neighbor adjacency — is built once and shared by every
  // lane: this construction amortization plus the one-walk-per-
  // iteration lane streaming is the whole point of batching.
  CandidateBoundEngine engine(instance_.docs(), n_keywords, total_rows,
                              plan.per_comp, L);

  std::vector<BatchQueryResult> out(B);
  std::vector<size_t> ks(B);
  // Per-lane anytime parameters. A zero deadline inherits the
  // deprecated options_.time_budget_seconds (the alias mapping), so
  // the legacy global budget and a per-request deadline are one
  // mechanism; eps == 0 lanes never touch the anytime exit at all.
  std::vector<double> lane_eps(B), lane_deadline(B);
  bool any_deadline = false;
  for (size_t s = 0; s < B; ++s) {
    lane_eps[s] = batch[s].epsilon_approx;
    lane_deadline[s] = batch[s].deadline_seconds > 0.0
                           ? batch[s].deadline_seconds
                           : options_.time_budget_seconds;
    any_deadline = any_deadline || lane_deadline[s] > 0.0;
  }
  for (size_t s = 0; s < B; ++s) {
    ks[s] = batch[s].k > 0 ? batch[s].k : options_.k;
    SearchStats& st = out[s].stats;
    st.extension_keywords = plan.extension_keywords;
    st.components_passing = n_slots;
    st.candidates_total = engine.size();
    st.candidate_nodes.reserve(engine.size());
    for (uint32_t ci = 0; ci < engine.size(); ++ci) {
      st.candidate_nodes.push_back(engine.node(ci));
    }
  }

  // Component slots ordered by cap (for the unexplored-docs threshold).
  std::vector<uint32_t> slots_by_cap(n_slots);
  for (size_t i = 0; i < n_slots; ++i) slots_by_cap[i] = i;
  std::sort(slots_by_cap.begin(), slots_by_cap.end(),
            [&](uint32_t a, uint32_t b) { return comp_cap[a] > comp_cap[b]; });

  // Discovery watch list: the member rows of every passing component,
  // tagged with their slot. A component is discovered in a lane the
  // first time that lane's frontier holds mass on one of its rows; a
  // row is compacted away once every unfinished lane has discovered
  // its slot, so the list only shrinks.
  std::vector<uint32_t> watch_rows, watch_slots;
  for (size_t i = 0; i < n_slots; ++i) {
    for (uint32_t row : instance_.components().Members(plan.passing[i])) {
      watch_rows.push_back(row);
      watch_slots.push_back(static_cast<uint32_t>(i));
    }
  }

  // ---- 4. Exploration state.
  const social::TransitionMatrix& matrix = instance_.matrix();

  // Reachability pruning: a passing component whose owners' reach root
  // differs from the seeker's can never be discovered (its sources can
  // never gain proximity), so its cap must not hold the termination
  // threshold up. Plans built by BuildCandidatePlan always carry the
  // roots; a hand-built plan without them degrades to the conservative
  // everything-reachable behavior.
  const bool have_reach = plan.comp_reach_root.size() == n_slots;
  std::vector<uint32_t> seeker_root(B);
  for (size_t s = 0; s < B; ++s) {
    seeker_root[s] = instance_.ReachRootOfUser(batch[s].seeker);
  }
  auto slot_reachable = [&](uint32_t slot, size_t s) {
    return !have_reach || plan.comp_reach_root[slot] == seeker_root[s];
  };

  social::BatchFrontier& frontier = frontier_;
  social::BatchFrontier& next = next_;
  ResetFrontier(frontier, total_rows, L);
  ResetFrontier(next, total_rows, L);
  for (size_t s = 0; s < B; ++s) {
    const uint32_t seeker_row = instance_.RowOfUser(batch[s].seeker);
    frontier.Set(seeker_row, s, 1.0);
    engine.ApplyDeltaLane(seeker_row, s, c_gamma);  // the empty path
  }

  // Per-lane loop state. `finished` marks members whose result is
  // recorded (converged or never started); their frontier lane is
  // zeroed, so they cost nothing but padded-lane arithmetic.
  std::vector<uint8_t> discovered(n_slots * L, 0);  // [slot*L + lane]
  std::vector<size_t> n_discovered(B, 0);
  std::vector<uint8_t> exhausted(B, 0);
  std::vector<uint8_t> finished(B, 0);
  std::vector<double> last_threshold(B, 0.0);
  size_t live = B;

  if (orders_.size() < B) orders_.resize(B);

  auto finish_lane = [&](size_t s, const std::vector<uint32_t>& picked) {
    SearchStats& st = out[s].stats;
    std::vector<ResultEntry>& entries = out[s].entries;
    entries.reserve(picked.size());
    st.kth_lower = 0.0;
    for (uint32_t ci : picked) {
      entries.push_back(ResultEntry{engine.node(ci), engine.lower(ci, s),
                                    engine.upper(ci, s)});
      st.kth_lower = entries.size() == 1
                         ? engine.lower(ci, s)
                         : std::min(st.kth_lower, engine.lower(ci, s));
    }
    // Bound on everything not returned: the remaining alive candidates
    // plus whatever an undiscovered reachable component could still
    // hold (the threshold at termination).
    st.remaining_upper = last_threshold[s];
    for (uint32_t ci : engine.ActiveCandidates(s)) {
      if (!engine.alive(ci, s)) continue;
      bool taken = false;  // picked is tiny (<= k): linear scan
      for (uint32_t p : picked) {
        if (p == ci) { taken = true; break; }
      }
      if (!taken) {
        st.remaining_upper =
            std::max(st.remaining_upper, engine.upper(ci, s));
      }
    }
    // The achieved certificate: the smallest eps for which the bounds
    // prove no omitted document beats the worst returned one by more
    // than (1+eps). The exact stop's *absolute* slack criterion
    // (remaining <= kth + epsilon tie-break) certifies 0 outright —
    // without it a converged answer whose kth lower bound is 0 would
    // report infinity off a ~1e-12 remainder. Otherwise an anytime
    // exit lands at <= the requested epsilon and a truncated search
    // reports whatever its bounds support (infinity when kth_lower is
    // 0 with mass still unaccounted for).
    if (st.remaining_upper <= st.kth_lower + options_.epsilon) {
      st.certified_epsilon = 0.0;
    } else if (st.kth_lower > 0.0) {
      st.certified_epsilon =
          std::max(0.0, st.remaining_upper / st.kth_lower - 1.0);
    } else {
      st.certified_epsilon = std::numeric_limits<double>::infinity();
    }
    st.components_discovered = n_discovered[s];
    st.elapsed_seconds = timer.ElapsedSeconds();
    finished[s] = 1;
    --live;
    // Drop out of the batch: no more frontier mass, no more deltas —
    // lanes are independent, so the survivors are unaffected.
    frontier.ZeroLane(s);
  };

  // ---- 5. Main loop: one shared CSR walk per iteration, per-lane
  // bookkeeping per seeker. Per lane this runs exactly the
  // single-seeker sequence (a zero delta / zero mass is bitwise inert:
  // every folded quantity is non-negative, so x + 0.0 never flips a
  // bit), which is what makes batched results bit-for-bit equal to
  // per-query SearchWithPlan.
  double d[social::kMaxFrontierLanes];
  std::vector<double> tails(L, 0.0);
  for (size_t n = 1; n <= options_.max_iterations && live > 0; ++n) {
    for (size_t s = 0; s < B; ++s) {
      if (!finished[s]) out[s].stats.iterations = n;
    }

    // ExploreStep: border := border · T ; allProx += Cγ · border / γⁿ.
    bool any_frontier = false;
    for (size_t s = 0; s < B; ++s) {
      if (!finished[s] && !exhausted[s]) any_frontier = true;
    }
    if (any_frontier) {
      matrix.PropagateBatchAdaptive(frontier, next, pool_.get());
      std::swap(frontier, next);
      for (size_t s = 0; s < B; ++s) {
        if (!finished[s] && !exhausted[s] && !frontier.LaneHasMass(s)) {
          exhausted[s] = 1;
        }
      }
      const double factor =
          c_gamma * std::pow(gamma, -static_cast<double>(n));
      // Fold deltas over the smaller domain: the union frontier, or
      // the rows that actually feed candidates (once the frontier
      // saturates the graph, the source-row sweep is much narrower).
      const std::vector<uint32_t>& src_rows = engine.SourceRows();
      auto fold_row = [&](uint32_t row) {
        const double* v = &frontier.values[static_cast<size_t>(row) * L];
        bool any = false;
        for (size_t l = 0; l < L; ++l) {
          d[l] = factor * v[l];
          any = any || v[l] != 0.0;
        }
        if (any) engine.ApplyDeltaBatch(row, d);
      };
      if (frontier.nonzero.size() <= src_rows.size()) {
        for (uint32_t row : frontier.nonzero) fold_row(row);
      } else {
        for (uint32_t row : src_rows) fold_row(row);
      }
      // Discovery sweep over the rows of still-undiscovered passing
      // components, per lane; a row is compacted away once no
      // unfinished lane watches its slot.
      size_t w = 0;
      for (size_t i = 0; i < watch_rows.size(); ++i) {
        const uint32_t slot = watch_slots[i];
        const uint32_t row = watch_rows[i];
        const double* v = &frontier.values[static_cast<size_t>(row) * L];
        bool keep = false;
        for (size_t s = 0; s < B; ++s) {
          if (finished[s] || discovered[slot * L + s]) continue;
          if (v[s] != 0.0) {
            discovered[slot * L + s] = 1;
            ++n_discovered[s];
            engine.ActivateSlot(slot, s);
          } else {
            keep = true;
          }
        }
        if (keep) {
          watch_rows[w] = row;
          watch_slots[w] = slot;
          ++w;
        }
      }
      watch_rows.resize(w);
      watch_slots.resize(w);
    }

    // Bounds. Once a lane's frontier is exhausted there are no longer
    // paths at all for that seeker: its partial sums are exact and its
    // tail is 0.
    for (size_t s = 0; s < B; ++s) {
      tails[s] = exhausted[s] ? 0.0 : TailBound(gamma, n);
    }
    for (size_t s = B; s < L; ++s) tails[s] = 0.0;
    engine.RefreshBoundsBatch(tails.data(), pool_.get());

    // Threshold per lane: best possible score of any undiscovered
    // document — over the *reachable* undiscovered components only.
    for (size_t s = 0; s < B; ++s) {
      if (finished[s]) continue;
      double threshold = 0.0;
      if (!exhausted[s]) {
        const double b = UndiscoveredBound(gamma, n);
        for (uint32_t slot : slots_by_cap) {
          if (!discovered[slot * L + s] && slot_reachable(slot, s)) {
            threshold = comp_cap[slot] *
                        std::pow(std::min(1.0, b),
                                 static_cast<double>(n_keywords));
            break;
          }
        }
      }
      last_threshold[s] = threshold;
    }

    // CleanCandidatesList per lane: drop candidates dominated by a
    // vertical neighbor (sound forever: lower bounds only grow, uppers
    // only shrink). The engine scans its precomputed neighbor-pair
    // list.
    for (size_t s = 0; s < B; ++s) {
      if (finished[s]) continue;
      out[s].stats.candidates_cleaned +=
          engine.CleanDominated(options_.epsilon, s);
    }

    // StopCondition (paper Algorithm 2), per lane. A converged lane
    // records its result and drops out; the others keep iterating.
    for (size_t s = 0; s < B; ++s) {
      if (finished[s]) continue;
      std::vector<uint32_t>& order = orders_[s];
      order.clear();
      for (uint32_t ci : engine.ActiveCandidates(s)) {
        if (engine.alive(ci, s)) order.push_back(ci);
      }
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (engine.upper(a, s) != engine.upper(b, s)) {
          return engine.upper(a, s) > engine.upper(b, s);
        }
        return engine.node(a) < engine.node(b);
      });
      const size_t k_s = ks[s];
      const double threshold = last_threshold[s];

      if (order.size() >= k_s || exhausted[s] ||
          threshold <= options_.epsilon) {
        // Check the first k alive candidates: pairwise non-neighbors?
        size_t kk = std::min(k_s, order.size());
        if (!engine.AnyNeighborPair(order, kk)) {
          double min_topk_lower = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < kk; ++i) {
            min_topk_lower =
                std::min(min_topk_lower, engine.lower(order[i], s));
          }
          double max_non_topk_upper =
              order.size() > kk ? engine.upper(order[kk], s) : 0.0;
          if (std::max(max_non_topk_upper, threshold) <=
              min_topk_lower + options_.epsilon) {
            // With fewer than k results we are only done once nothing
            // undiscovered could still qualify (threshold ~ 0).
            if (kk == k_s || threshold <= options_.epsilon) {
              out[s].stats.converged = true;
              finish_lane(s, std::vector<uint32_t>(order.begin(),
                                                   order.begin() + kk));
              continue;
            }
          }
        }
      }

      if (exhausted[s] && n_discovered[s] == n_slots) {
        // Everything reachable is explored exactly; ties included.
        out[s].stats.converged = true;
        finish_lane(s, engine.GreedyTopK(order, k_s, s));
        continue;
      }
      if (exhausted[s] && threshold <= options_.epsilon) {
        // Unreached components can only hold zero-score documents.
        out[s].stats.converged = true;
        finish_lane(s, engine.GreedyTopK(order, k_s, s));
        continue;
      }

      // Certified (1-eps) anytime exit (QueryMode::kAnytime): once the
      // best (up to) k candidates are held and everything else — alive
      // non-picked uppers and the undiscovered-component threshold —
      // fits under (1+eps) times the worst picked lower bound, the
      // current answer is a certified (1-eps)-approximation: no
      // omitted (or still undiscovered — the threshold covers those)
      // document beats the worst returned one by more than (1+eps).
      // Strictly after the exact checks and gated on eps > 0, so an
      // exact request runs the unmodified code path bit-for-bit. No
      // epsilon slack here: the comparison is what finish_lane's
      // achieved certificate re-derives, keeping certified_epsilon
      // <= eps.
      if (lane_eps[s] > 0.0 && !order.empty()) {
        const size_t want = std::min(k_s, order.size());
        std::vector<uint32_t> picked = engine.GreedyTopK(order, want, s);
        if (picked.size() == want) {
          double min_lower = std::numeric_limits<double>::infinity();
          for (uint32_t ci : picked) {
            min_lower = std::min(min_lower, engine.lower(ci, s));
          }
          double rem = threshold;
          for (uint32_t ci : order) {
            bool taken = false;  // picked is tiny (== k): linear scan
            for (uint32_t p : picked) {
              if (p == ci) { taken = true; break; }
            }
            if (!taken) rem = std::max(rem, engine.upper(ci, s));
          }
          if (rem <= (1.0 + lane_eps[s]) * min_lower) {
            out[s].stats.converged = true;
            finish_lane(s, picked);
            continue;
          }
        }
      }
    }

    // Per-lane deadline probe (anytime termination, paper §4.1): an
    // expired lane finishes with the best k known now — converged
    // stays false, deadline_exceeded marks the truncation — and drops
    // out of the batch; lanes with slack keep iterating. Probed once
    // per iteration: deadlines bound iterations, not instructions.
    // With every lane on the legacy time_budget_seconds this finishes
    // exactly the lanes the old global break abandoned, at the same
    // point, with the same GreedyTopK pick.
    if (any_deadline && live > 0) {
      const double elapsed = timer.ElapsedSeconds();
      for (size_t s = 0; s < B; ++s) {
        if (finished[s] || lane_deadline[s] <= 0.0 ||
            elapsed < lane_deadline[s]) {
          continue;
        }
        out[s].stats.deadline_exceeded = true;
        finish_lane(s, engine.GreedyTopK(orders_[s], ks[s], s));
      }
    }
  }

  // Anytime termination (paper §4.1): unfinished members return the
  // best k known now (converged stays false in their stats).
  for (size_t s = 0; s < B; ++s) {
    if (!finished[s]) finish_lane(s, engine.GreedyTopK(orders_[s], ks[s], s));
  }
  return out;
}

}  // namespace s3::core
