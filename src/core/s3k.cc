#include "core/s3k.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "common/timer.h"
#include "core/bound_engine.h"
#include "social/transition_matrix.h"

namespace s3::core {

namespace {

using social::ComponentId;
using social::Frontier;

// Runs fn(i) for i in [0, n): striped over `pool` when it exists and
// the trip count is worth the dispatch, serial otherwise.
void MaybeParallelFor(ThreadPool* pool, size_t n,
                      const std::function<void(size_t)>& fn,
                      size_t min_parallel) {
  if (pool == nullptr || n < min_parallel) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->ParallelFor(n, fn);
  }
}

// Resets a scratch frontier for a new query, reusing the dense buffer
// when the instance size is unchanged (O(nonzero) instead of O(rows)).
void ResetFrontier(Frontier& f, size_t total_rows) {
  if (f.values.size() == total_rows) {
    f.Clear();
  } else {
    f.Init(total_rows);
  }
}

}  // namespace

Result<CandidatePlan> BuildCandidatePlan(
    const S3Instance& instance, const std::vector<KeywordId>& keywords,
    bool use_semantics, double eta, ThreadPool* pool) {
  if (!instance.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("empty keyword set");
  }
  if (keywords.size() > 64) {
    return Status::InvalidArgument("queries are limited to 64 keywords");
  }

  CandidatePlan plan;
  plan.keywords = keywords;
  const size_t n_keywords = keywords.size();

  // ---- 1. Semantic extension of the query keywords.
  plan.ext.resize(n_keywords);
  for (size_t i = 0; i < n_keywords; ++i) {
    if (use_semantics) {
      for (KeywordId k : instance.ExtendKeyword(keywords[i])) {
        plan.ext[i].insert(k);
      }
    } else {
      plan.ext[i].insert(keywords[i]);
    }
    plan.extension_keywords += plan.ext[i].size();
  }

  // ---- 2. Passing components: every query keyword (or an extension
  // member) occurs in the component.
  const uint64_t full_mask =
      n_keywords == 64 ? ~0ull : ((1ull << n_keywords) - 1);
  std::unordered_map<ComponentId, uint64_t> comp_mask;
  for (size_t i = 0; i < n_keywords; ++i) {
    for (KeywordId k : plan.ext[i]) {
      for (ComponentId c : instance.ComponentsWithKeyword(k)) {
        comp_mask[c] |= (1ull << i);
      }
    }
  }
  for (const auto& [c, mask] : comp_mask) {
    if (mask == full_mask) plan.passing.push_back(c);
  }
  std::sort(plan.passing.begin(), plan.passing.end());
  plan.comp_reach_root.reserve(plan.passing.size());
  for (ComponentId c : plan.passing) {
    plan.comp_reach_root.push_back(instance.ReachRootOfComponent(c));
  }

  // ---- 3. Candidate construction per passing component (the paper's
  // GetDocuments, run eagerly; exploration refines only prox).
  plan.per_comp.resize(plan.passing.size());
  MaybeParallelFor(
      pool, plan.passing.size(),
      [&](size_t i) {
        ConnectionBuilder builder(instance, eta);
        plan.per_comp[i] = builder.Build(plan.passing[i], plan.ext);
      },
      /*min_parallel=*/8);

  return plan;
}

S3kSearcher::S3kSearcher(const S3Instance& instance, S3kOptions options)
    : instance_(instance), options_(options) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

Result<std::vector<ResultEntry>> S3kSearcher::Search(const Query& query,
                                                     SearchStats* stats) {
  WallTimer timer;
  // Reject an unknown seeker before paying for candidate construction.
  if (instance_.finalized() && query.seeker >= instance_.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  auto plan = BuildCandidatePlan(instance_, query.keywords,
                                 options_.use_semantics, options_.score.eta,
                                 pool_.get());
  if (!plan.ok()) return plan.status();
  auto result = SearchWithPlan(query, *plan, stats);
  if (stats != nullptr && result.ok()) {
    // SearchWithPlan timed only the exploration; report the full query.
    stats->elapsed_seconds = timer.ElapsedSeconds();
  }
  return result;
}

Result<std::vector<ResultEntry>> S3kSearcher::SearchWithPlan(
    const Query& query, const CandidatePlan& plan, SearchStats* stats) {
  if (!instance_.finalized()) {
    return Status::FailedPrecondition("instance not finalized");
  }
  if (query.seeker >= instance_.UserCount()) {
    return Status::InvalidArgument("unknown seeker");
  }
  if (plan.n_keywords() == 0) {
    return Status::InvalidArgument("empty candidate plan");
  }

  WallTimer timer;
  SearchStats local_stats;
  SearchStats& st = stats ? *stats : local_stats;
  st = SearchStats{};
  st.extension_keywords = plan.extension_keywords;
  st.components_passing = plan.passing.size();

  const double gamma = options_.score.gamma;
  const double c_gamma = CGamma(gamma);
  const size_t n_keywords = plan.n_keywords();

  const uint32_t total_rows = instance_.layout().total();
  std::vector<double> comp_cap(plan.passing.size(), 0.0);
  for (size_t i = 0; i < plan.passing.size(); ++i) {
    comp_cap[i] = plan.per_comp[i].max_cap;
  }

  // Flat incremental scoring state over all candidates (reads the
  // per-component source lists; the plan itself stays untouched, so a
  // cached plan serves any number of concurrent engines).
  CandidateBoundEngine engine(instance_.docs(), n_keywords, total_rows,
                              plan.per_comp);
  st.candidates_total = engine.size();
  st.candidate_nodes.reserve(engine.size());
  for (uint32_t ci = 0; ci < engine.size(); ++ci) {
    st.candidate_nodes.push_back(engine.node(ci));
  }

  // Component slots ordered by cap (for the unexplored-docs threshold).
  std::vector<uint32_t> slots_by_cap(plan.passing.size());
  for (size_t i = 0; i < plan.passing.size(); ++i) slots_by_cap[i] = i;
  std::sort(slots_by_cap.begin(), slots_by_cap.end(),
            [&](uint32_t a, uint32_t b) { return comp_cap[a] > comp_cap[b]; });

  // Discovery watch list: the member rows of every passing component,
  // tagged with their slot. A component is discovered the first time
  // the frontier holds mass on one of its rows; rows of discovered
  // slots are compacted away, so the list only shrinks. This replaces
  // the per-frontier-row component hash lookup of the from-scratch
  // implementation.
  std::vector<uint32_t> watch_rows, watch_slots;
  for (size_t i = 0; i < plan.passing.size(); ++i) {
    for (uint32_t row : instance_.components().Members(plan.passing[i])) {
      watch_rows.push_back(row);
      watch_slots.push_back(static_cast<uint32_t>(i));
    }
  }

  // ---- 4. Exploration state.
  const social::TransitionMatrix& matrix = instance_.matrix();
  const uint32_t seeker_row = instance_.RowOfUser(query.seeker);

  // Reachability pruning: a passing component whose owners' reach root
  // differs from the seeker's can never be discovered (its sources can
  // never gain proximity), so its cap must not hold the termination
  // threshold up. Plans built by BuildCandidatePlan always carry the
  // roots; a hand-built plan without them degrades to the conservative
  // everything-reachable behavior.
  const bool have_reach = plan.comp_reach_root.size() == plan.passing.size();
  const uint32_t seeker_root = instance_.ReachRootOfUser(query.seeker);
  auto slot_reachable = [&](uint32_t slot) {
    return !have_reach || plan.comp_reach_root[slot] == seeker_root;
  };

  Frontier& frontier = frontier_;
  Frontier& next = next_;
  ResetFrontier(frontier, total_rows);
  ResetFrontier(next, total_rows);
  frontier.Set(seeker_row, 1.0);
  engine.ApplyDelta(seeker_row, c_gamma);  // the empty path

  std::vector<bool> discovered(plan.passing.size(), false);
  size_t n_discovered = 0;
  bool frontier_exhausted = false;
  double last_threshold = 0.0;

  auto make_result = [&](const std::vector<uint32_t>& picked) {
    std::vector<ResultEntry> out;
    out.reserve(picked.size());
    st.kth_lower = 0.0;
    for (uint32_t ci : picked) {
      out.push_back(
          ResultEntry{engine.node(ci), engine.lower(ci), engine.upper(ci)});
      st.kth_lower = out.size() == 1
                         ? engine.lower(ci)
                         : std::min(st.kth_lower, engine.lower(ci));
    }
    // Bound on everything not returned: the remaining alive candidates
    // plus whatever an undiscovered reachable component could still
    // hold (the threshold at termination).
    st.remaining_upper = last_threshold;
    for (uint32_t ci : engine.ActiveCandidates()) {
      if (!engine.alive(ci)) continue;
      bool taken = false;  // picked is tiny (<= k): linear scan
      for (uint32_t p : picked) {
        if (p == ci) { taken = true; break; }
      }
      if (!taken) {
        st.remaining_upper = std::max(st.remaining_upper, engine.upper(ci));
      }
    }
    st.components_discovered = n_discovered;
    st.elapsed_seconds = timer.ElapsedSeconds();
    return out;
  };

  // ---- 5. Main loop.
  std::vector<uint32_t>& order = order_;  // active candidates by upper desc
  order.clear();
  for (size_t n = 1; n <= options_.max_iterations; ++n) {
    st.iterations = n;

    // ExploreStep: border := border · T ; allProx += Cγ · border / γⁿ.
    // Every row the frontier touches feeds its Δprox to the affected
    // per-keyword sums through the engine's reverse index — bounds are
    // never recomputed from the full source lists.
    if (!frontier_exhausted) {
      matrix.PropagateAdaptive(frontier, next, pool_.get());
      std::swap(frontier, next);
      if (frontier.nonzero.empty()) frontier_exhausted = true;
      const double factor = c_gamma * std::pow(gamma, -static_cast<double>(n));
      // Fold deltas over the smaller domain: the frontier, or the rows
      // that actually feed candidates (once the frontier saturates the
      // graph, the source-row sweep is much narrower).
      const std::vector<uint32_t>& src_rows = engine.SourceRows();
      if (frontier.nonzero.size() <= src_rows.size()) {
        for (uint32_t row : frontier.nonzero) {
          engine.ApplyDelta(row, factor * frontier.values[row]);
        }
      } else {
        for (uint32_t row : src_rows) {
          const double v = frontier.values[row];
          if (v != 0.0) engine.ApplyDelta(row, factor * v);
        }
      }
      // Discovery sweep over the rows of still-undiscovered passing
      // components; rows of discovered slots are compacted away.
      if (n_discovered < plan.passing.size()) {
        size_t w = 0;
        for (size_t i = 0; i < watch_rows.size(); ++i) {
          const uint32_t slot = watch_slots[i];
          if (discovered[slot]) continue;
          if (frontier.values[watch_rows[i]] != 0.0) {
            discovered[slot] = true;
            ++n_discovered;
            engine.ActivateSlot(slot);
            continue;
          }
          watch_rows[w] = watch_rows[i];
          watch_slots[w] = slot;
          ++w;
        }
        watch_rows.resize(w);
        watch_slots.resize(w);
      }
    }

    // Bounds. Once the frontier is exhausted there are no longer paths
    // at all: the partial sums are exact and the tail is 0.
    const double tail = frontier_exhausted ? 0.0 : TailBound(gamma, n);
    engine.RefreshBounds(tail, pool_.get());

    // Threshold: best possible score of any undiscovered document —
    // over the *reachable* undiscovered components only.
    double threshold = 0.0;
    if (!frontier_exhausted) {
      const double b = UndiscoveredBound(gamma, n);
      for (uint32_t slot : slots_by_cap) {
        if (!discovered[slot] && slot_reachable(slot)) {
          threshold = comp_cap[slot] *
                      std::pow(std::min(1.0, b),
                               static_cast<double>(n_keywords));
          break;
        }
      }
    }
    last_threshold = threshold;

    // CleanCandidatesList: drop candidates dominated by a vertical
    // neighbor (sound forever: lower bounds only grow, uppers only
    // shrink). The engine scans its precomputed neighbor-pair list.
    st.candidates_cleaned += engine.CleanDominated(options_.epsilon);

    // StopCondition (paper Algorithm 2).
    order.clear();
    for (uint32_t ci : engine.ActiveCandidates()) {
      if (engine.alive(ci)) order.push_back(ci);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (engine.upper(a) != engine.upper(b)) {
        return engine.upper(a) > engine.upper(b);
      }
      return engine.node(a) < engine.node(b);
    });

    if (order.size() >= options_.k || frontier_exhausted ||
        threshold <= options_.epsilon) {
      // Check the first k alive candidates: pairwise non-neighbors?
      size_t kk = std::min(options_.k, order.size());
      if (!engine.AnyNeighborPair(order, kk)) {
        double min_topk_lower = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < kk; ++i) {
          min_topk_lower = std::min(min_topk_lower, engine.lower(order[i]));
        }
        double max_non_topk_upper =
            order.size() > kk ? engine.upper(order[kk]) : 0.0;
        if (std::max(max_non_topk_upper, threshold) <=
            min_topk_lower + options_.epsilon) {
          // With fewer than k results we are only done once nothing
          // undiscovered could still qualify (threshold ~ 0).
          if (kk == options_.k || threshold <= options_.epsilon) {
            st.converged = true;
            return make_result(
                std::vector<uint32_t>(order.begin(), order.begin() + kk));
          }
        }
      }
    }

    if (frontier_exhausted && n_discovered == plan.passing.size()) {
      // Everything reachable is explored exactly; ties included.
      st.converged = true;
      return make_result(engine.GreedyTopK(order, options_.k));
    }
    if (frontier_exhausted && threshold <= options_.epsilon) {
      // Unreached components can only hold zero-score documents.
      st.converged = true;
      return make_result(engine.GreedyTopK(order, options_.k));
    }
    if (options_.time_budget_seconds > 0.0 &&
        timer.ElapsedSeconds() >= options_.time_budget_seconds) {
      break;  // anytime termination on budget exhaustion
    }
  }

  // Anytime termination (paper §4.1): return the best k known now.
  return make_result(engine.GreedyTopK(order, options_.k));
}

}  // namespace s3::core
