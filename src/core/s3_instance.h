// S3Instance: the unified weighted-RDF view of a social application
// (paper §2) — users, structured documents, tags, social and
// interaction edges, plus an RDFS ontology.
//
// Construction is two-phase: populate (AddUser / AddDocument / AddTag /
// AddSocialEdge / ontology triples), then Finalize(), which saturates
// the RDF graph and builds the derived structures the query engine
// needs (inverted index, transition matrix, component partition,
// keyword->component directory).
//
// Finalized instances are immutable. The live-update pipeline grows
// them by *generations*: ApplyDelta(InstanceDelta) produces a new
// finalized snapshot that shares every untouched structure with its
// base (copy-on-write postings / edge chunks / adjacency rows,
// spliced transition-matrix rows, extended union-find) instead of
// rebuilding — see core/instance_delta.h.
#ifndef S3_CORE_S3_INSTANCE_H_
#define S3_CORE_S3_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/storage_span.h"
#include "doc/document_store.h"
#include "doc/inverted_index.h"
#include "rdf/extension.h"
#include "rdf/saturation.h"
#include "rdf/term_dictionary.h"
#include "rdf/triple_store.h"
#include "social/components.h"
#include "social/edge_store.h"
#include "social/entity.h"
#include "social/transition_matrix.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace s3::core {

// A tag (annotation) resource: S3:relatedTo instance with author,
// subject and optional keyword (paper §2.4). A keyword-less tag is an
// endorsement (like / retweet / +1).
struct Tag {
  social::TagId id = 0;
  social::UserId author = 0;
  social::EntityId subject;           // fragment or another tag
  KeywordId keyword = kInvalidKeyword;

  bool IsEndorsement() const { return keyword == kInvalidKeyword; }
};

// Registered user.
struct User {
  social::UserId id = 0;
  std::string uri;
};

class InstanceDelta;

class S3Instance {
 public:
  S3Instance();

  S3Instance& operator=(const S3Instance&) = delete;

  // ---- population phase ----------------------------------------------

  // Registers a user with the given URI.
  social::UserId AddUser(std::string uri);

  // Adds a directed social edge of strength `weight` in (0, 1]
  // (any specialization of S3:social).
  Status AddSocialEdge(social::UserId from, social::UserId to,
                       double weight);

  // Registers a document posted by `poster`; adds the S3:postedBy edge
  // (and its inverse) between the document root and the poster.
  Result<doc::DocId> AddDocument(doc::Document document, std::string uri,
                                 social::UserId poster);

  // Declares that document `comment` comments on fragment `target`
  // (S3:commentsOn, and inverse). Any reply / retweet-with-comment /
  // review-thread relation specializes this.
  Status AddComment(doc::DocId comment, doc::NodeId target);

  // Adds a tag by `author` on a fragment or on another tag. Pass
  // kInvalidKeyword for an endorsement.
  Result<social::TagId> AddTagOnFragment(social::UserId author,
                                         doc::NodeId subject,
                                         KeywordId keyword);
  Result<social::TagId> AddTagOnTag(social::UserId author,
                                    social::TagId subject,
                                    KeywordId keyword);

  // Ontology access (population): intern terms and add schema /
  // assertion triples. Saturation runs in Finalize().
  rdf::TermDictionary& terms() { return *terms_; }
  rdf::TripleStore& rdf_graph() { return *rdf_; }

  // Schema helpers (weight-1 triples).
  void DeclareSubClass(const std::string& sub, const std::string& super);
  void DeclareSubProperty(const std::string& sub, const std::string& super);
  void DeclareType(const std::string& instance, const std::string& klass);

  // Keyword pipeline: interning and full text extraction.
  KeywordId InternKeyword(std::string_view keyword) {
    return vocabulary_.Intern(keyword);
  }
  std::vector<KeywordId> InternText(std::string_view text);

  Vocabulary& vocabulary() { return vocabulary_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  // Builds all derived structures. Must be called exactly once, after
  // population and before querying.
  //
  // Finalize also realizes the paper's §2.2 extensibility rule: after
  // saturation, every weight-w RDF triple (u1 p u2) whose property p is
  // a (transitive) sub-property of S3:social and whose endpoints are
  // registered users becomes a social edge of weight w. Applications
  // can thus declare relationships purely in RDF (e.g. workedWith ≺sp
  // S3:social plus per-pair triples) and have them join the network.
  Status Finalize();
  bool finalized() const { return finalized_; }

  // ---- live updates ----------------------------------------------------

  // Applies a delta built against *this* snapshot (see
  // core/instance_delta.h) and returns a new finalized snapshot of
  // generation generation()+1. The base is untouched and remains fully
  // queryable; the successor shares all untouched postings, edge
  // chunks, adjacency rows, transition-matrix rows, documents and the
  // saturated ontology with it. Query results over the successor are
  // identical to rebuilding an instance from scratch with the combined
  // population (same operations, same order) — bit for bit when the
  // base has no RDF-imported social edges; with rdf_social_edges() > 0
  // the rebuild orders those after the delta's edges, so parallel-edge
  // float accumulation may differ in the last ulp (see
  // FinalizeIncremental).
  //
  // Fails with FailedPrecondition on an unfinalized base and
  // InvalidArgument when the delta was built against a different
  // snapshot or an operation in it does not validate.
  Result<std::shared_ptr<const S3Instance>> ApplyDelta(
      const InstanceDelta& delta) const;

  // Snapshot generation: 0 for a freshly finalized instance, +1 per
  // applied delta.
  uint64_t generation() const { return generation_; }

  // Lineage token: assigned (process-unique) by Finalize and inherited
  // by every ApplyDelta successor. Two snapshots are comparable by
  // generation only within one lineage — the serving layer refuses to
  // swap across lineages (an unrelated instance's generation number
  // says nothing about its id spaces).
  uint64_t lineage() const { return lineage_; }

  // Number of social edges imported from RDF triples by Finalize.
  size_t rdf_social_edges() const { return rdf_social_edges_; }

  // Social edges added through AddSocialEdge (excluding RDF-imported
  // ones), in insertion order — the serializable population.
  struct ExplicitSocialEdge {
    social::UserId from;
    social::UserId to;
    double weight;
  };
  const std::vector<ExplicitSocialEdge>& explicit_social_edges() const {
    return explicit_social_;
  }

  // ---- durable snapshots ----------------------------------------------

  // Deserialized population of a finalized snapshot (binary codec,
  // core/snapshot_binary.cc). The codec rebuilds the member stores
  // through their own APIs — ids are assigned densely in insertion
  // order, so id-order replay reproduces them exactly — and hands the
  // result to FromSnapshot, which installs it *without* the population
  // API: AddUser/AddDocument/... would re-derive RDF triples and
  // network edges that are already present verbatim in `rdf`/`edges`.
  struct SnapshotPopulation {
    Vocabulary vocabulary;
    std::vector<User> users;
    std::vector<ExplicitSocialEdge> explicit_social;
    doc::DocumentStore docs;
    std::vector<doc::NodeId> comment_target;  // per doc, kInvalidNode if none
    std::vector<Tag> tags;
    social::EdgeStore edges;  // full log, insertion order
    std::shared_ptr<rdf::TermDictionary> terms;
    std::shared_ptr<rdf::TripleStore> rdf;  // already saturated
  };

  // Deserialized derived state: everything Finalize would compute.
  // The large fixed-width arrays are StorageSpans: the v1 codec and
  // v2's copy mode fill them with owned vectors, while a v2 mmap
  // attach hands over zero-copy views pinning the mapped snapshot —
  // AttachDerived adopts either backing unchanged.
  struct SnapshotDerived {
    uint64_t generation = 0;
    uint64_t lineage = 0;
    uint64_t rdf_social_edges = 0;
    rdf::SaturationStats saturation_stats;
    doc::InvertedIndex index;  // built by the codec via AdoptPostings
    StorageSpan<uint64_t> matrix_row_ptr;
    StorageSpan<uint32_t> matrix_cols;
    StorageSpan<double> matrix_vals;
    StorageSpan<double> matrix_denom;
    StorageSpan<uint32_t> component_forest;
    std::vector<std::pair<KeywordId, std::vector<social::ComponentId>>>
        comps_with_keyword;  // ascending keyword ids, sorted comp lists
  };

  // The load-side counterpart of Finalize's build path: installs a
  // fully deserialized finalized snapshot, skipping saturation, the
  // RDF social-edge import, matrix/component construction and the
  // keyword directories entirely (AttachDerived validates and adopts
  // them instead). Generation and lineage round-trip intact; the
  // process-wide lineage counter is advanced past the restored lineage
  // so freshly finalized instances can never collide with a recovered
  // one. Returns InvalidArgument when any structure fails validation
  // against the population.
  static Result<std::shared_ptr<const S3Instance>> FromSnapshot(
      SnapshotPopulation population, SnapshotDerived derived);

  // ---- finalized accessors --------------------------------------------

  const doc::DocumentStore& docs() const { return docs_; }
  const doc::InvertedIndex& index() const { return index_; }
  const social::EdgeStore& edges() const { return edges_; }
  const social::TransitionMatrix& matrix() const { return matrix_; }
  const social::ComponentIndex& components() const { return components_; }
  const social::EntityLayout& layout() const;
  const std::vector<Tag>& tags() const { return tags_; }
  const std::vector<User>& users() const { return users_; }
  const rdf::TripleStore& rdf_graph() const { return *rdf_; }
  const rdf::TermDictionary& terms() const { return *terms_; }
  const rdf::SaturationStats& saturation_stats() const {
    return saturation_stats_;
  }

  size_t UserCount() const { return users_.size(); }
  size_t TagCount() const { return tags_.size(); }

  // Tags whose subject is the given entity.
  const std::vector<social::TagId>& TagsOn(social::EntityId subject) const;

  // Root nodes of documents commenting on fragment `target`.
  const std::vector<doc::NodeId>& CommentsOnFragment(
      doc::NodeId target) const;

  // Fragment that document `d` comments on (kInvalidNode if none).
  doc::NodeId CommentTarget(doc::DocId d) const;

  // Ext(k) mapped into keyword space: the extension of the keyword's
  // spelling through the saturated ontology, restricted to keywords
  // that occur in the instance. Always contains k itself (first).
  std::vector<KeywordId> ExtendKeyword(KeywordId k) const;

  // Components containing keyword k directly (a fragment containing k,
  // or a tag with keyword k). Sorted, unique.
  const std::vector<social::ComponentId>& ComponentsWithKeyword(
      KeywordId k) const;

  // Convenience: entity rows.
  uint32_t RowOfUser(social::UserId u) const;
  uint32_t RowOfFragment(doc::NodeId n) const;
  uint32_t RowOfTag(social::TagId t) const;

  // ---- reach groups ----------------------------------------------------
  //
  // Every entity hangs off exactly one *owning* user (a fragment off its
  // document's poster, a tag off its author); network edges only ever
  // connect entities whose owners are linked through social /
  // postedBy / commentsOn / hasSubject / hasAuthor relations. The reach
  // partition is the union-find closure of those owner links: two
  // entities can appear on one social path iff their owners share a
  // reach root. S3k uses it to prune unreachable components from the
  // termination threshold; the sharding layer (src/shard) uses it as
  // the unit of placement — a shard holding a seeker's whole reach
  // group answers that seeker exactly.

  // Poster of document `d` (the S3:postedBy target of its root).
  social::UserId PosterOfDoc(doc::DocId d) const { return poster_of_[d]; }

  // Owning user of any entity (users own themselves).
  social::UserId OwnerOfEntity(social::EntityId e) const;

  // Reach-group representative of a user / of a component's owners.
  // Roots are only comparable within one snapshot: the representative
  // is an arbitrary member, equal iff the groups are equal.
  uint32_t ReachRootOfUser(social::UserId u) const { return reach_root_[u]; }
  uint32_t ReachRootOfComponent(social::ComponentId c) const;

 private:
  // Structure-sharing copy used by ApplyDelta: shared_ptr members are
  // shared, copy-on-write stores copy their cheap spines, and the
  // derived arrays (matrix CSR, component forest) are copied so the
  // incremental finalize can update them in place. Never exposed:
  // copying a non-finalized instance would alias the mutable ontology.
  S3Instance(const S3Instance&) = default;

  Status RequireNotFinalized(const char* op) const;

  // Second phase of FromSnapshot: `this` holds the restored population
  // and is not finalized. Validates the derived structures against the
  // population (sizes, id ranges, structural invariants — float
  // payloads are covered by the snapshot's checksum framing) and
  // adopts them in place of a Finalize run.
  Status AttachDerived(SnapshotDerived derived);

  // Incremental counterpart of Finalize() for ApplyDelta: the
  // population has been extended by a replayed delta (documents,
  // comments, tags, social edges — never users or ontology triples);
  // refreshes the derived structures without recomputing anything the
  // delta did not touch. `old_*` describe the pre-delta populations;
  // `old_comp_rep` holds one representative row per pre-delta
  // component (for the component-id remap when old components merge).
  Status FinalizeIncremental(uint32_t old_users, uint32_t old_nodes,
                             uint32_t old_tags, doc::DocId first_new_doc,
                             uint32_t first_new_edge,
                             const std::vector<uint32_t>& old_comp_rep);

  // Mutable access to a keyword's component list, cloning it first
  // when another generation still shares it (copy-on-write).
  std::vector<social::ComponentId>& CompsWithKeywordSlot(KeywordId k);

  // Rebuilds the reach partition from the full edge log (Finalize,
  // AttachDerived), or extends the inherited forest with the owner
  // links of edges >= first_new_edge (FinalizeIncremental; the user
  // population is fixed, so the forest never grows).
  void BuildReach(uint32_t first_new_edge);

  // population state
  std::vector<User> users_;
  std::vector<Tag> tags_;
  doc::DocumentStore docs_;
  social::EdgeStore edges_;
  // Shared across generations: deltas may not add users or ontology
  // triples, so the term dictionary, the (saturated) RDF graph and the
  // saturation stats are identical in every successor snapshot.
  std::shared_ptr<rdf::TermDictionary> terms_;
  std::shared_ptr<rdf::TripleStore> rdf_;
  Vocabulary vocabulary_;
  std::unordered_map<social::EntityId, std::vector<social::TagId>>
      tags_on_;
  std::unordered_map<doc::NodeId, std::vector<doc::NodeId>> comments_on_;
  std::vector<doc::NodeId> comment_target_;  // per DocId, kInvalidNode if none
  std::vector<ExplicitSocialEdge> explicit_social_;
  std::vector<social::UserId> poster_of_;  // per DocId

  // derived state (Finalize / FinalizeIncremental)
  bool finalized_ = false;
  uint64_t generation_ = 0;
  uint64_t lineage_ = 0;
  size_t rdf_social_edges_ = 0;
  std::optional<social::EntityLayout> layout_;
  doc::InvertedIndex index_;
  social::TransitionMatrix matrix_;
  social::ComponentIndex components_;
  rdf::SaturationStats saturation_stats_;
  // Copy-on-write like the inverted index: a successor snapshot clones
  // only the per-keyword component lists the delta touches.
  std::unordered_map<KeywordId,
                     std::shared_ptr<std::vector<social::ComponentId>>>
      comps_with_keyword_;
  // Reach partition over users: the union-find forest (kept for
  // incremental extension — deltas never add users, so its size is
  // fixed) and the flattened per-user root for O(1) immutable lookups.
  std::vector<uint32_t> reach_parent_;
  std::vector<uint32_t> reach_root_;
};

}  // namespace s3::core

#endif  // S3_CORE_S3_INSTANCE_H_
