#include "core/snapshot_binary.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <type_traits>
#include <utility>

#include "common/binary_io.h"
#include "doc/document_wire.h"

namespace s3::core {

namespace {

// First byte outside ASCII (PNG-style) so no text dump can alias the
// magic; trailing \n catches CRLF mangling.
constexpr char kMagic[8] = {'\x89', 'S', '3', 'S', 'N', 'A', 'P', '\n'};

enum SectionId : uint32_t {
  kMeta = 1,          // generation/lineage, saturation stats, counts
  kVocab = 2,         // keyword spellings, id order
  kUsers = 3,         // user URIs, id order
  kTerms = 4,         // RDF term dictionary, id order
  kTriples = 5,       // saturated triple store, store order
  kDocs = 6,          // document trees + root URIs, id order
  kComments = 7,      // per-doc comment target
  kTags = 8,          // tag table, id order
  kSocial = 9,        // explicit social edges, insertion order
  kEdges = 10,        // network edge log, insertion order
  kIndex = 11,        // inverted-index postings, ascending keyword
  kMatrix = 12,       // transition-matrix CSR + denominators
  kComponents = 13,   // component union-find forest
  kKeywordComps = 14, // keyword -> component directory, ascending
};
constexpr uint32_t kSectionCount = 14;

// Entity indices are packed into 30 bits (social/entity.h); any count
// at or above this limit cannot have been produced by a real instance.
constexpr uint64_t kMaxEntityCount = 1u << 30;

const char* SectionName(uint32_t id) {
  switch (id) {
    case kMeta: return "META";
    case kVocab: return "VOCAB";
    case kUsers: return "USERS";
    case kTerms: return "TERMS";
    case kTriples: return "TRIPLES";
    case kDocs: return "DOCS";
    case kComments: return "COMMENTS";
    case kTags: return "TAGS";
    case kSocial: return "SOCIAL";
    case kEdges: return "EDGES";
    case kIndex: return "INDEX";
    case kMatrix: return "MATRIX";
    case kComponents: return "COMPONENTS";
    case kKeywordComps: return "KWCOMPS";
    default: return "?";
  }
}

Status SectionError(uint32_t id, const std::string& why) {
  return Status::InvalidArgument(std::string("binary snapshot, section ") +
                                 SectionName(id) + ": " + why);
}

// Population counts and identity carried by the META section; every
// other section is validated against these.
struct Meta {
  uint64_t generation = 0;
  uint64_t lineage = 0;
  uint64_t rdf_social_edges = 0;
  rdf::SaturationStats saturation;
  uint64_t n_users = 0, n_docs = 0, n_nodes = 0, n_tags = 0;
  uint64_t n_keywords = 0, n_edges = 0, n_terms = 0, n_triples = 0;
};

void WriteMeta(const S3Instance& inst, ByteWriter& w) {
  w.U64(inst.generation());
  w.U64(inst.lineage());
  w.U64(inst.rdf_social_edges());
  const rdf::SaturationStats& st = inst.saturation_stats();
  w.U64(st.input_triples);
  w.U64(st.derived_triples);
  w.U64(st.rounds);
  w.U64(inst.UserCount());
  w.U64(inst.docs().DocumentCount());
  w.U64(inst.docs().NodeCount());
  w.U64(inst.TagCount());
  w.U64(inst.vocabulary().size());
  w.U64(inst.edges().size());
  w.U64(inst.terms().size());
  w.U64(inst.rdf_graph().size());
}

bool ReadMeta(ByteReader& r, Meta& m) {
  m.generation = r.U64();
  m.lineage = r.U64();
  m.rdf_social_edges = r.U64();
  m.saturation.input_triples = static_cast<size_t>(r.U64());
  m.saturation.derived_triples = static_cast<size_t>(r.U64());
  m.saturation.rounds = static_cast<size_t>(r.U64());
  m.n_users = r.U64();
  m.n_docs = r.U64();
  m.n_nodes = r.U64();
  m.n_tags = r.U64();
  m.n_keywords = r.U64();
  m.n_edges = r.U64();
  m.n_terms = r.U64();
  m.n_triples = r.U64();
  return r.AtEnd();
}

// One framed section as located in the input.
struct Frame {
  uint64_t size = 0;
  uint32_t crc = 0;
  std::string_view payload;
  bool crc_ok = false;
};

// Walks the header and section frames. `verify_crc` computes checksums
// (LoadBinarySnapshot requires them; InspectBinarySnapshot records
// mismatches instead of failing). On success frames[id-1] holds the
// payload of section `id` — the fixed ascending order is enforced.
Status ParseFrames(std::string_view bytes, bool strict_crc,
                   uint32_t* version, Frame (&frames)[kSectionCount]) {
  ByteReader r(bytes);
  std::string_view magic = r.Bytes(sizeof(kMagic));
  if (r.failed() || magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(
        "binary snapshot: bad magic (not a binary snapshot file)");
  }
  *version = r.U32();
  if (r.failed() || *version != kBinarySnapshotV1) {
    return Status::InvalidArgument(
        "binary snapshot: unsupported format version " +
        std::to_string(*version));
  }
  const uint32_t n_sections = r.U32();
  if (r.failed() || n_sections != kSectionCount) {
    return Status::InvalidArgument(
        "binary snapshot: expected " + std::to_string(kSectionCount) +
        " sections, header declares " + std::to_string(n_sections));
  }
  for (uint32_t expect = 1; expect <= kSectionCount; ++expect) {
    const uint32_t id = r.U32();
    Frame& f = frames[expect - 1];
    f.size = r.U64();
    f.crc = r.U32();
    if (r.failed() || id != expect) {
      return Status::InvalidArgument(
          "binary snapshot: truncated or out-of-order section table "
          "(expected section " + std::string(SectionName(expect)) + ")");
    }
    f.payload = r.Bytes(static_cast<size_t>(f.size));
    if (r.failed()) {
      return SectionError(id, "payload truncated");
    }
    f.crc_ok = Crc32(f.payload) == f.crc;
    if (strict_crc && !f.crc_ok) {
      return SectionError(id, "checksum mismatch (corrupt payload)");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "binary snapshot: trailing bytes after the last section");
  }
  return Status::OK();
}

// ---- section writers ---------------------------------------------------

void AppendSection(std::string* out, uint32_t id,
                   const std::string& payload) {
  ByteWriter w(out);
  w.U32(id);
  w.U64(payload.size());
  w.U32(Crc32(payload));
  out->append(payload);
}

std::string WriteVocab(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.vocabulary().size());
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    w.Str(inst.vocabulary().Spelling(k));
  }
  return p;
}

std::string WriteUsers(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.users().size());
  for (const User& u : inst.users()) w.Str(u.uri);
  return p;
}

std::string WriteTerms(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const rdf::TermDictionary& terms = inst.terms();
  w.U64(terms.size());
  for (rdf::TermId t = 0; t < terms.size(); ++t) {
    w.U8(static_cast<uint8_t>(terms.Kind(t)));
    w.Str(terms.Text(t));
  }
  return p;
}

std::string WriteTriples(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const auto& triples = inst.rdf_graph().triples();
  w.U64(triples.size());
  for (const rdf::Triple& t : triples) {
    w.U32(t.subject);
    w.U32(t.property);
    w.U32(t.object);
    w.F64(t.weight);
  }
  return p;
}

std::string WriteDocs(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const doc::DocumentStore& docs = inst.docs();
  w.U64(docs.DocumentCount());
  for (doc::DocId d = 0; d < docs.DocumentCount(); ++d) {
    w.Str(docs.Uri(docs.RootNode(d)));
    doc::WriteDocumentTree(docs.document(d), w);
  }
  return p;
}

std::string WriteComments(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const size_t n_docs = inst.docs().DocumentCount();
  w.U64(n_docs);
  for (doc::DocId d = 0; d < n_docs; ++d) w.U32(inst.CommentTarget(d));
  return p;
}

std::string WriteTags(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.tags().size());
  for (const Tag& t : inst.tags()) {
    w.U32(t.author);
    w.U8(t.subject.kind() == social::EntityKind::kTag ? 1 : 0);
    w.U32(t.subject.index());
    w.U32(t.keyword);
  }
  return p;
}

std::string WriteSocial(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.explicit_social_edges().size());
  for (const S3Instance::ExplicitSocialEdge& e :
       inst.explicit_social_edges()) {
    w.U32(e.from);
    w.U32(e.to);
    w.F64(e.weight);
  }
  return p;
}

std::string WriteEdges(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.edges().size());
  for (const social::NetEdge& e : inst.edges().edges()) {
    w.U8(static_cast<uint8_t>(e.label));
    w.U32(e.source.packed());
    w.U32(e.target.packed());
    w.F64(e.weight);
  }
  return p;
}

std::string WriteIndex(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  std::vector<KeywordId> keys = inst.index().Keywords();
  std::sort(keys.begin(), keys.end());
  w.U64(keys.size());
  for (KeywordId k : keys) {
    const std::vector<doc::NodeId>& postings = inst.index().Postings(k);
    w.U32(k);
    w.U64(postings.size());
    for (doc::NodeId n : postings) w.U32(n);
  }
  return p;
}

std::string WriteMatrix(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const social::TransitionMatrix& m = inst.matrix();
  w.U64(m.rows());
  for (uint64_t v : m.row_ptr()) w.U64(v);
  w.U64(m.col_index().size());
  for (uint32_t c : m.col_index()) w.U32(c);
  for (double v : m.values()) w.F64(v);
  for (double v : m.denominators()) w.F64(v);
  return p;
}

std::string WriteComponents(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const StorageSpan<uint32_t>& forest = inst.components().forest();
  w.U64(forest.size());
  for (uint32_t parent : forest) w.U32(parent);
  return p;
}

std::string WriteKeywordComps(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  // Ascending keyword scan yields canonical (deterministic) bytes.
  std::vector<std::pair<KeywordId, const std::vector<social::ComponentId>*>>
      entries;
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    const std::vector<social::ComponentId>& comps =
        inst.ComponentsWithKeyword(k);
    if (!comps.empty()) entries.emplace_back(k, &comps);
  }
  w.U64(entries.size());
  for (const auto& [k, comps] : entries) {
    w.U32(k);
    w.U64(comps->size());
    for (social::ComponentId c : *comps) w.U32(c);
  }
  return p;
}

// ---- section readers ---------------------------------------------------
// Each reader consumes its payload exactly (AtEnd is part of the
// contract) and validates ids against the META counts.

Status ReadVocab(ByteReader& r, const Meta& meta, Vocabulary& vocab) {
  const uint64_t n = r.U64();
  if (n != meta.n_keywords) return SectionError(kVocab, "count mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    std::string spelling = r.Str();
    if (r.failed()) break;
    if (vocab.Intern(spelling) != i) {
      return SectionError(kVocab, "duplicate spelling at id " +
                                      std::to_string(i));
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section VOCAB");
  return Status::OK();
}

Status ReadUsers(ByteReader& r, const Meta& meta,
                 std::vector<User>& users) {
  const uint64_t n = r.U64();
  if (n != meta.n_users) return SectionError(kUsers, "count mismatch");
  if (!r.FitsCount(n, 4)) return SectionError(kUsers, "count truncated");
  users.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    users.push_back(User{static_cast<social::UserId>(i), r.Str()});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section USERS");
  return Status::OK();
}

Status ReadTerms(ByteReader& r, const Meta& meta,
                 rdf::TermDictionary& terms) {
  const uint64_t n = r.U64();
  if (n != meta.n_terms) return SectionError(kTerms, "count mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t kind = r.U8();
    std::string text = r.Str();
    if (r.failed()) break;
    if (kind > 1) return SectionError(kTerms, "bad term kind");
    if (terms.Intern(text, static_cast<rdf::TermKind>(kind)) != i) {
      return SectionError(kTerms,
                          "duplicate term at id " + std::to_string(i));
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TERMS");
  return Status::OK();
}

Status ReadTriples(ByteReader& r, const Meta& meta,
                   const rdf::TermDictionary& terms,
                   rdf::TripleStore& rdf) {
  const uint64_t n = r.U64();
  if (n != meta.n_triples) return SectionError(kTriples, "count mismatch");
  if (!r.FitsCount(n, 20)) return SectionError(kTriples, "count truncated");
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t s = r.U32();
    const uint32_t p = r.U32();
    const uint32_t o = r.U32();
    const double w = r.F64();
    if (r.failed()) break;
    if (s >= meta.n_terms || p >= meta.n_terms || o >= meta.n_terms) {
      return SectionError(kTriples, "term id out of range");
    }
    // RDF: subjects and properties are URIs; weights live in [0, 1].
    if (terms.Kind(s) != rdf::TermKind::kUri ||
        terms.Kind(p) != rdf::TermKind::kUri) {
      return SectionError(kTriples, "literal subject or property");
    }
    if (!(w >= 0.0 && w <= 1.0)) {
      return SectionError(kTriples, "weight outside [0,1]");
    }
    if (!rdf.Add(s, p, o, w)) {
      return SectionError(kTriples, "duplicate triple");
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TRIPLES");
  return Status::OK();
}

Status ReadDocs(ByteReader& r, const Meta& meta,
                doc::DocumentStore& docs) {
  const uint64_t n = r.U64();
  if (n != meta.n_docs) return SectionError(kDocs, "count mismatch");
  for (uint64_t d = 0; d < n; ++d) {
    std::string uri = r.Str();
    if (r.failed()) break;
    Result<doc::Document> document =
        doc::ReadDocumentTree(r, meta.n_keywords);
    if (!document.ok()) {
      return SectionError(kDocs, "doc " + std::to_string(d) + ": " +
                                     document.status().message());
    }
    Result<doc::DocId> added = docs.AddDocument(std::move(*document), uri);
    if (!added.ok()) {
      return SectionError(kDocs, "doc " + std::to_string(d) + ": " +
                                     added.status().message());
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section DOCS");
  if (docs.NodeCount() != meta.n_nodes) {
    return SectionError(kDocs, "node total mismatch");
  }
  return Status::OK();
}

Status ReadComments(ByteReader& r, const Meta& meta,
                    std::vector<doc::NodeId>& comment_target) {
  const uint64_t n = r.U64();
  if (n != meta.n_docs) return SectionError(kComments, "count mismatch");
  if (!r.FitsCount(n, 4)) return SectionError(kComments, "count truncated");
  comment_target.reserve(static_cast<size_t>(n));
  for (uint64_t d = 0; d < n; ++d) comment_target.push_back(r.U32());
  if (!r.AtEnd()) return r.status("binary snapshot, section COMMENTS");
  return Status::OK();
}

Status ReadTags(ByteReader& r, const Meta& meta, std::vector<Tag>& tags) {
  const uint64_t n = r.U64();
  if (n != meta.n_tags) return SectionError(kTags, "count mismatch");
  if (!r.FitsCount(n, 13)) return SectionError(kTags, "count truncated");
  tags.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t author = r.U32();
    const uint8_t on_tag = r.U8();
    const uint32_t subject = r.U32();
    const uint32_t keyword = r.U32();
    if (r.failed()) break;
    if (on_tag > 1 || subject >= kMaxEntityCount) {
      return SectionError(kTags, "bad tag subject");
    }
    tags.push_back(Tag{static_cast<social::TagId>(i), author,
                       on_tag ? social::EntityId::Tag(subject)
                              : social::EntityId::Fragment(subject),
                       keyword});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TAGS");
  return Status::OK();
}

Status ReadSocial(ByteReader& r, const Meta& /*meta*/,
                  std::vector<S3Instance::ExplicitSocialEdge>& social) {
  const uint64_t n = r.U64();
  if (!r.FitsCount(n, 16)) return SectionError(kSocial, "count truncated");
  social.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    S3Instance::ExplicitSocialEdge e;
    e.from = r.U32();
    e.to = r.U32();
    e.weight = r.F64();
    social.push_back(e);
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section SOCIAL");
  return Status::OK();
}

Status ReadEdges(ByteReader& r, const Meta& meta,
                 social::EdgeStore& edges) {
  const uint64_t n = r.U64();
  if (n != meta.n_edges) return SectionError(kEdges, "count mismatch");
  if (!r.FitsCount(n, 17)) return SectionError(kEdges, "count truncated");
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t label = r.U8();
    const uint32_t source = r.U32();
    const uint32_t target = r.U32();
    const double weight = r.F64();
    if (r.failed()) break;
    if (label > static_cast<uint8_t>(social::EdgeLabel::kHasAuthorInv)) {
      return SectionError(kEdges, "bad edge label");
    }
    if (!social::EntityId::ValidKind(source) ||
        !social::EntityId::ValidKind(target)) {
      return SectionError(kEdges, "bad edge endpoint kind");
    }
    if (!(weight > 0.0 && weight <= 1.0)) {
      return SectionError(kEdges, "edge weight outside (0,1]");
    }
    edges.Add(social::EntityId::FromPacked(source),
              social::EntityId::FromPacked(target),
              static_cast<social::EdgeLabel>(label), weight);
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section EDGES");
  return Status::OK();
}

Status ReadIndex(ByteReader& r, const Meta& meta,
                 doc::InvertedIndex& index) {
  const uint64_t n = r.U64();
  if (!r.FitsCount(n, 12)) return SectionError(kIndex, "count truncated");
  KeywordId prev = 0;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    const KeywordId k = r.U32();
    const uint64_t len = r.U64();
    if (r.failed()) break;
    if (k >= meta.n_keywords || (!first && k <= prev)) {
      return SectionError(kIndex, "keyword ids not ascending/in range");
    }
    first = false;
    prev = k;
    if (!r.FitsCount(len, 4)) {
      return SectionError(kIndex, "postings length truncated");
    }
    std::vector<doc::NodeId> nodes;
    nodes.reserve(static_cast<size_t>(len));
    for (uint64_t j = 0; j < len; ++j) nodes.push_back(r.U32());
    if (r.failed()) break;
    Status adopted = index.AdoptPostings(
        k, std::move(nodes), static_cast<size_t>(meta.n_nodes));
    if (!adopted.ok()) {
      return SectionError(kIndex, adopted.message());
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section INDEX");
  return Status::OK();
}

Status ReadMatrix(ByteReader& r, const Meta& meta,
                  S3Instance::SnapshotDerived& der) {
  const uint64_t n_rows = r.U64();
  const uint64_t expected =
      meta.n_users + meta.n_nodes + meta.n_tags;
  if (n_rows != expected) return SectionError(kMatrix, "row count mismatch");
  if (!r.FitsCount(n_rows + 1, 8)) {
    return SectionError(kMatrix, "row table truncated");
  }
  std::vector<uint64_t> row_ptr;
  row_ptr.reserve(static_cast<size_t>(n_rows) + 1);
  for (uint64_t i = 0; i <= n_rows; ++i) row_ptr.push_back(r.U64());
  const uint64_t nnz = r.U64();
  if (!r.FitsCount(nnz, 12)) return SectionError(kMatrix, "nnz truncated");
  std::vector<uint32_t> cols;
  cols.reserve(static_cast<size_t>(nnz));
  for (uint64_t i = 0; i < nnz; ++i) cols.push_back(r.U32());
  std::vector<double> vals;
  vals.reserve(static_cast<size_t>(nnz));
  for (uint64_t i = 0; i < nnz; ++i) vals.push_back(r.F64());
  std::vector<double> denom;
  denom.reserve(static_cast<size_t>(n_rows));
  for (uint64_t i = 0; i < n_rows; ++i) denom.push_back(r.F64());
  if (!r.AtEnd()) return r.status("binary snapshot, section MATRIX");
  der.matrix_row_ptr = std::move(row_ptr);
  der.matrix_cols = std::move(cols);
  der.matrix_vals = std::move(vals);
  der.matrix_denom = std::move(denom);
  return Status::OK();
}

Status ReadComponents(ByteReader& r, const Meta& meta,
                      StorageSpan<uint32_t>& forest) {
  const uint64_t n = r.U64();
  if (n != meta.n_users + meta.n_nodes + meta.n_tags) {
    return SectionError(kComponents, "row count mismatch");
  }
  if (!r.FitsCount(n, 4)) {
    return SectionError(kComponents, "count truncated");
  }
  std::vector<uint32_t> parents;
  parents.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) parents.push_back(r.U32());
  if (!r.AtEnd()) return r.status("binary snapshot, section COMPONENTS");
  forest = std::move(parents);
  return Status::OK();
}

Status ReadKeywordComps(
    ByteReader& r, const Meta& /*meta*/,
    std::vector<std::pair<KeywordId, std::vector<social::ComponentId>>>&
        out) {
  const uint64_t n = r.U64();
  if (!r.FitsCount(n, 12)) {
    return SectionError(kKeywordComps, "count truncated");
  }
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const KeywordId k = r.U32();
    const uint64_t len = r.U64();
    if (r.failed()) break;
    if (!r.FitsCount(len, 4)) {
      return SectionError(kKeywordComps, "list length truncated");
    }
    std::vector<social::ComponentId> comps;
    comps.reserve(static_cast<size_t>(len));
    for (uint64_t j = 0; j < len; ++j) comps.push_back(r.U32());
    out.emplace_back(k, std::move(comps));
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section KWCOMPS");
  return Status::OK();
}

// ======================= format v2 ======================================
//
// Layout (see src/server/STORAGE.md for the full spec):
//
//   magic(8) · u32 version=2 · u32 section_count · u32 table_crc ·
//   table[section_count] · payloads
//
// The table is section_count fixed 36-byte entries
//   (u32 id, u8 encoding, u8 elem_size, u16 reserved=0,
//    u64 offset, u64 disk_size, u64 mem_bytes, u32 crc)
// and is covered by table_crc; version and section_count are pinned by
// the parse itself. Payloads follow at the exact offsets the canonical
// writer produces — aligned sections at the next multiple of 64, all
// others immediately after their predecessor — with the gaps
// zero-padded and *validated* as zeros on parse. Every byte of a v2
// file is therefore accounted for (magic / pinned header / table CRC /
// padding / payload CRCs), which is what lets the bit-flip robustness
// sweep assert that any single-bit corruption is rejected on the
// eager-CRC paths.
//
// Encodings:
//   raw          — v1-style fixed-width stream (META, DOCS).
//   varint-delta — LEB128 fields, ascending id sequences and postings
//                  /CSR columns delta-coded; weights carry a tag byte
//                  (0 → implied 1.0, 1 → F64 follows).
//   aligned      — little-endian fixed-width array at a 64-byte file
//                  offset; attaches as a zero-copy StorageSpan view.

enum V2Encoding : uint8_t {
  kEncRaw = 0,
  kEncCompact = 1,
  kEncAligned = 2,
};

enum V2SectionId : uint32_t {
  // 1..11 coincide with the v1 ids (META..INDEX) on purpose: shared
  // names and shared META machinery.
  kV2MatrixRowPtr = 12,  // aligned u64[rows+1]
  kV2MatrixCols = 13,    // compact: per-row delta-coded columns
  kV2MatrixVals = 14,    // aligned f64[nnz]
  kV2MatrixDenom = 15,   // aligned f64[rows]
  kV2Forest = 16,        // aligned u32[rows]
  kV2KwComps = 17,       // compact keyword -> component directory
};
constexpr uint32_t kV2SectionCount = 17;
constexpr size_t kV2TableEntryBytes = 36;
constexpr uint64_t kV2Alignment = 64;

struct V2SectionSpec {
  uint8_t encoding;
  uint8_t elem_size;  // aligned sections: element width; 0 otherwise
};

const V2SectionSpec& V2Spec(uint32_t id) {
  static const V2SectionSpec specs[kV2SectionCount + 1] = {
      {kEncRaw, 0},      // 0 (unused)
      {kEncRaw, 0},      // 1 META
      {kEncCompact, 0},  // 2 VOCAB
      {kEncCompact, 0},  // 3 USERS
      {kEncCompact, 0},  // 4 TERMS
      {kEncCompact, 0},  // 5 TRIPLES
      {kEncRaw, 0},      // 6 DOCS (document_wire, shared with the WAL)
      {kEncCompact, 0},  // 7 COMMENTS
      {kEncCompact, 0},  // 8 TAGS
      {kEncCompact, 0},  // 9 SOCIAL
      {kEncCompact, 0},  // 10 EDGES
      {kEncCompact, 0},  // 11 INDEX
      {kEncAligned, 8},  // 12 MATRIXROWPTR
      {kEncCompact, 0},  // 13 MATRIXCOLS
      {kEncAligned, 8},  // 14 MATRIXVALS
      {kEncAligned, 8},  // 15 MATRIXDENOM
      {kEncAligned, 4},  // 16 FOREST
      {kEncCompact, 0},  // 17 KWCOMPS
  };
  return specs[id];
}

const char* SectionNameV2(uint32_t id) {
  switch (id) {
    case kV2MatrixRowPtr: return "MATRIXROWPTR";
    case kV2MatrixCols: return "MATRIXCOLS";
    case kV2MatrixVals: return "MATRIXVALS";
    case kV2MatrixDenom: return "MATRIXDENOM";
    case kV2Forest: return "FOREST";
    case kV2KwComps: return "KWCOMPS";
    default: return SectionName(id);
  }
}

const char* EncodingName(uint8_t encoding) {
  switch (encoding) {
    case kEncCompact: return "varint-delta";
    case kEncAligned: return "aligned";
    default: return "raw";
  }
}

Status SectionErrorV2(uint32_t id, const std::string& why) {
  return Status::InvalidArgument(std::string("binary snapshot, section ") +
                                 SectionNameV2(id) + ": " + why);
}

// ---- v2 section writers ------------------------------------------------
// Each returns the wire payload and reports the decoded (v1-equivalent
// fixed-width) size through `mem`, the numerator-free half of the
// compression ratio surfaced by `s3_snapshot inspect`.

void WriteWeightTag(ByteWriter& w, double weight) {
  if (weight == 1.0) {
    w.U8(0);
  } else {
    w.U8(1);
    w.F64(weight);
  }
}

std::string WriteVocabV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  w.Var(inst.vocabulary().size());
  *mem = 8;
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    std::string_view s = inst.vocabulary().Spelling(k);
    w.VarStr(s);
    *mem += 4 + s.size();
  }
  return p;
}

std::string WriteUsersV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  w.Var(inst.users().size());
  *mem = 8;
  for (const User& u : inst.users()) {
    w.VarStr(u.uri);
    *mem += 4 + u.uri.size();
  }
  return p;
}

std::string WriteTermsV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  const rdf::TermDictionary& terms = inst.terms();
  w.Var(terms.size());
  *mem = 8;
  for (rdf::TermId t = 0; t < terms.size(); ++t) {
    w.U8(static_cast<uint8_t>(terms.Kind(t)));
    w.VarStr(terms.Text(t));
    *mem += 5 + terms.Text(t).size();
  }
  return p;
}

std::string WriteTriplesV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  const auto& triples = inst.rdf_graph().triples();
  w.Var(triples.size());
  *mem = 8 + 20 * triples.size();
  for (const rdf::Triple& t : triples) {
    w.Var(t.subject);
    w.Var(t.property);
    w.Var(t.object);
    WriteWeightTag(w, t.weight);
  }
  return p;
}

std::string WriteCommentsV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  const size_t n_docs = inst.docs().DocumentCount();
  w.Var(n_docs);
  *mem = 8 + 4 * n_docs;
  for (doc::DocId d = 0; d < n_docs; ++d) {
    const doc::NodeId t = inst.CommentTarget(d);
    w.Var(t == doc::kInvalidNode ? 0 : static_cast<uint64_t>(t) + 1);
  }
  return p;
}

std::string WriteTagsV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  w.Var(inst.tags().size());
  *mem = 8 + 13 * inst.tags().size();
  for (const Tag& t : inst.tags()) {
    w.Var(t.author);
    w.U8(t.subject.kind() == social::EntityKind::kTag ? 1 : 0);
    w.Var(t.subject.index());
    w.Var(t.keyword == kInvalidKeyword ? 0
                                       : static_cast<uint64_t>(t.keyword) + 1);
  }
  return p;
}

std::string WriteSocialV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  const auto& edges = inst.explicit_social_edges();
  w.Var(edges.size());
  *mem = 8 + 16 * edges.size();
  for (const S3Instance::ExplicitSocialEdge& e : edges) {
    w.Var(e.from);
    w.Var(e.to);
    WriteWeightTag(w, e.weight);
  }
  return p;
}

// EDGES opcodes. The edge log is dominated by two redundant shapes:
// social edges that mirror the SOCIAL section entry-for-entry (same
// from/to/weight, in order), and inverse twins appended by
// AddWithInverse right after their forward edge. Both collapse to one
// byte; everything else is written in full with the entity's (kind,
// index) split packed low so small indices stay small varints.
constexpr uint8_t kEdgeOpSocialRef = 0x40;  // next SOCIAL entry, verbatim
constexpr uint8_t kEdgeOpInverse = 0x41;    // mirror of the previous edge

uint32_t KindSplit(social::EntityId e) {
  return (e.index() << 2) | static_cast<uint32_t>(e.kind());
}

bool IsForwardLabel(social::EdgeLabel label) {
  const auto v = static_cast<uint8_t>(label);
  return v >= 1 && (v % 2) == 1;  // kPostedBy/kCommentsOn/kHasSubject/kHasAuthor
}

std::string WriteEdgesV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  w.Var(inst.edges().size());
  *mem = 8 + 17 * inst.edges().size();
  const auto& social_edges = inst.explicit_social_edges();
  size_t social_cursor = 0;
  const social::NetEdge* prev = nullptr;
  for (const social::NetEdge& e : inst.edges().edges()) {
    if (e.label == social::EdgeLabel::kSocial &&
        social_cursor < social_edges.size() &&
        e.source == social::EntityId::User(social_edges[social_cursor].from) &&
        e.target == social::EntityId::User(social_edges[social_cursor].to) &&
        e.weight == social_edges[social_cursor].weight) {
      w.U8(kEdgeOpSocialRef);
      ++social_cursor;
    } else if (prev != nullptr && IsForwardLabel(prev->label) &&
               static_cast<uint8_t>(e.label) ==
                   static_cast<uint8_t>(prev->label) + 1 &&
               e.source == prev->target && e.target == prev->source &&
               e.weight == prev->weight) {
      w.U8(kEdgeOpInverse);
    } else {
      w.U8(static_cast<uint8_t>(e.label));
      w.Var(KindSplit(e.source));
      w.Var(KindSplit(e.target));
      WriteWeightTag(w, e.weight);
    }
    prev = &e;
  }
  return p;
}

std::string WriteIndexV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  std::vector<KeywordId> keys = inst.index().Keywords();
  std::sort(keys.begin(), keys.end());
  w.Var(keys.size());
  *mem = 8;
  KeywordId prev_k = 0;
  bool first = true;
  for (KeywordId k : keys) {
    const std::vector<doc::NodeId>& postings = inst.index().Postings(k);
    w.Var(first ? k : k - prev_k);
    first = false;
    prev_k = k;
    w.Var(postings.size());
    *mem += 12 + 4 * postings.size();
    doc::NodeId prev_n = 0;
    for (size_t i = 0; i < postings.size(); ++i) {
      w.Var(i == 0 ? postings[i] : postings[i] - prev_n);
      prev_n = postings[i];
    }
  }
  return p;
}

std::string WriteMatrixRowPtrV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  for (uint64_t v : inst.matrix().row_ptr()) w.U64(v);
  *mem = p.size();
  return p;
}

std::string WriteMatrixColsV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  const social::TransitionMatrix& m = inst.matrix();
  *mem = 4 * m.col_index().size();
  for (size_t row = 0; row < m.rows(); ++row) {
    const uint64_t begin = m.row_ptr()[row], end = m.row_ptr()[row + 1];
    uint32_t prev = 0;
    for (uint64_t i = begin; i < end; ++i) {
      const uint32_t c = m.col_index()[i];
      w.Var(i == begin ? c : c - prev);
      prev = c;
    }
  }
  return p;
}

std::string WriteMatrixValsV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  for (double v : inst.matrix().values()) w.F64(v);
  *mem = p.size();
  return p;
}

std::string WriteMatrixDenomV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  for (double v : inst.matrix().denominators()) w.F64(v);
  *mem = p.size();
  return p;
}

std::string WriteForestV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  for (uint32_t parent : inst.components().forest()) w.U32(parent);
  *mem = p.size();
  return p;
}

std::string WriteKeywordCompsV2(const S3Instance& inst, uint64_t* mem) {
  std::string p;
  ByteWriter w(&p);
  std::vector<std::pair<KeywordId, const std::vector<social::ComponentId>*>>
      entries;
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    const std::vector<social::ComponentId>& comps =
        inst.ComponentsWithKeyword(k);
    if (!comps.empty()) entries.emplace_back(k, &comps);
  }
  w.Var(entries.size());
  *mem = 8;
  KeywordId prev_k = 0;
  bool first = true;
  for (const auto& [k, comps] : entries) {
    w.Var(first ? k : k - prev_k);
    first = false;
    prev_k = k;
    w.Var(comps->size());
    *mem += 12 + 4 * comps->size();
    social::ComponentId prev_c = 0;
    for (size_t i = 0; i < comps->size(); ++i) {
      w.Var(i == 0 ? (*comps)[i] : (*comps)[i] - prev_c);
      prev_c = (*comps)[i];
    }
  }
  return p;
}

Result<std::string> SaveBinarySnapshotV2(const S3Instance& inst) {
  struct Out {
    std::string payload;
    uint64_t mem_bytes = 0;
  };
  Out sections[kV2SectionCount];
  auto set = [&](uint32_t id, std::string payload, uint64_t mem) {
    sections[id - 1] = Out{std::move(payload), mem};
  };
  {
    std::string meta;
    ByteWriter w(&meta);
    WriteMeta(inst, w);
    const uint64_t mem = meta.size();
    set(kMeta, std::move(meta), mem);
  }
  // Two statements per section: the writer must run before its
  // mem_bytes out-param is read (argument evaluation order is
  // unspecified).
  auto add = [&](uint32_t id, std::string (*writer)(const S3Instance&,
                                                    uint64_t*)) {
    uint64_t mem = 0;
    std::string payload = writer(inst, &mem);
    set(id, std::move(payload), mem);
  };
  add(kVocab, WriteVocabV2);
  add(kUsers, WriteUsersV2);
  add(kTerms, WriteTermsV2);
  add(kTriples, WriteTriplesV2);
  {
    std::string docs = WriteDocs(inst);  // raw: shared with v1 / the WAL
    const uint64_t docs_mem = docs.size();
    set(kDocs, std::move(docs), docs_mem);
  }
  add(kComments, WriteCommentsV2);
  add(kTags, WriteTagsV2);
  add(kSocial, WriteSocialV2);
  add(kEdges, WriteEdgesV2);
  add(kIndex, WriteIndexV2);
  add(kV2MatrixRowPtr, WriteMatrixRowPtrV2);
  add(kV2MatrixCols, WriteMatrixColsV2);
  add(kV2MatrixVals, WriteMatrixValsV2);
  add(kV2MatrixDenom, WriteMatrixDenomV2);
  add(kV2Forest, WriteForestV2);
  add(kV2KwComps, WriteKeywordCompsV2);

  // Lay the payloads out (aligned sections at 64-byte file offsets)
  // and build the table.
  const uint64_t header_bytes = sizeof(kMagic) + 4 + 4 + 4 +
                                kV2SectionCount * kV2TableEntryBytes;
  std::string table;
  ByteWriter tw(&table);
  uint64_t offsets[kV2SectionCount];
  uint64_t pos = header_bytes;
  for (uint32_t id = 1; id <= kV2SectionCount; ++id) {
    const V2SectionSpec& spec = V2Spec(id);
    if (spec.encoding == kEncAligned) {
      pos = (pos + kV2Alignment - 1) / kV2Alignment * kV2Alignment;
    }
    offsets[id - 1] = pos;
    const Out& s = sections[id - 1];
    tw.U32(id);
    tw.U8(spec.encoding);
    tw.U8(spec.elem_size);
    tw.U8(0);  // reserved
    tw.U8(0);
    tw.U64(pos);
    tw.U64(s.payload.size());
    tw.U64(s.mem_bytes);
    tw.U32(Crc32(s.payload));
    pos += s.payload.size();
  }

  std::string out;
  out.reserve(static_cast<size_t>(pos));
  out.append(kMagic, sizeof(kMagic));
  {
    ByteWriter w(&out);
    w.U32(kBinarySnapshotV2);
    w.U32(kV2SectionCount);
    w.U32(Crc32(table));
  }
  out.append(table);
  for (uint32_t id = 1; id <= kV2SectionCount; ++id) {
    out.resize(static_cast<size_t>(offsets[id - 1]), '\0');  // zero padding
    out.append(sections[id - 1].payload);
  }
  return out;
}

// ---- v2 parse ----------------------------------------------------------

// One located v2 section.
struct V2Entry {
  uint64_t offset = 0;
  uint64_t disk_size = 0;
  uint64_t mem_bytes = 0;
  uint32_t crc = 0;
  std::string_view payload;
};

// Validates the v2 header, table checksum and the exact canonical
// layout (offsets, alignment, zero padding, no trailing bytes). Does
// NOT check payload checksums — callers pick eager or lazy per
// section.
Status ParseV2Table(std::string_view bytes,
                    V2Entry (&entries)[kV2SectionCount]) {
  ByteReader r(bytes);
  r.Skip(sizeof(kMagic));
  (void)r.U32();  // version, verified by the dispatcher
  const uint32_t n_sections = r.U32();
  const uint32_t table_crc = r.U32();
  if (r.failed() || n_sections != kV2SectionCount) {
    return Status::InvalidArgument(
        "binary snapshot: expected " + std::to_string(kV2SectionCount) +
        " sections, header declares " + std::to_string(n_sections));
  }
  std::string_view table = r.Bytes(kV2SectionCount * kV2TableEntryBytes);
  if (r.failed()) {
    return Status::InvalidArgument("binary snapshot: section table truncated");
  }
  if (Crc32(table) != table_crc) {
    return Status::InvalidArgument(
        "binary snapshot: section table checksum mismatch");
  }
  ByteReader tr(table);
  uint64_t pos = r.offset();
  for (uint32_t expect = 1; expect <= kV2SectionCount; ++expect) {
    const V2SectionSpec& spec = V2Spec(expect);
    const uint32_t id = tr.U32();
    const uint8_t encoding = tr.U8();
    const uint8_t elem_size = tr.U8();
    const uint8_t reserved0 = tr.U8();
    const uint8_t reserved1 = tr.U8();
    V2Entry& e = entries[expect - 1];
    e.offset = tr.U64();
    e.disk_size = tr.U64();
    e.mem_bytes = tr.U64();
    e.crc = tr.U32();
    if (tr.failed() || id != expect || encoding != spec.encoding ||
        elem_size != spec.elem_size || reserved0 != 0 || reserved1 != 0) {
      return Status::InvalidArgument(
          std::string("binary snapshot: malformed table entry for section ") +
          SectionNameV2(expect));
    }
    const uint64_t align = encoding == kEncAligned ? kV2Alignment : 1;
    const uint64_t aligned_pos = (pos + align - 1) / align * align;
    if (e.offset != aligned_pos) {
      return SectionErrorV2(expect, "unexpected payload offset");
    }
    if (aligned_pos > bytes.size() ||
        e.disk_size > bytes.size() - aligned_pos) {
      return SectionErrorV2(expect, "payload truncated");
    }
    // Alignment gaps are part of the canonical layout: they must be
    // zero so no byte of the file escapes validation.
    for (uint64_t i = pos; i < aligned_pos; ++i) {
      if (bytes[static_cast<size_t>(i)] != 0) {
        return SectionErrorV2(expect, "nonzero padding");
      }
    }
    if (encoding == kEncAligned &&
        (elem_size == 0 || e.disk_size % elem_size != 0 ||
         e.mem_bytes != e.disk_size)) {
      return SectionErrorV2(expect, "bad aligned extent");
    }
    e.payload = bytes.substr(static_cast<size_t>(aligned_pos),
                             static_cast<size_t>(e.disk_size));
    pos = aligned_pos + e.disk_size;
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument(
        "binary snapshot: trailing bytes after the last section");
  }
  return Status::OK();
}

// ---- v2 section readers ------------------------------------------------
// Compact mirrors of the v1 readers: same counts-vs-META validation,
// varint fields, delta-coded ascending sequences.

Status ReadVocabV2(ByteReader& r, const Meta& meta, Vocabulary& vocab) {
  const uint64_t n = r.Var();
  if (n != meta.n_keywords) return SectionErrorV2(kVocab, "count mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    std::string spelling = r.VarStr();
    if (r.failed()) break;
    if (vocab.Intern(spelling) != i) {
      return SectionErrorV2(kVocab, "duplicate spelling at id " +
                                        std::to_string(i));
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section VOCAB");
  return Status::OK();
}

Status ReadUsersV2(ByteReader& r, const Meta& meta,
                   std::vector<User>& users) {
  const uint64_t n = r.Var();
  if (n != meta.n_users) return SectionErrorV2(kUsers, "count mismatch");
  if (!r.FitsCount(n, 1)) return SectionErrorV2(kUsers, "count truncated");
  users.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    users.push_back(User{static_cast<social::UserId>(i), r.VarStr()});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section USERS");
  return Status::OK();
}

Status ReadTermsV2(ByteReader& r, const Meta& meta,
                   rdf::TermDictionary& terms) {
  const uint64_t n = r.Var();
  if (n != meta.n_terms) return SectionErrorV2(kTerms, "count mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t kind = r.U8();
    std::string text = r.VarStr();
    if (r.failed()) break;
    if (kind > 1) return SectionErrorV2(kTerms, "bad term kind");
    if (terms.Intern(text, static_cast<rdf::TermKind>(kind)) != i) {
      return SectionErrorV2(kTerms,
                            "duplicate term at id " + std::to_string(i));
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TERMS");
  return Status::OK();
}

Status ReadTriplesV2(ByteReader& r, const Meta& meta,
                     const rdf::TermDictionary& terms,
                     rdf::TripleStore& rdf) {
  const uint64_t n = r.Var();
  if (n != meta.n_triples) return SectionErrorV2(kTriples, "count mismatch");
  if (!r.FitsCount(n, 4)) return SectionErrorV2(kTriples, "count truncated");
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t s = r.Var();
    const uint64_t p = r.Var();
    const uint64_t o = r.Var();
    const uint8_t tag = r.U8();
    if (tag > 1) return SectionErrorV2(kTriples, "bad weight tag");
    const double w = tag == 0 ? 1.0 : r.F64();
    if (r.failed()) break;
    if (s >= meta.n_terms || p >= meta.n_terms || o >= meta.n_terms) {
      return SectionErrorV2(kTriples, "term id out of range");
    }
    if (terms.Kind(static_cast<rdf::TermId>(s)) != rdf::TermKind::kUri ||
        terms.Kind(static_cast<rdf::TermId>(p)) != rdf::TermKind::kUri) {
      return SectionErrorV2(kTriples, "literal subject or property");
    }
    if (!(w >= 0.0 && w <= 1.0)) {
      return SectionErrorV2(kTriples, "weight outside [0,1]");
    }
    if (!rdf.Add(static_cast<rdf::TermId>(s), static_cast<rdf::TermId>(p),
                 static_cast<rdf::TermId>(o), w)) {
      return SectionErrorV2(kTriples, "duplicate triple");
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TRIPLES");
  return Status::OK();
}

Status ReadCommentsV2(ByteReader& r, const Meta& meta,
                      std::vector<doc::NodeId>& comment_target) {
  const uint64_t n = r.Var();
  if (n != meta.n_docs) return SectionErrorV2(kComments, "count mismatch");
  if (!r.FitsCount(n, 1)) return SectionErrorV2(kComments, "count truncated");
  comment_target.reserve(static_cast<size_t>(n));
  for (uint64_t d = 0; d < n; ++d) {
    const uint64_t v = r.Var();
    if (r.failed()) break;
    if (v != 0 && v - 1 >= kMaxEntityCount) {
      return SectionErrorV2(kComments, "bad comment target");
    }
    comment_target.push_back(
        v == 0 ? doc::kInvalidNode : static_cast<doc::NodeId>(v - 1));
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section COMMENTS");
  return Status::OK();
}

Status ReadTagsV2(ByteReader& r, const Meta& meta, std::vector<Tag>& tags) {
  const uint64_t n = r.Var();
  if (n != meta.n_tags) return SectionErrorV2(kTags, "count mismatch");
  if (!r.FitsCount(n, 4)) return SectionErrorV2(kTags, "count truncated");
  tags.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t author = r.Var();
    const uint8_t on_tag = r.U8();
    const uint64_t subject = r.Var();
    const uint64_t keyword_plus = r.Var();
    if (r.failed()) break;
    if (on_tag > 1 || subject >= kMaxEntityCount) {
      return SectionErrorV2(kTags, "bad tag subject");
    }
    if (author > UINT32_MAX || keyword_plus > UINT32_MAX) {
      return SectionErrorV2(kTags, "bad tag field");
    }
    tags.push_back(
        Tag{static_cast<social::TagId>(i), static_cast<social::UserId>(author),
            on_tag ? social::EntityId::Tag(static_cast<uint32_t>(subject))
                   : social::EntityId::Fragment(static_cast<uint32_t>(subject)),
            keyword_plus == 0 ? kInvalidKeyword
                              : static_cast<KeywordId>(keyword_plus - 1)});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TAGS");
  return Status::OK();
}

Status ReadSocialV2(ByteReader& r, const Meta& /*meta*/,
                    std::vector<S3Instance::ExplicitSocialEdge>& social) {
  const uint64_t n = r.Var();
  if (!r.FitsCount(n, 3)) return SectionErrorV2(kSocial, "count truncated");
  social.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t from = r.Var();
    const uint64_t to = r.Var();
    const uint8_t tag = r.U8();
    if (tag > 1) return SectionErrorV2(kSocial, "bad weight tag");
    const double weight = tag == 0 ? 1.0 : r.F64();
    if (r.failed()) break;
    if (from > UINT32_MAX || to > UINT32_MAX) {
      return SectionErrorV2(kSocial, "bad user id");
    }
    social.push_back(S3Instance::ExplicitSocialEdge{
        static_cast<social::UserId>(from), static_cast<social::UserId>(to),
        weight});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section SOCIAL");
  return Status::OK();
}

Status ReadEdgesV2(ByteReader& r, const Meta& meta,
                   const std::vector<S3Instance::ExplicitSocialEdge>& social,
                   social::EdgeStore& edges) {
  const uint64_t n = r.Var();
  if (n != meta.n_edges) return SectionErrorV2(kEdges, "count mismatch");
  if (!r.FitsCount(n, 1)) return SectionErrorV2(kEdges, "count truncated");
  size_t social_cursor = 0;
  bool have_prev = false;
  social::NetEdge prev{};
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t op = r.U8();
    if (r.failed()) break;
    social::NetEdge e{};
    if (op == kEdgeOpSocialRef) {
      if (social_cursor >= social.size()) {
        return SectionErrorV2(kEdges, "social backref past SOCIAL section");
      }
      const S3Instance::ExplicitSocialEdge& s = social[social_cursor++];
      if (s.from >= (1u << 30) || s.to >= (1u << 30)) {
        return SectionErrorV2(kEdges, "social backref user out of range");
      }
      e = social::NetEdge{social::EntityId::User(s.from),
                          social::EntityId::User(s.to),
                          social::EdgeLabel::kSocial, s.weight};
    } else if (op == kEdgeOpInverse) {
      if (!have_prev || !IsForwardLabel(prev.label)) {
        return SectionErrorV2(kEdges, "inverse opcode without forward edge");
      }
      e = social::NetEdge{
          prev.target, prev.source,
          static_cast<social::EdgeLabel>(static_cast<uint8_t>(prev.label) + 1),
          prev.weight};
    } else {
      if (op > static_cast<uint8_t>(social::EdgeLabel::kHasAuthorInv)) {
        return SectionErrorV2(kEdges, "bad edge label");
      }
      const uint64_t source = r.Var();
      const uint64_t target = r.Var();
      const uint8_t tag = r.U8();
      if (tag > 1) return SectionErrorV2(kEdges, "bad weight tag");
      const double weight = tag == 0 ? 1.0 : r.F64();
      if (r.failed()) break;
      if (source > UINT32_MAX || target > UINT32_MAX ||
          (source & 3) > 2 || (target & 3) > 2) {
        return SectionErrorV2(kEdges, "bad edge endpoint kind");
      }
      e = social::NetEdge{
          social::EntityId(static_cast<social::EntityKind>(source & 3),
                           static_cast<uint32_t>(source >> 2)),
          social::EntityId(static_cast<social::EntityKind>(target & 3),
                           static_cast<uint32_t>(target >> 2)),
          static_cast<social::EdgeLabel>(op), weight};
    }
    if (!(e.weight > 0.0 && e.weight <= 1.0)) {
      return SectionErrorV2(kEdges, "edge weight outside (0,1]");
    }
    edges.Add(e.source, e.target, e.label, e.weight);
    prev = e;
    have_prev = true;
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section EDGES");
  return Status::OK();
}

Status ReadIndexV2(ByteReader& r, const Meta& meta,
                   doc::InvertedIndex& index) {
  const uint64_t n = r.Var();
  if (!r.FitsCount(n, 2)) return SectionErrorV2(kIndex, "count truncated");
  uint64_t prev_k = 0;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t dk = r.Var();
    const uint64_t len = r.Var();
    if (r.failed()) break;
    const uint64_t k = first ? dk : prev_k + dk;
    if ((!first && dk == 0) || k >= meta.n_keywords) {
      return SectionErrorV2(kIndex, "keyword ids not ascending/in range");
    }
    first = false;
    prev_k = k;
    if (!r.FitsCount(len, 1)) {
      return SectionErrorV2(kIndex, "postings length truncated");
    }
    std::vector<doc::NodeId> nodes;
    nodes.reserve(static_cast<size_t>(len));
    uint64_t prev_n = 0;
    for (uint64_t j = 0; j < len; ++j) {
      const uint64_t d = r.Var();
      if (r.failed()) break;
      const uint64_t node = j == 0 ? d : prev_n + d;
      if ((j > 0 && d == 0) || node >= meta.n_nodes) {
        return SectionErrorV2(kIndex, "postings not ascending/in range");
      }
      prev_n = node;
      nodes.push_back(static_cast<doc::NodeId>(node));
    }
    if (r.failed()) break;
    Status adopted = index.AdoptPostings(
        static_cast<KeywordId>(k), std::move(nodes),
        static_cast<size_t>(meta.n_nodes));
    if (!adopted.ok()) {
      return SectionErrorV2(kIndex, adopted.message());
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section INDEX");
  return Status::OK();
}

// Decodes the delta-coded column stream using the (already attached)
// row_ptr for row boundaries. Full CSR validation happens again in
// TransitionMatrix::Adopt; the checks here just bound the decode.
Status ReadMatrixColsV2(ByteReader& r, const Meta& meta,
                        const StorageSpan<uint64_t>& row_ptr,
                        StorageSpan<uint32_t>& out) {
  const uint64_t n_rows = meta.n_users + meta.n_nodes + meta.n_tags;
  const uint64_t nnz = row_ptr[static_cast<size_t>(n_rows)];
  if (!r.FitsCount(nnz, 1)) {
    return SectionErrorV2(kV2MatrixCols, "nnz truncated");
  }
  std::vector<uint32_t> cols;
  cols.reserve(static_cast<size_t>(nnz));
  for (uint64_t row = 0; row < n_rows; ++row) {
    const uint64_t begin = row_ptr[static_cast<size_t>(row)];
    const uint64_t end = row_ptr[static_cast<size_t>(row) + 1];
    if (end < begin || end > nnz) {
      return SectionErrorV2(kV2MatrixCols, "row_ptr not monotone");
    }
    uint64_t prev = 0;
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t d = r.Var();
      if (r.failed()) break;
      const uint64_t c = i == begin ? d : prev + d;
      if ((i > begin && d == 0) || c >= n_rows) {
        return SectionErrorV2(kV2MatrixCols,
                              "column out of range or not ascending");
      }
      prev = c;
      cols.push_back(static_cast<uint32_t>(c));
    }
    if (r.failed()) break;
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section MATRIXCOLS");
  if (cols.size() != nnz) {
    return SectionErrorV2(kV2MatrixCols, "nnz mismatch");
  }
  out = std::move(cols);
  return Status::OK();
}

Status ReadKeywordCompsV2(
    ByteReader& r, const Meta& meta,
    std::vector<std::pair<KeywordId, std::vector<social::ComponentId>>>&
        out) {
  const uint64_t n = r.Var();
  if (!r.FitsCount(n, 2)) {
    return SectionErrorV2(kV2KwComps, "count truncated");
  }
  out.reserve(static_cast<size_t>(n));
  uint64_t prev_k = 0;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t dk = r.Var();
    const uint64_t len = r.Var();
    if (r.failed()) break;
    const uint64_t k = first ? dk : prev_k + dk;
    if ((!first && dk == 0) || k >= meta.n_keywords) {
      return SectionErrorV2(kV2KwComps, "keyword ids not ascending/in range");
    }
    first = false;
    prev_k = k;
    if (!r.FitsCount(len, 1)) {
      return SectionErrorV2(kV2KwComps, "list length truncated");
    }
    std::vector<social::ComponentId> comps;
    comps.reserve(static_cast<size_t>(len));
    uint64_t prev_c = 0;
    for (uint64_t j = 0; j < len; ++j) {
      const uint64_t d = r.Var();
      if (r.failed()) break;
      const uint64_t c = j == 0 ? d : prev_c + d;
      if ((j > 0 && d == 0) || c > UINT32_MAX) {
        return SectionErrorV2(kV2KwComps, "component list not ascending");
      }
      prev_c = c;
      comps.push_back(static_cast<social::ComponentId>(c));
    }
    if (r.failed()) break;
    out.emplace_back(static_cast<KeywordId>(k), std::move(comps));
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section KWCOMPS");
  return Status::OK();
}

// Attaches one aligned section: a zero-copy view when a region is
// pinned, views are allowed, the host is little-endian and the mapped
// bytes land element-aligned; an owned decoded copy otherwise (the
// misaligned / big-endian / forced-copy fallback).
template <typename T>
Status AttachAlignedV2(const V2Entry& e, uint32_t id, uint64_t expect_count,
                       const std::shared_ptr<const MappedRegion>& region,
                       bool allow_views, StorageSpan<T>* out) {
  if (e.disk_size != expect_count * sizeof(T)) {
    return SectionErrorV2(id, "extent mismatch");
  }
  const char* base = e.payload.data();
  if (region != nullptr && allow_views &&
      std::endian::native == std::endian::little &&
      reinterpret_cast<uintptr_t>(base) % alignof(T) == 0) {
    *out = StorageSpan<T>::View(reinterpret_cast<const T*>(base),
                                static_cast<size_t>(expect_count), region);
    return Status::OK();
  }
  ByteReader r(e.payload);
  std::vector<T> v;
  v.reserve(static_cast<size_t>(expect_count));
  for (uint64_t i = 0; i < expect_count; ++i) {
    if constexpr (std::is_same_v<T, uint32_t>) {
      v.push_back(r.U32());
    } else if constexpr (std::is_same_v<T, uint64_t>) {
      v.push_back(r.U64());
    } else {
      static_assert(std::is_same_v<T, double>);
      v.push_back(r.F64());
    }
  }
  if (!r.AtEnd()) return SectionErrorV2(id, "payload truncated");
  *out = std::move(v);
  return Status::OK();
}

// Shared v2 load: `region` null means a pure heap load (string input);
// non-null enables zero-copy views per `opts`.
Result<std::shared_ptr<const S3Instance>> LoadBinarySnapshotV2(
    std::string_view bytes, std::shared_ptr<const MappedRegion> region,
    const SnapshotAttachOptions& opts) {
  V2Entry entries[kV2SectionCount];
  S3_RETURN_IF_ERROR(ParseV2Table(bytes, entries));

  // Checksum policy: compact and raw payloads are always verified (the
  // decode walks every byte anyway). Aligned payloads are verified
  // eagerly on heap loads and when the caller asks; the lazy default
  // on mmap attach skips them so attach cost stays O(metadata), not
  // O(file) — see SnapshotAttachOptions.
  for (uint32_t id = 1; id <= kV2SectionCount; ++id) {
    const bool aligned = V2Spec(id).encoding == kEncAligned;
    if (aligned && region != nullptr && !opts.eager_crc) continue;
    const V2Entry& e = entries[id - 1];
    if (Crc32(e.payload) != e.crc) {
      return SectionErrorV2(id, "checksum mismatch (corrupt payload)");
    }
  }

  Meta meta;
  {
    ByteReader r(entries[kMeta - 1].payload);
    if (!ReadMeta(r, meta)) {
      return SectionErrorV2(kMeta, "truncated");
    }
  }
  if (meta.n_users >= kMaxEntityCount || meta.n_nodes >= kMaxEntityCount ||
      meta.n_tags >= kMaxEntityCount || meta.n_docs >= kMaxEntityCount ||
      meta.n_keywords >= UINT32_MAX || meta.n_terms >= UINT32_MAX ||
      meta.n_edges >= UINT32_MAX || meta.n_triples >= UINT32_MAX) {
    return SectionErrorV2(kMeta, "implausible population counts");
  }

  S3Instance::SnapshotPopulation pop;
  S3Instance::SnapshotDerived der;
  pop.terms = std::make_shared<rdf::TermDictionary>();
  pop.rdf = std::make_shared<rdf::TripleStore>();

  {
    ByteReader r(entries[kVocab - 1].payload);
    S3_RETURN_IF_ERROR(ReadVocabV2(r, meta, pop.vocabulary));
  }
  {
    ByteReader r(entries[kUsers - 1].payload);
    S3_RETURN_IF_ERROR(ReadUsersV2(r, meta, pop.users));
  }
  {
    ByteReader r(entries[kTerms - 1].payload);
    S3_RETURN_IF_ERROR(ReadTermsV2(r, meta, *pop.terms));
  }
  {
    ByteReader r(entries[kTriples - 1].payload);
    S3_RETURN_IF_ERROR(ReadTriplesV2(r, meta, *pop.terms, *pop.rdf));
  }
  {
    ByteReader r(entries[kDocs - 1].payload);
    S3_RETURN_IF_ERROR(ReadDocs(r, meta, pop.docs));
  }
  {
    ByteReader r(entries[kComments - 1].payload);
    S3_RETURN_IF_ERROR(ReadCommentsV2(r, meta, pop.comment_target));
  }
  {
    ByteReader r(entries[kTags - 1].payload);
    S3_RETURN_IF_ERROR(ReadTagsV2(r, meta, pop.tags));
  }
  {
    ByteReader r(entries[kSocial - 1].payload);
    S3_RETURN_IF_ERROR(ReadSocialV2(r, meta, pop.explicit_social));
  }
  {
    ByteReader r(entries[kEdges - 1].payload);
    S3_RETURN_IF_ERROR(ReadEdgesV2(r, meta, pop.explicit_social, pop.edges));
  }
  {
    ByteReader r(entries[kIndex - 1].payload);
    S3_RETURN_IF_ERROR(ReadIndexV2(r, meta, der.index));
  }

  const uint64_t n_rows = meta.n_users + meta.n_nodes + meta.n_tags;
  S3_RETURN_IF_ERROR(AttachAlignedV2<uint64_t>(
      entries[kV2MatrixRowPtr - 1], kV2MatrixRowPtr, n_rows + 1, region,
      opts.allow_views, &der.matrix_row_ptr));
  {
    ByteReader r(entries[kV2MatrixCols - 1].payload);
    S3_RETURN_IF_ERROR(
        ReadMatrixColsV2(r, meta, der.matrix_row_ptr, der.matrix_cols));
  }
  const uint64_t nnz = der.matrix_row_ptr[static_cast<size_t>(n_rows)];
  S3_RETURN_IF_ERROR(AttachAlignedV2<double>(
      entries[kV2MatrixVals - 1], kV2MatrixVals, nnz, region,
      opts.allow_views, &der.matrix_vals));
  S3_RETURN_IF_ERROR(AttachAlignedV2<double>(
      entries[kV2MatrixDenom - 1], kV2MatrixDenom, n_rows, region,
      opts.allow_views, &der.matrix_denom));
  S3_RETURN_IF_ERROR(AttachAlignedV2<uint32_t>(
      entries[kV2Forest - 1], kV2Forest, n_rows, region, opts.allow_views,
      &der.component_forest));
  {
    ByteReader r(entries[kV2KwComps - 1].payload);
    S3_RETURN_IF_ERROR(ReadKeywordCompsV2(r, meta, der.comps_with_keyword));
  }

  der.generation = meta.generation;
  der.lineage = meta.lineage;
  der.rdf_social_edges = meta.rdf_social_edges;
  der.saturation_stats = meta.saturation;

  return S3Instance::FromSnapshot(std::move(pop), std::move(der));
}

Result<SnapshotInfo> InspectBinarySnapshotV2(std::string_view bytes) {
  SnapshotInfo info;
  info.version = kBinarySnapshotV2;
  V2Entry entries[kV2SectionCount];
  S3_RETURN_IF_ERROR(ParseV2Table(bytes, entries));
  for (uint32_t id = 1; id <= kV2SectionCount; ++id) {
    const V2Entry& e = entries[id - 1];
    SnapshotSectionInfo s;
    s.id = id;
    s.name = SectionNameV2(id);
    s.size = e.disk_size;
    s.crc = e.crc;
    s.crc_ok = Crc32(e.payload) == e.crc;
    s.encoding = EncodingName(V2Spec(id).encoding);
    s.mem_bytes = e.mem_bytes;
    info.sections.push_back(s);
  }
  if (info.sections[kMeta - 1].crc_ok) {
    Meta meta;
    ByteReader r(entries[kMeta - 1].payload);
    if (ReadMeta(r, meta)) {
      info.generation = meta.generation;
      info.lineage = meta.lineage;
      info.rdf_social_edges = meta.rdf_social_edges;
      info.n_users = meta.n_users;
      info.n_docs = meta.n_docs;
      info.n_nodes = meta.n_nodes;
      info.n_tags = meta.n_tags;
      info.n_keywords = meta.n_keywords;
      info.n_edges = meta.n_edges;
      info.n_terms = meta.n_terms;
      info.n_triples = meta.n_triples;
    }
  }
  return info;
}

// Format version at bytes[8..12), or 0 when the input is too short or
// not magic-prefixed (callers then route to the v1 parser for its
// canonical error messages).
uint32_t SniffVersion(std::string_view bytes) {
  if (!LooksLikeBinarySnapshot(bytes) || bytes.size() < 12) return 0;
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[8 + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

bool LooksLikeBinarySnapshot(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         bytes.substr(0, sizeof(kMagic)) ==
             std::string_view(kMagic, sizeof(kMagic));
}

uint32_t DefaultBinarySnapshotVersion() {
  // Read per call (not cached) so tests can flip the override.
  if (const char* force = std::getenv("S3_FORCE_SNAPSHOT_V1")) {
    const std::string_view v(force);
    if (v == "1" || v == "ON" || v == "on") return kBinarySnapshotV1;
  }
  return kBinarySnapshotV2;
}

Result<std::string> SaveBinarySnapshot(const S3Instance& inst,
                                       uint32_t version) {
  if (!inst.finalized()) {
    return Status::FailedPrecondition(
        "binary snapshots require a finalized instance (the format "
        "serializes derived state; use the text codec for build-phase "
        "dumps)");
  }
  if (version == kBinarySnapshotV2) return SaveBinarySnapshotV2(inst);
  if (version != kBinarySnapshotV1) {
    return Status::InvalidArgument("unknown binary snapshot version " +
                                   std::to_string(version));
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  {
    ByteWriter w(&out);
    w.U32(kBinarySnapshotV1);
    w.U32(kSectionCount);
  }
  {
    std::string meta;
    ByteWriter w(&meta);
    WriteMeta(inst, w);
    AppendSection(&out, kMeta, meta);
  }
  AppendSection(&out, kVocab, WriteVocab(inst));
  AppendSection(&out, kUsers, WriteUsers(inst));
  AppendSection(&out, kTerms, WriteTerms(inst));
  AppendSection(&out, kTriples, WriteTriples(inst));
  AppendSection(&out, kDocs, WriteDocs(inst));
  AppendSection(&out, kComments, WriteComments(inst));
  AppendSection(&out, kTags, WriteTags(inst));
  AppendSection(&out, kSocial, WriteSocial(inst));
  AppendSection(&out, kEdges, WriteEdges(inst));
  AppendSection(&out, kIndex, WriteIndex(inst));
  AppendSection(&out, kMatrix, WriteMatrix(inst));
  AppendSection(&out, kComponents, WriteComponents(inst));
  AppendSection(&out, kKeywordComps, WriteKeywordComps(inst));
  return out;
}

Result<std::string> SaveBinarySnapshot(const S3Instance& inst) {
  return SaveBinarySnapshot(inst, DefaultBinarySnapshotVersion());
}

Result<std::shared_ptr<const S3Instance>> LoadBinarySnapshot(
    std::string_view bytes) {
  if (SniffVersion(bytes) == kBinarySnapshotV2) {
    // Heap load: no region to pin, every section copied and every
    // checksum (aligned ones included) verified up front.
    SnapshotAttachOptions opts;
    opts.allow_views = false;
    opts.eager_crc = true;
    return LoadBinarySnapshotV2(bytes, /*region=*/nullptr, opts);
  }
  uint32_t version = 0;
  Frame frames[kSectionCount];
  S3_RETURN_IF_ERROR(ParseFrames(bytes, /*strict_crc=*/true, &version,
                                 frames));

  Meta meta;
  {
    ByteReader r(frames[kMeta - 1].payload);
    if (!ReadMeta(r, meta)) {
      return SectionError(kMeta, "truncated");
    }
  }
  if (meta.n_users >= kMaxEntityCount || meta.n_nodes >= kMaxEntityCount ||
      meta.n_tags >= kMaxEntityCount || meta.n_docs >= kMaxEntityCount ||
      meta.n_keywords >= UINT32_MAX || meta.n_terms >= UINT32_MAX ||
      meta.n_edges >= UINT32_MAX || meta.n_triples >= UINT32_MAX) {
    return SectionError(kMeta, "implausible population counts");
  }

  S3Instance::SnapshotPopulation pop;
  S3Instance::SnapshotDerived der;
  pop.terms = std::make_shared<rdf::TermDictionary>();
  pop.rdf = std::make_shared<rdf::TripleStore>();

  {
    ByteReader r(frames[kVocab - 1].payload);
    S3_RETURN_IF_ERROR(ReadVocab(r, meta, pop.vocabulary));
  }
  {
    ByteReader r(frames[kUsers - 1].payload);
    S3_RETURN_IF_ERROR(ReadUsers(r, meta, pop.users));
  }
  {
    ByteReader r(frames[kTerms - 1].payload);
    S3_RETURN_IF_ERROR(ReadTerms(r, meta, *pop.terms));
  }
  {
    ByteReader r(frames[kTriples - 1].payload);
    S3_RETURN_IF_ERROR(ReadTriples(r, meta, *pop.terms, *pop.rdf));
  }
  {
    ByteReader r(frames[kDocs - 1].payload);
    S3_RETURN_IF_ERROR(ReadDocs(r, meta, pop.docs));
  }
  {
    ByteReader r(frames[kComments - 1].payload);
    S3_RETURN_IF_ERROR(ReadComments(r, meta, pop.comment_target));
  }
  {
    ByteReader r(frames[kTags - 1].payload);
    S3_RETURN_IF_ERROR(ReadTags(r, meta, pop.tags));
  }
  {
    ByteReader r(frames[kSocial - 1].payload);
    S3_RETURN_IF_ERROR(ReadSocial(r, meta, pop.explicit_social));
  }
  {
    ByteReader r(frames[kEdges - 1].payload);
    S3_RETURN_IF_ERROR(ReadEdges(r, meta, pop.edges));
  }
  {
    ByteReader r(frames[kIndex - 1].payload);
    S3_RETURN_IF_ERROR(ReadIndex(r, meta, der.index));
  }
  {
    ByteReader r(frames[kMatrix - 1].payload);
    S3_RETURN_IF_ERROR(ReadMatrix(r, meta, der));
  }
  {
    ByteReader r(frames[kComponents - 1].payload);
    S3_RETURN_IF_ERROR(ReadComponents(r, meta, der.component_forest));
  }
  {
    ByteReader r(frames[kKeywordComps - 1].payload);
    S3_RETURN_IF_ERROR(ReadKeywordComps(r, meta, der.comps_with_keyword));
  }

  der.generation = meta.generation;
  der.lineage = meta.lineage;
  der.rdf_social_edges = meta.rdf_social_edges;
  der.saturation_stats = meta.saturation;

  return S3Instance::FromSnapshot(std::move(pop), std::move(der));
}

Result<std::shared_ptr<const S3Instance>> AttachBinarySnapshot(
    std::shared_ptr<const MappedRegion> region,
    const SnapshotAttachOptions& options) {
  if (region == nullptr) {
    return Status::InvalidArgument("attach: null mapped region");
  }
  const std::string_view bytes = region->view();
  if (SniffVersion(bytes) == kBinarySnapshotV2) {
    return LoadBinarySnapshotV2(bytes, region, options);
  }
  // v1 (and malformed headers, for v1's canonical error messages):
  // nothing to view into — the copy path, region released on return.
  return LoadBinarySnapshot(bytes);
}

Result<SnapshotInfo> InspectBinarySnapshot(std::string_view bytes) {
  if (SniffVersion(bytes) == kBinarySnapshotV2) {
    return InspectBinarySnapshotV2(bytes);
  }
  SnapshotInfo info;
  Frame frames[kSectionCount];
  S3_RETURN_IF_ERROR(ParseFrames(bytes, /*strict_crc=*/false,
                                 &info.version, frames));
  for (uint32_t id = 1; id <= kSectionCount; ++id) {
    const Frame& f = frames[id - 1];
    SnapshotSectionInfo s;
    s.id = id;
    s.name = SectionName(id);
    s.size = f.size;
    s.crc = f.crc;
    s.crc_ok = f.crc_ok;
    s.encoding = "raw";
    s.mem_bytes = f.size;
    info.sections.push_back(s);
  }
  const Frame& meta_frame = frames[kMeta - 1];
  if (meta_frame.crc_ok) {
    Meta meta;
    ByteReader r(meta_frame.payload);
    if (ReadMeta(r, meta)) {
      info.generation = meta.generation;
      info.lineage = meta.lineage;
      info.rdf_social_edges = meta.rdf_social_edges;
      info.n_users = meta.n_users;
      info.n_docs = meta.n_docs;
      info.n_nodes = meta.n_nodes;
      info.n_tags = meta.n_tags;
      info.n_keywords = meta.n_keywords;
      info.n_edges = meta.n_edges;
      info.n_terms = meta.n_terms;
      info.n_triples = meta.n_triples;
    }
  }
  return info;
}

}  // namespace s3::core
