#include "core/snapshot_binary.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "doc/document_wire.h"

namespace s3::core {

namespace {

// First byte outside ASCII (PNG-style) so no text dump can alias the
// magic; trailing \n catches CRLF mangling.
constexpr char kMagic[8] = {'\x89', 'S', '3', 'S', 'N', 'A', 'P', '\n'};

enum SectionId : uint32_t {
  kMeta = 1,          // generation/lineage, saturation stats, counts
  kVocab = 2,         // keyword spellings, id order
  kUsers = 3,         // user URIs, id order
  kTerms = 4,         // RDF term dictionary, id order
  kTriples = 5,       // saturated triple store, store order
  kDocs = 6,          // document trees + root URIs, id order
  kComments = 7,      // per-doc comment target
  kTags = 8,          // tag table, id order
  kSocial = 9,        // explicit social edges, insertion order
  kEdges = 10,        // network edge log, insertion order
  kIndex = 11,        // inverted-index postings, ascending keyword
  kMatrix = 12,       // transition-matrix CSR + denominators
  kComponents = 13,   // component union-find forest
  kKeywordComps = 14, // keyword -> component directory, ascending
};
constexpr uint32_t kSectionCount = 14;

// Entity indices are packed into 30 bits (social/entity.h); any count
// at or above this limit cannot have been produced by a real instance.
constexpr uint64_t kMaxEntityCount = 1u << 30;

const char* SectionName(uint32_t id) {
  switch (id) {
    case kMeta: return "META";
    case kVocab: return "VOCAB";
    case kUsers: return "USERS";
    case kTerms: return "TERMS";
    case kTriples: return "TRIPLES";
    case kDocs: return "DOCS";
    case kComments: return "COMMENTS";
    case kTags: return "TAGS";
    case kSocial: return "SOCIAL";
    case kEdges: return "EDGES";
    case kIndex: return "INDEX";
    case kMatrix: return "MATRIX";
    case kComponents: return "COMPONENTS";
    case kKeywordComps: return "KWCOMPS";
    default: return "?";
  }
}

Status SectionError(uint32_t id, const std::string& why) {
  return Status::InvalidArgument(std::string("binary snapshot, section ") +
                                 SectionName(id) + ": " + why);
}

// Population counts and identity carried by the META section; every
// other section is validated against these.
struct Meta {
  uint64_t generation = 0;
  uint64_t lineage = 0;
  uint64_t rdf_social_edges = 0;
  rdf::SaturationStats saturation;
  uint64_t n_users = 0, n_docs = 0, n_nodes = 0, n_tags = 0;
  uint64_t n_keywords = 0, n_edges = 0, n_terms = 0, n_triples = 0;
};

void WriteMeta(const S3Instance& inst, ByteWriter& w) {
  w.U64(inst.generation());
  w.U64(inst.lineage());
  w.U64(inst.rdf_social_edges());
  const rdf::SaturationStats& st = inst.saturation_stats();
  w.U64(st.input_triples);
  w.U64(st.derived_triples);
  w.U64(st.rounds);
  w.U64(inst.UserCount());
  w.U64(inst.docs().DocumentCount());
  w.U64(inst.docs().NodeCount());
  w.U64(inst.TagCount());
  w.U64(inst.vocabulary().size());
  w.U64(inst.edges().size());
  w.U64(inst.terms().size());
  w.U64(inst.rdf_graph().size());
}

bool ReadMeta(ByteReader& r, Meta& m) {
  m.generation = r.U64();
  m.lineage = r.U64();
  m.rdf_social_edges = r.U64();
  m.saturation.input_triples = static_cast<size_t>(r.U64());
  m.saturation.derived_triples = static_cast<size_t>(r.U64());
  m.saturation.rounds = static_cast<size_t>(r.U64());
  m.n_users = r.U64();
  m.n_docs = r.U64();
  m.n_nodes = r.U64();
  m.n_tags = r.U64();
  m.n_keywords = r.U64();
  m.n_edges = r.U64();
  m.n_terms = r.U64();
  m.n_triples = r.U64();
  return r.AtEnd();
}

// One framed section as located in the input.
struct Frame {
  uint64_t size = 0;
  uint32_t crc = 0;
  std::string_view payload;
  bool crc_ok = false;
};

// Walks the header and section frames. `verify_crc` computes checksums
// (LoadBinarySnapshot requires them; InspectBinarySnapshot records
// mismatches instead of failing). On success frames[id-1] holds the
// payload of section `id` — the fixed ascending order is enforced.
Status ParseFrames(std::string_view bytes, bool strict_crc,
                   uint32_t* version, Frame (&frames)[kSectionCount]) {
  ByteReader r(bytes);
  std::string_view magic = r.Bytes(sizeof(kMagic));
  if (r.failed() || magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(
        "binary snapshot: bad magic (not a binary snapshot file)");
  }
  *version = r.U32();
  if (r.failed() || *version != kBinarySnapshotVersion) {
    return Status::InvalidArgument(
        "binary snapshot: unsupported format version " +
        std::to_string(*version));
  }
  const uint32_t n_sections = r.U32();
  if (r.failed() || n_sections != kSectionCount) {
    return Status::InvalidArgument(
        "binary snapshot: expected " + std::to_string(kSectionCount) +
        " sections, header declares " + std::to_string(n_sections));
  }
  for (uint32_t expect = 1; expect <= kSectionCount; ++expect) {
    const uint32_t id = r.U32();
    Frame& f = frames[expect - 1];
    f.size = r.U64();
    f.crc = r.U32();
    if (r.failed() || id != expect) {
      return Status::InvalidArgument(
          "binary snapshot: truncated or out-of-order section table "
          "(expected section " + std::string(SectionName(expect)) + ")");
    }
    f.payload = r.Bytes(static_cast<size_t>(f.size));
    if (r.failed()) {
      return SectionError(id, "payload truncated");
    }
    f.crc_ok = Crc32(f.payload) == f.crc;
    if (strict_crc && !f.crc_ok) {
      return SectionError(id, "checksum mismatch (corrupt payload)");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "binary snapshot: trailing bytes after the last section");
  }
  return Status::OK();
}

// ---- section writers ---------------------------------------------------

void AppendSection(std::string* out, uint32_t id,
                   const std::string& payload) {
  ByteWriter w(out);
  w.U32(id);
  w.U64(payload.size());
  w.U32(Crc32(payload));
  out->append(payload);
}

std::string WriteVocab(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.vocabulary().size());
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    w.Str(inst.vocabulary().Spelling(k));
  }
  return p;
}

std::string WriteUsers(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.users().size());
  for (const User& u : inst.users()) w.Str(u.uri);
  return p;
}

std::string WriteTerms(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const rdf::TermDictionary& terms = inst.terms();
  w.U64(terms.size());
  for (rdf::TermId t = 0; t < terms.size(); ++t) {
    w.U8(static_cast<uint8_t>(terms.Kind(t)));
    w.Str(terms.Text(t));
  }
  return p;
}

std::string WriteTriples(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const auto& triples = inst.rdf_graph().triples();
  w.U64(triples.size());
  for (const rdf::Triple& t : triples) {
    w.U32(t.subject);
    w.U32(t.property);
    w.U32(t.object);
    w.F64(t.weight);
  }
  return p;
}

std::string WriteDocs(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const doc::DocumentStore& docs = inst.docs();
  w.U64(docs.DocumentCount());
  for (doc::DocId d = 0; d < docs.DocumentCount(); ++d) {
    w.Str(docs.Uri(docs.RootNode(d)));
    doc::WriteDocumentTree(docs.document(d), w);
  }
  return p;
}

std::string WriteComments(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const size_t n_docs = inst.docs().DocumentCount();
  w.U64(n_docs);
  for (doc::DocId d = 0; d < n_docs; ++d) w.U32(inst.CommentTarget(d));
  return p;
}

std::string WriteTags(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.tags().size());
  for (const Tag& t : inst.tags()) {
    w.U32(t.author);
    w.U8(t.subject.kind() == social::EntityKind::kTag ? 1 : 0);
    w.U32(t.subject.index());
    w.U32(t.keyword);
  }
  return p;
}

std::string WriteSocial(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.explicit_social_edges().size());
  for (const S3Instance::ExplicitSocialEdge& e :
       inst.explicit_social_edges()) {
    w.U32(e.from);
    w.U32(e.to);
    w.F64(e.weight);
  }
  return p;
}

std::string WriteEdges(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  w.U64(inst.edges().size());
  for (const social::NetEdge& e : inst.edges().edges()) {
    w.U8(static_cast<uint8_t>(e.label));
    w.U32(e.source.packed());
    w.U32(e.target.packed());
    w.F64(e.weight);
  }
  return p;
}

std::string WriteIndex(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  std::vector<KeywordId> keys = inst.index().Keywords();
  std::sort(keys.begin(), keys.end());
  w.U64(keys.size());
  for (KeywordId k : keys) {
    const std::vector<doc::NodeId>& postings = inst.index().Postings(k);
    w.U32(k);
    w.U64(postings.size());
    for (doc::NodeId n : postings) w.U32(n);
  }
  return p;
}

std::string WriteMatrix(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const social::TransitionMatrix& m = inst.matrix();
  w.U64(m.rows());
  for (uint64_t v : m.row_ptr()) w.U64(v);
  w.U64(m.col_index().size());
  for (uint32_t c : m.col_index()) w.U32(c);
  for (double v : m.values()) w.F64(v);
  for (double v : m.denominators()) w.F64(v);
  return p;
}

std::string WriteComponents(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  const std::vector<uint32_t>& forest = inst.components().forest();
  w.U64(forest.size());
  for (uint32_t parent : forest) w.U32(parent);
  return p;
}

std::string WriteKeywordComps(const S3Instance& inst) {
  std::string p;
  ByteWriter w(&p);
  // Ascending keyword scan yields canonical (deterministic) bytes.
  std::vector<std::pair<KeywordId, const std::vector<social::ComponentId>*>>
      entries;
  for (KeywordId k = 0; k < inst.vocabulary().size(); ++k) {
    const std::vector<social::ComponentId>& comps =
        inst.ComponentsWithKeyword(k);
    if (!comps.empty()) entries.emplace_back(k, &comps);
  }
  w.U64(entries.size());
  for (const auto& [k, comps] : entries) {
    w.U32(k);
    w.U64(comps->size());
    for (social::ComponentId c : *comps) w.U32(c);
  }
  return p;
}

// ---- section readers ---------------------------------------------------
// Each reader consumes its payload exactly (AtEnd is part of the
// contract) and validates ids against the META counts.

Status ReadVocab(ByteReader& r, const Meta& meta, Vocabulary& vocab) {
  const uint64_t n = r.U64();
  if (n != meta.n_keywords) return SectionError(kVocab, "count mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    std::string spelling = r.Str();
    if (r.failed()) break;
    if (vocab.Intern(spelling) != i) {
      return SectionError(kVocab, "duplicate spelling at id " +
                                      std::to_string(i));
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section VOCAB");
  return Status::OK();
}

Status ReadUsers(ByteReader& r, const Meta& meta,
                 std::vector<User>& users) {
  const uint64_t n = r.U64();
  if (n != meta.n_users) return SectionError(kUsers, "count mismatch");
  if (!r.FitsCount(n, 4)) return SectionError(kUsers, "count truncated");
  users.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    users.push_back(User{static_cast<social::UserId>(i), r.Str()});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section USERS");
  return Status::OK();
}

Status ReadTerms(ByteReader& r, const Meta& meta,
                 rdf::TermDictionary& terms) {
  const uint64_t n = r.U64();
  if (n != meta.n_terms) return SectionError(kTerms, "count mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t kind = r.U8();
    std::string text = r.Str();
    if (r.failed()) break;
    if (kind > 1) return SectionError(kTerms, "bad term kind");
    if (terms.Intern(text, static_cast<rdf::TermKind>(kind)) != i) {
      return SectionError(kTerms,
                          "duplicate term at id " + std::to_string(i));
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TERMS");
  return Status::OK();
}

Status ReadTriples(ByteReader& r, const Meta& meta,
                   const rdf::TermDictionary& terms,
                   rdf::TripleStore& rdf) {
  const uint64_t n = r.U64();
  if (n != meta.n_triples) return SectionError(kTriples, "count mismatch");
  if (!r.FitsCount(n, 20)) return SectionError(kTriples, "count truncated");
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t s = r.U32();
    const uint32_t p = r.U32();
    const uint32_t o = r.U32();
    const double w = r.F64();
    if (r.failed()) break;
    if (s >= meta.n_terms || p >= meta.n_terms || o >= meta.n_terms) {
      return SectionError(kTriples, "term id out of range");
    }
    // RDF: subjects and properties are URIs; weights live in [0, 1].
    if (terms.Kind(s) != rdf::TermKind::kUri ||
        terms.Kind(p) != rdf::TermKind::kUri) {
      return SectionError(kTriples, "literal subject or property");
    }
    if (!(w >= 0.0 && w <= 1.0)) {
      return SectionError(kTriples, "weight outside [0,1]");
    }
    if (!rdf.Add(s, p, o, w)) {
      return SectionError(kTriples, "duplicate triple");
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TRIPLES");
  return Status::OK();
}

Status ReadDocs(ByteReader& r, const Meta& meta,
                doc::DocumentStore& docs) {
  const uint64_t n = r.U64();
  if (n != meta.n_docs) return SectionError(kDocs, "count mismatch");
  for (uint64_t d = 0; d < n; ++d) {
    std::string uri = r.Str();
    if (r.failed()) break;
    Result<doc::Document> document =
        doc::ReadDocumentTree(r, meta.n_keywords);
    if (!document.ok()) {
      return SectionError(kDocs, "doc " + std::to_string(d) + ": " +
                                     document.status().message());
    }
    Result<doc::DocId> added = docs.AddDocument(std::move(*document), uri);
    if (!added.ok()) {
      return SectionError(kDocs, "doc " + std::to_string(d) + ": " +
                                     added.status().message());
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section DOCS");
  if (docs.NodeCount() != meta.n_nodes) {
    return SectionError(kDocs, "node total mismatch");
  }
  return Status::OK();
}

Status ReadComments(ByteReader& r, const Meta& meta,
                    std::vector<doc::NodeId>& comment_target) {
  const uint64_t n = r.U64();
  if (n != meta.n_docs) return SectionError(kComments, "count mismatch");
  if (!r.FitsCount(n, 4)) return SectionError(kComments, "count truncated");
  comment_target.reserve(static_cast<size_t>(n));
  for (uint64_t d = 0; d < n; ++d) comment_target.push_back(r.U32());
  if (!r.AtEnd()) return r.status("binary snapshot, section COMMENTS");
  return Status::OK();
}

Status ReadTags(ByteReader& r, const Meta& meta, std::vector<Tag>& tags) {
  const uint64_t n = r.U64();
  if (n != meta.n_tags) return SectionError(kTags, "count mismatch");
  if (!r.FitsCount(n, 13)) return SectionError(kTags, "count truncated");
  tags.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t author = r.U32();
    const uint8_t on_tag = r.U8();
    const uint32_t subject = r.U32();
    const uint32_t keyword = r.U32();
    if (r.failed()) break;
    if (on_tag > 1 || subject >= kMaxEntityCount) {
      return SectionError(kTags, "bad tag subject");
    }
    tags.push_back(Tag{static_cast<social::TagId>(i), author,
                       on_tag ? social::EntityId::Tag(subject)
                              : social::EntityId::Fragment(subject),
                       keyword});
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section TAGS");
  return Status::OK();
}

Status ReadSocial(ByteReader& r, const Meta& /*meta*/,
                  std::vector<S3Instance::ExplicitSocialEdge>& social) {
  const uint64_t n = r.U64();
  if (!r.FitsCount(n, 16)) return SectionError(kSocial, "count truncated");
  social.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    S3Instance::ExplicitSocialEdge e;
    e.from = r.U32();
    e.to = r.U32();
    e.weight = r.F64();
    social.push_back(e);
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section SOCIAL");
  return Status::OK();
}

Status ReadEdges(ByteReader& r, const Meta& meta,
                 social::EdgeStore& edges) {
  const uint64_t n = r.U64();
  if (n != meta.n_edges) return SectionError(kEdges, "count mismatch");
  if (!r.FitsCount(n, 17)) return SectionError(kEdges, "count truncated");
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t label = r.U8();
    const uint32_t source = r.U32();
    const uint32_t target = r.U32();
    const double weight = r.F64();
    if (r.failed()) break;
    if (label > static_cast<uint8_t>(social::EdgeLabel::kHasAuthorInv)) {
      return SectionError(kEdges, "bad edge label");
    }
    if (!social::EntityId::ValidKind(source) ||
        !social::EntityId::ValidKind(target)) {
      return SectionError(kEdges, "bad edge endpoint kind");
    }
    if (!(weight > 0.0 && weight <= 1.0)) {
      return SectionError(kEdges, "edge weight outside (0,1]");
    }
    edges.Add(social::EntityId::FromPacked(source),
              social::EntityId::FromPacked(target),
              static_cast<social::EdgeLabel>(label), weight);
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section EDGES");
  return Status::OK();
}

Status ReadIndex(ByteReader& r, const Meta& meta,
                 doc::InvertedIndex& index) {
  const uint64_t n = r.U64();
  if (!r.FitsCount(n, 12)) return SectionError(kIndex, "count truncated");
  KeywordId prev = 0;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    const KeywordId k = r.U32();
    const uint64_t len = r.U64();
    if (r.failed()) break;
    if (k >= meta.n_keywords || (!first && k <= prev)) {
      return SectionError(kIndex, "keyword ids not ascending/in range");
    }
    first = false;
    prev = k;
    if (!r.FitsCount(len, 4)) {
      return SectionError(kIndex, "postings length truncated");
    }
    std::vector<doc::NodeId> nodes;
    nodes.reserve(static_cast<size_t>(len));
    for (uint64_t j = 0; j < len; ++j) nodes.push_back(r.U32());
    if (r.failed()) break;
    Status adopted = index.AdoptPostings(
        k, std::move(nodes), static_cast<size_t>(meta.n_nodes));
    if (!adopted.ok()) {
      return SectionError(kIndex, adopted.message());
    }
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section INDEX");
  return Status::OK();
}

Status ReadMatrix(ByteReader& r, const Meta& meta,
                  S3Instance::SnapshotDerived& der) {
  const uint64_t n_rows = r.U64();
  const uint64_t expected =
      meta.n_users + meta.n_nodes + meta.n_tags;
  if (n_rows != expected) return SectionError(kMatrix, "row count mismatch");
  if (!r.FitsCount(n_rows + 1, 8)) {
    return SectionError(kMatrix, "row table truncated");
  }
  der.matrix_row_ptr.reserve(static_cast<size_t>(n_rows) + 1);
  for (uint64_t i = 0; i <= n_rows; ++i) der.matrix_row_ptr.push_back(r.U64());
  const uint64_t nnz = r.U64();
  if (!r.FitsCount(nnz, 12)) return SectionError(kMatrix, "nnz truncated");
  der.matrix_cols.reserve(static_cast<size_t>(nnz));
  for (uint64_t i = 0; i < nnz; ++i) der.matrix_cols.push_back(r.U32());
  der.matrix_vals.reserve(static_cast<size_t>(nnz));
  for (uint64_t i = 0; i < nnz; ++i) der.matrix_vals.push_back(r.F64());
  der.matrix_denom.reserve(static_cast<size_t>(n_rows));
  for (uint64_t i = 0; i < n_rows; ++i) der.matrix_denom.push_back(r.F64());
  if (!r.AtEnd()) return r.status("binary snapshot, section MATRIX");
  return Status::OK();
}

Status ReadComponents(ByteReader& r, const Meta& meta,
                      std::vector<uint32_t>& forest) {
  const uint64_t n = r.U64();
  if (n != meta.n_users + meta.n_nodes + meta.n_tags) {
    return SectionError(kComponents, "row count mismatch");
  }
  if (!r.FitsCount(n, 4)) {
    return SectionError(kComponents, "count truncated");
  }
  forest.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) forest.push_back(r.U32());
  if (!r.AtEnd()) return r.status("binary snapshot, section COMPONENTS");
  return Status::OK();
}

Status ReadKeywordComps(
    ByteReader& r, const Meta& /*meta*/,
    std::vector<std::pair<KeywordId, std::vector<social::ComponentId>>>&
        out) {
  const uint64_t n = r.U64();
  if (!r.FitsCount(n, 12)) {
    return SectionError(kKeywordComps, "count truncated");
  }
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const KeywordId k = r.U32();
    const uint64_t len = r.U64();
    if (r.failed()) break;
    if (!r.FitsCount(len, 4)) {
      return SectionError(kKeywordComps, "list length truncated");
    }
    std::vector<social::ComponentId> comps;
    comps.reserve(static_cast<size_t>(len));
    for (uint64_t j = 0; j < len; ++j) comps.push_back(r.U32());
    out.emplace_back(k, std::move(comps));
  }
  if (!r.AtEnd()) return r.status("binary snapshot, section KWCOMPS");
  return Status::OK();
}

}  // namespace

bool LooksLikeBinarySnapshot(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         bytes.substr(0, sizeof(kMagic)) ==
             std::string_view(kMagic, sizeof(kMagic));
}

Result<std::string> SaveBinarySnapshot(const S3Instance& inst) {
  if (!inst.finalized()) {
    return Status::FailedPrecondition(
        "binary snapshots require a finalized instance (the format "
        "serializes derived state; use the text codec for build-phase "
        "dumps)");
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  {
    ByteWriter w(&out);
    w.U32(kBinarySnapshotVersion);
    w.U32(kSectionCount);
  }
  {
    std::string meta;
    ByteWriter w(&meta);
    WriteMeta(inst, w);
    AppendSection(&out, kMeta, meta);
  }
  AppendSection(&out, kVocab, WriteVocab(inst));
  AppendSection(&out, kUsers, WriteUsers(inst));
  AppendSection(&out, kTerms, WriteTerms(inst));
  AppendSection(&out, kTriples, WriteTriples(inst));
  AppendSection(&out, kDocs, WriteDocs(inst));
  AppendSection(&out, kComments, WriteComments(inst));
  AppendSection(&out, kTags, WriteTags(inst));
  AppendSection(&out, kSocial, WriteSocial(inst));
  AppendSection(&out, kEdges, WriteEdges(inst));
  AppendSection(&out, kIndex, WriteIndex(inst));
  AppendSection(&out, kMatrix, WriteMatrix(inst));
  AppendSection(&out, kComponents, WriteComponents(inst));
  AppendSection(&out, kKeywordComps, WriteKeywordComps(inst));
  return out;
}

Result<std::shared_ptr<const S3Instance>> LoadBinarySnapshot(
    std::string_view bytes) {
  uint32_t version = 0;
  Frame frames[kSectionCount];
  S3_RETURN_IF_ERROR(ParseFrames(bytes, /*strict_crc=*/true, &version,
                                 frames));

  Meta meta;
  {
    ByteReader r(frames[kMeta - 1].payload);
    if (!ReadMeta(r, meta)) {
      return SectionError(kMeta, "truncated");
    }
  }
  if (meta.n_users >= kMaxEntityCount || meta.n_nodes >= kMaxEntityCount ||
      meta.n_tags >= kMaxEntityCount || meta.n_docs >= kMaxEntityCount ||
      meta.n_keywords >= UINT32_MAX || meta.n_terms >= UINT32_MAX ||
      meta.n_edges >= UINT32_MAX || meta.n_triples >= UINT32_MAX) {
    return SectionError(kMeta, "implausible population counts");
  }

  S3Instance::SnapshotPopulation pop;
  S3Instance::SnapshotDerived der;
  pop.terms = std::make_shared<rdf::TermDictionary>();
  pop.rdf = std::make_shared<rdf::TripleStore>();

  {
    ByteReader r(frames[kVocab - 1].payload);
    S3_RETURN_IF_ERROR(ReadVocab(r, meta, pop.vocabulary));
  }
  {
    ByteReader r(frames[kUsers - 1].payload);
    S3_RETURN_IF_ERROR(ReadUsers(r, meta, pop.users));
  }
  {
    ByteReader r(frames[kTerms - 1].payload);
    S3_RETURN_IF_ERROR(ReadTerms(r, meta, *pop.terms));
  }
  {
    ByteReader r(frames[kTriples - 1].payload);
    S3_RETURN_IF_ERROR(ReadTriples(r, meta, *pop.terms, *pop.rdf));
  }
  {
    ByteReader r(frames[kDocs - 1].payload);
    S3_RETURN_IF_ERROR(ReadDocs(r, meta, pop.docs));
  }
  {
    ByteReader r(frames[kComments - 1].payload);
    S3_RETURN_IF_ERROR(ReadComments(r, meta, pop.comment_target));
  }
  {
    ByteReader r(frames[kTags - 1].payload);
    S3_RETURN_IF_ERROR(ReadTags(r, meta, pop.tags));
  }
  {
    ByteReader r(frames[kSocial - 1].payload);
    S3_RETURN_IF_ERROR(ReadSocial(r, meta, pop.explicit_social));
  }
  {
    ByteReader r(frames[kEdges - 1].payload);
    S3_RETURN_IF_ERROR(ReadEdges(r, meta, pop.edges));
  }
  {
    ByteReader r(frames[kIndex - 1].payload);
    S3_RETURN_IF_ERROR(ReadIndex(r, meta, der.index));
  }
  {
    ByteReader r(frames[kMatrix - 1].payload);
    S3_RETURN_IF_ERROR(ReadMatrix(r, meta, der));
  }
  {
    ByteReader r(frames[kComponents - 1].payload);
    S3_RETURN_IF_ERROR(ReadComponents(r, meta, der.component_forest));
  }
  {
    ByteReader r(frames[kKeywordComps - 1].payload);
    S3_RETURN_IF_ERROR(ReadKeywordComps(r, meta, der.comps_with_keyword));
  }

  der.generation = meta.generation;
  der.lineage = meta.lineage;
  der.rdf_social_edges = meta.rdf_social_edges;
  der.saturation_stats = meta.saturation;

  return S3Instance::FromSnapshot(std::move(pop), std::move(der));
}

Result<SnapshotInfo> InspectBinarySnapshot(std::string_view bytes) {
  SnapshotInfo info;
  Frame frames[kSectionCount];
  S3_RETURN_IF_ERROR(ParseFrames(bytes, /*strict_crc=*/false,
                                 &info.version, frames));
  for (uint32_t id = 1; id <= kSectionCount; ++id) {
    const Frame& f = frames[id - 1];
    info.sections.push_back(SnapshotSectionInfo{
        id, SectionName(id), f.size, f.crc, f.crc_ok});
  }
  const Frame& meta_frame = frames[kMeta - 1];
  if (meta_frame.crc_ok) {
    Meta meta;
    ByteReader r(meta_frame.payload);
    if (ReadMeta(r, meta)) {
      info.generation = meta.generation;
      info.lineage = meta.lineage;
      info.rdf_social_edges = meta.rdf_social_edges;
      info.n_users = meta.n_users;
      info.n_docs = meta.n_docs;
      info.n_nodes = meta.n_nodes;
      info.n_tags = meta.n_tags;
      info.n_keywords = meta.n_keywords;
      info.n_edges = meta.n_edges;
      info.n_terms = meta.n_terms;
      info.n_triples = meta.n_triples;
    }
  }
  return info;
}

}  // namespace s3::core
