// Format seam over the two snapshot codecs:
//
//   * kText   — the line-oriented population dump (core/serialization.h).
//     Human-diffable, loses derived state; loading pays a full
//     Finalize() and assigns a *fresh* generation-0 lineage.
//   * kBinary — the checksummed binary snapshot (core/snapshot_binary.h).
//     Serializes derived state; loading attaches it without
//     recomputation and round-trips generation + lineage.
//
// SaveSnapshot / LoadSnapshot dispatch on an explicit format or on
// content sniffing, so callers (SnapshotManager, the s3_snapshot tool,
// benches) speak one API and the text codec stays available for
// debuggability and conversion.
#ifndef S3_CORE_SNAPSHOT_H_
#define S3_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/s3_instance.h"

namespace s3::core {

enum class SnapshotFormat { kText, kBinary };

const char* SnapshotFormatName(SnapshotFormat format);

// Sniffs the codec from the leading magic ("S3 v1" / the binary
// magic). Unrecognized input fails with InvalidArgument.
Result<SnapshotFormat> DetectSnapshotFormat(std::string_view bytes);

// Serializes `instance` in the requested format. Text accepts any
// instance; binary requires a finalized one.
Result<std::string> SaveSnapshot(const S3Instance& instance,
                                 SnapshotFormat format);

// Loads either format into a *finalized* instance: binary input
// attaches its derived state, text input is populated and then
// finalized (fresh lineage, generation 0).
Result<std::shared_ptr<const S3Instance>> LoadSnapshot(
    std::string_view bytes);

}  // namespace s3::core

#endif  // S3_CORE_SNAPSHOT_H_
